// Repository-root benchmarks: one family per table/figure of the paper's
// evaluation, each delegating to the internal/experiments harness at
// reduced scale, plus ablation benchmarks for the design choices called
// out in DESIGN.md. Custom metrics carry the experiment outputs (epoch
// seconds, communication volumes) alongside wall-clock time.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package salientpp_test

import (
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/experiments"
	"salientpp/internal/perfmodel"
	"salientpp/internal/rng"
	"salientpp/internal/vip"
)

// benchSeed pins every random stream the benchmarks touch (dataset
// generation, partitioning, sampling, policy evaluation) so reported
// metrics are reproducible run-to-run; change it deliberately, not
// accidentally.
const benchSeed = 7

// benchScale keeps -bench runs in seconds, not minutes. SmallScale carries
// Seed == benchSeed; the assignment below makes the pinning explicit and
// independent of the helper's default.
func benchScale() experiments.Scale {
	s := experiments.SmallScale()
	s.Seed = benchSeed
	return s
}

// BenchmarkTable1_ProgressiveOptimizations regenerates Table 1: per-epoch
// runtime of SALIENT → +partitioned → +pipelined → +cached on 1/2/4/8
// machines (papers-sim).
func BenchmarkTable1_ProgressiveOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Raw["+ Feature caching"][3], "spp-K8-epoch-s")
		b.ReportMetric(res.Raw["+ Partitioned features"][3], "naive-K8-epoch-s")
	}
}

// BenchmarkFig2_CachingPolicies regenerates Figure 2: communication volume
// of the seven caching policies across fanouts and replication factors.
func BenchmarkFig2_CachingPolicies(b *testing.B) {
	scale := benchScale()
	ds, err := dataset.PapersSim(scale.PapersN, false, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := experiments.Deploy(ds, 4, experiments.PaperDims(ds.Name), scale.Batch, false, scale.Seed, scale.Workers)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Fig2Config{
		K: 4, Batch: scale.Batch,
		FanoutSets: [][]int{{15, 10, 5}, {5, 5, 5}},
		Alphas:     []float64{0.05, 0.20, 0.50},
		EvalEpochs: 3, SimEpochs: 2, Seed: scale.Seed, Workers: scale.Workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(dep, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Improvement["VIP"][len(cfg.Alphas)-1], "vip-improvement-x")
	}
}

// BenchmarkFig4_OptimizationImpact regenerates Figure 4 across the three
// datasets.
func BenchmarkFig4_OptimizationImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Sequential/rows[1].Cached, "papers-speedup-x")
	}
}

// BenchmarkFig5_Scalability regenerates Figure 5 (2–16 machines, 3
// datasets, memory multiples).
func BenchmarkFig5_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		// papers-sim K=2 vs K=16 speedup.
		var k2, k16 float64
		for _, r := range rows {
			if r.Dataset == "papers-sim" && r.K == 2 {
				k2 = r.EpochSeconds
			}
			if r.Dataset == "papers-sim" && r.K == 16 {
				k16 = r.EpochSeconds
			}
		}
		b.ReportMetric(k2/k16, "papers-2to16-speedup-x")
	}
}

// BenchmarkFig6_GPUResidency regenerates Figure 6 (local CPU/GPU split,
// no-reorder vs VIP reorder).
func BenchmarkFig6_GPUResidency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		// Epoch time with VIP reorder at 10% GPU residency.
		for _, r := range rows {
			if r.VIPReorder && r.GPUFraction == 0.1 {
				b.ReportMetric(r.EpochSeconds, "vip-beta10-epoch-s")
			}
		}
	}
}

// BenchmarkFig7_ReplicationFactor regenerates Figure 7 (α sweep).
func BenchmarkFig7_ReplicationFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var a0, a32 float64
		for _, r := range rows {
			if r.Dataset == "papers-sim" && r.K == 8 {
				if r.Alpha == 0 {
					a0 = r.EpochSeconds
				}
				if r.Alpha == 0.32 {
					a32 = r.EpochSeconds
				}
			}
		}
		b.ReportMetric(a0/a32, "papers-K8-alpha-speedup-x")
	}
}

// BenchmarkFig8_Breakdown regenerates Figure 8 (pipelining × caching
// breakdowns).
func BenchmarkFig8_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Pipelining && r.Alpha > 0 {
				b.ReportMetric(r.Result.EpochSeconds, "pipe-cached-epoch-s")
			}
		}
	}
}

// BenchmarkFig9_SlowNetwork regenerates Figure 9 (token-bucket shaped 4/8
// Gbps networks, analytic vs simulated VIP).
func BenchmarkFig9_SlowNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var analytic, simulated float64
		for _, r := range rows {
			if r.Dataset == "papers-sim" && r.NetGbps == 4 && r.Alpha == 0.32 {
				if r.Policy == "VIP (analytic)" {
					analytic = r.EpochSeconds
				} else {
					simulated = r.EpochSeconds
				}
			}
		}
		if analytic > 0 {
			b.ReportMetric(simulated/analytic, "sim-vs-analytic-x")
		}
	}
}

// BenchmarkTable4_DistDGLComparison regenerates Table 4.
func BenchmarkTable4_DistDGLComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkAccuracy_RealTraining runs the §5.3 end-to-end training on the
// real distributed stack (one small dataset to keep bench time bounded).
func BenchmarkAccuracy_RealTraining(b *testing.B) {
	cfg := experiments.DefaultAccuracyConfig()
	cfg.Datasets = []string{"products-sim"}
	cfg.N = 3000
	cfg.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Accuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ValAcc, "val-acc")
	}
}

// BenchmarkEpochE2E trains real distributed epochs end to end (sampling,
// three-collective gather, blocked kernels, gradient all-reduce) at reduced
// scale; the epoch-s metric is the same quantity BENCH_epoch.json tracks
// across PRs. Run with -benchmem: steady-state batches are allocation-free,
// so reported allocs amortize toward setup-only.
func BenchmarkEpochE2E(b *testing.B) {
	scale := benchScale()
	scale.PapersN = 8000
	for i := 0; i < b.N; i++ {
		res, err := experiments.EpochBench(scale, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestWallSeconds, "epoch-s")
		b.ReportMetric(float64(res.Epochs[0].BytesSent), "bytes-sent")
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationVIPAnalysis times Proposition 1 itself (the paper
// reports 11.8 s at full papers scale; O(L(M+N)) here).
func BenchmarkAblationVIPAnalysis(b *testing.B) {
	scale := benchScale()
	ds, err := dataset.PapersSim(scale.PapersN, false, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	p0 := vip.UniformSeeds(ds.NumVertices(), ds.TrainIDs(), 1024)
	for _, workers := range []int{1, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			cfg := vip.Config{Fanouts: []int{15, 10, 5}, BatchSize: 1024, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := vip.Probabilities(ds.Graph, p0, cfg, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPipelineDepth sweeps the pipeline depth (the paper
// fixes 10 in-flight batches); epoch time should fall steeply from 1 to
// ~4 and flatten beyond.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	scale := benchScale()
	ds, err := dataset.PapersSim(scale.PapersN, false, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := experiments.Deploy(ds, 4, experiments.PaperDims(ds.Name), scale.Batch, true, scale.Seed, scale.Workers)
	if err != nil {
		b.Fatal(err)
	}
	scen, err := dep.Scenario(nil, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	w, err := dep.Workload(scen)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4, 10, 16} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			hw := perfmodel.DefaultHardware()
			hw.PipelineDepth = depth
			for i := 0; i < b.N; i++ {
				res, err := perfmodel.Simulate(perfmodel.SystemPipelined, w, hw)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.EpochSeconds, "epoch-s")
			}
		})
	}
}

// BenchmarkAblationCacheLookup compares the bitset+map cache membership
// structure against a pure map (the bitset fast path matters because
// lookup runs once per sampled input vertex).
func BenchmarkAblationCacheLookup(b *testing.B) {
	const n = 1 << 20
	r := rng.New(benchSeed)
	ids := r.SampleK(nil, 50000, n)
	c, err := cache.Build(ids, n)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int32, 4096)
	for i := range queries {
		queries[i] = int32(r.Intn(n))
	}
	b.Run("bitset", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if c.Has(queries[i%len(queries)]) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("map", func(b *testing.B) {
		m := make(map[int32]struct{}, len(ids))
		for _, v := range ids {
			m[v] = struct{}{}
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, ok := m[queries[i%len(queries)]]; ok {
				hits++
			}
		}
		_ = hits
	})
}

// BenchmarkAblationVIPPartitionObjective explores the paper's §6 future
// work: folding VIP mass into the partitioning objective as an extra
// balance constraint, measuring the effect on remote communication.
func BenchmarkAblationVIPPartitionObjective(b *testing.B) {
	scale := benchScale()
	ds, err := dataset.PapersSim(scale.PapersN, false, scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationVIPPartition(ds, 4, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BaselineRemote, "baseline-remote")
		b.ReportMetric(res.VIPWeightedRemote, "vipweighted-remote")
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
