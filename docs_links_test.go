package salientpp

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// mdHeading matches ATX headings for anchor validation.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// TestMarkdownLinks is the docs CI job's link checker: every relative link
// in the repository's markdown files must point at a file that exists, and
// every same-file #fragment must match a heading's GitHub-style anchor.
// External http(s) links are not fetched (CI must not depend on the
// network), and links that resolve outside the repository (e.g. the CI
// badge's ../../actions path, which is only meaningful on github.com) are
// skipped.
func TestMarkdownLinks(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	err = filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			if name := fi.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			switch fi.Name() {
			case "PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md":
				// Generated reference material (paper extractions), not part
				// of the repo's own documentation; their image links point at
				// assets that were never committed.
				return nil
			}
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d markdown files under %s; walker broken?", len(files), root)
	}
	for _, path := range files {
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, path)
		anchors := headingAnchors(string(buf))
		for _, m := range mdLink.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: fragment link %q matches no heading", rel, target)
				}
				continue
			}
			file := target
			if i := strings.IndexByte(file, '#'); i >= 0 {
				file = file[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), file)
			if r, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(r, "..") {
				continue // escapes the repo (e.g. the GitHub badge path); nothing to check locally
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %q does not exist", rel, target)
			}
		}
	}
}

// headingAnchors returns the GitHub-style anchor slugs of a document's
// headings: lowercase, spaces to hyphens, punctuation dropped.
func headingAnchors(doc string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(doc, -1) {
		title := m[1]
		// Strip inline code/link markup before slugifying.
		title = strings.NewReplacer("`", "", "*", "", "[", "", "]", "").Replace(title)
		var b strings.Builder
		for _, r := range strings.ToLower(title) {
			switch {
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
				b.WriteRune(r)
			case r == ' ' || r == '-':
				b.WriteByte('-')
			}
		}
		anchors[b.String()] = true
	}
	return anchors
}
