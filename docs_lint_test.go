package salientpp

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGodocCoverage is the godoc audit's enforcement: every exported
// symbol in the public facade (this package) and in internal/dist — the
// package whose wire formats and determinism contracts the documentation
// leans on — must carry a doc comment, and each package must have exactly
// one package comment. The staticcheck classes ST1000 (package comment)
// and ST1020/ST1021/ST1022 (exported symbol comments) cover the same
// ground but are opt-in per package; this test pins the two packages the
// docs point into so coverage cannot silently rot.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range []string{".", "internal/dist"} {
		t.Run(dir, func(t *testing.T) {
			var problems []string
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				var packageDoc bool
				for name, f := range pkg.Files {
					if f.Doc != nil {
						packageDoc = true
					}
					problems = append(problems, auditFile(fset, name, f)...)
				}
				if !packageDoc {
					problems = append(problems, fmt.Sprintf("package %s has no package comment", pkg.Name))
				}
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// auditFile returns one problem line per undocumented exported top-level
// declaration (funcs, methods on exported receivers, types, and the first
// name of each exported const/var group).
func auditFile(fset *token.FileSet, name string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s has no doc comment", filepath.Base(p.Filename), p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || exportedReceiver(d) == "" && d.Recv != nil {
				continue
			}
			if d.Doc == nil {
				what := "function " + d.Name.Name
				if r := exportedReceiver(d); r != "" {
					what = "method " + r + "." + d.Name.Name
				}
				report(d.Pos(), what)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// Grouped const/var blocks may document the group:
						// the block comment counts for every member.
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), d.Tok.String()+" "+n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver returns the receiver type name of a method on an
// exported type, or "" for functions and methods on unexported types
// (whose docs godoc never shows).
func exportedReceiver(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	expr := d.Recv.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if ident, ok := expr.(*ast.Ident); ok && ident.IsExported() {
		return ident.Name
	}
	return ""
}
