// Command gnntrain runs real end-to-end distributed GraphSAGE training on
// the synthetic analogs (the §5.3 accuracy experiment): K in-process
// machines with partitioned features, VIP caching and reordering, the
// deep minibatch pipeline, and synchronous gradient all-reduce.
//
// Fault tolerance: -checkpoint-dir enables coordinated checkpoints
// (atomic rename-into-place, retain-K rotation) covering the complete
// training state — weights, Adam moments, RNG streams, epoch/round cursor,
// and the partition/VIP/cache topology. -resume restores the newest valid
// checkpoint and continues bitwise identically to an uninterrupted run.
//
// Example:
//
//	gnntrain -dataset products-sim -n 8000 -k 2 -epochs 5
//	gnntrain -dataset products-sim -checkpoint-dir ckpts -checkpoint-every-rounds 50
//	gnntrain -dataset products-sim -checkpoint-dir ckpts -resume
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gnntrain: ")
	var (
		datasets = flag.String("dataset", "products-sim,papers-sim,mag240-sim", "datasets (comma separated)")
		n        = flag.Int("n", 8000, "vertices per dataset")
		k        = flag.Int("k", 2, "machines")
		alpha    = flag.Float64("alpha", 0.32, "replication factor")
		hidden   = flag.Int("hidden", 32, "hidden dimension")
		batch    = flag.Int("batch", 64, "per-machine batch size")
		epochs   = flag.Int("epochs", 5, "training epochs")
		lr       = flag.Float64("lr", 0.005, "Adam learning rate")
		seed     = flag.Uint64("seed", 3, "random seed")
		codec    = flag.String("codec", "fp32", "feature-gather wire codec: fp32 (raw), fp16 (half-precision rows + varint ids), int8 (per-row-scaled rows + varint ids)")

		ckptDir    = flag.String("checkpoint-dir", "", "enable coordinated checkpointing into this directory")
		ckptRounds = flag.Int("checkpoint-every-rounds", 0, "checkpoint every N pipeline rounds (0 disables mid-epoch checkpoints)")
		ckptEpochs = flag.Int("checkpoint-every-epochs", 0, "checkpoint every N epoch boundaries (0 with no -checkpoint-every-rounds defaults to 1)")
		ckptRetain = flag.Int("checkpoint-retain", 3, "keep the newest N checkpoint files")
		resume     = flag.Bool("resume", false, "restore the newest valid checkpoint in -checkpoint-dir and continue (single dataset only)")
	)
	flag.Parse()

	cfg := experiments.DefaultAccuracyConfig()
	cfg.Datasets = strings.Split(*datasets, ",")
	for i := range cfg.Datasets {
		cfg.Datasets[i] = strings.TrimSpace(cfg.Datasets[i])
	}
	cfg.N = *n
	cfg.K = *k
	cfg.Alpha = *alpha
	cfg.Hidden = *hidden
	cfg.Batch = *batch
	cfg.Epochs = *epochs
	cfg.LR = *lr
	cfg.Seed = *seed
	cfg.Codec = *codec
	cfg.Checkpoint.Dir = *ckptDir
	cfg.Checkpoint.EveryRounds = *ckptRounds
	cfg.Checkpoint.EveryEpochs = *ckptEpochs
	cfg.Checkpoint.Retain = *ckptRetain
	cfg.Resume = *resume

	rows, err := experiments.Accuracy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderAccuracy(rows))
}
