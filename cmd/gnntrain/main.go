// Command gnntrain runs real end-to-end distributed GraphSAGE training on
// the synthetic analogs (the §5.3 accuracy experiment): K in-process
// machines with partitioned features, VIP caching and reordering, the
// deep minibatch pipeline, and synchronous gradient all-reduce.
//
// Fault tolerance: -checkpoint-dir enables coordinated checkpoints
// (atomic rename-into-place, retain-K rotation) covering the complete
// training state — weights, Adam moments, RNG streams, epoch/round cursor,
// and the partition/VIP/cache topology. -resume restores the newest valid
// checkpoint and continues bitwise identically to an uninterrupted run.
// -elastic goes further: a rank that dies mid-run becomes a live
// membership change — the survivors detect the stall (-stall-timeout),
// agree on the newest checkpoint they all hold, absorb the dead rank's
// shard and cache slice, and continue on K-1 machines.
//
// Example:
//
//	gnntrain -dataset products-sim -n 8000 -k 2 -epochs 5
//	gnntrain -dataset products-sim -checkpoint-dir ckpts -checkpoint-every-rounds 50
//	gnntrain -dataset products-sim -checkpoint-dir ckpts -resume
//	gnntrain -dataset products-sim -k 3 -checkpoint-dir ckpts -elastic -stall-timeout 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"salientpp"
	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gnntrain: ")
	var (
		datasets = flag.String("dataset", "products-sim,papers-sim,mag240-sim", "datasets (comma separated)")
		n        = flag.Int("n", 8000, "vertices per dataset")
		k        = flag.Int("k", 2, "machines")
		alpha    = flag.Float64("alpha", 0.32, "replication factor")
		hidden   = flag.Int("hidden", 32, "hidden dimension")
		batch    = flag.Int("batch", 64, "per-machine batch size")
		epochs   = flag.Int("epochs", 5, "training epochs")
		lr       = flag.Float64("lr", 0.005, "Adam learning rate")
		seed     = flag.Uint64("seed", 3, "random seed")
	)
	// The codec/precision/parallelism/checkpoint surface is the unified
	// salientpp.RunConfig, so the three CLI harnesses spell it identically.
	run := salientpp.RunConfig{Codec: "fp32", Checkpoint: salientpp.CheckpointConfig{Retain: 3}}
	run.RegisterFlags(flag.CommandLine)
	run.RegisterCheckpointFlags(flag.CommandLine)
	run.RegisterElasticFlags(flag.CommandLine)
	flag.Parse()
	if err := run.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := experiments.DefaultAccuracyConfig()
	cfg.Datasets = strings.Split(*datasets, ",")
	for i := range cfg.Datasets {
		cfg.Datasets[i] = strings.TrimSpace(cfg.Datasets[i])
	}
	cfg.N = *n
	cfg.K = *k
	cfg.Alpha = *alpha
	cfg.Hidden = *hidden
	cfg.Batch = *batch
	cfg.Epochs = *epochs
	cfg.LR = *lr
	cfg.Seed = *seed
	cfg.Codec = run.Codec
	cfg.Precision = run.Precision
	cfg.GradCodec = run.GradCodec
	cfg.NoGradOverlap = run.NoGradOverlap
	cfg.Parallelism = run.Parallelism
	cfg.Checkpoint = run.Checkpoint
	cfg.Resume = run.Resume
	cfg.Elastic = run.Elastic
	cfg.StallTimeout = run.StallTimeout

	rows, err := experiments.Accuracy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderAccuracy(rows))
}
