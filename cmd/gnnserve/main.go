// Command gnnserve runs the online-inference serving stack end to end: it
// assembles a K-machine cluster on a synthetic analog (partitioning, VIP
// analysis, caching, feature sharding), freezes the model into a
// serve.Server (sibling feature stores + coalescing admission queue), and
// drives it with a closed-loop load generator, reporting
// sustained throughput, latency percentiles, batch coalescing, and the
// cache's effect on remote feature traffic.
//
// Example:
//
//	gnnserve -papers 60000 -clients 8 -requests 200
//	gnnserve -alphas 0,0.32 -maxbatch 64 -maxwait 2000
//	gnnserve -json -serveout BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gnnserve: ")
	var (
		papers   = flag.Int("papers", 60000, "papers-sim vertices")
		batch    = flag.Int("batch", 128, "training batch size (sets up the cluster)")
		workers  = flag.Int("workers", 2, "sampler/analysis workers")
		alphas   = flag.String("alphas", "0,0.08,0.16,0.32", "replication-factor sweep (comma separated)")
		clients  = flag.Int("clients", 8, "closed-loop load-generator clients")
		requests = flag.Int("requests", 150, "requests per client (fixed, so the workload is identical across alphas)")
		maxBatch = flag.Int("maxbatch", 32, "coalescing: max requests per rank per round")
		maxWait  = flag.Int64("maxwait", 1000, "coalescing: max microseconds the oldest request waits for company")
		useTCP   = flag.Bool("tcp", false, "serve the feature collectives over loopback TCP")
		codec    = flag.String("codec", "", "serving wire codec: fp32 (raw), fp16, int8; default inherits the cluster's codec (the checkpoint's recorded codec with -checkpoint, else fp32) — see README: communication efficiency")
		ckptPath = flag.String("checkpoint", "", "serve a frozen snapshot restored from this checkpoint file (gnntrain -checkpoint-dir format); dataset, seed, batch, fanouts, K, and the training codec are reconstructed from the file, overriding the corresponding flags (-codec still selects the serving group's codec)")
		seed     = flag.Uint64("seed", 7, "random seed")
		asJSON   = flag.Bool("json", false, "also write the machine-readable report (-serveout)")
		serveOut = flag.String("serveout", "BENCH_serve.json", "machine-readable output path")
	)
	flag.Parse()

	if runtime.NumCPU() == 1 {
		log.Printf("warning: single-CPU machine; coalesced rounds serialize with the clients")
	}
	alphaList, err := experiments.ParseAlphas(*alphas)
	if err != nil {
		log.Fatalf("-alphas: %v", err)
	}

	scale := experiments.DefaultScale()
	scale.PapersN = *papers
	scale.Batch = *batch
	scale.Workers = *workers
	scale.Seed = *seed
	scale.Codec = *codec
	res, err := experiments.ServeBench(scale, experiments.ServeConfig{
		Alphas: alphaList, Clients: *clients, RequestsPerClient: *requests,
		MaxBatch: *maxBatch, MaxWaitMicros: *maxWait, UseTCP: *useTCP,
		Codec: *codec, Checkpoint: *ckptPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		if err := res.WriteJSON(*serveOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *serveOut)
	}
	fmt.Println(experiments.RenderServeBench(res))
}
