// Command gnnserve runs the online-inference serving stack end to end: it
// assembles a K-machine cluster on a synthetic analog (partitioning, VIP
// analysis, caching, feature sharding), freezes the model into a
// serve.Server (sibling feature stores + coalescing admission queue), and
// drives it with a closed-loop load generator, reporting
// sustained throughput, latency percentiles, batch coalescing, and the
// cache's effect on remote feature traffic.
//
// Example:
//
//	gnnserve -papers 60000 -clients 8 -requests 200
//	gnnserve -alphas 0,0.32 -maxbatch 64 -maxwait 2000
//	gnnserve -json -serveout BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"salientpp"
	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gnnserve: ")
	var (
		papers   = flag.Int("papers", 60000, "papers-sim vertices")
		batch    = flag.Int("batch", 128, "training batch size (sets up the cluster)")
		alphas   = flag.String("alphas", "0,0.08,0.16,0.32", "replication-factor sweep (comma separated)")
		clients  = flag.Int("clients", 8, "closed-loop load-generator clients")
		requests = flag.Int("requests", 150, "requests per client (fixed, so the workload is identical across alphas)")
		maxBatch = flag.Int("maxbatch", 32, "coalescing: max requests per rank per round")
		maxWait  = flag.Int64("maxwait", 1000, "coalescing: max microseconds the oldest request waits for company")
		useTCP   = flag.Bool("tcp", false, "serve the feature collectives over loopback TCP")
		load     = flag.String("load", "closed", "workload: closed, or open (adds the open-loop overload curve — Poisson arrivals over a zipf popularity with deadline-based shedding)")
		zipf     = flag.Float64("zipf", 1.1, "zipf popularity exponent for -load open")
		offered  = flag.String("offered", "250,500,1000,2000", "comma-separated offered req/s rates for -load open")
		loadsec  = flag.Float64("loadsec", 2, "seconds per offered-rate point for -load open")
		flashF   = flag.Float64("flash", 0, "flash-crowd factor for -load open: mid-run the offered rate is multiplied by this (0 disables)")
		deadline = flag.Int64("deadline", 25000, "per-request admission budget in µs for -load open")
		drift    = flag.Bool("drift", false, "add the rotating-hot-set drift profile: the same seeded workload served with the static cache and with the online drift-tracking policy at equal capacity")
		driftW   = flag.Int("driftwindows", 5, "hot-set rotations for -drift")
		driftReq = flag.Int("driftreq", 960, "requests per drift window for -drift")
		ckptPath = flag.String("checkpoint", "", "serve a frozen snapshot restored from this checkpoint file (gnntrain -checkpoint-dir format); dataset, seed, batch, fanouts, K, and the training codec/precision are reconstructed from the file, overriding the corresponding flags (-codec/-precision still select the serving group's settings)")
		seed     = flag.Uint64("seed", 7, "random seed")
		asJSON   = flag.Bool("json", false, "also write the machine-readable report (-serveout)")
		serveOut = flag.String("serveout", "BENCH_serve.json", "machine-readable output path")
	)
	// Shared run surface (-codec, -precision, -parallelism): for gnnserve,
	// empty codec/precision inherit the cluster's settings (the
	// checkpoint's recorded values with -checkpoint, else fp32).
	run := salientpp.RunConfig{Parallelism: 2}
	run.RegisterFlags(flag.CommandLine)
	// Deprecated alias: -workers predates the unified -parallelism flag.
	flag.CommandLine.IntVar(&run.Parallelism, "workers", run.Parallelism, "deprecated alias for -parallelism")
	flag.Parse()
	if err := run.Validate(); err != nil {
		log.Fatal(err)
	}

	if runtime.NumCPU() == 1 {
		log.Printf("warning: single-CPU machine; coalesced rounds serialize with the clients")
	}
	alphaList, err := experiments.ParseAlphas(*alphas)
	if err != nil {
		log.Fatalf("-alphas: %v", err)
	}
	if *load != "closed" && *load != "open" {
		log.Fatalf("-load: want closed or open, got %q", *load)
	}
	rates, err := experiments.ParseFloatList(*offered, "offered rate")
	if err != nil {
		log.Fatalf("-offered: %v", err)
	}

	scale := experiments.DefaultScale()
	scale.PapersN = *papers
	scale.Batch = *batch
	scale.Workers = run.Parallelism
	scale.Seed = *seed
	scale.Codec = run.Codec
	res, err := experiments.ServeBench(scale, experiments.ServeConfig{
		Alphas: alphaList, Clients: *clients, RequestsPerClient: *requests,
		MaxBatch: *maxBatch, MaxWaitMicros: *maxWait, UseTCP: *useTCP,
		Codec: run.Codec, Precision: run.Precision, Checkpoint: *ckptPath,
		Load: *load, ZipfS: *zipf, OfferedRPS: rates,
		LoadSeconds: *loadsec, FlashFactor: *flashF, DeadlineMicros: *deadline,
		Drift: *drift, DriftWindows: *driftW, DriftRequestsPerWindow: *driftReq,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		if err := res.WriteJSON(*serveOut); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *serveOut)
	}
	fmt.Println(experiments.RenderServeBench(res))
}
