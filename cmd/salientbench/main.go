// Command salientbench regenerates the paper's timing evaluation via the
// discrete-event performance model: Table 1 (progressive optimizations),
// Table 2 (datasets), Table 4 (DistDGL comparison), Figures 4–9, the
// hot-path microbenchmarks (parallel VIP analysis and batch preparation),
// and the real end-to-end epoch benchmark.
//
// Example:
//
//	salientbench -exp table1
//	salientbench -exp all -papers 200000 -batch 32
//	salientbench -exp hotpaths -json          # writes BENCH_sample_vip.json
//	salientbench -exp epoch -json             # writes BENCH_epoch.json
//	salientbench -exp serve -json             # writes BENCH_serve.json
//
// It is also the CI perf-regression gate: compare two committed benchmark
// reports of the same kind and exit non-zero when a headline metric
// regresses beyond the tolerance:
//
//	salientbench -compare BENCH_epoch.json new_epoch.json -tolerance 0.25
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"salientpp"
	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salientbench: ")
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table2|table4|fig4|fig5|fig6|fig7|fig8|fig9|hotpaths|epoch|serve|all")
		products  = flag.Int("products", 60000, "products-sim vertices")
		papers    = flag.Int("papers", 200000, "papers-sim vertices")
		mag240    = flag.Int("mag240", 100000, "mag240-sim vertices")
		batch     = flag.Int("batch", 128, "per-machine batch size")
		boost     = flag.Float64("trainboost", 8, "training-density boost for sparse-label datasets (see EXPERIMENTS.md)")
		seed      = flag.Uint64("seed", 7, "random seed")
		asJSON    = flag.Bool("json", false, "also write machine-readable reports (-jsonout, -epochout, -serveout)")
		jsonOut   = flag.String("jsonout", "BENCH_sample_vip.json", "machine-readable hotpaths output path")
		epochOut  = flag.String("epochout", "BENCH_epoch.json", "machine-readable epoch-benchmark output path")
		serveOut  = flag.String("serveout", "BENCH_serve.json", "machine-readable serving-benchmark output path")
		epochs    = flag.Int("epochs", 3, "epochs for -exp epoch")
		sweep     = flag.String("sweep", "1,2,4,8", "comma-separated worker counts for -exp hotpaths")
		alphas    = flag.String("alphas", "0,0.08,0.16,0.32", "comma-separated replication factors for -exp serve")
		clients   = flag.Int("clients", 8, "closed-loop serving clients for -exp serve")
		requests  = flag.Int("requests", 150, "requests per serving client for -exp serve")
		load      = flag.String("load", "closed", "serving workload for -exp serve: closed, or open (adds the open-loop overload curve)")
		zipf      = flag.Float64("zipf", 1.1, "zipf popularity exponent for -load open")
		offered   = flag.String("offered", "250,500,1000,2000", "comma-separated offered req/s rates for -load open")
		loadsec   = flag.Float64("loadsec", 2, "seconds per offered-rate point for -load open")
		flashF    = flag.Float64("flash", 0, "flash-crowd factor for -load open: mid-run the offered rate is multiplied by this (0 disables)")
		deadline  = flag.Int64("deadline", 25000, "per-request admission budget in µs for -load open")
		drift     = flag.Bool("drift", false, "for -exp serve: add the rotating-hot-set drift profile (static vs online cache at equal capacity)")
		driftWins = flag.Int("driftwindows", 5, "hot-set rotations for -drift")
		driftReq  = flag.Int("driftreq", 960, "requests per drift window for -drift")
		compare   = flag.String("compare", "", "gate mode: old benchmark report; the new report follows as a positional argument")
		tolerance = flag.Float64("tolerance", 0.25, "relative regression tolerance for -compare")
	)
	// Shared run surface (-codec, -precision, -parallelism) via
	// salientpp.RunConfig, identical across the three CLI harnesses.
	runCfg := salientpp.RunConfig{Codec: "fp32", Parallelism: 2}
	runCfg.RegisterFlags(flag.CommandLine)
	// Deprecated alias: -workers predates the unified -parallelism flag.
	flag.CommandLine.IntVar(&runCfg.Parallelism, "workers", runCfg.Parallelism, "deprecated alias for -parallelism")
	flag.Parse()
	if err := runCfg.Validate(); err != nil {
		log.Fatal(err)
	}

	if *compare != "" {
		runCompare(*compare, flag.Args(), *tolerance)
		return
	}

	// The timing experiments measure parallel speedups; a runtime pinned to
	// one proc on a multi-core box silently flattens every column (it has
	// happened in CI — BENCH_sample_vip.json once shipped "gomaxprocs": 1).
	// The harnesses lift GOMAXPROCS themselves; warn loudly when even the
	// hardware is serial, so flat speedups are read correctly.
	if runtime.GOMAXPROCS(0) == 1 && runtime.NumCPU() > 1 {
		log.Printf("warning: GOMAXPROCS=1 on a %d-CPU machine; timing harnesses will raise it to all CPUs", runtime.NumCPU())
	}
	if runtime.NumCPU() == 1 {
		log.Printf("warning: single-CPU machine; worker-sweep speedups will be flat (~1.0x)")
	}

	var sweepCounts []int
	for _, tok := range strings.Split(*sweep, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w, err := strconv.Atoi(tok)
		if err != nil || w <= 0 {
			log.Fatalf("bad -sweep entry %q", tok)
		}
		sweepCounts = append(sweepCounts, w)
	}

	scale := experiments.Scale{
		ProductsN: *products, PapersN: *papers, Mag240N: *mag240,
		Batch: *batch, TrainBoost: *boost, Workers: runCfg.Parallelism, Seed: *seed,
		Codec: runCfg.Codec, Precision: runCfg.Precision, GradCodec: runCfg.GradCodec,
	}

	run := map[string]func() (string, error){
		"table1": func() (string, error) {
			r, err := experiments.Table1(scale)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"table2": func() (string, error) { return experiments.Table2(scale) },
		"table4": func() (string, error) {
			r, err := experiments.Table4(scale)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig4": func() (string, error) {
			r, err := experiments.Fig4(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig4(r), nil
		},
		"fig5": func() (string, error) {
			r, err := experiments.Fig5(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig5(r), nil
		},
		"fig6": func() (string, error) {
			r, err := experiments.Fig6(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig6(r), nil
		},
		"fig7": func() (string, error) {
			r, err := experiments.Fig7(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig7(r), nil
		},
		"fig8": func() (string, error) {
			r, err := experiments.Fig8(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig8(r), nil
		},
		"fig9": func() (string, error) {
			r, err := experiments.Fig9(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig9(r), nil
		},
		"hotpaths": func() (string, error) {
			r, err := experiments.HotPaths(scale, sweepCounts)
			if err != nil {
				return "", err
			}
			if *asJSON {
				if err := r.WriteJSON(*jsonOut); err != nil {
					return "", err
				}
				log.Printf("wrote %s", *jsonOut)
			}
			return experiments.RenderHotPaths(r), nil
		},
		"epoch": func() (string, error) {
			r, err := experiments.EpochBench(scale, *epochs)
			if err != nil {
				return "", err
			}
			if *asJSON {
				if err := r.WriteJSON(*epochOut); err != nil {
					return "", err
				}
				log.Printf("wrote %s", *epochOut)
			}
			return experiments.RenderEpochBench(r), nil
		},
		"serve": func() (string, error) {
			alphaList, err := experiments.ParseAlphas(*alphas)
			if err != nil {
				return "", fmt.Errorf("-alphas: %w", err)
			}
			if *load != "closed" && *load != "open" {
				return "", fmt.Errorf("-load: want closed or open, got %q", *load)
			}
			rates, err := experiments.ParseFloatList(*offered, "offered rate")
			if err != nil {
				return "", fmt.Errorf("-offered: %w", err)
			}
			r, err := experiments.ServeBench(scale, experiments.ServeConfig{
				Alphas: alphaList, Clients: *clients, RequestsPerClient: *requests,
				Precision: runCfg.Precision,
				Load:      *load, ZipfS: *zipf, OfferedRPS: rates,
				LoadSeconds: *loadsec, FlashFactor: *flashF, DeadlineMicros: *deadline,
				Drift: *drift, DriftWindows: *driftWins, DriftRequestsPerWindow: *driftReq,
			})
			if err != nil {
				return "", err
			}
			if *asJSON {
				if err := r.WriteJSON(*serveOut); err != nil {
					return "", err
				}
				log.Printf("wrote %s", *serveOut)
			}
			return experiments.RenderServeBench(r), nil
		},
	}

	order := []string{"table2", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table4", "hotpaths", "epoch", "serve"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := run[name]; !ok {
				log.Fatalf("unknown experiment %q (want one of %s, or all)", name, strings.Join(order, "|"))
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		out, err := run[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Println()
	}
}

// runCompare implements the CI perf-regression gate:
//
//	salientbench -compare old.json new.json -tolerance 0.25
//
// The new report arrives as the first positional argument; because the
// flag package stops flag parsing there, a trailing -tolerance is parsed
// by a second FlagSet over the remaining arguments (a -tolerance placed
// before -compare is picked up by the ordinary flag). Exits 1 when any
// headline metric regressed beyond the tolerance.
func runCompare(oldPath string, args []string, tolerance float64) {
	const usage = "usage: salientbench -compare old.json new.json [-tolerance 0.25]"
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		log.Fatal(usage)
	}
	newPath := args[0]
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // log.Fatalf below prints the one usage line
	tol := fs.Float64("tolerance", tolerance, "relative regression tolerance")
	if err := fs.Parse(args[1:]); err != nil {
		log.Fatalf("%v (%s)", err, usage)
	}
	if fs.NArg() > 0 {
		log.Fatalf("unexpected argument %q (%s)", fs.Arg(0), usage)
	}
	tolerance = *tol
	cs, err := experiments.CompareBenchFiles(oldPath, newPath, tolerance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderComparisons(cs, tolerance))
	if experiments.AnyRegressed(cs) {
		log.Printf("FAIL: regression beyond %.0f%% against %s", tolerance*100, oldPath)
		os.Exit(1)
	}
	log.Printf("ok: no metric regressed beyond %.0f%% against %s", tolerance*100, oldPath)
}
