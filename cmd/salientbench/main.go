// Command salientbench regenerates the paper's timing evaluation via the
// discrete-event performance model: Table 1 (progressive optimizations),
// Table 2 (datasets), Table 4 (DistDGL comparison), Figures 4–9, and the
// hot-path microbenchmarks (parallel VIP analysis and batch preparation).
//
// Example:
//
//	salientbench -exp table1
//	salientbench -exp all -papers 200000 -batch 32
//	salientbench -exp hotpaths -json          # writes BENCH_sample_vip.json
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("salientbench: ")
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table4|fig4|fig5|fig6|fig7|fig8|fig9|hotpaths|all")
		products = flag.Int("products", 60000, "products-sim vertices")
		papers   = flag.Int("papers", 200000, "papers-sim vertices")
		mag240   = flag.Int("mag240", 100000, "mag240-sim vertices")
		batch    = flag.Int("batch", 128, "per-machine batch size")
		boost    = flag.Float64("trainboost", 8, "training-density boost for sparse-label datasets (see EXPERIMENTS.md)")
		workers  = flag.Int("workers", 2, "sampler workers")
		seed     = flag.Uint64("seed", 7, "random seed")
		asJSON   = flag.Bool("json", false, "also write the hotpaths report to -jsonout")
		jsonOut  = flag.String("jsonout", "BENCH_sample_vip.json", "machine-readable hotpaths output path")
		sweep    = flag.String("sweep", "1,2,4,8", "comma-separated worker counts for -exp hotpaths")
	)
	flag.Parse()

	var sweepCounts []int
	for _, tok := range strings.Split(*sweep, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		w, err := strconv.Atoi(tok)
		if err != nil || w <= 0 {
			log.Fatalf("bad -sweep entry %q", tok)
		}
		sweepCounts = append(sweepCounts, w)
	}

	scale := experiments.Scale{
		ProductsN: *products, PapersN: *papers, Mag240N: *mag240,
		Batch: *batch, TrainBoost: *boost, Workers: *workers, Seed: *seed,
	}

	run := map[string]func() (string, error){
		"table1": func() (string, error) {
			r, err := experiments.Table1(scale)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"table2": func() (string, error) { return experiments.Table2(scale) },
		"table4": func() (string, error) {
			r, err := experiments.Table4(scale)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig4": func() (string, error) {
			r, err := experiments.Fig4(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig4(r), nil
		},
		"fig5": func() (string, error) {
			r, err := experiments.Fig5(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig5(r), nil
		},
		"fig6": func() (string, error) {
			r, err := experiments.Fig6(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig6(r), nil
		},
		"fig7": func() (string, error) {
			r, err := experiments.Fig7(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig7(r), nil
		},
		"fig8": func() (string, error) {
			r, err := experiments.Fig8(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig8(r), nil
		},
		"fig9": func() (string, error) {
			r, err := experiments.Fig9(scale)
			if err != nil {
				return "", err
			}
			return experiments.RenderFig9(r), nil
		},
		"hotpaths": func() (string, error) {
			r, err := experiments.HotPaths(scale, sweepCounts)
			if err != nil {
				return "", err
			}
			if *asJSON {
				if err := r.WriteJSON(*jsonOut); err != nil {
					return "", err
				}
				log.Printf("wrote %s", *jsonOut)
			}
			return experiments.RenderHotPaths(r), nil
		},
	}

	order := []string{"table2", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table4", "hotpaths"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := run[name]; !ok {
				log.Fatalf("unknown experiment %q (want one of %s, or all)", name, strings.Join(order, "|"))
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		out, err := run[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Println()
	}
}
