// Command vipsim reproduces the paper's Figure 2: it compares the seven
// static caching policies ("deg.", "1-hop", "wPR", "#paths", "sim.",
// "VIP", "oracle") by the remote feature communication volume they leave
// on a partitioned graph, across fanout settings and replication factors.
//
// Example:
//
//	vipsim -n 200000 -k 8 -batch 64 -epochs 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"salientpp/internal/dataset"
	"salientpp/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vipsim: ")
	var (
		n       = flag.Int("n", 100000, "vertices in the papers-sim graph")
		k       = flag.Int("k", 8, "number of partitions")
		batch   = flag.Int("batch", 64, "minibatch size per machine")
		epochs  = flag.Int("epochs", 5, "evaluation epochs to average over")
		alphas  = flag.String("alphas", "0.05,0.10,0.20,0.50,1.00", "replication factors")
		fanouts = flag.String("fanouts", "15,10,5;10,10,10;5,5,5", "fanout panels (';'-separated)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 2, "sampler workers")
	)
	flag.Parse()

	ds, err := dataset.PapersSim(*n, false, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fanoutSets, err := parseFanoutSets(*fanouts)
	if err != nil {
		log.Fatal(err)
	}
	alphaVals, err := parseFloats(*alphas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset %s: N=%d M=%d, %d-way partition, batch %d\n",
		ds.Name, ds.NumVertices(), ds.Graph.NumEdges(), *k, *batch)

	dep, err := experiments.Deploy(ds, *k, experiments.PaperDims(ds.Name), *batch, false, *seed, *workers)
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.Fig2(dep, experiments.Fig2Config{
		K: *k, Batch: *batch, FanoutSets: fanoutSets, Alphas: alphaVals,
		EvalEpochs: *epochs, SimEpochs: 2, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
}

func parseFanoutSets(s string) ([][]int, error) {
	var out [][]int
	for _, part := range strings.Split(s, ";") {
		fs, err := parseInts(part)
		if err != nil {
			return nil, err
		}
		out = append(out, fs)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}
