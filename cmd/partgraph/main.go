// Command partgraph exercises the multilevel partitioner standalone:
// generate (or load) a graph, partition it K ways with SALIENT++'s
// balance constraints, report cut/balance quality against the random
// baseline, and optionally persist the graph in the binary format.
//
// Example:
//
//	partgraph -n 100000 -deg 16 -k 8
//	partgraph -n 50000 -k 4 -save graph.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"salientpp/internal/dataset"
	"salientpp/internal/graph"
	"salientpp/internal/metrics"
	"salientpp/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partgraph: ")
	var (
		n     = flag.Int("n", 100000, "vertices")
		deg   = flag.Float64("deg", 16, "average stored degree")
		k     = flag.Int("k", 8, "partitions")
		eps   = flag.Float64("eps", 0.1, "imbalance tolerance")
		seed  = flag.Uint64("seed", 1, "random seed")
		load  = flag.String("load", "", "load a serialized graph instead of generating")
		save  = flag.String("save", "", "persist the generated graph to this path")
		train = flag.Float64("train", 0.05, "training fraction for balance constraints")
	)
	flag.Parse()

	var g *graph.CSR
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err = graph.ReadFrom(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ds, err := dataset.Generate(dataset.SyntheticConfig{
			Name: "partgraph", NumVertices: *n, AvgDegree: *deg,
			FeatureDim: 1, NumClasses: 2, TrainFrac: *train, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		g = ds.Graph
		isTrain := make([]bool, g.NumVertices())
		for _, v := range ds.TrainIDs() {
			isTrain[v] = true
		}
		report(g, *k, *eps, *seed, partition.SalientWeights(g, isTrain, nil, nil))
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.Write(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("graph written to %s\n", *save)
		}
		return
	}
	report(g, *k, *eps, *seed, nil)
}

func report(g *graph.CSR, k int, eps float64, seed uint64, weights [][]float32) {
	fmt.Printf("graph: %s\n\n", g)
	ml, err := partition.Partition(g, partition.Config{K: k, ImbalanceTolerance: eps, Seed: seed, Weights: weights})
	if err != nil {
		log.Fatal(err)
	}
	rnd := partition.Random(g, k, seed)

	t := metrics.NewTable(fmt.Sprintf("%d-way partition quality", k),
		"method", "edge cut", "cut fraction", "max imbalance")
	t.AddRow("multilevel", ml.EdgeCut, fmt.Sprintf("%.4f", ml.CutFraction(g)), fmt.Sprintf("%.3f", maxOf(ml.Imbalance)))
	t.AddRow("random", rnd.EdgeCut, fmt.Sprintf("%.4f", rnd.CutFraction(g)), fmt.Sprintf("%.3f", maxOf(rnd.Imbalance)))
	fmt.Println(t.String())

	sizes := metrics.NewTable("partition sizes", "partition", "vertices")
	for p, s := range ml.PartSizes() {
		sizes.AddRow(p, s)
	}
	fmt.Println(sizes.String())
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
