package salientpp

import (
	"flag"
	"io"
	"testing"
)

// TestRunConfigFlagRoundTrip pins the unified flag surface: registered
// flags parse into the struct, checkpoint flags are separate, and defaults
// survive an empty parse.
func TestRunConfigFlagRoundTrip(t *testing.T) {
	run := RunConfig{Codec: "fp32"}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	run.RegisterFlags(fs)
	run.RegisterCheckpointFlags(fs)
	if err := fs.Parse([]string{
		"-codec", "int8", "-precision", "fp16", "-parallelism", "4",
		"-grad-codec", "fp16", "-no-grad-overlap",
		"-checkpoint-dir", "ckpts", "-checkpoint-every-rounds", "50",
		"-checkpoint-retain", "5", "-resume",
	}); err != nil {
		t.Fatal(err)
	}
	if run.Codec != "int8" || run.Precision != "fp16" || run.Parallelism != 4 {
		t.Fatalf("parsed %+v", run)
	}
	if run.GradCodec != "fp16" || !run.NoGradOverlap {
		t.Fatalf("gradient flags parsed %+v", run)
	}
	if run.Checkpoint.Dir != "ckpts" || run.Checkpoint.EveryRounds != 50 || run.Checkpoint.Retain != 5 || !run.Resume {
		t.Fatalf("checkpoint flags parsed %+v resume=%v", run.Checkpoint, run.Resume)
	}
	if err := run.Validate(); err != nil {
		t.Fatal(err)
	}

	var dflt RunConfig
	fs2 := flag.NewFlagSet("dflt", flag.ContinueOnError)
	dflt.RegisterFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := dflt.Validate(); err != nil {
		t.Fatalf("zero-value RunConfig must validate: %v", err)
	}
}

// TestRunConfigValidate pins the early error surface.
func TestRunConfigValidate(t *testing.T) {
	for name, rc := range map[string]RunConfig{
		"bad codec":          {Codec: "fp8"},
		"bad precision":      {Precision: "bf16"},
		"bad grad codec":     {GradCodec: "fp8"},
		"negative workers":   {Parallelism: -1},
		"resume without dir": {Resume: true},
	} {
		if err := rc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, rc)
		}
	}
}

// TestRunConfigApply pins the fan-out onto cluster and serve configs,
// including the "0 keeps the harness default" parallelism rule.
func TestRunConfigApply(t *testing.T) {
	run := RunConfig{Codec: "int8", Precision: "int8", Parallelism: 3,
		GradCodec: "fp16", NoGradOverlap: true,
		Checkpoint: CheckpointConfig{Dir: "d", EveryEpochs: 1}}
	var cc ClusterConfig
	cc.Train.SamplerWorkers = 2
	run.ApplyCluster(&cc)
	if cc.Codec != "int8" || cc.Precision != "int8" || cc.Checkpoint.Dir != "d" {
		t.Fatalf("ApplyCluster: %+v", cc)
	}
	if cc.Train.GradCodec != "fp16" || !cc.Train.NoGradOverlap {
		t.Fatalf("ApplyCluster gradient knobs: %+v", cc.Train)
	}
	if cc.Train.SamplerWorkers != 3 || cc.Train.Parallelism != 3 {
		t.Fatalf("ApplyCluster parallelism: %+v", cc.Train)
	}

	run.Parallelism = 0
	cc.Train.SamplerWorkers, cc.Train.Parallelism = 2, 2
	run.ApplyCluster(&cc)
	if cc.Train.SamplerWorkers != 2 || cc.Train.Parallelism != 2 {
		t.Fatalf("Parallelism=0 must keep existing workers: %+v", cc.Train)
	}

	var sc ServeConfig
	run.ApplyServe(&sc)
	if sc.Codec != "int8" || sc.Precision != "int8" {
		t.Fatalf("ApplyServe: %+v", sc)
	}
}

// TestPrecisionsListsSupportedNames mirrors TestWireCodecsListsSupportedNames.
func TestPrecisionsListsSupportedNames(t *testing.T) {
	got := Precisions()
	want := []string{"fp32", "fp16", "int8"}
	if len(got) != len(want) {
		t.Fatalf("Precisions() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Precisions()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
