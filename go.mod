module salientpp

go 1.24
