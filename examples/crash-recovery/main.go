// Crash recovery: kills a distributed training run at an arbitrary
// mid-epoch batch, restores it from the latest coordinated checkpoint,
// and verifies the recovered run is *bitwise identical* — final weights,
// per-epoch loss trajectory, and remote-fetch counts — to a same-seed run
// that was never interrupted.
//
// The walkthrough exercises the full fault-tolerance stack:
//
//  1. train with ClusterConfig.Checkpoint: barrier-consistent saves every
//     2 pipeline rounds plus every epoch boundary, written atomically
//     (temp file + rename) with retain-K rotation;
//  2. kill: a fault-injected communicator (ClusterConfig.WrapComm, the
//     same hook the crash tests use) closes both of a rank's collective
//     groups partway through epoch 1, exactly like a machine dying — the
//     surviving rank's blocked collectives error out instead of hanging;
//  3. restore: LoadLatestCheckpoint picks the newest valid file (torn
//     files are skipped via CRC), and ClusterConfig.Resume rebuilds the
//     cluster from it — partition layout, VIP cache contents, weights,
//     Adam moments, and the dropout RNG stream — skipping partitioning
//     and VIP re-analysis entirely;
//  4. verify: the combined crashed+resumed trajectory matches the
//     uninterrupted reference bit for bit;
//  5. live shrink: the same death under elastic training (TrainElastic)
//     needs no operator at all — the survivors detect the stall, agree on
//     the newest checkpoint they all hold, absorb the dead rank's shard
//     and cache slice, and finish on K-1 machines, bitwise identical to a
//     cold K-1 restart from that same checkpoint.
//
// Run with:
//
//	go run ./examples/crash-recovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"salientpp"
	"salientpp/internal/dist"
)

const (
	dataSeed  = 11
	trainSeed = 23
	modelSeed = 5
	epochs    = 3
)

func config() salientpp.ClusterConfig {
	return salientpp.ClusterConfig{
		K: 2, Alpha: 0.25, GPUFraction: 1, VIPReorder: true,
		// Dropout > 0 on purpose: its RNG stream advances batch by batch,
		// so recovery is only exact because the checkpoint restores it.
		Hidden: 24, Layers: 2, Dropout: 0.3,
		Train: salientpp.TrainConfig{
			Fanouts: []int{8, 4}, BatchSize: 32,
			PipelineDepth: 4, SamplerWorkers: 2, LR: 0.01, Seed: trainSeed,
		},
		ModelSeed: modelSeed,
	}
}

// killComm injects the crash: once the shared collective counter reaches
// failAt, it closes both of its rank's communicator groups — the
// in-process equivalent of the machine dropping off the network. With
// failAt 0 it only counts, which is how the reference run calibrates
// where "mid-epoch 1" lands.
type killComm struct {
	dist.Comm
	grad   dist.Comm
	calls  *atomic.Int64
	failAt int64
}

func (k *killComm) AllToAll(send [][]byte) ([][]byte, error) {
	if n := k.calls.Add(1); k.failAt > 0 && n >= k.failAt {
		k.Comm.Close()
		k.grad.Close()
		return nil, fmt.Errorf("injected rank death")
	}
	return k.Comm.AllToAll(send)
}

type trajectory struct {
	loss   []float64
	remote []int64
}

func train(cl *salientpp.Cluster, from int, tr *trajectory) error {
	for e := from; e < epochs; e++ {
		stats, err := cl.TrainEpochAll(e)
		if err != nil {
			return err
		}
		var loss float64
		var remote int64
		for _, s := range stats {
			loss += s.Loss / float64(len(stats))
			remote += int64(s.Gather.RemoteFetch)
		}
		for len(tr.loss) <= e {
			tr.loss = append(tr.loss, 0)
			tr.remote = append(tr.remote, 0)
		}
		tr.loss[e], tr.remote[e] = loss, remote
		fmt.Printf("    epoch %d: loss %.6f, remote rows %d\n", e, loss, remote)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	ds, err := salientpp.NewProductsDataset(4000, true, dataSeed)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "salientpp-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference: the run that never crashes. Its communicators count
	// feature collectives so the kill below can be aimed mid-epoch 1.
	fmt.Println("1. reference run (uninterrupted, same seeds):")
	var ref trajectory
	var refCalls atomic.Int64
	refCfg := config()
	refCfg.WrapComm = func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm) {
		return &killComm{Comm: feat, grad: grad, calls: &refCalls}, grad
	}
	refCl, err := salientpp.NewCluster(ds, refCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := train(refCl, 0, &ref); err != nil {
		log.Fatal(err)
	}
	refW := weights(refCl)
	refCl.Close()

	// Checkpointed run with a fault-injected communicator.
	fmt.Println("\n2. checkpointed run, killed mid-epoch 1:")
	cfg := config()
	cfg.Checkpoint = salientpp.CheckpointConfig{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 4}
	// Aim the kill 1.5 epochs in: an arbitrary in-flight batch of epoch 1.
	failAt := refCalls.Load() * 3 / (2 * epochs)
	var calls atomic.Int64
	cfg.WrapComm = func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm) {
		return &killComm{Comm: feat, grad: grad, calls: &calls, failAt: failAt}, grad
	}
	var got trajectory
	crashCl, err := salientpp.NewCluster(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := train(crashCl, 0, &got); err != nil {
		// The survivor unwinds from whichever collective it was blocked in
		// (send or recv varies with scheduling), so print a stable summary
		// to keep the walkthrough's output byte-identical run to run.
		fmt.Println("    crash: rank died mid-collective; survivors unwound with a group-closed error")
	} else {
		log.Fatal("the injected failure never fired; raise failAt")
	}
	crashCl.Close()

	// Restore from the newest valid checkpoint and finish the run.
	state, path, err := salientpp.LoadLatestCheckpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3. restored %s (epoch %d, round %d of %d):\n",
		filepath.Base(path), state.Step.Epoch, state.Step.Round, state.Rounds)
	rcfg := config()
	rcfg.Checkpoint = salientpp.CheckpointConfig{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 4}
	rcfg.Resume = state
	resCl, err := salientpp.NewCluster(ds, rcfg)
	if err != nil {
		log.Fatal(err)
	}
	defer resCl.Close()
	if err := train(resCl, resCl.FirstEpoch(), &got); err != nil {
		log.Fatal(err)
	}

	// Bitwise comparison.
	fmt.Println("\n4. recovered vs reference:")
	ok := true
	for e := 0; e < epochs; e++ {
		match := got.loss[e] == ref.loss[e] && got.remote[e] == ref.remote[e]
		fmt.Printf("    epoch %d: loss %.6f vs %.6f, remote %d vs %d — %s\n",
			e, got.loss[e], ref.loss[e], got.remote[e], ref.remote[e], verdict(match))
		ok = ok && match
	}
	gotW := weights(resCl)
	wMatch := len(gotW) == len(refW)
	for i := 0; wMatch && i < len(refW); i++ {
		wMatch = gotW[i] == refW[i]
	}
	fmt.Printf("    final weights (%d values) — %s\n", len(refW), verdict(wMatch))
	if !ok || !wMatch {
		log.Fatal("recovery was not bitwise identical")
	}
	fmt.Println("\ncrash + restore reproduced the uninterrupted run bit for bit")

	fmt.Println("\n5. live shrink: elastic training survives the same death unattended:")
	demoLiveShrink(ds)
}

// demoLiveShrink runs a 3-rank elastic training job, kills rank 2 midway
// through epoch 1, and lets the survivors shrink the run live: stall
// detection, pairwise probes, membership consensus on the newest common
// checkpoint, shard/cache re-layout, and a 2-rank finish. It then verifies
// the live-shrunk run against a cold 2-rank restart from the very same
// shrunk state — bit for bit.
func demoLiveShrink(ds *salientpp.Dataset) {
	const victim = 2
	dir, err := os.MkdirTemp("", "salientpp-elastic-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := func() salientpp.ClusterConfig {
		cfg := config()
		cfg.K = 3
		cfg.Checkpoint = salientpp.CheckpointConfig{Dir: dir, EveryRounds: 2, EveryEpochs: 1, Retain: 8}
		cfg.StallTimeout = time.Second
		return cfg
	}

	// Calibrate: one healthy epoch counts the victim's collectives so the
	// kill below lands mid-epoch 1.
	counter := dist.NewChaos(dist.ChaosConfig{Seed: 1})
	ccfg := base()
	ccfg.Checkpoint = salientpp.CheckpointConfig{}
	ccfg.StallTimeout = 0
	ccfg.WrapComm = func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm) {
		if rank == victim {
			return counter.WrapPair(feat, grad)
		}
		return feat, grad
	}
	cal, err := salientpp.NewCluster(ds, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cal.TrainEpochAll(0); err != nil {
		log.Fatal(err)
	}
	perEpoch := counter.Calls()
	cal.Close()

	// Elastic run: the chaos harness kills rank 2 (closes both collective
	// groups, and keeps failing its recovery probes — a dead machine stays
	// dead) halfway through epoch 1.
	ch := dist.NewChaos(dist.ChaosConfig{Seed: 2, DropAtCall: perEpoch + perEpoch/2})
	ecfg := base()
	ecfg.WrapComm = func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm) {
		if rank == victim {
			return ch.WrapPair(feat, grad)
		}
		return feat, grad
	}
	live, rep, err := salientpp.TrainElastic(ds, ecfg, epochs, salientpp.ElasticConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	ev := rep.RegroupEvents[0]
	fmt.Printf("    rank %d died; %d stall detected, %d regroup: survivors %v resume at epoch %d (%d rounds replayed)\n",
		victim, rep.StallsDetected, rep.Regroups, ev.Survivors, ev.State.Step.Epoch, rep.RoundsReplayed)

	// Control: a cold K-1 restart from the same shrunk state.
	cold := config()
	cold.K = len(ev.Survivors)
	cold.Resume = ev.State
	coldCl, err := salientpp.NewCluster(ds, cold)
	if err != nil {
		log.Fatal(err)
	}
	defer coldCl.Close()
	ok := true
	for e := ev.State.Step.Epoch; e < epochs; e++ {
		stats, err := coldCl.TrainEpochAll(e)
		if err != nil {
			log.Fatal(err)
		}
		var coldLoss, liveLoss float64
		for _, s := range stats {
			coldLoss += s.Loss / float64(len(stats))
		}
		liveStats := rep.Epochs[e]
		for _, s := range liveStats {
			liveLoss += s.Loss / float64(len(liveStats))
		}
		match := coldLoss == liveLoss
		fmt.Printf("    epoch %d: live loss %.6f vs cold restart %.6f — %s\n",
			e, liveLoss, coldLoss, verdict(match))
		ok = ok && match
	}
	liveW, coldW := weights(live), weights(coldCl)
	wMatch := len(liveW) == len(coldW)
	for i := 0; wMatch && i < len(coldW); i++ {
		wMatch = liveW[i] == coldW[i]
	}
	fmt.Printf("    final weights (%d values) — %s\n", len(coldW), verdict(wMatch))
	if !ok || !wMatch {
		log.Fatal("live shrink did not match the cold restart")
	}
	fmt.Println("\nthe live-shrunk run matches a cold 2-rank restart bit for bit")
}

func weights(cl *salientpp.Cluster) []float32 {
	var out []float32
	for _, p := range cl.Ranks[0].Model().Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

func verdict(ok bool) string {
	if ok {
		return "bitwise identical"
	}
	return "MISMATCH"
}
