// VIP analysis: a close look at the paper's core contribution
// (Proposition 1). Computes hop-wise and total vertex inclusion
// probabilities on a power-law graph, prints the probability mass per
// hop, a text histogram of the VIP distribution (illustrating why a
// small cache captures most accesses), and verifies the §3.1 continuum:
// the general model degenerates to a random walk at fanout 1 and to full
// neighborhood expansion at fanout ≥ max degree.
//
// Run with:
//
//	go run ./examples/vip-analysis
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"salientpp/internal/dataset"
	"salientpp/internal/vip"
)

// seed pins every random choice (graph, splits, sampling) so repeated
// runs print identical numbers.
const seed = 17

func main() {
	log.SetFlags(0)

	ds, err := dataset.PapersSim(20000, false, seed)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	train := ds.TrainIDs()
	fmt.Printf("%s: N=%d, M=%d, |T|=%d, max degree %d\n\n",
		ds.Name, g.NumVertices(), g.NumEdges(), len(train), g.MaxDegree())

	// Workers: 0 shards the propagation across GOMAXPROCS; the output is
	// bitwise-identical to the Workers: 1 serial reference.
	cfg := vip.Config{Fanouts: []int{15, 10, 5}, BatchSize: 64, Workers: 0}
	p0 := vip.UniformSeeds(g.NumVertices(), train, cfg.BatchSize)
	res, err := vip.Probabilities(g, p0, cfg, true)
	if err != nil {
		log.Fatal(err)
	}

	// Hop-wise expected reach: how the sampled neighborhood expands.
	fmt.Println("hop-wise expansion (expected vertices included per hop):")
	for h, hop := range res.Hops {
		var mass float64
		for _, p := range hop {
			mass += p
		}
		fmt.Printf("  hop %d (fanout %2d): E[|N_h|] = %8.1f\n", h+1, cfg.Fanouts[h], mass)
	}

	// VIP distribution histogram (log-spaced buckets).
	fmt.Println("\nVIP value distribution:")
	buckets := []float64{1e-6, 1e-4, 1e-2, 0.1, 0.5, 0.9, 1.0000001}
	labels := []string{"<1e-6", "1e-6..1e-4", "1e-4..0.01", "0.01..0.1", "0.1..0.5", "0.5..0.9", ">0.9"}
	counts := make([]int, len(buckets)+1)
	for _, p := range res.P {
		i := sort.SearchFloat64s(buckets, p)
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts[:len(labels)] {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, label := range labels {
		bar := strings.Repeat("#", counts[i]*50/maxCount)
		fmt.Printf("  %-11s %6d %s\n", label, counts[i], bar)
	}

	// Concentration: fraction of total expected accesses covered by the
	// top-x% of vertices — the economics behind static caching.
	sorted := append([]float64(nil), res.P...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var total float64
	for _, p := range sorted {
		total += p
	}
	fmt.Println("\naccess concentration (why a small cache suffices):")
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.25} {
		n := int(frac * float64(len(sorted)))
		var mass float64
		for _, p := range sorted[:n] {
			mass += p
		}
		fmt.Printf("  top %4.0f%% of vertices carry %5.1f%% of expected accesses\n",
			100*frac, 100*mass/total)
	}

	// Continuum check (§3.1).
	single := make([]float64, g.NumVertices())
	single[train[0]] = 0.005
	gen1, err := vip.Probabilities(g, single, vip.Config{Fanouts: []int{1, 1}, BatchSize: 1}, false)
	if err != nil {
		log.Fatal(err)
	}
	rw := vip.RandomWalk(g, single, 2)
	var worst float64
	for v := range rw {
		if d := math.Abs(gen1.P[v] - rw[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\ncontinuum checks:\n  fanout=1 vs random-walk model: max |Δp| = %.2e\n", worst)

	f := g.MaxDegree() + 1
	genF, err := vip.Probabilities(g, single, vip.Config{Fanouts: []int{f, f}, BatchSize: 1}, false)
	if err != nil {
		log.Fatal(err)
	}
	full := vip.FullExpansion(g, single, 2)
	worst = 0
	for v := range full {
		if d := math.Abs(genF.P[v] - full[v]); d > worst {
			worst = d
		}
	}
	fmt.Printf("  fanout>=maxdeg vs full expansion:  max |Δp| = %.2e\n", worst)
}
