// Caching policies: a miniature of the paper's Figure 2. Partition a
// power-law graph, then compare every static caching policy — degree,
// 1-hop halo, weighted reverse PageRank, path counting, simulated access
// frequencies, analytic VIP, and the retroactive oracle — by the remote
// communication volume each leaves at several replication factors.
//
// Run with:
//
//	go run ./examples/caching-policies
package main

import (
	"fmt"
	"log"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/experiments"
	"salientpp/internal/metrics"
)

// seed pins the dataset, partition, and policy evaluation streams so
// repeated runs are identical.
const seed = 11

func main() {
	log.SetFlags(0)

	ds, err := dataset.PapersSim(30000, false, seed)
	if err != nil {
		log.Fatal(err)
	}
	const k = 4
	dep, err := experiments.Deploy(ds, k, experiments.ModelDims{Hidden: 256, Fanouts: []int{15, 10, 5}}, 64, false, seed, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d-way partition, fanouts (15,10,5), batch 64\n\n", ds.Name, k)

	alphas := []float64{0.05, 0.20, 0.50}
	const evalEpochs = 4
	const evalSeed = 777

	// Measure each partition's access counts once; every policy and α is
	// then evaluated exactly on the same epochs.
	table := metrics.NewTable("per-epoch remote fetch volume (vertices); lower is better",
		"policy", "α=0.05", "α=0.20", "α=0.50")
	totals := map[string][]float64{}
	n := ds.NumVertices()
	var upper float64
	lower := make([]float64, len(alphas))

	policies := cache.Registry(2, evalEpochs, evalSeed)
	for part := 0; part < k; part++ {
		ctx := &cache.Context{
			G: dep.Data.Graph, Parts: dep.Parts, K: k, Part: int32(part),
			TrainIDs: dep.TrainIDs, Fanouts: []int{15, 10, 5}, BatchSize: 64,
			Seed: 5, Workers: 2,
		}
		w, err := cache.NewWorkload(ctx, evalEpochs, evalSeed)
		if err != nil {
			log.Fatal(err)
		}
		upper += w.PerEpoch(w.RemoteTotal())
		for ai, alpha := range alphas {
			lower[ai] += w.PerEpoch(w.OracleVolume(cache.CapacityForAlpha(alpha, n, k)))
		}
		for _, p := range policies {
			ranking, err := p.Rank(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if totals[p.Name()] == nil {
				totals[p.Name()] = make([]float64, len(alphas))
			}
			for ai, alpha := range alphas {
				c, err := cache.FromRanking(ranking, cache.CapacityForAlpha(alpha, n, k), n)
				if err != nil {
					log.Fatal(err)
				}
				totals[p.Name()][ai] += w.PerEpoch(w.RemoteVolume(c))
			}
		}
	}

	table.AddRow("none (upper bound)", upper, upper, upper)
	for _, p := range policies {
		vols := totals[p.Name()]
		table.AddRow(p.Name(), vols[0], vols[1], vols[2])
	}
	table.AddRow("oracle (lower bound)", lower[0], lower[1], lower[2])
	fmt.Println(table.String())

	vip := totals["VIP"]
	fmt.Printf("\nVIP reduction vs no caching: %.1fx (α=0.05), %.1fx (α=0.20), %.1fx (α=0.50)\n",
		upper/vip[0], upper/vip[1], upper/vip[2])
}
