// Caching policies: a miniature of the paper's Figure 2. Partition a
// power-law graph, then compare every static caching policy — degree,
// 1-hop halo, weighted reverse PageRank, path counting, simulated access
// frequencies, analytic VIP, and the retroactive oracle — by the remote
// communication volume each leaves at several replication factors.
//
// The second half leaves Figure 2's static world: the access
// distribution drifts (a small hot set rotates every window) and the
// frozen setup-time prefix is replayed against the online policy — a
// frequency-decayed scorer that re-proposes the cache membership as it
// watches the stream — at the same capacity. The setup prefix is optimal
// for window 0 and decays from there; the online cache re-learns each
// hot set within a window.
//
// Run with:
//
//	go run ./examples/caching-policies
package main

import (
	"fmt"
	"log"
	"sort"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/experiments"
	"salientpp/internal/metrics"
	"salientpp/internal/rng"
)

// seed pins the dataset, partition, and policy evaluation streams so
// repeated runs are identical.
const seed = 11

func main() {
	log.SetFlags(0)

	ds, err := dataset.PapersSim(30000, false, seed)
	if err != nil {
		log.Fatal(err)
	}
	const k = 4
	dep, err := experiments.Deploy(ds, k, experiments.ModelDims{Hidden: 256, Fanouts: []int{15, 10, 5}}, 64, false, seed, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d-way partition, fanouts (15,10,5), batch 64\n\n", ds.Name, k)

	alphas := []float64{0.05, 0.20, 0.50}
	const evalEpochs = 4
	const evalSeed = 777

	// Measure each partition's access counts once; every policy and α is
	// then evaluated exactly on the same epochs.
	table := metrics.NewTable("per-epoch remote fetch volume (vertices); lower is better",
		"policy", "α=0.05", "α=0.20", "α=0.50")
	totals := map[string][]float64{}
	n := ds.NumVertices()
	var upper float64
	lower := make([]float64, len(alphas))

	policies := cache.Registry(2, evalEpochs, evalSeed)
	for part := 0; part < k; part++ {
		ctx := &cache.Context{
			G: dep.Data.Graph, Parts: dep.Parts, K: k, Part: int32(part),
			TrainIDs: dep.TrainIDs, Fanouts: []int{15, 10, 5}, BatchSize: 64,
			Seed: 5, Workers: 2,
		}
		w, err := cache.NewWorkload(ctx, evalEpochs, evalSeed)
		if err != nil {
			log.Fatal(err)
		}
		upper += w.PerEpoch(w.RemoteTotal())
		for ai, alpha := range alphas {
			lower[ai] += w.PerEpoch(w.OracleVolume(cache.CapacityForAlpha(alpha, n, k)))
		}
		for _, p := range policies {
			ranking, err := p.Rank(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if totals[p.Name()] == nil {
				totals[p.Name()] = make([]float64, len(alphas))
			}
			for ai, alpha := range alphas {
				c, err := cache.FromRanking(ranking, cache.CapacityForAlpha(alpha, n, k), n)
				if err != nil {
					log.Fatal(err)
				}
				totals[p.Name()][ai] += w.PerEpoch(w.RemoteVolume(c))
			}
		}
	}

	table.AddRow("none (upper bound)", upper, upper, upper)
	for _, p := range policies {
		vols := totals[p.Name()]
		table.AddRow(p.Name(), vols[0], vols[1], vols[2])
	}
	table.AddRow("oracle (lower bound)", lower[0], lower[1], lower[2])
	fmt.Println(table.String())

	vip := totals["VIP"]
	fmt.Printf("\nVIP reduction vs no caching: %.1fx (α=0.05), %.1fx (α=0.20), %.1fx (α=0.50)\n",
		upper/vip[0], upper/vip[1], upper/vip[2])

	driftDemo()
}

// driftDemo pits the frozen setup-time prefix against the online policy
// under a drifting access stream. Both caches hold the same number of
// vertices; only the admission rule differs. The setup ranking is fitted
// to window 0's traffic (the best any static policy can do), then the
// hot set moves every window: the static hit rate collapses to the
// uniform background while the online scorer re-admits each new hot set
// after a few rounds of observation.
func driftDemo() {
	const (
		n        = 4096 // vertex space
		capacity = 64   // cache slots, both policies
		windows  = 5    // hot set rotates at each boundary
		rounds   = 40   // observation rounds per window
		perRound = 32   // accesses per round
		refresh  = 4    // online proposal cadence, rounds
	)
	fmt.Printf("\ndrift: %d vertices, capacity %d, hot set rotates every %d rounds\n\n",
		n, capacity, rounds)

	r := rng.New(seed)
	// 90% of traffic lands in a 32-vertex hot window, the rest uniform.
	draw := func(hotBase int32) int32 {
		if r.Float64() < 0.9 {
			return (hotBase + int32(r.Intn(capacity/2))) % n
		}
		return int32(r.Intn(n))
	}
	hotFor := func(window int) int32 { return int32(window) * 769 % n }

	// Setup-time ranking: exact access counts of a window-0 rehearsal —
	// a stand-in for the VIP analysis, and unbeatable for window 0.
	counts := make([]int64, n)
	for i := 0; i < windows*rounds*perRound; i++ {
		counts[draw(hotFor(0))]++
	}
	ranking := make([]int32, n)
	for v := range ranking {
		ranking[v] = int32(v)
	}
	sort.SliceStable(ranking, func(a, b int) bool { return counts[ranking[a]] > counts[ranking[b]] })

	static, err := cache.FromRanking(ranking, capacity, n)
	if err != nil {
		log.Fatal(err)
	}
	online, err := cache.NewOnline(n, ranking[:capacity], nil, cache.OnlineConfig{HalfLife: 16})
	if err != nil {
		log.Fatal(err)
	}
	onlineSet, installs := static, 0

	table := metrics.NewTable("hit rate per window; capacity equal",
		"window", "static (frozen prefix)", "online (decayed freq)")
	for w := 0; w < windows; w++ {
		var staticHits, onlineHits, total int64
		for round := 0; round < rounds; round++ {
			var hits, misses []int32
			for i := 0; i < perRound; i++ {
				v := draw(hotFor(w))
				total++
				if static.Has(v) {
					staticHits++
				}
				if onlineSet.Has(v) {
					onlineHits++
					hits = append(hits, v)
				} else {
					misses = append(misses, v)
				}
			}
			// Exactly what dist.Store feeds the serving installer each round.
			online.Observe(cache.RoundAccess{Hits: hits, Misses: [][]int32{misses}})
			if (round+1)%refresh == 0 {
				next, err := cache.Build(online.Propose(capacity), n)
				if err != nil {
					log.Fatal(err)
				}
				if len(next.IDs()) != len(onlineSet.IDs()) || !sameMembers(next, onlineSet) {
					onlineSet = next
					installs++
				}
			}
		}
		table.AddRow(fmt.Sprintf("%d (hot base %d)", w, hotFor(w)),
			float64(staticHits)/float64(total), float64(onlineHits)/float64(total))
	}
	fmt.Println(table.String())
	fmt.Printf("\n%d epoch installs; the serving analog is `gnnserve -drift` and the\n"+
		"training analog is pipeline.SetupConfig{OnlineCache: true}.\n", installs)
}

// sameMembers reports whether two cache indexes hold the same vertex set.
func sameMembers(a, b *cache.Cache) bool {
	for _, v := range a.IDs() {
		if !b.Has(v) {
			return false
		}
	}
	return true
}
