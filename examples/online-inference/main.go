// Online inference: trains a 2-machine cluster for a few epochs, freezes
// the model into the coalescing inference server, and serves concurrent
// per-vertex prediction requests — once without a remote-feature cache,
// once with the VIP cache, and once with the VIP cache plus the int8
// serving backend — demonstrating that the static cache absorbs most
// remote feature traffic at serving time, that the reduced-precision
// backend cuts serve-side compute on top of it, and that predictions stay
// deterministic for a given seed and request set.
//
// Run with:
//
//	go run ./examples/online-inference [-tcp]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"salientpp"
	"salientpp/internal/rng"
	"salientpp/internal/serve"
)

// Explicit seeds for every random stream: dataset generation, training,
// model initialization, serving-time sampling, and the client request
// streams. The with/without-cache comparison relies on the serving
// workload being identical across the two runs.
const (
	dataSeed   = 9
	trainSeed  = 21
	modelSeed  = 5
	serveSeed  = 13
	clientSeed = 40
)

func main() {
	log.SetFlags(0)
	useTCP := flag.Bool("tcp", false, "use loopback TCP transports")
	flag.Parse()

	ds, err := salientpp.NewProductsDataset(6000, true, dataSeed)
	if err != nil {
		log.Fatal(err)
	}
	transport := "in-process channels"
	if *useTCP {
		transport = "loopback TCP"
	}
	fmt.Printf("serving dataset %s from 2 machines over %s\n\n", ds.Name, transport)

	run := func(alpha float64, precision string) serve.Snapshot {
		cluster, err := salientpp.NewCluster(ds, salientpp.ClusterConfig{
			K: 2, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: 32, Layers: 2, UseTCP: *useTCP,
			Train: salientpp.TrainConfig{
				Fanouts: []int{10, 5}, BatchSize: 64,
				PipelineDepth: 10, SamplerWorkers: 2, LR: 0.01, Seed: trainSeed,
			},
			ModelSeed: modelSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		for epoch := 0; epoch < 2; epoch++ {
			if _, err := cluster.TrainEpochAll(epoch); err != nil {
				log.Fatal(err)
			}
		}

		// Freeze the trained model into the serving deployment. Requests
		// for the same vertex arriving together coalesce into one sampled
		// micro-batch; a rank fires a round at 16 requests or after 500µs.
		// Precision "int8" freezes quantized weights and runs the integer
		// SIMD forward over quantized gathers; "" serves plain fp32.
		srv, err := serve.New(cluster, serve.Config{
			MaxBatch: 16, MaxWait: 0 /* default 500µs */, Seed: serveSeed, UseTCP: *useTCP,
			Precision: precision,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		const clients, perClient = 4, 100
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(clientSeed).Split(uint64(c))
				out := make([]float32, srv.Classes())
				for i := 0; i < perClient; i++ {
					v := int32(r.Intn(ds.NumVertices()))
					if _, err := srv.Predict(v, out); err != nil {
						log.Fatal(err)
					}
				}
			}(c)
		}
		wg.Wait()
		return srv.Snapshot()
	}

	noCache := run(0, "")
	vip := run(0.32, "")
	vipInt8 := run(0.32, "int8")

	fmt.Printf("%-26s %-10s %-12s %-12s %-12s %-14s %-16s %s\n",
		"configuration", "requests", "p50 (ms)", "p95 (ms)", "mean batch", "remote rows", "cache hit rate", "compute (ms)")
	row := func(name string, s serve.Snapshot) {
		fmt.Printf("%-26s %-10d %-12.3f %-12.3f %-12.2f %-14d %-16.3f %.2f\n",
			name, s.Requests, s.P50*1e3, s.P95*1e3, s.MeanBatch, s.RemoteFetches, s.CacheHitRate, s.ComputeSeconds*1e3)
	}
	row("no cache (α=0)", noCache)
	row("VIP cache (α=0.32)", vip)
	row("VIP cache + int8 serve", vipInt8)
	fmt.Printf("\nremote-feature reduction at serving time: %.1fx on the same-seed workload\n",
		float64(noCache.RemoteFetches)/float64(vip.RemoteFetches))
	fmt.Printf("int8 serving compute: %.2fms vs %.2fms fp32 (same rows fetched: %d vs %d)\n",
		vipInt8.ComputeSeconds*1e3, vip.ComputeSeconds*1e3, vipInt8.RemoteFetches, vip.RemoteFetches)
}
