// Online inference: trains a 2-machine cluster for a few epochs, freezes
// the model into the coalescing inference server, and serves concurrent
// per-vertex prediction requests — once without a remote-feature cache,
// once with the VIP cache, and once with the VIP cache plus the int8
// serving backend — demonstrating that the static cache absorbs most
// remote feature traffic at serving time, that the reduced-precision
// backend cuts serve-side compute on top of it, and that predictions stay
// deterministic for a given seed and request set.
//
// The final act demonstrates degraded mode: one rank's transport is
// stalled mid-service (seeded fault injection via dist.Chaos), the gather
// deadline fires, and the server keeps answering every request from the
// VIP cache plus the local shard — responses are flagged Degraded rather
// than hanging or erroring — until the stall clears and a background
// regroup restores full-fidelity serving.
//
// Run with:
//
//	go run ./examples/online-inference [-tcp]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"salientpp"
	"salientpp/internal/dist"
	"salientpp/internal/rng"
	"salientpp/internal/serve"
)

// Explicit seeds for every random stream: dataset generation, training,
// model initialization, serving-time sampling, and the client request
// streams. The with/without-cache comparison relies on the serving
// workload being identical across the two runs.
const (
	dataSeed   = 9
	trainSeed  = 21
	modelSeed  = 5
	serveSeed  = 13
	clientSeed = 40
)

func main() {
	log.SetFlags(0)
	useTCP := flag.Bool("tcp", false, "use loopback TCP transports")
	flag.Parse()

	ds, err := salientpp.NewProductsDataset(6000, true, dataSeed)
	if err != nil {
		log.Fatal(err)
	}
	transport := "in-process channels"
	if *useTCP {
		transport = "loopback TCP"
	}
	fmt.Printf("serving dataset %s from 2 machines over %s\n\n", ds.Name, transport)

	run := func(alpha float64, precision string) serve.Snapshot {
		cluster, err := salientpp.NewCluster(ds, salientpp.ClusterConfig{
			K: 2, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: 32, Layers: 2, UseTCP: *useTCP,
			Train: salientpp.TrainConfig{
				Fanouts: []int{10, 5}, BatchSize: 64,
				PipelineDepth: 10, SamplerWorkers: 2, LR: 0.01, Seed: trainSeed,
			},
			ModelSeed: modelSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		for epoch := 0; epoch < 2; epoch++ {
			if _, err := cluster.TrainEpochAll(epoch); err != nil {
				log.Fatal(err)
			}
		}

		// Freeze the trained model into the serving deployment. Requests
		// for the same vertex arriving together coalesce into one sampled
		// micro-batch; a rank fires a round at 16 requests or after 500µs.
		// Precision "int8" freezes quantized weights and runs the integer
		// SIMD forward over quantized gathers; "" serves plain fp32.
		srv, err := serve.New(cluster, serve.Config{
			MaxBatch: 16, MaxWait: 0 /* default 500µs */, Seed: serveSeed, UseTCP: *useTCP,
			Precision: precision,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		const clients, perClient = 4, 100
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(clientSeed).Split(uint64(c))
				out := make([]float32, srv.Classes())
				for i := 0; i < perClient; i++ {
					v := int32(r.Intn(ds.NumVertices()))
					if _, err := srv.Predict(v, out); err != nil {
						log.Fatal(err)
					}
				}
			}(c)
		}
		wg.Wait()
		return srv.Snapshot()
	}

	noCache := run(0, "")
	vip := run(0.32, "")
	vipInt8 := run(0.32, "int8")

	fmt.Printf("%-26s %-10s %-12s %-12s %-12s %-14s %-16s %s\n",
		"configuration", "requests", "p50 (ms)", "p95 (ms)", "mean batch", "remote rows", "cache hit rate", "compute (ms)")
	row := func(name string, s serve.Snapshot) {
		fmt.Printf("%-26s %-10d %-12.3f %-12.3f %-12.2f %-14d %-16.3f %.2f\n",
			name, s.Requests, s.P50*1e3, s.P95*1e3, s.MeanBatch, s.RemoteFetches, s.CacheHitRate, s.ComputeSeconds*1e3)
	}
	row("no cache (α=0)", noCache)
	row("VIP cache (α=0.32)", vip)
	row("VIP cache + int8 serve", vipInt8)
	fmt.Printf("\nremote-feature reduction at serving time: %.1fx on the same-seed workload\n",
		float64(noCache.RemoteFetches)/float64(vip.RemoteFetches))
	fmt.Printf("int8 serving compute: %.2fms vs %.2fms fp32 (same rows fetched: %d vs %d)\n",
		vipInt8.ComputeSeconds*1e3, vip.ComputeSeconds*1e3, vipInt8.RemoteFetches, vip.RemoteFetches)

	fmt.Println()
	degradedDemo(ds, *useTCP)
}

// degradedDemo stalls rank 1's transport mid-service and shows the server
// staying available: gathers time out, responses degrade to cache + local
// shard (flagged, never silently wrong, never hung), and once the stall
// clears a background regroup restores normal serving.
func degradedDemo(ds *salientpp.Dataset, useTCP bool) {
	cluster, err := salientpp.NewCluster(ds, salientpp.ClusterConfig{
		K: 2, Alpha: 0.32, GPUFraction: 1, VIPReorder: true,
		Hidden: 32, Layers: 2, UseTCP: useTCP,
		Train: salientpp.TrainConfig{
			Fanouts: []int{10, 5}, BatchSize: 64,
			PipelineDepth: 10, SamplerWorkers: 2, LR: 0.01, Seed: trainSeed,
		},
		ModelSeed: modelSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	for epoch := 0; epoch < 2; epoch++ {
		if _, err := cluster.TrainEpochAll(epoch); err != nil {
			log.Fatal(err)
		}
	}

	// A seeded chaos schedule wraps rank 1's transport; Stall() freezes its
	// collectives until Clear(). The gather deadline bounds how long a
	// round can wait on the frozen peer before degrading.
	chaos := dist.NewChaos(dist.ChaosConfig{Seed: 11})
	srv, err := serve.New(cluster, serve.Config{
		MaxBatch: 16, Seed: serveSeed, UseTCP: useTCP,
		Deadline:      20 * time.Millisecond,
		GatherTimeout: 5 * time.Millisecond,
		ProbeInterval: 2 * time.Millisecond,
		WrapComm: func(rank int, c dist.Comm) dist.Comm {
			if rank == 1 {
				return chaos.Wrap(c)
			}
			return c
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	r := rng.New(clientSeed)
	out := make([]float32, srv.Classes())
	serveSome := func(n int) (answered, degraded, shed int) {
		for i := 0; i < n; i++ {
			v := int32(r.Intn(ds.NumVertices()))
			stats, err := srv.Predict(v, out)
			switch {
			case err == salientpp.ErrShed:
				shed++ // explicit overload rejection, never a silent drop
			case err != nil:
				log.Fatal(err)
			default:
				answered++
				if stats.Degraded {
					degraded++
				}
			}
		}
		return
	}

	a, d, _ := serveSome(40)
	fmt.Printf("overload & degraded mode (gather deadline 5ms, admission budget 20ms):\n")
	fmt.Printf("  healthy:   %d/%d answered, %d degraded\n", a, a, d)

	chaos.Stall() // rank 1's collectives now hang
	a, d, s := serveSome(40)
	fmt.Printf("  stalled:   %d answered (%d degraded from cache + local shard), %d shed — zero hangs\n", a, d, s)

	chaos.Clear() // stall over; the background regroup restores fidelity
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := srv.Predict(int32(r.Intn(ds.NumVertices())), out)
		if err == nil && !stats.Degraded {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("serving did not recover after the stall cleared")
		}
	}
	snap := srv.Snapshot()
	fmt.Printf("  recovered: full-fidelity serving restored (%d gather timeouts, %d degraded rounds, %d regroups)\n",
		snap.GatherTimeouts, snap.DegradedRounds, snap.Regroups)
}
