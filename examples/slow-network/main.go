// Slow network: what the paper's Figure 9 setting looks like once both of
// SALIENT++'s communication levers are applied. The VIP cache decides how
// many remote feature rows move; the wire codec (fp32/fp16/int8) decides
// how many bytes each remaining row costs. On a fast interconnect the
// codec is invisible in wall clock — on a token-bucket-shaped slow link it
// is the difference between a communication-bound and a compute-bound
// epoch.
//
// The example trains one real epoch per codec on a 2-machine in-process
// cluster (identical seeds, so every codec fetches exactly the same remote
// rows), measures the actual encoded bytes the transports shipped, and
// replays those bytes through the discrete token-bucket link model of
// internal/simnet at 1 and 4 Gbps — the tc-tbf emulation the paper uses —
// to obtain the wire seconds each codec would cost per epoch.
//
// Run with:
//
//	go run ./examples/slow-network
package main

import (
	"fmt"
	"log"

	"salientpp/internal/dataset"
	"salientpp/internal/metrics"
	"salientpp/internal/pipeline"
	"salientpp/internal/simnet"
)

// seed pins the dataset, partition, VIP analysis, and sampling streams so
// every codec row of the table describes the same epoch.
const seed = 13

func main() {
	log.SetFlags(0)

	ds, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "papers-sim", NumVertices: 12000, AvgDegree: 28.8,
		FeatureDim: 128, NumClasses: 32,
		TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
		FeatureNoise: 0.6, Materialize: true, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	const (
		k     = 2
		alpha = 0.16
	)
	fmt.Printf("%s, N=%d, K=%d, α=%.2f VIP cache — one real epoch per wire codec\n\n",
		ds.Name, ds.NumVertices(), k, alpha)

	type row struct {
		codec  string
		remote int64
		bytes  int64
		wall   float64
		loss   float64
	}
	var rows []row
	for _, codec := range []string{"fp32", "fp16", "int8"} {
		cl, err := pipeline.NewCluster(ds, pipeline.ClusterConfig{
			K: k, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: 32, Layers: 2, Codec: codec,
			Train: pipeline.Config{
				Fanouts: []int{10, 5}, BatchSize: 64, PipelineDepth: 10,
				SamplerWorkers: 2, Parallelism: 2, LR: 1e-3, Seed: seed,
			},
			ModelSeed: seed + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := cl.TrainEpochAll(0)
		if err != nil {
			cl.Close()
			log.Fatal(err)
		}
		r := row{codec: codec}
		var lossN int
		for _, s := range stats {
			r.bytes += s.BytesSent
			r.remote += int64(s.Gather.RemoteFetch)
			if s.Batches > 0 {
				r.loss += s.Loss
				lossN++
			}
			if w := s.Duration.Seconds(); w > r.wall {
				r.wall = w
			}
		}
		if lossN > 0 {
			r.loss /= float64(lossN)
		}
		rows = append(rows, r)
		cl.Close()
	}

	// Replay each epoch's measured wire bytes through the token-bucket
	// link model (50µs latency, TBF-shaped like tc): the time the last
	// byte of the epoch's feature communication arrives on a 1 or 4 Gbps
	// interconnect.
	wire := func(bytes int64, gbps float64) float64 {
		link := simnet.NewLink(gbps, 50e-6).WithTBF(gbps)
		return link.Transfer(0, bytes)
	}

	t := metrics.NewTable(
		"Wire codec sweep: identical epochs, measured encoded bytes, modeled slow-network wire seconds",
		"codec", "remote rows", "MB on wire", "wire s @1Gbps", "wire s @4Gbps", "epoch wall (s)", "loss")
	base := rows[0]
	for _, r := range rows {
		t.AddRow(
			r.codec,
			r.remote,
			fmt.Sprintf("%.2f (%.0f%%)", float64(r.bytes)/1e6, 100*float64(r.bytes)/float64(base.bytes)),
			fmt.Sprintf("%.4f", wire(r.bytes, 1)),
			fmt.Sprintf("%.4f", wire(r.bytes, 4)),
			fmt.Sprintf("%.3f", r.wall),
			fmt.Sprintf("%.4f", r.loss))
	}
	fmt.Println(t.String())
	fmt.Println()
	fmt.Println("Reading the table: remote rows are identical by construction — the codec")
	fmt.Println("compresses traffic, it never changes what is fetched. Wire seconds scale")
	fmt.Println("linearly with bytes, so fp16's ~2x and int8's ~3.5x reductions carry")
	fmt.Println("straight through; at paper scale (100-1000x these features) the 1 Gbps")
	fmt.Println("wire time dominates the epoch, and the reduction is the wall-clock win.")
	fmt.Println("The loss column shows the quantization cost stays in the noise. See the")
	fmt.Println("README's \"Communication efficiency\" section for when int8 is safe.")
}
