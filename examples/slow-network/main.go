// Slow network: a miniature of the paper's Figure 9. On a token-bucket
// shaped slow interconnect, compare the analytic VIP caching policy
// against the empirical VIP-simulation policy across replication factors
// using the discrete-event performance model: the analytic policy's edge
// grows as the replication factor increases, because empirical counts are
// noisy exactly for the rarely-accessed vertices that large caches must
// rank correctly.
//
// Run with:
//
//	go run ./examples/slow-network
package main

import (
	"fmt"
	"log"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/experiments"
	"salientpp/internal/metrics"
	"salientpp/internal/perfmodel"
)

// seed pins the dataset, partition, and simulated epochs so repeated
// runs are identical.
const seed = 13

func main() {
	log.SetFlags(0)

	ds, err := dataset.PapersSim(40000, false, seed)
	if err != nil {
		log.Fatal(err)
	}
	const k = 8
	dep, err := experiments.Deploy(ds, k, experiments.PaperDims(ds.Name), 32, true, seed, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d machines, token-bucket shaped networks\n\n", ds.Name, k)

	policies := map[string]cache.Policy{
		"VIP (analytic)":   cache.VIP{},
		"VIP (simulation)": cache.Simulated{Epochs: 2},
	}
	rankings := map[string][][]int32{}
	for name, p := range policies {
		r, err := dep.Rankings(p)
		if err != nil {
			log.Fatal(err)
		}
		rankings[name] = r
	}

	alphas := []float64{0.16, 0.32, 0.64}
	for _, gbps := range []float64{4, 8} {
		hw := perfmodel.DefaultHardware().WithNetwork(25, gbps)
		t := metrics.NewTable(fmt.Sprintf("%.0f Gbps network: simulated epoch seconds", gbps),
			"policy", "α=0.16", "α=0.32", "α=0.64")
		for _, name := range []string{"VIP (analytic)", "VIP (simulation)"} {
			row := []any{name}
			for _, alpha := range alphas {
				scen, err := dep.Scenario(rankings[name], alpha, 0.9)
				if err != nil {
					log.Fatal(err)
				}
				w, err := dep.Workload(scen)
				if err != nil {
					log.Fatal(err)
				}
				res, err := perfmodel.Simulate(perfmodel.SystemPipelined, w, hw)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, fmt.Sprintf("%.4f", res.EpochSeconds))
			}
			t.AddRow(row...)
		}
		fmt.Println(t.String())
		fmt.Println()
	}
}
