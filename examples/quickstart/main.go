// Quickstart: the complete SALIENT++ workflow in ~60 lines — generate a
// synthetic dataset, inspect a partition, compute VIP values, assemble a
// 2-machine in-process cluster with a VIP cache, train a few epochs, and
// evaluate with sampled inference.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"salientpp"
	"salientpp/internal/dataset"
)

// seed pins the dataset and partition; the training loop's own streams
// are seeded in TrainConfig below, so the whole run is reproducible.
const seed = 42

func main() {
	log.SetFlags(0)

	// 1. A scaled ogbn-products analog with materialized features.
	ds, err := salientpp.NewProductsDataset(4000, true, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges, %d features, %d train\n",
		ds.Name, ds.NumVertices(), ds.Graph.NumEdges(), ds.FeatureDim, ds.CountSplit(dataset.SplitTrain))

	// 2. Partition with the paper's balance constraints.
	part, err := salientpp.PartitionGraph(ds, 2, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-way partition: edge cut %d (%.1f%% of edges), sizes %v\n",
		part.EdgeCut, 100*part.CutFraction(ds.Graph), part.PartSizes())

	// 3. VIP analysis (Proposition 1): probability that each vertex appears
	// in a sampled 2-hop neighborhood of a minibatch.
	vip, err := salientpp.VIPProbabilities(ds.Graph, ds.TrainIDs(), salientpp.VIPConfig{
		Fanouts: []int{10, 5}, BatchSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	hot, cold := 0, 0
	for _, p := range vip {
		if p > 0.5 {
			hot++
		} else if p < 0.01 {
			cold++
		}
	}
	fmt.Printf("VIP: %d hot vertices (p>0.5), %d cold (p<0.01) of %d\n", hot, cold, len(vip))

	// 4. A 2-machine cluster: partitioned features, VIP reordering,
	// VIP-ranked remote cache at replication factor 0.2, deep pipeline.
	cluster, err := salientpp.NewCluster(ds, salientpp.ClusterConfig{
		K: 2, Alpha: 0.2, GPUFraction: 0.5, VIPReorder: true,
		Hidden: 32, Layers: 2,
		Train: salientpp.TrainConfig{
			Fanouts: []int{10, 5}, BatchSize: 64,
			PipelineDepth: 10, SamplerWorkers: 2, LR: 0.01, Seed: 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 5. Train.
	for epoch := 0; epoch < 4; epoch++ {
		stats, err := cluster.TrainEpochAll(epoch)
		if err != nil {
			log.Fatal(err)
		}
		var loss float64
		var remote, hits int
		for _, s := range stats {
			loss += s.Loss / float64(len(stats))
			remote += s.Gather.RemoteFetch
			hits += s.Gather.CacheHits
		}
		fmt.Printf("epoch %d: loss %.3f, remote fetches %d, cache hits %d\n", epoch, loss, remote, hits)
	}

	// 6. Sampled inference on the validation split.
	acc, err := cluster.EvaluateAll(dataset.SplitVal, []int{15, 15}, 64, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation accuracy: %.3f\n", acc)
}
