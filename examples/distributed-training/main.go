// Distributed training: trains the same model twice on a 4-machine
// in-process cluster — once without a remote-feature cache and once with
// the VIP cache — demonstrating that caching removes most feature
// communication without changing the learning trajectory. Pass -tcp to
// run the feature and gradient collectives over real loopback TCP instead
// of in-process channels.
//
// Run with:
//
//	go run ./examples/distributed-training [-tcp]
package main

import (
	"flag"
	"fmt"
	"log"

	"salientpp"
	"salientpp/internal/dataset"
)

// Explicit seeds for every random stream: the dataset generator, the
// per-rank sampling/dropout streams, and the model initialization. The
// with/without-cache comparison below relies on them being identical
// across the two runs.
const (
	dataSeed  = 9
	trainSeed = 21
	modelSeed = 5
)

func main() {
	log.SetFlags(0)
	useTCP := flag.Bool("tcp", false, "use loopback TCP transports")
	flag.Parse()

	ds, err := salientpp.NewProductsDataset(6000, true, dataSeed)
	if err != nil {
		log.Fatal(err)
	}
	transport := "in-process channels"
	if *useTCP {
		transport = "loopback TCP"
	}
	fmt.Printf("dataset %s on 4 machines over %s\n\n", ds.Name, transport)

	run := func(alpha float64) (finalLoss, valAcc float64, remote, hits int64) {
		cluster, err := salientpp.NewCluster(ds, salientpp.ClusterConfig{
			K: 4, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: 32, Layers: 2, UseTCP: *useTCP,
			Train: salientpp.TrainConfig{
				Fanouts: []int{10, 5}, BatchSize: 64,
				PipelineDepth: 10, SamplerWorkers: 2, LR: 0.01, Seed: trainSeed,
			},
			ModelSeed: modelSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		for epoch := 0; epoch < 4; epoch++ {
			stats, err := cluster.TrainEpochAll(epoch)
			if err != nil {
				log.Fatal(err)
			}
			finalLoss = 0
			remote, hits = 0, 0
			for _, s := range stats {
				finalLoss += s.Loss / float64(len(stats))
				remote += int64(s.Gather.RemoteFetch)
				hits += int64(s.Gather.CacheHits)
			}
		}
		valAcc, err = cluster.EvaluateAll(dataset.SplitVal, []int{15, 15}, 64, 0)
		if err != nil {
			log.Fatal(err)
		}
		return finalLoss, valAcc, remote, hits
	}

	lossNo, accNo, remoteNo, _ := run(0)
	lossVIP, accVIP, remoteVIP, hitsVIP := run(0.32)

	fmt.Printf("%-22s %-12s %-10s %-16s %s\n", "configuration", "final loss", "val acc", "remote/epoch", "cache hits/epoch")
	fmt.Printf("%-22s %-12.3f %-10.3f %-16d %d\n", "no cache (α=0)", lossNo, accNo, remoteNo, 0)
	fmt.Printf("%-22s %-12.3f %-10.3f %-16d %d\n", "VIP cache (α=0.32)", lossVIP, accVIP, remoteVIP, hitsVIP)
	fmt.Printf("\ncommunication reduction: %.1fx; training quality unchanged (same seeds, same trajectory)\n",
		float64(remoteNo)/float64(remoteVIP))
}
