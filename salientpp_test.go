package salientpp

import (
	"testing"

	"salientpp/internal/dataset"
)

// The facade test exercises the complete public workflow end to end:
// dataset → partition → VIP → cluster → train → evaluate.
func TestPublicAPIWorkflow(t *testing.T) {
	ds, err := NewProductsDataset(2500, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartitionGraph(ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut <= 0 {
		t.Fatal("degenerate partition")
	}

	p, err := VIPProbabilities(ds.Graph, ds.TrainIDs(), VIPConfig{Fanouts: []int{5, 3}, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != ds.NumVertices() {
		t.Fatal("VIP vector wrong length")
	}

	cl, err := NewCluster(ds, ClusterConfig{
		K: 2, Alpha: 0.2, GPUFraction: 1, VIPReorder: true,
		Hidden: 16, Layers: 2,
		Train: TrainConfig{Fanouts: []int{5, 3}, BatchSize: 64, LR: 0.01, Seed: 2, SamplerWorkers: 2, PipelineDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for e := 0; e < 2; e++ {
		if _, err := cl.TrainEpochAll(e); err != nil {
			t.Fatal(err)
		}
	}
	acc, err := cl.EvaluateAll(dataset.SplitVal, []int{8, 8}, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 {
		t.Fatal("evaluation produced zero accuracy on a learnable dataset")
	}
}

func TestCachePoliciesRegistry(t *testing.T) {
	ps := CachePolicies(2, 2, 1)
	if len(ps) != 7 {
		t.Fatalf("expected the 7 Figure 2 policies, got %d", len(ps))
	}
	if VIPCachePolicy().Name() != "VIP" {
		t.Fatal("wrong default policy")
	}
}

func TestWireCodecsListsSupportedNames(t *testing.T) {
	got := WireCodecs()
	want := []string{"fp32", "fp16", "int8"}
	if len(got) != len(want) {
		t.Fatalf("WireCodecs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WireCodecs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
