// Package salientpp is a from-scratch Go reproduction of SALIENT++
// (Kaler et al., "Communication-Efficient Graph Neural Networks with
// Probabilistic Neighborhood Expansion Analysis and Caching", MLSys 2023):
// distributed GNN minibatch training with partitioned vertex features,
// vertex-inclusion-probability (VIP) analysis, VIP-driven static caching
// of remote features, VIP-ordered GPU residency, and a deep
// minibatch-preparation pipeline.
//
// This root package is the facade over the implementation packages:
//
//   - internal/rng        — splittable seeded PRNG, zipf load sampler
//   - internal/graph      — CSR graphs, generators, reordering
//   - internal/dataset    — synthetic OGB analogs (Table 2)
//   - internal/partition  — multilevel multi-constraint edge-cut partitioner
//   - internal/vip        — Proposition 1 (the paper's core analysis)
//   - internal/cache      — the seven caching policies of Figure 2
//   - internal/sample     — node-wise neighborhood sampling and MFGs
//   - internal/tensor,nn  — dense float32 tensors and GraphSAGE fwd/bwd
//   - internal/dist       — transports, collectives, partitioned feature
//     store, wire codecs, compressed gradient all-reduce, chaos injection
//   - internal/pipeline   — the real 10-stage training pipeline (§4.3)
//   - internal/ckpt       — versioned coordinated checkpoints and restore
//   - internal/serve      — online inference with request coalescing
//   - internal/simnet     — bandwidth/latency/token-bucket link models
//   - internal/perfmodel  — discrete-event performance simulator
//   - internal/metrics    — text tables and histograms for the harnesses
//   - internal/experiments— harnesses for every table and figure
//
// docs/ARCHITECTURE.md maps these packages onto the train and serve data
// flows and lists where each guarantee is pinned by a test. The quickest
// tour is examples/quickstart; cmd/salientbench regenerates the paper's
// evaluation tables.
package salientpp

import (
	"salientpp/internal/cache"
	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/graph"
	"salientpp/internal/partition"
	"salientpp/internal/pipeline"
	"salientpp/internal/serve"
	"salientpp/internal/vip"
)

// Re-exported core types. These aliases are the supported public surface;
// the internal packages remain free to grow without breaking users.
type (
	// Graph is a compressed-sparse-row undirected graph.
	Graph = graph.CSR
	// Dataset bundles a graph with features, labels, and splits.
	Dataset = dataset.Dataset
	// PartitionResult is a K-way vertex partition with quality metrics.
	PartitionResult = partition.Result
	// VIPConfig parametrizes Proposition 1.
	VIPConfig = vip.Config
	// CachePolicy ranks remote vertices for the setup-time cache.
	CachePolicy = cache.Ranker
	// OnlineCachePolicy is the online admission/eviction interface the
	// versioned cache layer consults between rounds.
	OnlineCachePolicy = cache.Policy
	// CacheEpoch is one immutable installed version of a rank's cache.
	CacheEpoch = cache.Epoch
	// Cluster is an in-process K-machine SALIENT++ deployment.
	Cluster = pipeline.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = pipeline.ClusterConfig
	// TrainConfig configures the per-rank training loop.
	TrainConfig = pipeline.Config
	// Server coalesces concurrent per-vertex prediction requests into
	// sampled micro-batches over a frozen model snapshot.
	Server = serve.Server
	// ServeConfig configures the coalescing admission policy.
	ServeConfig = serve.Config
	// ServeStats is the per-request latency accounting Predict returns.
	ServeStats = serve.Stats
	// CheckpointConfig configures coordinated fault-tolerance checkpoints
	// (ClusterConfig.Checkpoint): trigger cadence, directory, rotation.
	CheckpointConfig = ckpt.Config
	// TrainState is a complete restored checkpoint (ClusterConfig.Resume):
	// weights, Adam moments, RNG streams, the epoch/round cursor, and the
	// partition/VIP/cache topology.
	TrainState = ckpt.TrainState
	// ElasticConfig tunes elastic training (TrainElastic): minimum
	// surviving member count, probe timeout, recovery budget, and an
	// optional counter registry.
	ElasticConfig = pipeline.ElasticConfig
	// ElasticReport summarizes an elastic run: stall/regroup/replay
	// counters, the final member set, per-epoch stats, and one
	// RegroupEvent per membership change.
	ElasticReport = pipeline.ElasticReport
	// RegroupEvent records one membership change: the consensus resume
	// step, the surviving original ranks, and the shrunk training state
	// the survivors continued from.
	RegroupEvent = pipeline.RegroupEvent
)

// ErrShed is returned by Server.Predict when deadline-aware admission
// control (ServeConfig.Deadline) concludes the request cannot be answered
// within its budget. Shedding is always explicit — an overloaded server
// answers every request with either a prediction or ErrShed, never
// silence — so callers can back off and retry.
var ErrShed = serve.ErrShed

// ErrShrinkAborted is returned by TrainElastic when a recovery attempt
// cannot produce a viable smaller cluster — fewer than
// ElasticConfig.MinRanks survivors answered the probe, or the survivors
// hold no common checkpoint. The run stops rather than continuing on a
// membership it cannot trust.
var ErrShrinkAborted = pipeline.ErrShrinkAborted

// NewPapersDataset generates the scaled ogbn-papers100M analog with n
// vertices (features materialized when materialize is true).
func NewPapersDataset(n int, materialize bool, seed uint64) (*Dataset, error) {
	return dataset.PapersSim(n, materialize, seed)
}

// NewProductsDataset generates the scaled ogbn-products analog.
func NewProductsDataset(n int, materialize bool, seed uint64) (*Dataset, error) {
	return dataset.ProductsSim(n, materialize, seed)
}

// NewMag240Dataset generates the scaled mag240 papers-citation analog.
func NewMag240Dataset(n int, materialize bool, seed uint64) (*Dataset, error) {
	return dataset.Mag240Sim(n, materialize, seed)
}

// PartitionGraph computes a K-way edge-cut partition with the paper's
// balance constraints derived from the dataset splits.
func PartitionGraph(ds *Dataset, k int, seed uint64) (*PartitionResult, error) {
	isTrain := make([]bool, ds.NumVertices())
	isVal := make([]bool, ds.NumVertices())
	isTest := make([]bool, ds.NumVertices())
	for v, s := range ds.Splits {
		switch s {
		case dataset.SplitTrain:
			isTrain[v] = true
		case dataset.SplitVal:
			isVal[v] = true
		case dataset.SplitTest:
			isTest[v] = true
		}
	}
	return partition.Partition(ds.Graph, partition.Config{
		K:       k,
		Weights: partition.SalientWeights(ds.Graph, isTrain, isVal, isTest),
		Seed:    seed,
	})
}

// VIPProbabilities runs Proposition 1 for one partition's minibatch
// distribution and returns per-vertex inclusion probabilities. Set
// cfg.Workers to bound the sharded parallel propagation (0 uses
// GOMAXPROCS); the result is bitwise-identical for every worker count.
// The analogous training-side knobs are TrainConfig.SamplerWorkers (batch
// preparation) and TrainConfig.Parallelism (setup-time analysis).
func VIPProbabilities(g *Graph, trainIDs []int32, cfg VIPConfig) ([]float64, error) {
	p0 := vip.UniformSeeds(g.NumVertices(), trainIDs, cfg.BatchSize)
	res, err := vip.Probabilities(g, p0, cfg, false)
	if err != nil {
		return nil, err
	}
	return res.P, nil
}

// NewCluster assembles a ready-to-train in-process SALIENT++ deployment:
// partitioning, VIP analysis, vertex reordering, cache construction,
// feature sharding, communicators, and per-rank models.
func NewCluster(ds *Dataset, cfg ClusterConfig) (*Cluster, error) {
	return pipeline.NewCluster(ds, cfg)
}

// TrainElastic trains for the given number of epochs while surviving rank
// failures: every training collective is bounded by
// ClusterConfig.StallTimeout; on a stall the survivors probe each other,
// agree on the newest checkpoint they all hold, absorb the dead rank's
// feature shard and VIP cache slice, and continue on K-1 machines —
// bitwise identical to a cold K-1 restart from that same checkpoint.
// Requires ClusterConfig.Checkpoint to be enabled. The returned cluster
// is still open (evaluate on it, then Close); the report carries the
// recovery counters and per-epoch stats.
func TrainElastic(ds *Dataset, cfg ClusterConfig, epochs int, ecfg ElasticConfig) (*Cluster, *ElasticReport, error) {
	return pipeline.TrainElastic(ds, cfg, epochs, ecfg)
}

// NewServer builds an online-inference server over a cluster: per rank, a
// sibling feature store sharing the read-only shard and cache, a frozen
// snapshot of the rank's model, and a coalescing admission queue. The
// cluster may keep training afterwards; predictions come from the
// snapshot.
func NewServer(cl *Cluster, cfg ServeConfig) (*Server, error) {
	return serve.New(cl, cfg)
}

// LoadCheckpoint decodes and validates the checkpoint at path (the
// CRC-checked binary format of internal/ckpt). Pass the result as
// ClusterConfig.Resume to continue the run bitwise identically, or build a
// cluster from it and hand that to NewServer to serve the snapshot.
func LoadCheckpoint(path string) (*TrainState, error) { return ckpt.Load(path) }

// LoadLatestCheckpoint loads the newest valid checkpoint in dir, skipping
// torn or corrupt files, and reports which file it used.
func LoadLatestCheckpoint(dir string) (*TrainState, string, error) { return ckpt.LoadLatest(dir) }

// WireCodecs lists the supported feature-gather wire codecs in order of
// increasing compression: "fp32" (raw, the default), "fp16" (half-precision
// rows + varint delta id lists, ~50% smaller), and "int8" (per-row-scaled
// 8-bit rows, ~75% smaller). Set ClusterConfig.Codec and/or
// ServeConfig.Codec to one of these; lossy codecs never change which rows
// are fetched, only the bytes each row costs on the wire. See the README's
// "Communication efficiency" section for when int8 is safe.
func WireCodecs() []string { return []string{"fp32", "fp16", "int8"} }

// VIPCachePolicy returns the paper's analytic caching policy.
func VIPCachePolicy() CachePolicy { return cache.VIP{} }

// CachePolicies returns the full Figure 2 policy registry.
func CachePolicies(simEpochs, oracleEpochs int, oracleSeed uint64) []CachePolicy {
	return cache.Registry(simEpochs, oracleEpochs, oracleSeed)
}
