package salientpp

import (
	"flag"
	"fmt"
	"time"

	"salientpp/internal/dist"
	"salientpp/internal/tensor"
)

// RunConfig is the unified run-configuration surface shared by the CLI
// harnesses (cmd/gnntrain, cmd/gnnserve, cmd/salientbench) and available to
// embedders. It folds the knobs that used to be ad-hoc per-command flags —
// wire codec, compute precision, worker parallelism, and coordinated
// checkpointing — into one struct with a single flag-registration and
// validation path, so every harness spells them identically and a setting
// means the same thing everywhere.
//
// The zero value is a valid fp32, fp32-serving, auto-parallelism,
// no-checkpoint run.
type RunConfig struct {
	// Codec is the feature-gather wire codec ("fp32", "fp16", "int8"; ""
	// means fp32). Lossy codecs shrink communication without changing
	// which rows move. Part of checkpoint run identity.
	Codec string
	// Precision is the serving/freeze compute precision ("fp32", "fp16",
	// "int8"; "" means fp32). Training compute is always fp32; a reduced
	// precision makes frozen snapshots and serving run quantized end to
	// end. Part of checkpoint run identity.
	Precision string
	// GradCodec is the gradient all-reduce wire codec ("fp32", "fp16",
	// "int8"; "" means fp32). Lossy codecs quantize each gradient row with
	// a per-row scale and fold the quantization error back into the next
	// round (error feedback), keeping accuracy within fractions of a point
	// of fp32. Part of checkpoint run identity: the accumulated residuals
	// are saved and restored with the model.
	GradCodec string
	// NoGradOverlap disables overlapping the per-layer gradient all-reduce
	// with the remaining backward compute. The overlap is on by default
	// and bitwise-neutral (layer reduces retire in a fixed order); the
	// switch exists for A/B measurement and debugging.
	NoGradOverlap bool
	// Parallelism bounds sampler workers and setup-time analysis threads;
	// 0 keeps each harness's own default.
	Parallelism int
	// Checkpoint configures coordinated fault-tolerance checkpoints
	// (directory, cadence triggers, retain-K rotation). An empty Dir
	// disables checkpointing.
	Checkpoint CheckpointConfig
	// Resume restores the newest valid checkpoint in Checkpoint.Dir and
	// continues bitwise identically to an uninterrupted run.
	Resume bool
	// Elastic turns a mid-run rank failure into a live membership change
	// instead of a fatal error: the survivors agree on the newest
	// checkpoint they all hold, the dead rank's shard and cache slice are
	// re-laid onto them, and training continues on K-1 machines — bitwise
	// identical to a cold K-1 restart from that checkpoint. Requires
	// Checkpoint.Dir.
	Elastic bool
	// StallTimeout bounds every training collective when Elastic is set: a
	// collective stuck this long is declared a stall and triggers the
	// recovery path. 0 uses the pipeline default (5s).
	StallTimeout time.Duration
}

// RegisterFlags installs the shared -codec/-precision/-parallelism flags on
// fs, with the receiver's current values as defaults. Call before
// fs.Parse.
func (c *RunConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Codec, "codec", c.Codec,
		"feature-gather wire codec: fp32 (raw), fp16 (half-precision rows + varint ids), int8 (per-row-scaled rows + varint ids)")
	fs.StringVar(&c.Precision, "precision", c.Precision,
		"serving/freeze compute precision: fp32, fp16, int8 (training always computes fp32); int8 runs the integer SIMD forward over quantized gathers")
	fs.StringVar(&c.GradCodec, "grad-codec", c.GradCodec,
		"gradient all-reduce wire codec: fp32 (raw), fp16 (half-precision rows), int8 (per-row-scaled rows with error-feedback residuals)")
	fs.BoolVar(&c.NoGradOverlap, "no-grad-overlap", c.NoGradOverlap,
		"disable overlapping the per-layer gradient all-reduce with backward compute (A/B measurement; results are bitwise identical either way)")
	fs.IntVar(&c.Parallelism, "parallelism", c.Parallelism,
		"sampler/analysis worker count (0 = harness default)")
}

// RegisterCheckpointFlags installs the coordinated-checkpointing flags
// (-checkpoint-dir, cadence, rotation, -resume) on fs.
func (c *RunConfig) RegisterCheckpointFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Checkpoint.Dir, "checkpoint-dir", c.Checkpoint.Dir,
		"enable coordinated checkpointing into this directory")
	fs.IntVar(&c.Checkpoint.EveryRounds, "checkpoint-every-rounds", c.Checkpoint.EveryRounds,
		"checkpoint every N pipeline rounds (0 disables mid-epoch checkpoints)")
	fs.IntVar(&c.Checkpoint.EveryEpochs, "checkpoint-every-epochs", c.Checkpoint.EveryEpochs,
		"checkpoint every N epoch boundaries (0 with no -checkpoint-every-rounds defaults to 1)")
	fs.IntVar(&c.Checkpoint.Retain, "checkpoint-retain", c.Checkpoint.Retain,
		"keep the newest N checkpoint files")
	fs.BoolVar(&c.Resume, "resume", c.Resume,
		"restore the newest valid checkpoint in -checkpoint-dir and continue")
}

// RegisterElasticFlags installs the elastic-training flags (-elastic,
// -stall-timeout) on fs. Only the training harness registers these —
// serving has its own timeout/regroup surface.
func (c *RunConfig) RegisterElasticFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Elastic, "elastic", c.Elastic,
		"survive a mid-run rank failure by shrinking onto the live ranks (needs -checkpoint-dir)")
	fs.DurationVar(&c.StallTimeout, "stall-timeout", c.StallTimeout,
		"declare a training collective stalled after this long (0 = pipeline default of 5s; needs -elastic)")
}

// Validate rejects unknown codec or precision names and negative
// parallelism early, before any cluster assembly.
func (c RunConfig) Validate() error {
	if _, err := dist.ParseCodec(c.Codec); err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	if _, err := tensor.ParsePrecision(c.Precision); err != nil {
		return fmt.Errorf("-precision: %w", err)
	}
	if _, err := dist.ParseCodec(c.GradCodec); err != nil {
		return fmt.Errorf("-grad-codec: %w", err)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("-parallelism: negative worker count %d", c.Parallelism)
	}
	if c.Resume && c.Checkpoint.Dir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}
	if c.Elastic && c.Checkpoint.Dir == "" {
		return fmt.Errorf("-elastic needs -checkpoint-dir (the survivors resume from a checkpoint they all hold)")
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("-stall-timeout: negative duration %v", c.StallTimeout)
	}
	return nil
}

// ApplyCluster copies the run configuration onto a ClusterConfig: codec,
// precision, checkpointing, and (when non-zero) the parallelism knobs.
func (c RunConfig) ApplyCluster(cc *ClusterConfig) {
	cc.Codec = c.Codec
	cc.Precision = c.Precision
	cc.Checkpoint = c.Checkpoint
	cc.Train.GradCodec = c.GradCodec
	cc.Train.NoGradOverlap = c.NoGradOverlap
	cc.StallTimeout = c.StallTimeout
	if c.Parallelism > 0 {
		cc.Train.SamplerWorkers = c.Parallelism
		cc.Train.Parallelism = c.Parallelism
	}
}

// ApplyServe copies the serving-side run configuration onto a ServeConfig.
// Empty Codec/Precision inherit the cluster's settings (the same
// negotiation ClusterConfig uses), so a RunConfig shared between cluster
// and server keeps both consistent by construction.
func (c RunConfig) ApplyServe(sc *ServeConfig) {
	sc.Codec = c.Codec
	sc.Precision = c.Precision
}

// Precisions lists the supported compute precisions in order of decreasing
// width: "fp32" (the default; training always uses it), "fp16"
// (half-precision storage, fp32 arithmetic), and "int8" (per-row-scaled
// 8-bit storage, integer SIMD GEMMs). Set RunConfig.Precision,
// ClusterConfig.Precision, or ServeConfig.Precision to one of these; see
// the README's "Compute architecture" section for when int8 serving is
// safe.
func Precisions() []string { return []string{"fp32", "fp16", "int8"} }
