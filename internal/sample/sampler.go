package sample

import (
	"fmt"
	"sync"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

// Sampler performs node-wise neighborhood sampling over a fixed graph with
// fixed per-hop fanouts. A Sampler is immutable and safe for concurrent
// use; per-goroutine mutable state lives in Workers, which the sampler
// pools so epoch-over-epoch batch preparation reuses their O(N) dedup
// arrays instead of reallocating them.
type Sampler struct {
	g       *graph.CSR
	fanouts []int
	workers sync.Pool // *Worker, recycled across epochs and goroutines
}

// NewSampler validates the fanouts and returns a sampler.
// Fanouts are in sampling order: Fanouts[0] is applied to the minibatch
// seeds (the GNN's final layer), matching PyG's NeighborLoader convention
// for a (15,10,5) specification.
func NewSampler(g *graph.CSR, fanouts []int) (*Sampler, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("sample: empty fanouts")
	}
	for i, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("sample: fanout[%d] = %d must be positive", i, f)
		}
	}
	return &Sampler{g: g, fanouts: fanouts}, nil
}

// Fanouts returns the per-hop fanouts (do not modify).
func (s *Sampler) Fanouts() []int { return s.fanouts }

// Graph returns the underlying graph.
func (s *Sampler) Graph() *graph.CSR { return s.g }

// Worker holds the scratch state for one sampling goroutine: a splittable
// RNG and O(N) stamp arrays that make per-hop deduplication O(1) per
// vertex without allocations.
type Worker struct {
	s     *Sampler
	r     *rng.RNG
	local []int32 // global id -> local index for the current hop
	stamp []int32 // round marker for local[]
	round int32
	kbuf  []int32 // SampleK scratch
}

// NewWorker creates a worker with its own RNG stream. Workers constructed
// with the same (sampler, rng-state) produce identical samples, which keeps
// parallel epochs deterministic.
func (s *Sampler) NewWorker(r *rng.RNG) *Worker {
	n := s.g.NumVertices()
	w := &Worker{s: s, r: r, local: make([]int32, n), stamp: make([]int32, n)}
	for i := range w.stamp {
		w.stamp[i] = -1
	}
	maxF := 0
	for _, f := range s.fanouts {
		if f > maxF {
			maxF = f
		}
	}
	w.kbuf = make([]int32, 0, maxF)
	return w
}

// AcquireWorker returns a pooled worker (allocating one on first use) with
// its RNG replaced by r. Pair with ReleaseWorker to keep the O(N) dedup
// arrays alive across epochs.
func (s *Sampler) AcquireWorker(r *rng.RNG) *Worker {
	if w, ok := s.workers.Get().(*Worker); ok {
		w.r = r
		return w
	}
	return s.NewWorker(r)
}

// ReleaseWorker returns a worker to the sampler's pool. The worker must
// not be used afterwards.
func (s *Sampler) ReleaseWorker(w *Worker) { s.workers.Put(w) }

// SetRNG replaces the worker's random stream. Pipelines use this to give
// batch i the stream base.Split(i) regardless of which worker runs it,
// keeping results schedule-independent.
func (w *Worker) SetRNG(r *rng.RNG) { w.r = r }

// arena owns the reusable backing storage of one MFG: the block structs
// and the per-hop input/rowptr/column slices. Arenas cycle through a
// sync.Pool so steady-state batch preparation allocates nothing per
// minibatch beyond slice growth toward the high-water mark.
type arena struct {
	mfg    MFG
	blocks []Block
	bptrs  []*Block
	inputs [][]int32
	rowPtr [][]int32
	col    [][]int32
}

var arenaPool = sync.Pool{New: func() any { return &arena{} }}

// ensure sizes the arena for an L-layer MFG, keeping prior capacity.
func (a *arena) ensure(L int) {
	for len(a.blocks) < L {
		a.blocks = append(a.blocks, Block{})
		a.inputs = append(a.inputs, nil)
		a.rowPtr = append(a.rowPtr, nil)
		a.col = append(a.col, nil)
	}
	if cap(a.bptrs) < L {
		a.bptrs = make([]*Block, L)
	}
	a.bptrs = a.bptrs[:L]
}

// Sample expands the multi-hop neighborhood of seeds and returns the MFG.
// The MFG's storage comes from a pooled arena: call (*MFG).Release once
// the batch has been consumed to recycle it, or simply drop it and let the
// GC take the slower path. Duplicate seeds are rejected by panic in debug
// validation; callers supply distinct seeds (minibatches are permutation
// chunks).
func (w *Worker) Sample(seeds []int32) *MFG {
	s := w.s
	L := len(s.fanouts)
	a := arenaPool.Get().(*arena)
	a.ensure(L)

	frontier := seeds
	for h := 0; h < L; h++ {
		f := s.fanouts[h]
		numDst := len(frontier)
		// Inputs begin with the destination vertices themselves.
		inputs := a.inputs[h][:0]
		if cap(inputs) < numDst {
			inputs = make([]int32, 0, numDst*(1+f/2))
		}
		inputs = append(inputs, frontier...)
		w.round++
		for i, v := range frontier {
			w.local[v] = int32(i)
			w.stamp[v] = w.round
		}

		rowPtr := a.rowPtr[h]
		if cap(rowPtr) < numDst+1 {
			rowPtr = make([]int32, numDst+1)
		} else {
			rowPtr = rowPtr[:numDst+1]
			rowPtr[0] = 0
		}
		col := a.col[h][:0]
		if cap(col) < numDst*f {
			col = make([]int32, 0, numDst*f)
		}
		for i, v := range frontier {
			nbrs := s.g.Neighbors(v)
			d := len(nbrs)
			k := f
			if k > d {
				k = d
			}
			if k == d {
				// Take every neighbor; no sampling needed.
				for _, u := range nbrs {
					col = append(col, w.localIndex(u, &inputs))
				}
			} else {
				for _, idx := range w.r.SampleK(w.kbuf, k, d) {
					col = append(col, w.localIndex(nbrs[idx], &inputs))
				}
			}
			rowPtr[i+1] = int32(len(col))
		}
		// Write the (possibly grown) slices back so the arena retains
		// their capacity for the next batch.
		a.inputs[h], a.rowPtr[h], a.col[h] = inputs, rowPtr, col
		a.blocks[h] = Block{NumDst: numDst, InputIDs: inputs, RowPtr: rowPtr, Col: col}
		frontier = inputs
	}

	// Blocks were built seed-outward; the GNN consumes them widest-first.
	for i := 0; i < L; i++ {
		a.bptrs[i] = &a.blocks[L-1-i]
	}
	a.mfg = MFG{Blocks: a.bptrs, Seeds: seeds, arena: a}
	return &a.mfg
}

// localIndex returns the hop-local index of global vertex u, assigning a
// new one (and appending u to inputs) on first sight this round.
func (w *Worker) localIndex(u int32, inputs *[]int32) int32 {
	if w.stamp[u] == w.round {
		return w.local[u]
	}
	idx := int32(len(*inputs))
	*inputs = append(*inputs, u)
	w.local[u] = idx
	w.stamp[u] = w.round
	return idx
}
