package sample

import "testing"

// validMFG builds a minimal consistent 2-layer MFG by hand.
func validMFG() *MFG {
	// Layer 1 (widest): 2 dst {7, 9}, inputs {7, 9, 4}; dst 0 samples 4
	// and 9, dst 1 samples 4.
	b0 := &Block{
		NumDst:   2,
		InputIDs: []int32{7, 9, 4},
		RowPtr:   []int32{0, 2, 3},
		Col:      []int32{2, 1, 2},
	}
	// Layer 2: 1 dst {7}, inputs {7, 9}; dst samples 9.
	b1 := &Block{
		NumDst:   1,
		InputIDs: []int32{7, 9},
		RowPtr:   []int32{0, 1},
		Col:      []int32{1},
	}
	return &MFG{Blocks: []*Block{b0, b1}, Seeds: []int32{7}}
}

func TestMFGValidateAcceptsConsistent(t *testing.T) {
	if err := validMFG().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMFGValidateRejectsBadRowPtr(t *testing.T) {
	m := validMFG()
	m.Blocks[0].RowPtr = []int32{0, 3} // wrong length for NumDst=2
	if m.Validate() == nil {
		t.Fatal("bad RowPtr length accepted")
	}
	m2 := validMFG()
	m2.Blocks[0].RowPtr[1] = 5 // exceeds final entry -> not monotone chain
	if m2.Validate() == nil {
		t.Fatal("non-monotone RowPtr accepted")
	}
}

func TestMFGValidateRejectsBadCol(t *testing.T) {
	m := validMFG()
	m.Blocks[0].Col[0] = 99
	if m.Validate() == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestMFGValidateRejectsBrokenChain(t *testing.T) {
	m := validMFG()
	// Block 1's inputs must equal block 0's destination prefix {7, 9};
	// changing them to {7, 4} breaks the chain.
	m.Blocks[1].InputIDs[1] = 4
	if m.Validate() == nil {
		t.Fatal("broken dst/input chain accepted")
	}
}

func TestMFGValidateRejectsSeedMismatch(t *testing.T) {
	m := validMFG()
	m.Seeds = []int32{9}
	if m.Validate() == nil {
		t.Fatal("seed mismatch accepted")
	}
	m2 := validMFG()
	m2.Seeds = []int32{7, 9}
	if m2.Validate() == nil {
		t.Fatal("seed count mismatch accepted")
	}
}

func TestMFGAccessors(t *testing.T) {
	m := validMFG()
	if m.NumLayers() != 2 {
		t.Fatal("NumLayers")
	}
	if m.TotalEdges() != 4 {
		t.Fatalf("TotalEdges=%d want 4", m.TotalEdges())
	}
	in := m.InputIDs()
	if len(in) != 3 || in[0] != 7 {
		t.Fatalf("InputIDs=%v", in)
	}
	sizes := m.LayerInputSizes()
	if sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("LayerInputSizes=%v", sizes)
	}
	empty := &MFG{Seeds: []int32{1, 2}}
	if len(empty.InputIDs()) != 2 {
		t.Fatal("blockless MFG should fall back to seeds")
	}
}

func TestSampleEmptySeeds(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{3, 3})
	m := s.NewWorker(nil).Sample(nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.InputIDs()) != 0 || m.TotalEdges() != 0 {
		t.Fatal("empty seed sample must be empty")
	}
	for _, b := range m.Blocks {
		if b.NumDst != 0 || len(b.Col) != 0 {
			t.Fatal("empty blocks expected")
		}
	}
}
