package sample

import (
	"testing"
	"testing/quick"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(800, 6400, 77))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSamplerValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewSampler(g, nil); err == nil {
		t.Fatal("expected error for empty fanouts")
	}
	if _, err := NewSampler(g, []int{5, -1}); err == nil {
		t.Fatal("expected error for negative fanout")
	}
	if _, err := NewSampler(g, []int{15, 10, 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleStructure(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{5, 3})
	w := s.NewWorker(rng.New(1))
	seeds := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	m := w.Sample(seeds)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 2 {
		t.Fatalf("layers=%d", m.NumLayers())
	}
	// Widest-first ordering.
	if m.Blocks[0].NumInputs() < m.Blocks[1].NumInputs() {
		t.Fatal("blocks not widest-first")
	}
	// The final block's destinations are the seeds.
	last := m.Blocks[1]
	if last.NumDst != len(seeds) {
		t.Fatalf("final NumDst=%d", last.NumDst)
	}
}

func TestSampleRespectsFanout(t *testing.T) {
	g := testGraph(t)
	const f = 4
	s, _ := NewSampler(g, []int{f, f})
	w := s.NewWorker(rng.New(2))
	m := w.Sample([]int32{10, 20, 30})
	for _, b := range m.Blocks {
		for i := 0; i < b.NumDst; i++ {
			cnt := int(b.RowPtr[i+1] - b.RowPtr[i])
			deg := g.Degree(b.InputIDs[i])
			want := f
			if deg < f {
				want = deg
			}
			if cnt != want {
				t.Fatalf("dst %d (deg %d): sampled %d, want %d", b.InputIDs[i], deg, cnt, want)
			}
		}
	}
}

func TestSampledAreNeighborsAndDistinct(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{6, 4})
	w := s.NewWorker(rng.New(3))
	m := w.Sample([]int32{5, 55, 555})
	for _, b := range m.Blocks {
		for i := 0; i < b.NumDst; i++ {
			v := b.InputIDs[i]
			seen := map[int32]bool{}
			for _, c := range b.Col[b.RowPtr[i]:b.RowPtr[i+1]] {
				u := b.InputIDs[c]
				if !g.HasEdge(v, u) {
					t.Fatalf("sampled non-neighbor %d of %d", u, v)
				}
				if seen[u] {
					t.Fatalf("duplicate sampled neighbor %d of %d", u, v)
				}
				seen[u] = true
			}
		}
	}
}

func TestSampleLargeFanoutIsExhaustive(t *testing.T) {
	g := testGraph(t)
	f := g.MaxDegree() + 1
	s, _ := NewSampler(g, []int{f})
	w := s.NewWorker(rng.New(4))
	m := w.Sample([]int32{42})
	b := m.Blocks[0]
	if b.NumEdges() != g.Degree(42) {
		t.Fatalf("exhaustive sample has %d edges, want degree %d", b.NumEdges(), g.Degree(42))
	}
}

func TestSampleDeterminism(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{5, 5})
	seeds := []int32{1, 9, 17}
	m1 := s.NewWorker(rng.New(9)).Sample(seeds)
	m2 := s.NewWorker(rng.New(9)).Sample(seeds)
	if m1.TotalEdges() != m2.TotalEdges() {
		t.Fatal("same RNG state produced different samples")
	}
	for li := range m1.Blocks {
		a, b := m1.Blocks[li], m2.Blocks[li]
		for i := range a.InputIDs {
			if a.InputIDs[i] != b.InputIDs[i] {
				t.Fatal("same RNG state produced different input sets")
			}
		}
		for i := range a.Col {
			if a.Col[i] != b.Col[i] {
				t.Fatal("same RNG state produced different columns")
			}
		}
	}
}

func TestInputIDsDeduplicated(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{8, 8})
	w := s.NewWorker(rng.New(5))
	m := w.Sample([]int32{3, 4, 5, 6})
	for _, b := range m.Blocks {
		seen := map[int32]bool{}
		for _, id := range b.InputIDs {
			if seen[id] {
				t.Fatalf("duplicate input id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestEpochBatches(t *testing.T) {
	ids := make([]int32, 100)
	for i := range ids {
		ids[i] = int32(i)
	}
	batches := EpochBatches(ids, 32, rng.New(6))
	if len(batches) != 4 {
		t.Fatalf("got %d batches", len(batches))
	}
	if len(batches[3]) != 4 {
		t.Fatalf("last batch size %d, want 4", len(batches[3]))
	}
	seen := make([]bool, 100)
	for _, b := range batches {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("vertex %d appears twice in epoch", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing from epoch", v)
		}
	}
	// Shuffled, not identity (probability of identity is astronomical).
	identity := true
	for i, v := range batches[0] {
		if v != int32(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("epoch batches not shuffled")
	}
}

func TestEpochBatchesEdgeCases(t *testing.T) {
	if b := EpochBatches(nil, 10, rng.New(1)); b != nil {
		t.Fatal("nil ids must give nil batches")
	}
	if b := EpochBatches([]int32{1}, 0, rng.New(1)); b != nil {
		t.Fatal("zero batch size must give nil batches")
	}
	b := EpochBatches([]int32{1, 2}, 10, rng.New(1))
	if len(b) != 1 || len(b[0]) != 2 {
		t.Fatal("single short batch expected")
	}
}

func TestPrepareEpochMatchesSerial(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{5, 3})
	ids := rng.New(7).SampleK(nil, 200, g.NumVertices())
	batches := EpochBatches(ids, 32, rng.New(8))

	base := rng.New(42)
	par := PrepareEpoch(s, batches, base, 4)

	// Serial reference: same per-batch streams.
	ref := make([]*MFG, len(batches))
	base2 := rng.New(42)
	for i, b := range batches {
		w := s.NewWorker(base2.Split(uint64(i)))
		ref[i] = w.Sample(b)
	}
	for i := range batches {
		if par[i] == nil {
			t.Fatalf("batch %d missing", i)
		}
		if err := par[i].Validate(); err != nil {
			t.Fatalf("batch %d invalid: %v", i, err)
		}
		a, b := par[i], ref[i]
		if a.TotalEdges() != b.TotalEdges() {
			t.Fatalf("batch %d differs between parallel and serial", i)
		}
		for li := range a.Blocks {
			for j := range a.Blocks[li].InputIDs {
				if a.Blocks[li].InputIDs[j] != b.Blocks[li].InputIDs[j] {
					t.Fatalf("batch %d block %d input mismatch", i, li)
				}
			}
		}
	}
}

func TestPrepareEpochWorkerCountInvariance(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{4, 4})
	ids := rng.New(10).SampleK(nil, 300, g.NumVertices())
	batches := EpochBatches(ids, 64, rng.New(11))
	a := PrepareEpoch(s, batches, rng.New(5), 1)
	b := PrepareEpoch(s, batches, rng.New(5), 7)
	for i := range a {
		if a[i].TotalEdges() != b[i].TotalEdges() {
			t.Fatalf("batch %d depends on worker count", i)
		}
	}
}

func TestAccessCountsSane(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{5, 5})
	train := rng.New(12).SampleK(nil, 100, g.NumVertices())
	counts := AccessCounts(s, train, 16, 2, rng.New(13), 2)
	var total int64
	for _, c := range counts {
		if c < 0 {
			t.Fatal("negative count")
		}
		total += c
	}
	if total == 0 {
		t.Fatal("no accesses recorded")
	}
	// Each training vertex is a seed once per epoch, so its count is >= 2.
	for _, v := range train {
		if counts[v] < 2 {
			t.Fatalf("training vertex %d accessed only %d times", v, counts[v])
		}
	}
}

// Property: every MFG over random seeds validates and its seed set is
// preserved in order.
func TestSampleAlwaysValidProperty(t *testing.T) {
	g := testGraph(t)
	s, _ := NewSampler(g, []int{3, 2})
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(50)
		seeds := r.SampleK(nil, k, g.NumVertices())
		m := s.NewWorker(r.Split(1)).Sample(seeds)
		if m.Validate() != nil {
			return false
		}
		for i, v := range seeds {
			if m.Seeds[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleBatch1024F15_10_5(b *testing.B) {
	g, err := graph.RMAT(graph.DefaultRMAT(100000, 800000, 1))
	if err != nil {
		b.Fatal(err)
	}
	s, _ := NewSampler(g, []int{15, 10, 5})
	w := s.NewWorker(rng.New(1))
	seeds := rng.New(2).SampleK(nil, 1024, g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := w.Sample(seeds)
		if m == nil {
			b.Fatal("nil mfg")
		}
	}
}
