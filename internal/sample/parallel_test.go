package sample

import (
	"fmt"
	"sync"
	"testing"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

func benchGraph(t testing.TB, n int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(n, int64(n)*8, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cloneMFG deep-copies an MFG so it can outlive a Release.
func cloneMFG(m *MFG) *MFG {
	out := &MFG{Seeds: append([]int32(nil), m.Seeds...)}
	for _, b := range m.Blocks {
		out.Blocks = append(out.Blocks, &Block{
			NumDst:   b.NumDst,
			InputIDs: append([]int32(nil), b.InputIDs...),
			RowPtr:   append([]int32(nil), b.RowPtr...),
			Col:      append([]int32(nil), b.Col...),
		})
	}
	return out
}

func sameMFG(a, b *MFG) error {
	if len(a.Blocks) != len(b.Blocks) {
		return fmt.Errorf("block counts %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if x.NumDst != y.NumDst || len(x.InputIDs) != len(y.InputIDs) || len(x.Col) != len(y.Col) {
			return fmt.Errorf("block %d shape mismatch", i)
		}
		for j := range x.InputIDs {
			if x.InputIDs[j] != y.InputIDs[j] {
				return fmt.Errorf("block %d input %d differs", i, j)
			}
		}
		for j := range x.RowPtr {
			if x.RowPtr[j] != y.RowPtr[j] {
				return fmt.Errorf("block %d rowptr %d differs", i, j)
			}
		}
		for j := range x.Col {
			if x.Col[j] != y.Col[j] {
				return fmt.Errorf("block %d col %d differs", i, j)
			}
		}
	}
	return nil
}

// TestArenaReuseDeterminism verifies that recycling arenas and workers
// through the pools changes nothing about the sampled MFGs: the same RNG
// streams produce bitwise-identical structures across repeated epochs and
// across worker counts.
func TestArenaReuseDeterminism(t *testing.T) {
	g := benchGraph(t, 3000, 11)
	s, err := NewSampler(g, []int{10, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	train := rng.New(1).SampleK(nil, 600, g.NumVertices())
	batches := EpochBatches(train, 64, rng.New(2))

	// Reference epoch, cloned before release.
	var ref []*MFG
	for _, m := range PrepareEpoch(s, batches, rng.New(3), 1) {
		ref = append(ref, cloneMFG(m))
		m.Release()
	}
	// Re-sampling after pool reuse, at several worker counts, must match.
	for _, workers := range []int{1, 2, 4, 8} {
		mfgs := PrepareEpoch(s, batches, rng.New(3), workers)
		for i, m := range mfgs {
			if err := m.Validate(); err != nil {
				t.Fatalf("workers=%d batch %d: %v", workers, i, err)
			}
			if err := sameMFG(ref[i], m); err != nil {
				t.Fatalf("workers=%d batch %d: %v", workers, i, err)
			}
			m.Release()
		}
	}
}

// TestConcurrentBatchPreparation hammers the shared sampler from many
// goroutines with interleaved acquire/sample/release cycles; run under
// -race in CI it proves the pools introduce no data races and no
// cross-batch buffer aliasing (each goroutine revalidates its MFG against
// a serial resample before releasing).
func TestConcurrentBatchPreparation(t *testing.T) {
	g := benchGraph(t, 2000, 13)
	s, err := NewSampler(g, []int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	train := rng.New(4).SampleK(nil, 800, g.NumVertices())
	batches := EpochBatches(train, 32, rng.New(5))
	base := rng.New(6)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			check := s.NewWorker(rng.New(0)) // private, unpooled reference
			for rep := 0; rep < 3; rep++ {
				for i := range batches {
					w := s.AcquireWorker(base.Split(uint64(i)))
					m := w.Sample(batches[i])
					if err := m.Validate(); err != nil {
						errs <- fmt.Errorf("goroutine %d rep %d batch %d: %w", gi, rep, i, err)
						s.ReleaseWorker(w)
						return
					}
					check.SetRNG(base.Split(uint64(i)))
					want := check.Sample(batches[i])
					if err := sameMFG(want, m); err != nil {
						errs <- fmt.Errorf("goroutine %d rep %d batch %d: %w", gi, rep, i, err)
					}
					want.Release()
					m.Release()
					s.ReleaseWorker(w)
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkSample measures one epoch of minibatch preparation at
// increasing worker counts (workers=1 is the serial baseline for the
// speedup criterion); allocations are reported to track the
// allocation-lean goal.
func BenchmarkSample(b *testing.B) {
	g := benchGraph(b, 50000, 7)
	s, err := NewSampler(g, []int{15, 10, 5})
	if err != nil {
		b.Fatal(err)
	}
	train := rng.New(8).SampleK(nil, 5000, g.NumVertices())
	batches := EpochBatches(train, 128, rng.New(9))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mfgs := PrepareEpoch(s, batches, rng.New(10), workers)
				for _, m := range mfgs {
					m.Release()
				}
			}
		})
	}
}
