// Package sample implements SALIENT-style node-wise neighborhood sampling:
// per-vertex uniform sampling without replacement with per-hop fanouts,
// message-flow graph (MFG) construction, minibatch iteration, and
// shared-memory-parallel batch preparation with deterministic results.
package sample

import (
	"fmt"
)

// Block is one bipartite layer of a message-flow graph. It maps an input
// (source) vertex set to an output (destination) vertex set:
//
//   - InputIDs holds the global ids of the layer's input vertices. The
//     first NumDst entries are the destination vertices themselves (every
//     GNN layer needs the previous representation of the destination, e.g.
//     GraphSAGE's concat), followed by the newly sampled neighbors.
//   - For destination i (0 <= i < NumDst), its sampled in-neighbors are
//     InputIDs[Col[RowPtr[i]:RowPtr[i+1]]].
type Block struct {
	NumDst   int
	InputIDs []int32
	RowPtr   []int32
	Col      []int32
}

// NumInputs returns the number of input vertices of the block.
func (b *Block) NumInputs() int { return len(b.InputIDs) }

// NumEdges returns the number of sampled message edges in the block.
func (b *Block) NumEdges() int { return len(b.Col) }

// MFG is a message-flow graph for one minibatch: Blocks[0] is the first
// GNN layer applied (the widest one, whose InputIDs require feature
// fetches) and Blocks[len-1] produces the seed outputs.
type MFG struct {
	Blocks []*Block
	// Seeds are the minibatch vertices, equal to the final block's first
	// NumDst input ids.
	Seeds []int32
	// arena is the pooled backing storage (nil for hand-built MFGs).
	arena *arena
}

// Release recycles the MFG's backing storage into the sampler arena pool.
// The MFG and every slice obtained from it (blocks, InputIDs) are invalid
// afterwards. Calling Release is optional — an unreleased MFG is simply
// collected by the GC — but the training pipeline releases every retired
// batch so steady-state preparation allocates nothing per minibatch.
// Release is not idempotent; call it exactly once, from one goroutine.
func (m *MFG) Release() {
	a := m.arena
	if a == nil {
		return
	}
	m.arena = nil
	arenaPool.Put(a)
}

// InputIDs returns the global vertex ids whose features the batch needs —
// the input set of the first block. The returned slice aliases internal
// storage.
func (m *MFG) InputIDs() []int32 {
	if len(m.Blocks) == 0 {
		return m.Seeds
	}
	return m.Blocks[0].InputIDs
}

// NumLayers returns the number of blocks (GNN layers).
func (m *MFG) NumLayers() int { return len(m.Blocks) }

// TotalEdges returns the total sampled message edges across blocks.
func (m *MFG) TotalEdges() int64 {
	var t int64
	for _, b := range m.Blocks {
		t += int64(b.NumEdges())
	}
	return t
}

// LayerInputSizes returns the input-set size per block, widest first.
func (m *MFG) LayerInputSizes() []int {
	out := make([]int, len(m.Blocks))
	for i, b := range m.Blocks {
		out[i] = b.NumInputs()
	}
	return out
}

// Validate checks the structural invariants connecting blocks: row pointers
// are monotone and complete, column indices are in range, destination
// prefixes chain correctly (block i's input set equals block i+1's
// destination set extended with its sampled neighbors), and the final
// block's destinations are the seeds.
func (m *MFG) Validate() error {
	for li, b := range m.Blocks {
		if b.NumDst > len(b.InputIDs) {
			return fmt.Errorf("mfg: block %d has NumDst %d > inputs %d", li, b.NumDst, len(b.InputIDs))
		}
		if len(b.RowPtr) != b.NumDst+1 {
			return fmt.Errorf("mfg: block %d RowPtr length %d, want %d", li, len(b.RowPtr), b.NumDst+1)
		}
		if b.RowPtr[0] != 0 || int(b.RowPtr[b.NumDst]) != len(b.Col) {
			return fmt.Errorf("mfg: block %d RowPtr endpoints invalid", li)
		}
		for i := 0; i < b.NumDst; i++ {
			if b.RowPtr[i+1] < b.RowPtr[i] {
				return fmt.Errorf("mfg: block %d RowPtr not monotone at %d", li, i)
			}
		}
		for _, c := range b.Col {
			if c < 0 || int(c) >= len(b.InputIDs) {
				return fmt.Errorf("mfg: block %d column index %d out of range", li, c)
			}
		}
		if li+1 < len(m.Blocks) {
			next := m.Blocks[li+1]
			// next's input set becomes this block's destination set.
			if b.NumDst != len(next.InputIDs) {
				return fmt.Errorf("mfg: block %d NumDst %d != block %d inputs %d", li, b.NumDst, li+1, len(next.InputIDs))
			}
			for i, id := range next.InputIDs {
				if b.InputIDs[i] != id {
					return fmt.Errorf("mfg: block %d dst[%d]=%d mismatches block %d input %d", li, i, b.InputIDs[i], li+1, id)
				}
			}
		}
	}
	if len(m.Blocks) > 0 {
		last := m.Blocks[len(m.Blocks)-1]
		if last.NumDst != len(m.Seeds) {
			return fmt.Errorf("mfg: final block NumDst %d != %d seeds", last.NumDst, len(m.Seeds))
		}
		for i, s := range m.Seeds {
			if last.InputIDs[i] != s {
				return fmt.Errorf("mfg: seed %d is %d in final block, want %d", i, last.InputIDs[i], s)
			}
		}
	}
	return nil
}
