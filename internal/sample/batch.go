package sample

import (
	"runtime"
	"sync"

	"salientpp/internal/rng"
)

// EpochBatches permutes ids with the given RNG and splits them into
// minibatches of size batchSize (the final batch may be smaller). The id
// slice is not modified.
func EpochBatches(ids []int32, batchSize int, r *rng.RNG) [][]int32 {
	if batchSize <= 0 || len(ids) == 0 {
		return nil
	}
	perm := make([]int32, len(ids))
	copy(perm, ids)
	r.ShuffleInt32(perm)
	nb := (len(perm) + batchSize - 1) / batchSize
	out := make([][]int32, 0, nb)
	for start := 0; start < len(perm); start += batchSize {
		end := start + batchSize
		if end > len(perm) {
			end = len(perm)
		}
		out = append(out, perm[start:end])
	}
	return out
}

// PrepareEpoch samples every batch in parallel using numWorkers goroutines
// (GOMAXPROCS when zero) and returns the MFGs in batch order.
//
// Determinism: batch i is always sampled with the RNG stream base.Split(i),
// so results are independent of scheduling and worker count — the property
// SALIENT's shared-memory batch preparation relies on for reproducible
// experiments.
func PrepareEpoch(s *Sampler, batches [][]int32, base *rng.RNG, numWorkers int) []*MFG {
	if numWorkers <= 0 {
		numWorkers = runtime.GOMAXPROCS(0)
	}
	if numWorkers > len(batches) {
		numWorkers = len(batches)
	}
	out := make([]*MFG, len(batches))
	if len(batches) == 0 {
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := s.AcquireWorker(rng.New(0)) // state replaced per batch
			defer s.ReleaseWorker(worker)
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(batches) {
					return
				}
				worker.r = base.Split(uint64(i))
				out[i] = worker.Sample(batches[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// AccessCounts samples numEpochs epochs of minibatches from trainIDs and
// returns, per vertex, the number of batches whose feature-input set
// included it. This is the empirical estimator behind the paper's "sim."
// caching policy (Yang et al., 2022) and, run on the evaluation epochs
// themselves, the "oracle" lower bound.
func AccessCounts(s *Sampler, trainIDs []int32, batchSize, numEpochs int, base *rng.RNG, numWorkers int) []int64 {
	n := s.Graph().NumVertices()
	counts := make([]int64, n)
	for e := 0; e < numEpochs; e++ {
		er := base.Split(uint64(e))
		batches := EpochBatches(trainIDs, batchSize, er.Split(0))
		mfgs := PrepareEpoch(s, batches, er.Split(1), numWorkers)
		for _, m := range mfgs {
			for _, v := range m.InputIDs() {
				counts[v]++
			}
			m.Release()
		}
	}
	return counts
}
