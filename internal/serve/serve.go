// Package serve implements online GNN inference over the SALIENT++ stack:
// an embeddable server that accepts per-vertex prediction requests,
// coalesces concurrent requests into sampled micro-batches, and runs them
// through the existing sampler → cache-aware partitioned Gather → frozen
// GraphSAGE forward path.
//
// Architecture (one round):
//
//	clients ──Predict──▶ per-rank admission queues (routed by vertex owner)
//	                               │
//	             driver fires a round when any rank reaches MaxBatch
//	             or the oldest queued request has waited MaxWait
//	                               │
//	     all K engines execute the round in lockstep (matched collectives):
//	     dedup+sort seeds → sample MFG → Store.Gather → Frozen.Forward
//	                               │
//	     per-request logits copied out, latency recorded, buffers recycled
//
// Rounds are lockstep across ranks because Gather's three collectives must
// stay matched — a rank with an empty queue gathers an empty id list, the
// same padding discipline the training pipeline uses. Within a round the K
// engines run concurrently.
//
// The steady-state serving loop is allocation-free: requests are pooled,
// seeds/batches reuse high-water-mark scratch, the MFG comes from the
// sampler arena, gathered features from the store's tensor pool, and model
// intermediates from the frozen snapshot's arena (all released when the
// round retires). guarded by TestServeAllocationFree.
package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"salientpp/internal/cache"
	"salientpp/internal/dist"
	"salientpp/internal/nn"
	"salientpp/internal/pipeline"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// ErrClosed is returned by Predict once the server is shut down.
var ErrClosed = errors.New("serve: server closed")

// ErrShed is returned by Predict when admission control decides the
// request cannot meet its Config.Deadline budget — the queue is too deep,
// or the request would expire before its round completes. Shedding is
// always explicit: the caller gets this error immediately (or as the
// request's reply), never a silent drop, so an overloaded server degrades
// into fast rejections instead of unbounded queueing.
var ErrShed = errors.New("serve: request shed: deadline budget cannot be met")

// Config controls the coalescing admission policy and the inference
// sampling setup.
type Config struct {
	// MaxBatch caps the coalesced requests per rank per round; a rank
	// reaching it fires the round immediately. Defaults to 64.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for company
	// before a round fires anyway. 0 means the 500µs default; negative
	// fires rounds as soon as any request arrives (lowest latency, least
	// batching).
	MaxWait time.Duration
	// Fanouts are the inference sampling fanouts; nil uses the cluster's
	// training fanouts.
	Fanouts []int
	// Seed drives inference sampling: round r on rank k samples with the
	// stream Seed→Split(k)→Split(r), so a given (round, seed set) is
	// reproducible offline.
	Seed uint64
	// UseTCP routes the serving gathers over loopback TCP instead of
	// in-process channels.
	UseTCP bool
	// Codec selects the wire codec of the serving comm group ("fp32",
	// "fp16", "int8"); the empty string inherits the training cluster's
	// codec. The serving group is a separate comm group, so it may
	// legitimately run a smaller codec than training (e.g. int8 serving
	// over fp32 training). Metrics().BytesSent counts the encoded wire
	// bytes, not rows×dim×4.
	Codec string
	// Precision selects the serving compute precision ("fp32", "fp16",
	// "int8"); the empty string inherits the training cluster's configured
	// precision. A reduced precision keeps the frozen weights and the
	// gathered features quantized end to end: the store serves quantized
	// rows (remote rows pass through from a matching wire codec without a
	// dequantize/requantize round trip) and the forward runs the integer
	// SIMD kernels. Training always computes in fp32, so int8 serving over
	// an fp32-trained cluster is the expected deployment shape.
	Precision string

	// Deadline is each request's end-to-end latency budget and turns on
	// admission control: a request that cannot complete within it — the
	// queue is too deep at Predict time, or its budget expires before its
	// round fires — fails with ErrShed instead of queueing unboundedly.
	// Deadline also activates adaptive batching: the driver grows the
	// effective per-rank batch (up to MaxBatchCap) under backlog while
	// rounds run well inside the budget, and shrinks it back under SLO
	// pressure. Zero disables both (the historical fixed-MaxBatch policy).
	Deadline time.Duration
	// MaxBatchCap bounds adaptive batch growth; 0 defaults to 8×MaxBatch.
	// Ignored unless Deadline is set.
	MaxBatchCap int
	// GatherTimeout bounds each serving round's feature collectives and
	// turns on degraded operation: when a gather times out (or otherwise
	// fails while the server is up), the round falls back to cache + local
	// shard only — missing remote rows zero-filled, replies flagged
	// Stats.Degraded — and the server probes for a fresh healthy comm
	// group in the background, restoring normal serving when peers
	// recover. Zero disables the timeout unless Deadline is set, in which
	// case it defaults to Deadline/2 (a request's budget must cover a
	// timed-out gather plus the local fallback).
	GatherTimeout time.Duration
	// ProbeInterval paces health probes while the server is degraded
	// (default 250ms): each probe builds a candidate comm group, runs one
	// timed health collective over it, and installs it only on success.
	ProbeInterval time.Duration
	// WrapComm, when set, wraps each serving communicator at construction
	// AND after every regroup — the serving twin of
	// pipeline.ClusterConfig.WrapComm. Fault-injection harnesses
	// (dist.Chaos) install themselves here; because the wrapper is
	// re-applied to every fresh group, a schedule like "rank 1 is stalled"
	// keeps biting until the harness clears it, exactly as real broken
	// hardware would.
	WrapComm func(rank int, c dist.Comm) dist.Comm

	// Cache selects the serving cache mode. "" or "static" pins the cache
	// epoch the cluster handed over — no observation, no installs, bitwise
	// the historical behavior. "online" runs a drift-tracking
	// cache.Online policy per engine at the same capacity: every round's
	// hits and misses feed the scorer, and every CacheRefreshRounds rounds
	// the engine proposes a new membership, builds the epoch on a
	// background goroutine (feature copies never block a round), and swaps
	// it in between rounds.
	Cache string
	// CacheRefreshRounds is the online proposal cadence in rounds; 0 means
	// 32. Ignored unless Cache is "online".
	CacheRefreshRounds int
	// CacheConfig tunes the online scorer (zero value = defaults). Ignored
	// unless Cache is "online".
	CacheConfig cache.OnlineConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 500 * time.Microsecond
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	if c.Deadline > 0 && c.GatherTimeout == 0 {
		c.GatherTimeout = c.Deadline / 2
	}
	if c.MaxBatchCap <= 0 {
		c.MaxBatchCap = 8 * c.MaxBatch
	}
	if c.MaxBatchCap < c.MaxBatch {
		c.MaxBatchCap = c.MaxBatch
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.CacheRefreshRounds <= 0 {
		c.CacheRefreshRounds = 32
	}
	return c
}

// Stats is the per-request accounting Predict returns. Stage durations
// describe the micro-batch (round) that served the request; Queue and
// Total are specific to the request.
type Stats struct {
	// Round is the global round that served the request; BatchSize is how
	// many requests it coalesced on this rank.
	Round     uint64
	BatchSize int
	// Queue is the admission-queue wait before the round started.
	Queue time.Duration
	// Sample, Gather, and Compute are the round's stage times.
	Sample  time.Duration
	Gather  time.Duration
	Compute time.Duration
	// Total is enqueue-to-reply latency.
	Total time.Duration
	// RemoteFetch and CacheHits classify the round's feature accesses.
	RemoteFetch int
	CacheHits   int
	// Degraded marks a prediction computed without remote features: the
	// round's gather timed out (or the server was already regrouping), so
	// rows owned by unreachable peers were zero-filled. The logits are
	// well-defined but less accurate; Missing counts the zero-filled rows
	// of the round's batch.
	Degraded bool
	Missing  int
	// CacheGen is the install generation of the cache epoch that served
	// the round: 0 until the online policy's first install (and always 0
	// in static mode, unless the cluster itself trained with an online
	// cache).
	CacheGen uint64
}

// request is a pooled in-flight prediction.
type request struct {
	vertex int32
	out    []float32
	stats  Stats
	err    error
	arrive time.Time
	done   chan struct{} // cap 1; reused across lives
}

// Server coalesces concurrent per-vertex prediction requests into sampled
// micro-batches over an in-process K-rank serving deployment. Predict is
// safe for any number of concurrent callers.
type Server struct {
	cfg      Config
	layout   *dist.Layout
	engines  []*engine
	classes  int
	numVerts int

	reqPool  sync.Pool
	arrivals chan struct{} // cap 1: "a request arrived somewhere"
	full     chan struct{} // cap 1: "some rank reached the effective batch cap"
	shutdown chan struct{}
	closed   sync.Once
	wg       sync.WaitGroup
	round    uint64

	// scans counts scanQueues calls — the driver-efficiency gauge the
	// busy-loop regression test reads. A lone queued request must cost
	// O(1) scans (one on arrival, one re-check after its round), not one
	// per timer tick of the admission window.
	scans atomic.Int64

	// parents are the training ranks' stores, retained so a regroup can
	// mint fresh siblings over a new comm group; prec/codec are the
	// resolved serving settings every group (initial and regrown) gets.
	parents  []*dist.Store
	prec     tensor.Precision
	codec    dist.Codec
	codecSet bool

	// Resilience state. maxBatch is the adaptive per-rank batch cap
	// (equal to cfg.MaxBatch when Deadline is off); roundNS is an EWMA of
	// round duration feeding admission estimates; healthy gates whether
	// rounds run real gathers or the degraded local fallback; gen numbers
	// comm groups for the health-probe frames.
	maxBatch   atomic.Int64
	roundNS    atomic.Int64
	healthy    atomic.Bool
	regrouping atomic.Bool
	gen        atomic.Uint32
	newGroup   chan *commGroup // cap 1: a probed group awaiting install

	// cmu guards comms (swapped by install) and retiredBytes (wire bytes
	// accumulated from groups discarded by regroups) against Snapshot.
	cmu          sync.Mutex
	comms        []dist.Comm
	retiredBytes int64

	met *Metrics
}

// commGroup is one generation of serving communicators with the sibling
// stores built over them.
type commGroup struct {
	comms  []dist.Comm
	stores []*dist.Store
}

func (g *commGroup) close() {
	for _, c := range g.comms {
		c.Close()
	}
}

// New builds a serving deployment over a trained (or training) cluster:
// per rank, a sibling feature store sharing the read-only shard and cache
// over a fresh communicator group, a frozen snapshot of the rank's model,
// and an inference sampler. The cluster may keep training afterwards; the
// server's predictions come from the snapshot taken here.
func New(cl *pipeline.Cluster, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	k := len(cl.Ranks)
	if k == 0 {
		return nil, fmt.Errorf("serve: cluster has no ranks")
	}
	online := false
	switch cfg.Cache {
	case "", "static":
	case "online":
		online = true
	default:
		return nil, fmt.Errorf("serve: unknown cache mode %q (want static or online)", cfg.Cache)
	}
	fanouts := cfg.Fanouts
	if len(fanouts) == 0 {
		fanouts = cl.Ranks[0].Sampler().Fanouts()
	}
	prec := cl.Precision
	if cfg.Precision != "" {
		var err error
		if prec, err = tensor.ParsePrecision(cfg.Precision); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:      cfg,
		layout:   cl.Layout,
		numVerts: cl.Data.NumVertices(),
		prec:     prec,
		arrivals: make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		shutdown: make(chan struct{}),
		newGroup: make(chan *commGroup, 1),
		met:      newMetrics(cfg.MaxBatchCap),
	}
	s.maxBatch.Store(int64(cfg.MaxBatch))
	s.healthy.Store(true)
	if cfg.Codec != "" {
		codec, err := dist.ParseCodec(cfg.Codec)
		if err != nil {
			return nil, err
		}
		s.codec, s.codecSet = codec, true
	}
	// fail closes the shutdown channel too, so abort watchers already
	// installed on sibling stores exit instead of leaking.
	fail := func(err error) (*Server, error) {
		s.closed.Do(func() { close(s.shutdown) })
		s.closeComms()
		return nil, err
	}
	var degrees []int32 // hybrid-prior input, computed once across engines
	for r := 0; r < k; r++ {
		s.parents = append(s.parents, cl.Ranks[r].Store())
		frozen := cl.Ranks[r].Model().FreezePrecision(prec)
		if frozen.NumLayers() != len(fanouts) {
			return fail(fmt.Errorf("serve: %d fanouts for a %d-layer model", len(fanouts), frozen.NumLayers()))
		}
		smp, err := sample.NewSampler(cl.Data.Graph, fanouts)
		if err != nil {
			return fail(err)
		}
		// Dedup scratch covers only this rank's partition interval:
		// Predict routes every request to its vertex's owner, so the
		// engine never indexes a foreign vertex, and total scratch across
		// engines stays O(N) instead of O(N·K).
		e := &engine{
			srv:    s,
			rank:   r,
			model:  frozen,
			worker: smp.NewWorker(rng.New(0)), // stream replaced every round
			base:   rng.New(cfg.Seed).Split(uint64(r)),
			lo:     int32(cl.Layout.Starts[r]),
			stamp:  make([]uint64, cl.Layout.PartSize(r)),
			rowOf:  make([]int32, cl.Layout.PartSize(r)),
			start:  make(chan roundMsg),
			ended:  make(chan struct{}, 1),
		}
		// Online mode: an installer per engine at the parent epoch's
		// capacity, seeded with its membership (the static VIP prefix, or
		// whatever the training installer last swapped in) so a cold scorer
		// proposes roughly the cache it inherited. A rank whose parent
		// caches nothing has nothing to adapt — it stays static.
		if pep := s.parents[r].Epoch(); online && pep.Len() > 0 {
			if degrees == nil {
				degrees = cl.Data.Graph.Degrees()
			}
			builder, err := cache.NewEpochBuilder(s.numVerts, cl.Data.FeatureDim, cl.Data.FeatureRow)
			if err != nil {
				return fail(err)
			}
			builder.SetGen(pep.Gen)
			policy, err := cache.NewOnline(s.numVerts, pep.IDs(), degrees, cfg.CacheConfig)
			if err != nil {
				return fail(err)
			}
			installer, err := cache.NewInstaller(policy, builder, pep.Len())
			if err != nil {
				return fail(err)
			}
			e.installer = installer
			e.refreshEvery = cfg.CacheRefreshRounds
			e.proposals = make(chan cacheProposal, 1)
			e.built = make(chan cacheBuilt, 1)
		}
		s.engines = append(s.engines, e)
		s.classes = frozen.Classes()
	}
	// The initial comm group is trusted without a probe (its construction
	// just succeeded); regrown groups are probed before install.
	g, err := s.buildGroup(false)
	if err != nil {
		return fail(err)
	}
	s.comms = g.comms
	for r, e := range s.engines {
		e.store = g.stores[r]
	}
	s.wg.Add(1 + k)
	for _, e := range s.engines {
		go e.loop()
		if e.installer != nil {
			s.wg.Add(1)
			go e.cacheLoop()
		}
	}
	go s.driver()
	return s, nil
}

// buildGroup assembles one generation of serving communicators — fresh
// transport group, WrapComm fault seam, gather timeout, sibling stores
// with the resolved codec/precision, abort channel — and, when probe is
// set, validates it with one timed health collective before returning it.
// Every comm of a failed build is closed; nothing leaks.
func (s *Server) buildGroup(probe bool) (*commGroup, error) {
	k := len(s.parents)
	var comms []dist.Comm
	var err error
	if s.cfg.UseTCP {
		comms, err = dist.NewTCPGroup(k)
	} else {
		comms, err = dist.NewLocalGroup(k)
	}
	if err != nil {
		return nil, err
	}
	g := &commGroup{comms: comms}
	for r := range comms {
		if s.cfg.WrapComm != nil {
			comms[r] = s.cfg.WrapComm(r, comms[r])
			g.comms[r] = comms[r]
		}
		if s.cfg.GatherTimeout > 0 {
			comms[r].SetTimeout(s.cfg.GatherTimeout)
		}
	}
	if probe {
		if err := s.probeGroup(g); err != nil {
			g.close()
			return nil, err
		}
	}
	for r := range comms {
		st, err := s.parents[r].Sibling(comms[r])
		if err != nil {
			g.close()
			return nil, err
		}
		if s.codecSet {
			st.SetCodec(s.codec)
		}
		if s.prec != tensor.PrecisionFP32 {
			st.SetPrecision(s.prec)
		}
		st.SetAbort(s.shutdown)
		g.stores = append(g.stores, st)
	}
	return g, nil
}

// probeGroup runs one matched health collective over a candidate group:
// every rank broadcasts the generation stamped into the probe frame and
// validates its peers'. The comms' gather timeout bounds the probe, so a
// still-stalled rank fails the probe within the budget instead of wedging
// the regroup goroutine.
func (s *Server) probeGroup(g *commGroup) error {
	k := len(g.comms)
	gen := s.gen.Add(1)
	errs := make(chan error, k)
	for _, c := range g.comms {
		go func(c dist.Comm) {
			send := make([][]byte, k)
			for dst := range send {
				send[dst] = dist.AppendHealthFrame(nil, gen)
			}
			recv, err := c.AllToAll(send)
			if err != nil {
				errs <- err
				return
			}
			for src := range recv {
				got, err := dist.DecodeHealthFrame(recv[src])
				if err != nil {
					errs <- fmt.Errorf("serve: probe frame from rank %d: %w", src, err)
					return
				}
				if got != gen {
					errs <- fmt.Errorf("serve: probe from rank %d carries generation %d, want %d", src, got, gen)
					return
				}
			}
			errs <- nil
		}(c)
	}
	var firstErr error
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Classes returns the logit width Predict fills (len(out) must equal it).
func (s *Server) Classes() int { return s.classes }

// Metrics returns the server's live metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// Snapshot returns an aggregate view of the metrics, including the bytes
// the serving collectives have moved so far (current comm group plus every
// group retired by a regroup).
func (s *Server) Snapshot() Snapshot {
	s.cmu.Lock()
	bytes := s.retiredBytes
	for _, c := range s.comms {
		bytes += c.BytesSent()
	}
	s.cmu.Unlock()
	return s.met.snapshot(bytes)
}

// Predict requests class logits for vertex v, blocking until the coalesced
// micro-batch containing the request completes. out receives the logits
// and must have length Classes(). Safe for concurrent use; the warm path
// performs no heap allocations.
func (s *Server) Predict(v int32, out []float32) (Stats, error) {
	if v < 0 || int(v) >= s.numVerts {
		return Stats{}, fmt.Errorf("serve: vertex %d outside [0,%d)", v, s.numVerts)
	}
	if len(out) != s.classes {
		return Stats{}, fmt.Errorf("serve: output buffer has %d slots for %d classes", len(out), s.classes)
	}
	r, _ := s.reqPool.Get().(*request)
	if r == nil {
		r = &request{done: make(chan struct{}, 1)}
	}
	r.vertex, r.out, r.err = v, out, nil
	r.stats = Stats{}
	r.arrive = time.Now()

	e := s.engines[s.layout.Owner(v)]
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		r.out = nil
		s.reqPool.Put(r)
		return Stats{}, ErrClosed
	}
	cur := int(s.maxBatch.Load())
	if s.cfg.Deadline > 0 {
		// Admission control: with an EWMA round-time estimate in hand, a
		// request that would sit behind ⌈queue/batch⌉ rounds plus its own
		// cannot meet the budget — reject it now, while the caller can still
		// retry elsewhere, rather than time it out after queueing.
		if est := s.roundNS.Load(); est > 0 {
			ahead := int64(len(e.pending)/cur) + 1
			if time.Duration(ahead*est) > s.cfg.Deadline {
				e.mu.Unlock()
				r.out = nil
				s.reqPool.Put(r)
				s.met.shed.Add(1)
				return Stats{}, ErrShed
			}
		}
	}
	e.pending = append(e.pending, r)
	isFull := len(e.pending) >= cur
	e.mu.Unlock()

	select {
	case s.arrivals <- struct{}{}:
	default:
	}
	if isFull {
		select {
		case s.full <- struct{}{}:
		default:
		}
	}

	<-r.done
	st, err := r.stats, r.err
	r.out = nil
	s.reqPool.Put(r)
	return st, err
}

// Close shuts the server down: queued and in-flight requests fail with
// ErrClosed (an in-flight Gather unwinds promptly through the abort
// channel installed on every serving store), the driver and engines exit,
// and the serving communicators are torn down. Safe to call more than
// once.
func (s *Server) Close() error {
	s.closed.Do(func() { close(s.shutdown) })
	s.wg.Wait()
	// A regrown group delivered by the prober but never installed must not
	// leak its comms.
	select {
	case g := <-s.newGroup:
		g.close()
	default:
	}
	// Release builder-owned cache epochs — the installed one and any build
	// that finished without being delivered — so every pooled feature
	// matrix returns and the installers' Live gauges drop to zero. Safe
	// after wg.Wait: the executors and cacheLoops have exited.
	for _, e := range s.engines {
		if e.installer == nil {
			continue
		}
		select {
		case b := <-e.built:
			e.installer.Release(b.ep)
		default:
		}
		e.installer.Release(e.store.Epoch())
	}
	s.closeComms()
	return nil
}

func (s *Server) closeComms() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for _, c := range s.comms {
		c.Close()
	}
}

// driver owns round formation: it waits for traffic, applies the
// MaxBatch/MaxWait admission policy, and fires lockstep rounds across all
// engines.
//
// The loop is deadline-driven: each iteration either blocks idle on the
// arrivals channel (no request queued anywhere) or knows, from the single
// scan that discovered the queued work, the oldest request's admission
// deadline — and arms the timer exactly once for it. Sub-MaxBatch
// arrivals during the window cannot move that deadline earlier, so they
// cost no wake and no re-scan; only a full batch (the full channel) fires
// the round early. After a round, the queues are re-derived with one scan
// whose result feeds the next admission decision directly — there is no
// self-signal hop back through the arrivals channel, and tokens raised by
// requests the round already served are drained rather than waking the
// driver into an empty re-scan. Net: a lone queued request costs O(1)
// scans (one on arrival, one settling after its round), pinned by
// TestDriverScansO1.
func (s *Server) driver() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	var (
		oldest time.Time
		queued bool // a request is known queued; oldest is its arrival
		isFull bool
		total  int
	)
	for {
		if !queued {
			select {
			case <-s.shutdown:
				s.failPending()
				return
			case <-s.arrivals:
			}
			oldest, queued, isFull, total = s.scanQueues()
			if !queued {
				continue // raced with a round that served the arrival
			}
		}
		// Admission window: hold the round open until the oldest queued
		// arrival's deadline unless some rank is already full. One timer
		// arm per deadline.
		if !isFull && s.cfg.MaxWait > 0 {
			if wait := time.Until(oldest.Add(s.cfg.MaxWait)); wait > 0 {
				timer.Reset(wait)
				select {
				case <-s.shutdown:
					stopTimer()
					s.failPending()
					return
				case <-s.full:
					stopTimer()
				case <-timer.C:
				}
			}
		}
		round := s.round
		s.round++
		// The round mode is decided here, once, for all K engines: every
		// engine of a round must run the same collective schedule, so a
		// rank cannot decide unilaterally mid-round to skip its gather.
		msg := roundMsg{round: round, gather: s.healthy.Load() || s.cfg.GatherTimeout == 0}
		roundT0 := time.Now()
		for _, e := range s.engines {
			select {
			case e.start <- msg:
			case <-s.shutdown:
				// Engines that already received the round unwind through
				// the comm abort; their final ended signal parks in the
				// buffered channel.
				s.failPending()
				return
			}
		}
		for _, e := range s.engines {
			<-e.ended
		}
		s.observeRoundTime(time.Since(roundT0))
		// A probed healthy group delivered by the regroup goroutine is
		// installed here, between rounds, when no engine touches its store.
		select {
		case g := <-s.newGroup:
			s.installGroup(g)
		default:
		}
		if s.cfg.GatherTimeout > 0 && !s.healthy.Load() && s.regrouping.CompareAndSwap(false, true) {
			s.wg.Add(1)
			go s.regroup()
		}
		// Absorb signals raised by requests this round already served.
		// Draining before the scan is race-free: Predict appends to a
		// queue before signaling, so any request whose token is consumed
		// here is either visible to the scan below (and handled next
		// round) or signals again afterwards (and wakes the idle select).
		select {
		case <-s.full:
		default:
		}
		select {
		case <-s.arrivals:
		default:
		}
		oldest, queued, isFull, total = s.scanQueues()
		s.adaptBatch(total)
	}
}

// observeRoundTime folds one round's wall time into the EWMA the admission
// shed and the adaptive batch policy read. Only the driver writes it.
func (s *Server) observeRoundTime(d time.Duration) {
	est := s.roundNS.Load()
	if est == 0 {
		s.roundNS.Store(int64(d))
		return
	}
	s.roundNS.Store(est - est/4 + int64(d)/4)
}

// adaptBatch is the driver's batch-size controller (active only with a
// Deadline): under SLO pressure — rounds consuming more than half the
// budget — it halves the effective batch so rounds finish inside the
// deadline again; under backlog with ample headroom it doubles the batch
// up to MaxBatchCap, trading per-request latency for drain rate.
func (s *Server) adaptBatch(totalQueued int) {
	if s.cfg.Deadline <= 0 {
		return
	}
	est := s.roundNS.Load()
	if est == 0 {
		return
	}
	cur := s.maxBatch.Load()
	switch {
	case est > int64(s.cfg.Deadline)/2 && cur > 1:
		s.maxBatch.Store(cur / 2)
	case est < int64(s.cfg.Deadline)/4 && totalQueued > int(cur) && cur < int64(s.cfg.MaxBatchCap):
		next := cur * 2
		if next > int64(s.cfg.MaxBatchCap) {
			next = int64(s.cfg.MaxBatchCap)
		}
		s.maxBatch.Store(next)
	}
}

// installGroup retires the current comm group (closing its comms and
// banking their wire-byte counters) and swaps in a freshly probed one,
// returning the server to healthy gathering. Called only by the driver,
// between rounds.
func (s *Server) installGroup(g *commGroup) {
	s.cmu.Lock()
	for _, c := range s.comms {
		s.retiredBytes += c.BytesSent()
		c.Close()
	}
	s.comms = g.comms
	s.cmu.Unlock()
	for r, e := range s.engines {
		// A fresh sibling starts on its parent's epoch; carry the engine's
		// installed epoch over so a regroup doesn't roll the cache back.
		// The displaced parent epoch is foreign to the installer's builder,
		// so there is nothing to release; the quant shadow already matches
		// the serving precision, so InstallEpoch cannot fail here.
		if e.installer != nil {
			if _, err := g.stores[r].InstallEpoch(e.store.Epoch()); err != nil {
				panic(fmt.Sprintf("serve: regroup epoch carry-over: %v", err))
			}
		}
		e.store = g.stores[r]
	}
	s.met.regroups.Add(1)
	s.healthy.Store(true)
	s.regrouping.Store(false)
}

// regroup is the background prober launched while the server is degraded:
// it repeatedly builds a candidate comm group and health-checks it (the
// gather timeout bounds each attempt), delivering the first group whose
// probe succeeds. The driver installs it between rounds.
func (s *Server) regroup() {
	defer s.wg.Done()
	for {
		g, err := s.buildGroup(true)
		if err == nil {
			select {
			case s.newGroup <- g:
			case <-s.shutdown:
				g.close()
			}
			return
		}
		select {
		case <-s.shutdown:
			return
		case <-time.After(s.cfg.ProbeInterval):
		}
	}
}

// scanQueues reports the oldest queued arrival, whether any request is
// queued, whether any rank has a full batch waiting, and the total queued
// across ranks (the backlog signal the adaptive batch policy reads).
func (s *Server) scanQueues() (oldest time.Time, any, isFull bool, total int) {
	s.scans.Add(1)
	cur := int(s.maxBatch.Load())
	for _, e := range s.engines {
		e.mu.Lock()
		if n := len(e.pending); n > 0 {
			a := e.pending[0].arrive
			if !any || a.Before(oldest) {
				oldest = a
			}
			any = true
			total += n
			if n >= cur {
				isFull = true
			}
		}
		e.mu.Unlock()
	}
	return oldest, any, isFull, total
}

// failPending marks every engine closed and fails all queued requests.
// Engines executing a round keep going; their requests complete with the
// gather abort error instead.
func (s *Server) failPending() {
	for _, e := range s.engines {
		e.mu.Lock()
		e.stopped = true
		for i, r := range e.pending {
			r.err = ErrClosed
			r.done <- struct{}{}
			e.pending[i] = nil
		}
		e.pending = e.pending[:0]
		e.mu.Unlock()
	}
}

// engine is one rank's serving state: admission queue, sibling store,
// frozen model, sampler worker, and reusable round scratch.
type engine struct {
	srv    *Server
	rank   int
	store  *dist.Store
	model  *nn.Frozen
	worker *sample.Worker
	base   *rng.RNG

	mu      sync.Mutex
	pending []*request
	stopped bool

	// Round scratch, touched only by this engine's executor goroutine.
	// stamp and rowOf are indexed by v-lo: every request routed here is
	// owned by this rank, so the scratch spans one partition interval.
	lo       int32 // first vertex of this rank's partition interval
	batch    []*request
	seeds    []int32
	stamp    []uint64 // (v-lo) -> round+1 marker for batch dedup
	rowOf    []int32  // (v-lo) -> seed row in the current round
	roundRNG rng.RNG  // per-round sampling stream, derived in place

	// Online cache state (nil installer in static mode). The executor
	// goroutine observes every round and proposes memberships; the
	// cacheLoop goroutine builds epochs off the round path; the executor
	// installs delivered epochs between its gathers. At most one proposal
	// is outstanding, so both channels (cap 1) never block.
	installer    *cache.Installer
	refreshEvery int
	sinceRefresh int
	proposalOut  bool
	proposeBuf   []int32 // reused proposal copy handed to cacheLoop
	proposals    chan cacheProposal
	built        chan cacheBuilt

	start chan roundMsg
	ended chan struct{}
}

// cacheProposal is one membership the executor hands to its cacheLoop;
// cur is the epoch the churn is counted against (stable until the built
// epoch is installed, because only the executor installs).
type cacheProposal struct {
	ids []int32
	cur *cache.Epoch
}

// cacheBuilt is the cacheLoop's reply: the built epoch (nil when the
// membership was unchanged or the build failed) and its admission churn.
type cacheBuilt struct {
	ep    *cache.Epoch
	churn int
}

// cacheLoop is the engine's background epoch builder: it turns proposed
// memberships into materialized epochs (index + feature rows + quant
// shadow) so the feature copies never extend a serving round.
func (e *engine) cacheLoop() {
	defer e.srv.wg.Done()
	for {
		select {
		case <-e.srv.shutdown:
			return
		case p := <-e.proposals:
			ep, churn, err := e.installer.BuildFor(p.ids, p.cur)
			if err != nil {
				ep, churn = nil, 0
			}
			e.built <- cacheBuilt{ep: ep, churn: churn}
		}
	}
}

// maybeRefreshCache runs the executor's half of the online cache cycle,
// once per round after the gather: install a delivered epoch (pointer
// swap, between this engine's gathers by construction), then, on the
// refresh cadence, propose the next membership and hand it to cacheLoop.
func (e *engine) maybeRefreshCache() {
	s := e.srv
	select {
	case b := <-e.built:
		e.proposalOut = false
		if b.ep != nil {
			prev, err := e.store.InstallEpoch(b.ep)
			if err != nil {
				e.installer.Release(b.ep)
				break
			}
			e.installer.Release(prev)
			s.met.cacheInstalls.Add(1)
			s.met.cacheChurn.Add(int64(b.churn))
		}
	default:
	}
	e.sinceRefresh++
	if e.proposalOut || e.sinceRefresh < e.refreshEvery {
		return
	}
	e.sinceRefresh = 0
	e.proposeBuf = append(e.proposeBuf[:0], e.installer.Propose()...)
	e.proposals <- cacheProposal{ids: e.proposeBuf, cur: e.store.Epoch()}
	e.proposalOut = true
}

// roundMsg is the driver's round order. gather tells every engine of the
// round, uniformly, whether to run the real collective Gather or the
// degraded local fallback — the mode is a round-level property because
// Gather's collectives must stay matched across all K ranks.
type roundMsg struct {
	round  uint64
	gather bool
}

// loop is the engine's executor goroutine: it runs rounds in lockstep with
// its peers until shutdown.
func (e *engine) loop() {
	defer e.srv.wg.Done()
	for {
		select {
		case <-e.srv.shutdown:
			return
		case m := <-e.start:
			e.run(m)
			e.ended <- struct{}{}
		}
	}
}

// noteUnhealthy records a live gather failure: the server flips to
// degraded mode (the driver stops ordering real gathers and starts
// probing for a fresh group) and the failure is classified in metrics.
func (e *engine) noteUnhealthy(err error) {
	s := e.srv
	if errors.Is(err, dist.ErrTimeout) {
		s.met.gatherTimeouts.Add(1)
	}
	s.healthy.Store(false)
}

// run executes one serving round on this rank: snapshot up to the
// effective batch cap of queued requests, coalesce them into a sorted
// deduplicated seed list, sample, gather (matched with every peer, even
// when empty) or fall back to the degraded local gather, forward, and
// reply. All buffers are recycled before returning.
func (e *engine) run(m roundMsg) {
	s := e.srv
	round := m.round
	roundStart := time.Now()

	e.mu.Lock()
	n := len(e.pending)
	if cur := int(s.maxBatch.Load()); n > cur {
		n = cur
	}
	e.batch = append(e.batch[:0], e.pending[:n]...)
	rem := copy(e.pending, e.pending[n:])
	for i := rem; i < len(e.pending); i++ {
		e.pending[i] = nil
	}
	e.pending = e.pending[:rem]
	e.mu.Unlock()

	if s.cfg.Deadline > 0 {
		// Snapshot-time shed: a request whose budget cannot cover this
		// round (queue wait so far plus the round-time estimate) would only
		// waste batch slots on a reply its caller has abandoned. The filter
		// rewrites e.batch in place, keeping the warm path allocation-free.
		est := time.Duration(s.roundNS.Load())
		kept := e.batch[:0]
		for _, r := range e.batch {
			if roundStart.Sub(r.arrive)+est > s.cfg.Deadline {
				r.err = ErrShed
				s.met.shed.Add(1)
				r.done <- struct{}{}
				continue
			}
			kept = append(kept, r)
		}
		for i := len(kept); i < len(e.batch); i++ {
			e.batch[i] = nil
		}
		e.batch = kept
		n = len(e.batch)
	}

	// Coalesce: concurrent requests for the same vertex share one seed.
	// Sorting makes the micro-batch (and therefore the sampled MFG and the
	// logits) a deterministic function of (round, vertex set), independent
	// of request arrival order.
	mark := round + 1
	e.seeds = e.seeds[:0]
	for _, r := range e.batch {
		if e.stamp[r.vertex-e.lo] != mark {
			e.stamp[r.vertex-e.lo] = mark
			e.seeds = append(e.seeds, r.vertex)
		}
	}
	slices.Sort(e.seeds)
	for i, v := range e.seeds {
		e.rowOf[v-e.lo] = int32(i)
	}

	e.base.SplitInto(round, &e.roundRNG)
	e.worker.SetRNG(&e.roundRNG)
	t0 := time.Now()
	mfg := e.worker.Sample(e.seeds)
	tSample := time.Since(t0)

	// A reduced-precision store gathers straight into quantized form (the
	// scratch is store-owned — nothing to release); fp32 takes the pooled
	// path. Both run the same collectives, so mixed deployments stay
	// matched. A degraded round (driver-ordered, or a gather failure while
	// the server is up) serves from cache + local shard only: unreachable
	// remote rows are zero-filled and the reply is flagged.
	t0 = time.Now()
	var feats *tensor.Matrix
	var qfeats *tensor.QuantMatrix
	var gstats dist.GatherStats
	var err error
	quant := e.store.Precision() != tensor.PrecisionFP32
	degraded := !m.gather
	if degraded {
		if quant {
			qfeats, gstats, err = e.store.GatherLocalQuant(mfg.InputIDs())
		} else {
			feats, gstats = e.store.GatherLocal(mfg.InputIDs())
		}
	} else {
		if quant {
			qfeats, gstats, err = e.store.GatherQuant(mfg.InputIDs())
		} else {
			feats, gstats, err = e.store.Gather(mfg.InputIDs())
		}
		if err != nil && s.cfg.GatherTimeout > 0 {
			// Degrade in place — unless the failure is the shutdown abort
			// unwinding, in which case requests must fail, not silently get
			// a degraded answer from a server that is going away.
			select {
			case <-s.shutdown:
			default:
				e.noteUnhealthy(err)
				degraded, err = true, nil
				if quant {
					qfeats, gstats, err = e.store.GatherLocalQuant(mfg.InputIDs())
				} else {
					feats, gstats = e.store.GatherLocal(mfg.InputIDs())
				}
			}
		}
	}
	tGather := time.Since(t0)
	// Feed the online policy every successful round — hits and misses both,
	// degraded rounds included (their zero-filled ids were still wanted, and
	// the policy clock must advance with the rounds).
	if e.installer != nil && err == nil {
		e.installer.Observe(cache.RoundAccess{Hits: gstats.CacheHitIDs, Misses: gstats.RemoteIDs})
	}
	// RemoteByPeer/CacheHitIDs/RemoteIDs alias store scratch; only scalars
	// may outlive the round.
	gstats.RemoteByPeer = nil
	gstats.CacheHitIDs = nil
	gstats.RemoteIDs = nil

	var tCompute time.Duration
	var logits *tensor.Matrix
	if err == nil && len(e.seeds) > 0 {
		t0 = time.Now()
		if qfeats != nil {
			logits, err = e.model.ForwardQuant(mfg, qfeats)
		} else {
			logits, err = e.model.Forward(mfg, feats)
		}
		tCompute = time.Since(t0)
	}

	now := time.Now()
	for i, r := range e.batch {
		if err != nil {
			r.err = err
		} else {
			copy(r.out, logits.Row(int(e.rowOf[r.vertex-e.lo])))
			r.stats = Stats{
				Round: round, BatchSize: n,
				Queue:  roundStart.Sub(r.arrive),
				Sample: tSample, Gather: tGather, Compute: tCompute,
				Total:       now.Sub(r.arrive),
				RemoteFetch: gstats.RemoteFetch, CacheHits: gstats.CacheHits,
				Degraded: degraded, Missing: gstats.Missing,
				CacheGen: e.store.CacheGen(),
			}
			s.met.observeRequest(&r.stats)
		}
		r.done <- struct{}{}
		e.batch[i] = nil
	}
	e.batch = e.batch[:0]
	if err == nil {
		s.met.observeRound(n, gstats, tCompute, degraded)
	}
	if feats != nil {
		e.store.Release(feats)
	}
	mfg.Release()
	e.model.ReleaseBatch()
	if e.installer != nil {
		e.maybeRefreshCache()
	}
}
