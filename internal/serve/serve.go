// Package serve implements online GNN inference over the SALIENT++ stack:
// an embeddable server that accepts per-vertex prediction requests,
// coalesces concurrent requests into sampled micro-batches, and runs them
// through the existing sampler → cache-aware partitioned Gather → frozen
// GraphSAGE forward path.
//
// Architecture (one round):
//
//	clients ──Predict──▶ per-rank admission queues (routed by vertex owner)
//	                               │
//	             driver fires a round when any rank reaches MaxBatch
//	             or the oldest queued request has waited MaxWait
//	                               │
//	     all K engines execute the round in lockstep (matched collectives):
//	     dedup+sort seeds → sample MFG → Store.Gather → Frozen.Forward
//	                               │
//	     per-request logits copied out, latency recorded, buffers recycled
//
// Rounds are lockstep across ranks because Gather's three collectives must
// stay matched — a rank with an empty queue gathers an empty id list, the
// same padding discipline the training pipeline uses. Within a round the K
// engines run concurrently.
//
// The steady-state serving loop is allocation-free: requests are pooled,
// seeds/batches reuse high-water-mark scratch, the MFG comes from the
// sampler arena, gathered features from the store's tensor pool, and model
// intermediates from the frozen snapshot's arena (all released when the
// round retires). guarded by TestServeAllocationFree.
package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"salientpp/internal/dist"
	"salientpp/internal/nn"
	"salientpp/internal/pipeline"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// ErrClosed is returned by Predict once the server is shut down.
var ErrClosed = errors.New("serve: server closed")

// Config controls the coalescing admission policy and the inference
// sampling setup.
type Config struct {
	// MaxBatch caps the coalesced requests per rank per round; a rank
	// reaching it fires the round immediately. Defaults to 64.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for company
	// before a round fires anyway. 0 means the 500µs default; negative
	// fires rounds as soon as any request arrives (lowest latency, least
	// batching).
	MaxWait time.Duration
	// Fanouts are the inference sampling fanouts; nil uses the cluster's
	// training fanouts.
	Fanouts []int
	// Seed drives inference sampling: round r on rank k samples with the
	// stream Seed→Split(k)→Split(r), so a given (round, seed set) is
	// reproducible offline.
	Seed uint64
	// UseTCP routes the serving gathers over loopback TCP instead of
	// in-process channels.
	UseTCP bool
	// Codec selects the wire codec of the serving comm group ("fp32",
	// "fp16", "int8"); the empty string inherits the training cluster's
	// codec. The serving group is a separate comm group, so it may
	// legitimately run a smaller codec than training (e.g. int8 serving
	// over fp32 training). Metrics().BytesSent counts the encoded wire
	// bytes, not rows×dim×4.
	Codec string
	// Precision selects the serving compute precision ("fp32", "fp16",
	// "int8"); the empty string inherits the training cluster's configured
	// precision. A reduced precision keeps the frozen weights and the
	// gathered features quantized end to end: the store serves quantized
	// rows (remote rows pass through from a matching wire codec without a
	// dequantize/requantize round trip) and the forward runs the integer
	// SIMD kernels. Training always computes in fp32, so int8 serving over
	// an fp32-trained cluster is the expected deployment shape.
	Precision string
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 500 * time.Microsecond
	}
	if c.MaxWait < 0 {
		c.MaxWait = 0
	}
	return c
}

// Stats is the per-request accounting Predict returns. Stage durations
// describe the micro-batch (round) that served the request; Queue and
// Total are specific to the request.
type Stats struct {
	// Round is the global round that served the request; BatchSize is how
	// many requests it coalesced on this rank.
	Round     uint64
	BatchSize int
	// Queue is the admission-queue wait before the round started.
	Queue time.Duration
	// Sample, Gather, and Compute are the round's stage times.
	Sample  time.Duration
	Gather  time.Duration
	Compute time.Duration
	// Total is enqueue-to-reply latency.
	Total time.Duration
	// RemoteFetch and CacheHits classify the round's feature accesses.
	RemoteFetch int
	CacheHits   int
}

// request is a pooled in-flight prediction.
type request struct {
	vertex int32
	out    []float32
	stats  Stats
	err    error
	arrive time.Time
	done   chan struct{} // cap 1; reused across lives
}

// Server coalesces concurrent per-vertex prediction requests into sampled
// micro-batches over an in-process K-rank serving deployment. Predict is
// safe for any number of concurrent callers.
type Server struct {
	cfg      Config
	layout   *dist.Layout
	engines  []*engine
	comms    []dist.Comm
	classes  int
	numVerts int

	reqPool  sync.Pool
	arrivals chan struct{} // cap 1: "a request arrived somewhere"
	full     chan struct{} // cap 1: "some rank reached MaxBatch"
	shutdown chan struct{}
	closed   sync.Once
	wg       sync.WaitGroup
	round    uint64

	// scans counts scanQueues calls — the driver-efficiency gauge the
	// busy-loop regression test reads. A lone queued request must cost
	// O(1) scans (one on arrival, one re-check after its round), not one
	// per timer tick of the admission window.
	scans atomic.Int64

	met *Metrics
}

// New builds a serving deployment over a trained (or training) cluster:
// per rank, a sibling feature store sharing the read-only shard and cache
// over a fresh communicator group, a frozen snapshot of the rank's model,
// and an inference sampler. The cluster may keep training afterwards; the
// server's predictions come from the snapshot taken here.
func New(cl *pipeline.Cluster, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	k := len(cl.Ranks)
	if k == 0 {
		return nil, fmt.Errorf("serve: cluster has no ranks")
	}
	fanouts := cfg.Fanouts
	if len(fanouts) == 0 {
		fanouts = cl.Ranks[0].Sampler().Fanouts()
	}
	prec := cl.Precision
	if cfg.Precision != "" {
		var err error
		if prec, err = tensor.ParsePrecision(cfg.Precision); err != nil {
			return nil, err
		}
	}
	var comms []dist.Comm
	var err error
	if cfg.UseTCP {
		comms, err = dist.NewTCPGroup(k)
	} else {
		comms, err = dist.NewLocalGroup(k)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		layout:   cl.Layout,
		comms:    comms,
		numVerts: cl.Data.NumVertices(),
		arrivals: make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		shutdown: make(chan struct{}),
		met:      newMetrics(cfg.MaxBatch),
	}
	// fail closes the shutdown channel too, so abort watchers already
	// installed on sibling stores exit instead of leaking.
	fail := func(err error) (*Server, error) {
		s.closed.Do(func() { close(s.shutdown) })
		s.closeComms()
		return nil, err
	}
	for r := 0; r < k; r++ {
		st, err := cl.Ranks[r].Store().Sibling(comms[r])
		if err != nil {
			return fail(err)
		}
		if cfg.Codec != "" {
			codec, err := dist.ParseCodec(cfg.Codec)
			if err != nil {
				return fail(err)
			}
			st.SetCodec(codec)
		}
		if prec != tensor.PrecisionFP32 {
			st.SetPrecision(prec)
		}
		st.SetAbort(s.shutdown)
		frozen := cl.Ranks[r].Model().FreezePrecision(prec)
		if frozen.NumLayers() != len(fanouts) {
			return fail(fmt.Errorf("serve: %d fanouts for a %d-layer model", len(fanouts), frozen.NumLayers()))
		}
		smp, err := sample.NewSampler(cl.Data.Graph, fanouts)
		if err != nil {
			return fail(err)
		}
		// Dedup scratch covers only this rank's partition interval:
		// Predict routes every request to its vertex's owner, so the
		// engine never indexes a foreign vertex, and total scratch across
		// engines stays O(N) instead of O(N·K).
		e := &engine{
			srv:    s,
			rank:   r,
			store:  st,
			model:  frozen,
			worker: smp.NewWorker(rng.New(0)), // stream replaced every round
			base:   rng.New(cfg.Seed).Split(uint64(r)),
			lo:     int32(cl.Layout.Starts[r]),
			stamp:  make([]uint64, cl.Layout.PartSize(r)),
			rowOf:  make([]int32, cl.Layout.PartSize(r)),
			start:  make(chan uint64),
			ended:  make(chan struct{}, 1),
		}
		s.engines = append(s.engines, e)
		s.classes = frozen.Classes()
	}
	s.wg.Add(1 + k)
	for _, e := range s.engines {
		go e.loop()
	}
	go s.driver()
	return s, nil
}

// Classes returns the logit width Predict fills (len(out) must equal it).
func (s *Server) Classes() int { return s.classes }

// Metrics returns the server's live metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// Snapshot returns an aggregate view of the metrics, including the bytes
// the serving collectives have moved so far.
func (s *Server) Snapshot() Snapshot {
	var bytes int64
	for _, c := range s.comms {
		bytes += c.BytesSent()
	}
	return s.met.snapshot(bytes)
}

// Predict requests class logits for vertex v, blocking until the coalesced
// micro-batch containing the request completes. out receives the logits
// and must have length Classes(). Safe for concurrent use; the warm path
// performs no heap allocations.
func (s *Server) Predict(v int32, out []float32) (Stats, error) {
	if v < 0 || int(v) >= s.numVerts {
		return Stats{}, fmt.Errorf("serve: vertex %d outside [0,%d)", v, s.numVerts)
	}
	if len(out) != s.classes {
		return Stats{}, fmt.Errorf("serve: output buffer has %d slots for %d classes", len(out), s.classes)
	}
	r, _ := s.reqPool.Get().(*request)
	if r == nil {
		r = &request{done: make(chan struct{}, 1)}
	}
	r.vertex, r.out, r.err = v, out, nil
	r.stats = Stats{}
	r.arrive = time.Now()

	e := s.engines[s.layout.Owner(v)]
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		r.out = nil
		s.reqPool.Put(r)
		return Stats{}, ErrClosed
	}
	e.pending = append(e.pending, r)
	isFull := len(e.pending) >= s.cfg.MaxBatch
	e.mu.Unlock()

	select {
	case s.arrivals <- struct{}{}:
	default:
	}
	if isFull {
		select {
		case s.full <- struct{}{}:
		default:
		}
	}

	<-r.done
	st, err := r.stats, r.err
	r.out = nil
	s.reqPool.Put(r)
	return st, err
}

// Close shuts the server down: queued and in-flight requests fail with
// ErrClosed (an in-flight Gather unwinds promptly through the abort
// channel installed on every serving store), the driver and engines exit,
// and the serving communicators are torn down. Safe to call more than
// once.
func (s *Server) Close() error {
	s.closed.Do(func() { close(s.shutdown) })
	s.wg.Wait()
	s.closeComms()
	return nil
}

func (s *Server) closeComms() {
	for _, c := range s.comms {
		c.Close()
	}
}

// driver owns round formation: it waits for traffic, applies the
// MaxBatch/MaxWait admission policy, and fires lockstep rounds across all
// engines.
//
// The loop is deadline-driven: each iteration either blocks idle on the
// arrivals channel (no request queued anywhere) or knows, from the single
// scan that discovered the queued work, the oldest request's admission
// deadline — and arms the timer exactly once for it. Sub-MaxBatch
// arrivals during the window cannot move that deadline earlier, so they
// cost no wake and no re-scan; only a full batch (the full channel) fires
// the round early. After a round, the queues are re-derived with one scan
// whose result feeds the next admission decision directly — there is no
// self-signal hop back through the arrivals channel, and tokens raised by
// requests the round already served are drained rather than waking the
// driver into an empty re-scan. Net: a lone queued request costs O(1)
// scans (one on arrival, one settling after its round), pinned by
// TestDriverScansO1.
func (s *Server) driver() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	var (
		oldest time.Time
		queued bool // a request is known queued; oldest is its arrival
		isFull bool
	)
	for {
		if !queued {
			select {
			case <-s.shutdown:
				s.failPending()
				return
			case <-s.arrivals:
			}
			oldest, queued, isFull = s.scanQueues()
			if !queued {
				continue // raced with a round that served the arrival
			}
		}
		// Admission window: hold the round open until the oldest queued
		// arrival's deadline unless some rank is already full. One timer
		// arm per deadline.
		if !isFull && s.cfg.MaxWait > 0 {
			if wait := time.Until(oldest.Add(s.cfg.MaxWait)); wait > 0 {
				timer.Reset(wait)
				select {
				case <-s.shutdown:
					stopTimer()
					s.failPending()
					return
				case <-s.full:
					stopTimer()
				case <-timer.C:
				}
			}
		}
		round := s.round
		s.round++
		for _, e := range s.engines {
			select {
			case e.start <- round:
			case <-s.shutdown:
				// Engines that already received the round unwind through
				// the comm abort; their final ended signal parks in the
				// buffered channel.
				s.failPending()
				return
			}
		}
		for _, e := range s.engines {
			<-e.ended
		}
		// Absorb signals raised by requests this round already served.
		// Draining before the scan is race-free: Predict appends to a
		// queue before signaling, so any request whose token is consumed
		// here is either visible to the scan below (and handled next
		// round) or signals again afterwards (and wakes the idle select).
		select {
		case <-s.full:
		default:
		}
		select {
		case <-s.arrivals:
		default:
		}
		oldest, queued, isFull = s.scanQueues()
	}
}

// scanQueues reports the oldest queued arrival, whether any request is
// queued, and whether any rank has a full batch waiting.
func (s *Server) scanQueues() (oldest time.Time, any, isFull bool) {
	s.scans.Add(1)
	for _, e := range s.engines {
		e.mu.Lock()
		if n := len(e.pending); n > 0 {
			a := e.pending[0].arrive
			if !any || a.Before(oldest) {
				oldest = a
			}
			any = true
			if n >= s.cfg.MaxBatch {
				isFull = true
			}
		}
		e.mu.Unlock()
	}
	return oldest, any, isFull
}

// failPending marks every engine closed and fails all queued requests.
// Engines executing a round keep going; their requests complete with the
// gather abort error instead.
func (s *Server) failPending() {
	for _, e := range s.engines {
		e.mu.Lock()
		e.stopped = true
		for i, r := range e.pending {
			r.err = ErrClosed
			r.done <- struct{}{}
			e.pending[i] = nil
		}
		e.pending = e.pending[:0]
		e.mu.Unlock()
	}
}

// engine is one rank's serving state: admission queue, sibling store,
// frozen model, sampler worker, and reusable round scratch.
type engine struct {
	srv    *Server
	rank   int
	store  *dist.Store
	model  *nn.Frozen
	worker *sample.Worker
	base   *rng.RNG

	mu      sync.Mutex
	pending []*request
	stopped bool

	// Round scratch, touched only by this engine's executor goroutine.
	// stamp and rowOf are indexed by v-lo: every request routed here is
	// owned by this rank, so the scratch spans one partition interval.
	lo       int32 // first vertex of this rank's partition interval
	batch    []*request
	seeds    []int32
	stamp    []uint64 // (v-lo) -> round+1 marker for batch dedup
	rowOf    []int32  // (v-lo) -> seed row in the current round
	roundRNG rng.RNG  // per-round sampling stream, derived in place

	start chan uint64
	ended chan struct{}
}

// loop is the engine's executor goroutine: it runs rounds in lockstep with
// its peers until shutdown.
func (e *engine) loop() {
	defer e.srv.wg.Done()
	for {
		select {
		case <-e.srv.shutdown:
			return
		case round := <-e.start:
			e.run(round)
			e.ended <- struct{}{}
		}
	}
}

// run executes one serving round on this rank: snapshot up to MaxBatch
// queued requests, coalesce them into a sorted deduplicated seed list,
// sample, gather (matched with every peer, even when empty), forward, and
// reply. All buffers are recycled before returning.
func (e *engine) run(round uint64) {
	s := e.srv
	roundStart := time.Now()

	e.mu.Lock()
	n := len(e.pending)
	if n > s.cfg.MaxBatch {
		n = s.cfg.MaxBatch
	}
	e.batch = append(e.batch[:0], e.pending[:n]...)
	rem := copy(e.pending, e.pending[n:])
	for i := rem; i < len(e.pending); i++ {
		e.pending[i] = nil
	}
	e.pending = e.pending[:rem]
	e.mu.Unlock()

	// Coalesce: concurrent requests for the same vertex share one seed.
	// Sorting makes the micro-batch (and therefore the sampled MFG and the
	// logits) a deterministic function of (round, vertex set), independent
	// of request arrival order.
	mark := round + 1
	e.seeds = e.seeds[:0]
	for _, r := range e.batch {
		if e.stamp[r.vertex-e.lo] != mark {
			e.stamp[r.vertex-e.lo] = mark
			e.seeds = append(e.seeds, r.vertex)
		}
	}
	slices.Sort(e.seeds)
	for i, v := range e.seeds {
		e.rowOf[v-e.lo] = int32(i)
	}

	e.base.SplitInto(round, &e.roundRNG)
	e.worker.SetRNG(&e.roundRNG)
	t0 := time.Now()
	mfg := e.worker.Sample(e.seeds)
	tSample := time.Since(t0)

	// A reduced-precision store gathers straight into quantized form (the
	// scratch is store-owned — nothing to release); fp32 takes the pooled
	// path. Both run the same collectives, so mixed deployments stay
	// matched.
	t0 = time.Now()
	var feats *tensor.Matrix
	var qfeats *tensor.QuantMatrix
	var gstats dist.GatherStats
	var err error
	if e.store.Precision() != tensor.PrecisionFP32 {
		qfeats, gstats, err = e.store.GatherQuant(mfg.InputIDs())
	} else {
		feats, gstats, err = e.store.Gather(mfg.InputIDs())
	}
	tGather := time.Since(t0)
	// RemoteByPeer aliases store scratch; only scalars may outlive the round.
	gstats.RemoteByPeer = nil

	var tCompute time.Duration
	var logits *tensor.Matrix
	if err == nil && len(e.seeds) > 0 {
		t0 = time.Now()
		if qfeats != nil {
			logits, err = e.model.ForwardQuant(mfg, qfeats)
		} else {
			logits, err = e.model.Forward(mfg, feats)
		}
		tCompute = time.Since(t0)
	}

	now := time.Now()
	for i, r := range e.batch {
		if err != nil {
			r.err = err
		} else {
			copy(r.out, logits.Row(int(e.rowOf[r.vertex-e.lo])))
			r.stats = Stats{
				Round: round, BatchSize: n,
				Queue:  roundStart.Sub(r.arrive),
				Sample: tSample, Gather: tGather, Compute: tCompute,
				Total:       now.Sub(r.arrive),
				RemoteFetch: gstats.RemoteFetch, CacheHits: gstats.CacheHits,
			}
			s.met.observeRequest(&r.stats)
		}
		r.done <- struct{}{}
		e.batch[i] = nil
	}
	e.batch = e.batch[:0]
	if err == nil {
		s.met.observeRound(n, gstats, tCompute)
	}
	if feats != nil {
		e.store.Release(feats)
	}
	mfg.Release()
	e.model.ReleaseBatch()
}
