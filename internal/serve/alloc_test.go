package serve

import (
	"testing"
	"time"
)

// TestServeAllocationFree is the allocation-regression guard for the warm
// serving loop: pooled requests, reused round scratch, the in-place
// per-round RNG split, pooled MFG arenas, the store's pooled gather
// output, the frozen model's arena, and lock-free histogram observation.
// A single-rank deployment keeps the assertion deterministic — cross-rank
// payloads pay exactly one transport-owned copy per collective, the
// documented floor (see TestGatherAllocationFree in internal/dist).
func TestServeAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates on the goroutine handoffs the serving loop crosses by design")
	}
	// The deadline variant keeps the same guarantee with admission control,
	// the snapshot-time shed filter, the round-time EWMA, the adaptive
	// batch controller, and the per-collective gather deadline all active —
	// resilience bookkeeping must cost zero allocations on the warm path.
	cfgs := map[string]Config{
		"fixed":    {MaxBatch: 4, MaxWait: -1, Seed: 2},
		"deadline": {MaxBatch: 4, MaxWait: -1, Seed: 2, Deadline: time.Minute},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			cl := serveCluster(t, 1, 0, false)
			defer cl.Close()
			// MaxWait < 0: fire a round as soon as a request arrives, so the
			// measured loop is Predict → round → reply with no timer involved.
			srv, err := New(cl, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			out := make([]float32, srv.Classes())
			verts := []int32{3, 200, 731, 48}
			step := func() {
				for _, v := range verts {
					if _, err := srv.Predict(v, out); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < 5; i++ {
				step() // warm every pool and high-water-mark buffer
			}
			allocs := testing.AllocsPerRun(50, step)
			if allocs != 0 {
				t.Fatalf("warm serving loop allocated %.2f times per %d requests, want 0", allocs, len(verts))
			}
		})
	}
}

// BenchmarkPredict measures single-client closed-loop serving latency on
// one rank; run with -benchmem to confirm 0 B/op at steady state.
func BenchmarkPredict(b *testing.B) {
	cl := serveCluster(b, 1, 0, false)
	defer cl.Close()
	srv, err := New(cl, Config{MaxBatch: 4, MaxWait: -1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	out := make([]float32, srv.Classes())
	if _, err := srv.Predict(1, out); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Predict(int32(i%1000), out); err != nil {
			b.Fatal(err)
		}
	}
}
