package serve

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"salientpp/internal/dataset"
	"salientpp/internal/pipeline"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
)

func serveDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "serve-sim", NumVertices: 1500, AvgDegree: 10, FeatureDim: 12,
		NumClasses: 4, TrainFrac: 0.25, ValFrac: 0.08, TestFrac: 0.12,
		FeatureNoise: 0.4, Materialize: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func serveCluster(t testing.TB, k int, alpha float64, useTCP bool) *pipeline.Cluster {
	t.Helper()
	d := serveDataset(t)
	cl, err := pipeline.NewCluster(d, pipeline.ClusterConfig{
		K: k, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
		Hidden: 16, Layers: 2, Dropout: 0, UseTCP: useTCP,
		Train: pipeline.Config{
			Fanouts: []int{5, 5}, BatchSize: 64,
			PipelineDepth: 4, SamplerWorkers: 2, LR: 0.01, Seed: 5,
		},
		ModelSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestServeEquivalentToOfflineForward pins the serving data path to the
// offline one: a coalesced micro-batch's predictions must be bitwise
// identical to nn.Model.Forward over the same sampled MFG (same seed
// stream, same sorted deduplicated seed set), and the serving gather must
// fetch exactly the same remote rows as the offline gather — coalescing
// may change scheduling, never results or communication.
func TestServeEquivalentToOfflineForward(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}

	const seed = 17
	// Request vertices owned by rank 0, plus one duplicated vertex so the
	// batch exercises coalescing. MaxBatch equals the request count, so
	// the round fires exactly when the last request enqueues and round 0
	// contains all of them.
	var verts []int32
	for v := int32(0); int(v) < cl.Data.NumVertices() && len(verts) < 7; v += 13 {
		if cl.Layout.Owner(v) == 0 {
			verts = append(verts, v)
		}
	}
	verts = append(verts, verts[0]) // duplicate request
	m := len(verts)

	srv, err := New(cl, Config{MaxBatch: m, MaxWait: 5 * time.Second, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	outs := make([][]float32, m)
	stats := make([]Stats, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i, v := range verts {
		outs[i] = make([]float32, srv.Classes())
		wg.Add(1)
		go func(i int, v int32) {
			defer wg.Done()
			stats[i], errs[i] = srv.Predict(v, outs[i])
		}(i, v)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if stats[i].Round != 0 || stats[i].BatchSize != m {
			t.Fatalf("request %d served by round %d batch %d; want round 0 batch %d (all coalesced)",
				i, stats[i].Round, stats[i].BatchSize, m)
		}
	}

	// Offline replay: sorted unique seeds, the engine's round-0 stream.
	uniq := map[int32]bool{}
	var seeds []int32
	for _, v := range verts {
		if !uniq[v] {
			uniq[v] = true
			seeds = append(seeds, v)
		}
	}
	for i := 1; i < len(seeds); i++ {
		for j := i; j > 0 && seeds[j] < seeds[j-1]; j-- {
			seeds[j], seeds[j-1] = seeds[j-1], seeds[j]
		}
	}
	smp, err := sample.NewSampler(cl.Data.Graph, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	w := smp.NewWorker(rng.New(seed).Split(0).Split(0))
	mfg := w.Sample(seeds)

	peerDone := make(chan error, 1)
	go func() {
		_, _, err := cl.Ranks[1].Store().Gather(nil)
		peerDone <- err
	}()
	feats, gstats, err := cl.Ranks[0].Store().Gather(mfg.InputIDs())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-peerDone; err != nil {
		t.Fatal(err)
	}
	logits, err := cl.Ranks[0].Model().Forward(mfg, feats, false)
	if err != nil {
		t.Fatal(err)
	}

	if gstats.RemoteFetch == 0 {
		t.Fatal("offline gather fetched nothing remote; the equivalence check needs cross-rank traffic")
	}
	row := map[int32]int{}
	for i, v := range seeds {
		row[v] = i
	}
	for i, v := range verts {
		want := logits.Row(row[v])
		if len(outs[i]) != len(want) {
			t.Fatalf("request %d: %d logits, want %d", i, len(outs[i]), len(want))
		}
		for j := range want {
			if math.Float32bits(outs[i][j]) != math.Float32bits(want[j]) {
				t.Fatalf("request %d (vertex %d) logit %d: served %v, offline %v (must be bitwise identical)",
					i, v, j, outs[i][j], want[j])
			}
		}
		if stats[i].RemoteFetch != gstats.RemoteFetch {
			t.Fatalf("request %d: served round fetched %d remote rows, offline gather %d (must match exactly)",
				i, stats[i].RemoteFetch, gstats.RemoteFetch)
		}
		if stats[i].CacheHits != gstats.CacheHits {
			t.Fatalf("request %d: served round hit cache %d times, offline %d", i, stats[i].CacheHits, gstats.CacheHits)
		}
	}
}

// TestServeConcurrentClients hammers one server from many goroutines (run
// under -race in CI) and checks the metrics aggregate afterwards.
func TestServeConcurrentClients(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	srv, err := New(cl, Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 8, 25
	n := int32(cl.Data.NumVertices())
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(99).Split(uint64(c))
			out := make([]float32, srv.Classes())
			for i := 0; i < perClient; i++ {
				v := int32(r.Intn(int(n)))
				st, err := srv.Predict(v, out)
				if err != nil {
					errCh <- err
					return
				}
				if st.BatchSize < 1 || st.Total <= 0 {
					errCh <- errors.New("implausible request stats")
					return
				}
				for _, x := range out {
					if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
						errCh <- errors.New("non-finite logit")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	snap := srv.Snapshot()
	if snap.Requests != clients*perClient {
		t.Fatalf("snapshot saw %d requests, want %d", snap.Requests, clients*perClient)
	}
	if snap.P50 <= 0 || snap.P95 < snap.P50 || snap.P99 < snap.P95 {
		t.Fatalf("implausible latency quantiles: %+v", snap)
	}
	if snap.MeanBatch < 1 {
		t.Fatalf("mean batch %v < 1", snap.MeanBatch)
	}
	if snap.CacheHits == 0 && snap.RemoteFetches == 0 {
		t.Fatal("no cross-partition feature traffic at all; workload too small")
	}
}

// testShutdownUnderLoad closes a server while clients are mid-flight and
// checks that every blocked Predict unwinds promptly (the abort channel
// installed on the serving stores tears the collectives down), that later
// Predicts fail fast with ErrClosed, and — the leak-regression pattern
// from pipeline/failure_test.go — that shutdown leaves zero serving
// goroutines behind and every pooled feature matrix back in its store
// pool.
func testShutdownUnderLoad(t *testing.T, useTCP bool) {
	cl := serveCluster(t, 2, 0.2, useTCP)
	defer cl.Close()
	baseline := runtime.NumGoroutine()
	srv, err := New(cl, Config{MaxBatch: 4, MaxWait: 100 * time.Microsecond, Seed: 8, UseTCP: useTCP})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	n := int32(cl.Data.NumVertices())
	served := make(chan struct{}, clients*1000)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(5).Split(uint64(c))
			out := make([]float32, srv.Classes())
			for {
				if _, err := srv.Predict(int32(r.Intn(int(n))), out); err != nil {
					return // closed mid-flight or queued at shutdown
				}
				select {
				case served <- struct{}{}:
				default:
				}
			}
		}(c)
	}
	// Let traffic flow, then pull the plug mid-load.
	for i := 0; i < 20; i++ {
		<-served
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	unwound := make(chan struct{})
	go func() { wg.Wait(); close(unwound) }()
	select {
	case <-unwound:
	case <-time.After(10 * time.Second):
		t.Fatal("clients still blocked 10s after Close: in-flight gathers did not unwind")
	}
	out := make([]float32, srv.Classes())
	if _, err := srv.Predict(0, out); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// Pooled-tensor regression: every round — including the one the abort
	// interrupted — must hand its gathered feature matrix back.
	for i, e := range srv.engines {
		if live := e.store.Live(); live != 0 {
			t.Fatalf("engine %d leaked %d pooled matrices at shutdown", i, live)
		}
	}
	// Goroutine regression: driver, engines, abort watchers, and the
	// clients themselves must all be gone.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("serving goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeShutdownUnderLoad(t *testing.T)    { testShutdownUnderLoad(t, false) }
func TestServeShutdownUnderLoadTCP(t *testing.T) { testShutdownUnderLoad(t, true) }

// TestServeValidatesRequests covers the immediate-error paths.
func TestServeValidatesRequests(t *testing.T) {
	cl := serveCluster(t, 2, 0, false)
	defer cl.Close()
	srv, err := New(cl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out := make([]float32, srv.Classes())
	if _, err := srv.Predict(-1, out); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := srv.Predict(int32(cl.Data.NumVertices()), out); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := srv.Predict(0, make([]float32, 1)); err == nil {
		t.Fatal("short output buffer accepted")
	}
	if _, err := srv.Predict(0, out); err != nil {
		t.Fatalf("valid request failed: %v", err)
	}
}
