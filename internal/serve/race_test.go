//go:build race

package serve

// raceEnabled gates the exact zero-allocation assertion: the race runtime
// allocates shadow state on goroutine handoffs, which the serving loop's
// request/round channels cross by design. The non-race CI leg still
// enforces zero.
const raceEnabled = true
