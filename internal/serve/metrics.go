package serve

import (
	"sync/atomic"
	"time"

	"salientpp/internal/dist"
	"salientpp/internal/metrics"
)

// Metrics is the server's live instrumentation: a request-latency
// histogram, a batch-occupancy histogram, and gather-classification
// counters. All updates are lock-free and allocation-free so recording
// them keeps the serving loop's zero-allocation guarantee.
type Metrics struct {
	// Latency records end-to-end request latency in seconds, across all
	// served requests; DegradedLatency records the degraded subset only,
	// so the cost of answering from cache + local shard is attributable
	// per outcome.
	Latency         *metrics.Histogram
	DegradedLatency *metrics.Histogram
	// BatchOccupancy records coalesced requests per non-empty round.
	BatchOccupancy *metrics.Histogram

	requests    atomic.Int64
	rounds      atomic.Int64
	emptyRounds atomic.Int64
	localGPU    atomic.Int64
	localCPU    atomic.Int64
	cacheHits   atomic.Int64
	remote      atomic.Int64
	computeNS   atomic.Int64

	// Resilience counters: requests rejected by admission control,
	// requests answered degraded (and the rounds that produced them),
	// remote rows zero-filled in degraded rounds, gather deadline
	// expirations, and successful comm-group regroups.
	shed           atomic.Int64
	degraded       atomic.Int64
	degradedRounds atomic.Int64
	missingRows    atomic.Int64
	gatherTimeouts atomic.Int64
	regroups       atomic.Int64

	// Online cache layer: epochs installed across engines and the rows
	// newly admitted by those installs. Both stay zero in static mode.
	cacheInstalls atomic.Int64
	cacheChurn    atomic.Int64
}

func newMetrics(maxBatch int) *Metrics {
	if maxBatch < 2 {
		maxBatch = 2
	}
	return &Metrics{
		Latency:         metrics.NewLatencyHistogram(),
		DegradedLatency: metrics.NewLatencyHistogram(),
		BatchOccupancy:  metrics.NewCountHistogram(float64(maxBatch)),
	}
}

func (m *Metrics) observeRequest(st *Stats) {
	m.requests.Add(1)
	m.Latency.Observe(st.Total.Seconds())
	if st.Degraded {
		m.degraded.Add(1)
		m.DegradedLatency.Observe(st.Total.Seconds())
	}
}

func (m *Metrics) observeRound(batch int, g dist.GatherStats, compute time.Duration, degraded bool) {
	m.rounds.Add(1)
	if batch == 0 {
		m.emptyRounds.Add(1)
		return
	}
	if degraded {
		m.degradedRounds.Add(1)
		m.missingRows.Add(int64(g.Missing))
	}
	m.BatchOccupancy.Observe(float64(batch))
	m.computeNS.Add(int64(compute))
	m.localGPU.Add(int64(g.LocalGPU))
	m.localCPU.Add(int64(g.LocalCPU))
	m.cacheHits.Add(int64(g.CacheHits))
	m.remote.Add(int64(g.RemoteFetch))
}

// Snapshot is a point-in-time aggregate of the serving metrics.
type Snapshot struct {
	Requests    int64 `json:"requests"`
	Rounds      int64 `json:"rounds"`
	EmptyRounds int64 `json:"empty_rounds"`

	// Latency quantiles and mean, in seconds.
	P50  float64 `json:"p50_latency_seconds"`
	P95  float64 `json:"p95_latency_seconds"`
	P99  float64 `json:"p99_latency_seconds"`
	Mean float64 `json:"mean_latency_seconds"`

	// MeanBatch is the mean coalesced batch size over non-empty rounds.
	MeanBatch float64 `json:"mean_batch"`

	// Gather classification totals across all rounds.
	LocalGPU      int64 `json:"local_gpu_rows"`
	LocalCPU      int64 `json:"local_cpu_rows"`
	CacheHits     int64 `json:"cache_hits"`
	RemoteFetches int64 `json:"remote_fetches"`
	// CacheHitRate is hits/(hits+remote): the fraction of would-be remote
	// accesses the cache absorbed.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheInstalls counts online cache-epoch swaps across all engines and
	// CacheChurnRows the feature rows newly admitted by those swaps; both
	// are zero under the default static policy.
	CacheInstalls  int64 `json:"cache_installs"`
	CacheChurnRows int64 `json:"cache_churn_rows"`
	// BytesSent is the cumulative feature-collective payload volume.
	BytesSent int64 `json:"bytes_sent"`
	// ComputeSeconds is the cumulative forward-pass time across non-empty
	// rounds — the serve-side compute cost a reduced precision is meant to
	// cut.
	ComputeSeconds float64 `json:"compute_seconds"`

	// Resilience accounting. Shed counts requests rejected with ErrShed;
	// ShedRate is shed/(shed+served). Degraded counts requests answered
	// from cache + local shard only (DegradedRate is their fraction of
	// served requests), DegradedRounds the rounds that produced them, and
	// MissingRows the remote rows zero-filled in those rounds.
	// GatherTimeouts counts gather deadline expirations; Regroups counts
	// comm-group replacements that restored healthy serving.
	Shed           int64   `json:"shed"`
	ShedRate       float64 `json:"shed_rate"`
	Degraded       int64   `json:"degraded"`
	DegradedRate   float64 `json:"degraded_rate"`
	DegradedRounds int64   `json:"degraded_rounds"`
	MissingRows    int64   `json:"missing_rows"`
	GatherTimeouts int64   `json:"gather_timeouts"`
	Regroups       int64   `json:"regroups"`
	// Per-outcome latency: quantiles over the degraded subset only (zero
	// when no request was degraded). Degraded responses skip the remote
	// collectives, so under a stalled peer these stay bounded by the
	// gather timeout while the combined quantiles would hide the split.
	DegradedP50 float64 `json:"degraded_p50_latency_seconds"`
	DegradedP99 float64 `json:"degraded_p99_latency_seconds"`
}

func (m *Metrics) snapshot(bytes int64) Snapshot {
	hits := m.cacheHits.Load()
	remote := m.remote.Load()
	hitRate := 0.0
	if hits+remote > 0 {
		hitRate = float64(hits) / float64(hits+remote)
	}
	served := m.requests.Load()
	shed := m.shed.Load()
	degraded := m.degraded.Load()
	shedRate, degradedRate := 0.0, 0.0
	if served+shed > 0 {
		shedRate = float64(shed) / float64(served+shed)
	}
	if served > 0 {
		degradedRate = float64(degraded) / float64(served)
	}
	return Snapshot{
		Requests:       m.requests.Load(),
		Rounds:         m.rounds.Load(),
		EmptyRounds:    m.emptyRounds.Load(),
		P50:            m.Latency.Quantile(0.50),
		P95:            m.Latency.Quantile(0.95),
		P99:            m.Latency.Quantile(0.99),
		Mean:           m.Latency.HistMean(),
		MeanBatch:      m.BatchOccupancy.HistMean(),
		LocalGPU:       m.localGPU.Load(),
		LocalCPU:       m.localCPU.Load(),
		CacheHits:      hits,
		RemoteFetches:  remote,
		CacheHitRate:   hitRate,
		CacheInstalls:  m.cacheInstalls.Load(),
		CacheChurnRows: m.cacheChurn.Load(),
		BytesSent:      bytes,
		ComputeSeconds: float64(m.computeNS.Load()) / 1e9,
		Shed:           shed,
		ShedRate:       shedRate,
		Degraded:       degraded,
		DegradedRate:   degradedRate,
		DegradedRounds: m.degradedRounds.Load(),
		MissingRows:    m.missingRows.Load(),
		GatherTimeouts: m.gatherTimeouts.Load(),
		Regroups:       m.regroups.Load(),
		DegradedP50:    m.DegradedLatency.Quantile(0.50),
		DegradedP99:    m.DegradedLatency.Quantile(0.99),
	}
}
