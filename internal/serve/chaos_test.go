package serve

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salientpp/internal/dist"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
)

// chaosWrap installs a dist.Chaos harness on one rank of the serving
// deployment; every other rank gets the raw transport. Because WrapComm is
// re-applied after every regroup, the schedule keeps biting until cleared.
func chaosWrap(ch *dist.Chaos, victim int) func(int, dist.Comm) dist.Comm {
	return func(rank int, c dist.Comm) dist.Comm {
		if rank == victim {
			return ch.Wrap(c)
		}
		return c
	}
}

// TestServeStalledRankDegradesAndRecovers is the headline chaos test: with
// rank 1's NIC wedged (an injected stall), every request still completes
// within a bound — the stalled gather times out, the round degrades to
// cache + local shard, replies are flagged — and once the stall clears,
// the background prober installs a fresh comm group and serving returns to
// normal, with post-recovery predictions bitwise identical to an offline
// replay of the same round.
func TestServeStalledRankDegradesAndRecovers(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	const seed = 17
	ch := dist.NewChaos(dist.ChaosConfig{})
	srv, err := New(cl, Config{
		MaxBatch: 4, MaxWait: 200 * time.Microsecond, Seed: seed,
		GatherTimeout: 50 * time.Millisecond,
		ProbeInterval: 20 * time.Millisecond,
		WrapComm:      chaosWrap(ch, 1),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pick a rank-0-owned vertex with remote neighbors so both the healthy
	// and the degraded path are meaningful.
	var v0 int32 = -1
	for v := int32(0); int(v) < cl.Data.NumVertices(); v++ {
		if cl.Layout.Owner(v) == 0 {
			v0 = v
			break
		}
	}
	if v0 < 0 {
		t.Fatal("no rank-0 vertex")
	}
	out := make([]float32, srv.Classes())

	// Phase 1: healthy serving.
	if st, err := srv.Predict(v0, out); err != nil || st.Degraded {
		t.Fatalf("healthy predict: stats %+v, err %v", st, err)
	}

	// Phase 2: wedge rank 1. Every request must still complete — the first
	// round eats the 50ms gather timeout, later rounds run degraded-local
	// and fast. 2s per request is an ample CI-safe bound that a hang (the
	// pre-PR behavior: a stalled peer blocked the collective forever)
	// cannot meet.
	ch.Stall()
	sawDegraded := false
	for i := 0; i < 30; i++ {
		done := make(chan error, 1)
		var st Stats
		go func() {
			var err error
			st, err = srv.Predict(v0, out)
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("request %d during stall failed: %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("request %d hung during the stall: degraded serving is not bounded", i)
		}
		if st.Degraded {
			sawDegraded = true
			for _, x := range out {
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					t.Fatal("degraded logits are non-finite")
				}
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no request was served degraded while rank 1 was stalled")
	}
	mid := srv.Snapshot()
	if mid.Degraded == 0 || mid.DegradedRounds == 0 {
		t.Fatalf("snapshot shows no degraded serving during the stall: %+v", mid)
	}
	if mid.GatherTimeouts == 0 {
		t.Fatalf("stalled gather never counted a timeout: %+v", mid)
	}
	// The per-outcome histogram must have captured the degraded subset,
	// with sane quantile ordering.
	if mid.DegradedP99 <= 0 || mid.DegradedP99 < mid.DegradedP50 {
		t.Fatalf("degraded latency quantiles malformed: p50=%v p99=%v", mid.DegradedP50, mid.DegradedP99)
	}

	// Phase 3: clear the stall; the prober must find a healthy group and
	// the driver must reinstall normal serving.
	ch.Clear()
	deadline := time.Now().Add(10 * time.Second)
	var recovered Stats
	for {
		st, err := srv.Predict(v0, out)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Degraded {
			recovered = st
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("serving still degraded 10s after the stall cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if snap := srv.Snapshot(); snap.Regroups == 0 {
		t.Fatalf("recovery happened without a recorded regroup: %+v", snap)
	}

	// Phase 4: post-recovery serving is bitwise-normal. The recovered
	// request ran alone in its round, so an offline replay of that round's
	// seed stream over the parent stores must reproduce its logits exactly.
	if recovered.BatchSize != 1 {
		// Retry with a quiet server until the request is alone in a round.
		for i := 0; i < 50 && recovered.BatchSize != 1; i++ {
			if recovered, err = srv.Predict(v0, out); err != nil {
				t.Fatal(err)
			}
		}
	}
	if recovered.BatchSize != 1 {
		t.Fatalf("could not get a singleton round; batch %d", recovered.BatchSize)
	}
	smp, err := sample.NewSampler(cl.Data.Graph, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	w := smp.NewWorker(rng.New(seed).Split(0).Split(recovered.Round))
	mfg := w.Sample([]int32{v0})
	peerDone := make(chan error, 1)
	go func() {
		_, _, err := cl.Ranks[1].Store().Gather(nil)
		peerDone <- err
	}()
	feats, _, err := cl.Ranks[0].Store().Gather(mfg.InputIDs())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-peerDone; err != nil {
		t.Fatal(err)
	}
	logits, err := cl.Ranks[0].Model().Forward(mfg, feats, false)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range logits.Row(0) {
		if math.Float32bits(out[j]) != math.Float32bits(want) {
			t.Fatalf("post-recovery logit %d: served %v, offline %v (must be bitwise identical)",
				j, out[j], want)
		}
	}

	// Phase 5: nothing leaked across the degrade/regroup cycle.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, e := range srv.engines {
		if live := e.store.Live(); live != 0 {
			t.Fatalf("engine %d leaked %d pooled matrices", i, live)
		}
	}
	waitServeGoroutines(t, baseline)
}

// TestServeDeadRankStaysAvailable: an injected permanent rank death (every
// collective fails instantly from DropAtCall on, including the prober's
// health checks) must leave the server degraded but available — every
// request answered, none hung — and Close must still tear everything down
// while the prober is mid-retry.
func TestServeDeadRankStaysAvailable(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	baseline := runtime.NumGoroutine()

	ch := dist.NewChaos(dist.ChaosConfig{DropAtCall: 1})
	srv, err := New(cl, Config{
		MaxBatch: 4, MaxWait: 200 * time.Microsecond, Seed: 9,
		GatherTimeout: 50 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
		WrapComm:      chaosWrap(ch, 1),
	})
	if err != nil {
		t.Fatal(err)
	}

	n := int32(cl.Data.NumVertices())
	out := make([]float32, srv.Classes())
	r := rng.New(4)
	degraded := 0
	for i := 0; i < 40; i++ {
		done := make(chan error, 1)
		var st Stats
		go func(v int32) {
			var err error
			st, err = srv.Predict(v, out)
			done <- err
		}(int32(r.Intn(int(n))))
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("request %d on the dead-rank server failed: %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("request %d hung on the dead-rank server", i)
		}
		if st.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded replies despite a dead rank")
	}
	snap := srv.Snapshot()
	if snap.Regroups != 0 {
		t.Fatalf("a regroup succeeded against a permanently dead rank: %+v", snap)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitServeGoroutines(t, baseline)
}

// TestServeShutdownWhileStalled closes the server while a gather is parked
// inside an uncleared stall with a generous timeout: the abort channel
// must unwind it promptly, requests fail (not silently degrade), and
// nothing leaks.
func TestServeShutdownWhileStalled(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	baseline := runtime.NumGoroutine()

	ch := dist.NewChaos(dist.ChaosConfig{})
	srv, err := New(cl, Config{
		MaxBatch: 2, MaxWait: -1, Seed: 6,
		GatherTimeout: 30 * time.Second, // never fires in this test
		WrapComm:      chaosWrap(ch, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch.Stall()

	var failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]float32, srv.Classes())
			if _, err := srv.Predict(int32(c), out); err != nil {
				failed.Add(1)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond) // let the round park in the stall
	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung: the shutdown abort does not reach a stalled collective")
	}
	wg.Wait()
	if failed.Load() == 0 {
		t.Fatal("shutdown mid-stall failed no requests: a degraded reply leaked past Close")
	}
	for i, e := range srv.engines {
		if live := e.store.Live(); live != 0 {
			t.Fatalf("engine %d leaked %d pooled matrices", i, live)
		}
	}
	waitServeGoroutines(t, baseline)
}

// TestServeShedsWhenBudgetExceeded pins admission control: with a Deadline
// set and a round-time estimate that makes the budget hopeless, Predict
// fails fast with ErrShed (counted in the snapshot); when the estimate
// falls back inside the budget, admission resumes.
func TestServeShedsWhenBudgetExceeded(t *testing.T) {
	cl := serveCluster(t, 2, 0, false)
	defer cl.Close()
	srv, err := New(cl, Config{
		MaxBatch: 4, MaxWait: -1, Seed: 2, Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out := make([]float32, srv.Classes())

	// No estimate yet: the first request must be admitted.
	if _, err := srv.Predict(0, out); err != nil {
		t.Fatalf("first request shed before any estimate existed: %v", err)
	}

	// Hopeless estimate: one round alone exceeds the budget.
	srv.roundNS.Store(int64(time.Second))
	if _, err := srv.Predict(0, out); !errors.Is(err, ErrShed) {
		t.Fatalf("overloaded Predict returned %v, want ErrShed", err)
	}
	snap := srv.Snapshot()
	if snap.Shed == 0 || snap.ShedRate <= 0 {
		t.Fatalf("shed not accounted: %+v", snap)
	}

	// Recovery: a fast estimate readmits traffic.
	srv.roundNS.Store(int64(50 * time.Microsecond))
	if _, err := srv.Predict(0, out); err != nil {
		t.Fatalf("request shed after the estimate recovered: %v", err)
	}
}

// TestAdaptiveBatchBounds unit-tests the driver's batch controller: halve
// under SLO pressure with a floor of 1, double under backlog with ample
// headroom up to MaxBatchCap, hold otherwise.
func TestAdaptiveBatchBounds(t *testing.T) {
	s := &Server{cfg: Config{
		MaxBatch: 4, MaxBatchCap: 16, Deadline: 10 * time.Millisecond,
	}.withDefaults()}
	s.maxBatch.Store(4)

	// Rounds eating >Deadline/2: shrink, down to the floor.
	s.roundNS.Store(int64(8 * time.Millisecond))
	for _, want := range []int64{2, 1, 1} {
		s.adaptBatch(100)
		if got := s.maxBatch.Load(); got != want {
			t.Fatalf("shrink: batch %d, want %d", got, want)
		}
	}

	// Fast rounds + backlog: grow, capped at MaxBatchCap.
	s.roundNS.Store(int64(time.Millisecond))
	for _, want := range []int64{2, 4, 8, 16, 16} {
		s.adaptBatch(1000)
		if got := s.maxBatch.Load(); got != want {
			t.Fatalf("grow: batch %d, want %d", got, want)
		}
	}

	// Fast rounds without backlog: hold.
	s.adaptBatch(3)
	if got := s.maxBatch.Load(); got != 16 {
		t.Fatalf("hold: batch moved to %d", got)
	}

	// No deadline: the controller is inert.
	s2 := &Server{cfg: Config{MaxBatch: 4}.withDefaults()}
	s2.maxBatch.Store(4)
	s2.roundNS.Store(int64(time.Hour))
	s2.adaptBatch(1000)
	if got := s2.maxBatch.Load(); got != 4 {
		t.Fatalf("deadline-free batch moved to %d", got)
	}
}

// waitServeGoroutines waits for the goroutine count to settle back to the
// pre-server baseline, dumping stacks on timeout.
func waitServeGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("serving goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
