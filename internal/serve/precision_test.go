package serve

import (
	"testing"
	"time"

	"salientpp/internal/pipeline"
	"salientpp/internal/tensor"
)

// servedAccuracy runs one serving deployment at the given precision over
// every test-split vertex of the cluster's (reordered) dataset, with
// sequential Predicts so round numbers — and therefore sampling streams —
// are identical across runs. Returns argmax accuracy plus the metrics
// snapshot.
func servedAccuracy(t *testing.T, cl *pipeline.Cluster, precision string) (float64, Snapshot) {
	t.Helper()
	srv, err := New(cl, Config{
		MaxBatch: 1, MaxWait: time.Second, Seed: 99, Precision: precision,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := cl.Data
	ids := d.TestIDs()
	out := make([]float32, srv.Classes())
	correct := 0
	for _, v := range ids {
		if _, err := srv.Predict(v, out); err != nil {
			t.Fatal(err)
		}
		best := 0
		for j := 1; j < len(out); j++ {
			if out[j] > out[best] {
				best = j
			}
		}
		if int32(best) == d.Labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(ids)), srv.Snapshot()
}

// TestInt8ForwardAccuracyDelta is the acceptance gate for reduced-precision
// serving: over the full test split of a trained cluster, int8 end-to-end
// serving (quantized gather + integer-kernel forward) must hold argmax
// accuracy within 0.5 points of fp32 serving. Sequential single-request
// rounds with a shared seed make the two runs sample identical MFGs, so
// the only difference between them is the compute precision.
func TestInt8ForwardAccuracyDelta(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	for e := 0; e < 3; e++ {
		if _, err := cl.TrainEpochAll(e); err != nil {
			t.Fatal(err)
		}
	}
	accFP32, snapFP32 := servedAccuracy(t, cl, "fp32")
	accInt8, snapInt8 := servedAccuracy(t, cl, "int8")

	if accFP32 < 0.5 {
		t.Fatalf("fp32 serving accuracy %.3f too low for the delta to mean anything", accFP32)
	}
	delta := accInt8 - accFP32
	if delta < 0 {
		delta = -delta
	}
	if delta > 0.005 {
		t.Fatalf("int8 serving accuracy %.4f vs fp32 %.4f: |delta| %.4f > 0.005 (0.5 points)",
			accInt8, accFP32, delta)
	}
	if snapFP32.ComputeSeconds <= 0 || snapInt8.ComputeSeconds <= 0 {
		t.Fatalf("compute_seconds not recorded: fp32 %v int8 %v",
			snapFP32.ComputeSeconds, snapInt8.ComputeSeconds)
	}
	t.Logf("accuracy fp32 %.4f int8 %.4f; compute fp32 %.3fs int8 %.3fs",
		accFP32, accInt8, snapFP32.ComputeSeconds, snapInt8.ComputeSeconds)
}

// TestServePrecisionInheritsCluster pins Config.Precision's inheritance
// contract: empty inherits the cluster's configured precision, an explicit
// value overrides it, and garbage is refused.
func TestServePrecisionInheritsCluster(t *testing.T) {
	d := serveDataset(t)
	cl, err := pipeline.NewCluster(d, pipeline.ClusterConfig{
		K: 2, Alpha: 0.2, GPUFraction: 1, Hidden: 16, Layers: 2,
		Precision: "fp16",
		Train: pipeline.Config{
			Fanouts: []int{5, 5}, BatchSize: 64,
			PipelineDepth: 2, SamplerWorkers: 1, LR: 0.01, Seed: 5,
		},
		ModelSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Precision != tensor.PrecisionFP16 {
		t.Fatalf("cluster precision %v, want fp16", cl.Precision)
	}

	if _, err := New(cl, Config{Precision: "float64"}); err == nil {
		t.Fatal("bogus precision accepted")
	}

	srv, err := New(cl, Config{MaxBatch: 1, Seed: 7}) // "" inherits fp16
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.engines[0].store.Precision(); got != tensor.PrecisionFP16 {
		t.Fatalf("inherited store precision %v, want fp16", got)
	}
	if got := srv.engines[0].model.Precision(); got != tensor.PrecisionFP16 {
		t.Fatalf("inherited snapshot precision %v, want fp16", got)
	}
	srv.Close()

	srv, err = New(cl, Config{MaxBatch: 1, Seed: 7, Precision: "fp32"}) // override back down
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.engines[0].store.Precision(); got != tensor.PrecisionFP32 {
		t.Fatalf("override store precision %v, want fp32", got)
	}
}
