package serve

import (
	"sync"
	"testing"
	"time"
)

// TestServeCodecOverrideReducesBytes exercises Config.Codec: the serving
// comm group may run a smaller wire codec than the training cluster it
// serves from. The same request set must fetch the same remote rows under
// both codecs while the int8 serving group ships materially fewer bytes.
func TestServeCodecOverrideReducesBytes(t *testing.T) {
	cl := serveCluster(t, 2, 0, false) // α=0: every foreign row goes remote
	defer cl.Close()
	run := func(codec string) (remote, bytes int64) {
		srv, err := New(cl, Config{MaxBatch: 16, MaxWait: 50 * time.Millisecond, Seed: 9, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		out := make([]float32, srv.Classes())
		for v := int32(0); v < 64; v += 4 {
			if _, err := srv.Predict(v, out); err != nil {
				t.Fatal(err)
			}
		}
		snap := srv.Snapshot()
		return snap.RemoteFetches, snap.BytesSent
	}
	fpRemote, fpBytes := run("") // inherits the cluster's fp32
	i8Remote, i8Bytes := run("int8")
	if fpRemote == 0 {
		t.Fatal("workload produced no remote fetches; codec not exercised")
	}
	if i8Remote != fpRemote {
		t.Fatalf("serving codec changed remote fetches: %d vs %d", i8Remote, fpRemote)
	}
	if float64(i8Bytes) > 0.6*float64(fpBytes) {
		t.Fatalf("int8 serving shipped %d bytes vs fp32's %d, want a material reduction", i8Bytes, fpBytes)
	}
}

// TestDriverScansO1 is the driver-efficiency regression test: queue scans
// are the driver's per-wake cost, so their count is the busy-loop gauge.
//
//  1. A lone queued request must cost O(1) scans — one discovering it on
//     arrival, one settling after its round — no matter how long its
//     MaxWait admission window stays open.
//  2. A second sub-MaxBatch request arriving inside the window must add
//     zero scans: it cannot move the deadline earlier, so the driver must
//     not wake for it, and the token it raised must not wake the driver
//     into an empty re-scan after the round either. The pre-restructure
//     driver failed this: the stale arrival token plus the self-signal
//     hop cost an extra empty wake+scan per round.
//  3. An idle driver must not scan at all.
func TestDriverScansO1(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	const maxWait = 250 * time.Millisecond
	srv, err := New(cl, Config{MaxBatch: 8, MaxWait: maxWait, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out := make([]float32, srv.Classes())

	// Warm one full round so pools and scratch are established and the
	// driver has settled back to idle.
	if _, err := srv.Predict(3, out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// (3) Idle: no traffic, no scans.
	idleBefore := srv.scans.Load()
	time.Sleep(150 * time.Millisecond)
	if got := srv.scans.Load() - idleBefore; got != 0 {
		t.Fatalf("idle driver performed %d scans in 150ms, want 0", got)
	}

	// (1) Lone request: exactly one discovery scan and one settling scan,
	// with the full MaxWait window in between.
	before := srv.scans.Load()
	if _, err := srv.Predict(5, out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let the post-round scan land
	if got := srv.scans.Load() - before; got > 2 {
		t.Fatalf("lone request cost %d scans, want ≤ 2 (busy loop between arrival and deadline?)", got)
	}

	// (2) A trailing sub-MaxBatch request inside the admission window:
	// still ≤ 2 scans for the whole round trip. The second request's
	// arrival token must not buy a wake of its own — not during the
	// window (the deadline is unchanged) and not after the round (the
	// round already served it).
	before = srv.scans.Load()
	var wg sync.WaitGroup
	predict := func(v int32) {
		defer wg.Done()
		buf := make([]float32, srv.Classes())
		if _, err := srv.Predict(v, buf); err != nil {
			t.Error(err)
		}
	}
	wg.Add(2)
	go predict(5)
	time.Sleep(maxWait / 4) // inside the first request's admission window
	go predict(9)
	wg.Wait()
	time.Sleep(80 * time.Millisecond)
	if got := srv.scans.Load() - before; got > 2 {
		t.Fatalf("windowed request pair cost %d scans, want ≤ 2 (stale-token wake after the round?)", got)
	}
}
