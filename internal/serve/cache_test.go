package serve

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salientpp/internal/rng"
)

// testOnlineCacheSwapUnderLoad hammers an online-cache server from many
// goroutines with a drifting hot set, so cache epochs are proposed, built
// in the background, and swapped while sibling gathers are in flight —
// the exact interleaving the -race CI job is pointed at. Afterwards it
// checks that swaps actually happened, that every answer stayed finite,
// and that shutdown releases every epoch and pooled matrix.
func testOnlineCacheSwapUnderLoad(t *testing.T, useTCP bool) {
	cl := serveCluster(t, 2, 0.2, useTCP)
	defer cl.Close()
	srv, err := New(cl, Config{
		MaxBatch: 8, MaxWait: 200 * time.Microsecond, Seed: 3, UseTCP: useTCP,
		Cache: "online", CacheRefreshRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 40
	n := int32(cl.Data.NumVertices())
	var wg sync.WaitGroup
	var maxGen atomic.Uint64
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(41).Split(uint64(c))
			out := make([]float32, srv.Classes())
			for i := 0; i < perClient; i++ {
				// Drifting hot window: most requests hit a small rotating
				// slice of the vertex space so the online scorer keeps
				// re-proposing membership.
				hotBase := int32(i/8) * 37 % n
				v := (hotBase + int32(r.Intn(24))) % n
				if r.Float64() < 0.2 {
					v = int32(r.Intn(int(n)))
				}
				st, err := srv.Predict(v, out)
				if err != nil {
					errCh <- err
					return
				}
				for g := maxGen.Load(); st.CacheGen > g; g = maxGen.Load() {
					if maxGen.CompareAndSwap(g, st.CacheGen) {
						break
					}
				}
				for _, x := range out {
					if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
						errCh <- errors.New("non-finite logit under cache swaps")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	snap := srv.Snapshot()
	if snap.Requests != clients*perClient {
		t.Fatalf("served %d requests, want %d", snap.Requests, clients*perClient)
	}
	if snap.CacheInstalls == 0 {
		t.Fatal("no cache epochs installed under drifting load")
	}
	if snap.CacheChurnRows == 0 {
		t.Fatal("installs reported but zero churn rows")
	}
	if maxGen.Load() == 0 {
		t.Fatal("no request ever observed an installed generation")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, e := range srv.engines {
		if e.installer == nil {
			t.Fatalf("engine %d lost its installer", i)
		}
		if live := e.installer.Live(); live != 0 {
			t.Fatalf("engine %d leaked %d cache epochs at shutdown", i, live)
		}
		if live := e.store.Live(); live != 0 {
			t.Fatalf("engine %d leaked %d pooled matrices at shutdown", i, live)
		}
	}
}

func TestOnlineCacheSwapUnderLoad(t *testing.T)    { testOnlineCacheSwapUnderLoad(t, false) }
func TestOnlineCacheSwapUnderLoadTCP(t *testing.T) { testOnlineCacheSwapUnderLoad(t, true) }

// testOnlineCacheShutdownReleasesEpochs pulls the plug mid-install: Close
// races the background epoch builders, which may deliver one last epoch
// after shutdown begins. Every built epoch — installed, in the channel, or
// displaced — must land back in its builder's pool, and no serving
// goroutine may linger.
func testOnlineCacheShutdownReleasesEpochs(t *testing.T, useTCP bool) {
	cl := serveCluster(t, 2, 0.2, useTCP)
	defer cl.Close()
	baseline := runtime.NumGoroutine()
	srv, err := New(cl, Config{
		MaxBatch: 4, MaxWait: 100 * time.Microsecond, Seed: 9, UseTCP: useTCP,
		Cache: "online", CacheRefreshRounds: 1, // propose every round: maximal in-flight builds
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	n := int32(cl.Data.NumVertices())
	served := make(chan struct{}, clients*1000)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(17).Split(uint64(c))
			out := make([]float32, srv.Classes())
			for {
				// Rotating hot set keeps proposals churning.
				v := (int32(r.Intn(32)) + int32(r.Intn(4))*400) % n
				if _, err := srv.Predict(v, out); err != nil {
					return
				}
				select {
				case served <- struct{}{}:
				default:
				}
			}
		}(c)
	}
	for i := 0; i < 30; i++ {
		<-served
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	unwound := make(chan struct{})
	go func() { wg.Wait(); close(unwound) }()
	select {
	case <-unwound:
	case <-time.After(10 * time.Second):
		t.Fatal("clients still blocked 10s after Close")
	}

	for i, e := range srv.engines {
		if e.installer == nil {
			continue
		}
		if live := e.installer.Live(); live != 0 {
			t.Fatalf("engine %d: %d cache epochs still live after Close mid-install", i, live)
		}
		if live := e.store.Live(); live != 0 {
			t.Fatalf("engine %d: %d pooled matrices still live after Close", i, live)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			nb := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:nb])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOnlineCacheShutdownReleasesEpochs(t *testing.T) {
	testOnlineCacheShutdownReleasesEpochs(t, false)
}
func TestOnlineCacheShutdownReleasesEpochsTCP(t *testing.T) {
	testOnlineCacheShutdownReleasesEpochs(t, true)
}

// TestServeStaticCacheDefaultUnchanged pins the refactor's compatibility
// promise at the serving surface: a server with no cache mode configured
// and one with Cache: "static" must answer a same-seed sequential workload
// with bitwise-identical logits, never install an epoch, and never advance
// the cache generation — the versioned cache layer is invisible until
// opted into.
func TestServeStaticCacheDefaultUnchanged(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	run := func(mode string) [][]float32 {
		srv, err := New(cl, Config{MaxBatch: 4, Seed: 6, Cache: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		r := rng.New(23)
		n := int32(cl.Data.NumVertices())
		var outs [][]float32
		for i := 0; i < 40; i++ {
			out := make([]float32, srv.Classes())
			st, err := srv.Predict(int32(r.Intn(int(n))), out)
			if err != nil {
				t.Fatal(err)
			}
			if st.CacheGen != 0 {
				t.Fatalf("static serve advanced the cache generation to %d", st.CacheGen)
			}
			outs = append(outs, out)
		}
		snap := srv.Snapshot()
		if snap.CacheInstalls != 0 || snap.CacheChurnRows != 0 {
			t.Fatalf("static serve installed epochs: %+v", snap)
		}
		return outs
	}
	def, static := run(""), run("static")
	for i := range def {
		for j := range def[i] {
			if def[i][j] != static[i][j] {
				t.Fatalf("request %d logit %d: default %v != static %v", i, j, def[i][j], static[i][j])
			}
		}
	}
}

// TestServeRejectsUnknownCacheMode covers the config validation path.
func TestServeRejectsUnknownCacheMode(t *testing.T) {
	cl := serveCluster(t, 2, 0.2, false)
	defer cl.Close()
	if _, err := New(cl, Config{Cache: "lru"}); err == nil {
		t.Fatal("unknown cache mode accepted")
	}
}
