package simnet

import (
	"math"
	"testing"
)

func TestTokenBucketBurstThenDrain(t *testing.T) {
	tb := NewTokenBucket(1000, 500) // 1000 B/s, 500 B burst
	// First 500 bytes go through instantly.
	if done := tb.Take(0, 500); done != 0 {
		t.Fatalf("burst transfer done at %v, want 0", done)
	}
	// Next 1000 bytes must wait a full second of refill.
	if done := tb.Take(0, 1000); math.Abs(done-1.0) > 1e-9 {
		t.Fatalf("drained transfer done at %v, want 1.0", done)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(100, 100)
	tb.Take(0, 100) // empty the bucket
	// After 0.5s, 50 tokens accrued; taking 50 completes immediately.
	if done := tb.Take(0.5, 50); math.Abs(done-0.5) > 1e-9 {
		t.Fatalf("done=%v want 0.5", done)
	}
	// Bucket never exceeds burst.
	if done := tb.Take(100, 100); math.Abs(done-100) > 1e-9 {
		t.Fatalf("done=%v want 100", done)
	}
	if done := tb.Take(100, 150); done <= 100 {
		t.Fatalf("over-burst transfer should wait, done=%v", done)
	}
}

func TestTokenBucketPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTokenBucket(0, 1)
}

func TestLinkSerialization(t *testing.T) {
	l := NewLink(8e-9, 0.1) // 1 byte/sec bandwidth for easy math
	if math.Abs(l.Bandwidth-1) > 1e-12 {
		t.Fatalf("bandwidth=%v", l.Bandwidth)
	}
	// Two 1-byte transfers at t=0: the second queues behind the first.
	d1 := l.Transfer(0, 1)
	d2 := l.Transfer(0, 1)
	if math.Abs(d1-1.1) > 1e-9 {
		t.Fatalf("d1=%v want 1.1 (1s tx + 0.1s latency)", d1)
	}
	if math.Abs(d2-2.1) > 1e-9 {
		t.Fatalf("d2=%v want 2.1 (queued)", d2)
	}
	if math.Abs(l.NextFree()-2.0) > 1e-9 {
		t.Fatalf("NextFree=%v want 2.0", l.NextFree())
	}
}

func TestLinkLatencyOnly(t *testing.T) {
	l := NewLink(100, 0.001)
	done := l.Transfer(5, 0)
	if math.Abs(done-5.001) > 1e-9 {
		t.Fatalf("zero-byte transfer done=%v want 5.001", done)
	}
}

func TestLinkWithTBFSlowsBulk(t *testing.T) {
	fast := NewLink(25, 0)
	slow := NewLink(25, 0).WithTBF(4)
	const bytes = 100 << 20 // 100 MiB
	df := fast.Transfer(0, bytes)
	ds := slow.Transfer(0, bytes)
	if ds <= df {
		t.Fatalf("TBF-shaped transfer (%v) not slower than unshaped (%v)", ds, df)
	}
	// Shaped rate should be ~4Gbps: 100MiB at 4Gbps ≈ 0.21s.
	want := float64(bytes) / (4e9 / 8)
	if ds < want*0.9 || ds > want*1.2 {
		t.Fatalf("shaped completion %v, want ≈%v", ds, want)
	}
}

func TestLinkReset(t *testing.T) {
	l := NewLink(1, 0).WithTBF(1)
	l.Transfer(0, 1<<20)
	l.Reset()
	if l.NextFree() != 0 {
		t.Fatal("reset did not clear queue")
	}
	if l.Shaper.tokens != l.Shaper.Burst {
		t.Fatal("reset did not refill bucket")
	}
}
