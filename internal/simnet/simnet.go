// Package simnet models network links for the performance simulator: fixed
// bandwidth with per-round latency, plus the token-bucket filter (TBF)
// queuing discipline the paper uses (via Linux tc) to emulate 4 and 8 Gbps
// networks in Figure 9.
package simnet

// TokenBucket is a classic token-bucket rate limiter over a simulated
// clock: tokens accrue at Rate bytes/second up to Burst bytes; a transfer
// departs when enough tokens have accrued.
type TokenBucket struct {
	Rate  float64 // bytes per second
	Burst float64 // bucket capacity in bytes

	tokens float64
	last   float64
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		panic("simnet: token bucket rate must be positive")
	}
	if burst <= 0 {
		burst = rate * 1e-3 // default 1ms worth of burst, like tc tbf
	}
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst}
}

// Take consumes `bytes` tokens starting at time now (seconds) and returns
// the completion time. Calls must have nondecreasing now.
func (tb *TokenBucket) Take(now float64, bytes int64) float64 {
	if now > tb.last {
		tb.tokens += (now - tb.last) * tb.Rate
		if tb.tokens > tb.Burst {
			tb.tokens = tb.Burst
		}
		tb.last = now
	}
	need := float64(bytes)
	if need <= tb.tokens {
		tb.tokens -= need
		return now
	}
	wait := (need - tb.tokens) / tb.Rate
	tb.tokens = 0
	tb.last = now + wait
	return now + wait
}

// Link is a serialized transmission resource: one transfer at a time, each
// taking bytes/Bandwidth seconds (optionally shaped by a token bucket),
// plus Latency seconds of propagation appended to the completion time.
type Link struct {
	Bandwidth float64 // bytes per second
	Latency   float64 // seconds per message
	Shaper    *TokenBucket

	nextFree float64
}

// NewLink builds a link from gigabits-per-second and latency.
func NewLink(gbps, latencySec float64) *Link {
	return &Link{Bandwidth: gbps * 1e9 / 8, Latency: latencySec}
}

// WithTBF attaches a token-bucket shaper at the given Gbps (Figure 9's
// slow-network emulation) and returns the link.
func (l *Link) WithTBF(gbps float64) *Link {
	rate := gbps * 1e9 / 8
	l.Shaper = NewTokenBucket(rate, rate*2e-3)
	return l
}

// Transfer enqueues a transfer of `bytes` arriving at the link at time
// now; it returns the time the last byte arrives at the receiver.
func (l *Link) Transfer(now float64, bytes int64) float64 {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	var txDone float64
	if l.Bandwidth > 0 {
		txDone = start + float64(bytes)/l.Bandwidth
	} else {
		txDone = start
	}
	if l.Shaper != nil {
		shaped := l.Shaper.Take(start, bytes)
		if shaped > txDone {
			txDone = shaped
		}
	}
	l.nextFree = txDone
	return txDone + l.Latency
}

// NextFree reports when the link's transmit queue drains.
func (l *Link) NextFree() float64 { return l.nextFree }

// Reset clears queuing state (token bucket refills).
func (l *Link) Reset() {
	l.nextFree = 0
	if l.Shaper != nil {
		l.Shaper.tokens = l.Shaper.Burst
		l.Shaper.last = 0
	}
}
