package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean=%v", Mean(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("std=%v", Std(xs))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("single value std must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean=%v", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean skipping zero = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax=%v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minmax must be 0,0")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.01234: "0.0123",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v)=%q want %q", in, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 0.5)
	tb.AddRow("long-name-entry", 123.0)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "long-name-entry") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: padded rows have identical rendered width.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
