// Package metrics provides the small statistics and text-table helpers the
// experiment harnesses use to report results in the same shape as the
// paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of positive values; non-positive
// values are skipped (0 if none remain).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// MinMax returns the extrema (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Table renders aligned text tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, fewer for large.
func FormatFloat(v float64) string {
	a := math.Abs(v)
	switch {
	case v == math.Trunc(v) && a < 1e15:
		return fmt.Sprintf("%.0f", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
