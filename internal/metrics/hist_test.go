package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestQuantileDifferentialAgainstExactSamples is the differential guard
// for the quantile edge cases: for a spread of sample distributions —
// including point masses at the layout floor, samples below the floor, and
// overflow-heavy tails — every estimated quantile must agree with the
// exact sorted-sample quantile (clamped to the histogram's [first bound,
// last bound] layout, which is the histogram's documented resolution) to
// within one bucket's relative width.
//
// The pre-fix code interpolated the first bucket down from 0 instead of
// clamping at the layout floor `lo`, so a point mass at lo reported
// quantiles up to 100% below every real sample; this test fails on that
// code.
func TestQuantileDifferentialAgainstExactSamples(t *testing.T) {
	const lo, hi, perDecade = 1e-6, 100.0, 16
	ratio := math.Pow(10, 1.0/perDecade)
	tol := ratio - 1 + 1e-12 // one bucket of relative error

	// A deterministic xorshift so the "random" distributions are stable.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed>>11) / float64(1<<53)
	}

	distributions := map[string][]float64{
		"point-mass-at-floor": repeatSample(lo, 1000),
		"below-floor":         repeatSample(lo/50, 257),
		"single-sample":       {0.003},
		"two-spread":          {2e-6, 50},
	}
	logUniform := make([]float64, 5000)
	for i := range logUniform {
		// Spans below lo through beyond the last bound.
		logUniform[i] = math.Pow(10, -7+10*next())
	}
	distributions["log-uniform-with-tails"] = logUniform
	overflow := make([]float64, 400)
	for i := range overflow {
		overflow[i] = 500 + 1000*next() // all beyond the last bound
	}
	distributions["overflow-heavy"] = overflow

	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	for name, samples := range distributions {
		h, err := NewHistogram(lo, hi, perDecade)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range samples {
			h.Observe(v)
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		floor := h.bounds[0]
		ceil := h.bounds[len(h.bounds)-1]
		for _, q := range qs {
			got := h.Quantile(q)
			k := int(math.Ceil(q * float64(len(sorted))))
			if k < 1 {
				k = 1
			}
			if k > len(sorted) {
				k = len(sorted)
			}
			exact := math.Min(math.Max(sorted[k-1], floor), ceil)
			if rel := math.Abs(got-exact) / exact; rel > tol {
				t.Errorf("%s: q=%.2f estimated %.6g, exact (clamped) %.6g: relative error %.3f > %.3f",
					name, q, got, exact, rel, tol)
			}
		}
	}

	// Zero-count histogram: the defined empty value is 0 for every q.
	empty, err := NewHistogram(lo, hi, perDecade)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want the defined 0", q, got)
		}
	}
}

func repeatSample(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(1e-6, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 10k samples uniform in [1ms, 2ms): quantiles must land inside the
	// range with bucket-width accuracy.
	for i := 0; i < 10000; i++ {
		h.Observe(0.001 + float64(i)*1e-7)
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count %d", got)
	}
	if m := h.HistMean(); math.Abs(m-0.0015) > 1e-4 {
		t.Fatalf("mean %v, want ~0.0015", m)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.0015, 0.00025},
		{0.95, 0.00195, 0.0003},
		{0.99, 0.00199, 0.0003},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramOrderedQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1} {
		for i := 0; i < 100; i++ {
			h.Observe(v)
		}
	}
	last := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q%.2f=%v after %v", q, v, last)
		}
		last = v
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h, err := NewHistogram(1, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(1e9) // beyond the last bound
	_, _, over := h.Buckets()
	if over != 1 {
		t.Fatalf("overflow count %d", over)
	}
	if got := h.Quantile(0.99); got != h.bounds[len(h.bounds)-1] {
		t.Fatalf("overflow quantile %v, want last bound %v", got, h.bounds[len(h.bounds)-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-4 * float64(1+w))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	want := 0.0
	for w := 1; w <= workers; w++ {
		want += 1e-4 * float64(w) * per
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum %v, want %v", h.Sum(), want)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.001)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.0015) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per call, want 0", allocs)
	}
}

func TestHistogramBadLayout(t *testing.T) {
	if _, err := NewHistogram(0, 1, 4); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Fatal("hi<lo accepted")
	}
	if _, err := NewHistogram(1, 2, 0); err == nil {
		t.Fatal("perDecade=0 accepted")
	}
}
