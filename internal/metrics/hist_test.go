package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(1e-6, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 10k samples uniform in [1ms, 2ms): quantiles must land inside the
	// range with bucket-width accuracy.
	for i := 0; i < 10000; i++ {
		h.Observe(0.001 + float64(i)*1e-7)
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count %d", got)
	}
	if m := h.HistMean(); math.Abs(m-0.0015) > 1e-4 {
		t.Fatalf("mean %v, want ~0.0015", m)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.0015, 0.00025},
		{0.95, 0.00195, 0.0003},
		{0.99, 0.00199, 0.0003},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramOrderedQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1} {
		for i := 0; i < 100; i++ {
			h.Observe(v)
		}
	}
	last := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q%.2f=%v after %v", q, v, last)
		}
		last = v
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h, err := NewHistogram(1, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(1e9) // beyond the last bound
	_, _, over := h.Buckets()
	if over != 1 {
		t.Fatalf("overflow count %d", over)
	}
	if got := h.Quantile(0.99); got != h.bounds[len(h.bounds)-1] {
		t.Fatalf("overflow quantile %v, want last bound %v", got, h.bounds[len(h.bounds)-1])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1e-4 * float64(1+w))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	want := 0.0
	for w := 1; w <= workers; w++ {
		want += 1e-4 * float64(w) * per
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum %v, want %v", h.Sum(), want)
	}
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.001)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.0015) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per call, want 0", allocs)
	}
}

func TestHistogramBadLayout(t *testing.T) {
	if _, err := NewHistogram(0, 1, 4); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Fatal("hi<lo accepted")
	}
	if _, err := NewHistogram(1, 2, 0); err == nil {
		t.Fatal("perDecade=0 accepted")
	}
}
