package metrics

import (
	"sync"
	"testing"
)

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(CounterStallsDetected, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(CounterStallsDetected); got != 8000 {
		t.Fatalf("got %d, want 8000", got)
	}
	if got := c.Get("never-touched"); got != 0 {
		t.Fatalf("untouched counter reads %d", got)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.Add(CounterRegroups, 1) // must not panic
	if c.Get(CounterRegroups) != 0 || c.Snapshot() != nil || c.Names() != nil {
		t.Fatal("nil registry must read as empty")
	}
}

func TestCountersSnapshotIsolated(t *testing.T) {
	c := NewCounters()
	c.Add(CounterRegroups, 2)
	c.Add(CounterRoundsReplayed, 5)
	snap := c.Snapshot()
	snap[CounterRegroups] = 99
	if c.Get(CounterRegroups) != 2 {
		t.Fatal("snapshot aliases the registry")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != CounterRegroups || names[1] != CounterRoundsReplayed {
		t.Fatalf("names %v", names)
	}
}
