package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket log-spaced histogram safe for concurrent
// Observe calls, built for the serving hot path: recording a sample is a
// branch-free bucket search plus three atomic adds — no locks, no
// allocations — so the zero-allocation guarantee of the serving loop
// extends through its own instrumentation. Quantiles are estimated by
// linear interpolation inside the containing bucket, which for the default
// latency layout (16 buckets per decade) bounds the relative error at
// about 7.5%.
type Histogram struct {
	bounds []float64 // ascending bucket upper bounds
	counts []atomic.Int64
	over   atomic.Int64 // samples above the last bound
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with geometric bucket bounds from lo to
// at least hi, with perDecade buckets per factor of ten. lo and hi must be
// positive with lo < hi.
func NewHistogram(lo, hi float64, perDecade int) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) || perDecade <= 0 {
		return nil, fmt.Errorf("metrics: bad histogram layout lo=%v hi=%v perDecade=%d", lo, hi, perDecade)
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var bounds []float64
	for b := lo; ; b *= ratio {
		bounds = append(bounds, b)
		if b >= hi {
			break
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}, nil
}

// NewLatencyHistogram returns the serving-latency layout: 1µs to 100s,
// 16 buckets per decade (129 buckets, ~15% bucket width).
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(1e-6, 100, 16)
	if err != nil {
		panic(err) // static layout; cannot fail
	}
	return h
}

// NewCountHistogram returns a layout for small positive counts (batch
// sizes): 1 to max, 8 buckets per decade.
func NewCountHistogram(max float64) *Histogram {
	h, err := NewHistogram(1, max, 8)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one sample. Safe for concurrent use; never allocates.
func (h *Histogram) Observe(v float64) {
	// Manual binary search (sort.Search would pass a closure through an
	// interface); finds the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(h.bounds) {
		h.over.Add(1)
	} else {
		h.counts[lo].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistMean returns the mean of observed samples (0 when empty).
func (h *Histogram) HistMean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. The estimate is clamped to the histogram's
// layout at both ends: samples at or below the first bound report the
// first bound (interpolating the first bucket down toward 0 would invent
// values up to 100% below any real sample — the old bug the differential
// test in hist_test.go pins), and samples beyond the last bound report the
// last bound rather than extrapolating. Within the layout the relative
// error is bounded by one bucket's width (ratio−1, ~15% for 16 buckets per
// decade). A zero-count histogram returns 0 — the defined empty value.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i == 0 {
				// Every sample here is ≤ bounds[0], the layout floor;
				// report the floor instead of interpolating toward 0.
				return h.bounds[0]
			}
			lower := h.bounds[i-1]
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += c
	}
	// The target falls among the overflow samples: clamp to the last
	// bound, the overflow bucket's (only) defined edge.
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns a copy of (upperBound, count) pairs with non-zero
// counts, plus the overflow count — for rendering distributions.
func (h *Histogram) Buckets() (bounds []float64, counts []int64, overflow int64) {
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			bounds = append(bounds, h.bounds[i])
			counts = append(counts, c)
		}
	}
	return bounds, counts, h.over.Load()
}
