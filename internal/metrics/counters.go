package metrics

import (
	"sort"
	"sync"
)

// Counter names the training-resilience layer increments. Keeping the
// names here (rather than as ad-hoc strings at the call sites) makes the
// BENCH_epoch.json fields, the elastic driver, and the tests agree on one
// spelling.
const (
	// CounterStallsDetected counts training collectives that failed with a
	// recoverable error (timeout or closed group) and triggered a probe.
	CounterStallsDetected = "train_stalls_detected"
	// CounterRegroups counts successful membership changes: survivor
	// consensus reached, state re-laid out, training continued.
	CounterRegroups = "train_regroups"
	// CounterRoundsReplayed counts rounds of training work discarded by
	// regroups (the consensus checkpoint's normalized-away round cursor):
	// the interrupted epoch re-runs from its boundary under the new layout.
	CounterRoundsReplayed = "train_rounds_replayed"
)

// Counters is a small concurrency-safe named-counter registry. The elastic
// training driver increments recovery counters through it; harnesses read
// them out for BENCH_epoch.json. A nil *Counters is a valid no-op sink, so
// callers never have to guard their Add calls.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments the named counter by delta. No-op on a nil receiver.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (0 if never incremented or the
// receiver is nil).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters with their names sorted, for
// deterministic reporting. Nil receiver returns nil.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns the sorted counter names present in the registry.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
