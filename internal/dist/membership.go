package dist

import (
	"encoding/binary"
	"fmt"
)

// Membership consensus frames.
//
// When a training collective fails with a recoverable error (ErrTimeout /
// ErrClosed), the elastic driver probes each rank and then runs one
// agreement round over the survivors: every survivor broadcasts a
// MemberFrame carrying its identity and the checkpoint steps it holds, and
// each computes — deterministically, from the same K′ frames — the new
// member set and the latest step present in *every* survivor's list (the
// barrier-consistent resume point). Like the health frames the serving
// regroup uses, these are untrusted wire input: DecodeMemberFrame must
// error, never panic, and never allocate more than the bytes present allow
// (fuzzed by FuzzMembershipFrame).

// memberMagic distinguishes a membership frame from a stray collective
// payload ("SPMB": SALIENT++ membership).
var memberMagic = [4]byte{'S', 'P', 'M', 'B'}

// MaxMemberSteps bounds the checkpoint-step list one membership frame may
// carry. Savers retain a handful of files (ckpt.Config.Retain, default 3),
// so the bound is generous for real runs while keeping the decoder's worst
// case allocation small and fixed.
const MaxMemberSteps = 64

// memberFrameFixed is the wire size of a frame with no steps: magic,
// generation, rank, and the step count, each 4 bytes little-endian.
const memberFrameFixed = 16

// MemberStep identifies one barrier-consistent checkpoint position inside
// a membership frame. It mirrors ckpt.Step without importing it — dist is
// below ckpt in the package graph.
type MemberStep struct {
	Epoch int32
	Round int32
}

// MemberFrame is one survivor's contribution to a membership agreement
// round: which regroup generation it is answering for, which (pre-failure)
// rank it is, and the checkpoint steps it holds locally, newest first.
type MemberFrame struct {
	Gen   uint32
	Rank  int32
	Steps []MemberStep
}

// AppendMemberFrame appends f's wire encoding to buf and returns it.
// Frames carrying more than MaxMemberSteps steps are rejected — truncate
// to the newest MaxMemberSteps before encoding (older checkpoints past
// the retain window cannot win the consensus anyway).
func AppendMemberFrame(buf []byte, f MemberFrame) ([]byte, error) {
	if len(f.Steps) > MaxMemberSteps {
		return nil, fmt.Errorf("dist: membership frame carries %d steps, max %d", len(f.Steps), MaxMemberSteps)
	}
	if f.Rank < 0 {
		return nil, fmt.Errorf("dist: membership frame for negative rank %d", f.Rank)
	}
	buf = append(buf, memberMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, f.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Steps)))
	for _, s := range f.Steps {
		if s.Epoch < 0 || s.Round < 0 {
			return nil, fmt.Errorf("dist: membership frame step (%d,%d) is negative", s.Epoch, s.Round)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Epoch))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Round))
	}
	return buf, nil
}

// DecodeMemberFrame validates and decodes a membership frame. The step
// count is checked against both MaxMemberSteps and the bytes actually
// present before anything is allocated, so a lying length field can
// neither panic the decoder nor force a large allocation.
func DecodeMemberFrame(b []byte) (MemberFrame, error) {
	var f MemberFrame
	if len(b) < memberFrameFixed {
		return f, fmt.Errorf("dist: membership frame is %d bytes, need at least %d", len(b), memberFrameFixed)
	}
	if [4]byte(b[:4]) != memberMagic {
		return f, fmt.Errorf("dist: membership frame magic %q, want %q", b[:4], memberMagic[:])
	}
	f.Gen = binary.LittleEndian.Uint32(b[4:])
	rank := binary.LittleEndian.Uint32(b[8:])
	if rank > 1<<20 {
		return f, fmt.Errorf("dist: membership frame rank %d is implausible", rank)
	}
	f.Rank = int32(rank)
	count := binary.LittleEndian.Uint32(b[12:])
	if count > MaxMemberSteps {
		return f, fmt.Errorf("dist: membership frame claims %d steps, max %d", count, MaxMemberSteps)
	}
	if want := memberFrameFixed + 8*int(count); len(b) != want {
		return f, fmt.Errorf("dist: membership frame is %d bytes, %d steps need %d", len(b), count, want)
	}
	if count == 0 {
		return f, nil
	}
	f.Steps = make([]MemberStep, count)
	for i := range f.Steps {
		off := memberFrameFixed + 8*i
		e := binary.LittleEndian.Uint32(b[off:])
		r := binary.LittleEndian.Uint32(b[off+4:])
		if e > 1<<30 || r > 1<<30 {
			return MemberFrame{}, fmt.Errorf("dist: membership frame step %d (%d,%d) is implausible", i, e, r)
		}
		f.Steps[i] = MemberStep{Epoch: int32(e), Round: int32(r)}
	}
	return f, nil
}
