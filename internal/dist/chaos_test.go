package dist

import (
	"errors"
	"strings"
	"testing"
	"time"

	"salientpp/internal/simnet"
)

// TestChaosStallHonorsTimeout: a stalled wrapper blocks, then fails with
// ErrTimeout when its member deadline fires, and the inner group is
// poisoned (the wedged-NIC contract the serving regroup relies on).
func TestChaosStallHonorsTimeout(t *testing.T) {
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{})
	wrapped := ch.Wrap(comms[0])
	defer wrapped.Close()
	defer comms[1].Close()
	wrapped.SetTimeout(50 * time.Millisecond)

	ch.Stall()
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.AllToAll([][]byte{nil, nil})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("stalled collective returned %v, want ErrTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled collective ignored its deadline")
	}
	// Clearing afterwards must not resurrect the poisoned group.
	ch.Clear()
	if _, err := comms[0].AllToAll([][]byte{nil, nil}); err == nil {
		t.Fatal("inner group survived a timed-out stall")
	}
}

// TestChaosStallClearProceeds: a stall cleared before the deadline lets
// the collective through to the real transport, delivering normally.
func TestChaosStallClearProceeds(t *testing.T) {
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{})
	wrapped := ch.Wrap(comms[0])
	defer wrapped.Close()
	defer comms[1].Close()
	wrapped.SetTimeout(5 * time.Second)

	ch.Stall()
	done := make(chan error, 1)
	go func() {
		recv, err := wrapped.AllToAll([][]byte{nil, []byte("hi")})
		if err == nil && string(recv[1]) != "yo" {
			err = errors.New("wrong payload after stall clear")
		}
		done <- err
	}()
	go func() {
		_, err := comms[1].AllToAll([][]byte{[]byte("yo"), nil})
		if err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	ch.Clear()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collective still blocked after Clear")
	}
}

// TestChaosDropKillsPermanently: from DropAtCall on, every collective on
// the wrapped rank fails fast and the group is closed — a rank death, not
// a stall, and it persists across fresh wraps of new groups (the shared
// schedule is the point of the harness).
func TestChaosDropKillsPermanently(t *testing.T) {
	ch := NewChaos(ChaosConfig{DropAtCall: 2})
	for attempt := 0; attempt < 2; attempt++ {
		comms, err := NewLocalGroup(2)
		if err != nil {
			t.Fatal(err)
		}
		wrapped := ch.Wrap(comms[0])
		if attempt == 0 {
			// Call 1 is below the schedule: it must pass through. Peer
			// matches it, and is joined before comms[1] is reused below.
			peerDone := make(chan error, 1)
			go func() {
				_, err := comms[1].AllToAll([][]byte{nil, nil})
				peerDone <- err
			}()
			if _, err := wrapped.AllToAll([][]byte{nil, nil}); err != nil {
				t.Fatalf("pre-drop collective failed: %v", err)
			}
			if err := <-peerDone; err != nil {
				t.Fatalf("peer's matched collective failed: %v", err)
			}
		}
		// At or past DropAtCall: immediate failure, no timeout needed.
		if _, err := wrapped.AllToAll([][]byte{nil, nil}); err == nil || errors.Is(err, ErrTimeout) {
			t.Fatalf("dropped rank returned %v, want a non-timeout death", err)
		}
		// The inner group died with it.
		if _, err := comms[1].AllToAll([][]byte{nil, nil}); err == nil {
			t.Fatal("peer's group survived the injected death")
		}
		wrapped.Close()
		comms[1].Close()
	}
	if calls := ch.Calls(); calls != 3 {
		t.Fatalf("shared schedule counted %d collectives, want 3", calls)
	}
}

// TestChaosSlowAndLink: the seeded slow-peer delay and the simnet link
// shaping both stretch a collective without failing it.
func TestChaosSlowAndLink(t *testing.T) {
	// 1 kB over a link that needs ~20ms for it: 0.0004 Gbps ≈ 50 kB/s.
	link := simnet.NewLink(0.0004, 0)
	ch := NewChaos(ChaosConfig{
		Seed: 1, SlowEveryN: 1, SlowDelay: 10 * time.Millisecond, Link: link,
	})
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ch.Wrap(comms[0]), ch.Wrap(comms[1])
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1000)
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := b.AllToAll([][]byte{payload, nil})
		done <- err
	}()
	if _, err := a.AllToAll([][]byte{nil, payload}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 10*time.Millisecond {
		t.Fatalf("chaos slow+link finished in %v; the schedule did not bite", e)
	}
}

// TestChaosAbortUnblocksStall: the abort channel installed via SetAbort
// must unwind a collective waiting out a stall with no timeout set — the
// serving shutdown path when a rank is wedged.
func TestChaosAbortUnblocksStall(t *testing.T) {
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[1].Close()
	ch := NewChaos(ChaosConfig{})
	wrapped := ch.Wrap(comms[0])
	abort := make(chan struct{})
	wrapped.SetAbort(abort)
	ch.Stall()
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.AllToAll([][]byte{nil, nil})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(abort)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted stall returned no error")
		}
		if !strings.Contains(err.Error(), "stall") {
			t.Fatalf("aborted stall failed with %v, want the stall-wait error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled collective survived the abort: SetAbort does not reach the stall gate")
	}
}
