package dist

import (
	"fmt"

	"salientpp/internal/tensor"
)

// GradReducer sums per-layer gradient tensors across every rank of a comm
// group, optionally compressing them on the wire with the same Codec the
// feature-gather path uses (per-row symmetric int8 scales, IEEE binary16
// fp16). It is the training-side counterpart of the gather codec: the
// gather compresses the forward pass's communication, GradReducer
// compresses the backward pass's.
//
// Lossy codecs use error-feedback residual accumulation: the quantization
// error of round t is carried in a per-parameter residual buffer and added
// back into round t+1's gradient before encoding, so the compression error
// telescopes instead of compounding and convergence is preserved (the
// classic EF-SGD construction; pinned by TestGradCodecAccuracyDelta).
//
// Determinism: the compressed path is an all-gather (every rank ships the
// same encoded payload to every peer) followed by a rank-ordered local
// sum of the decoded contributions. Every rank decodes identical bytes
// and sums them in the same order, so the reduced gradient — and
// therefore the whole training trajectory — is bitwise identical on every
// rank, transport, and GOMAXPROCS setting. The fp32 path delegates to
// Comm.AllReduceSum and is byte- and bitwise-identical to the historical
// uncompressed reduce.
//
// A GradReducer is not safe for concurrent use; the pipeline serializes
// Reduce calls on its per-epoch reducer goroutine.
type GradReducer struct {
	comm  Comm
	codec Codec

	// Reused scratch, so the warm per-round path allocates nothing
	// (cross-rank payloads pay exactly the transport-owned copy the
	// gather path also pays — the documented floor).
	flat []float32 // fp32 path: flattened concatenation of all tensors
	enc  []byte    // lossy path: this rank's encoded payload
	send [][]byte  // lossy path: per-peer send slots (all alias enc)
	row  []float32 // lossy path: one decoded row
}

// NewGradReducer builds a reducer over comm using codec for the wire
// encoding. CodecFP32 reproduces the historical raw all-reduce exactly.
func NewGradReducer(comm Comm, codec Codec) *GradReducer {
	return &GradReducer{comm: comm, codec: codec}
}

// Codec reports the configured wire encoding.
func (g *GradReducer) Codec() Codec { return g.codec }

// Reduce replaces each matrix in mats, elementwise, with the sum of that
// matrix over all ranks. All ranks must call Reduce with identically
// shaped mats in the same collective order (the matched-collectives
// discipline every Comm method shares).
//
// For lossy codecs, residuals must hold one buffer per matrix, each of
// length Rows*Cols: the error-feedback state. Reduce adds residuals[i]
// into mats[i] before encoding and stores the new quantization error back
// into residuals[i]. For CodecFP32 residuals is unused and may be nil.
func (g *GradReducer) Reduce(mats []*tensor.Matrix, residuals [][]float32) error {
	if g.codec == CodecFP32 {
		return g.reduceRaw(mats)
	}
	return g.reduceCompressed(mats, residuals)
}

// reduceRaw is the uncompressed path: flatten, AllReduceSum, scatter back.
// Payload bytes and summation order match the historical single flat
// all-reduce whether Reduce is called once for all layers or once per
// layer, since both the per-element sums and the total bytes on the wire
// are unchanged by the split.
func (g *GradReducer) reduceRaw(mats []*tensor.Matrix) error {
	g.flat = g.flat[:0]
	for _, m := range mats {
		g.flat = append(g.flat, m.Data...)
	}
	if err := g.comm.AllReduceSum(g.flat); err != nil {
		return err
	}
	off := 0
	for _, m := range mats {
		copy(m.Data, g.flat[off:off+len(m.Data)])
		off += len(m.Data)
	}
	return nil
}

func (g *GradReducer) reduceCompressed(mats []*tensor.Matrix, residuals [][]float32) error {
	if len(residuals) != len(mats) {
		return fmt.Errorf("dist: grad reduce has %d residual buffers for %d tensors", len(residuals), len(mats))
	}
	want, maxCols := 0, 0
	for i, m := range mats {
		if len(residuals[i]) != len(m.Data) {
			return fmt.Errorf("dist: grad residual %d has %d elements, tensor has %d", i, len(residuals[i]), len(m.Data))
		}
		want += m.Rows * g.codec.featRowWire(m.Cols)
		if m.Cols > maxCols {
			maxCols = m.Cols
		}
	}
	if cap(g.row) < maxCols {
		g.row = make([]float32, maxCols)
	}

	// Error feedback, step 1: fold the carried quantization error into
	// this round's gradient, then encode the corrected gradient row by
	// row with the shared gather-codec primitives.
	enc := g.enc[:0]
	for i, m := range mats {
		res := residuals[i]
		for j, r := range res {
			m.Data[j] += r
		}
		for r := 0; r < m.Rows; r++ {
			enc = g.codec.appendFeatRow(enc, m.Data[r*m.Cols:(r+1)*m.Cols])
		}
	}
	g.enc = enc

	// All-gather: every peer receives this rank's identical payload. The
	// send slots all alias enc — AllToAll only reads them until it
	// returns.
	if len(g.send) != g.comm.Size() {
		g.send = make([][]byte, g.comm.Size())
	}
	for i := range g.send {
		g.send[i] = enc
	}
	recv, err := g.comm.AllToAll(g.send)
	if err != nil {
		return err
	}
	for src, p := range recv {
		if len(p) != want {
			return fmt.Errorf("dist: grad payload from rank %d is %d bytes, want %d (codec %s)", src, len(p), want, g.codec)
		}
	}

	// Error feedback, step 2: the new residual is the corrected gradient
	// minus what the peers will actually see — decoded from this rank's
	// own wire bytes, so residual and peer view agree bitwise. Then zero
	// the tensors and accumulate every rank's decoded contribution in
	// rank order, which makes the sum identical on all ranks.
	own := recv[g.comm.Rank()]
	off := 0
	for i, m := range mats {
		res := residuals[i]
		w := g.codec.featRowWire(m.Cols)
		for r := 0; r < m.Rows; r++ {
			row := g.row[:m.Cols]
			g.codec.decodeFeatRow(row, own[off:off+w])
			base := r * m.Cols
			for j, v := range row {
				res[base+j] = m.Data[base+j] - v
				m.Data[base+j] = 0
			}
			off += w
		}
	}
	for src := 0; src < g.comm.Size(); src++ {
		p := recv[src]
		off := 0
		for _, m := range mats {
			w := g.codec.featRowWire(m.Cols)
			for r := 0; r < m.Rows; r++ {
				row := g.row[:m.Cols]
				g.codec.decodeFeatRow(row, p[off:off+w])
				base := r * m.Cols
				for j, v := range row {
					m.Data[base+j] += v
				}
				off += w
			}
		}
	}
	return nil
}
