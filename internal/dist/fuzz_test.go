package dist

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives the transport's frame decoder with arbitrary
// bytes: decodeFrame must error — never panic, never allocate beyond the
// bytes actually present — on truncated, oversized, or garbage input, and
// any frame it accepts must match a re-encode of its payload.
func FuzzFrameDecode(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	// Seed corpus: empty frame, small frame, truncated frame, a header
	// claiming far more bytes than follow, and an over-limit length.
	f.Add(frame(nil))
	f.Add(frame([]byte("feature payload")))
	f.Add(frame([]byte("feature payload"))[:6])
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := decodeFrame(r)
		if err != nil {
			return
		}
		if len(payload) > len(data)-4 {
			t.Fatalf("decoded %d payload bytes from %d input bytes", len(payload), len(data))
		}
		want := binary.LittleEndian.Uint32(data[:4])
		if uint32(len(payload)) != want {
			t.Fatalf("decoded %d bytes, header promised %d", len(payload), want)
		}
		if !bytes.Equal(payload, data[4:4+want]) {
			t.Fatal("payload differs from wire bytes")
		}
	})
}

// FuzzHealthFrame drives the serving health-probe decoder with arbitrary
// bytes: DecodeHealthFrame must error — never panic — on anything but a
// well-formed frame, and every frame AppendHealthFrame emits must round-trip
// to its generation.
func FuzzHealthFrame(f *testing.F) {
	f.Add(AppendHealthFrame(nil, 0))
	f.Add(AppendHealthFrame(nil, 0xdeadbeef))
	f.Add([]byte("SPHB"))                 // truncated: magic without a generation
	f.Add([]byte("XPHB\x01\x00\x00\x00")) // wrong magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, err := DecodeHealthFrame(data)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendHealthFrame(nil, gen), data) {
			t.Fatalf("accepted frame %x does not re-encode to itself", data)
		}
	})
}

// FuzzWireViews checks the zero-copy int32/float32 reinterpretations
// tolerate every length (they truncate partial trailing elements rather
// than reading out of bounds).
func FuzzWireViews(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Copy to a fresh allocation so the views get the alignment the
		// production callers guarantee.
		b := append([]byte(nil), data...)
		if got := bytesAsI32(b); len(got) != len(b)/4 {
			t.Fatalf("bytesAsI32 yielded %d elements from %d bytes", len(got), len(b))
		}
		if got := bytesAsF32(b); len(got) != len(b)/4 {
			t.Fatalf("bytesAsF32 yielded %d elements from %d bytes", len(got), len(b))
		}
	})
}
