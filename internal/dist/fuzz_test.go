package dist

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives the transport's frame decoder with arbitrary
// bytes: decodeFrame must error — never panic, never allocate beyond the
// bytes actually present — on truncated, oversized, or garbage input, and
// any frame it accepts must match a re-encode of its payload.
func FuzzFrameDecode(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	// Seed corpus: empty frame, small frame, truncated frame, a header
	// claiming far more bytes than follow, and an over-limit length.
	f.Add(frame(nil))
	f.Add(frame([]byte("feature payload")))
	f.Add(frame([]byte("feature payload"))[:6])
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := decodeFrame(r)
		if err != nil {
			return
		}
		if len(payload) > len(data)-4 {
			t.Fatalf("decoded %d payload bytes from %d input bytes", len(payload), len(data))
		}
		want := binary.LittleEndian.Uint32(data[:4])
		if uint32(len(payload)) != want {
			t.Fatalf("decoded %d bytes, header promised %d", len(payload), want)
		}
		if !bytes.Equal(payload, data[4:4+want]) {
			t.Fatal("payload differs from wire bytes")
		}
	})
}

// FuzzHealthFrame drives the serving health-probe decoder with arbitrary
// bytes: DecodeHealthFrame must error — never panic — on anything but a
// well-formed frame, and every frame AppendHealthFrame emits must round-trip
// to its generation.
func FuzzHealthFrame(f *testing.F) {
	f.Add(AppendHealthFrame(nil, 0))
	f.Add(AppendHealthFrame(nil, 0xdeadbeef))
	f.Add([]byte("SPHB"))                 // truncated: magic without a generation
	f.Add([]byte("XPHB\x01\x00\x00\x00")) // wrong magic
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, err := DecodeHealthFrame(data)
		if err != nil {
			return
		}
		if !bytes.Equal(AppendHealthFrame(nil, gen), data) {
			t.Fatalf("accepted frame %x does not re-encode to itself", data)
		}
	})
}

// FuzzWireViews checks the zero-copy int32/float32 reinterpretations
// tolerate every length (they truncate partial trailing elements rather
// than reading out of bounds).
func FuzzWireViews(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Copy to a fresh allocation so the views get the alignment the
		// production callers guarantee.
		b := append([]byte(nil), data...)
		if got := bytesAsI32(b); len(got) != len(b)/4 {
			t.Fatalf("bytesAsI32 yielded %d elements from %d bytes", len(got), len(b))
		}
		if got := bytesAsF32(b); len(got) != len(b)/4 {
			t.Fatalf("bytesAsF32 yielded %d elements from %d bytes", len(got), len(b))
		}
	})
}

// FuzzMembershipFrame drives the elastic-training consensus decoder with
// arbitrary bytes: DecodeMemberFrame must error — never panic, never
// allocate beyond what the bytes present allow (the step count is bounded
// by MaxMemberSteps and cross-checked against the frame length before any
// allocation) — and every accepted frame must re-encode to its exact wire
// bytes.
func FuzzMembershipFrame(f *testing.F) {
	seed := func(fr MemberFrame) []byte {
		b, err := AppendMemberFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(MemberFrame{}))
	f.Add(seed(MemberFrame{Gen: 3, Rank: 1, Steps: []MemberStep{{Epoch: 2, Round: 40}}}))
	f.Add(seed(MemberFrame{Gen: 1, Rank: 7, Steps: []MemberStep{{5, 0}, {4, 100}, {4, 50}}}))
	f.Add([]byte("SPMB"))                                 // truncated after the magic
	f.Add([]byte("XPMB\x00\x00\x00\x00\x00\x00\x00\x00")) // wrong magic
	lying := seed(MemberFrame{Gen: 1, Rank: 0})
	binary.LittleEndian.PutUint32(lying[12:], 1<<31) // huge claimed step count
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeMemberFrame(data)
		if err != nil {
			return
		}
		if len(fr.Steps) > MaxMemberSteps {
			t.Fatalf("decoder accepted %d steps, max %d", len(fr.Steps), MaxMemberSteps)
		}
		if 8*len(fr.Steps) > len(data) {
			t.Fatalf("decoded %d steps from %d input bytes", len(fr.Steps), len(data))
		}
		re, err := AppendMemberFrame(nil, fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame %x re-encodes to %x", data, re)
		}
	})
}
