package dist

import (
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/rng"
	"salientpp/internal/tensor"
)

// buildQuantStores assembles a 2-rank deployment over a 16-vertex feature
// matrix, with rank 0 caching two of rank 1's rows so the quantized gather
// exercises the cache-shadow path alongside local and remote rows.
func buildQuantStores(t *testing.T, codec Codec) ([]*Store, *tensor.Matrix, []Comm) {
	t.Helper()
	const n, dim = 16, 6
	layout, err := NewLayout([]int64{0, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.New(n, dim)
	r := rng.New(29)
	for i := range full.Data {
		full.Data[i] = float32((r.Float64()*2 - 1) * 10)
	}
	stores := make([]*Store, 2)
	for rank := 0; rank < 2; rank++ {
		local := tensor.New(8, dim)
		for i := 0; i < 8; i++ {
			copy(local.Row(i), full.Row(rank*8+i))
		}
		var ep *cache.Epoch
		if rank == 0 {
			cc, err := cache.Build([]int32{10, 13}, n)
			if err != nil {
				t.Fatal(err)
			}
			cdata := tensor.New(2, dim)
			for i, v := range cc.IDs() {
				copy(cdata.Row(i), full.Row(int(v)))
			}
			if ep, err = cache.NewEpoch(cc, cdata); err != nil {
				t.Fatal(err)
			}
		}
		st, err := NewStore(comms[rank], layout, dim, local, ep, 1)
		if err != nil {
			t.Fatal(err)
		}
		st.SetCodec(codec)
		stores[rank] = st
	}
	return stores, full, comms
}

// quantRowEqual asserts row i of got is the exact quantized image of src.
func quantRowEqual(t *testing.T, got *tensor.QuantMatrix, i int, src []float32) {
	t.Helper()
	dim := got.Cols
	switch got.Prec {
	case tensor.PrecisionInt8:
		q := make([]int8, dim)
		scale := tensor.QuantizeRowInt8(q, src)
		if got.Scale[i] != scale {
			t.Fatalf("row %d scale %v, want %v", i, got.Scale[i], scale)
		}
		for j, v := range q {
			if got.I8[i*dim+j] != v {
				t.Fatalf("row %d col %d: got %d want %d", i, j, got.I8[i*dim+j], v)
			}
		}
	case tensor.PrecisionFP16:
		for j, v := range src {
			if got.H[i*dim+j] != tensor.F16FromF32(v) {
				t.Fatalf("row %d col %d: got %04x want %04x", i, j, got.H[i*dim+j], tensor.F16FromF32(v))
			}
		}
	}
}

// TestGatherQuantMatchesQuantizedReference runs quantized gathers under
// every codec × precision combination against a rank running plain fp32
// Gather — the collectives must stay matched regardless of output form —
// and pins each output row bitwise:
//
//   - local, GPU, and cache rows are always the direct quantization of the
//     owner's fp32 row (served from the pre-quantized shadows);
//   - remote rows under a codec matching the precision are ALSO the direct
//     quantization of the owner's fp32 row — the wire payload passes
//     through without a dequantize/requantize round trip, so no second
//     lossy step ever happens;
//   - remote rows under a mismatched lossy codec are the quantization of
//     the codec's round-trip image (decode, then requantize).
func TestGatherQuantMatchesQuantizedReference(t *testing.T) {
	for _, codec := range []Codec{CodecFP32, CodecFP16, CodecInt8} {
		for _, prec := range []tensor.Precision{tensor.PrecisionInt8, tensor.PrecisionFP16} {
			t.Run(codec.String()+"_"+prec.String(), func(t *testing.T) {
				stores, full, comms := buildQuantStores(t, codec)
				defer comms[0].Close()
				stores[0].SetPrecision(prec)
				// 2, 0: local; 10, 13: cache hits; 9, 12, 15 (+dup 9): remote.
				ids := []int32{15, 9, 12, 9, 2, 13, 0, 10}
				done := make(chan error, 1)
				go func() {
					_, _, err := stores[1].Gather(nil)
					done <- err
				}()
				qout, stats, err := stores[0].GatherQuant(ids)
				if err != nil {
					t.Fatal(err)
				}
				if err := <-done; err != nil {
					t.Fatal(err)
				}
				if stats.RemoteFetch != 4 || stats.CacheHits != 2 {
					t.Fatalf("stats %+v, want 4 remote and 2 cache hits (precision must not change which rows move)", stats)
				}
				codecMatches := (codec == CodecInt8 && prec == tensor.PrecisionInt8) ||
					(codec == CodecFP16 && prec == tensor.PrecisionFP16)
				ref := make([]float32, full.Cols)
				for i, v := range ids {
					src := full.Row(int(v))
					if v >= 8 && stores[0].layout.Owner(v) != 0 {
						if _, cached := stores[0].Epoch().Index.Slot(v); !cached && codec != CodecFP32 && !codecMatches {
							codec.roundTripRow(ref, src)
							src = ref
						}
					}
					quantRowEqual(t, qout, i, src)
				}
			})
		}
	}
}

// TestGatherQuantRequiresPrecision pins the fp32 error path: a store that
// was never given a reduced precision refuses GatherQuant instead of
// handing out an empty scratch.
func TestGatherQuantRequiresPrecision(t *testing.T) {
	stores, _, comms := buildQuantStores(t, CodecFP32)
	defer comms[0].Close()
	if _, _, err := stores[0].GatherQuant([]int32{1}); err == nil {
		t.Fatal("GatherQuant succeeded on an fp32 store")
	}
}

// TestGatherQuantAllocationFree extends the warm-loop allocation guard to
// the quantized path: the store-owned scratch and pre-quantized shadows
// make repeat GatherQuant calls allocation-free. A single-rank group
// isolates the store from the transport's documented allocations.
func TestGatherQuantAllocationFree(t *testing.T) {
	layout, err := NewLayout([]int64{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	local := tensor.New(8, 6)
	r := rng.New(31)
	for i := range local.Data {
		local.Data[i] = float32(r.NormFloat64())
	}
	st, err := NewStore(comms[0], layout, 6, local, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetPrecision(tensor.PrecisionInt8)
	ids := []int32{0, 3, 7, 3, 1}
	if _, _, err := st.GatherQuant(ids); err != nil { // warm the scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := st.GatherQuant(ids); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm GatherQuant allocates %.1f objects per call, want 0", allocs)
	}
}
