package dist

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"salientpp/internal/tensor"
)

// testAllToAllTimeout pins the SetTimeout contract on a transport: a
// collective blocked on a silent peer fails with ErrTimeout within the
// bound (never hangs), and the group is poisoned afterwards.
func testAllToAllTimeout(t *testing.T, mk func(k int) ([]Comm, error)) {
	t.Helper()
	comms, err := mk(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	defer comms[1].Close()
	comms[0].SetTimeout(60 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		// Rank 1 never issues its matching collective.
		_, err := comms[0].AllToAll([][]byte{nil, []byte("payload")})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("blocked AllToAll returned %v, want ErrTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllToAll ignored its 60ms timeout for 5s")
	}
	// A timeout poisons the group on both transports; a retry must fail
	// fast rather than exchange bytes with a stream in an unknown state.
	errCh := make(chan error, 1)
	go func() {
		_, err := comms[0].AllToAll([][]byte{nil, []byte("retry")})
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("AllToAll succeeded on a timed-out group")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllToAll on a timed-out group hung")
	}
}

func TestAllToAllTimeoutLocal(t *testing.T) { testAllToAllTimeout(t, NewLocalGroup) }
func TestAllToAllTimeoutTCP(t *testing.T)   { testAllToAllTimeout(t, NewTCPGroup) }

// TestGatherTimeoutUnblocksStore is the serving-path version: a Gather
// blocked on a stalled peer fails with ErrTimeout within the bound and
// hands its pooled output back.
func TestGatherTimeoutUnblocksStore(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const n, dim = 32, 4
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	defer comms[1].Close()
	layout, err := NewLayout([]int64{0, n / 2, n})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(comms[0], layout, dim, tensor.New(n/2, dim), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetGatherTimeout(60 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		_, _, err := st.Gather([]int32{n/2 + 1}) // remote row; rank 1 never answers
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("stalled gather returned %v, want ErrTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gather ignored its 60ms timeout for 5s")
	}
	if live := st.Live(); live != 0 {
		t.Fatalf("timed-out gather leaked %d pooled matrices", live)
	}
	comms[0].Close()
	comms[1].Close()
	waitGoroutines(t, baseline, 2, "gather timeout")
}

// TestTCPHelloReadTimeout is the half-open-peer regression: a dialer that
// connects but never identifies itself must fail the handshake within the
// setup bound instead of wedging the accept side forever (before the fix,
// readHello's io.ReadFull had no deadline).
func TestTCPHelloReadTimeout(t *testing.T) {
	saved := tcpSetupTimeout
	tcpSetupTimeout = 100 * time.Millisecond
	defer func() { tcpSetupTimeout = saved }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rogue, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close() // connected, but never writes its hello byte
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan error, 1)
	go func() {
		_, err := readHello(conn)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("readHello succeeded without a hello byte")
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("readHello failed with %v, want a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("readHello hung on a half-open peer: the setup deadline is not applied")
	}
}

// TestHealthFrameRoundTrip pins the probe framing end to end over a real
// group: every rank broadcasts its generation and validates the peers'.
func TestHealthFrameRoundTrip(t *testing.T) {
	const k, gen = 3, 42
	comms, err := NewLocalGroup(k)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	errs := make(chan error, k)
	for r := 0; r < k; r++ {
		go func(c Comm) {
			send := make([][]byte, k)
			for dst := range send {
				send[dst] = AppendHealthFrame(nil, gen)
			}
			recv, err := c.AllToAll(send)
			if err != nil {
				errs <- err
				return
			}
			for src := range recv {
				got, err := DecodeHealthFrame(recv[src])
				if err != nil {
					errs <- err
					return
				}
				if got != gen {
					errs <- errors.New("generation mismatch")
					return
				}
			}
			errs <- nil
		}(comms[r])
	}
	for r := 0; r < k; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatherLocalZeroFillsMissing checks the degraded gather: local and
// cached rows resolve normally, unreachable remote rows zero-fill even
// when the pooled output matrix holds a previous batch's values, and
// Missing counts exactly the zero-filled rows.
func TestGatherLocalZeroFillsMissing(t *testing.T) {
	const n, dim = 16, 4
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	defer comms[1].Close()
	layout, err := NewLayout([]int64{0, n / 2, n})
	if err != nil {
		t.Fatal(err)
	}
	local := tensor.New(n/2, dim)
	for i := range local.Data {
		local.Data[i] = float32(i + 1)
	}
	st, err := NewStore(comms[0], layout, dim, local, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty the pool: a local-only gather fills the matrix with nonzero
	// features, then releases it for reuse.
	out, _ := st.GatherLocal([]int32{0, 1, 2})
	st.Release(out)

	ids := []int32{1, int32(n/2) + 3, 3} // local, missing-remote, local
	out, stats := st.GatherLocal(ids)
	defer st.Release(out)
	if stats.Missing != 1 || stats.LocalGPU+stats.LocalCPU != 2 {
		t.Fatalf("classification: %+v", stats)
	}
	for c := 0; c < dim; c++ {
		if got := out.At(1, c); got != 0 {
			t.Fatalf("missing row not zero-filled: out[1][%d] = %v (stale pool bytes?)", c, got)
		}
		if out.At(0, c) != local.At(1, c) || out.At(2, c) != local.At(3, c) {
			t.Fatal("local rows wrong")
		}
	}
}
