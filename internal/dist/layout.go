// Package dist provides the distributed substrate of the SALIENT++
// reproduction: the contiguous partition layout, communicator groups with
// the two collectives the training loop needs (all-to-all and all-reduce),
// and the partitioned feature store whose three-collective Gather is the
// paper's feature-communication protocol (§4.2).
//
// Two transports implement the Comm interface: an in-process channel
// transport (the default for experiments and tests) and a loopback TCP
// transport that moves real bytes through the kernel, exercising the same
// code paths a multi-host deployment would.
package dist

import (
	"fmt"
	"sort"
)

// Layout is a contiguous K-way partition of the vertex id space: partition
// p owns ids [Starts[p], Starts[p+1]). Vertex reordering (graph.
// PartitionOrder) guarantees contiguity, which makes ownership a binary
// search and local rows a subtraction — no per-vertex map.
type Layout struct {
	// Starts has length K+1 with Starts[0] == 0; partition p owns
	// [Starts[p], Starts[p+1]).
	Starts []int64
}

// NewLayout validates starts (monotone, beginning at 0) and returns the
// layout.
func NewLayout(starts []int64) (*Layout, error) {
	if len(starts) < 2 {
		return nil, fmt.Errorf("dist: layout needs at least 2 boundaries, got %d", len(starts))
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("dist: layout must start at 0, got %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("dist: layout boundaries decrease at %d", i)
		}
	}
	s := make([]int64, len(starts))
	copy(s, starts)
	return &Layout{Starts: s}, nil
}

// K returns the number of partitions.
func (l *Layout) K() int { return len(l.Starts) - 1 }

// NumVertices returns the size of the id space.
func (l *Layout) NumVertices() int { return int(l.Starts[len(l.Starts)-1]) }

// Owner returns the partition owning vertex v.
func (l *Layout) Owner(v int32) int {
	// sort.Search finds the first boundary strictly greater than v; the
	// owner is the preceding interval.
	return sort.Search(len(l.Starts)-1, func(p int) bool { return l.Starts[p+1] > int64(v) })
}

// LocalRow returns v's row within its owner's shard.
func (l *Layout) LocalRow(v int32) int {
	return int(int64(v) - l.Starts[l.Owner(v)])
}

// PartSize returns the number of vertices partition p owns.
func (l *Layout) PartSize(p int) int {
	return int(l.Starts[p+1] - l.Starts[p])
}
