package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrTimeout marks a collective that exceeded the deadline installed with
// SetTimeout. Callers distinguish it from hard transport failures with
// errors.Is: a timed-out member may still be alive (a stalled NIC, a slow
// peer), so a serving loop treats it as "degrade and regroup" rather than
// "rank dead". A timeout nonetheless poisons the group on both transports
// — a TCP deadline can strike mid-frame, leaving the stream unframeable,
// and a timed-out channel exchange leaves mailboxes half-full — so the
// member tears its group down and the caller must build a fresh one; the
// sentinel only identifies why.
var ErrTimeout = errors.New("dist: collective deadline exceeded")

// ErrClosed marks a collective that failed because its group was torn down
// — by Close, by a peer's death cascading through the transport, or by the
// chaos harness killing a wrapped rank. Together with ErrTimeout it is the
// "the group is gone, the survivors may regroup" signal: an elastic
// training driver treats both as recoverable membership events (probe the
// ranks, shrink the group, resume from the last common checkpoint), while
// any other error — a shape mismatch, a checkpoint-write failure — aborts
// the run. Use errors.Is; see Recoverable.
var ErrClosed = errors.New("dist: group closed")

// Recoverable reports whether err is a comm-group failure an elastic
// driver may respond to with a membership change (timeout or group
// teardown) rather than a hard programming or I/O error that must abort
// the run.
func Recoverable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrClosed)
}

// Comm is one rank's handle on a communicator group. Collectives are
// matched by call order: every rank must issue the same sequence of
// collective calls, exactly as NCCL requires. A Comm is not safe for
// concurrent use by multiple goroutines; the training loop dedicates one
// communicator per concern (features, gradients), mirroring the original
// system's separate NCCL streams.
type Comm interface {
	// Rank returns this member's index in [0, Size()).
	Rank() int
	// Size returns the group size K.
	Size() int
	// AllToAll exchanges one byte payload with every rank: send[dst] goes
	// to rank dst, and the result's entry [src] is what rank src sent
	// here. send[Rank()] is delivered locally without touching the
	// transport. len(send) must equal Size().
	//
	// Buffer ownership: send payloads are only read until AllToAll
	// returns, so callers may reuse them immediately. The returned slice
	// and its payloads remain valid only until the next collective on
	// this Comm — transports recycle receive buffers to keep the
	// steady-state gather path allocation-lean.
	AllToAll(send [][]byte) ([][]byte, error)
	// AllReduceSum replaces x, elementwise, with the sum over all ranks'
	// x. The reduction is ordered by rank, so all ranks compute
	// bitwise-identical results.
	AllReduceSum(x []float32) error
	// BytesSent returns the cumulative payload bytes this rank has sent to
	// other ranks (self-delivery is free, as on a real NIC).
	BytesSent() int64
	// Close aborts the whole group: every blocked or future collective on
	// any member fails with an error instead of deadlocking, the behavior
	// the training loop relies on for failure propagation (like an NCCL
	// abort).
	Close()
	// SetAbort installs an abort channel on this member: when the channel
	// closes, the whole group is torn down exactly as by Close, so every
	// blocked or future collective — including an in-flight feature gather
	// on a peer — fails promptly instead of deadlocking. This is how an
	// online-serving loop unwinds collectives on shutdown without a
	// matched "final round". Passing nil detaches the previous channel.
	// SetAbort must not race with collectives on the same member (install
	// it before the serving/training loop starts).
	SetAbort(abort <-chan struct{})
	// SetTimeout bounds every subsequent collective on this member: a call
	// that cannot complete within d fails with an error satisfying
	// errors.Is(err, ErrTimeout) instead of blocking on a stalled or dead
	// peer. Zero (the default) restores unbounded collectives. Like
	// SetAbort, it must not race with collectives on the same member.
	// Training pipelines leave it unset; the serving path installs its
	// gather budget here so one stalled rank costs a bounded round, not a
	// hang.
	SetTimeout(d time.Duration)
}

// watchAbort spawns the watcher goroutine backing SetAbort: when abort
// closes, closeGroup runs; when stop closes first (a later SetAbort call
// detaching the channel), the watcher exits without side effects. Both
// transports share this helper because their Close methods already
// implement prompt group-wide teardown.
func watchAbort(abort <-chan struct{}, stop <-chan struct{}, closeGroup func()) {
	go func() {
		select {
		case <-abort:
			closeGroup()
		case <-stop:
		}
	}()
}

// HealthFrameLen is the wire size of a health-probe frame: a 4-byte magic
// plus a little-endian uint32 group generation.
const HealthFrameLen = 8

// healthMagic distinguishes a health probe from a stray collective payload
// ("SPHB": SALIENT++ health beat).
var healthMagic = [4]byte{'S', 'P', 'H', 'B'}

// AppendHealthFrame appends the health-probe frame for group generation
// gen. Health probes are the first (and only) collective a candidate
// serving comm group runs before being installed: every rank sends its
// generation to every peer, and a group is healthy only when all frames
// decode to the sender's generation within the probe deadline.
func AppendHealthFrame(buf []byte, gen uint32) []byte {
	buf = append(buf, healthMagic[:]...)
	return binary.LittleEndian.AppendUint32(buf, gen)
}

// DecodeHealthFrame validates a health-probe frame and returns its group
// generation. Like every wire decoder it must error, never panic, on
// corrupt bytes (fuzzed by FuzzHealthFrame).
func DecodeHealthFrame(b []byte) (uint32, error) {
	if len(b) != HealthFrameLen {
		return 0, fmt.Errorf("dist: health frame is %d bytes, want %d", len(b), HealthFrameLen)
	}
	if [4]byte(b[:4]) != healthMagic {
		return 0, fmt.Errorf("dist: health frame magic %q, want %q", b[:4], healthMagic[:])
	}
	return binary.LittleEndian.Uint32(b[4:]), nil
}

// i32ToBytes appends the little-endian encoding of ids to buf and returns
// it. Payload helpers are shared by both transports and the feature store.
func i32ToBytes(buf []byte, ids []int32) []byte {
	for _, v := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// bytesToI32 decodes a payload produced by i32ToBytes.
func bytesToI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// f32ToBytes appends the little-endian IEEE-754 encoding of xs to buf.
func f32ToBytes(buf []byte, xs []float32) []byte {
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// bytesToF32 decodes a payload produced by f32ToBytes into dst (resized as
// needed) and returns it.
func bytesToF32(dst []float32, b []byte) []float32 {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return dst
}
