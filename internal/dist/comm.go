package dist

import (
	"encoding/binary"
	"math"
)

// Comm is one rank's handle on a communicator group. Collectives are
// matched by call order: every rank must issue the same sequence of
// collective calls, exactly as NCCL requires. A Comm is not safe for
// concurrent use by multiple goroutines; the training loop dedicates one
// communicator per concern (features, gradients), mirroring the original
// system's separate NCCL streams.
type Comm interface {
	// Rank returns this member's index in [0, Size()).
	Rank() int
	// Size returns the group size K.
	Size() int
	// AllToAll exchanges one byte payload with every rank: send[dst] goes
	// to rank dst, and the result's entry [src] is what rank src sent
	// here. send[Rank()] is delivered locally without touching the
	// transport. len(send) must equal Size().
	//
	// Buffer ownership: send payloads are only read until AllToAll
	// returns, so callers may reuse them immediately. The returned slice
	// and its payloads remain valid only until the next collective on
	// this Comm — transports recycle receive buffers to keep the
	// steady-state gather path allocation-lean.
	AllToAll(send [][]byte) ([][]byte, error)
	// AllReduceSum replaces x, elementwise, with the sum over all ranks'
	// x. The reduction is ordered by rank, so all ranks compute
	// bitwise-identical results.
	AllReduceSum(x []float32) error
	// BytesSent returns the cumulative payload bytes this rank has sent to
	// other ranks (self-delivery is free, as on a real NIC).
	BytesSent() int64
	// Close aborts the whole group: every blocked or future collective on
	// any member fails with an error instead of deadlocking, the behavior
	// the training loop relies on for failure propagation (like an NCCL
	// abort).
	Close()
	// SetAbort installs an abort channel on this member: when the channel
	// closes, the whole group is torn down exactly as by Close, so every
	// blocked or future collective — including an in-flight feature gather
	// on a peer — fails promptly instead of deadlocking. This is how an
	// online-serving loop unwinds collectives on shutdown without a
	// matched "final round". Passing nil detaches the previous channel.
	// SetAbort must not race with collectives on the same member (install
	// it before the serving/training loop starts).
	SetAbort(abort <-chan struct{})
}

// watchAbort spawns the watcher goroutine backing SetAbort: when abort
// closes, closeGroup runs; when stop closes first (a later SetAbort call
// detaching the channel), the watcher exits without side effects. Both
// transports share this helper because their Close methods already
// implement prompt group-wide teardown.
func watchAbort(abort <-chan struct{}, stop <-chan struct{}, closeGroup func()) {
	go func() {
		select {
		case <-abort:
			closeGroup()
		case <-stop:
		}
	}()
}

// i32ToBytes appends the little-endian encoding of ids to buf and returns
// it. Payload helpers are shared by both transports and the feature store.
func i32ToBytes(buf []byte, ids []int32) []byte {
	for _, v := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// bytesToI32 decodes a payload produced by i32ToBytes.
func bytesToI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// f32ToBytes appends the little-endian IEEE-754 encoding of xs to buf.
func f32ToBytes(buf []byte, xs []float32) []byte {
	for _, v := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// bytesToF32 decodes a payload produced by f32ToBytes into dst (resized as
// needed) and returns it.
func bytesToF32(dst []float32, b []byte) []float32 {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return dst
}
