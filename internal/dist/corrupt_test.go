package dist

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"salientpp/internal/tensor"
)

// TestGatherRejectsCorruptPeerRequests plays a malicious rank 1 by hand:
// it participates in the first two gather collectives but requests vertex
// ids rank 0 does not own — including negative ids, which Layout.Owner
// maps to rank 0 (everything below Starts[1] does), so before the explicit
// interval check the row subtraction indexed the local shard out of
// bounds and panicked. The decoder must error, never panic, and must hand
// its pooled output back.
func TestGatherRejectsCorruptPeerRequests(t *testing.T) {
	const n, dim = 32, 4
	for _, evil := range []int32{-5, n, 1 << 30} {
		comms, err := NewLocalGroup(2)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := NewLayout([]int64{0, n / 2, n})
		if err != nil {
			t.Fatal(err)
		}
		local := tensor.New(n/2, dim)
		st, err := NewStore(comms[0], layout, dim, local, nil, 1)
		if err != nil {
			t.Fatal(err)
		}

		errCh := make(chan error, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Gather panicked on corrupt peer request %d: %v", evil, r)
					errCh <- nil
				}
			}()
			_, _, err := st.Gather(nil) // no requests of its own
			errCh <- err
		}()

		// Rank 1 by hand: collective 1 announces one request for rank 0,
		// collective 2 sends the out-of-range id.
		var cnt [8]byte
		binary.LittleEndian.PutUint32(cnt[0:], 1) // one id for rank 0
		if _, err := comms[1].AllToAll([][]byte{cnt[0:4], nil}); err != nil {
			t.Fatal(err)
		}
		var ids [4]byte
		binary.LittleEndian.PutUint32(ids[:], uint32(evil))
		if _, err := comms[1].AllToAll([][]byte{ids[:], nil}); err != nil {
			t.Fatal(err)
		}

		select {
		case err := <-errCh:
			if err == nil || !strings.Contains(err.Error(), "not owned here") {
				t.Fatalf("corrupt request %d: got %v, want a not-owned error", evil, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("corrupt request %d: Gather still blocked", evil)
		}
		if live := st.Live(); live != 0 {
			t.Fatalf("corrupt request %d: %d pooled matrices leaked", evil, live)
		}
		comms[0].Close()
	}
}
