package dist

import "unsafe"

// Zero-copy wire conversions. The feature-gather hot path reinterprets
// int32/float32 slices as their byte payloads (and back) instead of
// encoding element by element, so a request list or a feature row crosses
// the transport with exactly one copy (the transport's own send copy).
//
// The views use host byte order. Every supported deployment of this
// reproduction runs all ranks inside one process (channel or loopback-TCP
// transport), so encoder and decoder always agree; the little-endian
// framing used for counts matches on the amd64/arm64 targets. The returned
// slices alias their argument — they are views, not copies — and payloads
// handed to AllToAll are only read until the collective returns.

// i32AsBytes returns the byte view of x.
func i32AsBytes(x []int32) []byte {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x))
}

// bytesAsI32 returns the int32 view of b (truncating any partial trailing
// element). b must be 4-byte aligned, which heap-allocated payloads of
// element size ≥ 4 always are.
func bytesAsI32(b []byte) []int32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// f32AsBytes returns the byte view of x.
func f32AsBytes(x []float32) []byte {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x))
}

// bytesAsF32 returns the float32 view of b (truncating any partial
// trailing element). Alignment as for bytesAsI32.
func bytesAsF32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}
