package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"
)

// Zero-copy wire conversions. The feature-gather hot path reinterprets
// int32/float32 slices as their byte payloads (and back) instead of
// encoding element by element, so a request list or a feature row crosses
// the transport with exactly one copy (the transport's own send copy).
//
// The views use host byte order. Every supported deployment of this
// reproduction runs all ranks inside one process (channel or loopback-TCP
// transport), so encoder and decoder always agree; the little-endian
// framing used for counts matches on the amd64/arm64 targets. The returned
// slices alias their argument — they are views, not copies — and payloads
// handed to AllToAll are only read until the collective returns.

// maxFrame bounds a single transport frame (1 GiB). Feature payloads at
// reproduction scale are a few MiB; anything beyond the bound is treated
// as a corrupt or hostile header rather than allocated.
const maxFrame = 1 << 30

// decodeFrame reads one length-prefixed frame from r: a little-endian u32
// length followed by that many payload bytes. It returns an error — never
// panics, never allocates more than the bytes actually present — on
// corrupt input: the payload buffer grows incrementally in bounded chunks
// while reading, so a lying length prefix on a truncated stream costs at
// most one chunk. This is the TCP transport's receive path and the fuzz
// surface of FuzzFrameDecode.
func decodeFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, nil
	}
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	// Fill the current capacity, then grow geometrically (doubling, capped
	// at n): a truthful header costs O(log(n/64Ki)) allocations with at
	// most 2x total copy traffic on this hot receive path, while a lying
	// header on a truncated stream allocates at most ~2x the bytes
	// actually read plus one 64 KiB floor — growth only happens after the
	// previous capacity was really received.
	const chunk = 64 << 10
	buf := make([]byte, 0, min(int(n), chunk))
	for len(buf) < int(n) {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), min(int(n), 2*cap(buf)))
			copy(grown, buf)
			buf = grown
		}
		lo := len(buf)
		hi := min(int(n), cap(buf))
		buf = buf[:hi]
		if _, err := io.ReadFull(r, buf[lo:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// i32AsBytes returns the byte view of x.
func i32AsBytes(x []int32) []byte {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x))
}

// bytesAsI32 returns the int32 view of b (truncating any partial trailing
// element). b must be 4-byte aligned, which heap-allocated payloads of
// element size ≥ 4 always are.
func bytesAsI32(b []byte) []int32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// f32AsBytes returns the byte view of x.
func f32AsBytes(x []float32) []byte {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), 4*len(x))
}

// bytesAsF32 returns the float32 view of b (truncating any partial
// trailing element). Alignment as for bytesAsI32.
func bytesAsF32(b []byte) []float32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}
