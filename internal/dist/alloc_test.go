package dist

import (
	"testing"

	"salientpp/internal/tensor"
)

// TestGatherAllocationFree is the allocation-regression guard for the warm
// feature-gather path: pooled output matrix, reused request lists and
// payload buffers, zero-copy encode/decode, and recycled transport
// receive slices. A single-rank group keeps the assertion deterministic —
// cross-rank payloads pay exactly one transport-owned copy, which is the
// documented floor, not a regression.
func TestGatherAllocationFree(t *testing.T) {
	const n, dim = 256, 16
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	layout, err := NewLayout([]int64{0, n})
	if err != nil {
		t.Fatal(err)
	}
	local := tensor.New(n, dim)
	for i := range local.Data {
		local.Data[i] = float32(i)
	}
	st, err := NewStore(comms[0], layout, dim, local, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int32, 64)
	for i := range ids {
		ids[i] = int32((i * 37) % n)
	}
	step := func() {
		out, _, err := st.Gather(ids)
		if err != nil {
			t.Fatal(err)
		}
		st.Release(out)
	}
	for i := 0; i < 3; i++ {
		step() // warm the pool and scratch
	}
	allocs := testing.AllocsPerRun(100, step)
	if allocs != 0 {
		t.Fatalf("warm Gather allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkGatherWarm measures the steady-state local gather path; run
// with -benchmem to confirm 0 B/op.
func BenchmarkGatherWarm(b *testing.B) {
	const n, dim = 4096, 128
	comms, err := NewLocalGroup(1)
	if err != nil {
		b.Fatal(err)
	}
	defer comms[0].Close()
	layout, err := NewLayout([]int64{0, n})
	if err != nil {
		b.Fatal(err)
	}
	local := tensor.New(n, dim)
	st, err := NewStore(comms[0], layout, dim, local, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int32, 1024)
	for i := range ids {
		ids[i] = int32((i * 131) % n)
	}
	if out, _, err := st.Gather(ids); err != nil {
		b.Fatal(err)
	} else {
		st.Release(out) // warm the pool so B/op reflects steady state
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := st.Gather(ids)
		if err != nil {
			b.Fatal(err)
		}
		st.Release(out)
	}
	b.SetBytes(int64(len(ids) * dim * 4))
}

// TestGatherSortedRequestsCorrect verifies that sorting per-peer request
// lists (for sequential owner-side shard reads) still scatters every reply
// into the right output row, including duplicate remote ids.
func TestGatherSortedRequestsCorrect(t *testing.T) {
	const dim = 4
	layout, err := NewLayout([]int64{0, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	full := tensor.New(16, dim)
	for v := 0; v < 16; v++ {
		for j := 0; j < dim; j++ {
			full.Set(v, j, float32(100*v+j))
		}
	}
	stores := make([]*Store, 2)
	for r := 0; r < 2; r++ {
		local := tensor.New(8, dim)
		for i := 0; i < 8; i++ {
			copy(local.Row(i), full.Row(r*8+i))
		}
		st, err := NewStore(comms[r], layout, dim, local, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}
	// Rank 0 asks for remote rows in descending, interleaved, duplicated
	// order; the store sorts the request list internally.
	ids := []int32{15, 9, 12, 9, 2, 14, 0, 15}
	done := make(chan error, 1)
	go func() {
		_, _, err := stores[1].Gather(nil)
		done <- err
	}()
	out, stats, err := stores[0].Gather(ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if stats.RemoteFetch != 6 || stats.RemoteByPeer[1] != 6 {
		t.Fatalf("stats: %+v", stats)
	}
	for i, v := range ids {
		for j := 0; j < dim; j++ {
			if out.At(i, j) != full.At(int(v), j) {
				t.Fatalf("row %d (vertex %d): got %v want %v", i, v, out.Row(i), full.Row(int(v)))
			}
		}
	}
	stores[0].Release(out)
}
