package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

func TestMemberFrameRoundTrip(t *testing.T) {
	cases := []MemberFrame{
		{Gen: 0, Rank: 0},
		{Gen: 7, Rank: 3, Steps: []MemberStep{{Epoch: 2, Round: 14}}},
		{Gen: 0xffffffff, Rank: 255, Steps: []MemberStep{
			{Epoch: 5, Round: 0}, {Epoch: 4, Round: 120}, {Epoch: 4, Round: 60},
		}},
	}
	for _, want := range cases {
		b, err := AppendMemberFrame(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeMemberFrame(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Gen != want.Gen || got.Rank != want.Rank || len(got.Steps) != len(want.Steps) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		for i := range want.Steps {
			if got.Steps[i] != want.Steps[i] {
				t.Fatalf("step %d: got %+v want %+v", i, got.Steps[i], want.Steps[i])
			}
		}
	}
}

func TestMemberFrameEncodeRejects(t *testing.T) {
	if _, err := AppendMemberFrame(nil, MemberFrame{Rank: -1}); err == nil {
		t.Fatal("negative rank encoded")
	}
	if _, err := AppendMemberFrame(nil, MemberFrame{Steps: make([]MemberStep, MaxMemberSteps+1)}); err == nil {
		t.Fatal("over-long step list encoded")
	}
	if _, err := AppendMemberFrame(nil, MemberFrame{Steps: []MemberStep{{Epoch: -1}}}); err == nil {
		t.Fatal("negative step encoded")
	}
}

func TestMemberFrameDecodeRejects(t *testing.T) {
	good, err := AppendMemberFrame(nil, MemberFrame{Gen: 1, Rank: 2, Steps: []MemberStep{{Epoch: 1, Round: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		good[:memberFrameFixed-1],               // truncated fixed header
		good[:len(good)-1],                      // truncated step
		append([]byte(nil), good[:16]...),       // count says 1, no step bytes
		append(append([]byte(nil), good...), 0), // trailing byte
	}
	wrongMagic := append([]byte(nil), good...)
	wrongMagic[0] = 'X'
	bad = append(bad, wrongMagic)
	// A lying count field: claims MaxMemberSteps+1.
	lying := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(lying[12:], MaxMemberSteps+1)
	bad = append(bad, lying)
	for i, b := range bad {
		if _, err := DecodeMemberFrame(b); err == nil {
			t.Fatalf("case %d: corrupt frame %x decoded", i, b)
		}
	}
}

func TestRecoverableClassification(t *testing.T) {
	if !Recoverable(ErrTimeout) || !Recoverable(ErrClosed) {
		t.Fatal("sentinels must be recoverable")
	}
	if Recoverable(errors.New("pipeline: checkpoint save failed")) {
		t.Fatal("arbitrary errors must not be recoverable")
	}
	// A closed local group surfaces ErrClosed through the wrapper chain.
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	comms[0].Close()
	_, err = comms[1].AllToAll([][]byte{{1}, {2}})
	if !Recoverable(err) || !errors.Is(err, ErrClosed) {
		t.Fatalf("closed-group error %v must classify as ErrClosed", err)
	}
}

// TestChaosKillTakesDownThePair pins WrapPair's shared fate: killing the
// schedule fails the next collective on either half and closes both inner
// groups, so peers blocked on the sibling communicator unwind too.
func TestChaosKillTakesDownThePair(t *testing.T) {
	feat, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{})
	f0, g0 := ch.WrapPair(feat[0], grad[0])

	// Healthy first: a collective passes through.
	done := make(chan error, 1)
	go func() {
		_, err := feat[1].AllToAll([][]byte{{0}, {0}})
		done <- err
	}()
	if _, err := f0.AllToAll([][]byte{{0}, {0}}); err != nil {
		t.Fatalf("healthy collective failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("healthy peer failed: %v", err)
	}

	ch.Kill()
	if _, err := f0.AllToAll([][]byte{{0}, {0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("killed collective returned %v, want ErrClosed", err)
	}
	// The gradient group must be dead too — that is the pair contract.
	if err := grad[1].AllReduceSum([]float32{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("sibling gradient group survived the kill: %v", err)
	}
	if err := g0.AllReduceSum([]float32{1}); err == nil {
		t.Fatal("killed rank's gradient wrapper still works")
	}
}

// TestChaosStallTimeoutPoisonsPair pins the stall path on a pair: a
// stalled collective that exceeds the member's timeout fails with
// ErrTimeout and closes both halves.
func TestChaosStallTimeoutPoisonsPair(t *testing.T) {
	feat, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(ChaosConfig{})
	f0, g0 := ch.WrapPair(feat[0], grad[0])
	f0.SetTimeout(20 * time.Millisecond)
	ch.Stall()
	_, err = f0.AllToAll([][]byte{{1}})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled collective returned %v, want ErrTimeout", err)
	}
	if err := g0.AllReduceSum([]float32{1}); err == nil {
		t.Fatal("sibling survived the stall-timeout poison")
	}
}

// TestMemberFrameAppendReuse pins that encoding into a reused buffer
// produces the same bytes as a fresh encode (the agreement round reuses
// its scratch).
func TestMemberFrameAppendReuse(t *testing.T) {
	buf := make([]byte, 0, 64)
	a, err := AppendMemberFrame(buf, MemberFrame{Gen: 1, Rank: 0, Steps: []MemberStep{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendMemberFrame(nil, MemberFrame{Gen: 1, Rank: 0, Steps: []MemberStep{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("append into reused buffer differs from fresh encode")
	}
}
