package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"salientpp/internal/tensor"
)

// gradTestMats builds a small two-layer-ish gradient set with a seeded,
// reproducible fill. Values are scaled to look like real gradients
// (mostly small, a few outliers) so int8 row scales are exercised.
func gradTestMats(seed int64, shapes [][2]int) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	mats := make([]*tensor.Matrix, len(shapes))
	for i, s := range shapes {
		m := tensor.New(s[0], s[1])
		for j := range m.Data {
			v := float32(rng.NormFloat64()) * 0.01
			if rng.Intn(50) == 0 {
				v *= 40 // occasional outlier stresses the per-row scale
			}
			m.Data[j] = v
		}
		mats[i] = m
	}
	return mats
}

func newResiduals(mats []*tensor.Matrix) [][]float32 {
	res := make([][]float32, len(mats))
	for i, m := range mats {
		res[i] = make([]float32, len(m.Data))
	}
	return res
}

// TestGradReduceFP32MatchesAllReduce pins that the fp32 reducer is the
// historical raw all-reduce: same values, bitwise, on every rank.
func TestGradReduceFP32MatchesAllReduce(t *testing.T) {
	const k = 3
	shapes := [][2]int{{8, 16}, {16, 4}, {1, 4}}
	comms, err := NewLocalGroup(k)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	perRank := make([][]*tensor.Matrix, k)
	for r := 0; r < k; r++ {
		perRank[r] = gradTestMats(int64(100+r), shapes)
	}
	// Reference: flatten each rank's tensors and sum contributions in rank
	// order — exactly what Comm.AllReduceSum documents.
	var want []float32
	for _, m := range perRank[0] {
		want = append(want, make([]float32, len(m.Data))...)
	}
	for src := 0; src < k; src++ {
		off := 0
		for _, m := range perRank[src] {
			for j, v := range m.Data {
				want[off+j] += v
			}
			off += len(m.Data)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			gr := NewGradReducer(comms[r], CodecFP32)
			errs[r] = gr.Reduce(perRank[r], nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < k; r++ {
		off := 0
		for mi, m := range perRank[r] {
			for j, v := range m.Data {
				if math.Float32bits(v) != math.Float32bits(want[off+j]) {
					t.Fatalf("rank %d tensor %d[%d]: got %g want %g (not bitwise)", r, mi, j, v, want[off+j])
				}
			}
			off += len(m.Data)
		}
	}
}

// TestGradReduceLossyBitwiseAcrossRanks pins the determinism contract for
// compressed reduces: after any number of rounds, every rank holds the
// identical reduced gradient and the identical residual, bitwise.
func TestGradReduceLossyBitwiseAcrossRanks(t *testing.T) {
	for _, codec := range []Codec{CodecFP16, CodecInt8} {
		t.Run(codec.String(), func(t *testing.T) {
			const k, rounds = 2, 5
			shapes := [][2]int{{12, 8}, {8, 3}}
			comms, err := NewLocalGroup(k)
			if err != nil {
				t.Fatal(err)
			}
			defer comms[0].Close()
			perRank := make([][]*tensor.Matrix, k)
			perRes := make([][][]float32, k)
			for r := 0; r < k; r++ {
				perRank[r] = gradTestMats(int64(7+r), shapes)
				perRes[r] = newResiduals(perRank[r])
			}
			var wg sync.WaitGroup
			errs := make([]error, k)
			for r := 0; r < k; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					gr := NewGradReducer(comms[r], codec)
					for round := 0; round < rounds; round++ {
						if errs[r] = gr.Reduce(perRank[r], perRes[r]); errs[r] != nil {
							return
						}
						// Next round's "fresh gradient": perturb the reduced
						// value deterministically so state keeps evolving.
						for _, m := range perRank[r] {
							for j := range m.Data {
								m.Data[j] = m.Data[j]*0.5 + float32(j%5)*1e-3
							}
						}
					}
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			for r := 1; r < k; r++ {
				for mi := range perRank[0] {
					for j := range perRank[0][mi].Data {
						a := math.Float32bits(perRank[0][mi].Data[j])
						b := math.Float32bits(perRank[r][mi].Data[j])
						if a != b {
							t.Fatalf("rank %d tensor %d[%d] diverged: %08x vs %08x", r, mi, j, a, b)
						}
					}
				}
			}
		})
	}
}

// TestGradReduceErrorFeedback pins the telescoping property that makes
// lossy gradient compression safe: with error feedback, the accumulated
// decoded gradient over T rounds of a constant true gradient g differs
// from T*g by at most one quantization step (the in-flight residual),
// independent of T — while naive quantization without feedback accumulates
// bias linearly in T.
func TestGradReduceErrorFeedback(t *testing.T) {
	const rounds = 64
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	gr := NewGradReducer(comms[0], CodecInt8)

	// A gradient whose values are deliberately off-grid for the int8 scale
	// so every round has persistent rounding bias for naive quantization.
	const dim = 16
	g := make([]float32, dim)
	for i := range g {
		g[i] = 0.001 + 0.0001*float32(i) // maxAbs ~0.0025 → step ~2e-5
	}
	g[dim-1] = 0.0025

	m := tensor.New(1, dim)
	res := newResiduals([]*tensor.Matrix{m})
	accEF := make([]float64, dim)
	accNaive := make([]float64, dim)
	naiveRow := make([]float32, dim)
	for round := 0; round < rounds; round++ {
		copy(m.Data, g)
		if err := gr.Reduce([]*tensor.Matrix{m}, res); err != nil {
			t.Fatal(err)
		}
		for i, v := range m.Data {
			accEF[i] += float64(v)
		}
		CodecInt8.roundTripRow(naiveRow, g)
		for i, v := range naiveRow {
			accNaive[i] += float64(v)
		}
	}
	scale := tensor.Int8RowScale(g)
	step := float64(scale) // one int8 quantization step at this row's scale
	var worstEF, worstNaive float64
	for i := range g {
		target := float64(rounds) * float64(g[i])
		if d := math.Abs(accEF[i] - target); d > worstEF {
			worstEF = d
		}
		if d := math.Abs(accNaive[i] - target); d > worstNaive {
			worstNaive = d
		}
	}
	if worstEF > step {
		t.Fatalf("error-feedback drift %g exceeds one quant step %g after %d rounds", worstEF, step, rounds)
	}
	if worstNaive <= worstEF {
		t.Fatalf("naive quantization drift %g should exceed error-feedback drift %g on an off-grid gradient", worstNaive, worstEF)
	}
}

// TestGradReduceCrossTransport pins that a multi-round compressed reduce
// produces bitwise-identical weights-in-waiting on the in-process and TCP
// transports: the payload is identical bytes, the sum identical order.
func TestGradReduceCrossTransport(t *testing.T) {
	const k, rounds = 2, 3
	shapes := [][2]int{{10, 6}, {6, 2}}
	run := func(newGroup func(int) ([]Comm, error)) [][]*tensor.Matrix {
		comms, err := newGroup(k)
		if err != nil {
			t.Fatal(err)
		}
		defer comms[0].Close()
		perRank := make([][]*tensor.Matrix, k)
		perRes := make([][][]float32, k)
		for r := 0; r < k; r++ {
			perRank[r] = gradTestMats(int64(31+r), shapes)
			perRes[r] = newResiduals(perRank[r])
		}
		var wg sync.WaitGroup
		errs := make([]error, k)
		for r := 0; r < k; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				gr := NewGradReducer(comms[r], CodecInt8)
				for round := 0; round < rounds; round++ {
					if errs[r] = gr.Reduce(perRank[r], perRes[r]); errs[r] != nil {
						return
					}
					for _, m := range perRank[r] {
						for j := range m.Data {
							m.Data[j] = m.Data[j]*0.25 + float32((j+round)%3)*1e-3
						}
					}
				}
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return perRank
	}
	local := run(NewLocalGroup)
	tcp := run(NewTCPGroup)
	for r := 0; r < k; r++ {
		for mi := range local[r] {
			for j := range local[r][mi].Data {
				a := math.Float32bits(local[r][mi].Data[j])
				b := math.Float32bits(tcp[r][mi].Data[j])
				if a != b {
					t.Fatalf("rank %d tensor %d[%d]: local %08x vs tcp %08x", r, mi, j, a, b)
				}
			}
		}
	}
}

// TestGradReduceValidation pins that malformed inputs error instead of
// panicking or reading garbage: missing/short residuals locally, and
// mismatched shapes across ranks (which surface as payload-length errors
// on every rank, the loud failure the codec doc promises).
func TestGradReduceValidation(t *testing.T) {
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	gr := NewGradReducer(comms[0], CodecInt8)
	m := tensor.New(2, 4)
	if err := gr.Reduce([]*tensor.Matrix{m}, nil); err == nil {
		t.Fatal("want error for missing residuals")
	}
	if err := gr.Reduce([]*tensor.Matrix{m}, [][]float32{make([]float32, 3)}); err == nil {
		t.Fatal("want error for short residual")
	}

	mis, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mis[0].Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cols := 4 + r // shape drift between ranks
			mm := tensor.New(2, cols)
			gr := NewGradReducer(mis[r], CodecInt8)
			errs[r] = gr.Reduce([]*tensor.Matrix{mm}, newResiduals([]*tensor.Matrix{mm}))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: want payload-length error for mismatched shapes", r)
		}
	}
}

// TestGradReduceAllocationFree is the allocation-regression guard for the
// warm per-round reduce, in both raw and compressed form. A single-rank
// group keeps the assertion deterministic — cross-rank payloads pay
// exactly one transport-owned copy, the same documented floor as Gather.
func TestGradReduceAllocationFree(t *testing.T) {
	for _, codec := range []Codec{CodecFP32, CodecInt8} {
		t.Run(codec.String(), func(t *testing.T) {
			comms, err := NewLocalGroup(1)
			if err != nil {
				t.Fatal(err)
			}
			defer comms[0].Close()
			gr := NewGradReducer(comms[0], codec)
			mats := gradTestMats(5, [][2]int{{16, 32}, {32, 8}})
			res := newResiduals(mats)
			step := func() {
				if err := gr.Reduce(mats, res); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Fatalf("warm %s Reduce allocated %.1f times per run, want 0", codec, allocs)
			}
		})
	}
}

// TestGradWireSize pins the wire arithmetic behind the ≥50% (fp16) and
// ~73% (int8) gradient byte cuts the bench columns record: bytes per
// encoded row for the hidden widths the reference model actually uses.
func TestGradWireSize(t *testing.T) {
	for _, tc := range []struct {
		codec Codec
		dim   int
		want  int
	}{
		{CodecFP32, 64, 256},
		{CodecFP16, 64, 128}, // exactly 0.5×
		{CodecInt8, 64, 68},  // (4+64)/256 ≈ 0.27×
		{CodecInt8, 32, 36},  // (4+32)/128 ≈ 0.28×
	} {
		if got := tc.codec.featRowWire(tc.dim); got != tc.want {
			t.Errorf("%s featRowWire(%d) = %d, want %d", tc.codec, tc.dim, got, tc.want)
		}
	}
}
