package dist

import (
	"reflect"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/tensor"
)

// epochTrace is everything observable about one rank's online-cache run:
// the per-round gather classification, every installed membership in
// install order, and the final epoch (generation + membership).
type epochTrace struct {
	Rounds   [][2]int64 // per round: {cache hits, remote fetches}
	Installs [][]int32  // membership of each installed epoch, in order
	FinalGen uint64
	FinalIDs []int32
}

// runOnlineCacheScript drives a scripted online-cache serving loop over a
// 2-rank store pair on the given transport: seeded static epochs, a
// deterministic per-rank gather stream, an Online policy observing every
// round, and a synchronous propose→build→install→release cycle every two
// rounds. Returns one trace per rank.
func runOnlineCacheScript(t *testing.T, mk func(k int) ([]Comm, error)) []epochTrace {
	t.Helper()
	const (
		k      = 2
		n      = 8
		dim    = 3
		rounds = 24
	)
	layout, err := NewLayout([]int64{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.New(n, dim)
	for v := 0; v < n; v++ {
		for j := 0; j < dim; j++ {
			full.Set(v, j, float32(v*10+j))
		}
	}
	comms, err := mk(k)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	type rankState struct {
		store *Store
		inst  *cache.Installer
	}
	ranks := make([]rankState, k)
	for r := 0; r < k; r++ {
		local := tensor.New(4, dim)
		for i := 0; i < 4; i++ {
			copy(local.Row(i), full.Row(r*4+i))
		}
		// Remote vertices in seed-priority order; cache the first two.
		base := int32((1 - r) * 4)
		seedRanking := []int32{base, base + 1, base + 2, base + 3}
		cc, err := cache.Build(seedRanking[:2], n)
		if err != nil {
			t.Fatal(err)
		}
		cdata := tensor.New(2, dim)
		for i := 0; i < 2; i++ {
			copy(cdata.Row(i), full.Row(int(seedRanking[i])))
		}
		ep, err := cache.NewEpoch(cc, cdata)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStore(comms[r], layout, dim, local, ep, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		builder, err := cache.NewEpochBuilder(n, dim, func(v int32) []float32 { return full.Row(int(v)) })
		if err != nil {
			t.Fatal(err)
		}
		pol, err := cache.NewOnline(n, seedRanking, nil, cache.OnlineConfig{HalfLife: 4})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := cache.NewInstaller(pol, builder, 2)
		if err != nil {
			t.Fatal(err)
		}
		ranks[r] = rankState{store: st, inst: inst}
	}

	traces := make([]epochTrace, k)
	runGroup(t, comms, func(c Comm) error {
		r := c.Rank()
		rs := ranks[r]
		tr := &traces[r]
		for round := 0; round < rounds; round++ {
			// Deterministic drifting stream: each rank keeps hammering a
			// remote vertex that rotates every few rounds, plus one local id.
			base := int32((1 - r) * 4)
			hot := base + int32(round/6)%4
			ids := []int32{int32(r * 4), hot}
			if ids[0] > ids[1] {
				ids[0], ids[1] = ids[1], ids[0]
			}
			feats, stats, err := rs.store.Gather(ids)
			if err != nil {
				return err
			}
			rs.store.Release(feats)
			rs.inst.Observe(cache.RoundAccess{Hits: stats.CacheHitIDs, Misses: stats.RemoteIDs})
			tr.Rounds = append(tr.Rounds, [2]int64{int64(stats.CacheHits), int64(stats.RemoteFetch)})
			if (round+1)%2 == 0 {
				next, _, err := rs.inst.Next(rs.store.Epoch())
				if err != nil {
					return err
				}
				if next != nil {
					tr.Installs = append(tr.Installs, append([]int32(nil), next.IDs()...))
					displaced, err := rs.store.InstallEpoch(next)
					if err != nil {
						return err
					}
					rs.inst.Release(displaced)
				}
			}
		}
		tr.FinalGen = rs.store.CacheGen()
		tr.FinalIDs = append([]int32(nil), rs.store.Epoch().IDs()...)
		return nil
	})

	// Leak check: release the installed epoch; the builders must drain.
	for r := range ranks {
		ranks[r].inst.Release(ranks[r].store.Epoch())
		if live := ranks[r].inst.Live(); live != 0 {
			t.Fatalf("rank %d: %d epochs live after release", r, live)
		}
		if live := ranks[r].store.Live(); live != 0 {
			t.Fatalf("rank %d: %d gather matrices live", r, live)
		}
	}
	return traces
}

// TestOnlineCacheCrossTransportDeterminism runs the identical scripted
// online-cache loop over the in-process and the loopback-TCP transports
// and requires bitwise-identical traces: same per-round gather
// classification, same installed memberships in the same order, same
// final generation. This is the Policy determinism contract surfacing end
// to end — the transport must be invisible to the cache layer.
func TestOnlineCacheCrossTransportDeterminism(t *testing.T) {
	local := runOnlineCacheScript(t, NewLocalGroup)
	tcp := runOnlineCacheScript(t, NewTCPGroup)
	for r := range local {
		if len(local[r].Installs) == 0 {
			t.Fatalf("rank %d: the drifting stream triggered no installs — the script is not exercising the swap path", r)
		}
		if !reflect.DeepEqual(local[r], tcp[r]) {
			t.Fatalf("rank %d traces diverge across transports:\nlocal %+v\ntcp   %+v", r, local[r], tcp[r])
		}
	}
}
