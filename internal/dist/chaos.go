package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"salientpp/internal/rng"
)

// Chaos is a reusable fault-injection harness for communicator groups: a
// shared, seeded schedule of stalls, rank deaths, and slowdowns that any
// number of Comm wrappers (Wrap) consult on every collective. It grew out
// of the ad-hoc killComm wrappers behind ClusterConfig.WrapComm (PR 4's
// crash-recovery tests) into something serving tests can drive: because
// the schedule state lives here — not in any one wrapper — it survives the
// serving layer discarding a poisoned comm group and re-wrapping a fresh
// one, so "the rank is still stalled" holds across regroups exactly as a
// wedged NIC would.
//
// Faults compose: a collective first checks the death schedule, then the
// stall gate, then the seeded slow-peer delay, then the optional simnet
// link shaping, and only then reaches the real transport.
type Chaos struct {
	cfg   ChaosConfig
	calls atomic.Int64 // collective counter shared by every wrapper
	start time.Time    // clock origin for the simnet link

	mu      sync.Mutex
	stalled bool
	clearCh chan struct{} // closed by Clear; waiters block on it while stalled

	// killed, once set, makes every wrapped collective fail permanently
	// (see Kill) — the manual counterpart of DropAtCall for faults that
	// must land at an external event (a checkpoint file appearing, a
	// wall-clock mark) rather than at a collective count.
	killed atomic.Bool

	linkMu sync.Mutex // simnet.Link is single-threaded; serialize wrappers
}

// ChaosConfig is a seeded fault schedule. Zero values disable each fault.
type ChaosConfig struct {
	// Seed drives the slow-peer coin flips; wrappers derive per-rank
	// streams from it so a schedule is reproducible across runs.
	Seed uint64
	// StallAtCall, when > 0, trips the stall gate once the shared
	// collective counter reaches it (equivalent to calling Stall then) —
	// every wrapped comm blocks as if its NIC wedged, until Clear, its
	// member's timeout, or Close.
	StallAtCall int64
	// DropAtCall, when > 0, kills the wrapped rank from that collective
	// on: the wrapper closes its group and fails every call, permanently —
	// a crashed machine, not a transient stall.
	DropAtCall int64
	// SlowEveryN, when > 0, makes roughly one in N collectives sleep
	// SlowDelay before proceeding (seeded, per-wrapper stream).
	SlowEveryN int
	SlowDelay  time.Duration
	// Link, when set, charges every collective's send bytes to a simnet
	// link (bandwidth + latency + optional token-bucket shaping) and
	// sleeps until the simulated completion time, so a chaos schedule can
	// also model a uniformly slow network rather than a misbehaving rank.
	Link linkShaper
}

// linkShaper is the subset of simnet.Link the chaos harness uses,
// abstracted so dist does not depend on simnet's concrete type (the
// experiments layer passes a *simnet.Link directly — it satisfies this).
type linkShaper interface {
	Transfer(now float64, bytes int64) float64
}

// NewChaos returns a harness over the given schedule.
func NewChaos(cfg ChaosConfig) *Chaos {
	return &Chaos{cfg: cfg, start: time.Now()}
}

// Stall trips the stall gate manually: every wrapped collective blocks
// until Clear (or its member's timeout/Close). Idempotent.
func (c *Chaos) Stall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stalled {
		c.stalled = true
		c.clearCh = make(chan struct{})
	}
}

// Clear releases the stall gate; blocked collectives proceed into their
// real transport. Idempotent.
func (c *Chaos) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stalled {
		c.stalled = false
		close(c.clearCh)
	}
}

// Stalled reports whether the stall gate is currently tripped.
func (c *Chaos) Stalled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalled
}

// Kill trips the death gate manually: from now on every wrapped collective
// closes its group and fails permanently, exactly as DropAtCall would at a
// collective count. Like the rest of the schedule the state lives in the
// harness, so the rank stays dead across regroups and re-wraps — a crashed
// machine does not come back because the survivors built a new group.
// Idempotent.
func (c *Chaos) Kill() { c.killed.Store(true) }

// Killed reports whether the death gate has been tripped (by Kill or by
// the DropAtCall schedule reaching its collective).
func (c *Chaos) Killed() bool { return c.killed.Load() }

// Calls returns the shared collective counter (for tests asserting a
// schedule actually fired).
func (c *Chaos) Calls() int64 { return c.calls.Load() }

// stallGate returns the channel a stalled wrapper must wait on, or nil
// when the gate is open.
func (c *Chaos) stallGate() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stalled {
		return nil
	}
	return c.clearCh
}

// Wrap returns inner with the harness's fault schedule applied to every
// collective. Wrap any member of a group, or several members of several
// groups — the schedule is shared. The wrapper honors the member's
// SetTimeout during a stall (the stall models a wedged NIC: the deadline
// still fires), and a stall that trips the deadline closes the inner
// group, matching both transports' timeout-poisons-the-group contract.
func (c *Chaos) Wrap(inner Comm) Comm {
	return &ChaosComm{
		inner:     inner,
		chaos:     c,
		rng:       rng.New(c.cfg.Seed).Split(uint64(inner.Rank())),
		closeOnce: new(sync.Once),
		closed:    make(chan struct{}),
	}
}

// WrapPair wraps one rank's feature and gradient communicators under a
// shared fate: a death, stall-timeout, or Close on either wrapper closes
// both inner groups, exactly as a dying machine takes all of its sockets
// with it. This is what the training path needs — the pipeline issues
// gathers on one communicator and gradient all-reduces on the other, and
// killing only one of them would leave peers deadlocked in unmatched
// collectives on the survivor. The schedule (counter, stall gate, death
// gate) is the harness's, shared with every other wrapper it has issued.
func (c *Chaos) WrapPair(feat, grad Comm) (Comm, Comm) {
	f := c.Wrap(feat).(*ChaosComm)
	g := c.Wrap(grad).(*ChaosComm)
	f.buddy, g.buddy = grad, feat
	// One close state for the pair: poisoning either half unblocks a stall
	// wait on the other, so a sibling never waits out a gate its machine
	// already died under.
	g.closeOnce, g.closed = f.closeOnce, f.closed
	return f, g
}

// ChaosComm is one wrapped communicator; see Chaos.Wrap.
type ChaosComm struct {
	inner   Comm
	chaos   *Chaos
	rng     *rng.RNG
	timeout time.Duration

	// buddy, when set by WrapPair, is the sibling communicator (the other
	// half of the rank's feat/grad pair) closed alongside this one.
	buddy Comm

	// closeOnce and closed are shared between the two halves of a WrapPair
	// (pointer/channel identity), so either half's poison unblocks both.
	closeOnce *sync.Once
	closed    chan struct{} // unblocks a stall wait when the member closes
	stopWatch chan struct{} // cancels the SetAbort watcher
}

// Rank delegates to the wrapped member.
func (c *ChaosComm) Rank() int { return c.inner.Rank() }

// Size delegates to the wrapped member.
func (c *ChaosComm) Size() int { return c.inner.Size() }

// BytesSent delegates to the wrapped member; chaos faults charge no bytes.
func (c *ChaosComm) BytesSent() int64 { return c.inner.BytesSent() }

// Close closes the wrapped member (and, for a WrapPair sibling, the other
// half of the pair) and unblocks any collective waiting out a stall on
// this member.
func (c *ChaosComm) Close() {
	c.closeOnce.Do(func() { close(c.closed) })
	c.inner.Close()
	if c.buddy != nil {
		c.buddy.Close()
	}
}

// SetTimeout bounds collectives on the wrapped member and also caps how
// long an injected stall may hold a call before the group is poisoned,
// mirroring a transport-level timeout.
func (c *ChaosComm) SetTimeout(d time.Duration) {
	c.timeout = d
	c.inner.SetTimeout(d)
}

// SetAbort mirrors the transports' abort contract and additionally
// unblocks a collective waiting out a stall (the inner member's own abort
// cannot see it — the stalled call never reached the transport).
func (c *ChaosComm) SetAbort(abort <-chan struct{}) {
	if c.stopWatch != nil {
		close(c.stopWatch)
		c.stopWatch = nil
	}
	c.inner.SetAbort(abort)
	if abort == nil {
		return
	}
	c.stopWatch = make(chan struct{})
	watchAbort(abort, c.stopWatch, c.Close)
}

// inject runs the fault schedule ahead of one collective; a nil return
// means the call may proceed to the inner transport.
func (c *ChaosComm) inject() error {
	cfg := &c.chaos.cfg
	n := c.chaos.calls.Add(1)
	if c.chaos.killed.Load() || (cfg.DropAtCall > 0 && n >= cfg.DropAtCall) {
		c.chaos.killed.Store(true)
		c.Close()
		return fmt.Errorf("%w: chaos killed rank %d at collective %d", ErrClosed, c.inner.Rank(), n)
	}
	if cfg.StallAtCall > 0 && n >= cfg.StallAtCall {
		c.chaos.Stall()
	}
	if gate := c.chaos.stallGate(); gate != nil {
		var deadline <-chan time.Time
		var timer *time.Timer
		if c.timeout > 0 {
			timer = time.NewTimer(c.timeout)
			defer timer.Stop()
			deadline = timer.C
		}
		select {
		case <-gate:
			// Stall cleared in time: fall through to the real collective. If
			// peers already timed out meanwhile, the inner call fails on
			// their closed group — either way, no hang.
		case <-c.closed:
			return fmt.Errorf("%w during chaos stall (rank %d)", ErrClosed, c.inner.Rank())
		case <-deadline:
			// The member's deadline fired while the "NIC" was wedged: poison
			// the group exactly as a transport-level timeout would.
			c.Close()
			return fmt.Errorf("%w: chaos stall on rank %d exceeded %v", ErrTimeout, c.inner.Rank(), c.timeout)
		}
	}
	if cfg.SlowEveryN > 0 && c.rng.Intn(cfg.SlowEveryN) == 0 {
		time.Sleep(cfg.SlowDelay)
	}
	return nil
}

// shape charges bytes to the simnet link and sleeps to its verdict.
func (c *ChaosComm) shape(send [][]byte) {
	if c.chaos.cfg.Link == nil {
		return
	}
	var bytes int64
	for dst, p := range send {
		if dst != c.inner.Rank() {
			bytes += int64(len(p))
		}
	}
	c.chaos.linkMu.Lock()
	now := time.Since(c.chaos.start).Seconds()
	fin := c.chaos.cfg.Link.Transfer(now, bytes)
	c.chaos.linkMu.Unlock()
	if d := time.Duration((fin - now) * float64(time.Second)); d > 0 {
		time.Sleep(d)
	}
}

// AllToAll runs the fault schedule (drop, stall, slowdown, link shaping)
// ahead of the wrapped member's collective.
func (c *ChaosComm) AllToAll(send [][]byte) ([][]byte, error) {
	if err := c.inject(); err != nil {
		return nil, err
	}
	c.shape(send)
	return c.inner.AllToAll(send)
}

// AllReduceSum runs the fault schedule ahead of the wrapped member's
// reduce (link shaping applies only to AllToAll payloads).
func (c *ChaosComm) AllReduceSum(x []float32) error {
	if err := c.inject(); err != nil {
		return err
	}
	return c.inner.AllReduceSum(x)
}
