package dist

import (
	"runtime"
	"testing"
	"time"

	"salientpp/internal/tensor"
)

// waitGoroutines polls until the goroutine count drops back to at most
// baseline+slack, failing the test otherwise — the same leak-regression
// pattern as pipeline/failure_test.go.
func waitGoroutines(t *testing.T, baseline, slack int, context string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s leaked goroutines: %d > baseline %d\n%s",
				context, runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testAbortUnblocksGather blocks a Gather mid-collective (the peer never
// issues its matching call) and fires the abort channel installed with
// SetAbort: the in-flight gather must unwind promptly instead of
// deadlocking — the guarantee an online-serving loop relies on at
// shutdown.
func testAbortUnblocksGather(t *testing.T, mk func(k int) ([]Comm, error)) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	const n, dim = 32, 4
	comms, err := mk(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	defer comms[1].Close()
	layout, err := NewLayout([]int64{0, n / 2, n})
	if err != nil {
		t.Fatal(err)
	}
	local := tensor.New(n/2, dim)
	st, err := NewStore(comms[0], layout, dim, local, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	st.SetAbort(abort)

	// Request a remote row so the gather really blocks on rank 1, which
	// never answers.
	ids := []int32{n/2 + 1}
	done := make(chan error, 1)
	go func() {
		_, _, err := st.Gather(ids)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("gather finished without a peer: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(abort)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted gather returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gather still blocked 5s after abort: SetAbort did not unwind the collective")
	}
	// The group is torn down: future collectives fail instead of hanging.
	if _, _, err := st.Gather(ids); err == nil {
		t.Fatal("gather on an aborted group succeeded")
	}
	// Leak regression: both aborted gathers must hand their pooled output
	// matrices back (before the failGather cleanup they leaked from the
	// store pool), and every transport goroutine — abort watcher included
	// — must unwind once the group is closed.
	if live := st.Live(); live != 0 {
		t.Fatalf("aborted gathers leaked %d pooled matrices", live)
	}
	comms[0].Close()
	comms[1].Close()
	waitGoroutines(t, baseline, 2, "abort path")
}

func TestSetAbortUnblocksGatherLocal(t *testing.T) { testAbortUnblocksGather(t, NewLocalGroup) }
func TestSetAbortUnblocksGatherTCP(t *testing.T)   { testAbortUnblocksGather(t, NewTCPGroup) }

// TestSetAbortDetach verifies that replacing the abort channel detaches
// the previous watcher: firing the old channel afterwards must not tear
// the group down.
func TestSetAbortDetach(t *testing.T) {
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	old := make(chan struct{})
	comms[0].SetAbort(old)
	comms[0].SetAbort(nil)
	close(old)
	time.Sleep(10 * time.Millisecond) // give a leaked watcher time to misbehave
	if _, err := comms[0].AllToAll([][]byte{nil}); err != nil {
		t.Fatalf("group torn down by a detached abort channel: %v", err)
	}
}

// TestSiblingSharesDataNotScratch checks the concurrent read path: a
// sibling store over a second communicator group returns identical rows
// and classification while the original store keeps gathering.
func TestSiblingSharesDataNotScratch(t *testing.T) {
	const n, dim = 64, 8
	mkStore := func(comms []Comm) *Store {
		layout, err := NewLayout([]int64{0, n})
		if err != nil {
			t.Fatal(err)
		}
		local := tensor.New(n, dim)
		for i := range local.Data {
			local.Data[i] = float32(i)
		}
		st, err := NewStore(comms[0], layout, dim, local, nil, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	comms, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	st := mkStore(comms)
	comms2, err := NewLocalGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer comms2[0].Close()
	sib, err := st.Sibling(comms2[0])
	if err != nil {
		t.Fatal(err)
	}

	ids := []int32{1, 40, 63, 0}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			out, _, err := st.Gather(ids)
			if err != nil {
				done <- err
				return
			}
			st.Release(out)
		}
		done <- nil
	}()
	for i := 0; i < 50; i++ {
		out, stats, err := sib.Gather(ids)
		if err != nil {
			t.Fatal(err)
		}
		if stats.LocalGPU+stats.LocalCPU != len(ids) {
			t.Fatalf("sibling misclassified: %+v", stats)
		}
		for r, v := range ids {
			for c := 0; c < dim; c++ {
				if out.At(r, c) != float32(int(v)*dim+c) {
					t.Fatalf("sibling row %d wrong", r)
				}
			}
		}
		sib.Release(out)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
