package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"salientpp/internal/tensor"
)

// Codec selects the wire encoding of the two dominant Gather payloads: the
// per-peer request-id lists of collective 2 and the feature rows of
// collective 3. The cache reduces how many remote rows move; the codec
// reduces the bytes each remaining row costs — the residual communication
// Tripathy et al. and Jiang & Rumi identify as the scaling cost once
// caching saturates.
//
// All members of a comm group must configure the same codec (it is
// negotiated out of band through ClusterConfig/ServeConfig, exactly like
// the collective-matching discipline itself); the decode paths validate
// payload sizes, so a mismatched group fails loudly instead of reading
// garbage.
//
//   - CodecFP32: raw float32 rows and raw int32 id lists — byte-for-byte
//     the historical wire format, shipped through the existing zero-copy
//     slice views. The default.
//   - CodecFP16: IEEE-754 binary16 rows (round-to-nearest-even), 2 bytes
//     per value; id lists as sorted varint deltas. ~50% smaller feature
//     payloads with ~2^-11 relative precision — safe for normalized GNN
//     features.
//   - CodecInt8: per-row symmetric int8 quantization (a float32 scale
//     followed by dim int8 values, scale = maxAbs/127), ~75% smaller at
//     dim≳16; id lists as sorted varint deltas. Safe when rows have
//     moderate dynamic range (see the README's communication-efficiency
//     table); a row's quantization error is bounded by maxAbs(row)/254.
//
// Encoding and decoding are pure integer/float operations with a fixed
// evaluation order, so a given payload decodes bitwise identically on
// every transport and machine — the property the cross-transport
// determinism tests pin.
type Codec uint8

const (
	// CodecFP32 is the raw default: bitwise identical to the pre-codec
	// wire format.
	CodecFP32 Codec = iota
	// CodecFP16 ships feature rows as IEEE-754 half precision.
	CodecFP16
	// CodecInt8 ships feature rows as per-row-scaled int8.
	CodecInt8
)

// ParseCodec maps a configuration string to a Codec. The empty string is
// the fp32 default so zero-valued configs keep the historical behavior.
func ParseCodec(name string) (Codec, error) {
	switch name {
	case "", "fp32":
		return CodecFP32, nil
	case "fp16":
		return CodecFP16, nil
	case "int8":
		return CodecInt8, nil
	}
	return CodecFP32, fmt.Errorf("dist: unknown wire codec %q (want fp32, fp16, or int8)", name)
}

// String returns the codec's canonical flag/checkpoint name.
func (c Codec) String() string {
	switch c {
	case CodecFP32:
		return "fp32"
	case CodecFP16:
		return "fp16"
	case CodecInt8:
		return "int8"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// featRowWire returns the encoded byte size of one dim-wide feature row.
func (c Codec) featRowWire(dim int) int {
	switch c {
	case CodecFP16:
		return 2 * dim
	case CodecInt8:
		return 4 + dim // float32 row scale + dim int8 values
	}
	return 4 * dim
}

// appendFeatRow appends the wire encoding of one feature row to dst.
// CodecFP32 never reaches here — the store ships raw rows through the
// zero-copy float32 views instead.
func (c Codec) appendFeatRow(dst []byte, row []float32) []byte {
	switch c {
	case CodecFP16:
		for _, v := range row {
			dst = binary.LittleEndian.AppendUint16(dst, f16FromF32(v))
		}
	case CodecInt8:
		// Per-row symmetric scale over the finite magnitudes, delegated to
		// the tensor quantizers so the wire format and the int8 compute path
		// (tensor.QuantMatrix) are the same quantization by construction —
		// an int8 wire payload can feed an int8 GEMM without a
		// dequantize/requantize round trip. Non-finite values quantize
		// deterministically: ±Inf saturates to ±127 (decoding to ±maxAbs),
		// NaN to 0.
		scale := tensor.Int8RowScale(row)
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(scale))
		for _, v := range row {
			dst = append(dst, byte(tensor.QuantizeInt8(v, scale)))
		}
	default:
		for _, v := range row {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
	}
	return dst
}

// decodeFeatRow decodes one encoded row (exactly featRowWire(len(dst))
// bytes at src) into dst. The caller validates src's length.
func (c Codec) decodeFeatRow(dst []float32, src []byte) {
	switch c {
	case CodecFP16:
		for i := range dst {
			dst[i] = f32FromF16(binary.LittleEndian.Uint16(src[2*i:]))
		}
	case CodecInt8:
		scale := math.Float32frombits(binary.LittleEndian.Uint32(src))
		for i := range dst {
			dst[i] = float32(int8(src[4+i])) * scale
		}
	default:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
	}
}

// roundTripRow writes the quantize→dequantize image of src into dst: the
// exact values a remote peer receives for a row shipped under this codec.
// This is the local reference the gather-equivalence tests (and the
// accuracy analysis in the README) compare against.
func (c Codec) roundTripRow(dst, src []float32) {
	if c == CodecFP32 {
		copy(dst, src)
		return
	}
	buf := c.appendFeatRow(make([]byte, 0, c.featRowWire(len(src))), src)
	c.decodeFeatRow(dst, buf)
}

// ---------------------------------------------------------------------------
// Request-id lists: sorted varint delta encoding.
//
// Gather sorts each peer's request list ascending (for sequential owner-side
// shard reads), so consecutive ids are close and deltas varint-encode in 1-2
// bytes instead of 4. Duplicates (the same vertex requested for two output
// rows) encode as zero deltas.

// appendIDsDelta appends the varint delta encoding of the ascending list
// ids to dst. The first id is encoded absolutely, each later one as the
// difference from its predecessor.
func appendIDsDelta(dst []byte, ids []int32) []byte {
	prev := int64(0)
	for _, v := range ids {
		dst = binary.AppendUvarint(dst, uint64(int64(v)-prev))
		prev = int64(v)
	}
	return dst
}

// idDeltaReader streams ids back out of an appendIDsDelta payload without
// materializing the list.
type idDeltaReader struct {
	b    []byte
	off  int
	prev int64
}

// next decodes the following id. It errors on a truncated or overlong
// varint and on any delta or id outside [0, 2^31): a corrupt or hostile
// peer cannot smuggle a negative, wrapped, or overflowing vertex id
// through the delta decode. (The delta bound must be checked before the
// addition — a 10-byte varint wraps int64 negative and would otherwise
// slide the cursor backwards through the range check, a case the fuzz
// corpus pins.)
func (r *idDeltaReader) next() (int32, error) {
	d, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated varint id delta at byte %d", r.off)
	}
	if d > math.MaxInt32 {
		return 0, fmt.Errorf("dist: varint id delta %d exceeds the vertex-id range", d)
	}
	r.off += n
	v := r.prev + int64(d)
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("dist: varint id delta overflows int32 (cursor %d, delta %d)", r.prev, d)
	}
	r.prev = v
	return int32(v), nil
}

// remaining reports undecoded bytes (must be zero once the announced count
// has been read).
func (r *idDeltaReader) remaining() int { return len(r.b) - r.off }

// ---------------------------------------------------------------------------
// IEEE-754 binary16 conversion: thin aliases over the tensor package's
// converters, which are the single source of truth shared by the wire codec
// and the fp16 compute path (pure bit manipulation, round-to-nearest-even,
// deterministic on every platform). The golden wire-format tests pin that
// this delegation never changes the bytes.

func f16FromF32(f float32) uint16 { return tensor.F16FromF32(f) }

func f32FromF16(h uint16) float32 { return tensor.F32FromF16(h) }
