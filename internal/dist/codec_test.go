package dist

import (
	"math"
	"testing"

	"salientpp/internal/rng"
	"salientpp/internal/tensor"
)

// TestF16ExhaustiveRoundTrip walks every one of the 65536 binary16 bit
// patterns: converting to float32 and back must reproduce the exact bits
// (float32 is a superset of binary16), with NaNs canonicalized.
func TestF16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := f32FromF16(uint16(h))
		got := f16FromF32(f)
		exp := uint16(h) >> 10 & 0x1f
		frac := uint16(h) & 0x3ff
		if exp == 0x1f && frac != 0 {
			// Any NaN re-encodes as the quiet NaN with the same sign.
			if want := uint16(h)&0x8000 | 0x7e00; got != want {
				t.Fatalf("NaN %#04x re-encoded as %#04x, want %#04x", h, got, want)
			}
			continue
		}
		if got != uint16(h) {
			t.Fatalf("half bits %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

// TestF16ConversionErrorBound checks the fp16 codec's quantization error on
// random values across the half-precision normal range: relative error at
// most 2^-11 (half of the 10-bit significand ulp).
func TestF16ConversionErrorBound(t *testing.T) {
	r := rng.New(41)
	for i := 0; i < 100000; i++ {
		// Log-uniform magnitudes across the half normal range, both signs.
		mag := math.Pow(10, -4+8*r.Float64())
		x := float32(mag)
		if i%2 == 1 {
			x = -x
		}
		y := f32FromF16(f16FromF32(x))
		if err := math.Abs(float64(y-x)) / math.Abs(float64(x)); err > 1.0/2048+1e-9 {
			t.Fatalf("fp16 round trip of %g gave %g (relative error %g)", x, y, err)
		}
	}
	// Specials: overflow saturates to Inf, tiny values flush toward zero,
	// and zero is exact.
	if y := f32FromF16(f16FromF32(1e9)); !math.IsInf(float64(y), 1) {
		t.Fatalf("fp16(1e9) = %v, want +Inf", y)
	}
	if y := f32FromF16(f16FromF32(0)); y != 0 {
		t.Fatalf("fp16(0) = %v, want 0", y)
	}
	if y := f32FromF16(f16FromF32(1e-8)); y != 0 { // below half the smallest subnormal
		t.Fatalf("fp16 of sub-subnormal = %v, want 0", y)
	}
}

// TestInt8RoundTripErrorBound checks the per-row-scaled int8 codec: every
// value's absolute error is at most half a quantization step, i.e.
// maxAbs(row)/254, and all-zero rows are exact.
func TestInt8RoundTripErrorBound(t *testing.T) {
	r := rng.New(43)
	const dim = 64
	src := make([]float32, dim)
	dst := make([]float32, dim)
	for trial := 0; trial < 2000; trial++ {
		var maxAbs float64
		for i := range src {
			src[i] = float32((r.Float64()*2 - 1) * math.Pow(10, -2+4*r.Float64()))
			if a := math.Abs(float64(src[i])); a > maxAbs {
				maxAbs = a
			}
		}
		CodecInt8.roundTripRow(dst, src)
		bound := maxAbs/254 + maxAbs*1e-6
		for i := range src {
			if err := math.Abs(float64(dst[i] - src[i])); err > bound {
				t.Fatalf("trial %d value %g decoded as %g (error %g > bound %g, row maxAbs %g)",
					trial, src[i], dst[i], err, bound, maxAbs)
			}
		}
	}
	zero := make([]float32, dim)
	CodecInt8.roundTripRow(dst, zero)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("all-zero row decoded %v at %d", v, i)
		}
	}
}

// TestInt8NonFiniteRows pins the int8 codec's handling of NaN and ±Inf:
// non-finite values never influence the per-row scale (a NaN mid-row must
// not corrupt the legitimate large magnitudes around it), NaN quantizes to
// 0, ±Inf saturates to ±maxAbs, and an all-non-finite row decodes to
// zeros — all deterministically, with no float→int conversion of a
// non-finite value anywhere on the path.
func TestInt8NonFiniteRows(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	src := []float32{100, nan, 0.5, -inf, -100}
	dst := make([]float32, len(src))
	CodecInt8.roundTripRow(dst, src)
	// Scale derives from maxAbs=100, so 100 must survive (it was silently
	// crushed to ~0.5 when a trailing finite value could reset a
	// NaN-poisoned maxAbs).
	if math.Abs(float64(dst[0]-100)) > 100.0/127 {
		t.Fatalf("finite 100 decoded as %v after a NaN neighbor", dst[0])
	}
	if dst[1] != 0 {
		t.Fatalf("NaN decoded as %v, want 0", dst[1])
	}
	if math.Abs(float64(dst[3]+100)) > 100.0/127 {
		t.Fatalf("-Inf decoded as %v, want saturation to -maxAbs", dst[3])
	}
	allBad := []float32{nan, inf, float32(math.Inf(-1)), nan}
	out := make([]float32, len(allBad))
	CodecInt8.roundTripRow(out, allBad)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("all-non-finite row decoded %v at %d, want 0", v, i)
		}
	}
}

// TestIDListDeltaRoundTrip round-trips sorted ascending id lists —
// including duplicates, which Gather produces when two output rows want
// the same remote vertex — through the varint delta codec.
func TestIDListDeltaRoundTrip(t *testing.T) {
	lists := [][]int32{
		nil,
		{0},
		{5, 5, 5},
		{0, 1, 2, 3, 1000000, 1000000, 2147483647},
		{7, 100, 10000, 10007, 10007, 123456789},
	}
	for _, ids := range lists {
		enc := appendIDsDelta(nil, ids)
		rd := idDeltaReader{b: enc}
		for j, want := range ids {
			got, err := rd.next()
			if err != nil {
				t.Fatalf("list %v: decode %d: %v", ids, j, err)
			}
			if got != want {
				t.Fatalf("list %v: decoded id %d as %d, want %d", ids, j, got, want)
			}
		}
		if rd.remaining() != 0 {
			t.Fatalf("list %v: %d trailing bytes", ids, rd.remaining())
		}
	}
	// 4-byte raw encoding vs varint deltas on a dense sorted list: the
	// deltas must be materially smaller (this is the compression claim).
	dense := make([]int32, 1000)
	for i := range dense {
		dense[i] = int32(100000 + 3*i)
	}
	if enc := appendIDsDelta(nil, dense); len(enc) >= 4*len(dense)/2 {
		t.Fatalf("varint deltas of a dense sorted list took %d bytes, raw takes %d", len(enc), 4*len(dense))
	}
}

// FuzzIDListCodec lives alongside FuzzWireViews: arbitrary bytes fed to the
// varint id decoder must error or terminate cleanly — never panic, never
// yield a negative or descending id — and any list it does accept must
// survive an encode→decode round trip unchanged.
func FuzzIDListCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendIDsDelta(nil, []int32{3, 9, 9, 1000000}))
	f.Add([]byte{0x80})                                                       // truncated varint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // overflowing delta
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := idDeltaReader{b: data}
		var ids []int32
		for rd.remaining() > 0 {
			v, err := rd.next()
			if err != nil {
				return
			}
			if v < 0 {
				t.Fatalf("decoder yielded negative id %d", v)
			}
			if len(ids) > 0 && v < ids[len(ids)-1] {
				t.Fatalf("decoder yielded descending ids %d after %d", v, ids[len(ids)-1])
			}
			ids = append(ids, v)
		}
		// Round trip: the accepted list re-encodes (canonically, minimal
		// varints) and decodes back to itself.
		rd2 := idDeltaReader{b: appendIDsDelta(nil, ids)}
		for i, want := range ids {
			got, err := rd2.next()
			if err != nil || got != want {
				t.Fatalf("round trip diverged at %d: got %d (%v), want %d", i, got, err, want)
			}
		}
		if rd2.remaining() != 0 {
			t.Fatalf("round trip left %d trailing bytes", rd2.remaining())
		}
	})
}

// buildCodecStores assembles a 2-rank deployment over a 16-vertex feature
// matrix, with rank 0 caching two of rank 1's rows, and returns the full
// matrix for reference checks.
func buildCodecStores(t *testing.T, codec Codec) ([]*Store, *tensor.Matrix, []Comm) {
	t.Helper()
	const n, dim = 16, 6
	layout, err := NewLayout([]int64{0, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.New(n, dim)
	r := rng.New(17)
	for i := range full.Data {
		full.Data[i] = float32((r.Float64()*2 - 1) * 10)
	}
	stores := make([]*Store, 2)
	for rank := 0; rank < 2; rank++ {
		local := tensor.New(8, dim)
		for i := 0; i < 8; i++ {
			copy(local.Row(i), full.Row(rank*8+i))
		}
		st, err := NewStore(comms[rank], layout, dim, local, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		st.SetCodec(codec)
		stores[rank] = st
	}
	return stores, full, comms
}

// TestGatherWithCodecMatchesReference runs a cross-rank gather under each
// lossy codec and demands every remote row equal — bitwise — the local
// quantize-dequantize reference of the owner's row, while local rows stay
// exact fp32. Duplicate and unsorted remote requests exercise the sorted
// delta encoding.
func TestGatherWithCodecMatchesReference(t *testing.T) {
	for _, codec := range []Codec{CodecFP32, CodecFP16, CodecInt8} {
		t.Run(codec.String(), func(t *testing.T) {
			stores, full, comms := buildCodecStores(t, codec)
			defer comms[0].Close()
			ids := []int32{15, 9, 12, 9, 2, 14, 0, 15}
			done := make(chan error, 1)
			go func() {
				_, _, err := stores[1].Gather(nil)
				done <- err
			}()
			out, stats, err := stores[0].Gather(ids)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if stats.RemoteFetch != 6 {
				t.Fatalf("remote fetches %d, want 6 (codec must not change which rows move)", stats.RemoteFetch)
			}
			ref := make([]float32, full.Cols)
			for i, v := range ids {
				want := full.Row(int(v))
				if v >= 8 { // remote: compare against the quantization reference
					codec.roundTripRow(ref, want)
					want = ref
				}
				got := out.Row(i)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("row %d (vertex %d) col %d: got %v want %v", i, v, j, got[j], want[j])
					}
				}
			}
			stores[0].Release(out)
		})
	}
}

// TestGatherCodecPayloadShrinks pins the compression claim at the
// transport's byte counter: the same gather ships at least 45% fewer
// payload bytes under fp16 than under fp32, and int8 beats fp16.
func TestGatherCodecPayloadShrinks(t *testing.T) {
	bytesFor := func(codec Codec) int64 {
		stores, _, comms := buildCodecStores(t, codec)
		defer comms[0].Close()
		ids := make([]int32, 0, 64)
		for i := 0; i < 64; i++ {
			ids = append(ids, int32(8+i%8)) // all remote from rank 0
		}
		done := make(chan error, 1)
		go func() {
			_, _, err := stores[1].Gather(nil)
			done <- err
		}()
		out, _, err := stores[0].Gather(ids)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		stores[0].Release(out)
		return comms[0].BytesSent() + comms[1].BytesSent()
	}
	fp32 := bytesFor(CodecFP32)
	fp16 := bytesFor(CodecFP16)
	i8 := bytesFor(CodecInt8)
	if float64(fp16) > 0.55*float64(fp32) {
		t.Fatalf("fp16 shipped %d bytes vs fp32's %d (want ≥ 45%% reduction)", fp16, fp32)
	}
	if i8 >= fp16 {
		t.Fatalf("int8 shipped %d bytes, fp16 %d (int8 must be smaller at dim 6)", i8, fp16)
	}
}

// TestGatherCodecAllocationFree extends the PR-2 warm-loop guard to every
// codec: the store-side gather path (pooled output, reused id/feature
// encode buffers, in-place dequantize) allocates nothing once warm. A
// single-rank group isolates the store from the transport's documented
// per-send copy, exactly like the fp32 guard.
func TestGatherCodecAllocationFree(t *testing.T) {
	for _, codec := range []Codec{CodecFP16, CodecInt8} {
		t.Run(codec.String(), func(t *testing.T) {
			const n, dim = 256, 16
			comms, err := NewLocalGroup(1)
			if err != nil {
				t.Fatal(err)
			}
			defer comms[0].Close()
			layout, err := NewLayout([]int64{0, n})
			if err != nil {
				t.Fatal(err)
			}
			local := tensor.New(n, dim)
			for i := range local.Data {
				local.Data[i] = float32(i)
			}
			st, err := NewStore(comms[0], layout, dim, local, nil, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			st.SetCodec(codec)
			ids := make([]int32, 64)
			for i := range ids {
				ids[i] = int32((i * 37) % n)
			}
			step := func() {
				out, _, err := st.Gather(ids)
				if err != nil {
					t.Fatal(err)
				}
				st.Release(out)
			}
			for i := 0; i < 3; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Fatalf("warm %s Gather allocated %.1f times per run, want 0", codec, allocs)
			}
		})
	}
}

// TestCodecPrimitivesAllocationFree guards the encode/decode primitives
// themselves: with warm (capacity-established) buffers, encoding and
// decoding a row and an id list allocate nothing — the property that lets
// Gather's cross-rank path reuse its per-peer wire buffers.
func TestCodecPrimitivesAllocationFree(t *testing.T) {
	const dim = 128
	row := make([]float32, dim)
	dst := make([]float32, dim)
	for i := range row {
		row[i] = float32(i)*0.25 - 7
	}
	ids := []int32{3, 9, 9, 1024, 1048576}
	for _, codec := range []Codec{CodecFP16, CodecInt8} {
		encBuf := codec.appendFeatRow(nil, row)
		idBuf := appendIDsDelta(nil, ids)
		step := func() {
			encBuf = codec.appendFeatRow(encBuf[:0], row)
			codec.decodeFeatRow(dst, encBuf)
			idBuf = appendIDsDelta(idBuf[:0], ids)
			rd := idDeltaReader{b: idBuf}
			for rd.remaining() > 0 {
				if _, err := rd.next(); err != nil {
					t.Fatal(err)
				}
			}
		}
		step()
		if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
			t.Fatalf("%s warm encode/decode allocated %.1f times per run, want 0", codec, allocs)
		}
	}
}

// TestParseCodec pins the flag surface.
func TestParseCodec(t *testing.T) {
	for name, want := range map[string]Codec{"": CodecFP32, "fp32": CodecFP32, "fp16": CodecFP16, "int8": CodecInt8} {
		got, err := ParseCodec(name)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("ParseCodec accepted an unknown codec")
	}
	if CodecInt8.String() != "int8" || CodecFP16.String() != "fp16" || CodecFP32.String() != "fp32" {
		t.Fatal("codec names drifted")
	}
}
