package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// localGroup is the in-process transport: a K×K mesh of buffered channels.
// Matched collectives mean each directed mailbox holds at most one
// in-flight payload, so capacity-1 channels never deadlock; a send only
// blocks until the receiver finishes its previous collective.
type localGroup struct {
	k     int
	box   [][]chan []byte // box[src][dst]
	done  chan struct{}
	once  sync.Once
	bytes []atomic.Int64 // per-rank cumulative sent payload
}

// NewLocalGroup returns K connected in-process communicators.
func NewLocalGroup(k int) ([]Comm, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dist: group size %d", k)
	}
	g := &localGroup{
		k:     k,
		box:   make([][]chan []byte, k),
		done:  make(chan struct{}),
		bytes: make([]atomic.Int64, k),
	}
	for src := 0; src < k; src++ {
		g.box[src] = make([]chan []byte, k)
		for dst := 0; dst < k; dst++ {
			g.box[src][dst] = make(chan []byte, 1)
		}
	}
	comms := make([]Comm, k)
	for r := 0; r < k; r++ {
		comms[r] = &localComm{g: g, rank: r}
	}
	return comms, nil
}

// localComm is one rank's endpoint of a localGroup.
type localComm struct {
	g    *localGroup
	rank int
	// scratch, peerBuf, recvBuf, and sendBuf are reused across collectives
	// to avoid per-call allocation; a Comm serves one goroutine at a time,
	// and results are documented valid only until the next collective.
	scratch   []byte
	peerBuf   []float32
	recvBuf   [][]byte
	sendBuf   [][]byte
	stopWatch chan struct{} // cancels the SetAbort watcher

	// timeout bounds each collective (SetTimeout); timer is reused across
	// calls so a deadline-bounded warm gather still allocates nothing.
	timeout time.Duration
	timer   *time.Timer
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return c.g.k }

func (c *localComm) BytesSent() int64 { return c.g.bytes[c.rank].Load() }

func (c *localComm) Close() {
	c.g.once.Do(func() { close(c.g.done) })
}

func (c *localComm) SetAbort(abort <-chan struct{}) {
	if c.stopWatch != nil {
		close(c.stopWatch)
		c.stopWatch = nil
	}
	if abort == nil {
		return
	}
	c.stopWatch = make(chan struct{})
	watchAbort(abort, c.stopWatch, c.Close)
}

func (c *localComm) SetTimeout(d time.Duration) { c.timeout = d }

// armTimeout returns the deadline channel for one collective, arming the
// reused timer; nil when no timeout is installed (a nil channel never
// fires, so the selects below degrade to the historical two-way form).
func (c *localComm) armTimeout() <-chan time.Time {
	if c.timeout <= 0 {
		return nil
	}
	if c.timer == nil {
		c.timer = time.NewTimer(c.timeout)
	} else {
		c.timer.Reset(c.timeout)
	}
	return c.timer.C
}

// disarmTimeout stops the reused timer and drains a concurrently fired
// tick so the next Reset starts clean.
func (c *localComm) disarmTimeout() {
	if c.timer != nil && !c.timer.Stop() {
		select {
		case <-c.timer.C:
		default:
		}
	}
}

func (c *localComm) AllToAll(send [][]byte) ([][]byte, error) {
	g := c.g
	if len(send) != g.k {
		return nil, fmt.Errorf("dist: AllToAll with %d payloads for %d ranks", len(send), g.k)
	}
	// One deadline covers the whole collective, matching the TCP
	// transport's SetDeadline-per-call semantics.
	deadline := c.armTimeout()
	defer c.disarmTimeout()
	for dst := 0; dst < g.k; dst++ {
		if dst == c.rank {
			continue
		}
		// Copy at send time: the receiver owns its payload outright and
		// the sender is free to reuse its buffers immediately, the same
		// ownership contract a socket write gives the TCP transport.
		msg := append([]byte(nil), send[dst]...)
		select {
		case g.box[c.rank][dst] <- msg:
			g.bytes[c.rank].Add(int64(len(msg)))
		case <-g.done:
			return nil, fmt.Errorf("%w during AllToAll send (rank %d)", ErrClosed, c.rank)
		case <-deadline:
			// A timed-out collective leaves mailboxes half-exchanged, so the
			// group can never match another collective: tear it down, exactly
			// as a TCP deadline mid-frame poisons that transport's stream.
			c.Close()
			return nil, fmt.Errorf("%w: AllToAll send after %v (rank %d)", ErrTimeout, c.timeout, c.rank)
		}
	}
	if c.recvBuf == nil {
		c.recvBuf = make([][]byte, g.k)
	}
	recv := c.recvBuf
	recv[c.rank] = send[c.rank]
	for src := 0; src < g.k; src++ {
		if src == c.rank {
			continue
		}
		select {
		case recv[src] = <-g.box[src][c.rank]:
		case <-g.done:
			return nil, fmt.Errorf("%w during AllToAll recv (rank %d)", ErrClosed, c.rank)
		case <-deadline:
			c.Close() // see the send-side timeout: a partial exchange is unmatchable
			return nil, fmt.Errorf("%w: AllToAll recv from rank %d after %v (rank %d)", ErrTimeout, src, c.timeout, c.rank)
		}
	}
	return recv, nil
}

func (c *localComm) AllReduceSum(x []float32) error {
	// Implemented as an all-gather over the same mailboxes followed by an
	// ordered local reduction: summing contributions in rank order makes
	// every rank's float32 result bitwise identical.
	c.scratch = f32ToBytes(c.scratch[:0], x)
	if c.sendBuf == nil {
		c.sendBuf = make([][]byte, c.g.k)
	}
	send := c.sendBuf
	for i := range send {
		send[i] = c.scratch
	}
	recv, err := c.AllToAll(send)
	if err != nil {
		return err
	}
	for i := range x {
		x[i] = 0
	}
	for src := 0; src < c.g.k; src++ {
		c.peerBuf = bytesToF32(c.peerBuf, recv[src])
		if len(c.peerBuf) != len(x) {
			return fmt.Errorf("dist: AllReduceSum length mismatch: rank %d sent %d values, want %d", src, len(c.peerBuf), len(x))
		}
		for i, v := range c.peerBuf {
			x[i] += v
		}
	}
	return nil
}
