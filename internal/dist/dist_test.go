package dist

import (
	"sync"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/tensor"
)

func TestLayoutOwnership(t *testing.T) {
	l, err := NewLayout([]int64{0, 3, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 3 || l.NumVertices() != 10 {
		t.Fatalf("K=%d N=%d", l.K(), l.NumVertices())
	}
	wantOwner := []int{0, 0, 0, 2, 2, 2, 2, 2, 2, 2}
	for v, want := range wantOwner {
		if got := l.Owner(int32(v)); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", v, got, want)
		}
	}
	if l.PartSize(1) != 0 || l.PartSize(2) != 7 {
		t.Fatalf("part sizes: %d %d", l.PartSize(1), l.PartSize(2))
	}
	if l.LocalRow(5) != 2 {
		t.Fatalf("LocalRow(5) = %d, want 2", l.LocalRow(5))
	}
	for _, bad := range [][]int64{{}, {0}, {1, 2}, {0, 5, 3}} {
		if _, err := NewLayout(bad); err == nil {
			t.Fatalf("NewLayout(%v) accepted invalid boundaries", bad)
		}
	}
}

// runGroup exercises one collective pattern on every rank concurrently.
func runGroup(t *testing.T, comms []Comm, f func(c Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(comms))
	for _, c := range comms {
		wg.Add(1)
		go func(c Comm) {
			defer wg.Done()
			if err := f(c); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func testTransport(t *testing.T, mk func(k int) ([]Comm, error)) {
	const k = 3
	comms, err := mk(k)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	// AllToAll: rank r sends byte r*10+dst to dst; verify receipt.
	runGroup(t, comms, func(c Comm) error {
		for round := 0; round < 3; round++ {
			send := make([][]byte, k)
			for dst := 0; dst < k; dst++ {
				send[dst] = []byte{byte(c.Rank()*10 + dst), byte(round)}
			}
			recv, err := c.AllToAll(send)
			if err != nil {
				return err
			}
			for src := 0; src < k; src++ {
				want := byte(src*10 + c.Rank())
				if len(recv[src]) != 2 || recv[src][0] != want || recv[src][1] != byte(round) {
					t.Errorf("rank %d round %d: got %v from %d", c.Rank(), round, recv[src], src)
				}
			}
		}
		return nil
	})

	// AllReduceSum: ordered reduction must be exact and identical everywhere.
	results := make([][]float32, k)
	runGroup(t, comms, func(c Comm) error {
		x := []float32{float32(c.Rank() + 1), 0.5}
		if err := c.AllReduceSum(x); err != nil {
			return err
		}
		results[c.Rank()] = x
		return nil
	})
	for r := 0; r < k; r++ {
		if results[r][0] != 6 || results[r][1] != 1.5 {
			t.Fatalf("rank %d allreduce: %v", r, results[r])
		}
	}
	if comms[0].BytesSent() == 0 {
		t.Fatal("BytesSent not accounted")
	}
}

func TestLocalTransport(t *testing.T) { testTransport(t, NewLocalGroup) }
func TestTCPTransport(t *testing.T)   { testTransport(t, NewTCPGroup) }

func TestCloseUnblocksPeers(t *testing.T) {
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Rank 1 waits on a collective rank 0 never joins.
		_, err := comms[1].AllToAll([][]byte{{1}, {2}})
		done <- err
	}()
	comms[0].Close()
	if err := <-done; err == nil {
		t.Fatal("blocked collective survived group close")
	}
}

// TestStoreGather verifies classification and feature correctness of the
// three-collective gather on a 2-rank store with a cache and a partial GPU
// prefix.
func TestStoreGather(t *testing.T) {
	const dim = 3
	layout, err := NewLayout([]int64{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.New(8, dim)
	for v := 0; v < 8; v++ {
		for j := 0; j < dim; j++ {
			full.Set(v, j, float32(v*10+j))
		}
	}
	comms, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	stores := make([]*Store, 2)
	for r := 0; r < 2; r++ {
		local := tensor.New(4, dim)
		for i := 0; i < 4; i++ {
			copy(local.Row(i), full.Row(r*4+i))
		}
		// Each rank caches the first remote vertex of its peer.
		cachedID := int32((1 - r) * 4)
		cc, err := cache.Build([]int32{cachedID}, 8)
		if err != nil {
			t.Fatal(err)
		}
		cdata := tensor.New(1, dim)
		copy(cdata.Row(0), full.Row(int(cachedID)))
		ep, err := cache.NewEpoch(cc, cdata)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewStore(comms[r], layout, dim, local, ep, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}

	// Rank 0 gathers a mix; rank 1 gathers nothing but must still join the
	// collectives (the padded-round contract).
	var stats GatherStats
	var feats *tensor.Matrix
	runGroup(t, comms, func(c Comm) error {
		if c.Rank() == 1 {
			_, _, err := stores[1].Gather(nil)
			return err
		}
		var err error
		feats, stats, err = stores[0].Gather([]int32{0, 3, 4, 5, 6})
		return err
	})
	// v0: local row 0 < gpuRows(2) -> GPU; v3: local row 3 -> CPU;
	// v4: cached; v5, v6: remote from rank 1.
	if stats.LocalGPU != 1 || stats.LocalCPU != 1 || stats.CacheHits != 1 || stats.RemoteFetch != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.RemoteByPeer[1] != 2 {
		t.Fatalf("per-peer: %v", stats.RemoteByPeer)
	}
	for i, v := range []int32{0, 3, 4, 5, 6} {
		for j := 0; j < dim; j++ {
			if feats.At(i, j) != full.At(int(v), j) {
				t.Fatalf("row %d (vertex %d) col %d: got %v want %v", i, v, j, feats.At(i, j), full.At(int(v), j))
			}
		}
	}
}
