package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpSetupTimeout bounds every step of the NewTCPGroup handshake: dialing
// a listener, writing the one-byte hello, and reading it on the accept
// side. Without it a SYN-blackholed address or a half-open peer (connected
// but never identifying itself) hangs group construction forever — the
// regression the setup-timeout tests pin. A package variable so tests can
// shrink it.
var tcpSetupTimeout = 10 * time.Second

// tcpComm is one rank of a loopback TCP mesh. Every pair of ranks shares
// one TCP connection; messages are length-prefixed frames. Because each
// rank issues its collectives in order and frames preserve per-direction
// FIFO order, collectives match without tags — the same argument that
// matches the channel transport.
type tcpComm struct {
	rank  int
	k     int
	conns []net.Conn // conns[peer]; nil at self
	bytes atomic.Int64
	mu    sync.Mutex
	state error // sticky failure after Close or transport error
	// Reusable collective buffers; a Comm serves one goroutine at a
	// time and AllToAll's writers drain before it returns, so reuse
	// across calls is safe.
	scratch   []byte
	peerBuf   []float32
	recvBuf   [][]byte
	sendBuf   [][]byte
	stopWatch chan struct{} // cancels the SetAbort watcher

	// timeout bounds each collective (SetTimeout); hadDeadline tracks
	// whether connection deadlines are currently armed so clearing them
	// costs syscalls only once after a SetTimeout(0).
	timeout     time.Duration
	hadDeadline bool
}

// NewTCPGroup builds a fully connected loopback TCP group of size k. It
// moves real bytes through the kernel, exercising serialization and
// framing exactly as a multi-host deployment would.
func NewTCPGroup(k int) ([]Comm, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dist: group size %d", k)
	}
	if k > 256 {
		// The hello handshake identifies ranks with one byte.
		return nil, fmt.Errorf("dist: TCP group size %d exceeds the 256-rank handshake limit", k)
	}
	comms := make([]*tcpComm, k)
	for r := 0; r < k; r++ {
		comms[r] = &tcpComm{rank: r, k: k, conns: make([]net.Conn, k)}
	}
	// Rank i listens; ranks j > i dial in and identify themselves with a
	// one-byte hello carrying their rank. teardown releases every listener
	// and connection on any setup failure so the blocked accept goroutines
	// unblock and nothing leaks.
	listeners := make([]net.Listener, k)
	teardown := func() {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, c := range comms {
			for _, conn := range c.conns {
				if conn != nil {
					conn.Close()
				}
			}
		}
	}
	for i := 0; i < k-1; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return nil, fmt.Errorf("dist: listen: %w", err)
		}
		listeners[i] = ln
	}
	var wg sync.WaitGroup
	errCh := make(chan error, k)
	for i := 0; i < k-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < k-1-i; n++ {
				conn, err := listeners[i].Accept()
				if err != nil {
					errCh <- err
					return
				}
				rank, err := readHello(conn)
				if err != nil {
					conn.Close()
					errCh <- err
					return
				}
				comms[i].conns[int(rank)] = conn
			}
		}(i)
	}
	dialErr := func(err error) ([]Comm, error) {
		// Unblock the accept goroutines first, then wait for them before
		// touching the conns they may still be writing.
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		wg.Wait()
		teardown()
		return nil, err
	}
	for j := 1; j < k; j++ {
		for i := 0; i < j; i++ {
			// DialTimeout, not Dial: a SYN-blackholed listener address must
			// fail setup within the bound, not hang it on kernel retries.
			conn, err := net.DialTimeout("tcp", listeners[i].Addr().String(), tcpSetupTimeout)
			if err != nil {
				return dialErr(fmt.Errorf("dist: dial: %w", err))
			}
			conn.SetWriteDeadline(time.Now().Add(tcpSetupTimeout))
			if _, err := conn.Write([]byte{byte(j)}); err != nil {
				conn.Close()
				return dialErr(fmt.Errorf("dist: hello: %w", err))
			}
			conn.SetWriteDeadline(time.Time{})
			comms[j].conns[i] = conn
		}
	}
	wg.Wait()
	for i := 0; i < k-1; i++ {
		listeners[i].Close()
	}
	select {
	case err := <-errCh:
		teardown()
		return nil, fmt.Errorf("dist: accept: %w", err)
	default:
	}
	out := make([]Comm, k)
	for r := 0; r < k; r++ {
		out[r] = comms[r]
	}
	return out, nil
}

// readHello reads a dialer's one-byte rank identification under the setup
// deadline, so a half-open peer — connected but silent — fails the
// handshake within the bound instead of wedging the accept goroutine.
func readHello(conn net.Conn) (byte, error) {
	conn.SetReadDeadline(time.Now().Add(tcpSetupTimeout))
	var hello [1]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("dist: hello read: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	return hello[0], nil
}

func (c *tcpComm) Rank() int        { return c.rank }
func (c *tcpComm) Size() int        { return c.k }
func (c *tcpComm) BytesSent() int64 { return c.bytes.Load() }

// Close tears down this rank's connections. Peers blocked on reads fail
// with connection errors, propagating the abort through the group.
func (c *tcpComm) Close() {
	c.mu.Lock()
	if c.state == nil {
		c.state = fmt.Errorf("%w (rank %d)", ErrClosed, c.rank)
	}
	c.mu.Unlock()
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// SetAbort installs an abort channel: when it closes, this rank's
// connections are torn down (as by Close), so peers blocked mid-collective
// fail with connection errors and the abort propagates through the group —
// real bytes in flight unwind exactly like a multi-host deployment losing
// a member.
func (c *tcpComm) SetAbort(abort <-chan struct{}) {
	if c.stopWatch != nil {
		close(c.stopWatch)
		c.stopWatch = nil
	}
	if abort == nil {
		return
	}
	c.stopWatch = make(chan struct{})
	watchAbort(abort, c.stopWatch, c.Close)
}

func (c *tcpComm) failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

func (c *tcpComm) SetTimeout(d time.Duration) { c.timeout = d }

// armDeadlines installs (or, after SetTimeout(0), clears) one absolute
// deadline across every connection, covering all of the collective's
// concurrent writes and sequential reads.
func (c *tcpComm) armDeadlines() {
	switch {
	case c.timeout > 0:
		dl := time.Now().Add(c.timeout)
		for _, conn := range c.conns {
			if conn != nil {
				conn.SetDeadline(dl)
			}
		}
		c.hadDeadline = true
	case c.hadDeadline:
		for _, conn := range c.conns {
			if conn != nil {
				conn.SetDeadline(time.Time{})
			}
		}
		c.hadDeadline = false
	}
}

// wrapTimeout converts a deadline-exceeded transport error into the
// portable ErrTimeout sentinel; other errors pass through.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// writeFrame sends one length-prefixed payload.
func writeFrame(conn net.Conn, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: %d-byte payload exceeds the %d-byte frame limit", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := conn.Write(payload)
	return err
}

// readFrame receives one length-prefixed payload (see decodeFrame for the
// bounded, corruption-tolerant framing contract).
func readFrame(conn net.Conn) ([]byte, error) {
	return decodeFrame(conn)
}

func (c *tcpComm) AllToAll(send [][]byte) ([][]byte, error) {
	if err := c.failed(); err != nil {
		return nil, err
	}
	if len(send) != c.k {
		return nil, fmt.Errorf("dist: AllToAll with %d payloads for %d ranks", len(send), c.k)
	}
	c.armDeadlines()
	// Writers run concurrently so two ranks exchanging large payloads
	// cannot deadlock on full socket buffers.
	var wg sync.WaitGroup
	errCh := make(chan error, 2*c.k)
	for dst := 0; dst < c.k; dst++ {
		if dst == c.rank {
			continue
		}
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			if err := writeFrame(c.conns[dst], send[dst]); err != nil {
				errCh <- err
				return
			}
			c.bytes.Add(int64(len(send[dst])))
		}(dst)
	}
	if c.recvBuf == nil {
		c.recvBuf = make([][]byte, c.k)
	}
	recv := c.recvBuf
	recv[c.rank] = send[c.rank]
	for src := 0; src < c.k; src++ {
		if src == c.rank {
			continue
		}
		msg, err := readFrame(c.conns[src])
		if err != nil {
			errCh <- err
			break
		}
		recv[src] = msg
	}
	wg.Wait()
	select {
	case err := <-errCh:
		err = wrapTimeout(err)
		if !errors.Is(err, ErrTimeout) {
			// A non-timeout transport failure means the stream (and with it
			// the group) is gone — most often a peer died and its Close
			// cascaded here. Mark it ErrClosed so elastic callers classify it
			// as a membership event rather than a hard error.
			err = fmt.Errorf("%w: transport failure (rank %d): %v", ErrClosed, c.rank, err)
		}
		c.mu.Lock()
		if c.state == nil {
			c.state = err
		}
		c.mu.Unlock()
		// A deadline can strike mid-frame; the streams are unframeable from
		// here, so tear the group down promptly rather than leaving peers to
		// discover it via their own timeouts.
		c.Close()
		return nil, err
	default:
	}
	return recv, nil
}

func (c *tcpComm) AllReduceSum(x []float32) error {
	c.scratch = f32ToBytes(c.scratch[:0], x)
	if c.sendBuf == nil {
		c.sendBuf = make([][]byte, c.k)
	}
	send := c.sendBuf
	for i := range send {
		send[i] = c.scratch
	}
	recv, err := c.AllToAll(send)
	if err != nil {
		return err
	}
	for i := range x {
		x[i] = 0
	}
	for src := 0; src < c.k; src++ {
		c.peerBuf = bytesToF32(c.peerBuf, recv[src])
		if len(c.peerBuf) != len(x) {
			return fmt.Errorf("dist: AllReduceSum length mismatch from rank %d", src)
		}
		for i, v := range c.peerBuf {
			x[i] += v
		}
	}
	return nil
}
