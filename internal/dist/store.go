package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"salientpp/internal/cache"
	"salientpp/internal/tensor"
)

// GatherStats classifies the feature accesses of one Gather call. The
// categories mirror the paper's cost hierarchy: GPU-resident local rows are
// free, CPU-resident local rows cost a host-to-device copy, cache hits cost
// a local read of a replicated row, and remote fetches cost network
// communication.
type GatherStats struct {
	LocalGPU    int
	LocalCPU    int
	CacheHits   int
	RemoteFetch int
	// Missing counts rows GatherLocal could not satisfy from the local
	// shard or cache and zero-filled instead (always 0 for Gather, which
	// fetches them remotely). A degraded serving round reports its
	// accuracy cost here.
	Missing int
	// RemoteByPeer[p] counts rows fetched from rank p this call. It aliases
	// the store's reusable scratch and is valid only until the next Gather
	// on the same store; copy it to retain it.
	RemoteByPeer []int
	// CacheHitIDs lists the ids behind CacheHits in access order, and
	// RemoteIDs the ids behind RemoteFetch (for GatherLocal: Missing),
	// grouped per owning rank with each list ascending. Both alias the
	// store's reusable scratch, valid only until the next gather — the
	// online cache policy folds them into its own state via Observe
	// (cache.RoundAccess) before the next round.
	CacheHitIDs []int32
	RemoteIDs   [][]int32
}

// Store is one rank's partitioned feature store: the local shard (split
// into a GPU-resident prefix and a CPU remainder), the current cache epoch
// of remote rows, and the communicator over which remote rows are fetched
// with three matched collectives per Gather — request counts, request ids,
// and feature payloads (§4.2).
//
// The cache is versioned: gathers read whichever cache.Epoch was current
// when they started (one atomic pointer load per gather), and InstallEpoch
// swaps in a new immutable epoch between rounds without touching in-flight
// readers. The default deployment installs the setup-time epoch once and
// never again, which is bitwise the historical frozen cache.
//
// The gather path is allocation-free at steady state: output matrices come
// from a pooled tensor arena (return them with Release), request ids and
// feature payloads cross the transport as zero-copy views of reused
// contiguous buffers, and per-peer request lists are sorted so the owning
// rank reads its shard sequentially.
type Store struct {
	comm    Comm
	layout  *Layout
	dim     int
	local   *tensor.Matrix
	epoch   atomic.Pointer[cache.Epoch] // current cache version; nil only when caching is disabled
	gpuRows int
	pool    *tensor.Pool
	codec   Codec

	// Reduced-precision gather state (SetPrecision): a quantized shadow of
	// the local shard, shared read-only with siblings (the cache shadow
	// lives inside each epoch), plus the store-owned output scratch
	// GatherQuant hands out.
	prec       tensor.Precision
	qlocal     *tensor.QuantMatrix
	qscratch   tensor.QuantMatrix
	rowScratch []float32

	// Reusable per-Gather scratch; a Store is used by one goroutine at a
	// time (the pipeline's feature-collection stage).
	reqIDs   [][]int32   // per-peer request ids (sorted before collective 2)
	rowOf    [][]int32   // rowOf[p][j]: output row waiting on request j of peer p
	cntFrame []byte      // 4·K bytes backing the count frames of collective 1
	cntRecv  []int32     // decoded per-peer request counts
	sendPtr  [][]byte    // per-collective payload views (headers reused)
	featBuf  [][]float32 // per-peer contiguous feature staging (collective 3, fp32)
	idEnc    [][]byte    // per-peer varint id encodings (collective 2, fp16/int8)
	featEnc  [][]byte    // per-peer encoded feature payloads (collective 3, fp16/int8)
	byPeer   []int       // RemoteByPeer scratch
	hitIDs   []int32     // CacheHitIDs scratch
	sorter   idRowSorter
	idsort   idSorter
}

// idSorter sorts a request list ascending with no parallel row list (the
// degraded path has no output-row bookkeeping to carry along). Held in the
// Store so sorting allocates nothing.
type idSorter struct{ ids []int32 }

func (s *idSorter) Len() int           { return len(s.ids) }
func (s *idSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *idSorter) Swap(i, j int)      { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }

// idRowSorter sorts a peer's request ids ascending, carrying the matching
// output-row list along. Held in the Store so sorting allocates nothing.
type idRowSorter struct {
	ids  []int32
	rows []int32
}

func (s *idRowSorter) Len() int           { return len(s.ids) }
func (s *idRowSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *idRowSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// NewStore validates shapes and returns the store. local holds the rows of
// this rank's layout interval; ep is the initial cache epoch (generation 0,
// the truncated setup ranking) and may be nil to disable caching.
// gpuFraction in [0,1] sets the GPU-resident prefix of the local shard.
func NewStore(comm Comm, layout *Layout, dim int, local *tensor.Matrix, ep *cache.Epoch, gpuFraction float64) (*Store, error) {
	if comm == nil || layout == nil {
		return nil, fmt.Errorf("dist: store needs comm and layout")
	}
	rank := comm.Rank()
	if rank < 0 || rank >= layout.K() {
		return nil, fmt.Errorf("dist: rank %d outside layout with K=%d", rank, layout.K())
	}
	if comm.Size() != layout.K() {
		return nil, fmt.Errorf("dist: comm size %d != layout K %d", comm.Size(), layout.K())
	}
	if local == nil || local.Cols != dim {
		return nil, fmt.Errorf("dist: local shard missing or wrong width")
	}
	if local.Rows != layout.PartSize(rank) {
		return nil, fmt.Errorf("dist: local shard has %d rows, layout owns %d", local.Rows, layout.PartSize(rank))
	}
	if err := validateEpoch(ep, dim); err != nil {
		return nil, err
	}
	if gpuFraction < 0 || gpuFraction > 1 {
		return nil, fmt.Errorf("dist: gpuFraction %v outside [0,1]", gpuFraction)
	}
	s := newStore(comm, layout, dim, local, int(gpuFraction*float64(local.Rows)))
	s.epoch.Store(ep)
	return s, nil
}

// validateEpoch checks an epoch's internal shape agreement against the
// store's feature dimension. nil epochs (caching disabled) are valid.
func validateEpoch(ep *cache.Epoch, dim int) error {
	if ep == nil || ep.Index == nil {
		return nil
	}
	if ep.Rows == nil || ep.Rows.Rows != ep.Index.Len() {
		return fmt.Errorf("dist: cache epoch gen %d has %d data rows for %d cached ids", ep.Gen, ep.Rows.Rows, ep.Index.Len())
	}
	if ep.Rows.Cols != dim {
		return fmt.Errorf("dist: cache epoch gen %d width %d != feature dim %d", ep.Gen, ep.Rows.Cols, dim)
	}
	return nil
}

// newStore assembles a validated store with fresh per-Gather scratch. Both
// construction sites (NewStore and Sibling) go through here so a new
// scratch field cannot be initialized in one and forgotten in the other.
func newStore(comm Comm, layout *Layout, dim int, local *tensor.Matrix, gpuRows int) *Store {
	k := layout.K()
	return &Store{
		comm: comm, layout: layout, dim: dim,
		local:    local,
		gpuRows:  gpuRows,
		pool:     tensor.NewPool(),
		reqIDs:   make([][]int32, k),
		rowOf:    make([][]int32, k),
		cntFrame: make([]byte, 4*k),
		cntRecv:  make([]int32, k),
		sendPtr:  make([][]byte, k),
		featBuf:  make([][]float32, k),
		idEnc:    make([][]byte, k),
		featEnc:  make([][]byte, k),
		byPeer:   make([]int, k),

		rowScratch: make([]float32, dim),
	}
}

// InstallEpoch atomically swaps in a new cache epoch and returns the one
// it displaced. Gathers already in flight keep reading the old epoch;
// gathers started after the swap read the new one — so the caller must
// only release the returned epoch's storage once it can no longer be read,
// which installs at round barriers (between a store's gathers) guarantee
// for free. When the store runs a reduced precision the epoch's quantized
// shadow is built here, before the swap, so quantized gathers are coherent
// with the install. The zero-alloc warm gather path is untouched: a swap
// costs readers exactly one pointer load.
func (s *Store) InstallEpoch(ep *cache.Epoch) (*cache.Epoch, error) {
	if err := validateEpoch(ep, s.dim); err != nil {
		return nil, err
	}
	ep.EnsureQuant(s.prec)
	return s.epoch.Swap(ep), nil
}

// Epoch returns the store's current cache epoch (nil when caching is
// disabled). The epoch is immutable; its IDs and Gen are safe to read from
// any goroutine.
func (s *Store) Epoch() *cache.Epoch { return s.epoch.Load() }

// CacheGen returns the current cache epoch's install generation (0 for the
// setup epoch or when caching is disabled).
func (s *Store) CacheGen() uint64 {
	if ep := s.epoch.Load(); ep != nil {
		return ep.Gen
	}
	return 0
}

// SetCodec selects the wire codec for this store's gathers. All members of
// the comm group must agree (the decode paths reject mismatched payload
// sizes). CodecFP32, the default, keeps the historical byte-for-byte wire
// format. Install before the first Gather; do not call concurrently with
// Gather. Siblings inherit the codec at Sibling time.
func (s *Store) SetCodec(c Codec) { s.codec = c }

// Codec returns the store's wire codec.
func (s *Store) Codec() Codec { return s.codec }

// SetPrecision selects the compute precision GatherQuant assembles feature
// matrices in and eagerly quantizes read-only shadows of the local shard
// and the current cache epoch (one-time cost; per-gather local and cache
// rows then move as byte copies). Later epochs are shadowed by
// InstallEpoch at install time, so the quantized cache always matches the
// fp32 cache it was built from. PrecisionFP32 clears the shadows and
// disables GatherQuant. Install before the first GatherQuant; do not call
// concurrently with gathers or installs. Siblings taken afterwards share
// the shadows (they are never written again).
func (s *Store) SetPrecision(p tensor.Precision) {
	s.prec, s.qlocal = p, nil
	if p == tensor.PrecisionFP32 {
		return
	}
	s.qlocal = new(tensor.QuantMatrix)
	s.qlocal.Quantize(p, s.local)
	s.epoch.Load().EnsureQuant(p)
}

// Precision returns the store's compute precision.
func (s *Store) Precision() tensor.Precision { return s.prec }

// Sibling returns a second store over the same read-only feature data —
// local shard, current cache epoch, layout, and GPU split — but a fresh
// communicator and private per-Gather scratch. This is the concurrent read
// path: the underlying matrices are never written after construction, so
// any number of sibling stores (an online-serving loop next to the
// training pipeline, several serving replicas) may Gather concurrently,
// each from its own goroutine, as long as each sibling's comm belongs to a
// distinct matched group.
//
// The sibling starts on the parent's current epoch but versions
// independently afterwards: an InstallEpoch on either store is invisible
// to the other, so a serving sibling can track drift while the training
// store's trajectory stays untouched.
func (s *Store) Sibling(comm Comm) (*Store, error) {
	if comm == nil {
		return nil, fmt.Errorf("dist: sibling needs a comm")
	}
	if comm.Rank() != s.comm.Rank() || comm.Size() != s.comm.Size() {
		return nil, fmt.Errorf("dist: sibling comm is rank %d/%d, store is rank %d/%d",
			comm.Rank(), comm.Size(), s.comm.Rank(), s.comm.Size())
	}
	// gpuRows is copied outright (not re-derived from a fraction) so access
	// classification matches the original store exactly.
	sib := newStore(comm, s.layout, s.dim, s.local, s.gpuRows)
	sib.codec = s.codec
	sib.epoch.Store(s.epoch.Load())
	// The quantized shadow is read-only after SetPrecision, so siblings
	// share it rather than re-quantizing the shard.
	sib.prec, sib.qlocal = s.prec, s.qlocal
	return sib, nil
}

// Layout returns the store's partition layout (read-only).
func (s *Store) Layout() *Layout { return s.layout }

// Dim returns the feature dimension.
func (s *Store) Dim() int { return s.dim }

// SetAbort installs an abort channel on the store's communicator: when it
// closes, an in-flight or future Gather fails promptly (the comm group is
// torn down as by Close). Serving loops install their shutdown channel
// here so a Gather blocked on a peer unwinds instead of deadlocking.
// Install before the first Gather; do not call concurrently with Gather.
func (s *Store) SetAbort(abort <-chan struct{}) { s.comm.SetAbort(abort) }

// Live returns the number of matrices handed out by Gather and not yet
// returned with Release — the store-pool leak gauge the shutdown/abort
// regression tests assert returns to zero.
func (s *Store) Live() int64 { return s.pool.Live() }

// Release returns a matrix obtained from Gather to the store's pool. The
// matrix must not be used afterwards. Optional — an unreleased matrix is
// simply collected by the GC — but the training pipeline releases every
// retired batch so warm gathers allocate nothing.
func (s *Store) Release(m *tensor.Matrix) { s.pool.Put(m) }

// Gather assembles the feature matrix for ids (row i holds the features of
// ids[i]) and classifies every access. All ranks in the group must call
// Gather the same number of times per epoch — rounds with no local batch
// pass an empty id list so the collectives stay matched. The returned
// matrix belongs to the store's pool; hand it back with Release when the
// batch retires.
func (s *Store) Gather(ids []int32) (*tensor.Matrix, GatherStats, error) {
	out := s.pool.Get(len(ids), s.dim)
	stats, err := s.gatherInto(ids, out, nil)
	if err != nil {
		// Every error path hands the pooled output back, so an aborted or
		// failed gather leaks nothing from the store's pool.
		s.pool.Put(out)
		return nil, stats, err
	}
	return out, stats, nil
}

// GatherQuant is Gather with the output assembled directly in the store's
// reduced precision (SetPrecision): local and cache rows are byte copies of
// the pre-quantized shadows, and when the wire codec matches the precision,
// remote payloads scatter into the output without a dequantize/requantize
// round trip — the wire format is the compute format. The wire protocol is
// identical to Gather's, so quantized and full-precision gathers stay
// collective-matched across a group.
//
// The returned matrix is store-owned scratch, valid until the next
// GatherQuant on this store; there is nothing to Release.
func (s *Store) GatherQuant(ids []int32) (*tensor.QuantMatrix, GatherStats, error) {
	if s.prec == tensor.PrecisionFP32 {
		return nil, GatherStats{}, fmt.Errorf("dist: GatherQuant needs a reduced precision (SetPrecision); store is fp32")
	}
	s.qscratch.Resize(s.prec, len(ids), s.dim)
	stats, err := s.gatherInto(ids, nil, &s.qscratch)
	if err != nil {
		return nil, stats, err
	}
	return &s.qscratch, stats, nil
}

// SetGatherTimeout bounds each Gather's collectives on this store's
// communicator: a gather blocked on a stalled or dead peer fails with an
// error satisfying errors.Is(err, dist.ErrTimeout) instead of hanging
// (and, per the Comm contract, poisons the group — pair it with
// GatherLocal and a fresh sibling group to serve through the failure).
// Like SetAbort, install before the first Gather; do not call concurrently
// with gathers.
func (s *Store) SetGatherTimeout(d time.Duration) { s.comm.SetTimeout(d) }

// GatherLocal is the degraded-mode Gather: it assembles the output from
// the local shard and the cache only, runs no collectives, and zero-fills
// the rows a healthy gather would have fetched remotely, reporting their
// count in stats.Missing. Because it never touches the communicator it
// cannot block, cannot fail, and needs no peer coordination — the serving
// path falls back to it when the comm group is poisoned, trading accuracy
// on the missing rows for availability on all of them. The returned matrix
// belongs to the store's pool; hand it back with Release.
func (s *Store) GatherLocal(ids []int32) (*tensor.Matrix, GatherStats) {
	out := s.pool.Get(len(ids), s.dim)
	stats := s.gatherLocalInto(ids, out, nil)
	return out, stats
}

// GatherLocalQuant is GatherLocal with the output assembled in the store's
// reduced precision (SetPrecision), mirroring GatherQuant: the result is
// store-owned scratch, valid until the next quantized gather, with nothing
// to Release.
func (s *Store) GatherLocalQuant(ids []int32) (*tensor.QuantMatrix, GatherStats, error) {
	if s.prec == tensor.PrecisionFP32 {
		return nil, GatherStats{}, fmt.Errorf("dist: GatherLocalQuant needs a reduced precision (SetPrecision); store is fp32")
	}
	s.qscratch.Resize(s.prec, len(ids), s.dim)
	stats := s.gatherLocalInto(ids, nil, &s.qscratch)
	return &s.qscratch, stats, nil
}

// gatherLocalInto classifies ids exactly as gatherInto does, but resolves
// every row locally: shard rows and cache hits copy as usual, and rows
// owned by unreachable peers zero-fill explicitly — pool memory is reused,
// so a skipped write would leak a previous batch's features into the
// prediction.
func (s *Store) gatherLocalInto(ids []int32, out *tensor.Matrix, qout *tensor.QuantMatrix) GatherStats {
	rank := s.comm.Rank()
	k := s.layout.K()
	// One pointer load pins the cache version for the whole gather; an
	// install racing this call flips either all of its lookups or none.
	ep := s.epoch.Load()
	s.hitIDs = s.hitIDs[:0]
	for p := 0; p < k; p++ {
		s.reqIDs[p] = s.reqIDs[p][:0]
	}
	var stats GatherStats
	for i, v := range ids {
		owner := s.layout.Owner(v)
		if owner == rank {
			row := int(int64(v) - s.layout.Starts[rank])
			if row < s.gpuRows {
				stats.LocalGPU++
			} else {
				stats.LocalCPU++
			}
			if qout != nil {
				qout.CopyRow(i, s.qlocal, row)
			} else {
				copy(out.Row(i), s.local.Row(row))
			}
			continue
		}
		if ep != nil && ep.Index != nil {
			if slot, ok := ep.Index.Slot(v); ok {
				stats.CacheHits++
				s.hitIDs = append(s.hitIDs, v)
				if qout != nil {
					qout.CopyRow(i, ep.Quant, int(slot))
				} else {
					copy(out.Row(i), ep.Rows.Row(int(slot)))
				}
				continue
			}
		}
		stats.Missing++
		s.reqIDs[owner] = append(s.reqIDs[owner], v)
		if qout != nil {
			for j := range s.rowScratch {
				s.rowScratch[j] = 0
			}
			qout.SetRow(i, s.rowScratch)
		} else {
			row := out.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	}
	// Degraded rounds still feed the online policy: the zero-filled ids
	// are exactly the misses a healthy gather would have fetched. Sort for
	// the same deterministic per-peer order gatherInto produces.
	for p := 0; p < k; p++ {
		if len(s.reqIDs[p]) > 1 {
			s.idsort.ids = s.reqIDs[p]
			sort.Sort(&s.idsort)
		}
	}
	stats.CacheHitIDs = s.hitIDs
	stats.RemoteIDs = s.reqIDs[:k]
	return stats
}

// gatherInto runs the three matched collectives and scatters every feature
// row into exactly one of out (fp32) or qout (reduced precision) — the four
// row sinks (local shard, cache hit, codec payload, raw fp32 payload) are
// the only places the two modes differ.
func (s *Store) gatherInto(ids []int32, out *tensor.Matrix, qout *tensor.QuantMatrix) (GatherStats, error) {
	k := s.layout.K()
	rank := s.comm.Rank()
	for p := range s.byPeer {
		s.byPeer[p] = 0
	}
	stats := GatherStats{RemoteByPeer: s.byPeer[:k]}
	// One pointer load pins the cache version for the whole gather; an
	// install racing this call flips either all of its lookups or none.
	ep := s.epoch.Load()
	s.hitIDs = s.hitIDs[:0]

	// Classify accesses, satisfy local/cached rows immediately, and build
	// per-peer request lists for the rest.
	for p := 0; p < k; p++ {
		s.reqIDs[p] = s.reqIDs[p][:0]
		s.rowOf[p] = s.rowOf[p][:0]
	}
	for i, v := range ids {
		owner := s.layout.Owner(v)
		if owner == rank {
			row := int(int64(v) - s.layout.Starts[rank])
			if row < s.gpuRows {
				stats.LocalGPU++
			} else {
				stats.LocalCPU++
			}
			if qout != nil {
				qout.CopyRow(i, s.qlocal, row)
			} else {
				copy(out.Row(i), s.local.Row(row))
			}
			continue
		}
		if ep != nil && ep.Index != nil {
			if slot, ok := ep.Index.Slot(v); ok {
				stats.CacheHits++
				s.hitIDs = append(s.hitIDs, v)
				if qout != nil {
					qout.CopyRow(i, ep.Quant, int(slot))
				} else {
					copy(out.Row(i), ep.Rows.Row(int(slot)))
				}
				continue
			}
		}
		stats.RemoteFetch++
		stats.RemoteByPeer[owner]++
		s.rowOf[owner] = append(s.rowOf[owner], int32(i))
		s.reqIDs[owner] = append(s.reqIDs[owner], v)
	}
	stats.CacheHitIDs = s.hitIDs
	stats.RemoteIDs = s.reqIDs[:k]

	// Collective 1: request counts, so every rank knows how many ids each
	// peer will ask of it (sized like the paper's first all-to-all).
	for p := 0; p < k; p++ {
		binary.LittleEndian.PutUint32(s.cntFrame[4*p:], uint32(len(s.reqIDs[p])))
		s.sendPtr[p] = s.cntFrame[4*p : 4*p+4]
	}
	cnts, err := s.comm.AllToAll(s.sendPtr)
	if err != nil {
		return stats, err
	}
	// Decode before the next collective recycles the receive buffers.
	for p := 0; p < k; p++ {
		if p == rank {
			s.cntRecv[p] = 0
			continue
		}
		if len(cnts[p]) != 4 {
			return stats, fmt.Errorf("dist: rank %d sent a %d-byte count frame", p, len(cnts[p]))
		}
		s.cntRecv[p] = int32(binary.LittleEndian.Uint32(cnts[p]))
		if s.cntRecv[p] < 0 {
			return stats, fmt.Errorf("dist: rank %d announced an implausible request count", p)
		}
	}

	// Collective 2: request ids, sorted ascending per peer so the owner
	// answers with sequential reads of its shard. Under the fp32 codec the
	// payloads are zero-copy views of the (reused) request lists; under
	// fp16/int8 the sorted lists delta-compress into reused varint buffers.
	for p := 0; p < k; p++ {
		if p != rank && len(s.reqIDs[p]) > 1 {
			s.sorter.ids, s.sorter.rows = s.reqIDs[p], s.rowOf[p]
			sort.Sort(&s.sorter)
		}
		if s.codec == CodecFP32 {
			s.sendPtr[p] = i32AsBytes(s.reqIDs[p])
		} else {
			s.idEnc[p] = appendIDsDelta(s.idEnc[p][:0], s.reqIDs[p])
			s.sendPtr[p] = s.idEnc[p]
		}
	}
	reqs, err := s.comm.AllToAll(s.sendPtr)
	if err != nil {
		return stats, err
	}

	// Collective 3: feature payloads answering each peer's request list.
	// fp32 stages rows once into a reused contiguous float32 buffer per
	// peer and ships its byte view — no per-row encode/append; fp16/int8
	// stream-decode the varint ids and encode each row straight into a
	// reused per-peer wire buffer.
	for p := 0; p < k; p++ {
		s.sendPtr[p] = nil
		if p == rank {
			continue
		}
		cnt := int(s.cntRecv[p])
		if s.codec != CodecFP32 {
			rd := idDeltaReader{b: reqs[p]}
			enc := s.featEnc[p][:0]
			for j := 0; j < cnt; j++ {
				v, err := rd.next()
				if err != nil {
					return stats, fmt.Errorf("dist: rank %d request list: %w", p, err)
				}
				// Explicit interval check (see the fp32 branch below).
				if int64(v) < s.layout.Starts[rank] || int64(v) >= s.layout.Starts[rank+1] {
					return stats, fmt.Errorf("dist: rank %d requested vertex %d not owned here", p, v)
				}
				enc = s.codec.appendFeatRow(enc, s.local.Row(int(int64(v)-s.layout.Starts[rank])))
			}
			if rd.remaining() != 0 {
				return stats, fmt.Errorf("dist: rank %d announced %d requests but sent %d trailing bytes", p, cnt, rd.remaining())
			}
			s.featEnc[p] = enc
			if cnt > 0 {
				s.sendPtr[p] = enc
			}
			continue
		}
		want := bytesAsI32(reqs[p])
		if len(want) != cnt {
			return stats, fmt.Errorf("dist: rank %d announced %d requests but sent %d ids", p, s.cntRecv[p], len(want))
		}
		if len(want) == 0 {
			continue
		}
		buf := s.featBuf[p]
		if need := len(want) * s.dim; cap(buf) < need {
			buf = make([]float32, need)
		} else {
			buf = buf[:need]
		}
		for j, v := range want {
			// Explicit interval check, not Owner(): a corrupt peer can send
			// a negative or out-of-range id, and Owner maps everything below
			// Starts[1] — including negatives — to rank 0, which would turn
			// the row subtraction below into an out-of-bounds panic.
			if int64(v) < s.layout.Starts[rank] || int64(v) >= s.layout.Starts[rank+1] {
				return stats, fmt.Errorf("dist: rank %d requested vertex %d not owned here", p, v)
			}
			row := int(int64(v) - s.layout.Starts[rank])
			copy(buf[j*s.dim:(j+1)*s.dim], s.local.Row(row))
		}
		s.featBuf[p] = buf
		s.sendPtr[p] = f32AsBytes(buf)
	}
	feats, err := s.comm.AllToAll(s.sendPtr)
	if err != nil {
		return stats, err
	}

	// Scatter the received payloads directly into the waiting output rows:
	// fp32 through a zero-copy float32 view of each payload, fp16/int8 by
	// dequantizing each encoded row straight into its output row. Quantized
	// outputs whose precision matches the wire codec take the passthrough:
	// the payload's scale bits and quantized values are copied verbatim —
	// the wire format is the compute format, no numeric op at all.
	for p := 0; p < k; p++ {
		if p == rank || len(s.rowOf[p]) == 0 {
			continue
		}
		if s.codec != CodecFP32 {
			rowWire := s.codec.featRowWire(s.dim)
			if len(feats[p]) != len(s.rowOf[p])*rowWire {
				return stats, fmt.Errorf("dist: rank %d returned %d payload bytes for %d requested rows", p, len(feats[p]), len(s.rowOf[p]))
			}
			for j, row := range s.rowOf[p] {
				src := feats[p][j*rowWire : (j+1)*rowWire]
				switch {
				case qout == nil:
					s.codec.decodeFeatRow(out.Row(int(row)), src)
				case s.codec == CodecInt8 && qout.Prec == tensor.PrecisionInt8:
					qout.Scale[row] = math.Float32frombits(binary.LittleEndian.Uint32(src))
					qrow := qout.I8[int(row)*s.dim : (int(row)+1)*s.dim]
					for t := range qrow {
						qrow[t] = int8(src[4+t])
					}
				case s.codec == CodecFP16 && qout.Prec == tensor.PrecisionFP16:
					hrow := qout.H[int(row)*s.dim : (int(row)+1)*s.dim]
					for t := range hrow {
						hrow[t] = binary.LittleEndian.Uint16(src[2*t:])
					}
				default:
					// Codec and precision disagree (e.g. fp16 wire feeding an
					// int8 forward): decode, then requantize.
					s.codec.decodeFeatRow(s.rowScratch, src)
					qout.SetRow(int(row), s.rowScratch)
				}
			}
			continue
		}
		vals := bytesAsF32(feats[p])
		if len(vals) != len(s.rowOf[p])*s.dim {
			return stats, fmt.Errorf("dist: rank %d returned %d values for %d requested rows", p, len(vals), len(s.rowOf[p]))
		}
		for j, row := range s.rowOf[p] {
			if qout != nil {
				qout.SetRow(int(row), vals[j*s.dim:(j+1)*s.dim])
			} else {
				copy(out.Row(int(row)), vals[j*s.dim:(j+1)*s.dim])
			}
		}
	}
	return stats, nil
}
