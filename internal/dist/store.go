package dist

import (
	"fmt"

	"salientpp/internal/cache"
	"salientpp/internal/tensor"
)

// GatherStats classifies the feature accesses of one Gather call. The
// categories mirror the paper's cost hierarchy: GPU-resident local rows are
// free, CPU-resident local rows cost a host-to-device copy, cache hits cost
// a local read of a replicated row, and remote fetches cost network
// communication.
type GatherStats struct {
	LocalGPU    int
	LocalCPU    int
	CacheHits   int
	RemoteFetch int
	// RemoteByPeer[p] counts rows fetched from rank p this call.
	RemoteByPeer []int
}

// Store is one rank's partitioned feature store: the local shard (split
// into a GPU-resident prefix and a CPU remainder), an optional static
// cache of remote rows, and the communicator over which remote rows are
// fetched with three matched collectives per Gather — request counts,
// request ids, and feature payloads (§4.2).
type Store struct {
	comm    Comm
	layout  *Layout
	dim     int
	local   *tensor.Matrix
	cache   *cache.Cache
	cdata   *tensor.Matrix
	gpuRows int

	// Reusable per-Gather scratch; a Store is used by one goroutine at a
	// time (the pipeline's feature-collection stage).
	reqIDs   [][]int32
	rowOf    [][]int32
	sendCnt  [][]byte
	sendIDs  [][]byte
	sendFeat [][]byte
}

// NewStore validates shapes and returns the store. local holds the rows of
// this rank's layout interval; cc and cdata (parallel: cdata.Row(i) is the
// feature row of cc.IDs()[i]) may both be nil to disable caching.
// gpuFraction in [0,1] sets the GPU-resident prefix of the local shard.
func NewStore(comm Comm, layout *Layout, dim int, local *tensor.Matrix, cc *cache.Cache, cdata *tensor.Matrix, gpuFraction float64) (*Store, error) {
	if comm == nil || layout == nil {
		return nil, fmt.Errorf("dist: store needs comm and layout")
	}
	rank := comm.Rank()
	if rank < 0 || rank >= layout.K() {
		return nil, fmt.Errorf("dist: rank %d outside layout with K=%d", rank, layout.K())
	}
	if comm.Size() != layout.K() {
		return nil, fmt.Errorf("dist: comm size %d != layout K %d", comm.Size(), layout.K())
	}
	if local == nil || local.Cols != dim {
		return nil, fmt.Errorf("dist: local shard missing or wrong width")
	}
	if local.Rows != layout.PartSize(rank) {
		return nil, fmt.Errorf("dist: local shard has %d rows, layout owns %d", local.Rows, layout.PartSize(rank))
	}
	if (cc == nil) != (cdata == nil) {
		return nil, fmt.Errorf("dist: cache index and cache data must be supplied together")
	}
	if cc != nil && cdata.Rows != cc.Len() {
		return nil, fmt.Errorf("dist: cache data has %d rows for %d cached ids", cdata.Rows, cc.Len())
	}
	if cc != nil && cdata.Cols != dim {
		return nil, fmt.Errorf("dist: cache data width %d != feature dim %d", cdata.Cols, dim)
	}
	if gpuFraction < 0 || gpuFraction > 1 {
		return nil, fmt.Errorf("dist: gpuFraction %v outside [0,1]", gpuFraction)
	}
	k := layout.K()
	return &Store{
		comm: comm, layout: layout, dim: dim,
		local: local, cache: cc, cdata: cdata,
		gpuRows:  int(gpuFraction * float64(local.Rows)),
		reqIDs:   make([][]int32, k),
		rowOf:    make([][]int32, k),
		sendCnt:  make([][]byte, k),
		sendIDs:  make([][]byte, k),
		sendFeat: make([][]byte, k),
	}, nil
}

// Gather assembles the feature matrix for ids (row i holds the features of
// ids[i]) and classifies every access. All ranks in the group must call
// Gather the same number of times per epoch — rounds with no local batch
// pass an empty id list so the collectives stay matched.
func (s *Store) Gather(ids []int32) (*tensor.Matrix, GatherStats, error) {
	k := s.layout.K()
	rank := s.comm.Rank()
	stats := GatherStats{RemoteByPeer: make([]int, k)}
	out := tensor.New(len(ids), s.dim)

	// Classify accesses, satisfy local/cached rows immediately, and build
	// per-peer request lists for the rest.
	// rowOf[p][j] records which output row waits on request j of peer p.
	for p := 0; p < k; p++ {
		s.reqIDs[p] = s.reqIDs[p][:0]
		s.rowOf[p] = s.rowOf[p][:0]
	}
	for i, v := range ids {
		owner := s.layout.Owner(v)
		if owner == rank {
			row := int(int64(v) - s.layout.Starts[rank])
			if row < s.gpuRows {
				stats.LocalGPU++
			} else {
				stats.LocalCPU++
			}
			copy(out.Row(i), s.local.Row(row))
			continue
		}
		if s.cache != nil {
			if slot, ok := s.cache.Slot(v); ok {
				stats.CacheHits++
				copy(out.Row(i), s.cdata.Row(int(slot)))
				continue
			}
		}
		stats.RemoteFetch++
		stats.RemoteByPeer[owner]++
		s.rowOf[owner] = append(s.rowOf[owner], int32(i))
		s.reqIDs[owner] = append(s.reqIDs[owner], v)
	}

	// Collective 1: request counts, so every rank knows how many ids each
	// peer will ask of it (sized like the paper's first all-to-all).
	for p := 0; p < k; p++ {
		s.sendCnt[p] = i32ToBytes(s.sendCnt[p][:0], []int32{int32(len(s.reqIDs[p]))})
	}
	cnts, err := s.comm.AllToAll(s.sendCnt)
	if err != nil {
		return nil, stats, err
	}

	// Collective 2: request ids.
	for p := 0; p < k; p++ {
		s.sendIDs[p] = i32ToBytes(s.sendIDs[p][:0], s.reqIDs[p])
	}
	reqs, err := s.comm.AllToAll(s.sendIDs)
	if err != nil {
		return nil, stats, err
	}

	// Collective 3: feature payloads answering each peer's request list.
	for p := 0; p < k; p++ {
		s.sendFeat[p] = s.sendFeat[p][:0]
		if p == rank {
			continue
		}
		want := bytesToI32(reqs[p])
		if exp := int32(len(want)); len(cnts[p]) != 4 || bytesToI32(cnts[p])[0] != exp {
			return nil, stats, fmt.Errorf("dist: rank %d announced %v requests but sent %d ids", p, cnts[p], exp)
		}
		for _, v := range want {
			if s.layout.Owner(v) != rank {
				return nil, stats, fmt.Errorf("dist: rank %d requested vertex %d not owned here", p, v)
			}
			row := int(int64(v) - s.layout.Starts[rank])
			s.sendFeat[p] = f32ToBytes(s.sendFeat[p], s.local.Row(row))
		}
	}
	feats, err := s.comm.AllToAll(s.sendFeat)
	if err != nil {
		return nil, stats, err
	}

	// Scatter the received payloads into the waiting output rows.
	var decode []float32
	for p := 0; p < k; p++ {
		if p == rank || len(s.rowOf[p]) == 0 {
			continue
		}
		decode = bytesToF32(decode, feats[p])
		if len(decode) != len(s.rowOf[p])*s.dim {
			return nil, stats, fmt.Errorf("dist: rank %d returned %d values for %d requested rows", p, len(decode), len(s.rowOf[p]))
		}
		for j, row := range s.rowOf[p] {
			copy(out.Row(int(row)), decode[j*s.dim:(j+1)*s.dim])
		}
	}
	return out, stats, nil
}
