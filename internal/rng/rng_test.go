package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different stream ids should differ")
	}
	// Same stream id from the same parent state must agree.
	p2 := New(7)
	d1 := p2.Split(0)
	e1 := New(7).Split(0)
	for i := 0; i < 100; i++ {
		if d1.Uint64() != e1.Uint64() {
			t.Fatalf("split determinism violated at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) wrong length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(17)
	buf := make([]int32, 0, 64)
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(200)
		k := r.Intn(n + 1)
		out := r.SampleK(buf, k, n)
		if len(out) != k {
			t.Fatalf("SampleK returned %d values, want %d", len(out), k)
		}
		seen := map[int32]bool{}
		for _, v := range out {
			if v < 0 || int(v) >= n {
				t.Fatalf("SampleK value %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("SampleK produced duplicate %d (k=%d n=%d)", v, k, n)
			}
			seen[v] = true
		}
	}
}

func TestSampleKFullRange(t *testing.T) {
	r := New(19)
	out := r.SampleK(nil, 10, 10)
	seen := make([]bool, 10)
	for _, v := range out {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("SampleK(10,10) missing %d", i)
		}
	}
}

func TestSampleKPanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleK(nil, 5, 4)
}

func TestSampleKCoverageProperty(t *testing.T) {
	// Property: over many draws every element of [0,n) appears.
	f := func(seed uint64) bool {
		r := New(seed)
		const n, k = 20, 5
		seen := make([]bool, n)
		for i := 0; i < 400; i++ {
			for _, v := range r.SampleK(nil, k, n) {
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkSampleK15of1000(b *testing.B) {
	r := New(1)
	buf := make([]int32, 0, 15)
	for i := 0; i < b.N; i++ {
		buf = r.SampleK(buf, 15, 1000)
	}
}

// TestStateRoundTrip pins the checkpointing contract: capturing State
// mid-sequence and restoring it — into the same generator or a fresh one —
// must reproduce the exact remaining sequence, which is what makes resumed
// training draw the same dropout masks the uninterrupted run would have.
func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance mid-sequence
	}
	snap := r.State()
	var want [32]uint64
	for i := range want {
		want[i] = r.Uint64()
	}

	fresh := FromState(snap)
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("FromState diverged at draw %d: %d != %d", i, got, w)
		}
	}
	r.SetState(snap)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("SetState diverged at draw %d: %d != %d", i, got, w)
		}
	}
}
