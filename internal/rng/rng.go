// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the SALIENT++ reproduction.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure; it
// is chosen for speed, quality, and — critically for reproducible
// experiments — cheap splitting: every sampler worker, epoch, and minibatch
// derives an independent stream from a (seed, stream) pair, so results are
// identical regardless of goroutine scheduling.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// instances with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give independent
// streams; the same seed always gives the same stream.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	return &r
}

// Split derives an independent generator from r identified by stream.
// Calling Split with the same stream on generators in the same state yields
// identical children, which makes parallel sampling deterministic: worker i
// uses parent.Split(uint64(i)).
func (r *RNG) Split(stream uint64) *RNG {
	c := new(RNG)
	r.SplitInto(stream, c)
	return c
}

// SplitInto writes the child stream Split(stream) would return into dst
// without allocating — the long-running serving loop derives one child per
// round this way, keeping its steady state allocation-free.
func (r *RNG) SplitInto(stream uint64, dst *RNG) {
	// Mix the parent state with the stream id through SplitMix64 so that
	// nearby stream ids yield unrelated child states.
	sm := r.s0 ^ (stream+1)*0x9e3779b97f4a7c15
	dst.s0 = splitmix64(&sm)
	sm ^= r.s1
	dst.s1 = splitmix64(&sm)
	sm ^= r.s2
	dst.s2 = splitmix64(&sm)
	sm ^= r.s3
	dst.s3 = splitmix64(&sm)
}

// State returns the generator's internal xoshiro256** state. Together with
// SetState it lets checkpoints capture and restore a stream mid-sequence so
// resumed runs draw exactly the numbers the uninterrupted run would have.
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState overwrites the generator's internal state with one previously
// returned by State.
func (r *RNG) SetState(s [4]uint64) {
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}

// FromState reconstructs a generator from a State snapshot.
func FromState(s [4]uint64) *RNG {
	r := new(RNG)
	r.SetState(s)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids modulo
// bias without a division in the common case.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo < bound {
			// Rejection zone: recompute threshold only on the slow path.
			threshold := -bound % bound
			if lo < threshold {
				continue
			}
		}
		return int(hi)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + lo1>>32
	lo = a * b
	return hi, lo
}

// Int31n returns a uniform int32 in [0, n).
func (r *RNG) Int31n(n int32) int32 { return int32(r.Intn(int(n))) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate using the polar
// Box–Muller transform. One of the pair is discarded for simplicity.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) as int32 values.
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.ShuffleInt32(p)
	return p
}

// ShuffleInt32 permutes s uniformly at random in place (Fisher–Yates).
func (r *RNG) ShuffleInt32(s []int32) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// SampleK fills dst with k distinct uniform values from [0, n) and returns
// it. It panics if k > n. For small k relative to n it uses Floyd's
// algorithm; otherwise it falls back to a partial Fisher–Yates shuffle.
// The result order is unspecified but deterministic given the RNG state.
func (r *RNG) SampleK(dst []int32, k, n int) []int32 {
	if k > n {
		panic("rng: SampleK with k > n")
	}
	dst = dst[:0]
	if k == 0 {
		return dst
	}
	// Floyd's algorithm needs a membership test; for the tiny k used by
	// neighborhood sampling (fanouts <= ~25) a linear scan over dst is
	// faster than a map and allocation-free.
	if k <= 64 || k*8 < n {
		for j := n - k; j < n; j++ {
			t := int32(r.Intn(j + 1))
			found := false
			for _, x := range dst {
				if x == t {
					found = true
					break
				}
			}
			if found {
				t = int32(j)
			}
			dst = append(dst, t)
		}
		return dst
	}
	perm := r.Perm(n)
	return append(dst, perm[:k]...)
}
