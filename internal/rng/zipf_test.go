package rng

import (
	"math"
	"testing"
)

// TestZipfDeterministic: the sampler is a pure function of the RNG stream.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(New(7), 1.1, 1000)
	b := NewZipf(New(7), 1.1, 1000)
	for i := 0; i < 10000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestZipfRangeAndSkew: every draw lands in [0, n), and the empirical head
// probabilities match the (1+k)^-s law — p(0)/p(1) = 2^s — within
// sampling tolerance. Also covers a tiny range (n=1 must always return 0).
func TestZipfRangeAndSkew(t *testing.T) {
	const n, draws = 10000, 400000
	const s = 1.1
	z := NewZipf(New(3), s, n)
	counts := make([]int, 16)
	for i := 0; i < draws; i++ {
		v := z.Uint64()
		if v >= n {
			t.Fatalf("draw %d out of range: %d", i, v)
		}
		if v < uint64(len(counts)) {
			counts[v]++
		}
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Fatalf("head not monotone: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	want := math.Pow(2, s)
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("p(0)/p(1) = %.3f, want ≈ %.3f", ratio, want)
	}

	one := NewZipf(New(1), 2, 1)
	for i := 0; i < 100; i++ {
		if v := one.Uint64(); v != 0 {
			t.Fatalf("n=1 sampler drew %d", v)
		}
	}
}

// TestZipfPanics: the envelope needs s > 1 and a non-empty range.
func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		s float64
		n uint64
	}{{1, 10}, {0.5, 10}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%v, n=%d) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(New(1), tc.s, tc.n)
		}()
	}
}
