package rng

import "math"

// Zipf draws integers k in [0, n) with probability proportional to
// (1+k)^-s, s > 1 — the skewed access pattern of real inference traffic,
// where a small set of hot vertices absorbs most requests. It uses
// Hörmann's rejection-inversion method: invert the continuous envelope
// H(x) = ((1+x)^(1-s))/(1-s), then accept or reject the rounded candidate
// against the true mass, so sampling is O(1) per draw with no precomputed
// table regardless of n. Draws consume the supplied RNG stream, keeping
// workloads reproducible under the usual (seed, stream) splitting.
type Zipf struct {
	r              *RNG
	s              float64
	oneMinusS      float64
	oneMinusSInv   float64
	hImaxHalf      float64 // H(imax + 1/2)
	hHalfMinusMass float64 // H(1/2) - p(0): top of the inversion range
	guard          float64 // acceptance shortcut for the dense head
	imax           float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s. It panics if
// s <= 1 or n == 0 (the envelope integral requires s > 1; use s = 1+ε for
// near-harmonic workloads).
func NewZipf(r *RNG, s float64, n uint64) *Zipf {
	if s <= 1 {
		panic("rng: Zipf exponent must be > 1")
	}
	if n == 0 {
		panic("rng: Zipf over an empty range")
	}
	z := &Zipf{
		r:            r,
		s:            s,
		oneMinusS:    1 - s,
		oneMinusSInv: 1 / (1 - s),
		imax:         float64(n - 1),
	}
	z.hImaxHalf = z.h(z.imax + 0.5)
	z.hHalfMinusMass = z.h(0.5) - 1 // p(0) = (1+0)^-s = 1
	z.guard = 1 - z.hInv(z.h(1.5)-math.Exp(-s*math.Log(2)))
	return z
}

// h is the envelope antiderivative H(x) = (1+x)^(1-s) / (1-s).
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log1p(x)) * z.oneMinusSInv
}

// hInv is H⁻¹(y).
func (z *Zipf) hInv(y float64) float64 {
	return math.Expm1(math.Log(z.oneMinusS*y) * z.oneMinusSInv)
}

// Uint64 returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Uint64() uint64 {
	for {
		u := z.hImaxHalf + z.r.Float64()*(z.hHalfMinusMass-z.hImaxHalf)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k-x <= z.guard {
			return uint64(k)
		}
		if u >= z.h(k+0.5)-math.Exp(-z.s*math.Log1p(k)) {
			return uint64(k)
		}
	}
}
