package perfmodel

import (
	"fmt"

	"salientpp/internal/cache"
	"salientpp/internal/dist"
	"salientpp/internal/graph"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
)

// Scenario describes a deployed configuration whose workload is to be
// measured: the reordered graph, the contiguous partition layout, each
// machine's training vertices, caches, and GPU-resident prefix.
type Scenario struct {
	Graph    *graph.CSR
	Layout   *dist.Layout
	TrainPer [][]int32      // per-machine training ids (layout id space)
	Caches   []*cache.Cache // per-machine; nil entries mean no cache
	GPURows  []int          // per-machine GPU-resident local prefix rows
	Fanouts  []int
	Batch    int
	// FeatureBytes is the wire size of one feature row.
	FeatureBytes int64
	// Model dimensions for flop accounting.
	InDim, Hidden, Classes int
}

// BatchWork is the measured workload of one sampled minibatch on one
// machine — everything the event simulator needs to price it.
type BatchWork struct {
	Seeds        int
	Inputs       int
	Edges        int64
	LayerInputs  []int   // input-set size per layer, widest first
	LayerEdges   []int64 // sampled edges per layer, widest first
	LocalGPU     int
	LocalCPU     int
	CacheHits    int
	RemoteFetch  int
	RemoteByPeer []int
}

// Workload is one epoch of measured minibatches for every machine, padded
// so all machines have the same round count.
type Workload struct {
	K                              int
	PerMachine                     [][]BatchWork
	Rounds                         int
	FeatureBytes                   int64
	InDim, Hidden, Classes, Layers int
}

// BuildWorkload samples one evaluation epoch per machine and classifies
// every feature access exactly as dist.Store.Gather would, without moving
// any bytes. Deterministic in seed.
func BuildWorkload(s *Scenario, seed uint64, workers int) (*Workload, error) {
	k := s.Layout.K()
	if len(s.TrainPer) != k {
		return nil, fmt.Errorf("perfmodel: %d train sets for %d machines", len(s.TrainPer), k)
	}
	if s.Batch <= 0 {
		return nil, fmt.Errorf("perfmodel: batch size %d", s.Batch)
	}
	smp, err := sample.NewSampler(s.Graph, s.Fanouts)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		K: k, FeatureBytes: s.FeatureBytes,
		InDim: s.InDim, Hidden: s.Hidden, Classes: s.Classes,
		Layers: len(s.Fanouts),
	}
	base := rng.New(seed)
	rounds := 0
	for m := 0; m < k; m++ {
		mr := base.Split(uint64(m))
		batches := sample.EpochBatches(s.TrainPer[m], s.Batch, mr.Split(0))
		mfgs := sample.PrepareEpoch(smp, batches, mr.Split(1), workers)
		var works []BatchWork
		for _, mfg := range mfgs {
			works = append(works, classify(s, m, mfg))
			mfg.Release()
		}
		w.PerMachine = append(w.PerMachine, works)
		if len(works) > rounds {
			rounds = len(works)
		}
	}
	// Pad with empty batches so collective rounds align.
	for m := 0; m < k; m++ {
		for len(w.PerMachine[m]) < rounds {
			w.PerMachine[m] = append(w.PerMachine[m], BatchWork{
				LayerInputs:  make([]int, w.Layers),
				LayerEdges:   make([]int64, w.Layers),
				RemoteByPeer: make([]int, k),
			})
		}
	}
	w.Rounds = rounds
	return w, nil
}

// classify mirrors dist.Store.Gather's bookkeeping for machine m.
func classify(s *Scenario, m int, mfg *sample.MFG) BatchWork {
	k := s.Layout.K()
	bw := BatchWork{
		Seeds:        len(mfg.Seeds),
		Inputs:       len(mfg.InputIDs()),
		Edges:        mfg.TotalEdges(),
		RemoteByPeer: make([]int, k),
	}
	for _, b := range mfg.Blocks {
		bw.LayerInputs = append(bw.LayerInputs, b.NumInputs())
		bw.LayerEdges = append(bw.LayerEdges, int64(b.NumEdges()))
	}
	var c *cache.Cache
	if s.Caches != nil {
		c = s.Caches[m]
	}
	gpuRows := 0
	if s.GPURows != nil {
		gpuRows = s.GPURows[m]
	}
	for _, v := range mfg.InputIDs() {
		owner := s.Layout.Owner(v)
		if owner == m {
			if s.Layout.LocalRow(v) < gpuRows {
				bw.LocalGPU++
			} else {
				bw.LocalCPU++
			}
			continue
		}
		if c != nil && c.Has(v) {
			bw.CacheHits++
			continue
		}
		bw.RemoteFetch++
		bw.RemoteByPeer[owner]++
	}
	return bw
}

// RemoteVertices returns total remote fetches per epoch across machines.
func (w *Workload) RemoteVertices() int64 {
	var t int64
	for _, works := range w.PerMachine {
		for _, b := range works {
			t += int64(b.RemoteFetch)
		}
	}
	return t
}

// RemoteBytes returns total feature payload bytes fetched per epoch.
func (w *Workload) RemoteBytes() int64 { return w.RemoteVertices() * w.FeatureBytes }

// flops estimates forward+backward compute for one batch: two dense
// matmuls per layer over the destination rows plus the aggregation sweep,
// with backward costed at twice the forward.
func (w *Workload) flops(b *BatchWork) float64 {
	if b.Seeds == 0 {
		return 0
	}
	var fwd float64
	for l := 0; l < w.Layers; l++ {
		din := w.Hidden
		if l == 0 {
			din = w.InDim
		}
		dout := w.Hidden
		if l == w.Layers-1 {
			dout = w.Classes
		}
		nd := b.Seeds
		if l+1 < w.Layers {
			nd = b.LayerInputs[l+1]
		}
		fwd += 2 * 2 * float64(nd) * float64(din) * float64(dout) // self + neigh matmuls
		fwd += float64(b.LayerEdges[l]) * float64(din)            // mean aggregation
	}
	return 3 * fwd
}

// GradBytes returns the gradient all-reduce payload for the model
// dimensions (two weight matrices plus bias per layer, float32).
func (w *Workload) GradBytes() int64 {
	var params int64
	for l := 0; l < w.Layers; l++ {
		din := int64(w.Hidden)
		if l == 0 {
			din = int64(w.InDim)
		}
		dout := int64(w.Hidden)
		if l == w.Layers-1 {
			dout = int64(w.Classes)
		}
		params += 2*din*dout + dout
	}
	return params * 4
}
