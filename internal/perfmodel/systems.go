package perfmodel

import (
	"fmt"
	"math"
)

// System selects the execution strategy being simulated. Caching is a
// property of the workload (it changes what is fetched); the system
// controls scheduling and which data paths exist.
type System string

// The systems of Table 1 / Figure 4 plus the DistDGL-like baseline of
// Table 4.
const (
	// SystemFullReplication is SALIENT: every machine holds all features;
	// no feature communication; deep pipeline.
	SystemFullReplication System = "salient-full-replication"
	// SystemSequential is "+ Partitioned features": remote fetches happen
	// synchronously per batch with no overlap.
	SystemSequential System = "partitioned-sequential"
	// SystemPipelined is "+ Pipelined communication": remote fetches
	// overlap compute with up to PipelineDepth batches in flight.
	SystemPipelined System = "partitioned-pipelined"
	// SystemDistDGL approximates DistDGL's public distributed code:
	// per-hop sampling requests over the network, no feature cache, no
	// cross-batch pipelining, slower batch preparation path.
	SystemDistDGL System = "distdgl-like"
)

// distDGLSamplerFactor inflates CPU sampling cost for the DistDGL-like
// baseline (Python-driven batch preparation and RPC serialization versus
// SALIENT's optimized C++ sampler); the paper measures an end-to-end
// 12.7× gap on 8 machines, most of it from synchronous per-hop
// communication, which is modeled structurally below.
const distDGLSamplerFactor = 8.0

// Result is the outcome of simulating one epoch.
type Result struct {
	System       System
	EpochSeconds float64
	// Machine-0 attribution (Figure 8 categories).
	Train     float64 // GPU compute busy
	TrainSync float64 // waiting on gradient synchronization
	Startup   float64 // time until the first train task starts
	PrepComm  float64 // NIC busy (feature/sampling traffic)
	PrepComp  float64 // CPU + H2D busy (sampling, slicing, transfers)
	// Volumes (all machines, one epoch).
	RemoteVertices int64
	RemoteBytes    int64
}

// Simulate prices one epoch of the workload under the hardware model and
// system strategy.
func Simulate(sys System, w *Workload, hw Hardware) (*Result, error) {
	if hw.PipelineDepth <= 0 {
		hw.PipelineDepth = 10
	}
	k := w.K
	fb := w.FeatureBytes
	gradBytes := w.GradBytes()
	bw := hw.NetGbps * 1e9 / 8

	g := &graphBuilder{}
	trainIDs := make([][]int32, k) // [machine][batch]
	for m := range trainIDs {
		trainIDs[m] = make([]int32, w.Rounds)
	}
	allreduceIDs := make([]int32, w.Rounds)

	// Gradient all-reduce: ring all-reduce moves 2(K-1)/K of the payload
	// per NIC plus latency per ring step. DistributedDataParallel overlaps
	// bucketed gradient communication with the backward pass itself, so
	// only the tail that outlasts the backward compute is exposed; the
	// backward is ~2/3 of each train task.
	ringTime := 0.0
	ringLatency := 0.0
	if k > 1 {
		ringTime = 2 * float64(k-1) / float64(k) * float64(gradBytes) / bw
		ringLatency = math.Ceil(math.Log2(float64(k))) * hw.NetLatency
	}
	const backwardShare = 2.0 / 3.0

	var remoteVerts int64
	for b := 0; b < w.Rounds; b++ {
		bb := int32(b)
		// Per-machine batch chains.
		for m := 0; m < k; m++ {
			mm := int32(m)
			work := &w.PerMachine[m][b]
			remoteVerts += int64(work.RemoteFetch)

			// Gate: pipeline depth (or strict sequencing).
			var gate []int32
			switch sys {
			case SystemSequential, SystemDistDGL:
				if b > 0 {
					gate = append(gate, allreduceIDs[b-1])
				}
			default:
				if b >= hw.PipelineDepth {
					gate = append(gate, allreduceIDs[b-hw.PipelineDepth])
				}
			}

			// Stage 0: minibatch sampling.
			var sampleID int32
			if sys == SystemDistDGL {
				prev := gate
				for l := 0; l < w.Layers; l++ {
					hop := g.add(task{
						machine: mm, kind: resCPU, batch: bb, stage: 0,
						dur:  float64(work.LayerEdges[l]) / hw.SampleRate * distDGLSamplerFactor,
						deps: prev,
					})
					// Per-hop RPC: frontier ids out, sampled adjacency
					// (neighbor id lists) back, with a request/response
					// round trip per hop.
					comm := g.add(task{
						machine: mm, kind: resNIC, batch: bb, stage: 0,
						bytes:   8*int64(work.LayerInputs[l]) + 8*work.LayerEdges[l],
						latency: 2 * hw.NetLatency,
						deps:    []int32{hop},
					})
					prev = []int32{comm}
				}
				sampleID = prev[0]
			} else {
				sampleID = g.add(task{
					machine: mm, kind: resCPU, batch: bb, stage: 0,
					dur:  float64(work.Edges) / hw.SampleRate,
					deps: gate,
				})
			}

			// Stages 1–5: feature collection.
			h2dDeps := []int32{}
			var h2dRows int64
			if sys == SystemFullReplication {
				// All inputs are local host rows except the GPU-resident
				// prefix.
				rows := int64(work.LocalCPU + work.CacheHits + work.RemoteFetch)
				slice := g.add(task{
					machine: mm, kind: resCPU, batch: bb, stage: 4,
					dur:  float64(fb*rows) / hw.SliceRate,
					deps: []int32{sampleID},
				})
				h2dDeps = append(h2dDeps, slice)
				h2dRows = rows
			} else {
				sliceRows := int64(work.LocalCPU + work.CacheHits)
				slice := g.add(task{
					machine: mm, kind: resCPU, batch: bb, stage: 4,
					dur:  float64(fb*sliceRows) / hw.SliceRate,
					deps: []int32{sampleID},
				})
				h2dDeps = append(h2dDeps, slice)
				h2dRows = sliceRows + int64(work.RemoteFetch)
				for p := 0; p < k; p++ {
					r := int64(work.RemoteByPeer[p])
					if r == 0 {
						continue
					}
					req := g.add(task{
						machine: mm, kind: resNIC, batch: bb, stage: 1,
						bytes: 4*r + 64, latency: 2 * hw.NetLatency, // counts + ids rounds
						deps: []int32{sampleID},
					})
					serve := g.add(task{
						machine: int32(p), kind: resCPU, batch: bb, stage: 2,
						dur:  float64(fb*r) / hw.SliceRate,
						deps: []int32{req},
					})
					resp := g.add(task{
						machine: int32(p), kind: resNIC, batch: bb, stage: 3,
						bytes: fb * r, latency: hw.NetLatency,
						deps: []int32{serve},
					})
					h2dDeps = append(h2dDeps, resp)
				}
			}

			h2d := g.add(task{
				machine: mm, kind: resH2D, batch: bb, stage: 5,
				dur:  float64(fb*h2dRows) / hw.H2DRate,
				deps: h2dDeps,
			})

			// Stage 6: model computation; weights require the previous
			// batch's gradient step.
			trainDeps := []int32{h2d}
			if b > 0 {
				trainDeps = append(trainDeps, allreduceIDs[b-1])
			}
			trainIDs[m][b] = g.add(task{
				machine: mm, kind: resGPU, batch: bb, stage: 6,
				dur:  w.flops(work) / hw.GPUFlops,
				deps: trainDeps,
			})
		}

		// Stage 7: gradient synchronization across all machines. The
		// exposed duration is the ring latency plus whatever communication
		// the shortest overlapping backward pass could not hide.
		deps := make([]int32, k)
		minTrain := math.Inf(1)
		for m := 0; m < k; m++ {
			deps[m] = trainIDs[m][b]
			if d := g.tasks[trainIDs[m][b]].dur; d < minTrain {
				minTrain = d
			}
		}
		arDur := 0.0
		if k > 1 {
			hidden := backwardShare * minTrain
			arDur = ringLatency + math.Max(0, ringTime-hidden)
		}
		allreduceIDs[b] = g.add(task{
			machine: 0, kind: resCollective, batch: bb, stage: 7,
			dur: arDur, deps: deps,
		})
	}

	eng := newEngine(hw, k, g.tasks)
	makespan, err := eng.run()
	if err != nil {
		return nil, fmt.Errorf("perfmodel: %s: %w", sys, err)
	}

	res := &Result{
		System:         sys,
		EpochSeconds:   makespan,
		RemoteVertices: remoteVerts,
		RemoteBytes:    remoteVerts * fb,
	}
	res.Train = eng.busySeconds(0, resGPU)
	res.PrepComm = eng.busySeconds(0, resNIC)
	res.PrepComp = eng.busySeconds(0, resCPU) + eng.busySeconds(0, resH2D)
	// Startup: first train start on machine 0.
	first := math.Inf(1)
	for b := 0; b < w.Rounds; b++ {
		t := &eng.tasks[trainIDs[0][b]]
		start := t.finish - t.dur
		if start < first {
			first = start
		}
	}
	if !math.IsInf(first, 1) {
		res.Startup = first
	}
	// Train sync: gap between machine 0 finishing compute and the
	// collective completing.
	for b := 0; b < w.Rounds; b++ {
		tr := &eng.tasks[trainIDs[0][b]]
		ar := &eng.tasks[allreduceIDs[b]]
		if gap := ar.visible - tr.finish; gap > 0 {
			res.TrainSync += gap
		}
	}
	return res, nil
}

// CalibrateGPU returns the GPU throughput that makes the workload's total
// model compute equal targetSeconds — used to pin the single-machine
// SALIENT baseline to the paper's measured 20.7 s/epoch (papers dataset),
// after which all other cells are model predictions.
func CalibrateGPU(w *Workload, targetSeconds float64) float64 {
	var total float64
	for m := range w.PerMachine {
		for b := range w.PerMachine[m] {
			total += w.flops(&w.PerMachine[m][b])
		}
	}
	if targetSeconds <= 0 || total == 0 {
		return DefaultHardware().GPUFlops
	}
	return total / targetSeconds
}
