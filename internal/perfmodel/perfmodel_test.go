package perfmodel

import (
	"math"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/dist"
	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

// testScenario builds a contiguous block-partitioned RMAT scenario.
// Returns the scenario with VIP caches at the given replication factor
// (alpha <= 0 disables caching).
func testScenario(t *testing.T, k int, alpha float64) *Scenario {
	t.Helper()
	const n = 8000
	g, err := graph.RMAT(graph.DefaultRMAT(n, 64000, 77))
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int64, k+1)
	for p := 0; p <= k; p++ {
		starts[p] = int64(p * n / k)
	}
	layout, err := dist.NewLayout(starts)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int32, n)
	for v := 0; v < n; v++ {
		parts[v] = int32(layout.Owner(int32(v)))
	}
	train := rng.New(5).SampleK(nil, 4096, n)
	trainPer := make([][]int32, k)
	for _, v := range train {
		p := layout.Owner(v)
		trainPer[p] = append(trainPer[p], v)
	}
	s := &Scenario{
		Graph: g, Layout: layout, TrainPer: trainPer,
		GPURows: make([]int, k),
		Fanouts: []int{10, 5}, Batch: 256,
		FeatureBytes: 128 * 4, InDim: 128, Hidden: 256, Classes: 32,
	}
	for p := 0; p < k; p++ {
		s.GPURows[p] = layout.PartSize(p) / 2
	}
	if alpha > 0 {
		s.Caches = make([]*cache.Cache, k)
		capacity := cache.CapacityForAlpha(alpha, n, k)
		for p := 0; p < k; p++ {
			ctx := &cache.Context{
				G: g, Parts: parts, K: k, Part: int32(p),
				TrainIDs: train, Fanouts: s.Fanouts, BatchSize: s.Batch,
				Seed: 9, Workers: 2,
			}
			ranking, err := (cache.VIP{}).Rank(ctx)
			if err != nil {
				t.Fatal(err)
			}
			s.Caches[p], err = cache.FromRanking(ranking, capacity, n)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func buildWork(t *testing.T, s *Scenario) *Workload {
	t.Helper()
	w, err := BuildWorkload(s, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorkloadInvariants(t *testing.T) {
	s := testScenario(t, 4, 0)
	w := buildWork(t, s)
	if w.K != 4 {
		t.Fatalf("K=%d", w.K)
	}
	for m := 0; m < w.K; m++ {
		if len(w.PerMachine[m]) != w.Rounds {
			t.Fatalf("machine %d has %d rounds, want %d", m, len(w.PerMachine[m]), w.Rounds)
		}
		for b, bw := range w.PerMachine[m] {
			if got := bw.LocalGPU + bw.LocalCPU + bw.CacheHits + bw.RemoteFetch; got != bw.Inputs {
				t.Fatalf("machine %d batch %d: classified %d of %d inputs", m, b, got, bw.Inputs)
			}
			sum := 0
			for _, r := range bw.RemoteByPeer {
				sum += r
			}
			if sum != bw.RemoteFetch {
				t.Fatalf("machine %d batch %d: RemoteByPeer sums to %d, want %d", m, b, sum, bw.RemoteFetch)
			}
			if bw.RemoteByPeer[m] != 0 {
				t.Fatalf("machine %d requests from itself", m)
			}
			if len(bw.LayerInputs) != w.Layers || len(bw.LayerEdges) != w.Layers {
				t.Fatalf("per-layer stats missing")
			}
		}
	}
	if w.RemoteVertices() == 0 {
		t.Fatal("block partition produced no remote traffic")
	}
}

func TestCacheReducesWorkloadRemote(t *testing.T) {
	plain := buildWork(t, testScenario(t, 4, 0))
	cached := buildWork(t, testScenario(t, 4, 0.3))
	if cached.RemoteVertices() >= plain.RemoteVertices() {
		t.Fatalf("cache did not reduce remote fetches: %d -> %d", plain.RemoteVertices(), cached.RemoteVertices())
	}
	if float64(cached.RemoteVertices()) > 0.8*float64(plain.RemoteVertices()) {
		t.Fatalf("VIP cache reduction too weak: %d -> %d", plain.RemoteVertices(), cached.RemoteVertices())
	}
}

func TestSimulateSystemOrdering(t *testing.T) {
	// The paper's Table 1 ordering: sequential partitioned slowest of the
	// SALIENT family, pipelining helps, caching+pipelining approaches full
	// replication; DistDGL-like is far behind everything.
	// Physical hardware constants: per-batch compute/communication ratios
	// then match the paper's regime without artificial inflation.
	hw := DefaultHardware()
	plain := buildWork(t, testScenario(t, 4, 0))
	cached := buildWork(t, testScenario(t, 4, 0.3))

	full, err := Simulate(SystemFullReplication, plain, hw)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Simulate(SystemSequential, plain, hw)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Simulate(SystemPipelined, plain, hw)
	if err != nil {
		t.Fatal(err)
	}
	spp, err := Simulate(SystemPipelined, cached, hw)
	if err != nil {
		t.Fatal(err)
	}
	dgl, err := Simulate(SystemDistDGL, plain, hw)
	if err != nil {
		t.Fatal(err)
	}

	if !(seq.EpochSeconds > pipe.EpochSeconds) {
		t.Fatalf("pipelining did not help: seq %.3f vs pipe %.3f", seq.EpochSeconds, pipe.EpochSeconds)
	}
	if !(pipe.EpochSeconds > spp.EpochSeconds) {
		t.Fatalf("caching did not help: pipe %.3f vs spp %.3f", pipe.EpochSeconds, spp.EpochSeconds)
	}
	if spp.EpochSeconds > 1.6*full.EpochSeconds {
		t.Fatalf("SALIENT++ (%.3f) too far from full replication (%.3f)", spp.EpochSeconds, full.EpochSeconds)
	}
	if dgl.EpochSeconds < 2*spp.EpochSeconds {
		t.Fatalf("DistDGL-like (%.3f) implausibly close to SALIENT++ (%.3f)", dgl.EpochSeconds, spp.EpochSeconds)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := buildWork(t, testScenario(t, 2, 0.2))
	hw := DefaultHardware()
	a, err := Simulate(SystemPipelined, w, hw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(SystemPipelined, w, hw)
	if err != nil {
		t.Fatal(err)
	}
	if a.EpochSeconds != b.EpochSeconds || a.Train != b.Train {
		t.Fatal("simulation not deterministic")
	}
}

func TestCalibration(t *testing.T) {
	// Single-machine full-replication epoch should land near the target.
	s := testScenario(t, 1, 0)
	w := buildWork(t, s)
	hw := DefaultHardware()
	const target = 5.0
	hw.GPUFlops = CalibrateGPU(w, target)
	res, err := Simulate(SystemFullReplication, w, hw)
	if err != nil {
		t.Fatal(err)
	}
	// GPU time sums to target exactly; epoch adds pipeline fill and any
	// non-overlapped prep.
	if res.EpochSeconds < target*0.95 || res.EpochSeconds > target*1.6 {
		t.Fatalf("calibrated epoch %.3f not near target %.1f", res.EpochSeconds, target)
	}
	if math.Abs(res.Train-target) > 0.3*target {
		t.Fatalf("GPU busy %.3f not near target %.1f", res.Train, target)
	}
}

func TestSlowNetworkHurtsAndCachingRecovers(t *testing.T) {
	plain := buildWork(t, testScenario(t, 4, 0))
	cached := buildWork(t, testScenario(t, 4, 0.5))
	hw := DefaultHardware()
	slow := hw.WithNetwork(25, 2) // token-bucket shaped to 2 Gbps

	fastPipe, err := Simulate(SystemPipelined, plain, hw)
	if err != nil {
		t.Fatal(err)
	}
	slowPipe, err := Simulate(SystemPipelined, plain, slow)
	if err != nil {
		t.Fatal(err)
	}
	slowCached, err := Simulate(SystemPipelined, cached, slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowPipe.EpochSeconds <= fastPipe.EpochSeconds {
		t.Fatalf("slow network did not slow things down: %.3f vs %.3f", slowPipe.EpochSeconds, fastPipe.EpochSeconds)
	}
	if slowCached.EpochSeconds >= slowPipe.EpochSeconds {
		t.Fatalf("caching did not help on slow network: %.3f vs %.3f", slowCached.EpochSeconds, slowPipe.EpochSeconds)
	}
}

func TestScalingReducesEpochTime(t *testing.T) {
	hw := DefaultHardware()
	var prev float64
	for i, k := range []int{2, 4, 8} {
		w := buildWork(t, testScenario(t, k, 0.3))
		res, err := Simulate(SystemPipelined, w, hw)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.EpochSeconds >= prev {
			t.Fatalf("no speedup from K=%d: %.3f >= %.3f", k, res.EpochSeconds, prev)
		}
		prev = res.EpochSeconds
	}
}

func TestBreakdownSane(t *testing.T) {
	w := buildWork(t, testScenario(t, 4, 0.3))
	hw := DefaultHardware()
	for _, sys := range []System{SystemFullReplication, SystemSequential, SystemPipelined, SystemDistDGL} {
		res, err := Simulate(sys, w, hw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Train <= 0 {
			t.Fatalf("%s: no GPU time", sys)
		}
		if res.Startup < 0 || res.TrainSync < 0 || res.PrepComm < 0 || res.PrepComp < 0 {
			t.Fatalf("%s: negative breakdown %+v", sys, res)
		}
		if res.EpochSeconds < res.Train/float64(1) {
			// GPU busy on machine 0 can never exceed the epoch makespan.
			if res.Train > res.EpochSeconds+1e-9 {
				t.Fatalf("%s: GPU busy %.3f exceeds epoch %.3f", sys, res.Train, res.EpochSeconds)
			}
		}
	}
}

func TestGradBytes(t *testing.T) {
	w := &Workload{InDim: 128, Hidden: 256, Classes: 32, Layers: 3}
	// Layer dims: 128→256, 256→256, 256→32.
	want := int64(2*(128*256)+256+2*(256*256)+256+2*(256*32)+32) * 4
	if got := w.GradBytes(); got != want {
		t.Fatalf("GradBytes=%d want %d", got, want)
	}
}

func TestEmptyBatchesAreFree(t *testing.T) {
	w := &Workload{InDim: 8, Hidden: 8, Classes: 2, Layers: 2}
	b := &BatchWork{LayerInputs: []int{0, 0}, LayerEdges: []int64{0, 0}}
	if w.flops(b) != 0 {
		t.Fatal("empty batch has nonzero flops")
	}
}
