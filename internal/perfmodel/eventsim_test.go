package perfmodel

import (
	"math"
	"testing"
)

// handHardware gives easy round numbers: 1 GB/s NIC, no latency.
func handHardware() Hardware {
	hw := DefaultHardware()
	hw.NetGbps = 8 // = 1e9 bytes/s
	hw.NetLatency = 0
	return hw
}

func TestEngineSerialChain(t *testing.T) {
	// Three CPU tasks in a dependency chain on one machine: makespan is
	// the sum of durations.
	g := &graphBuilder{}
	a := g.add(task{machine: 0, kind: resCPU, dur: 1})
	b := g.add(task{machine: 0, kind: resCPU, dur: 2, deps: []int32{a}})
	g.add(task{machine: 0, kind: resCPU, dur: 3, deps: []int32{b}})
	e := newEngine(handHardware(), 1, g.tasks)
	makespan, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(makespan-6) > 1e-9 {
		t.Fatalf("makespan=%v want 6", makespan)
	}
	if busy := e.busySeconds(0, resCPU); math.Abs(busy-6) > 1e-9 {
		t.Fatalf("busy=%v want 6", busy)
	}
}

func TestEngineResourceSerialization(t *testing.T) {
	// Two independent tasks on the same GPU serialize; on different
	// machines they run in parallel.
	g := &graphBuilder{}
	g.add(task{machine: 0, kind: resGPU, dur: 2})
	g.add(task{machine: 0, kind: resGPU, dur: 2})
	e := newEngine(handHardware(), 1, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-4) > 1e-9 {
		t.Fatalf("same-resource makespan=%v want 4", ms)
	}

	g2 := &graphBuilder{}
	g2.add(task{machine: 0, kind: resGPU, dur: 2})
	g2.add(task{machine: 1, kind: resGPU, dur: 2})
	e2 := newEngine(handHardware(), 2, g2.tasks)
	ms2, err := e2.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms2-2) > 1e-9 {
		t.Fatalf("cross-machine makespan=%v want 2", ms2)
	}
}

func TestEngineParallelResourcesOverlap(t *testing.T) {
	// CPU and GPU tasks with no dependencies overlap on one machine.
	g := &graphBuilder{}
	g.add(task{machine: 0, kind: resCPU, dur: 3})
	g.add(task{machine: 0, kind: resGPU, dur: 2})
	e := newEngine(handHardware(), 1, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-3) > 1e-9 {
		t.Fatalf("makespan=%v want 3", ms)
	}
}

func TestEngineNICBandwidthAndLatency(t *testing.T) {
	hw := handHardware()
	hw.NetLatency = 0.5
	g := &graphBuilder{}
	// 1e9 bytes at 1e9 B/s = 1s transmit; dependent sees +0.5s latency.
	nic := g.add(task{machine: 0, kind: resNIC, bytes: 1e9, latency: hw.NetLatency})
	g.add(task{machine: 0, kind: resCPU, dur: 1, deps: []int32{nic}})
	e := newEngine(hw, 1, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	// 1s tx + 0.5s latency + 1s CPU.
	if math.Abs(ms-2.5) > 1e-9 {
		t.Fatalf("makespan=%v want 2.5", ms)
	}
	// The NIC itself is only busy for the transmit second.
	if busy := e.busySeconds(0, resNIC); math.Abs(busy-1) > 1e-9 {
		t.Fatalf("NIC busy=%v want 1", busy)
	}
}

func TestEngineTokenBucketShaping(t *testing.T) {
	hw := handHardware()
	hw.TBFGbps = 0.8 // 1e8 bytes/s shaped rate
	g := &graphBuilder{}
	g.add(task{machine: 0, kind: resNIC, bytes: 1e9})
	e := newEngine(hw, 1, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	// 1e9 bytes at 1e8 B/s ≈ 10s (minus the small burst allowance).
	if ms < 8 || ms > 10.5 {
		t.Fatalf("shaped makespan=%v want ≈10", ms)
	}
}

func TestEngineCrossMachineDependency(t *testing.T) {
	// Request/serve/response chain across machines.
	g := &graphBuilder{}
	req := g.add(task{machine: 0, kind: resNIC, bytes: 0})
	serve := g.add(task{machine: 1, kind: resCPU, dur: 1, deps: []int32{req}})
	resp := g.add(task{machine: 1, kind: resNIC, bytes: 1e9, deps: []int32{serve}})
	g.add(task{machine: 0, kind: resGPU, dur: 1, deps: []int32{resp}})
	e := newEngine(handHardware(), 2, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	// serve 1s + response 1s + train 1s.
	if math.Abs(ms-3) > 1e-9 {
		t.Fatalf("makespan=%v want 3", ms)
	}
}

func TestEnginePriorityOrdering(t *testing.T) {
	// Two tasks available simultaneously on one resource: the lower batch
	// number runs first regardless of insertion order.
	g := &graphBuilder{}
	late := g.add(task{machine: 0, kind: resCPU, dur: 1, batch: 5})
	early := g.add(task{machine: 0, kind: resCPU, dur: 1, batch: 1})
	e := newEngine(handHardware(), 1, g.tasks)
	if _, err := e.run(); err != nil {
		t.Fatal(err)
	}
	if !(e.tasks[early].finish < e.tasks[late].finish) {
		t.Fatalf("batch priority violated: early done %v, late done %v",
			e.tasks[early].finish, e.tasks[late].finish)
	}
}

func TestEngineDetectsDeadlock(t *testing.T) {
	// A dependency cycle must be reported, not spun on.
	g := &graphBuilder{}
	g.add(task{machine: 0, kind: resCPU, dur: 1, deps: []int32{1}})
	g.add(task{machine: 0, kind: resCPU, dur: 1, deps: []int32{0}})
	e := newEngine(handHardware(), 1, g.tasks)
	if _, err := e.run(); err == nil {
		t.Fatal("expected deadlock error for cyclic dependencies")
	}
}

func TestEngineVirtualTasks(t *testing.T) {
	// Virtual (resNone) tasks act as zero-cost joins.
	g := &graphBuilder{}
	a := g.add(task{machine: 0, kind: resCPU, dur: 1})
	b := g.add(task{machine: 1, kind: resCPU, dur: 2})
	join := g.add(task{machine: 0, kind: resNone, deps: []int32{a, b}})
	g.add(task{machine: 0, kind: resGPU, dur: 1, deps: []int32{join}})
	e := newEngine(handHardware(), 2, g.tasks)
	ms, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-3) > 1e-9 {
		t.Fatalf("makespan=%v want 3 (join at 2 + 1s GPU)", ms)
	}
}
