// Package perfmodel is the discrete-event performance simulator behind the
// paper's timing experiments (Table 1, Figures 4–9, Table 4). The real
// cluster — A10G GPUs, 25 Gbps network, NCCL — is unavailable in this
// reproduction, so epoch times are *predicted* by simulating the exact
// per-batch workloads produced by the real sampler, partitioner, VIP
// analysis, and caches against a calibrated hardware model.
//
// Calibration philosophy: a single scalar (GPU throughput) is pinned so
// that the SALIENT full-replication baseline on one machine matches the
// paper's 20.7 s/epoch; everything else — communication volumes, overlap,
// cache hit rates, crossover points — emerges from the simulated
// algorithms. Compute/communication ratios are preserved at reduced graph
// scale because both flops and bytes are proportional to the same sampled
// input counts, with the paper's feature and hidden dimensions kept
// verbatim.
package perfmodel

// Hardware describes one machine class and the interconnect.
type Hardware struct {
	// SampleRate is MFG construction throughput in sampled edges/second
	// per machine (SALIENT's optimized C++ sampler with shared-memory
	// parallel workers).
	SampleRate float64
	// SliceRate is CPU feature-tensor slicing throughput, bytes/second.
	SliceRate float64
	// H2DRate is host-to-device copy throughput, bytes/second.
	H2DRate float64
	// GPUFlops is effective model-compute throughput, flops/second.
	// Calibrate with CalibrateGPU.
	GPUFlops float64
	// NetGbps is per-machine NIC bandwidth in Gbit/s (paper SLA: 25).
	NetGbps float64
	// NetLatency is per-message propagation+software latency in seconds.
	NetLatency float64
	// TBFGbps, when positive, shapes every NIC with a token-bucket filter
	// at this rate (Figure 9's slow-network emulation).
	TBFGbps float64
	// PipelineDepth is the maximum number of in-flight minibatches (10).
	PipelineDepth int
}

// DefaultHardware returns the A10G/AWS-g5.8xlarge-like machine model used
// across the experiments. GPUFlops starts at a plausible effective value
// and is normally recalibrated against the full-replication baseline.
func DefaultHardware() Hardware {
	return Hardware{
		SampleRate:    60e6,   // edges/s, 16-core batch preparation
		SliceRate:     20e9,   // bytes/s parallel (16-core) feature slicing
		H2DRate:       4e9,    // bytes/s effective PCIe for pageable host slices
		GPUFlops:      3.5e12, // effective SAGE throughput backed out of the paper's 17.7 ms/batch on A10G
		NetGbps:       25,     // instance SLA
		NetLatency:    50e-6,  // per message (tuned TCP + software)
		PipelineDepth: 10,
	}
}

// WithNetwork returns a copy with the given NIC bandwidth and shaping.
func (h Hardware) WithNetwork(gbps, tbfGbps float64) Hardware {
	h.NetGbps = gbps
	h.TBFGbps = tbfGbps
	return h
}
