package perfmodel

import (
	"container/heap"
	"fmt"

	"salientpp/internal/simnet"
)

// resKind identifies the serialized hardware resources of one machine,
// plus the shared gradient-collective "resource".
type resKind uint8

const (
	resNone resKind = iota // virtual: no resource, completes at availability
	resCPU
	resGPU
	resH2D
	resNIC
	resCollective
)

// task is one unit of work in the epoch DAG.
type task struct {
	machine int32
	kind    resKind
	dur     float64 // seconds (non-NIC kinds)
	bytes   int64   // NIC payload
	latency float64 // appended to completion as seen by dependents
	batch   int32
	stage   int32

	deps      []int32
	remaining int32
	avail     float64
	finish    float64 // resource becomes free
	visible   float64 // dependents' availability time (finish+latency)
	started   bool
}

// graphBuilder accumulates tasks.
type graphBuilder struct {
	tasks []task
}

func (g *graphBuilder) add(t task) int32 {
	id := int32(len(g.tasks))
	t.remaining = int32(len(t.deps))
	g.tasks = append(g.tasks, t)
	return id
}

// waitItem orders a resource's runnable tasks deterministically: earlier
// batches first, then earlier pipeline stages, then machine, then id.
type waitItem struct {
	batch, stage, machine, id int32
}

type waitQueue []waitItem

func (q waitQueue) Len() int { return len(q) }
func (q waitQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.batch != b.batch {
		return a.batch < b.batch
	}
	if a.stage != b.stage {
		return a.stage < b.stage
	}
	if a.machine != b.machine {
		return a.machine < b.machine
	}
	return a.id < b.id
}
func (q waitQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *waitQueue) Push(x any)   { *q = append(*q, x.(waitItem)) }
func (q *waitQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

type resource struct {
	busy    bool
	waiting waitQueue
	link    *simnet.Link // NIC only
	busySum float64      // accumulated busy seconds
}

// event is a task completion.
type event struct {
	t  float64
	id int32
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].id < q[j].id
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// engine executes the task DAG against the hardware model.
type engine struct {
	hw         Hardware
	k          int
	tasks      []task
	dependents [][]int32
	resources  []*resource // k*4 machine resources + 1 collective
	events     eventQueue
	makespan   float64
}

func newEngine(hw Hardware, k int, tasks []task) *engine {
	e := &engine{hw: hw, k: k, tasks: tasks}
	e.dependents = make([][]int32, len(tasks))
	for id := range tasks {
		for _, d := range tasks[id].deps {
			e.dependents[d] = append(e.dependents[d], int32(id))
		}
	}
	e.resources = make([]*resource, k*4+1)
	for i := range e.resources {
		e.resources[i] = &resource{}
	}
	bw := hw.NetGbps * 1e9 / 8
	for m := 0; m < k; m++ {
		l := &simnet.Link{Bandwidth: bw, Latency: 0}
		if hw.TBFGbps > 0 {
			l = l.WithTBF(hw.TBFGbps)
		}
		e.resources[e.resIndex(int32(m), resNIC)].link = l
	}
	return e
}

func (e *engine) resIndex(machine int32, kind resKind) int {
	if kind == resCollective {
		return e.k * 4
	}
	return int(machine)*4 + int(kind-resCPU)
}

// run executes the DAG and returns the makespan.
func (e *engine) run() (float64, error) {
	// Seed with dependency-free tasks: push them all before starting any,
	// so the priority order (batch, stage, machine) decides who runs
	// first among simultaneously available tasks.
	touched := map[int]bool{}
	for id := range e.tasks {
		if e.tasks[id].remaining == 0 {
			if ri := e.enqueue(int32(id), 0); ri >= 0 {
				touched[ri] = true
			}
		}
	}
	for ri := range touched {
		e.tryStart(ri, 0)
	}
	completed := 0
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		completed++
		t := &e.tasks[ev.id]
		if t.visible > e.makespan {
			e.makespan = t.visible
		}
		// Release dependents first so same-time waiters compete by
		// priority, then restart the affected resources.
		clear(touched)
		if t.kind != resNone {
			ri := e.resIndex(t.machine, t.kind)
			e.resources[ri].busy = false
			touched[ri] = true
		}
		for _, did := range e.dependents[ev.id] {
			d := &e.tasks[did]
			if t.visible > d.avail {
				d.avail = t.visible
			}
			d.remaining--
			if d.remaining == 0 {
				if ri := e.enqueue(did, d.avail); ri >= 0 {
					touched[ri] = true
				}
			}
		}
		for ri := range touched {
			e.tryStart(ri, ev.t)
		}
	}
	if completed != len(e.tasks) {
		return 0, fmt.Errorf("perfmodel: deadlock — %d of %d tasks completed (cyclic dependencies?)", completed, len(e.tasks))
	}
	return e.makespan, nil
}

// enqueue makes a task runnable at time now and returns the index of the
// resource it waits on (-1 for virtual tasks, which complete immediately).
func (e *engine) enqueue(id int32, now float64) int {
	t := &e.tasks[id]
	if t.kind == resNone {
		// Virtual task: completes instantly at availability.
		t.finish = now
		t.visible = now + t.latency
		heap.Push(&e.events, event{t.visible, id})
		return -1
	}
	ri := e.resIndex(t.machine, t.kind)
	res := e.resources[ri]
	heap.Push(&res.waiting, waitItem{t.batch, t.stage, t.machine, id})
	return ri
}

// tryStart begins the best waiting task if the resource is idle.
func (e *engine) tryStart(ri int, now float64) {
	res := e.resources[ri]
	if res.busy || res.waiting.Len() == 0 {
		return
	}
	it := heap.Pop(&res.waiting).(waitItem)
	t := &e.tasks[it.id]
	start := now
	if t.avail > start {
		start = t.avail
	}
	var fin float64
	if t.kind == resNIC && res.link != nil {
		fin = res.link.Transfer(start, t.bytes)
		// The link's own latency field is zero; t.latency carries it so
		// occupancy ends at transmit completion, not at delivery.
	} else {
		fin = start + t.dur
	}
	t.started = true
	t.finish = fin
	t.visible = fin + t.latency
	res.busy = true
	res.busySum += fin - start
	heap.Push(&e.events, event{fin, it.id})
}

// busySeconds reports the accumulated busy time of a machine resource.
func (e *engine) busySeconds(machine int32, kind resKind) float64 {
	return e.resources[e.resIndex(machine, kind)].busySum
}
