package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"salientpp/internal/metrics"
)

// Comparison is one gated metric of a benchmark-report pair. Change is the
// signed relative difference (new-old)/old; Regressed is true when the new
// value is worse than the old by more than the tolerance in the metric's
// bad direction.
type Comparison struct {
	Metric         string  `json:"metric"`
	Old            float64 `json:"old"`
	New            float64 `json:"new"`
	Change         float64 `json:"change"`
	HigherIsBetter bool    `json:"higher_is_better"`
	Regressed      bool    `json:"regressed"`
}

// CompareBenchFiles is the CI perf-regression gate behind
// `salientbench -compare old.json new.json -tolerance 0.25`: it detects
// the report kind from its fields and gates the kind's headline metrics.
//
//   - BENCH_epoch.json: best epoch wall time and mean bytes-on-wire per
//     epoch (both lower is better), plus — when the baseline has the
//     columns — per-stage compute means, gradient all-reduce bytes per
//     epoch (lower), and overlap seconds saved (higher, above a noise
//     floor).
//   - BENCH_serve.json: per-α serving p95 latency (lower), closed-loop
//     throughput (higher), and bytes on the wire (lower), matched row by
//     row on α.
//
// Both files must be the same kind. A missing α row in the new report is
// itself a regression (coverage must not silently shrink).
func CompareBenchFiles(oldPath, newPath string, tolerance float64) ([]Comparison, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("compare: negative tolerance %v", tolerance)
	}
	oldKind, oldRaw, err := loadBench(oldPath)
	if err != nil {
		return nil, err
	}
	newKind, newRaw, err := loadBench(newPath)
	if err != nil {
		return nil, err
	}
	if oldKind != newKind {
		return nil, fmt.Errorf("compare: %s is a %s report but %s is a %s report", oldPath, oldKind, newPath, newKind)
	}
	switch oldKind {
	case "epoch":
		return compareEpoch(oldRaw, newRaw, tolerance)
	default:
		return compareServe(oldRaw, newRaw, tolerance)
	}
}

// loadBench reads a BENCH_*.json file and classifies it.
func loadBench(path string) (kind string, raw map[string]json.RawMessage, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if err := json.Unmarshal(buf, &raw); err != nil {
		return "", nil, fmt.Errorf("compare: %s: %w", path, err)
	}
	switch {
	case raw["best_wall_seconds"] != nil:
		return "epoch", raw, nil
	case raw["alphas"] != nil:
		return "serve", raw, nil
	default:
		return "", nil, fmt.Errorf("compare: %s is not a recognized benchmark report (want BENCH_epoch.json or BENCH_serve.json shape)", path)
	}
}

func jsonFloat(raw map[string]json.RawMessage, key string) (float64, error) {
	var v float64
	if raw[key] == nil {
		return 0, fmt.Errorf("compare: report lacks %q", key)
	}
	if err := json.Unmarshal(raw[key], &v); err != nil {
		return 0, fmt.Errorf("compare: bad %q: %w", key, err)
	}
	return v, nil
}

// jsonFloatOpt is jsonFloat for columns added after the first BENCH files
// were committed: an absent key decodes as zero (callers skip the gate)
// instead of erroring.
func jsonFloatOpt(raw map[string]json.RawMessage, key string) (float64, error) {
	if raw[key] == nil {
		return 0, nil
	}
	var v float64
	if err := json.Unmarshal(raw[key], &v); err != nil {
		return 0, fmt.Errorf("compare: bad %q: %w", key, err)
	}
	return v, nil
}

// gate appends the comparison of one metric pair. A non-positive value on
// either side is an error, not a pass: every gated metric is a wall time,
// a latency, or a throughput, all strictly positive in any real report. A
// zero baseline means a truncated or hand-damaged file; a zero new value
// means the measurement itself broke (e.g. a latency histogram that
// stopped receiving samples) and would otherwise read as an infinite
// improvement — either way, silently skipping the check is exactly the
// failure mode a gate must not have.
func gate(out []Comparison, metric string, oldV, newV, tol float64, higherBetter bool) ([]Comparison, error) {
	if oldV <= 0 {
		return nil, fmt.Errorf("compare: baseline %s is %v; a gated metric must be positive (damaged baseline file?)", metric, oldV)
	}
	if newV <= 0 {
		return nil, fmt.Errorf("compare: new %s is %v; a gated metric must be positive (broken measurement in the new report?)", metric, newV)
	}
	c := Comparison{Metric: metric, Old: oldV, New: newV, HigherIsBetter: higherBetter}
	c.Change = (newV - oldV) / oldV
	if higherBetter {
		c.Regressed = newV < oldV*(1-tol)
	} else {
		c.Regressed = newV > oldV*(1+tol)
	}
	return append(out, c), nil
}

func compareEpoch(oldRaw, newRaw map[string]json.RawMessage, tol float64) ([]Comparison, error) {
	oldBest, err := jsonFloat(oldRaw, "best_wall_seconds")
	if err != nil {
		return nil, err
	}
	newBest, err := jsonFloat(newRaw, "best_wall_seconds")
	if err != nil {
		return nil, err
	}
	out, err := gate(nil, "best_wall_seconds", oldBest, newBest, tol, false)
	if err != nil {
		return nil, err
	}
	// Bytes on the wire: the codec work's headline. Unlike wall time this
	// is nearly deterministic for a seeded run, so a growth beyond the
	// tolerance means the wire format or the caching regressed.
	oldBytes, err := jsonFloat(oldRaw, "mean_bytes_per_epoch")
	if err != nil {
		return nil, err
	}
	newBytes, err := jsonFloat(newRaw, "mean_bytes_per_epoch")
	if err != nil {
		return nil, err
	}
	out, err = gate(out, "mean_bytes_per_epoch", oldBytes, newBytes, tol, false)
	if err != nil {
		return nil, err
	}
	// Gradient-synchronization columns (grad codec + overlapped reduce).
	// Baselines written before the columns existed lack them entirely and
	// skip the gates, so old BENCH files stay comparable.
	oldGrad, err := jsonFloatOpt(oldRaw, "grad_bytes_per_epoch")
	if err != nil {
		return nil, err
	}
	newGrad, err := jsonFloatOpt(newRaw, "grad_bytes_per_epoch")
	if err != nil {
		return nil, err
	}
	if oldGrad > 0 {
		out, err = gate(out, "grad_bytes_per_epoch", oldGrad, newGrad, tol, false)
		if err != nil {
			return nil, err
		}
	}
	oldSaved, err := jsonFloatOpt(oldRaw, "overlap_seconds_saved")
	if err != nil {
		return nil, err
	}
	newSaved, err := jsonFloatOpt(newRaw, "overlap_seconds_saved")
	if err != nil {
		return nil, err
	}
	// Overlap time saved is gated only above a noise floor: on a small run
	// the saved fraction is milliseconds and scheduler jitter would flap
	// the gate. 50ms per epoch is well above jitter on any CI box.
	const overlapNoiseFloor = 0.05
	if oldSaved > overlapNoiseFloor {
		out, err = gate(out, "overlap_seconds_saved", oldSaved, newSaved, tol, true)
		if err != nil {
			return nil, err
		}
	}
	// Per-stage compute columns (aggregate/transform/backward), gated on
	// their per-epoch means so a kernel regression is pinned to a stage.
	// Baselines written before the split lack the columns — those skip the
	// stage gates instead of failing, so old BENCH files stay comparable.
	oldStages, err := epochStageMeans(oldRaw)
	if err != nil {
		return nil, err
	}
	newStages, err := epochStageMeans(newRaw)
	if err != nil {
		return nil, err
	}
	for i, name := range [...]string{"mean_aggregate_seconds", "mean_transform_seconds", "mean_backward_seconds"} {
		if oldStages[i] <= 0 {
			continue // pre-split baseline: column absent, nothing to gate against
		}
		out, err = gate(out, name, oldStages[i], newStages[i], tol, false)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// epochStageMeans extracts the mean per-epoch stage seconds from a report's
// epochs array. Reports from before the compute split decode as zeros.
func epochStageMeans(raw map[string]json.RawMessage) ([3]float64, error) {
	var means [3]float64
	if raw["epochs"] == nil {
		return means, fmt.Errorf("compare: epoch report lacks \"epochs\"")
	}
	var rows []struct {
		Aggregate float64 `json:"aggregate_seconds"`
		Transform float64 `json:"transform_seconds"`
		Backward  float64 `json:"backward_seconds"`
	}
	if err := json.Unmarshal(raw["epochs"], &rows); err != nil {
		return means, fmt.Errorf("compare: bad \"epochs\": %w", err)
	}
	if len(rows) == 0 {
		return means, fmt.Errorf("compare: epoch report has no epoch rows")
	}
	for _, r := range rows {
		means[0] += r.Aggregate
		means[1] += r.Transform
		means[2] += r.Backward
	}
	for i := range means {
		means[i] /= float64(len(rows))
	}
	return means, nil
}

// serveGateRow is the gated subset of a ServeAlphaRow.
type serveGateRow struct {
	Alpha          float64 `json:"alpha"`
	P95            float64 `json:"p95_latency_seconds"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	BytesSent      float64 `json:"bytes_sent"`
	ComputeSeconds float64 `json:"compute_seconds"`
}

func compareServe(oldRaw, newRaw map[string]json.RawMessage, tol float64) ([]Comparison, error) {
	var oldRows, newRows []serveGateRow
	if err := json.Unmarshal(oldRaw["alphas"], &oldRows); err != nil {
		return nil, fmt.Errorf("compare: bad alphas in old report: %w", err)
	}
	if err := json.Unmarshal(newRaw["alphas"], &newRows); err != nil {
		return nil, fmt.Errorf("compare: bad alphas in new report: %w", err)
	}
	if len(oldRows) == 0 {
		return nil, fmt.Errorf("compare: old serve report has no alpha rows")
	}
	byAlpha := map[float64]serveGateRow{}
	for _, r := range newRows {
		byAlpha[r.Alpha] = r
	}
	var out []Comparison
	var err error
	for _, o := range oldRows {
		n, ok := byAlpha[o.Alpha]
		if !ok {
			out = append(out, Comparison{
				Metric: fmt.Sprintf("alpha=%.2f", o.Alpha), Old: o.Alpha,
				Regressed: true, // the new report silently dropped coverage
			})
			continue
		}
		out, err = gate(out, fmt.Sprintf("p95_latency_seconds[alpha=%.2f]", o.Alpha), o.P95, n.P95, tol, false)
		if err != nil {
			return nil, err
		}
		out, err = gate(out, fmt.Sprintf("throughput_rps[alpha=%.2f]", o.Alpha), o.ThroughputRPS, n.ThroughputRPS, tol, true)
		if err != nil {
			return nil, err
		}
		out, err = gate(out, fmt.Sprintf("bytes_sent[alpha=%.2f]", o.Alpha), o.BytesSent, n.BytesSent, tol, false)
		if err != nil {
			return nil, err
		}
		// Serve-side compute: the reduced-precision backend's headline.
		// Baselines from before the column existed decode as zero and skip
		// the gate (same backward-compat rule as the epoch stage columns).
		if o.ComputeSeconds > 0 {
			out, err = gate(out, fmt.Sprintf("compute_seconds[alpha=%.2f]", o.Alpha), o.ComputeSeconds, n.ComputeSeconds, tol, false)
			if err != nil {
				return nil, err
			}
		}
	}
	out, err = compareLoadCurve(out, oldRaw, newRaw, tol)
	if err != nil {
		return nil, err
	}
	return compareDrift(out, oldRaw, newRaw, tol)
}

// compareDrift gates the rotating-hot-set drift columns: the online
// policy's steady-state hit rate (higher is better, multiplicative
// tolerance), the online-minus-static gain (which must stay positive —
// the adaptive cache layer's entire claim), and that the online pass
// actually installed epochs. A baseline from before the drift profile
// existed lacks the "drift_online" field and skips these gates; a
// baseline that has it pins the columns — a new report without them
// errors rather than silently shrinking coverage.
func compareDrift(out []Comparison, oldRaw, newRaw map[string]json.RawMessage, tol float64) ([]Comparison, error) {
	if oldRaw["drift_online"] == nil {
		return out, nil // pre-drift baseline: nothing to gate against
	}
	oldHit, err := jsonFloat(oldRaw, "drift_online_hit_rate")
	if err != nil {
		return nil, err
	}
	newHit, err := jsonFloat(newRaw, "drift_online_hit_rate")
	if err != nil {
		return nil, err
	}
	out, err = gate(out, "drift_online_hit_rate", oldHit, newHit, tol, true)
	if err != nil {
		return nil, err
	}
	oldGain, err := jsonFloat(oldRaw, "drift_hit_rate_gain")
	if err != nil {
		return nil, err
	}
	newGain, err := jsonFloat(newRaw, "drift_hit_rate_gain")
	if err != nil {
		return nil, err
	}
	gainCmp := Comparison{
		Metric: "drift_hit_rate_gain>0", Old: oldGain, New: newGain,
		HigherIsBetter: true, Regressed: newGain <= 0,
	}
	if oldGain != 0 {
		gainCmp.Change = (newGain - oldGain) / oldGain
	}
	out = append(out, gainCmp)
	oldInst, err := jsonFloat(oldRaw, "drift_cache_installs")
	if err != nil {
		return nil, err
	}
	newInst, err := jsonFloat(newRaw, "drift_cache_installs")
	if err != nil {
		return nil, err
	}
	instCmp := Comparison{
		Metric: "drift_cache_installs>0", Old: oldInst, New: newInst,
		HigherIsBetter: true, Regressed: newInst <= 0,
	}
	if oldInst != 0 {
		instCmp.Change = (newInst - oldInst) / oldInst
	}
	out = append(out, instCmp)
	return out, nil
}

// serveLoadGateRow is the gated subset of a ServeLoadRow.
type serveLoadGateRow struct {
	OfferedRPS   float64 `json:"offered_rps"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P99          float64 `json:"p99_latency_seconds"`
	ShedRate     float64 `json:"shed_rate"`
	DegradedRate float64 `json:"degraded_rate"`
}

// compareLoadCurve gates the open-loop overload columns: per offered-rate
// row, p99 (lower is better), achieved throughput (higher), and the shed
// and degraded rates. A baseline from before the load curve existed lacks
// the "load_curve" field entirely and skips these gates — old BENCH files
// stay comparable — but a baseline that has the curve pins it: a missing
// row in the new report is a coverage regression.
func compareLoadCurve(out []Comparison, oldRaw, newRaw map[string]json.RawMessage, tol float64) ([]Comparison, error) {
	if oldRaw["load_curve"] == nil {
		return out, nil // pre-load-curve baseline: nothing to gate against
	}
	var oldRows, newRows []serveLoadGateRow
	if err := json.Unmarshal(oldRaw["load_curve"], &oldRows); err != nil {
		return nil, fmt.Errorf("compare: bad load_curve in old report: %w", err)
	}
	if newRaw["load_curve"] != nil {
		if err := json.Unmarshal(newRaw["load_curve"], &newRows); err != nil {
			return nil, fmt.Errorf("compare: bad load_curve in new report: %w", err)
		}
	}
	byRate := map[float64]serveLoadGateRow{}
	for _, r := range newRows {
		byRate[r.OfferedRPS] = r
	}
	var err error
	for _, o := range oldRows {
		n, ok := byRate[o.OfferedRPS]
		if !ok {
			out = append(out, Comparison{
				Metric: fmt.Sprintf("offered_rps=%.0f", o.OfferedRPS), Old: o.OfferedRPS,
				Regressed: true, // the new report silently dropped coverage
			})
			continue
		}
		out, err = gate(out, fmt.Sprintf("p99_latency_seconds[offered=%.0f]", o.OfferedRPS), o.P99, n.P99, tol, false)
		if err != nil {
			return nil, err
		}
		out, err = gate(out, fmt.Sprintf("achieved_rps[offered=%.0f]", o.OfferedRPS), o.AchievedRPS, n.AchievedRPS, tol, true)
		if err != nil {
			return nil, err
		}
		// Rates live in [0,1] and are legitimately zero below the knee, so
		// they get an additive tolerance instead of gate()'s multiplicative
		// one (which must reject zero baselines).
		out = gateRate(out, fmt.Sprintf("shed_rate[offered=%.0f]", o.OfferedRPS), o.ShedRate, n.ShedRate, tol)
		out = gateRate(out, fmt.Sprintf("degraded_rate[offered=%.0f]", o.OfferedRPS), o.DegradedRate, n.DegradedRate, tol)
	}
	return out, nil
}

// gateRate gates a bounded [0,1] rate with an additive tolerance: the new
// rate regresses when it exceeds the old by more than tol in absolute
// terms. Unlike gate, a zero baseline is meaningful (no shedding at that
// load) and still gated.
func gateRate(out []Comparison, metric string, oldV, newV, tol float64) []Comparison {
	c := Comparison{Metric: metric, Old: oldV, New: newV}
	if oldV > 0 {
		c.Change = (newV - oldV) / oldV
	}
	c.Regressed = newV > oldV+tol
	return append(out, c)
}

// ParseFloatList parses a comma-separated list of non-negative floats;
// what names the entries in errors.
func ParseFloatList(s, what string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		a, err := strconv.ParseFloat(tok, 64)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("bad %s entry %q", what, tok)
		}
		out = append(out, a)
	}
	return out, nil
}

// ParseAlphas parses a comma-separated replication-factor list (shared by
// cmd/salientbench and cmd/gnnserve).
func ParseAlphas(s string) ([]float64, error) {
	return ParseFloatList(s, "alpha")
}

// AnyRegressed reports whether the gate should fail the build.
func AnyRegressed(cs []Comparison) bool {
	for _, c := range cs {
		if c.Regressed {
			return true
		}
	}
	return false
}

// RenderComparisons formats the gate verdict table.
func RenderComparisons(cs []Comparison, tolerance float64) string {
	t := metrics.NewTable(
		fmt.Sprintf("Benchmark regression gate (tolerance %.0f%%)", tolerance*100),
		"metric", "old", "new", "change", "verdict")
	for _, c := range cs {
		dir := "lower is better"
		if c.HigherIsBetter {
			dir = "higher is better"
		}
		verdict := "ok (" + dir + ")"
		if c.Regressed {
			verdict = "REGRESSED (" + dir + ")"
		}
		t.AddRow(c.Metric,
			fmt.Sprintf("%.6g", c.Old),
			fmt.Sprintf("%.6g", c.New),
			fmt.Sprintf("%+.1f%%", c.Change*100),
			verdict)
	}
	return t.String()
}
