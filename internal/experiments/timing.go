package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/metrics"
	"salientpp/internal/perfmodel"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/vip"
)

// Scale sets dataset sizes for the timing experiments. The paper's graphs
// (111M–121M vertices) are replaced by their reduced-scale analogs; the
// performance model keeps compute/communication ratios intact because the
// feature and hidden dimensions are preserved verbatim.
//
// TrainBoost multiplies the training fraction of the *sparse-label*
// datasets (papers, mag240) for timing runs only. At the paper's 1%
// fraction a reduced-scale graph yields just a handful of minibatch
// rounds per machine, so fixed per-round latencies (pipeline fill,
// gradient-sync setup) would swamp the quantities under study. Boosting
// the label density restores the paper's rounds-per-epoch regime without
// altering any per-batch statistic. Documented in DESIGN.md/EXPERIMENTS.md.
type Scale struct {
	ProductsN, PapersN, Mag240N int
	Batch                       int
	TrainBoost                  float64
	Workers                     int
	Seed                        uint64
	// Codec selects the feature-gather wire codec ("", "fp32", "fp16",
	// "int8") for the benchmarks that run the real distributed cluster
	// (EpochBench, ServeBench). The empty string is the raw fp32 default.
	Codec string
	// Precision is the cluster's configured serving/freeze precision ("",
	// "fp32", "fp16", "int8") — part of checkpoint run identity. Training
	// compute is always fp32 regardless. Empty means fp32.
	Precision string
	// GradCodec selects the gradient all-reduce wire codec ("", "fp32",
	// "fp16", "int8") for the benchmarks that train the real cluster.
	// Lossy codecs use per-row quantization with error-feedback residuals;
	// the empty string is the raw fp32 default.
	GradCodec string
}

// DefaultScale is used by the CLI harness (a few minutes end to end).
func DefaultScale() Scale {
	return Scale{ProductsN: 60000, PapersN: 200000, Mag240N: 100000, Batch: 128, TrainBoost: 8, Workers: 2, Seed: 7}
}

// SmallScale is used by unit tests and testing.B benchmarks.
func SmallScale() Scale {
	return Scale{ProductsN: 8000, PapersN: 20000, Mag240N: 10000, Batch: 32, TrainBoost: 8, Workers: 2, Seed: 7}
}

// alphaForK reproduces Table 1's replication factors: 8% on 2 machines,
// 16% on 4, 32% on 8 and beyond.
func alphaForK(k int) float64 {
	switch {
	case k <= 1:
		return 0
	case k == 2:
		return 0.08
	case k == 4:
		return 0.16
	default:
		return 0.32
	}
}

func (s Scale) makeDataset(name string) (*dataset.Dataset, error) {
	boost := s.TrainBoost
	if boost < 1 {
		boost = 1
	}
	frac := func(f float64) float64 {
		f *= boost
		if f > 0.2 {
			f = 0.2
		}
		return f
	}
	switch name {
	case "products-sim":
		// Products is already densely labeled; no boost needed.
		return dataset.ProductsSim(s.ProductsN, false, s.Seed)
	case "papers-sim":
		return dataset.Generate(dataset.SyntheticConfig{
			Name: "papers-sim", NumVertices: s.PapersN, AvgDegree: 28.8,
			FeatureDim: 128, NumClasses: 32,
			TrainFrac: frac(0.0108), ValFrac: 0.0011, TestFrac: 0.0019,
			FeatureNoise: 0.6, Seed: s.Seed,
		})
	case "mag240-sim":
		return dataset.Generate(dataset.SyntheticConfig{
			Name: "mag240-sim", NumVertices: s.Mag240N, AvgDegree: 21.5,
			FeatureDim: 768, NumClasses: 32,
			TrainFrac: frac(0.0091), ValFrac: 0.0011, TestFrac: 0.0007,
			FeatureNoise: 0.6, Seed: s.Seed,
		})
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// simulateCell deploys nothing new — it prices one (system, cache, GPU
// fraction) configuration of an existing deployment.
func simulateCell(d *Deployment, sys perfmodel.System, rankings [][]int32, alpha, gpuFrac float64, hw perfmodel.Hardware) (*perfmodel.Result, error) {
	scen, err := d.Scenario(rankings, alpha, gpuFrac)
	if err != nil {
		return nil, err
	}
	w, err := d.Workload(scen)
	if err != nil {
		return nil, err
	}
	return perfmodel.Simulate(sys, w, hw)
}

// ---------------------------------------------------------------- Table 1

// Table1Result holds per-system, per-K epoch times, raw (simulated
// seconds at reduced scale) and normalized so the 1-machine
// full-replication cell reads the paper's 20.7 s.
type Table1Result struct {
	Ks         []int
	Systems    []string
	Raw        map[string][]float64 // NaN marks the paper's "—" cells
	Normalized map[string][]float64
	NormFactor float64
}

// Table1 reproduces the progressive-optimization table on papers-sim.
func Table1(scale Scale) (*Table1Result, error) {
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		return nil, err
	}
	dims := PaperDims(ds.Name)
	hw := perfmodel.DefaultHardware()
	res := &Table1Result{
		Ks:      []int{1, 2, 4, 8},
		Systems: []string{"SALIENT (full replication)", "+ Partitioned features", "+ Pipeline communication", "+ Feature caching"},
		Raw:     map[string][]float64{},
	}
	for _, s := range res.Systems {
		res.Raw[s] = make([]float64, len(res.Ks))
	}
	var base float64
	for ki, k := range res.Ks {
		dep, err := Deploy(ds, k, dims, scale.Batch, true, scale.Seed, scale.Workers)
		if err != nil {
			return nil, err
		}
		full, err := simulateCell(dep, perfmodel.SystemFullReplication, nil, 0, 1, hw)
		if err != nil {
			return nil, err
		}
		res.Raw[res.Systems[0]][ki] = full.EpochSeconds
		if k == 1 {
			base = full.EpochSeconds
			for _, s := range res.Systems[1:] {
				res.Raw[s][ki] = math.NaN()
			}
			continue
		}
		seq, err := simulateCell(dep, perfmodel.SystemSequential, nil, 0, 1, hw)
		if err != nil {
			return nil, err
		}
		res.Raw[res.Systems[1]][ki] = seq.EpochSeconds
		pipe, err := simulateCell(dep, perfmodel.SystemPipelined, nil, 0, 1, hw)
		if err != nil {
			return nil, err
		}
		res.Raw[res.Systems[2]][ki] = pipe.EpochSeconds
		rankings, err := dep.Rankings(cache.VIP{})
		if err != nil {
			return nil, err
		}
		cached, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, alphaForK(k), 1, hw)
		if err != nil {
			return nil, err
		}
		res.Raw[res.Systems[3]][ki] = cached.EpochSeconds
	}
	res.NormFactor = 20.7 / base
	res.Normalized = map[string][]float64{}
	for s, row := range res.Raw {
		nr := make([]float64, len(row))
		for i, v := range row {
			nr[i] = v * res.NormFactor
		}
		res.Normalized[s] = nr
	}
	return res, nil
}

// Render formats both raw and normalized tables.
func (r *Table1Result) Render() string {
	render := func(title string, cells map[string][]float64) string {
		headers := []string{"System"}
		for _, k := range r.Ks {
			headers = append(headers, fmt.Sprintf("K=%d", k))
		}
		t := metrics.NewTable(title, headers...)
		for _, s := range r.Systems {
			row := []any{s}
			for _, v := range cells[s] {
				if math.IsNaN(v) {
					row = append(row, "—")
				} else {
					row = append(row, fmt.Sprintf("%.3fs", v))
				}
			}
			t.AddRow(row...)
		}
		return t.String()
	}
	out := render("Table 1 (raw simulated seconds at reduced scale)", r.Raw)
	out += "\n" + render(fmt.Sprintf("Table 1 (normalized: full-replication K=1 pinned to the paper's 20.7 s; factor %.1fx)", r.NormFactor), r.Normalized)
	return out
}

// ---------------------------------------------------------------- Figure 4

// Fig4Row is one dataset's successive-optimization epoch times.
type Fig4Row struct {
	Dataset    string
	K          int
	Alpha      float64
	Sequential float64
	Pipelined  float64
	Cached     float64
}

// Fig4 reproduces the optimization-impact bars: products (4 partitions,
// α=.16), papers (8, α=.32), mag240 (16, α=.32).
func Fig4(scale Scale) ([]Fig4Row, error) {
	hw := perfmodel.DefaultHardware()
	configs := []struct {
		name  string
		k     int
		alpha float64
	}{
		{"products-sim", 4, 0.16},
		{"papers-sim", 8, 0.32},
		{"mag240-sim", 16, 0.32},
	}
	var rows []Fig4Row
	for _, c := range configs {
		ds, err := scale.makeDataset(c.name)
		if err != nil {
			return nil, err
		}
		dep, err := Deploy(ds, c.k, PaperDims(c.name), scale.Batch, true, scale.Seed, scale.Workers)
		if err != nil {
			return nil, err
		}
		seq, err := simulateCell(dep, perfmodel.SystemSequential, nil, 0, 1, hw)
		if err != nil {
			return nil, err
		}
		pipe, err := simulateCell(dep, perfmodel.SystemPipelined, nil, 0, 1, hw)
		if err != nil {
			return nil, err
		}
		rankings, err := dep.Rankings(cache.VIP{})
		if err != nil {
			return nil, err
		}
		cached, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, c.alpha, 1, hw)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Dataset: c.name, K: c.k, Alpha: c.alpha,
			Sequential: seq.EpochSeconds, Pipelined: pipe.EpochSeconds, Cached: cached.EpochSeconds,
		})
	}
	return rows, nil
}

// RenderFig4 formats the rows.
func RenderFig4(rows []Fig4Row) string {
	t := metrics.NewTable("Figure 4: impact of pipelining and VIP caching (simulated epoch seconds)",
		"dataset", "K", "α", "partitioned", "+pipelining", "+VIP cache", "total speedup")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.K, fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%.3f", r.Sequential), fmt.Sprintf("%.3f", r.Pipelined), fmt.Sprintf("%.3f", r.Cached),
			fmt.Sprintf("%.2fx", r.Sequential/r.Cached))
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one (dataset, K) scalability measurement.
type Fig5Row struct {
	Dataset      string
	K            int
	Alpha        float64
	EpochSeconds float64
	// MemoryMultiple is total feature memory across machines as a multiple
	// of the unreplicated dataset (1+α).
	MemoryMultiple float64
}

// Fig5 reproduces the scalability and memory plot for all three datasets
// on 2–16 machines with SALIENT++ (VIP cache + pipeline).
func Fig5(scale Scale) ([]Fig5Row, error) {
	hw := perfmodel.DefaultHardware()
	var rows []Fig5Row
	for _, name := range []string{"products-sim", "papers-sim", "mag240-sim"} {
		ds, err := scale.makeDataset(name)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{2, 4, 8, 16} {
			dep, err := Deploy(ds, k, PaperDims(name), scale.Batch, true, scale.Seed, scale.Workers)
			if err != nil {
				return nil, err
			}
			rankings, err := dep.Rankings(cache.VIP{})
			if err != nil {
				return nil, err
			}
			alpha := alphaForK(k)
			res, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, alpha, 1, hw)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				Dataset: name, K: k, Alpha: alpha,
				EpochSeconds: res.EpochSeconds, MemoryMultiple: 1 + alpha,
			})
		}
	}
	return rows, nil
}

// RenderFig5 formats the rows.
func RenderFig5(rows []Fig5Row) string {
	t := metrics.NewTable("Figure 5: SALIENT++ scalability and total feature memory",
		"dataset", "K", "α", "epoch (s)", "memory (×dataset)")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.K, fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%.3f", r.EpochSeconds), fmt.Sprintf("%.2f", r.MemoryMultiple))
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one (reorder, β) measurement.
type Fig6Row struct {
	VIPReorder   bool
	GPUFraction  float64
	EpochSeconds float64
}

// Fig6 reproduces the local CPU/GPU split experiment: papers, 4 machines,
// α=0.15, varying the fraction β of each local partition held on device,
// with and without VIP-based local reordering.
func Fig6(scale Scale) ([]Fig6Row, error) {
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		return nil, err
	}
	hw := perfmodel.DefaultHardware()
	betas := []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0}
	var rows []Fig6Row
	for _, reorder := range []bool{false, true} {
		dep, err := Deploy(ds, 4, PaperDims(ds.Name), scale.Batch, reorder, scale.Seed, scale.Workers)
		if err != nil {
			return nil, err
		}
		rankings, err := dep.Rankings(cache.VIP{})
		if err != nil {
			return nil, err
		}
		for _, beta := range betas {
			res, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, 0.15, beta, hw)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{VIPReorder: reorder, GPUFraction: beta, EpochSeconds: res.EpochSeconds})
		}
	}
	return rows, nil
}

// RenderFig6 formats the rows.
func RenderFig6(rows []Fig6Row) string {
	t := metrics.NewTable("Figure 6: % of local partition on GPU vs epoch time (papers-sim, 4 machines, α=0.15)",
		"ordering", "β (on GPU)", "epoch (s)")
	for _, r := range rows {
		name := "no reorder"
		if r.VIPReorder {
			name = "VIP reorder"
		}
		t.AddRow(name, fmt.Sprintf("%.0f%%", 100*r.GPUFraction), fmt.Sprintf("%.3f", r.EpochSeconds))
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is one (dataset, K, α) measurement.
type Fig7Row struct {
	Dataset      string
	K            int
	Alpha        float64
	EpochSeconds float64
}

// Fig7 reproduces the replication-factor sweep: papers on 4 and 8
// partitions, mag240 on 8 and 16, α ∈ [0, 0.32]. GPU residency matches
// the paper's setting (90% for papers, 10% for mag240).
func Fig7(scale Scale) ([]Fig7Row, error) {
	hw := perfmodel.DefaultHardware()
	alphas := []float64{0, 0.08, 0.16, 0.24, 0.32}
	configs := []struct {
		name    string
		ks      []int
		gpuFrac float64
	}{
		{"papers-sim", []int{4, 8}, 0.9},
		{"mag240-sim", []int{8, 16}, 0.1},
	}
	var rows []Fig7Row
	for _, c := range configs {
		ds, err := scale.makeDataset(c.name)
		if err != nil {
			return nil, err
		}
		for _, k := range c.ks {
			dep, err := Deploy(ds, k, PaperDims(c.name), scale.Batch, true, scale.Seed, scale.Workers)
			if err != nil {
				return nil, err
			}
			rankings, err := dep.Rankings(cache.VIP{})
			if err != nil {
				return nil, err
			}
			for _, alpha := range alphas {
				res, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, alpha, c.gpuFrac, hw)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig7Row{Dataset: c.name, K: k, Alpha: alpha, EpochSeconds: res.EpochSeconds})
			}
		}
	}
	return rows, nil
}

// RenderFig7 formats the rows.
func RenderFig7(rows []Fig7Row) string {
	t := metrics.NewTable("Figure 7: replication factor vs epoch time", "dataset", "K", "α", "epoch (s)")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.K, fmt.Sprintf("%.2f", r.Alpha), fmt.Sprintf("%.3f", r.EpochSeconds))
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row is one breakdown configuration.
type Fig8Row struct {
	Pipelining bool
	Alpha      float64
	Result     *perfmodel.Result
}

// Fig8 reproduces the performance breakdown: papers, 8 machines, all local
// features on GPU, pipelining on/off × α ∈ {0, 0.32}.
func Fig8(scale Scale) ([]Fig8Row, error) {
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		return nil, err
	}
	hw := perfmodel.DefaultHardware()
	dep, err := Deploy(ds, 8, PaperDims(ds.Name), scale.Batch, true, scale.Seed, scale.Workers)
	if err != nil {
		return nil, err
	}
	rankings, err := dep.Rankings(cache.VIP{})
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, pipelining := range []bool{false, true} {
		for _, alpha := range []float64{0, 0.32} {
			sys := perfmodel.SystemSequential
			if pipelining {
				sys = perfmodel.SystemPipelined
			}
			rk := rankings
			if alpha == 0 {
				rk = nil
			}
			res, err := simulateCell(dep, sys, rk, alpha, 1, hw)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{Pipelining: pipelining, Alpha: alpha, Result: res})
		}
	}
	return rows, nil
}

// RenderFig8 formats the rows.
func RenderFig8(rows []Fig8Row) string {
	t := metrics.NewTable("Figure 8: breakdown on papers-sim, 8 machines (machine-0 attribution, seconds)",
		"pipelining", "α", "epoch", "Train", "Train(sync)", "Startup", "BatchPrep(comm)", "BatchPrep(comp)")
	for _, r := range rows {
		pl := "off"
		if r.Pipelining {
			pl = "on"
		}
		res := r.Result
		t.AddRow(pl, fmt.Sprintf("%.2f", r.Alpha),
			fmt.Sprintf("%.3f", res.EpochSeconds), fmt.Sprintf("%.3f", res.Train),
			fmt.Sprintf("%.3f", res.TrainSync), fmt.Sprintf("%.3f", res.Startup),
			fmt.Sprintf("%.3f", res.PrepComm), fmt.Sprintf("%.3f", res.PrepComp))
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Row is one slow-network measurement.
type Fig9Row struct {
	Dataset      string
	NetGbps      float64
	Policy       string
	Alpha        float64
	EpochSeconds float64
}

// Fig9 reproduces the slow-network comparison of the VIP-analytic and
// VIP-simulation policies: 16 machines, token-bucket-shaped 4 and 8 Gbps
// networks, α sweeps matching the paper's panels.
func Fig9(scale Scale) ([]Fig9Row, error) {
	configs := []struct {
		name    string
		alphas  []float64
		gpuFrac float64
	}{
		{"papers-sim", []float64{0.16, 0.32, 0.64, 0.96, 1.28}, 0.9},
		{"mag240-sim", []float64{0.08, 0.16, 0.32, 0.48}, 0.1},
	}
	policies := []cache.Ranker{cache.VIP{}, cache.Simulated{Epochs: 2}}
	var rows []Fig9Row
	for _, c := range configs {
		ds, err := scale.makeDataset(c.name)
		if err != nil {
			return nil, err
		}
		dep, err := Deploy(ds, 16, PaperDims(c.name), scale.Batch, true, scale.Seed, scale.Workers)
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			rankings, err := dep.Rankings(pol)
			if err != nil {
				return nil, err
			}
			polName := "VIP (analytic)"
			if pol.Name() == "sim." {
				polName = "VIP (simulation)"
			}
			for _, gbps := range []float64{4, 8} {
				hw := perfmodel.DefaultHardware().WithNetwork(25, gbps)
				for _, alpha := range c.alphas {
					res, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, alpha, c.gpuFrac, hw)
					if err != nil {
						return nil, err
					}
					rows = append(rows, Fig9Row{
						Dataset: c.name, NetGbps: gbps, Policy: polName,
						Alpha: alpha, EpochSeconds: res.EpochSeconds,
					})
				}
			}
		}
	}
	return rows, nil
}

// RenderFig9 formats the rows.
func RenderFig9(rows []Fig9Row) string {
	t := metrics.NewTable("Figure 9: VIP-analytic vs VIP-simulation on slow networks (16 machines)",
		"dataset", "network", "policy", "α", "epoch (s)")
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprintf("%.0f Gbps", r.NetGbps), r.Policy,
			fmt.Sprintf("%.2f", r.Alpha), fmt.Sprintf("%.3f", r.EpochSeconds))
	}
	return t.String()
}

// ---------------------------------------------------------------- Table 4

// Table4Result compares SALIENT++ with the DistDGL-like baseline.
type Table4Result struct {
	SalientPP float64
	DistDGL   float64
	Speedup   float64
}

// Table4 reproduces the system comparison on papers-sim with 8 machines.
func Table4(scale Scale) (*Table4Result, error) {
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		return nil, err
	}
	hw := perfmodel.DefaultHardware()
	dep, err := Deploy(ds, 8, PaperDims(ds.Name), scale.Batch, true, scale.Seed, scale.Workers)
	if err != nil {
		return nil, err
	}
	rankings, err := dep.Rankings(cache.VIP{})
	if err != nil {
		return nil, err
	}
	spp, err := simulateCell(dep, perfmodel.SystemPipelined, rankings, 0.32, 1, hw)
	if err != nil {
		return nil, err
	}
	dgl, err := simulateCell(dep, perfmodel.SystemDistDGL, nil, 0, 1, hw)
	if err != nil {
		return nil, err
	}
	return &Table4Result{
		SalientPP: spp.EpochSeconds,
		DistDGL:   dgl.EpochSeconds,
		Speedup:   dgl.EpochSeconds / spp.EpochSeconds,
	}, nil
}

// Render formats the comparison.
func (r *Table4Result) Render() string {
	t := metrics.NewTable("Table 4: system comparison on papers-sim, 8 machines (simulated)",
		"system", "epoch (s)", "notes")
	t.AddRow("SALIENT++", fmt.Sprintf("%.3f", r.SalientPP), "α=0.32, VIP cache, deep pipeline")
	t.AddRow("DistDGL-like", fmt.Sprintf("%.3f", r.DistDGL), "per-hop sampling RPCs, no cache, no pipeline")
	t.AddRow("speedup", fmt.Sprintf("%.1fx", r.Speedup), "paper reports 12.7x vs public DistDGL")
	return t.String()
}

// ------------------------------------------------------------- hot paths

// HotPathRow is one worker-count measurement of the two dominant hot
// paths: the VIP propagation and one epoch of minibatch preparation.
type HotPathRow struct {
	Workers       int     `json:"workers"`
	VIPSeconds    float64 `json:"vip_seconds"`
	VIPSpeedup    float64 `json:"vip_speedup"`
	SampleSeconds float64 `json:"sample_seconds"`
	SampleSpeedup float64 `json:"sample_speedup"`
}

// HotPathsResult is the machine-readable hot-path timing report
// (BENCH_sample_vip.json); speedups are relative to the workers=1 row, so
// the single- vs multi-worker trajectory survives across PRs. MaxProcs is
// the effective GOMAXPROCS of the measurement (after ensureParallel lifts
// a constrained runtime to all CPUs); when it is 1 the speedup columns are
// necessarily flat and the report should be read as serial-only.
type HotPathsResult struct {
	Dataset  string       `json:"dataset"`
	Vertices int          `json:"vertices"`
	Edges    int64        `json:"edges"`
	Fanouts  []int        `json:"fanouts"`
	Batch    int          `json:"batch"`
	Batches  int          `json:"batches_per_epoch"`
	Seed     uint64       `json:"seed"`
	MaxProcs int          `json:"gomaxprocs"`
	NumCPU   int          `json:"numcpu"`
	Rows     []HotPathRow `json:"rows"`
}

// ensureParallel lifts GOMAXPROCS to the machine's CPU count when the
// runtime arrived constrained to one proc (a past CI run recorded
// "gomaxprocs": 1 with flat speedups — the sweep measured nothing). The
// returned restore func undoes the change; procs is the effective value
// benchmarks should record. Callers should surface a warning when procs
// is still 1: on a single-core machine worker sweeps cannot show speedup.
func ensureParallel() (restore func(), procs int) {
	if runtime.GOMAXPROCS(0) == 1 && runtime.NumCPU() > 1 {
		prev := runtime.GOMAXPROCS(runtime.NumCPU())
		return func() { runtime.GOMAXPROCS(prev) }, runtime.GOMAXPROCS(0)
	}
	return func() {}, runtime.GOMAXPROCS(0)
}

// HotPaths times vip.Probabilities and sample.PrepareEpoch on papers-sim
// at each worker count (best of three runs, minimizing scheduler noise).
// The workers=1 serial baseline anchors the speedup columns and is
// prepended if the sweep omits it; nil selects the default {1, 2, 4, 8}.
func HotPaths(scale Scale, workerCounts []int) (*HotPathsResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	hasBaseline := false
	for _, w := range workerCounts {
		if w == 1 {
			hasBaseline = true
			break
		}
	}
	if !hasBaseline {
		workerCounts = append([]int{1}, workerCounts...)
	}
	restore, procs := ensureParallel()
	defer restore()
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		return nil, err
	}
	dims := PaperDims(ds.Name)
	train := ds.TrainIDs()
	p0 := vip.UniformSeeds(ds.NumVertices(), train, scale.Batch)
	smp, err := sample.NewSampler(ds.Graph, dims.Fanouts)
	if err != nil {
		return nil, err
	}
	batches := sample.EpochBatches(train, scale.Batch, rng.New(scale.Seed))

	res := &HotPathsResult{
		Dataset: ds.Name, Vertices: ds.NumVertices(), Edges: ds.Graph.NumEdges(),
		Fanouts: dims.Fanouts, Batch: scale.Batch, Batches: len(batches),
		Seed: scale.Seed, MaxProcs: procs, NumCPU: runtime.NumCPU(),
	}
	bestOf := func(f func() error) (float64, error) {
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if s := time.Since(t0).Seconds(); s < best {
				best = s
			}
		}
		return best, nil
	}
	for _, w := range workerCounts {
		vcfg := vip.Config{Fanouts: dims.Fanouts, BatchSize: scale.Batch, Workers: w}
		vs, err := bestOf(func() error {
			_, err := vip.Probabilities(ds.Graph, p0, vcfg, false)
			return err
		})
		if err != nil {
			return nil, err
		}
		ss, err := bestOf(func() error {
			mfgs := sample.PrepareEpoch(smp, batches, rng.New(scale.Seed+1), w)
			for _, m := range mfgs {
				m.Release()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, HotPathRow{Workers: w, VIPSeconds: vs, SampleSeconds: ss})
	}
	// Speedups are filled after all measurements so the baseline's position
	// in the sweep does not matter.
	var vip1, smp1 float64
	for _, row := range res.Rows {
		if row.Workers == 1 {
			vip1, smp1 = row.VIPSeconds, row.SampleSeconds
			break
		}
	}
	for i := range res.Rows {
		if vip1 > 0 {
			res.Rows[i].VIPSpeedup = vip1 / res.Rows[i].VIPSeconds
		}
		if smp1 > 0 {
			res.Rows[i].SampleSpeedup = smp1 / res.Rows[i].SampleSeconds
		}
	}
	return res, nil
}

// WriteJSON writes the report for machine consumption (the perf
// trajectory file committed as BENCH_sample_vip.json).
func (r *HotPathsResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// RenderHotPaths formats the single- vs multi-worker comparison.
func RenderHotPaths(r *HotPathsResult) string {
	t := metrics.NewTable(
		fmt.Sprintf("Hot paths: VIP analysis and batch preparation (%s, N=%d, M=%d, GOMAXPROCS=%d/%d CPUs)",
			r.Dataset, r.Vertices, r.Edges, r.MaxProcs, r.NumCPU),
		"workers", "VIP (s)", "VIP speedup", "sample epoch (s)", "sample speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Workers,
			fmt.Sprintf("%.4f", row.VIPSeconds), fmt.Sprintf("%.2fx", row.VIPSpeedup),
			fmt.Sprintf("%.4f", row.SampleSeconds), fmt.Sprintf("%.2fx", row.SampleSpeedup))
	}
	return t.String()
}

// ---------------------------------------------------------------- Table 2

// Table2 renders the dataset summary (paper Table 2, scaled).
func Table2(scale Scale) (string, error) {
	t := metrics.NewTable("Table 2: synthetic dataset analogs (scaled; relative statistics match the paper)",
		"dataset", "#vertices", "#edges(stored)", "#feat", "train", "val", "test")
	for _, name := range []string{"products-sim", "papers-sim", "mag240-sim"} {
		ds, err := scale.makeDataset(name)
		if err != nil {
			return "", err
		}
		t.AddRow(ds.Name, ds.NumVertices(), ds.Graph.NumEdges(), ds.FeatureDim,
			ds.CountSplit(dataset.SplitTrain), ds.CountSplit(dataset.SplitVal), ds.CountSplit(dataset.SplitTest))
	}
	return t.String(), nil
}
