package experiments

import "salientpp/internal/perfmodel"

// BuildWorkloadForTest exposes the deployment-independent workload builder
// with the exact seed/worker derivation the harness uses, for the
// model-vs-runtime cross-validation test.
func BuildWorkloadForTest(s *perfmodel.Scenario, seed uint64) (*perfmodel.Workload, error) {
	return perfmodel.BuildWorkload(s, seed, 2)
}
