package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestEpochBenchReport(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	scale.GradCodec = "int8"
	res, err := EpochBench(scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("got %d epochs", len(res.Epochs))
	}
	for _, row := range res.Epochs {
		if row.WallSeconds <= 0 || row.ComputeSeconds <= 0 {
			t.Fatalf("non-positive timing: %+v", row)
		}
		if row.BytesSent <= 0 {
			t.Fatalf("no communication recorded: %+v", row)
		}
		if row.GradBytesSent <= 0 {
			t.Fatalf("no gradient communication recorded: %+v", row)
		}
		if row.Loss <= 0 {
			t.Fatalf("no loss recorded: %+v", row)
		}
	}
	if res.GradCodec != "int8" || res.GradBytesPerEpoch <= 0 {
		t.Fatalf("gradient summary malformed: codec=%q bytes=%v", res.GradCodec, res.GradBytesPerEpoch)
	}
	if res.NoOverlapWallSeconds <= 0 {
		t.Fatalf("control epoch missing: %+v", res.NoOverlapWallSeconds)
	}
	if res.BestWallSeconds <= 0 || res.MeanWallSeconds < res.BestWallSeconds {
		t.Fatalf("summary malformed: best=%v mean=%v", res.BestWallSeconds, res.MeanWallSeconds)
	}
	if res.MaxProcs < 1 || res.NumCPU < 1 {
		t.Fatalf("proc metadata malformed: %+v", res)
	}
	if RenderEpochBench(res) == "" {
		t.Fatal("empty rendering")
	}

	path := filepath.Join(t.TempDir(), "BENCH_epoch.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back EpochBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Epochs) != len(res.Epochs) || back.Dataset != res.Dataset {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	// Losses must fall epoch over epoch on this learnable analog — a cheap
	// end-to-end sanity check that the measured loop actually trains.
	if res.Epochs[1].Loss >= res.Epochs[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", res.Epochs[0].Loss, res.Epochs[1].Loss)
	}
}
