package experiments

import (
	"salientpp/internal/dataset"
	"salientpp/internal/partition"
	"salientpp/internal/vip"
)

// AblationResult compares remote communication volume (vertices per
// epoch, no caching) of the standard partitioning objective against the
// VIP-weighted objective suggested as future work in the paper's §6.
type AblationResult struct {
	BaselineRemote    float64
	VIPWeightedRemote float64
}

// AblationVIPPartition partitions ds twice — with the paper's standard
// balance constraints, and with an additional constraint that balances
// global VIP mass across partitions (so no machine concentrates
// frequently-sampled vertices) — and measures the uncached remote
// communication volume of each deployment.
func AblationVIPPartition(ds *dataset.Dataset, k int, scale Scale) (*AblationResult, error) {
	dims := PaperDims(ds.Name)

	// Baseline.
	base, err := Deploy(ds, k, dims, scale.Batch, false, scale.Seed, scale.Workers)
	if err != nil {
		return nil, err
	}
	baseScen, err := base.Scenario(nil, 0, 1)
	if err != nil {
		return nil, err
	}
	baseWork, err := base.Workload(baseScen)
	if err != nil {
		return nil, err
	}

	// VIP-weighted objective: global VIP mass as an extra constraint.
	p0 := vip.UniformSeeds(ds.NumVertices(), ds.TrainIDs(), scale.Batch)
	res, err := vip.Probabilities(ds.Graph, p0, vip.Config{Fanouts: dims.Fanouts, BatchSize: scale.Batch, IncludeSeeds: true}, false)
	if err != nil {
		return nil, err
	}
	vipWeight := make([]float32, ds.NumVertices())
	for v, p := range res.P {
		vipWeight[v] = float32(p)
	}
	weights := append(SplitWeights(ds), vipWeight)
	pres, err := partition.Partition(ds.Graph, partition.Config{K: k, Weights: weights, Seed: scale.Seed})
	if err != nil {
		return nil, err
	}
	weighted, err := DeployWithParts(ds, pres.Parts, k, dims, scale.Batch, false, scale.Seed, scale.Workers)
	if err != nil {
		return nil, err
	}
	wScen, err := weighted.Scenario(nil, 0, 1)
	if err != nil {
		return nil, err
	}
	wWork, err := weighted.Workload(wScen)
	if err != nil {
		return nil, err
	}

	return &AblationResult{
		BaselineRemote:    float64(baseWork.RemoteVertices()),
		VIPWeightedRemote: float64(wWork.RemoteVertices()),
	}, nil
}
