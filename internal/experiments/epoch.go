package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/metrics"
	"salientpp/internal/pipeline"
)

// EpochRow is one measured training epoch on the real distributed stack.
// Stage seconds are rank-0's cumulative stage timers (stages overlap under
// the deep pipeline, so they need not sum to the wall time).
type EpochRow struct {
	Epoch         int     `json:"epoch"`
	WallSeconds   float64 `json:"wall_seconds"`
	SampleSeconds float64 `json:"sample_seconds"`
	GatherSeconds float64 `json:"gather_seconds"`
	// ComputeSeconds is total model compute; the three stage columns below
	// split it (aggregate + transform + backward ≈ compute — the remainder
	// is loss/optimizer glue) so kernel regressions are attributable to a
	// stage, not just "compute got slower".
	ComputeSeconds   float64 `json:"compute_seconds"`
	AggregateSeconds float64 `json:"aggregate_seconds"`
	TransformSeconds float64 `json:"transform_seconds"`
	BackwardSeconds  float64 `json:"backward_seconds"`
	BytesSent        int64   `json:"bytes_sent"`
	RemoteFetches    int64   `json:"remote_fetches"`
	// GradBytesSent is the gradient all-reduce payload summed over ranks —
	// the grad-codec headline, disjoint from the feature bytes above.
	GradBytesSent int64 `json:"grad_bytes_sent"`
	// OverlapSecondsSaved is rank-0's reduce time spent concurrently with
	// backward compute: GradReduceTime − GradWaitTime. With overlap
	// disabled the two are equal by construction and the column is zero.
	OverlapSecondsSaved float64 `json:"overlap_seconds_saved"`
	Loss                float64 `json:"loss"`
}

// EpochBenchResult is the machine-readable end-to-end epoch report
// (BENCH_epoch.json): real training on the full distributed data path —
// sampling, three-collective gather, blocked kernels, gradient all-reduce
// — so the per-epoch wall-time trajectory is diffable PR over PR.
type EpochBenchResult struct {
	Dataset  string  `json:"dataset"`
	Vertices int     `json:"vertices"`
	Edges    int64   `json:"edges"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Fanouts  []int   `json:"fanouts"`
	Batch    int     `json:"batch"`
	Hidden   int     `json:"hidden"`
	Seed     uint64  `json:"seed"`
	// Codec is the feature-gather wire codec the epochs ran under; the
	// per-epoch BytesSent column counts encoded wire bytes, so fp16/int8
	// rows shrink it at identical remote-fetch counts.
	Codec string `json:"codec"`
	// GradCodec is the gradient all-reduce wire codec ("fp32", "fp16",
	// "int8"); fp16/int8 rows shrink GradBytesPerEpoch via per-row
	// quantization with error-feedback residuals.
	GradCodec       string     `json:"grad_codec"`
	MaxProcs        int        `json:"gomaxprocs"`
	NumCPU          int        `json:"numcpu"`
	Epochs          []EpochRow `json:"epochs"`
	BestWallSeconds float64    `json:"best_wall_seconds"`
	MeanWallSeconds float64    `json:"mean_wall_seconds"`
	// MeanBytesPerEpoch is the bytes-on-wire headline the CI bench gate
	// tracks: mean feature-communication payload bytes per epoch.
	MeanBytesPerEpoch float64 `json:"mean_bytes_per_epoch"`
	// GradBytesPerEpoch is the gradient-synchronization analog: mean
	// all-reduce payload bytes per epoch, gated by `-compare` when the
	// baseline has the column.
	GradBytesPerEpoch float64 `json:"grad_bytes_per_epoch"`
	// OverlapSecondsSaved is the mean per-epoch reduce time hidden behind
	// backward compute by the overlapped schedule.
	OverlapSecondsSaved float64 `json:"overlap_seconds_saved"`
	// NoOverlapWallSeconds is one control epoch on a fresh same-seed
	// cluster with Config.NoGradOverlap set, so the overlap win is
	// visible in the report itself (compare against the epoch-0 wall).
	NoOverlapWallSeconds float64 `json:"no_overlap_wall_seconds"`
	// Elastic-training recovery counters (metrics.CounterStallsDetected
	// and friends). The bench runs healthy and non-elastic, so they are
	// zero here — present so elastic runs report through the same schema
	// and `-compare` against healthy baselines is unaffected.
	StallsDetected int64 `json:"stalls_detected"`
	Regroups       int64 `json:"regroups"`
	RoundsReplayed int64 `json:"rounds_replayed"`
}

// EpochBench trains a 2-machine SALIENT++ cluster on a materialized
// papers-sim analog for the given number of epochs and reports the
// sample/gather/compute split, communication volume, and loss per epoch.
// Seeds are pinned by scale.Seed, so same-seed runs are comparable across
// code versions.
func EpochBench(scale Scale, epochs int) (*EpochBenchResult, error) {
	if epochs <= 0 {
		epochs = 3
	}
	restore, procs := ensureParallel()
	defer restore()
	ds, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "papers-sim", NumVertices: scale.PapersN, AvgDegree: 28.8,
		FeatureDim: 128, NumClasses: 32,
		TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
		FeatureNoise: 0.6, Materialize: true, Seed: scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	dims := PaperDims(ds.Name)
	const k = 2
	const alpha = 0.16
	codec, err := dist.ParseCodec(scale.Codec)
	if err != nil {
		return nil, err
	}
	gradCodec, err := dist.ParseCodec(scale.GradCodec)
	if err != nil {
		return nil, err
	}
	clusterCfg := pipeline.ClusterConfig{
		K: k, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
		Hidden: dims.Hidden, Layers: len(dims.Fanouts), Codec: scale.Codec,
		Train: pipeline.Config{
			Fanouts: dims.Fanouts, BatchSize: scale.Batch, PipelineDepth: 10,
			SamplerWorkers: scale.Workers, Parallelism: scale.Workers,
			LR: 1e-3, Seed: scale.Seed, GradCodec: scale.GradCodec,
		},
		ModelSeed: scale.Seed + 1,
	}
	cl, err := pipeline.NewCluster(ds, clusterCfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &EpochBenchResult{
		Dataset: ds.Name, Vertices: ds.NumVertices(), Edges: ds.Graph.NumEdges(),
		K: k, Alpha: alpha, Fanouts: dims.Fanouts, Batch: scale.Batch,
		Hidden: dims.Hidden, Seed: scale.Seed, Codec: codec.String(),
		GradCodec: gradCodec.String(),
		MaxProcs:  procs, NumCPU: runtime.NumCPU(),
	}
	for e := 0; e < epochs; e++ {
		t0 := time.Now()
		stats, err := cl.TrainEpochAll(e)
		if err != nil {
			return nil, err
		}
		wall := time.Since(t0).Seconds()
		row := EpochRow{Epoch: e, WallSeconds: wall}
		var lossSum float64
		var lossN int
		for _, s := range stats {
			row.BytesSent += s.BytesSent
			row.RemoteFetches += int64(s.Gather.RemoteFetch)
			row.GradBytesSent += s.GradBytesSent
			if s.Batches > 0 {
				lossSum += s.Loss
				lossN++
			}
		}
		if saved := (stats[0].GradReduceTime - stats[0].GradWaitTime).Seconds(); saved > 0 {
			row.OverlapSecondsSaved = saved
		}
		if lossN > 0 {
			row.Loss = lossSum / float64(lossN)
		}
		row.SampleSeconds = stats[0].SampleTime.Seconds()
		row.GatherSeconds = stats[0].GatherTime.Seconds()
		row.ComputeSeconds = stats[0].ComputeTime.Seconds()
		row.AggregateSeconds = stats[0].AggregateTime.Seconds()
		row.TransformSeconds = stats[0].TransformTime.Seconds()
		row.BackwardSeconds = stats[0].BackwardTime.Seconds()
		res.Epochs = append(res.Epochs, row)
	}
	best := res.Epochs[0].WallSeconds
	var sum, saved float64
	var bytes, gradBytes int64
	for _, r := range res.Epochs {
		if r.WallSeconds < best {
			best = r.WallSeconds
		}
		sum += r.WallSeconds
		bytes += r.BytesSent
		gradBytes += r.GradBytesSent
		saved += r.OverlapSecondsSaved
	}
	res.BestWallSeconds = best
	res.MeanWallSeconds = sum / float64(len(res.Epochs))
	res.MeanBytesPerEpoch = float64(bytes) / float64(len(res.Epochs))
	res.GradBytesPerEpoch = float64(gradBytes) / float64(len(res.Epochs))
	res.OverlapSecondsSaved = saved / float64(len(res.Epochs))

	// Control: one epoch on a fresh same-seed cluster with the overlapped
	// reduce schedule disabled, so the report carries its own ablation
	// (compare NoOverlapWallSeconds against the epoch-0 wall above).
	ctrlCfg := clusterCfg
	ctrlCfg.Train.NoGradOverlap = true
	ctrl, err := pipeline.NewCluster(ds, ctrlCfg)
	if err != nil {
		return nil, err
	}
	defer ctrl.Close()
	t0 := time.Now()
	if _, err := ctrl.TrainEpochAll(0); err != nil {
		return nil, err
	}
	res.NoOverlapWallSeconds = time.Since(t0).Seconds()
	return res, nil
}

// WriteJSON writes the report for machine consumption (the perf
// trajectory file committed as BENCH_epoch.json).
func (r *EpochBenchResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// RenderEpochBench formats the per-epoch table.
func RenderEpochBench(r *EpochBenchResult) string {
	t := metrics.NewTable(
		fmt.Sprintf("End-to-end training epochs (%s, N=%d, K=%d, α=%.2f, batch=%d, codec=%s, grad=%s, GOMAXPROCS=%d/%d CPUs)",
			r.Dataset, r.Vertices, r.K, r.Alpha, r.Batch, r.Codec, r.GradCodec, r.MaxProcs, r.NumCPU),
		"epoch", "wall (s)", "sample (s)", "gather (s)", "compute (s)", "agg (s)", "xform (s)", "bwd (s)", "MB sent", "grad MB", "ovl saved (s)", "remote rows", "loss")
	for _, row := range r.Epochs {
		t.AddRow(row.Epoch,
			fmt.Sprintf("%.4f", row.WallSeconds), fmt.Sprintf("%.4f", row.SampleSeconds),
			fmt.Sprintf("%.4f", row.GatherSeconds), fmt.Sprintf("%.4f", row.ComputeSeconds),
			fmt.Sprintf("%.4f", row.AggregateSeconds), fmt.Sprintf("%.4f", row.TransformSeconds),
			fmt.Sprintf("%.4f", row.BackwardSeconds),
			fmt.Sprintf("%.2f", float64(row.BytesSent)/1e6),
			fmt.Sprintf("%.2f", float64(row.GradBytesSent)/1e6),
			fmt.Sprintf("%.4f", row.OverlapSecondsSaved),
			row.RemoteFetches,
			fmt.Sprintf("%.4f", row.Loss))
	}
	if r.NoOverlapWallSeconds > 0 {
		return t.String() + fmt.Sprintf("\ncontrol epoch with grad overlap disabled: %.4f s wall\n", r.NoOverlapWallSeconds)
	}
	return t.String()
}
