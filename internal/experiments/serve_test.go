package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"salientpp/internal/ckpt"
	"salientpp/internal/pipeline"
)

// TestServeBenchReport runs the serving benchmark at test scale and checks
// the report's structure plus the property the caching story depends on:
// on the same-seed workload, growing α must not lose cache hit rate and
// must not add remote fetches.
func TestServeBenchReport(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	res, err := ServeBench(scale, ServeConfig{
		Alphas: []float64{0, 0.08, 0.32}, Clients: 4, RequestsPerClient: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alphas) != 3 {
		t.Fatalf("got %d alpha rows", len(res.Alphas))
	}
	for _, row := range res.Alphas {
		if row.Requests != 4*25 {
			t.Fatalf("α=%v served %d requests, want 100", row.Alpha, row.Requests)
		}
		if row.ThroughputRPS <= 0 || row.WallSeconds <= 0 {
			t.Fatalf("non-positive throughput: %+v", row)
		}
		if row.P50 <= 0 || row.P95 < row.P50 || row.P99 < row.P95 {
			t.Fatalf("implausible latency quantiles: %+v", row)
		}
		if row.MeanBatch < 1 {
			t.Fatalf("mean batch < 1: %+v", row)
		}
	}
	if res.Alphas[0].CacheHitRate != 0 || res.Alphas[0].CacheHits != 0 {
		t.Fatalf("α=0 row reports cache hits: %+v", res.Alphas[0])
	}
	for i := 1; i < len(res.Alphas); i++ {
		prev, cur := res.Alphas[i-1], res.Alphas[i]
		if cur.CacheHitRate < prev.CacheHitRate {
			t.Fatalf("cache hit rate fell with α: %v@%v -> %v@%v",
				prev.CacheHitRate, prev.Alpha, cur.CacheHitRate, cur.Alpha)
		}
		if cur.RemoteFetches > prev.RemoteFetches {
			t.Fatalf("remote fetches grew with α: %d@%v -> %d@%v",
				prev.RemoteFetches, prev.Alpha, cur.RemoteFetches, cur.Alpha)
		}
	}
	if res.BestP95Seconds <= 0 || res.BestThroughputRPS <= 0 {
		t.Fatalf("summary malformed: %+v", res)
	}
	if RenderServeBench(res) == "" {
		t.Fatal("empty rendering")
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ServeBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Alphas) != len(res.Alphas) || back.Dataset != res.Dataset {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	// The regenerated file must satisfy the gate against itself.
	cs, err := CompareBenchFiles(path, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("self-comparison regressed: %+v", cs)
	}
}

// TestServeBenchOpenLoadCurve runs the open-loop overload profile at test
// scale: every dispatched arrival must be accounted for (served or
// explicitly shed — never silently dropped), the latency columns must be
// well-formed, and the curve-bearing report must gate against itself.
func TestServeBenchOpenLoadCurve(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	res, err := ServeBench(scale, ServeConfig{
		Alphas: []float64{0, 0.16}, Clients: 2, RequestsPerClient: 10,
		Load: "open", OfferedRPS: []float64{200, 600}, LoadSeconds: 0.4,
		ZipfS: 1.1, FlashFactor: 3, DeadlineMicros: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadCurve) != 2 {
		t.Fatalf("got %d load rows, want 2", len(res.LoadCurve))
	}
	if res.LoadZipf != 1.1 || res.DeadlineMicros != 20000 || res.FlashFactor != 3 {
		t.Fatalf("load parameters not recorded: %+v", res)
	}
	for _, row := range res.LoadCurve {
		if row.Offered == 0 {
			t.Fatalf("offered=%v dispatched nothing", row.OfferedRPS)
		}
		if row.Served+row.Shed != row.Offered {
			t.Fatalf("offered=%v: %d served + %d shed != %d offered (a request was silently dropped)",
				row.OfferedRPS, row.Served, row.Shed, row.Offered)
		}
		if row.Served > 0 && (row.P50 <= 0 || row.P99 < row.P50) {
			t.Fatalf("implausible open-loop latency quantiles: %+v", row)
		}
		if row.ShedRate < 0 || row.ShedRate > 1 || row.DegradedRate < 0 || row.DegradedRate > 1 {
			t.Fatalf("rates outside [0,1]: %+v", row)
		}
		if row.AchievedRPS <= 0 {
			t.Fatalf("non-positive achieved rate: %+v", row)
		}
	}
	if RenderServeBench(res) == "" {
		t.Fatal("empty rendering")
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	cs, err := CompareBenchFiles(path, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("self-comparison regressed: %+v", cs)
	}
}

// TestServeBenchDrift runs the rotating-hot-set drift profile at test
// scale and checks the property the online cache layer exists for: under
// a workload whose hot set moves, the drift-tracking policy's steady-state
// hit rate must beat the pinned static prefix at equal capacity — and the
// report carrying those columns must gate against itself.
func TestServeBenchDrift(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	res, err := ServeBench(scale, ServeConfig{
		Alphas: []float64{0.08}, Clients: 4, RequestsPerClient: 10,
		Drift: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DriftStatic) != 5 || len(res.DriftOnline) != 5 {
		t.Fatalf("got %d static / %d online drift windows, want 5/5",
			len(res.DriftStatic), len(res.DriftOnline))
	}
	var staticAccesses, onlineAccesses int64
	for i := range res.DriftStatic {
		st, on := res.DriftStatic[i], res.DriftOnline[i]
		if st.Window != i || on.Window != i {
			t.Fatalf("window numbering off: static %d online %d at index %d", st.Window, on.Window, i)
		}
		if st.CacheInstalls != 0 {
			t.Fatalf("static pass installed %d cache epochs in window %d", st.CacheInstalls, i)
		}
		staticAccesses += st.CacheHits + st.RemoteFetches
		onlineAccesses += on.CacheHits + on.RemoteFetches
	}
	if staticAccesses == 0 || onlineAccesses == 0 {
		t.Fatal("drift windows recorded no remote-classified accesses")
	}
	if res.DriftCacheInstalls <= 0 {
		t.Fatalf("online pass installed no cache epochs: %+v", res)
	}
	if res.DriftOnlineHitRate <= res.DriftStaticHitRate {
		t.Fatalf("online cache did not beat static under drift: online %.4f <= static %.4f",
			res.DriftOnlineHitRate, res.DriftStaticHitRate)
	}
	if got := res.DriftOnlineHitRate - res.DriftStaticHitRate; math.Abs(got-res.DriftHitRateGain) > 1e-12 {
		t.Fatalf("gain column inconsistent: %v != %v", res.DriftHitRateGain, got)
	}
	if RenderServeBench(res) == "" {
		t.Fatal("empty rendering")
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	cs, err := CompareBenchFiles(path, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("self-comparison regressed: %+v", cs)
	}
}

// TestServeBenchFromCheckpoint exercises the serve-from-snapshot path: a
// short checkpointed training run (the exact cluster configuration
// ServeBench uses), then ServeBench pointed at the checkpoint file instead
// of training fresh — the restored cluster's cache configuration becomes
// the single reported row.
func TestServeBenchFromCheckpoint(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	ds, err := serveBenchDataset(scale)
	if err != nil {
		t.Fatal(err)
	}
	dims := PaperDims(ds.Name)
	dir := t.TempDir()
	const alpha = 0.08
	ccfg := serveClusterConfig(scale, false, dims, 2, alpha)
	ccfg.Checkpoint = ckpt.Config{Dir: dir, EveryEpochs: 1}
	cl, err := pipeline.NewCluster(ds, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.TrainEpochAll(0); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	trainedW := flatRankWeights(cl)
	cl.Close()
	path, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}

	res, err := ServeBench(scale, ServeConfig{
		Clients: 4, RequestsPerClient: 25, Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alphas) != 1 {
		t.Fatalf("checkpoint serving produced %d rows, want 1", len(res.Alphas))
	}
	row := res.Alphas[0]
	if row.Requests != 4*25 || row.ThroughputRPS <= 0 {
		t.Fatalf("implausible serving row: %+v", row)
	}
	// The row's α must reflect the checkpoint's cache, not a sweep default.
	if diff := row.Alpha - alpha; diff < -0.01 || diff > 0.01 {
		t.Fatalf("row alpha %v does not reflect the checkpoint's cache (%v)", row.Alpha, alpha)
	}
	if row.CacheHits == 0 {
		t.Fatal("checkpointed cache served no hits")
	}

	// And the served weights are the trained snapshot: rebuilding the
	// cluster from the same checkpoint yields the trained weights bitwise.
	state, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := serveClusterConfig(scale, false, dims, 2, alpha)
	rcfg.Resume = state
	cl2, err := pipeline.NewCluster(ds, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	restoredW := flatRankWeights(cl2)
	for i := range trainedW {
		if trainedW[i] != restoredW[i] {
			t.Fatalf("restored weights diverge at %d", i)
		}
	}
}

func flatRankWeights(cl *pipeline.Cluster) []float32 {
	var out []float32
	for _, p := range cl.Ranks[0].Model().Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// TestServeBenchServesForeignCheckpoint pins the shipped CLI workflow:
// a checkpoint written by the gnntrain path (products-sim, gnntrain's own
// fanouts/hidden/seed/batch — none of which match the serve bench's
// defaults) must be servable by ServeBench, which reconstructs the
// dataset, model dimensions, and run parameters from the file.
func TestServeBenchServesForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	acfg := DefaultAccuracyConfig()
	acfg.Datasets = []string{"products-sim"}
	acfg.N = 2000
	acfg.Epochs = 1
	acfg.Checkpoint = ckpt.Config{Dir: dir}
	if _, err := Accuracy(acfg); err != nil {
		t.Fatal(err)
	}
	path, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ServeBench(SmallScale(), ServeConfig{
		Clients: 2, RequestsPerClient: 10, Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "products-sim" {
		t.Fatalf("served dataset %q, checkpoint was trained on products-sim", res.Dataset)
	}
	if len(res.Fanouts) != len(acfg.Fanouts) || res.Hidden != acfg.Hidden || res.Seed != acfg.Seed {
		t.Fatalf("reconstruction drifted: fanouts %v hidden %d seed %d, want %v/%d/%d",
			res.Fanouts, res.Hidden, res.Seed, acfg.Fanouts, acfg.Hidden, acfg.Seed)
	}
	if len(res.Alphas) != 1 || res.Alphas[0].Requests != 2*10 {
		t.Fatalf("implausible serving result: %+v", res.Alphas)
	}
}
