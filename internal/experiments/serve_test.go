package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestServeBenchReport runs the serving benchmark at test scale and checks
// the report's structure plus the property the caching story depends on:
// on the same-seed workload, growing α must not lose cache hit rate and
// must not add remote fetches.
func TestServeBenchReport(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 4000
	res, err := ServeBench(scale, ServeConfig{
		Alphas: []float64{0, 0.08, 0.32}, Clients: 4, RequestsPerClient: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alphas) != 3 {
		t.Fatalf("got %d alpha rows", len(res.Alphas))
	}
	for _, row := range res.Alphas {
		if row.Requests != 4*25 {
			t.Fatalf("α=%v served %d requests, want 100", row.Alpha, row.Requests)
		}
		if row.ThroughputRPS <= 0 || row.WallSeconds <= 0 {
			t.Fatalf("non-positive throughput: %+v", row)
		}
		if row.P50 <= 0 || row.P95 < row.P50 || row.P99 < row.P95 {
			t.Fatalf("implausible latency quantiles: %+v", row)
		}
		if row.MeanBatch < 1 {
			t.Fatalf("mean batch < 1: %+v", row)
		}
	}
	if res.Alphas[0].CacheHitRate != 0 || res.Alphas[0].CacheHits != 0 {
		t.Fatalf("α=0 row reports cache hits: %+v", res.Alphas[0])
	}
	for i := 1; i < len(res.Alphas); i++ {
		prev, cur := res.Alphas[i-1], res.Alphas[i]
		if cur.CacheHitRate < prev.CacheHitRate {
			t.Fatalf("cache hit rate fell with α: %v@%v -> %v@%v",
				prev.CacheHitRate, prev.Alpha, cur.CacheHitRate, cur.Alpha)
		}
		if cur.RemoteFetches > prev.RemoteFetches {
			t.Fatalf("remote fetches grew with α: %d@%v -> %d@%v",
				prev.RemoteFetches, prev.Alpha, cur.RemoteFetches, cur.Alpha)
		}
	}
	if res.BestP95Seconds <= 0 || res.BestThroughputRPS <= 0 {
		t.Fatalf("summary malformed: %+v", res)
	}
	if RenderServeBench(res) == "" {
		t.Fatal("empty rendering")
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ServeBenchResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Alphas) != len(res.Alphas) || back.Dataset != res.Dataset {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	// The regenerated file must satisfy the gate against itself.
	cs, err := CompareBenchFiles(path, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("self-comparison regressed: %+v", cs)
	}
}
