package experiments

import (
	"fmt"
	"time"

	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/metrics"
	"salientpp/internal/pipeline"
)

// AccuracyConfig controls the real end-to-end training runs (§5.3). The
// paper trains 30 epochs on 8 machines at lr 0.001 and evaluates with
// sampled inference; reduced scale trades epochs and hidden width for CPU
// time while keeping the full distributed data path (partitioned features,
// VIP cache, pipeline, gradient all-reduce).
type AccuracyConfig struct {
	Datasets   []string
	N          int // vertices per dataset
	K          int
	Alpha      float64
	Hidden     int
	Fanouts    []int
	EvalFanout []int
	Batch      int
	Epochs     int
	LR         float64
	Seed       uint64
	// Codec is the feature-gather wire codec ("", "fp32", "fp16", "int8").
	// Lossy codecs shrink communication without changing which rows move;
	// the codec is part of the checkpoint identity, so resuming requires
	// the same setting.
	Codec string
	// Precision is the cluster's configured serving/freeze compute
	// precision ("", "fp32", "fp16", "int8"). Training compute is always
	// fp32; like Codec it is part of the checkpoint identity.
	Precision string
	// GradCodec is the gradient all-reduce wire codec ("", "fp32", "fp16",
	// "int8"). Lossy codecs quantize per row with error-feedback residuals;
	// the residuals (and the codec name) are part of the checkpoint
	// identity, so resuming requires the same setting.
	GradCodec string
	// NoGradOverlap disables the overlapped per-layer gradient reduce
	// (bitwise-neutral; exists for A/B measurement).
	NoGradOverlap bool
	// Parallelism bounds sampler workers and setup-time analysis threads
	// (0 keeps the default of 2).
	Parallelism int

	// Checkpoint enables coordinated fault-tolerance checkpoints for the
	// training runs (internal/ckpt): Dir, EveryRounds/EveryEpochs
	// triggers, retain-K rotation. If a Dir is set with no trigger, epoch
	// boundaries are checkpointed.
	Checkpoint ckpt.Config
	// Resume restores the newest valid checkpoint in Checkpoint.Dir and
	// continues training from its epoch/round cursor — bitwise identically
	// to a run that was never interrupted. Requires exactly one dataset
	// (a checkpoint belongs to one training run).
	Resume bool
	// Elastic runs the training loop under pipeline.TrainElastic: a rank
	// failure mid-run becomes a live membership change (probe, survivor
	// consensus, shard re-layout, continue on K-1) instead of an error.
	// Requires Checkpoint.Dir.
	Elastic bool
	// StallTimeout bounds every training collective when Elastic is set
	// (0 uses the pipeline default).
	StallTimeout time.Duration
}

// DefaultAccuracyConfig is sized for a few minutes on a small CPU box.
func DefaultAccuracyConfig() AccuracyConfig {
	return AccuracyConfig{
		Datasets:   []string{"products-sim", "papers-sim", "mag240-sim"},
		N:          8000,
		K:          2,
		Alpha:      0.32,
		Hidden:     32,
		Fanouts:    []int{10, 5},
		EvalFanout: []int{15, 15},
		Batch:      64,
		Epochs:     5,
		LR:         0.005,
		Seed:       3,
	}
}

// AccuracyRow is one dataset's training outcome.
type AccuracyRow struct {
	Dataset        string
	FirstLoss      float64
	FinalLoss      float64
	ValAcc         float64
	TestAcc        float64
	RemotePerEpoch int64
	// Elastic-recovery counters; zero on healthy or non-elastic runs.
	StallsDetected int
	Regroups       int
	RoundsReplayed int
	// FinalK is the member count the run finished with (0 when the run
	// was not elastic).
	FinalK int
}

// Accuracy trains each dataset for real on the full distributed stack and
// reports losses and sampled-inference accuracies.
// DatasetByName regenerates one of the reduced-scale training analogs by
// name. Accuracy, the serve bench, and checkpoint restore all go through
// here so "the same dataset" means bit-identical features for all three
// (regeneration is deterministic in (name, n, seed); checkpoints store
// those, not feature bytes).
func DatasetByName(name string, n int, seed uint64) (*dataset.Dataset, error) {
	switch name {
	case "products-sim":
		return dataset.ProductsSim(n, true, seed)
	case "papers-sim":
		// The sparse-label analogs need enough labeled vertices to train
		// at reduced scale: regenerate with products-like splits but
		// papers-like graph statistics.
		return dataset.Generate(dataset.SyntheticConfig{
			Name: "papers-sim", NumVertices: n, AvgDegree: 28.8,
			FeatureDim: 128, NumClasses: 32,
			TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
			FeatureNoise: 0.6, Materialize: true, Seed: seed,
		})
	case "mag240-sim":
		return dataset.Generate(dataset.SyntheticConfig{
			Name: "mag240-sim", NumVertices: n, AvgDegree: 21.5,
			FeatureDim: 128, NumClasses: 32, // feature dim reduced from 768 for CPU-time budget
			TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
			FeatureNoise: 0.6, Materialize: true, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

func Accuracy(cfg AccuracyConfig) ([]AccuracyRow, error) {
	if cfg.Checkpoint.Dir != "" && cfg.Checkpoint.EveryRounds == 0 && cfg.Checkpoint.EveryEpochs == 0 {
		cfg.Checkpoint.EveryEpochs = 1
	}
	if cfg.Checkpoint.Dir != "" && len(cfg.Datasets) != 1 {
		// Checkpoint files are named by (epoch, round) only, so two
		// datasets sharing a directory would silently clobber and rotate
		// each other's files.
		return nil, fmt.Errorf("experiments: checkpointing requires exactly one dataset, got %d (one checkpoint directory per run)", len(cfg.Datasets))
	}
	if cfg.Resume && cfg.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("experiments: -resume needs a checkpoint directory")
	}
	if cfg.Elastic && cfg.Checkpoint.Dir == "" {
		return nil, fmt.Errorf("experiments: -elastic needs a checkpoint directory (the survivors resume from a checkpoint they all hold)")
	}
	var rows []AccuracyRow
	for _, name := range cfg.Datasets {
		ds, err := DatasetByName(name, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		workers := cfg.Parallelism
		if workers <= 0 {
			workers = 2
		}
		ccfg := pipeline.ClusterConfig{
			K: cfg.K, Alpha: cfg.Alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: cfg.Hidden, Layers: len(cfg.Fanouts), Dropout: 0,
			Codec: cfg.Codec, Precision: cfg.Precision,
			Train: pipeline.Config{
				Fanouts: cfg.Fanouts, BatchSize: cfg.Batch,
				PipelineDepth: 10, SamplerWorkers: workers, Parallelism: workers,
				LR: cfg.LR, Seed: cfg.Seed,
				GradCodec: cfg.GradCodec, NoGradOverlap: cfg.NoGradOverlap,
			},
			ModelSeed:  cfg.Seed + 1,
			Checkpoint: cfg.Checkpoint,
		}
		if cfg.Resume {
			state, path, err := ckpt.LoadLatest(cfg.Checkpoint.Dir)
			if err != nil {
				return nil, fmt.Errorf("experiments: loading latest checkpoint: %w", err)
			}
			fmt.Printf("resuming %s from %s (epoch %d, round %d)\n", name, path, state.Step.Epoch, state.Step.Round)
			ccfg.Resume = state
		}
		if ccfg.Resume != nil && ccfg.Resume.Step.Epoch >= cfg.Epochs {
			return nil, fmt.Errorf("experiments: checkpoint already covers epoch %d of the requested %d; raise -epochs to continue the run",
				ccfg.Resume.Step.Epoch, cfg.Epochs)
		}
		row := AccuracyRow{Dataset: name}
		var cl *pipeline.Cluster
		if cfg.Elastic {
			ccfg.StallTimeout = cfg.StallTimeout
			var rep *pipeline.ElasticReport
			cl, rep, err = pipeline.TrainElastic(ds, ccfg, cfg.Epochs, pipeline.ElasticConfig{})
			if err != nil {
				return nil, err
			}
			for e := 0; e < cfg.Epochs; e++ {
				if stats := rep.Epochs[e]; len(stats) > 0 {
					foldEpoch(&row, e, stats)
				}
			}
			row.StallsDetected = rep.StallsDetected
			row.Regroups = rep.Regroups
			row.RoundsReplayed = rep.RoundsReplayed
			row.FinalK = rep.FinalK
			if rep.Regroups > 0 {
				fmt.Printf("elastic: %s survived %d membership change(s), finished on %d ranks, replayed %d rounds\n",
					name, rep.Regroups, rep.FinalK, rep.RoundsReplayed)
			}
		} else {
			cl, err = pipeline.NewCluster(ds, ccfg)
			if err != nil {
				return nil, err
			}
			for e := cl.FirstEpoch(); e < cfg.Epochs; e++ {
				stats, err := cl.TrainEpochAll(e)
				if err != nil {
					cl.Close()
					return nil, err
				}
				foldEpoch(&row, e, stats)
			}
		}
		val, err := cl.EvaluateAll(dataset.SplitVal, cfg.EvalFanout, cfg.Batch, cfg.Epochs)
		if err != nil {
			cl.Close()
			return nil, err
		}
		test, err := cl.EvaluateAll(dataset.SplitTest, cfg.EvalFanout, cfg.Batch, cfg.Epochs)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Close()
		row.ValAcc = val
		row.TestAcc = test
		rows = append(rows, row)
	}
	return rows, nil
}

// foldEpoch folds one epoch's per-rank stats into the row: rank-averaged
// loss (ranks with no batches sit out), first/final loss bookkeeping, and
// the summed remote-fetch count.
func foldEpoch(row *AccuracyRow, e int, stats []pipeline.EpochStats) {
	var loss float64
	var n int
	var remote int64
	for _, s := range stats {
		if s.Batches > 0 {
			loss += s.Loss
			n++
		}
		remote += int64(s.Gather.RemoteFetch)
	}
	if n > 0 {
		loss /= float64(n)
	}
	if e == 0 {
		row.FirstLoss = loss
	}
	row.FinalLoss = loss
	row.RemotePerEpoch = remote
}

// RenderAccuracy formats the rows.
func RenderAccuracy(rows []AccuracyRow) string {
	t := metrics.NewTable("§5.3 accuracy: real distributed training on synthetic analogs",
		"dataset", "loss (epoch 1)", "loss (final)", "val acc", "test acc", "remote/epoch")
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprintf("%.3f", r.FirstLoss), fmt.Sprintf("%.3f", r.FinalLoss),
			fmt.Sprintf("%.3f", r.ValAcc), fmt.Sprintf("%.3f", r.TestAcc), r.RemotePerEpoch)
	}
	return t.String()
}
