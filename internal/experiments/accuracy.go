package experiments

import (
	"fmt"

	"salientpp/internal/dataset"
	"salientpp/internal/metrics"
	"salientpp/internal/pipeline"
)

// AccuracyConfig controls the real end-to-end training runs (§5.3). The
// paper trains 30 epochs on 8 machines at lr 0.001 and evaluates with
// sampled inference; reduced scale trades epochs and hidden width for CPU
// time while keeping the full distributed data path (partitioned features,
// VIP cache, pipeline, gradient all-reduce).
type AccuracyConfig struct {
	Datasets   []string
	N          int // vertices per dataset
	K          int
	Alpha      float64
	Hidden     int
	Fanouts    []int
	EvalFanout []int
	Batch      int
	Epochs     int
	LR         float64
	Seed       uint64
}

// DefaultAccuracyConfig is sized for a few minutes on a small CPU box.
func DefaultAccuracyConfig() AccuracyConfig {
	return AccuracyConfig{
		Datasets:   []string{"products-sim", "papers-sim", "mag240-sim"},
		N:          8000,
		K:          2,
		Alpha:      0.32,
		Hidden:     32,
		Fanouts:    []int{10, 5},
		EvalFanout: []int{15, 15},
		Batch:      64,
		Epochs:     5,
		LR:         0.005,
		Seed:       3,
	}
}

// AccuracyRow is one dataset's training outcome.
type AccuracyRow struct {
	Dataset        string
	FirstLoss      float64
	FinalLoss      float64
	ValAcc         float64
	TestAcc        float64
	RemotePerEpoch int64
}

// Accuracy trains each dataset for real on the full distributed stack and
// reports losses and sampled-inference accuracies.
func Accuracy(cfg AccuracyConfig) ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, name := range cfg.Datasets {
		var ds *dataset.Dataset
		var err error
		switch name {
		case "products-sim":
			ds, err = dataset.ProductsSim(cfg.N, true, cfg.Seed)
		case "papers-sim":
			// The sparse-label analogs need enough labeled vertices to
			// train at reduced scale: regenerate with products-like splits
			// but papers-like graph statistics.
			ds, err = dataset.Generate(dataset.SyntheticConfig{
				Name: "papers-sim", NumVertices: cfg.N, AvgDegree: 28.8,
				FeatureDim: 128, NumClasses: 32,
				TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
				FeatureNoise: 0.6, Materialize: true, Seed: cfg.Seed,
			})
		case "mag240-sim":
			ds, err = dataset.Generate(dataset.SyntheticConfig{
				Name: "mag240-sim", NumVertices: cfg.N, AvgDegree: 21.5,
				FeatureDim: 128, NumClasses: 32, // feature dim reduced from 768 for CPU-time budget
				TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
				FeatureNoise: 0.6, Materialize: true, Seed: cfg.Seed,
			})
		default:
			return nil, fmt.Errorf("experiments: unknown dataset %q", name)
		}
		if err != nil {
			return nil, err
		}
		cl, err := pipeline.NewCluster(ds, pipeline.ClusterConfig{
			K: cfg.K, Alpha: cfg.Alpha, GPUFraction: 1, VIPReorder: true,
			Hidden: cfg.Hidden, Layers: len(cfg.Fanouts), Dropout: 0,
			Train: pipeline.Config{
				Fanouts: cfg.Fanouts, BatchSize: cfg.Batch,
				PipelineDepth: 10, SamplerWorkers: 2, LR: cfg.LR, Seed: cfg.Seed,
			},
			ModelSeed: cfg.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		row := AccuracyRow{Dataset: name}
		for e := 0; e < cfg.Epochs; e++ {
			stats, err := cl.TrainEpochAll(e)
			if err != nil {
				cl.Close()
				return nil, err
			}
			var loss float64
			var n int
			var remote int64
			for _, s := range stats {
				if s.Batches > 0 {
					loss += s.Loss
					n++
				}
				remote += int64(s.Gather.RemoteFetch)
			}
			loss /= float64(n)
			if e == 0 {
				row.FirstLoss = loss
			}
			row.FinalLoss = loss
			row.RemotePerEpoch = remote
		}
		val, err := cl.EvaluateAll(dataset.SplitVal, cfg.EvalFanout, cfg.Batch, cfg.Epochs)
		if err != nil {
			cl.Close()
			return nil, err
		}
		test, err := cl.EvaluateAll(dataset.SplitTest, cfg.EvalFanout, cfg.Batch, cfg.Epochs)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Close()
		row.ValAcc = val
		row.TestAcc = test
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAccuracy formats the rows.
func RenderAccuracy(rows []AccuracyRow) string {
	t := metrics.NewTable("§5.3 accuracy: real distributed training on synthetic analogs",
		"dataset", "loss (epoch 1)", "loss (final)", "val acc", "test acc", "remote/epoch")
	for _, r := range rows {
		t.AddRow(r.Dataset, fmt.Sprintf("%.3f", r.FirstLoss), fmt.Sprintf("%.3f", r.FinalLoss),
			fmt.Sprintf("%.3f", r.ValAcc), fmt.Sprintf("%.3f", r.TestAcc), r.RemotePerEpoch)
	}
	return t.String()
}
