package experiments

import (
	"math"
	"testing"
)

// TestCodecAccuracyDelta pins the quality cost of the lossy wire codecs on
// a real seeded training run: switching the gather transport from fp32 to
// fp16 must leave the final sampled-inference test accuracy within 0.5
// points, while fetching exactly the same remote rows. (int8 is reported
// too but held to a looser 2-point bound — per-row 8-bit quantization is
// opt-in precisely because its safety depends on the feature distribution;
// see the README's communication-efficiency table.)
func TestCodecAccuracyDelta(t *testing.T) {
	run := func(codec string) AccuracyRow {
		cfg := DefaultAccuracyConfig()
		cfg.Datasets = []string{"products-sim"}
		cfg.N = 3000
		cfg.Epochs = 2
		cfg.Codec = codec
		rows, err := Accuracy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0]
	}
	fp32 := run("fp32")
	fp16 := run("fp16")
	i8 := run("int8")

	if fp16.RemotePerEpoch != fp32.RemotePerEpoch || i8.RemotePerEpoch != fp32.RemotePerEpoch {
		t.Fatalf("remote fetches drifted across codecs: fp32 %d, fp16 %d, int8 %d",
			fp32.RemotePerEpoch, fp16.RemotePerEpoch, i8.RemotePerEpoch)
	}
	if d := math.Abs(fp16.TestAcc - fp32.TestAcc); d > 0.005 {
		t.Errorf("fp16 test accuracy %.4f vs fp32 %.4f: delta %.4f exceeds 0.5 points",
			fp16.TestAcc, fp32.TestAcc, d)
	}
	if d := math.Abs(i8.TestAcc - fp32.TestAcc); d > 0.02 {
		t.Errorf("int8 test accuracy %.4f vs fp32 %.4f: delta %.4f exceeds 2 points",
			i8.TestAcc, fp32.TestAcc, d)
	}
	// Training must have actually learned something under every codec, so
	// the deltas above are not trivially comparing noise floors.
	for _, r := range []AccuracyRow{fp32, fp16, i8} {
		if r.FinalLoss >= r.FirstLoss {
			t.Errorf("%+v: loss did not decrease", r)
		}
	}
}
