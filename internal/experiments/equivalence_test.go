package experiments

import (
	"math"
	"testing"
)

// TestNumericalEquivalenceWithPreArenaBaseline pins a short same-seed
// training run to the values the pre-refactor code produced (recorded at
// the PR that introduced the pooled tensor arena, zero-copy gather, and
// blocked kernels — commit "PR 1" tree, products-sim N=3000, 2 epochs,
// DefaultAccuracyConfig seeds). The refactor is designed to be
// numerically transparent: pooled buffers are fully overwritten, the
// blocked kernels keep a fixed per-element accumulation order, and the
// sorted gather changes only wire layout. The loose tolerances absorb
// benign float reassociation on other architectures; a real numerical
// regression (stale pooled data, mis-scattered features, kernel bug)
// blows well past them, and the remote-fetch count must match exactly —
// the gather protocol rewrite may not change which rows go over the wire.
func TestNumericalEquivalenceWithPreArenaBaseline(t *testing.T) {
	const (
		wantFirstLoss = 2.802373
		wantFinalLoss = 1.120540
		wantValAcc    = 0.854167
		wantTestAcc   = 0.891722
		wantRemote    = 264
	)
	cfg := DefaultAccuracyConfig()
	cfg.Datasets = []string{"products-sim"}
	cfg.N = 3000
	cfg.Epochs = 2
	rows, err := Accuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if math.Abs(r.FirstLoss-wantFirstLoss) > 0.02 {
		t.Errorf("epoch-1 loss %.6f, pre-refactor baseline %.6f", r.FirstLoss, wantFirstLoss)
	}
	if math.Abs(r.FinalLoss-wantFinalLoss) > 0.05 {
		t.Errorf("final loss %.6f, pre-refactor baseline %.6f", r.FinalLoss, wantFinalLoss)
	}
	if math.Abs(r.ValAcc-wantValAcc) > 0.03 {
		t.Errorf("val accuracy %.6f, pre-refactor baseline %.6f", r.ValAcc, wantValAcc)
	}
	if math.Abs(r.TestAcc-wantTestAcc) > 0.03 {
		t.Errorf("test accuracy %.6f, pre-refactor baseline %.6f", r.TestAcc, wantTestAcc)
	}
	if r.RemotePerEpoch != wantRemote {
		t.Errorf("remote fetches per epoch %d, baseline %d (gather protocol must not change which rows are fetched)",
			r.RemotePerEpoch, wantRemote)
	}
}
