package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/metrics"
	"salientpp/internal/pipeline"
	"salientpp/internal/rng"
	"salientpp/internal/serve"
	"salientpp/internal/tensor"
)

// ServeAlphaRow is one measured serving run at a fixed replication factor
// α: a closed-loop load generator drives the coalescing server with a
// same-seed workload, so rows differ only in the cache.
type ServeAlphaRow struct {
	Alpha         float64 `json:"alpha"`
	WallSeconds   float64 `json:"wall_seconds"`
	Requests      int64   `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50  float64 `json:"p50_latency_seconds"`
	P95  float64 `json:"p95_latency_seconds"`
	P99  float64 `json:"p99_latency_seconds"`
	Mean float64 `json:"mean_latency_seconds"`

	Rounds    int64   `json:"rounds"`
	MeanBatch float64 `json:"mean_batch"`

	LocalRows     int64   `json:"local_rows"`
	CacheHits     int64   `json:"cache_hits"`
	RemoteFetches int64   `json:"remote_fetches"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	BytesSent     int64   `json:"bytes_sent"`
	// ComputeSeconds is cumulative forward-pass time across rounds — the
	// column the reduced-precision serving backend is meant to shrink.
	ComputeSeconds float64 `json:"compute_seconds"`
	// FP32ComputeSeconds is the same-workload fp32 control, measured only
	// when the row itself served a reduced precision: a second deployment
	// over the same cluster replays the identical client streams at fp32,
	// so ComputeSeconds/FP32ComputeSeconds is the precision's compute cut
	// with everything else held fixed.
	FP32ComputeSeconds float64 `json:"fp32_compute_seconds,omitempty"`
}

// ServeBenchResult is the machine-readable online-inference report
// (BENCH_serve.json): sustained closed-loop throughput and latency
// percentiles of the coalescing server across the cache-α sweep, on the
// real distributed data path (sampler → partitioned cache-aware gather →
// frozen-model forward). The workload is identical across rows — each
// client replays the same seeded vertex stream — so remote-fetch counts
// and hit rates are directly attributable to the cache.
type ServeBenchResult struct {
	Dataset           string `json:"dataset"`
	Vertices          int    `json:"vertices"`
	Edges             int64  `json:"edges"`
	K                 int    `json:"k"`
	Fanouts           []int  `json:"fanouts"`
	Hidden            int    `json:"hidden"`
	MaxBatch          int    `json:"max_batch"`
	MaxWaitMicros     int64  `json:"max_wait_micros"`
	Clients           int    `json:"clients"`
	RequestsPerClient int    `json:"requests_per_client"`
	Seed              uint64 `json:"seed"`
	// Codec is the serving comm group's wire codec; each row's BytesSent
	// counts encoded wire bytes, so fp16/int8 shrink it at identical
	// remote-fetch counts.
	Codec string `json:"codec"`
	// Precision is the serving compute precision; reduced values cut the
	// rows' compute_seconds while argmax accuracy holds (gated by
	// TestInt8ForwardAccuracyDelta).
	Precision string          `json:"precision"`
	MaxProcs  int             `json:"gomaxprocs"`
	NumCPU    int             `json:"numcpu"`
	Alphas    []ServeAlphaRow `json:"alphas"`

	// BestP95Seconds and BestThroughputRPS summarize the sweep (the gate
	// in cmd/salientbench -compare also checks every row individually).
	BestP95Seconds    float64 `json:"best_p95_latency_seconds"`
	BestThroughputRPS float64 `json:"best_throughput_rps"`

	// LoadCurve is the open-loop overload profile (present when the bench
	// ran with Load="open"): seeded Poisson arrivals over a zipf(LoadZipf)
	// vertex popularity at each offered rate, served under a
	// DeadlineMicros admission budget. p99 versus offered load plus the
	// shed and degraded rates show where the server tips from batching
	// into shedding — and that it sheds explicitly instead of queueing
	// without bound. Old baselines predate these columns; the -compare
	// gate skips them in that case.
	LoadZipf       float64        `json:"load_zipf,omitempty"`
	DeadlineMicros int64          `json:"deadline_micros,omitempty"`
	FlashFactor    float64        `json:"flash_factor,omitempty"`
	LoadCurve      []ServeLoadRow `json:"load_curve,omitempty"`

	// Drift profile (present when the bench ran with -drift): the same
	// seeded rotating-hot-set workload served twice over one cluster —
	// once with the pinned static cache, once with the online
	// drift-tracking policy at equal capacity — with per-window hit rates.
	// The steady-state rates skip window 0 (the online scorer starts cold
	// on the static prefix); the gain is online minus static, the number
	// the adaptive cache layer exists to make positive. Old baselines
	// predate these columns; the -compare gate skips them in that case.
	DriftWindows           int             `json:"drift_windows,omitempty"`
	DriftRequestsPerWindow int             `json:"drift_requests_per_window,omitempty"`
	DriftHotFrac           float64         `json:"drift_hot_frac,omitempty"`
	DriftAlpha             float64         `json:"drift_alpha,omitempty"`
	DriftStatic            []ServeDriftRow `json:"drift_static,omitempty"`
	DriftOnline            []ServeDriftRow `json:"drift_online,omitempty"`
	DriftStaticHitRate     float64         `json:"drift_static_hit_rate,omitempty"`
	DriftOnlineHitRate     float64         `json:"drift_online_hit_rate,omitempty"`
	DriftHitRateGain       float64         `json:"drift_hit_rate_gain,omitempty"`
	DriftCacheInstalls     int64           `json:"drift_cache_installs,omitempty"`
}

// ServeDriftRow is one hot-set window of a drift run: the window's cache
// hit rate over remote accesses, its raw hit/miss counts, and the cache
// epochs installed during it (always zero for the static run).
type ServeDriftRow struct {
	Window        int     `json:"window"`
	HitRate       float64 `json:"hit_rate"`
	CacheHits     int64   `json:"cache_hits"`
	RemoteFetches int64   `json:"remote_fetches"`
	CacheInstalls int64   `json:"cache_installs"`
}

// ServeLoadRow is one offered-load point of the open-loop curve. Offered
// counts dispatched arrivals; Served + Shed accounts for all of them
// (shedding is explicit, never a silent drop).
type ServeLoadRow struct {
	OfferedRPS   float64 `json:"offered_rps"`
	AchievedRPS  float64 `json:"achieved_rps"`
	Offered      int64   `json:"offered_requests"`
	Served       int64   `json:"served"`
	Shed         int64   `json:"shed"`
	ShedRate     float64 `json:"shed_rate"`
	Degraded     int64   `json:"degraded"`
	DegradedRate float64 `json:"degraded_rate"`

	P50  float64 `json:"p50_latency_seconds"`
	P95  float64 `json:"p95_latency_seconds"`
	P99  float64 `json:"p99_latency_seconds"`
	Mean float64 `json:"mean_latency_seconds"`

	MeanBatch float64 `json:"mean_batch"`
}

// ServeConfig sizes the serving benchmark.
type ServeConfig struct {
	// Alphas is the replication-factor sweep; nil uses {0, 0.08, 0.16, 0.32}.
	Alphas []float64
	// Clients is the closed-loop client count (default 8).
	Clients int
	// RequestsPerClient fixes the per-client request count (default 150),
	// making the workload identical across α rows.
	RequestsPerClient int
	// MaxBatch and MaxWaitMicros set the coalescing admission policy
	// (defaults 32 and 1000).
	MaxBatch      int
	MaxWaitMicros int64
	// UseTCP serves over loopback TCP instead of in-process channels.
	UseTCP bool
	// Codec selects the *serving* comm group's wire codec ("fp32", "fp16",
	// "int8"); empty inherits the cluster's codec (Scale.Codec, or the
	// checkpoint's recorded codec when serving from one). The training
	// cluster's codec is fixed — a checkpoint restore validates it — but
	// the serving group is independent, so e.g. an fp32 checkpoint can
	// serve int8.
	Codec string
	// Precision selects the serving compute precision ("fp32", "fp16",
	// "int8"); empty inherits the cluster's configured precision
	// (Scale.Precision, or the checkpoint's recorded precision when serving
	// from one). Like Codec, it is a serving-side choice: an fp32-trained
	// cluster may serve int8.
	Precision string
	// Load selects the workload shape. "closed" (the default) is the
	// fixed per-client replay of the α sweep. "open" additionally drives
	// an open-loop curve after the sweep: seeded Poisson arrivals at each
	// OfferedRPS rate — arrivals do not wait for replies, so overload
	// actually builds queues — over a zipf(ZipfS) vertex popularity,
	// served with a Deadline so the server sheds instead of queueing
	// unboundedly.
	Load string
	// ZipfS is the open-loop popularity exponent (default 1.1).
	ZipfS float64
	// OfferedRPS is the open-loop offered-rate sweep (default
	// {250, 500, 1000, 2000}).
	OfferedRPS []float64
	// LoadSeconds is the duration of each offered-rate point (default 2).
	LoadSeconds float64
	// FlashFactor, when > 1, turns the middle third of each open-loop
	// point into a flash crowd: the offered rate is multiplied by this
	// factor, then drops back — the recover-after-burst shape real
	// serving sees.
	FlashFactor float64
	// DeadlineMicros is the per-request admission budget of the open-loop
	// runs (default 25000 = 25ms).
	DeadlineMicros int64
	// Drift adds the rotating-hot-set drift profile after the sweep: each
	// window draws most requests from a fresh hot set (a rotating slice of
	// a seeded vertex permutation), and the workload is replayed twice —
	// static cache, then online policy — so the per-window hit rates
	// isolate what drift tracking buys.
	Drift bool
	// DriftWindows is the number of hot-set rotations (default 5).
	DriftWindows int
	// DriftRequestsPerWindow is the total requests per window, spread
	// across Clients (default 960 — enough repeats per hot seed that the
	// window's heat clears the online scorer's frequency prior).
	DriftRequestsPerWindow int
	// DriftHotFrac sizes each window's hot set as a fraction of the vertex
	// space (default 0.0001, clamped to at least 4 seeds). The hot set is
	// deliberately tiny: its sampled 2-hop footprint must fit within the
	// cache capacity for adaptation to pay, because the wider 3-hop
	// frontier is uncacheable at any policy.
	DriftHotFrac float64
	// DriftHotBias is the probability a request targets the window's hot
	// set rather than a uniform vertex (default 1 — pure hot traffic).
	DriftHotBias float64
	// DriftRefreshRounds is the online policy's proposal cadence during
	// the drift run (default 8 — several installs per window).
	DriftRefreshRounds int
	// DriftAlpha is the replication factor of the drift cluster (default
	// 0.08 — enough capacity to matter, little enough that placement
	// does). A checkpointed run uses the checkpoint's own cache instead.
	DriftAlpha float64
	// Checkpoint, when set, serves a frozen snapshot restored from this
	// checkpoint file (the format cmd/gnntrain -checkpoint-dir writes):
	// the cluster — dataset, partition layout, cache contents, trained
	// weights, model dimensions — is rebuilt entirely from the file
	// instead of being trained fresh, and the α sweep collapses to the
	// checkpoint's own cache configuration.
	Checkpoint string
}

func (c ServeConfig) withDefaults() ServeConfig {
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{0, 0.08, 0.16, 0.32}
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 150
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWaitMicros <= 0 {
		c.MaxWaitMicros = 1000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if len(c.OfferedRPS) == 0 {
		c.OfferedRPS = []float64{250, 500, 1000, 2000}
	}
	if c.LoadSeconds <= 0 {
		c.LoadSeconds = 2
	}
	if c.DeadlineMicros <= 0 {
		c.DeadlineMicros = 25000
	}
	if c.DriftWindows <= 0 {
		c.DriftWindows = 5
	}
	if c.DriftRequestsPerWindow <= 0 {
		c.DriftRequestsPerWindow = 960
	}
	if c.DriftHotFrac <= 0 {
		c.DriftHotFrac = 0.0001
	}
	if c.DriftHotBias <= 0 {
		c.DriftHotBias = 1.0
	}
	if c.DriftRefreshRounds <= 0 {
		c.DriftRefreshRounds = 8
	}
	if c.DriftAlpha <= 0 {
		c.DriftAlpha = 0.08
	}
	return c
}

// serveBenchDataset is the analog ServeBench (and the checkpoint-serving
// test, which must regenerate the identical dataset) runs on.
func serveBenchDataset(scale Scale) (*dataset.Dataset, error) {
	return dataset.Generate(dataset.SyntheticConfig{
		Name: "papers-sim", NumVertices: scale.PapersN, AvgDegree: 28.8,
		FeatureDim: 128, NumClasses: 32,
		TrainFrac: 0.10, ValFrac: 0.02, TestFrac: 0.05,
		FeatureNoise: 0.6, Materialize: true, Seed: scale.Seed,
	})
}

// ServeBench builds a K=2 cluster on the papers-sim analog per α, freezes
// the model into a serving deployment, and drives it with closed-loop
// clients. Per-α clusters share the scale seed, so partitioning, VIP
// analysis, reordering, and the client vertex streams are identical — the
// only variable is cache capacity.
func ServeBench(scale Scale, cfg ServeConfig) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	restore, procs := ensureParallel()
	defer restore()
	var (
		ds    *dataset.Dataset
		dims  ModelDims
		k     = 2
		seed  = scale.Seed
		state *ckpt.TrainState
		err   error
	)
	if cfg.Checkpoint != "" {
		// Serving from a checkpoint: every run parameter that must match
		// the checkpointed training run — dataset identity, seed, batch
		// size, fanouts, K, and the hidden width (recovered from the saved
		// parameter shapes) — is reconstructed from the file itself, so
		// any gnntrain/gnnserve checkpoint is servable without replaying
		// its flags.
		state, err = ckpt.Load(cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
		ds, err = DatasetByName(state.Dataset, int(state.Topo.NumVertices), state.Seed)
		if err != nil {
			return nil, fmt.Errorf("regenerating the checkpointed dataset: %w", err)
		}
		k = int(state.Topo.K)
		seed = state.Seed
		scale.Batch = int(state.BatchSize)
		scale.Seed = state.Seed
		scale.Codec = state.Codec
		scale.Precision = state.Precision
		fanouts := make([]int, len(state.Fanouts))
		for i, f := range state.Fanouts {
			fanouts[i] = int(f)
		}
		// Layer 0's WSelf is inDim x hidden (x classes for a 1-layer
		// model, where the hidden width is unused anyway).
		dims = ModelDims{Hidden: int(state.Ranks[0].Params[0].Cols), Fanouts: fanouts}
	} else {
		ds, err = serveBenchDataset(scale)
		if err != nil {
			return nil, err
		}
		dims = PaperDims(ds.Name)
	}
	// The rows' bytes columns describe the serving comm group, so the
	// report records the *serving* codec: the explicit override, or the
	// cluster's codec (the checkpoint's recorded codec when restoring).
	servingCodec := cfg.Codec
	if servingCodec == "" {
		servingCodec = scale.Codec
	}
	codec, err := dist.ParseCodec(servingCodec)
	if err != nil {
		return nil, err
	}
	servingPrecision := cfg.Precision
	if servingPrecision == "" {
		servingPrecision = scale.Precision
	}
	prec, err := tensor.ParsePrecision(servingPrecision)
	if err != nil {
		return nil, err
	}
	res := &ServeBenchResult{
		Dataset: ds.Name, Vertices: ds.NumVertices(), Edges: ds.Graph.NumEdges(),
		K: k, Fanouts: dims.Fanouts, Hidden: dims.Hidden,
		MaxBatch: cfg.MaxBatch, MaxWaitMicros: cfg.MaxWaitMicros,
		Clients: cfg.Clients, RequestsPerClient: cfg.RequestsPerClient,
		Seed: seed, Codec: codec.String(), Precision: prec.String(),
		MaxProcs: procs, NumCPU: runtime.NumCPU(),
	}
	if state != nil {
		// One row: the checkpoint's own cache configuration.
		alpha := float64(len(state.Topo.CacheIDs[0])*k) / float64(ds.NumVertices())
		row, err := serveOneAlpha(ds, scale, cfg, dims, k, alpha, state)
		if err != nil {
			return nil, fmt.Errorf("serve bench from checkpoint %s: %w", cfg.Checkpoint, err)
		}
		res.Alphas = append(res.Alphas, *row)
	} else {
		for _, alpha := range cfg.Alphas {
			row, err := serveOneAlpha(ds, scale, cfg, dims, k, alpha, nil)
			if err != nil {
				return nil, fmt.Errorf("serve bench at alpha=%v: %w", alpha, err)
			}
			res.Alphas = append(res.Alphas, *row)
		}
	}
	for i, r := range res.Alphas {
		if i == 0 || r.P95 < res.BestP95Seconds {
			res.BestP95Seconds = r.P95
		}
		if r.ThroughputRPS > res.BestThroughputRPS {
			res.BestThroughputRPS = r.ThroughputRPS
		}
	}
	if cfg.Load == "open" {
		// The open-loop curve runs at the sweep's largest cache (its last
		// α, or the checkpoint's own α) so the overload behavior is
		// measured on the best-served configuration.
		alpha := cfg.Alphas[len(cfg.Alphas)-1]
		if state != nil {
			alpha = res.Alphas[0].Alpha
		}
		res.LoadZipf = cfg.ZipfS
		res.DeadlineMicros = cfg.DeadlineMicros
		if cfg.FlashFactor > 1 {
			res.FlashFactor = cfg.FlashFactor
		}
		res.LoadCurve, err = serveLoadCurve(ds, scale, cfg, dims, k, alpha, state)
		if err != nil {
			return nil, fmt.Errorf("serve load curve at alpha=%v: %w", alpha, err)
		}
	}
	if cfg.Drift {
		alpha := cfg.DriftAlpha
		if state != nil {
			alpha = res.Alphas[0].Alpha
		}
		if err := serveDrift(ds, scale, cfg, dims, k, alpha, state, res); err != nil {
			return nil, fmt.Errorf("serve drift profile at alpha=%v: %w", alpha, err)
		}
	}
	return res, nil
}

// serveDrift measures the drift profile: one cluster, two serving
// deployments over it (static, then online at the same capacity), each
// replaying the identical seeded rotating-hot-set workload window by
// window. Only the cache policy differs between the two passes, so the
// per-window hit-rate gap is attributable to drift tracking alone.
func serveDrift(ds *dataset.Dataset, scale Scale, cfg ServeConfig, dims ModelDims, k int, alpha float64, resume *ckpt.TrainState, res *ServeBenchResult) error {
	ccfg := serveClusterConfig(scale, cfg.UseTCP, dims, k, alpha)
	ccfg.Resume = resume
	cl, err := pipeline.NewCluster(ds, ccfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	run := func(mode string) ([]ServeDriftRow, error) {
		srv, err := serve.New(cl, serve.Config{
			MaxBatch:           cfg.MaxBatch,
			MaxWait:            time.Duration(cfg.MaxWaitMicros) * time.Microsecond,
			Seed:               scale.Seed,
			UseTCP:             cfg.UseTCP,
			Codec:              cfg.Codec,
			Precision:          cfg.Precision,
			Cache:              mode,
			CacheRefreshRounds: cfg.DriftRefreshRounds,
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		return driveDriftWindows(srv, ds.NumVertices(), scale.Seed, cfg)
	}
	static, err := run("static")
	if err != nil {
		return err
	}
	online, err := run("online")
	if err != nil {
		return err
	}
	res.DriftWindows = cfg.DriftWindows
	res.DriftRequestsPerWindow = cfg.DriftRequestsPerWindow
	res.DriftHotFrac = cfg.DriftHotFrac
	res.DriftAlpha = alpha
	res.DriftStatic, res.DriftOnline = static, online
	res.DriftStaticHitRate = driftSteadyHitRate(static)
	res.DriftOnlineHitRate = driftSteadyHitRate(online)
	res.DriftHitRateGain = res.DriftOnlineHitRate - res.DriftStaticHitRate
	for _, w := range online {
		res.DriftCacheInstalls += w.CacheInstalls
	}
	return nil
}

// driftSteadyHitRate aggregates hit rate over the steady-state windows:
// all but window 0, which is the online scorer's cold-start transient
// (the static pass skips the same window so the comparison stays paired).
func driftSteadyHitRate(rows []ServeDriftRow) float64 {
	var hits, remote int64
	for _, r := range rows {
		if r.Window == 0 && len(rows) > 1 {
			continue
		}
		hits += r.CacheHits
		remote += r.RemoteFetches
	}
	if hits+remote == 0 {
		return 0
	}
	return float64(hits) / float64(hits+remote)
}

// driveDriftWindows replays the rotating-hot-set workload: window w draws
// DriftHotBias of its requests from hot set w (a disjoint rotating slice
// of a seeded vertex permutation, so each window's heat is genuinely new)
// and the rest uniformly. Client streams are seeded per (window, client),
// so both serving passes see identical request sequences. Per-window
// hit/miss/install counts come from snapshot deltas taken at the quiesced
// window boundaries.
func driveDriftWindows(srv *serve.Server, n int, seed uint64, cfg ServeConfig) ([]ServeDriftRow, error) {
	hotN := int(cfg.DriftHotFrac * float64(n))
	if hotN < 4 {
		hotN = 4
	}
	if hotN > n {
		hotN = n
	}
	perm := rng.New(seed ^ 0xd41f7).Perm(n)
	perClient := cfg.DriftRequestsPerWindow / cfg.Clients
	if perClient == 0 {
		perClient = 1
	}
	var rows []ServeDriftRow
	var prevHits, prevRemote, prevInstalls int64
	for w := 0; w < cfg.DriftWindows; w++ {
		base := (w * hotN) % n
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(seed ^ 0xdf1).Split(uint64(w)).Split(uint64(c))
				out := make([]float32, srv.Classes())
				for i := 0; i < perClient; i++ {
					var v int32
					if r.Float64() < cfg.DriftHotBias {
						v = perm[(base+r.Intn(hotN))%n]
					} else {
						v = int32(r.Intn(n))
					}
					if _, err := srv.Predict(v, out); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		snap := srv.Snapshot()
		dh := snap.CacheHits - prevHits
		dr := snap.RemoteFetches - prevRemote
		di := snap.CacheInstalls - prevInstalls
		prevHits, prevRemote, prevInstalls = snap.CacheHits, snap.RemoteFetches, snap.CacheInstalls
		hitRate := 0.0
		if dh+dr > 0 {
			hitRate = float64(dh) / float64(dh+dr)
		}
		rows = append(rows, ServeDriftRow{
			Window: w, HitRate: hitRate,
			CacheHits: dh, RemoteFetches: dr, CacheInstalls: di,
		})
	}
	return rows, nil
}

// serveLoadCurve measures the open-loop p99-vs-offered-load profile: one
// cluster, and per offered rate a fresh serving deployment (so the shed
// and degraded counters are per-point) driven by seeded Poisson arrivals
// over a zipf popularity for LoadSeconds.
func serveLoadCurve(ds *dataset.Dataset, scale Scale, cfg ServeConfig, dims ModelDims, k int, alpha float64, resume *ckpt.TrainState) ([]ServeLoadRow, error) {
	ccfg := serveClusterConfig(scale, cfg.UseTCP, dims, k, alpha)
	ccfg.Resume = resume
	cl, err := pipeline.NewCluster(ds, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	var rows []ServeLoadRow
	for _, offered := range cfg.OfferedRPS {
		srv, err := serve.New(cl, serve.Config{
			MaxBatch:  cfg.MaxBatch,
			MaxWait:   time.Duration(cfg.MaxWaitMicros) * time.Microsecond,
			Seed:      scale.Seed,
			UseTCP:    cfg.UseTCP,
			Codec:     cfg.Codec,
			Precision: cfg.Precision,
			Deadline:  time.Duration(cfg.DeadlineMicros) * time.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		dispatched, wall := driveOpenLoop(srv, ds.NumVertices(), scale.Seed, cfg.ZipfS, offered,
			time.Duration(cfg.LoadSeconds*float64(time.Second)), cfg.FlashFactor)
		snap := srv.Snapshot()
		if err := srv.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, ServeLoadRow{
			OfferedRPS: offered, AchievedRPS: float64(snap.Requests) / wall,
			Offered: dispatched, Served: snap.Requests,
			Shed: snap.Shed, ShedRate: snap.ShedRate,
			Degraded: snap.Degraded, DegradedRate: snap.DegradedRate,
			P50: snap.P50, P95: snap.P95, P99: snap.P99, Mean: snap.Mean,
			MeanBatch: snap.MeanBatch,
		})
	}
	return rows, nil
}

// driveOpenLoop dispatches seeded Poisson arrivals at the offered rate for
// dur, each requesting a zipf-popular vertex (decorrelated from vertex ids
// through a seeded permutation). Arrivals never wait for earlier replies —
// the open-loop property that makes overload real — and every dispatched
// request is accounted by the server as served or shed. With flash > 1 the
// middle third of the run offers flash× the rate.
func driveOpenLoop(srv *serve.Server, n int, seed uint64, zipfS, offered float64, dur time.Duration, flash float64) (dispatched int64, wall float64) {
	perm := rng.New(seed ^ 0x9ea7).Perm(n)
	z := rng.NewZipf(rng.New(seed).Split(7), zipfS, uint64(n))
	arr := rng.New(seed).Split(8)
	var wg sync.WaitGroup
	start := time.Now()
	var next time.Duration
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		rate := offered
		if flash > 1 && elapsed > dur/3 && elapsed < 2*dur/3 {
			rate *= flash
		}
		next += time.Duration(-math.Log(1-arr.Float64()) / rate * float64(time.Second))
		if d := next - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		v := perm[z.Uint64()]
		dispatched++
		wg.Add(1)
		go func(v int32) {
			defer wg.Done()
			out := make([]float32, srv.Classes())
			// Shed and error outcomes are accounted in the server snapshot.
			_, _ = srv.Predict(v, out)
		}(v)
	}
	wg.Wait()
	return dispatched, time.Since(start).Seconds()
}

// serveClusterConfig is the cluster assembly serveOneAlpha uses. It is a
// named helper so the checkpoint-serving test trains its checkpoint with
// exactly this configuration (resume validation requires a match).
func serveClusterConfig(scale Scale, useTCP bool, dims ModelDims, k int, alpha float64) pipeline.ClusterConfig {
	return pipeline.ClusterConfig{
		K: k, Alpha: alpha, GPUFraction: 1, VIPReorder: true,
		Hidden: dims.Hidden, Layers: len(dims.Fanouts), UseTCP: useTCP,
		Codec: scale.Codec, Precision: scale.Precision,
		Train: pipeline.Config{
			Fanouts: dims.Fanouts, BatchSize: scale.Batch, PipelineDepth: 10,
			SamplerWorkers: scale.Workers, Parallelism: scale.Workers,
			LR: 1e-3, Seed: scale.Seed,
		},
		ModelSeed: scale.Seed + 1,
	}
}

func serveOneAlpha(ds *dataset.Dataset, scale Scale, cfg ServeConfig, dims ModelDims, k int, alpha float64, resume *ckpt.TrainState) (*ServeAlphaRow, error) {
	ccfg := serveClusterConfig(scale, cfg.UseTCP, dims, k, alpha)
	ccfg.Resume = resume
	cl, err := pipeline.NewCluster(ds, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// drive freezes the cluster into a deployment at the given precision and
	// replays the seeded closed-loop workload, so two drives over the same
	// cluster differ only in the serving compute precision.
	drive := func(precision string) (serve.Snapshot, float64, error) {
		srv, err := serve.New(cl, serve.Config{
			MaxBatch:  cfg.MaxBatch,
			MaxWait:   time.Duration(cfg.MaxWaitMicros) * time.Microsecond,
			Seed:      scale.Seed,
			UseTCP:    cfg.UseTCP,
			Codec:     cfg.Codec, // "" inherits the cluster's codec via Sibling
			Precision: precision, // "" inherits the cluster's precision
		})
		if err != nil {
			return serve.Snapshot{}, 0, err
		}
		defer srv.Close()

		n := ds.NumVertices()
		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Same-seed vertex stream for every α row.
				r := rng.New(scale.Seed ^ 0x5eed).Split(uint64(c))
				out := make([]float32, srv.Classes())
				for i := 0; i < cfg.RequestsPerClient; i++ {
					if _, err := srv.Predict(int32(r.Intn(n)), out); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start).Seconds()
		select {
		case err := <-errCh:
			return serve.Snapshot{}, 0, err
		default:
		}
		return srv.Snapshot(), wall, nil
	}

	// When the row serves a reduced precision, measure the fp32 control
	// first: serve.New only switches the shared stores' gather path for
	// reduced precisions, so the control must precede the reduced run.
	servingPrecision := cfg.Precision
	if servingPrecision == "" {
		servingPrecision = scale.Precision
	}
	prec, err := tensor.ParsePrecision(servingPrecision)
	if err != nil {
		return nil, err
	}
	var fp32Compute float64
	if prec != tensor.PrecisionFP32 {
		ctl, _, err := drive("fp32")
		if err != nil {
			return nil, err
		}
		fp32Compute = ctl.ComputeSeconds
	}

	snap, wall, err := drive(cfg.Precision)
	if err != nil {
		return nil, err
	}
	row := &ServeAlphaRow{
		Alpha: alpha, WallSeconds: wall, Requests: snap.Requests,
		ThroughputRPS: float64(snap.Requests) / wall,
		P50:           snap.P50, P95: snap.P95, P99: snap.P99, Mean: snap.Mean,
		Rounds: snap.Rounds, MeanBatch: snap.MeanBatch,
		LocalRows: snap.LocalGPU + snap.LocalCPU,
		CacheHits: snap.CacheHits, RemoteFetches: snap.RemoteFetches,
		CacheHitRate: snap.CacheHitRate, BytesSent: snap.BytesSent,
		ComputeSeconds: snap.ComputeSeconds, FP32ComputeSeconds: fp32Compute,
	}
	return row, nil
}

// WriteJSON writes the report for machine consumption (the serving perf
// trajectory file committed as BENCH_serve.json).
func (r *ServeBenchResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// RenderServeBench formats the α-sweep table.
func RenderServeBench(r *ServeBenchResult) string {
	t := metrics.NewTable(
		fmt.Sprintf("Online inference serving (%s, N=%d, K=%d, fanouts=%v, %d clients × %d reqs, maxbatch=%d, maxwait=%dµs, codec=%s, precision=%s, GOMAXPROCS=%d/%d CPUs)",
			r.Dataset, r.Vertices, r.K, r.Fanouts, r.Clients, r.RequestsPerClient, r.MaxBatch, r.MaxWaitMicros, r.Codec, r.Precision, r.MaxProcs, r.NumCPU),
		"α", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean batch", "hit rate", "remote rows", "MB sent", "compute (s)")
	for _, row := range r.Alphas {
		t.AddRow(
			fmt.Sprintf("%.2f", row.Alpha),
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			fmt.Sprintf("%.3f", row.P50*1e3),
			fmt.Sprintf("%.3f", row.P95*1e3),
			fmt.Sprintf("%.3f", row.P99*1e3),
			fmt.Sprintf("%.2f", row.MeanBatch),
			fmt.Sprintf("%.3f", row.CacheHitRate),
			row.RemoteFetches,
			fmt.Sprintf("%.2f", float64(row.BytesSent)/1e6),
			fmt.Sprintf("%.4f", row.ComputeSeconds))
	}
	out := t.String()
	var reduced, control float64
	for _, row := range r.Alphas {
		if row.FP32ComputeSeconds > 0 {
			reduced += row.ComputeSeconds
			control += row.FP32ComputeSeconds
		}
	}
	if control > 0 {
		out += fmt.Sprintf("\n%s compute across sweep: %.4fs vs %.4fs fp32 control (%.1f%% less)",
			r.Precision, reduced, control, 100*(1-reduced/control))
	}
	if len(r.LoadCurve) > 0 {
		flash := ""
		if r.FlashFactor > 1 {
			flash = fmt.Sprintf(", flash ×%.1f mid-run", r.FlashFactor)
		}
		lt := metrics.NewTable(
			fmt.Sprintf("Open-loop overload profile (zipf %.2f, deadline %dµs%s)", r.LoadZipf, r.DeadlineMicros, flash),
			"offered req/s", "achieved req/s", "p50 (ms)", "p99 (ms)", "shed rate", "degraded rate", "mean batch")
		for _, row := range r.LoadCurve {
			lt.AddRow(
				fmt.Sprintf("%.0f", row.OfferedRPS),
				fmt.Sprintf("%.0f", row.AchievedRPS),
				fmt.Sprintf("%.3f", row.P50*1e3),
				fmt.Sprintf("%.3f", row.P99*1e3),
				fmt.Sprintf("%.3f", row.ShedRate),
				fmt.Sprintf("%.3f", row.DegradedRate),
				fmt.Sprintf("%.2f", row.MeanBatch))
		}
		out += "\n\n" + lt.String()
	}
	if len(r.DriftOnline) > 0 {
		dt := metrics.NewTable(
			fmt.Sprintf("Rotating-hot-set drift (α=%.2f, %d windows × %d reqs, hot frac %g)",
				r.DriftAlpha, r.DriftWindows, r.DriftRequestsPerWindow, r.DriftHotFrac),
			"window", "static hit rate", "online hit rate", "installs")
		for i, o := range r.DriftOnline {
			staticRate := 0.0
			if i < len(r.DriftStatic) {
				staticRate = r.DriftStatic[i].HitRate
			}
			dt.AddRow(o.Window,
				fmt.Sprintf("%.3f", staticRate),
				fmt.Sprintf("%.3f", o.HitRate),
				o.CacheInstalls)
		}
		out += "\n\n" + dt.String()
		out += fmt.Sprintf("\nsteady-state hit rate: online %.3f vs static %.3f (gain %+.3f, %d installs)",
			r.DriftOnlineHitRate, r.DriftStaticHitRate, r.DriftHitRateGain, r.DriftCacheInstalls)
	}
	return out
}
