package experiments

import (
	"math"
	"testing"
)

// TestGradCodecAccuracyDelta pins the quality cost of the compressed
// gradient all-reduce on a real seeded training run: switching the gradient
// transport from fp32 to fp16 must leave the final sampled-inference test
// accuracy within 0.5 points, and int8 (with error-feedback residuals)
// within 2 points — the same bounds the feature-gather codecs are held to
// in TestCodecAccuracyDelta. Remote-fetch counts must not move at all: the
// gradient codec compresses synchronization traffic, it must never change
// what the samplers fetch.
func TestGradCodecAccuracyDelta(t *testing.T) {
	run := func(gradCodec string) AccuracyRow {
		cfg := DefaultAccuracyConfig()
		cfg.Datasets = []string{"products-sim"}
		cfg.N = 3000
		cfg.Epochs = 2
		cfg.GradCodec = gradCodec
		rows, err := Accuracy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0]
	}
	fp32 := run("fp32")
	fp16 := run("fp16")
	i8 := run("int8")

	if fp16.RemotePerEpoch != fp32.RemotePerEpoch || i8.RemotePerEpoch != fp32.RemotePerEpoch {
		t.Fatalf("remote fetches drifted across gradient codecs: fp32 %d, fp16 %d, int8 %d",
			fp32.RemotePerEpoch, fp16.RemotePerEpoch, i8.RemotePerEpoch)
	}
	if d := math.Abs(fp16.TestAcc - fp32.TestAcc); d > 0.005 {
		t.Errorf("fp16 grad test accuracy %.4f vs fp32 %.4f: delta %.4f exceeds 0.5 points",
			fp16.TestAcc, fp32.TestAcc, d)
	}
	if d := math.Abs(i8.TestAcc - fp32.TestAcc); d > 0.02 {
		t.Errorf("int8 grad test accuracy %.4f vs fp32 %.4f: delta %.4f exceeds 2 points",
			i8.TestAcc, fp32.TestAcc, d)
	}
	for _, r := range []AccuracyRow{fp32, fp16, i8} {
		if r.FinalLoss >= r.FirstLoss {
			t.Errorf("%+v: loss did not decrease", r)
		}
	}
}
