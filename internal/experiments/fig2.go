package experiments

import (
	"fmt"

	"salientpp/internal/cache"
	"salientpp/internal/metrics"
)

// Fig2Config parametrizes the caching-policy comparison (paper Figure 2:
// 8-way partitioned papers, 3-layer GraphSAGE, batch 1024, fanout panels
// (15,10,5) / (10,10,10) / (5,5,5), replication factors up to 1.0).
type Fig2Config struct {
	K          int
	Batch      int
	FanoutSets [][]int
	Alphas     []float64
	// EvalEpochs is the number of sampled evaluation epochs whose access
	// counts define the measured communication volume (the paper averages
	// 100 epochs at full scale; a handful suffices at reduced scale).
	EvalEpochs int
	SimEpochs  int // "sim." policy's simulated epochs (paper: 2)
	Seed       uint64
	Workers    int
}

// DefaultFig2Config mirrors the paper's setup.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		K:     8,
		Batch: 1024,
		FanoutSets: [][]int{
			{15, 10, 5},
			{10, 10, 10},
			{5, 5, 5},
		},
		Alphas:     []float64{0.05, 0.10, 0.20, 0.50, 1.00},
		EvalEpochs: 5,
		SimEpochs:  2,
		Seed:       1,
		Workers:    2,
	}
}

// Fig2Panel is one fanout setting's results: per-epoch remote
// communication volume in vertices, per policy and replication factor,
// bracketed by the no-cache upper bound and oracle lower bound.
type Fig2Panel struct {
	Fanouts []int
	Alphas  []float64
	// Volumes[policy][alphaIdx], plus bounds.
	Volumes map[string][]float64
	Upper   float64   // no caching
	Lower   []float64 // oracle per alpha
	// Order preserves the paper's legend order.
	Order []string
}

// Fig2Result aggregates panels plus the geometric-mean improvement (panel
// d): improvement[policy][alphaIdx] = upper / volume, geometric mean
// across fanout panels.
type Fig2Result struct {
	Panels      []Fig2Panel
	Improvement map[string][]float64
	Alphas      []float64
	Order       []string
}

// Fig2 runs the caching-policy comparison on a deployed dataset. The
// deployment's fanouts are ignored; each panel re-ranks policies for its
// own fanout set, exactly as the paper varies f with a fixed partition.
func Fig2(d *Deployment, cfg Fig2Config) (*Fig2Result, error) {
	if len(cfg.FanoutSets) == 0 || len(cfg.Alphas) == 0 {
		return nil, fmt.Errorf("experiments: empty Fig2 grid")
	}
	n := d.Data.NumVertices()
	res := &Fig2Result{Alphas: cfg.Alphas}

	for _, fanouts := range cfg.FanoutSets {
		panel := Fig2Panel{
			Fanouts: fanouts,
			Alphas:  cfg.Alphas,
			Volumes: map[string][]float64{},
			Lower:   make([]float64, len(cfg.Alphas)),
		}
		policies := cache.Registry(cfg.SimEpochs, cfg.EvalEpochs, cfg.Seed^0x0eac)
		for _, p := range policies {
			panel.Order = append(panel.Order, p.Name())
			panel.Volumes[p.Name()] = make([]float64, len(cfg.Alphas))
		}

		for part := 0; part < d.K; part++ {
			ctx := d.cacheContext(int32(part))
			ctx.Fanouts = fanouts
			ctx.BatchSize = cfg.Batch
			w, err := cache.NewWorkload(ctx, cfg.EvalEpochs, cfg.Seed^0x0eac)
			if err != nil {
				return nil, err
			}
			panel.Upper += w.PerEpoch(w.RemoteTotal())
			for ai, alpha := range cfg.Alphas {
				capacity := cache.CapacityForAlpha(alpha, n, d.K)
				panel.Lower[ai] += w.PerEpoch(w.OracleVolume(capacity))
			}
			for _, p := range policies {
				ranking, err := p.Rank(ctx)
				if err != nil {
					return nil, err
				}
				for ai, alpha := range cfg.Alphas {
					capacity := cache.CapacityForAlpha(alpha, n, d.K)
					c, err := cache.FromRanking(ranking, capacity, n)
					if err != nil {
						return nil, err
					}
					panel.Volumes[p.Name()][ai] += w.PerEpoch(w.RemoteVolume(c))
				}
			}
		}
		res.Panels = append(res.Panels, panel)
		if res.Order == nil {
			res.Order = panel.Order
		}
	}

	// Panel (d): geometric-mean improvement across fanout panels.
	res.Improvement = map[string][]float64{}
	for _, name := range res.Order {
		imp := make([]float64, len(cfg.Alphas))
		for ai := range cfg.Alphas {
			var ratios []float64
			for _, panel := range res.Panels {
				v := panel.Volumes[name][ai]
				if v > 0 {
					ratios = append(ratios, panel.Upper/v)
				} else {
					// Full elimination: cap the ratio at the upper bound
					// itself to keep the geomean finite.
					ratios = append(ratios, panel.Upper)
				}
			}
			imp[ai] = metrics.GeoMean(ratios)
		}
		res.Improvement[name] = imp
	}
	return res, nil
}

// Render formats the result as paper-style tables.
func (r *Fig2Result) Render() string {
	out := ""
	for pi, panel := range r.Panels {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 2(%c): per-epoch remote communication volume (vertices), fanouts %v", 'a'+pi, panel.Fanouts),
			append([]string{"policy \\ α"}, formatAlphas(panel.Alphas)...)...)
		row := []any{"none (upper)"}
		for range panel.Alphas {
			row = append(row, panel.Upper)
		}
		t.AddRow(row...)
		for _, name := range panel.Order {
			row := []any{name}
			for _, v := range panel.Volumes[name] {
				row = append(row, v)
			}
			t.AddRow(row...)
		}
		row = []any{"oracle bound"}
		for _, v := range panel.Lower {
			row = append(row, v)
		}
		t.AddRow(row...)
		out += t.String() + "\n"
	}
	t := metrics.NewTable("Figure 2(d): geometric-mean improvement over no caching (higher is better)",
		append([]string{"policy \\ α"}, formatAlphas(r.Alphas)...)...)
	for _, name := range r.Order {
		row := []any{name}
		for _, v := range r.Improvement[name] {
			row = append(row, fmt.Sprintf("%.2fx", v))
		}
		t.AddRow(row...)
	}
	return out + t.String()
}

func formatAlphas(alphas []float64) []string {
	out := make([]string, len(alphas))
	for i, a := range alphas {
		out[i] = fmt.Sprintf("%.2f", a)
	}
	return out
}
