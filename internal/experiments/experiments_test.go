package experiments

import (
	"math"
	"strings"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
)

func smallDeployment(t *testing.T, k int) *Deployment {
	t.Helper()
	ds, err := dataset.PapersSim(12000, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(ds, k, ModelDims{Hidden: 64, Fanouts: []int{5, 3}}, 32, true, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestDeployInvariants(t *testing.T) {
	dep := smallDeployment(t, 4)
	if dep.K != 4 || dep.Layout.K() != 4 {
		t.Fatal("wrong K")
	}
	// Parts agree with layout ownership and training sets are local.
	for v, p := range dep.Parts {
		if int(p) != dep.Layout.Owner(int32(v)) {
			t.Fatalf("vertex %d partition mismatch", v)
		}
	}
	total := 0
	for p, ids := range dep.TrainPer {
		total += len(ids)
		for _, v := range ids {
			if dep.Layout.Owner(v) != p {
				t.Fatalf("training vertex %d assigned to wrong machine", v)
			}
		}
	}
	if total != len(dep.TrainIDs) {
		t.Fatal("per-machine training sets do not partition the train set")
	}
	// Balance: no machine should hold a wildly disproportionate share.
	ideal := float64(total) / 4
	for p, ids := range dep.TrainPer {
		if float64(len(ids)) > 1.6*ideal || float64(len(ids)) < 0.4*ideal {
			t.Fatalf("machine %d holds %d training vertices (ideal %.0f)", p, len(ids), ideal)
		}
	}
}

func TestScenarioAndWorkload(t *testing.T) {
	dep := smallDeployment(t, 4)
	rankings, err := dep.Rankings(cache.VIP{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := dep.Scenario(nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := dep.Scenario(rankings, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := dep.Workload(plain)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := dep.Workload(cached)
	if err != nil {
		t.Fatal(err)
	}
	if wc.RemoteVertices() >= wp.RemoteVertices() {
		t.Fatalf("cache did not reduce remote volume: %d vs %d", wc.RemoteVertices(), wp.RemoteVertices())
	}
}

func TestFig2SmallRun(t *testing.T) {
	dep := smallDeployment(t, 4)
	cfg := Fig2Config{
		K: 4, Batch: 32,
		FanoutSets: [][]int{{5, 3}, {3, 3}},
		Alphas:     []float64{0.1, 0.5},
		EvalEpochs: 2, SimEpochs: 2, Seed: 5, Workers: 2,
	}
	res, err := Fig2(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 2 {
		t.Fatalf("panels=%d", len(res.Panels))
	}
	for _, panel := range res.Panels {
		if panel.Upper <= 0 {
			t.Fatal("no upper bound volume")
		}
		for name, vols := range panel.Volumes {
			for ai, v := range vols {
				if v < panel.Lower[ai]-1e-9 || v > panel.Upper+1e-9 {
					t.Fatalf("%s volume %v outside [%v, %v]", name, v, panel.Lower[ai], panel.Upper)
				}
			}
		}
		// Oracle policy achieves the bound on its own eval epochs.
		for ai := range panel.Alphas {
			if math.Abs(panel.Volumes["oracle"][ai]-panel.Lower[ai]) > 1e-6 {
				t.Fatalf("oracle volume %v != bound %v", panel.Volumes["oracle"][ai], panel.Lower[ai])
			}
		}
	}
	// Improvements must be >= 1 for the better policies at high alpha.
	last := len(res.Alphas) - 1
	if res.Improvement["VIP"][last] < 1 {
		t.Fatalf("VIP improvement %v < 1", res.Improvement["VIP"][last])
	}
	if !strings.Contains(res.Render(), "Figure 2(d)") {
		t.Fatal("render missing panel d")
	}
}

func TestTable1SmallRun(t *testing.T) {
	scale := SmallScale()
	res, err := Table1(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Normalization pins the K=1 full-replication cell to 20.7.
	if math.Abs(res.Normalized["SALIENT (full replication)"][0]-20.7) > 1e-6 {
		t.Fatalf("normalization broken: %v", res.Normalized["SALIENT (full replication)"][0])
	}
	// Orderings at every K>1: sequential slowest, caching fastest of the
	// partitioned rows.
	for ki := 1; ki < len(res.Ks); ki++ {
		seq := res.Raw["+ Partitioned features"][ki]
		pipe := res.Raw["+ Pipeline communication"][ki]
		cached := res.Raw["+ Feature caching"][ki]
		if !(seq > pipe && pipe > cached) {
			t.Fatalf("K=%d ordering violated: seq=%.4f pipe=%.4f cached=%.4f", res.Ks[ki], seq, pipe, cached)
		}
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Fatal("render broken")
	}
}

func TestFig8Categories(t *testing.T) {
	rows, err := Fig8(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Caching with pipelining must beat no-cache without pipelining.
	var seqNoCache, pipeCached float64
	for _, r := range rows {
		if !r.Pipelining && r.Alpha == 0 {
			seqNoCache = r.Result.EpochSeconds
		}
		if r.Pipelining && r.Alpha > 0 {
			pipeCached = r.Result.EpochSeconds
		}
	}
	if pipeCached >= seqNoCache {
		t.Fatalf("pipelining+caching (%.4f) not faster than neither (%.4f)", pipeCached, seqNoCache)
	}
	if !strings.Contains(RenderFig8(rows), "Train(sync)") {
		t.Fatal("render broken")
	}
}

func TestTable4Speedup(t *testing.T) {
	res, err := Table4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.5 {
		t.Fatalf("DistDGL-like baseline implausibly fast: speedup %.2f", res.Speedup)
	}
	if !strings.Contains(res.Render(), "DistDGL") {
		t.Fatal("render broken")
	}
}

func TestTable2Renders(t *testing.T) {
	out, err := Table2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"products-sim", "papers-sim", "mag240-sim"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in:\n%s", want, out)
		}
	}
}

func TestAccuracySmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real training is slow")
	}
	cfg := DefaultAccuracyConfig()
	cfg.Datasets = []string{"products-sim"}
	cfg.N = 3000
	cfg.Epochs = 3
	rows, err := Accuracy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
	r := rows[0]
	if r.FinalLoss >= r.FirstLoss {
		t.Fatalf("training did not reduce loss: %.3f -> %.3f", r.FirstLoss, r.FinalLoss)
	}
	if r.ValAcc < 0.3 {
		t.Fatalf("validation accuracy %.3f below sanity floor", r.ValAcc)
	}
	if !strings.Contains(RenderAccuracy(rows), "products-sim") {
		t.Fatal("render broken")
	}
}
