// Package experiments contains the harnesses that regenerate every table
// and figure in the paper's evaluation (Table 1, Figure 2, Figures 4–9,
// Tables 2 and 4, and the §5.3 accuracy runs), at configurable scale.
// The cmd/ tools and the repository-root benchmarks are thin wrappers over
// these functions; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/graph"
	"salientpp/internal/partition"
	"salientpp/internal/perfmodel"
	"salientpp/internal/vip"
)

// Deployment is a partitioned, reordered dataset ready for workload
// measurement: the common preprocessing shared by all timing experiments
// (paper §4.1).
type Deployment struct {
	Name     string
	Data     *dataset.Dataset // reordered; features need not be materialized
	Layout   *dist.Layout
	Parts    []int32 // reordered id space
	TrainIDs []int32 // reordered
	TrainPer [][]int32
	K        int
	Fanouts  []int
	Batch    int
	Seed     uint64
	Workers  int
	// Model dimensions used for flop/byte accounting.
	InDim, Hidden, Classes int
}

// ModelDims carries the GNN hyperparameters of Table 3.
type ModelDims struct {
	Hidden  int
	Fanouts []int
}

// PaperDims returns the paper's per-dataset architecture (Table 3).
func PaperDims(name string) ModelDims {
	switch name {
	case "products-sim":
		return ModelDims{Hidden: 256, Fanouts: []int{15, 10, 5}}
	case "mag240-sim":
		return ModelDims{Hidden: 1024, Fanouts: []int{25, 15}}
	default: // papers-sim
		return ModelDims{Hidden: 256, Fanouts: []int{15, 10, 5}}
	}
}

// SplitWeights derives the paper's multi-constraint balance weights from a
// dataset's splits.
func SplitWeights(ds *dataset.Dataset) [][]float32 {
	isTrain := make([]bool, ds.NumVertices())
	isVal := make([]bool, ds.NumVertices())
	isTest := make([]bool, ds.NumVertices())
	for v, s := range ds.Splits {
		switch s {
		case dataset.SplitTrain:
			isTrain[v] = true
		case dataset.SplitVal:
			isVal[v] = true
		case dataset.SplitTest:
			isTest[v] = true
		}
	}
	return partition.SalientWeights(ds.Graph, isTrain, isVal, isTest)
}

// Deploy partitions ds into k parts with the paper's balance constraints,
// runs partition-wise VIP analysis, and reorders vertices so partitions
// are contiguous and (when vipReorder) VIP-ranked within each partition.
func Deploy(ds *dataset.Dataset, k int, dims ModelDims, batch int, vipReorder bool, seed uint64, workers int) (*Deployment, error) {
	pres, err := partition.Partition(ds.Graph, partition.Config{
		K:       k,
		Weights: SplitWeights(ds),
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	return DeployWithParts(ds, pres.Parts, k, dims, batch, vipReorder, seed, workers)
}

// DeployWithParts finishes deployment from a precomputed partition
// assignment: VIP analysis, reordering, layout, and per-machine training
// sets. Used by partitioning ablations that supply custom objectives.
func DeployWithParts(ds *dataset.Dataset, assignment []int32, k int, dims ModelDims, batch int, vipReorder bool, seed uint64, workers int) (*Deployment, error) {
	pres := &partition.Result{Parts: assignment, K: k}

	var score []float64
	if vipReorder {
		vcfg := vip.Config{Fanouts: dims.Fanouts, BatchSize: batch, IncludeSeeds: true, Workers: workers}
		vips, err := vip.ForPartitions(ds.Graph, pres.Parts, k, ds.TrainIDs(), vcfg)
		if err != nil {
			return nil, err
		}
		score = make([]float64, ds.NumVertices())
		for v := range score {
			score[v] = vips[pres.Parts[v]][v]
		}
	}
	perm, starts, err := graph.PartitionOrder(pres.Parts, k, score)
	if err != nil {
		return nil, err
	}
	rds, err := ds.Relabel(perm)
	if err != nil {
		return nil, err
	}
	layout, err := dist.NewLayout(starts)
	if err != nil {
		return nil, err
	}
	parts := make([]int32, ds.NumVertices())
	for old, p := range pres.Parts {
		parts[perm[old]] = p
	}
	train := rds.TrainIDs()
	trainPer := make([][]int32, k)
	for _, v := range train {
		p := layout.Owner(v)
		trainPer[p] = append(trainPer[p], v)
	}
	if workers <= 0 {
		workers = 2
	}
	return &Deployment{
		Name: ds.Name, Data: rds, Layout: layout, Parts: parts,
		TrainIDs: train, TrainPer: trainPer, K: k,
		Fanouts: dims.Fanouts, Batch: batch, Seed: seed, Workers: workers,
		InDim: ds.FeatureDim, Hidden: dims.Hidden, Classes: ds.NumClasses,
	}, nil
}

// Rankings computes the per-partition remote-vertex rankings of a policy
// once; they are independent of cache capacity, so α sweeps reuse them.
func (d *Deployment) Rankings(policy cache.Ranker) ([][]int32, error) {
	out := make([][]int32, d.K)
	for p := 0; p < d.K; p++ {
		ctx := d.cacheContext(int32(p))
		r, err := policy.Rank(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s ranking partition %d: %w", policy.Name(), p, err)
		}
		out[p] = r
	}
	return out, nil
}

func (d *Deployment) cacheContext(part int32) *cache.Context {
	return &cache.Context{
		G: d.Data.Graph, Parts: d.Parts, K: d.K, Part: part,
		TrainIDs: d.TrainIDs, Fanouts: d.Fanouts, BatchSize: d.Batch,
		Seed: d.Seed + uint64(part)*101, Workers: d.Workers,
	}
}

// Scenario assembles a perfmodel scenario: caches cut from rankings at
// replication factor alpha (nil rankings or alpha<=0 disables caching) and
// a gpuFraction share of each partition resident on device.
func (d *Deployment) Scenario(rankings [][]int32, alpha, gpuFraction float64) (*perfmodel.Scenario, error) {
	n := d.Data.NumVertices()
	s := &perfmodel.Scenario{
		Graph: d.Data.Graph, Layout: d.Layout, TrainPer: d.TrainPer,
		GPURows: make([]int, d.K),
		Fanouts: d.Fanouts, Batch: d.Batch,
		FeatureBytes: d.Data.FeatureBytes(),
		InDim:        d.InDim, Hidden: d.Hidden, Classes: d.Classes,
	}
	for p := 0; p < d.K; p++ {
		s.GPURows[p] = int(gpuFraction * float64(d.Layout.PartSize(p)))
	}
	if alpha > 0 && rankings != nil {
		capacity := cache.CapacityForAlpha(alpha, n, d.K)
		s.Caches = make([]*cache.Cache, d.K)
		for p := 0; p < d.K; p++ {
			c, err := cache.FromRanking(rankings[p], capacity, n)
			if err != nil {
				return nil, err
			}
			s.Caches[p] = c
		}
	}
	return s, nil
}

// Workload builds the measured epoch workload for a scenario.
func (d *Deployment) Workload(s *perfmodel.Scenario) (*perfmodel.Workload, error) {
	return perfmodel.BuildWorkload(s, d.Seed^0xbeef, d.Workers)
}
