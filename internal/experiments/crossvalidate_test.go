package experiments

import (
	"fmt"
	"sync"
	"testing"

	"salientpp/internal/cache"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// TestModelMatchesRuntime cross-validates the two execution paths: the
// performance model's workload classification (perfmodel.BuildWorkload)
// must agree, batch by batch and category by category, with what the real
// distributed feature store actually does (dist.Store.Gather) for the
// identical sampled minibatches. This is the consistency guarantee that
// lets the event simulator stand in for the real cluster in Table 1 and
// Figures 4–9.
func TestModelMatchesRuntime(t *testing.T) {
	ds, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "xval", NumVertices: 4000, AvgDegree: 12, FeatureDim: 8,
		NumClasses: 4, TrainFrac: 0.2, FeatureNoise: 0.3,
		Materialize: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	dep, err := Deploy(ds, k, ModelDims{Hidden: 16, Fanouts: []int{5, 3}}, 32, true, 21, 2)
	if err != nil {
		t.Fatal(err)
	}
	rankings, err := dep.Rankings(cache.VIP{})
	if err != nil {
		t.Fatal(err)
	}
	const alpha, gpuFrac = 0.25, 0.5
	scen, err := dep.Scenario(rankings, alpha, gpuFrac)
	if err != nil {
		t.Fatal(err)
	}
	const workSeed = uint64(0x5eed)
	w, err := BuildWorkloadForTest(scen, workSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Real runtime side: stores with the same layout, caches, and GPU
	// split, fed the *same* sampled minibatches (same RNG derivation as
	// BuildWorkload).
	comms, err := dist.NewLocalGroup(k)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	rds := dep.Data
	stores := make([]*dist.Store, k)
	for m := 0; m < k; m++ {
		lo, hi := dep.Layout.Starts[m], dep.Layout.Starts[m+1]
		local := tensor.New(int(hi-lo), rds.FeatureDim)
		for v := lo; v < hi; v++ {
			copy(local.Row(int(v-lo)), rds.FeatureRow(int32(v)))
		}
		cdata := tensor.New(scen.Caches[m].Len(), rds.FeatureDim)
		for i, v := range scen.Caches[m].IDs() {
			copy(cdata.Row(i), rds.FeatureRow(v))
		}
		ep, err := cache.NewEpoch(scen.Caches[m], cdata)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dist.NewStore(comms[m], dep.Layout, rds.FeatureDim, local, ep, gpuFrac)
		if err != nil {
			t.Fatal(err)
		}
		stores[m] = st
	}

	smp, err := sample.NewSampler(rds.Graph, scen.Fanouts)
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce BuildWorkload's exact sampling streams.
	mfgsPer := make([][]*sample.MFG, k)
	base := rng.New(workSeed)
	for m := 0; m < k; m++ {
		mr := base.Split(uint64(m))
		batches := sample.EpochBatches(dep.TrainPer[m], scen.Batch, mr.Split(0))
		mfgsPer[m] = sample.PrepareEpoch(smp, batches, mr.Split(1), 2)
	}

	var wg sync.WaitGroup
	errs := make(chan error, k)
	for m := 0; m < k; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for b := 0; b < w.Rounds; b++ {
				var ids []int32
				if b < len(mfgsPer[m]) {
					ids = mfgsPer[m][b].InputIDs()
				}
				feats, stats, err := stores[m].Gather(ids)
				if err != nil {
					errs <- err
					return
				}
				model := w.PerMachine[m][b]
				if stats.LocalGPU != model.LocalGPU || stats.LocalCPU != model.LocalCPU ||
					stats.CacheHits != model.CacheHits || stats.RemoteFetch != model.RemoteFetch {
					errs <- fmt.Errorf("machine %d batch %d: runtime %+v vs model {gpu:%d cpu:%d hits:%d remote:%d}",
						m, b, stats, model.LocalGPU, model.LocalCPU, model.CacheHits, model.RemoteFetch)
					return
				}
				for p := 0; p < k; p++ {
					if stats.RemoteByPeer[p] != model.RemoteByPeer[p] {
						errs <- fmt.Errorf("machine %d batch %d: per-peer mismatch", m, b)
						return
					}
				}
				// The gathered features must also be correct, proving the
				// classification agreement is not vacuous.
				for i, v := range ids {
					want := rds.FeatureRow(v)
					got := feats.Row(i)
					for j := range want {
						if want[j] != got[j] {
							errs <- fmt.Errorf("machine %d batch %d row %d: feature mismatch", m, b, i)
							return
						}
					}
				}
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
