package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func writeEpochReport(t *testing.T, dir, name string, best float64) string {
	return writeEpochReportBytes(t, dir, name, best, 5e6)
}

func writeEpochReportBytes(t *testing.T, dir, name string, best, bytes float64) string {
	return writeEpochReportGrad(t, dir, name, best, bytes, 0, 0)
}

func writeEpochReportGrad(t *testing.T, dir, name string, best, bytes, gradBytes, saved float64) string {
	t.Helper()
	r := &EpochBenchResult{
		Dataset: "papers-sim", Vertices: 1000, K: 2, Codec: "fp32",
		Epochs:          []EpochRow{{Epoch: 0, WallSeconds: best, BytesSent: int64(bytes)}},
		BestWallSeconds: best, MeanWallSeconds: best, MeanBytesPerEpoch: bytes,
		GradBytesPerEpoch: gradBytes, OverlapSecondsSaved: saved,
	}
	p := filepath.Join(dir, name)
	if err := r.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func writeServeReport(t *testing.T, dir, name string, rows []ServeAlphaRow) string {
	return writeServeLoadReport(t, dir, name, rows, nil)
}

func writeServeLoadReport(t *testing.T, dir, name string, rows []ServeAlphaRow, curve []ServeLoadRow) string {
	t.Helper()
	r := &ServeBenchResult{Dataset: "papers-sim", Vertices: 1000, K: 2, Alphas: rows, LoadCurve: curve}
	p := filepath.Join(dir, name)
	if err := r.WriteJSON(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompareGateFailsOnInjectedEpochRegression is the acceptance check
// for the CI gate: a >25% epoch wall-time regression must fail, smaller
// drift and improvements must pass.
func TestCompareGateFailsOnInjectedEpochRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeEpochReport(t, dir, "old.json", 10.0)

	bad := writeEpochReport(t, dir, "bad.json", 13.0) // +30%
	cs, err := CompareBenchFiles(old, bad, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatalf("30%% slower epoch passed the 25%% gate: %+v", cs)
	}

	drift := writeEpochReport(t, dir, "drift.json", 11.0) // +10%
	cs, err = CompareBenchFiles(old, drift, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("10%% drift failed the 25%% gate: %+v", cs)
	}

	better := writeEpochReport(t, dir, "better.json", 7.0)
	cs, err = CompareBenchFiles(old, better, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("improvement failed the gate: %+v", cs)
	}
	if !strings.Contains(RenderComparisons(cs, 0.25), "best_wall_seconds") {
		t.Fatal("rendered gate verdict lacks the metric name")
	}

	// Bytes-on-wire +60% at identical wall time (a wire-format regression
	// the wall-clock gate could miss on fast hardware): fail.
	fat := writeEpochReportBytes(t, dir, "fat.json", 10.0, 8e6)
	cs, err = CompareBenchFiles(old, fat, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatalf("60%% bytes-per-epoch regression passed the gate: %+v", cs)
	}
}

// TestCompareGateGradColumns gates the gradient-synchronization columns and
// skips them only when the baseline predates them (or, for overlap, sits
// below the noise floor).
func TestCompareGateGradColumns(t *testing.T) {
	dir := t.TempDir()
	old := writeEpochReportGrad(t, dir, "old.json", 10.0, 5e6, 1e6, 0.2)

	// Identical columns pass.
	same := writeEpochReportGrad(t, dir, "same.json", 10.0, 5e6, 1e6, 0.2)
	cs, err := CompareBenchFiles(old, same, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("identical grad columns regressed: %+v", cs)
	}

	// Gradient bytes +60% (a grad wire-format regression): fail.
	fat := writeEpochReportGrad(t, dir, "fat.json", 10.0, 5e6, 1.6e6, 0.2)
	cs, err = CompareBenchFiles(old, fat, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatalf("60%% grad-bytes regression passed the gate: %+v", cs)
	}

	// Overlap savings collapsing by half (the reduce stopped hiding behind
	// backward compute): fail.
	stall := writeEpochReportGrad(t, dir, "stall.json", 10.0, 5e6, 1e6, 0.1)
	cs, err = CompareBenchFiles(old, stall, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatalf("halved overlap savings passed the gate: %+v", cs)
	}

	// A baseline from before the columns existed skips them, in both
	// directions (old BENCH files stay comparable).
	pre := writeEpochReport(t, dir, "pre.json", 10.0)
	for _, pair := range [][2]string{{pre, old}, {old, pre}} {
		if pair[0] == old {
			// A zero new value against a positive grad baseline is a broken
			// measurement and must error, not pass.
			if _, err := CompareBenchFiles(pair[0], pair[1], 0.25); err == nil {
				t.Fatal("zero grad bytes in the new report accepted against a grad-bearing baseline")
			}
			continue
		}
		cs, err := CompareBenchFiles(pair[0], pair[1], 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if AnyRegressed(cs) {
			t.Fatalf("pre-grad baseline regressed against a grad-bearing report: %+v", cs)
		}
	}

	// Overlap savings below the 50ms noise floor are not gated: milliseconds
	// of scheduler jitter must not flap CI.
	noisyOld := writeEpochReportGrad(t, dir, "noisy-old.json", 10.0, 5e6, 1e6, 0.02)
	noisyNew := writeEpochReportGrad(t, dir, "noisy-new.json", 10.0, 5e6, 1e6, 0.001)
	cs, err = CompareBenchFiles(noisyOld, noisyNew, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("sub-noise-floor overlap drift regressed: %+v", cs)
	}
}

// TestCompareGateServeRows gates serving p95 and throughput per α row and
// treats dropped rows as regressions.
func TestCompareGateServeRows(t *testing.T) {
	dir := t.TempDir()
	oldRows := []ServeAlphaRow{
		{Alpha: 0, P95: 0.010, ThroughputRPS: 1000, BytesSent: 4e6},
		{Alpha: 0.16, P95: 0.005, ThroughputRPS: 2000, BytesSent: 1e6},
	}
	old := writeServeReport(t, dir, "old.json", oldRows)

	// Same numbers: pass.
	same := writeServeReport(t, dir, "same.json", oldRows)
	cs, err := CompareBenchFiles(old, same, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("identical serve reports regressed: %+v", cs)
	}
	if len(cs) != 6 {
		t.Fatalf("expected 3 metrics × 2 rows, got %d comparisons", len(cs))
	}

	// p95 +30% at one α: fail.
	slow := []ServeAlphaRow{
		{Alpha: 0, P95: 0.013, ThroughputRPS: 1000, BytesSent: 4e6},
		{Alpha: 0.16, P95: 0.005, ThroughputRPS: 2000, BytesSent: 1e6},
	}
	cs, err = CompareBenchFiles(old, writeServeReport(t, dir, "slow.json", slow), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("30% p95 regression passed the gate")
	}

	// Throughput -30% at one α: fail.
	weak := []ServeAlphaRow{
		{Alpha: 0, P95: 0.010, ThroughputRPS: 700, BytesSent: 4e6},
		{Alpha: 0.16, P95: 0.005, ThroughputRPS: 2000, BytesSent: 1e6},
	}
	cs, err = CompareBenchFiles(old, writeServeReport(t, dir, "weak.json", weak), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("30% throughput regression passed the gate")
	}

	// Bytes on the wire +50% at one α (a wire-format or caching
	// regression): fail.
	fat := []ServeAlphaRow{
		{Alpha: 0, P95: 0.010, ThroughputRPS: 1000, BytesSent: 6e6},
		{Alpha: 0.16, P95: 0.005, ThroughputRPS: 2000, BytesSent: 1e6},
	}
	cs, err = CompareBenchFiles(old, writeServeReport(t, dir, "fat.json", fat), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("50% bytes-on-wire regression passed the gate")
	}

	// Dropped α row: fail.
	dropped := writeServeReport(t, dir, "dropped.json", oldRows[:1])
	cs, err = CompareBenchFiles(old, dropped, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("dropping an alpha row passed the gate")
	}
}

// TestCompareGateLoadCurve gates the open-loop overload columns and skips
// them only when the baseline predates the load curve entirely.
func TestCompareGateLoadCurve(t *testing.T) {
	dir := t.TempDir()
	alphas := []ServeAlphaRow{{Alpha: 0, P95: 0.010, ThroughputRPS: 1000, BytesSent: 4e6}}
	curve := []ServeLoadRow{
		{OfferedRPS: 500, AchievedRPS: 495, P99: 0.010, ShedRate: 0, DegradedRate: 0},
		{OfferedRPS: 2000, AchievedRPS: 1500, P99: 0.024, ShedRate: 0.2, DegradedRate: 0},
	}
	old := writeServeLoadReport(t, dir, "old.json", alphas, curve)

	// A baseline without the curve skips the new columns (old BENCH files
	// stay comparable), in both directions of asymmetry.
	pre := writeServeReport(t, dir, "pre.json", alphas)
	cs, err := CompareBenchFiles(pre, old, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("pre-load-curve baseline regressed against a curve-bearing report: %+v", cs)
	}

	// Identical curves pass.
	same := writeServeLoadReport(t, dir, "same.json", alphas, curve)
	cs, err = CompareBenchFiles(old, same, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("identical load curves regressed: %+v", cs)
	}

	// p99 +50% at one offered rate: fail.
	slow := []ServeLoadRow{curve[0], curve[1]}
	slow[1].P99 = 0.036
	cs, err = CompareBenchFiles(old, writeServeLoadReport(t, dir, "slow.json", alphas, slow), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("50% open-loop p99 regression passed the gate")
	}

	// Shed rate jumping from 0 to 0.5 (additive tolerance — a zero
	// baseline is meaningful for a rate and must still gate): fail.
	sheddy := []ServeLoadRow{curve[0], curve[1]}
	sheddy[0].ShedRate = 0.5
	cs, err = CompareBenchFiles(old, writeServeLoadReport(t, dir, "sheddy.json", alphas, sheddy), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("shed rate 0 -> 0.5 passed the gate")
	}

	// Small shed-rate drift inside the additive tolerance: pass.
	drift := []ServeLoadRow{curve[0], curve[1]}
	drift[1].ShedRate = 0.3
	cs, err = CompareBenchFiles(old, writeServeLoadReport(t, dir, "drift.json", alphas, drift), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if AnyRegressed(cs) {
		t.Fatalf("shed rate 0.2 -> 0.3 failed a 0.25 additive tolerance: %+v", cs)
	}

	// Dropped offered-rate row: fail.
	cs, err = CompareBenchFiles(old, writeServeLoadReport(t, dir, "dropped.json", alphas, curve[:1]), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !AnyRegressed(cs) {
		t.Fatal("dropping an offered-rate row passed the gate")
	}
}

// TestCompareRejectsMismatchedKinds refuses to gate an epoch report
// against a serve report.
func TestCompareRejectsMismatchedKinds(t *testing.T) {
	dir := t.TempDir()
	e := writeEpochReport(t, dir, "epoch.json", 10)
	s := writeServeReport(t, dir, "serve.json", []ServeAlphaRow{{Alpha: 0, P95: 1, ThroughputRPS: 1, BytesSent: 1}})
	if _, err := CompareBenchFiles(e, s, 0.25); err == nil {
		t.Fatal("mismatched report kinds accepted")
	}
	if _, err := CompareBenchFiles(e, filepath.Join(dir, "missing.json"), 0.25); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := CompareBenchFiles(e, e, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestCompareRejectsZeroBaseline refuses a non-positive baseline metric
// instead of silently disabling the gate for it.
func TestCompareRejectsZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	zero := writeEpochReport(t, dir, "zero.json", 0)
	good := writeEpochReport(t, dir, "good.json", 10)
	if _, err := CompareBenchFiles(zero, good, 0.25); err == nil {
		t.Fatal("zero epoch baseline accepted")
	}
	zs := writeServeReport(t, dir, "zs.json", []ServeAlphaRow{{Alpha: 0, P95: 0, ThroughputRPS: 100, BytesSent: 1e6}})
	gs := writeServeReport(t, dir, "gs.json", []ServeAlphaRow{{Alpha: 0, P95: 0.01, ThroughputRPS: 100, BytesSent: 1e6}})
	if _, err := CompareBenchFiles(zs, gs, 0.25); err == nil {
		t.Fatal("zero serve p95 baseline accepted")
	}
	// A zero metric in the NEW report is a broken measurement, not an
	// infinite improvement.
	if _, err := CompareBenchFiles(gs, zs, 0.25); err == nil {
		t.Fatal("zero serve p95 in the new report accepted")
	}
	if _, err := CompareBenchFiles(good, zero, 0.25); err == nil {
		t.Fatal("zero epoch wall time in the new report accepted")
	}
}

// TestParseAlphas covers the shared CLI alpha-list parser.
func TestParseAlphas(t *testing.T) {
	got, err := ParseAlphas(" 0, 0.08 ,0.32,")
	if err != nil || len(got) != 3 || got[0] != 0 || got[1] != 0.08 || got[2] != 0.32 {
		t.Fatalf("ParseAlphas: %v, %v", got, err)
	}
	if _, err := ParseAlphas("0,-0.1"); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := ParseAlphas("0,x"); err == nil {
		t.Fatal("garbage alpha accepted")
	}
}
