package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestHotPathsReport(t *testing.T) {
	scale := SmallScale()
	scale.PapersN = 5000
	res, err := HotPaths(scale, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0].Workers != 1 || res.Rows[0].VIPSpeedup != 1 || res.Rows[0].SampleSpeedup != 1 {
		t.Fatalf("baseline row malformed: %+v", res.Rows[0])
	}
	for _, row := range res.Rows {
		if row.VIPSeconds <= 0 || row.SampleSeconds <= 0 || row.VIPSpeedup <= 0 || row.SampleSpeedup <= 0 {
			t.Fatalf("non-positive measurement: %+v", row)
		}
	}
	if res.Batches <= 0 || res.Vertices != 5000 {
		t.Fatalf("metadata malformed: %+v", res)
	}
	if RenderHotPaths(res) == "" {
		t.Fatal("empty rendering")
	}

	path := filepath.Join(t.TempDir(), "BENCH_sample_vip.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back HotPathsResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || back.Dataset != res.Dataset {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
