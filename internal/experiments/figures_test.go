package experiments

import (
	"strings"
	"testing"
)

func TestFig4Shapes(t *testing.T) {
	rows, err := Fig4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		// Paper ordering: partitioned (sequential) slowest; each
		// optimization helps; everything positive.
		if !(r.Sequential > r.Pipelined) {
			t.Fatalf("%s: pipelining did not help (%.4f vs %.4f)", r.Dataset, r.Sequential, r.Pipelined)
		}
		if !(r.Pipelined >= r.Cached) {
			t.Fatalf("%s: caching hurt (%.4f vs %.4f)", r.Dataset, r.Pipelined, r.Cached)
		}
		if r.Cached <= 0 {
			t.Fatalf("%s: non-positive epoch time", r.Dataset)
		}
	}
	if !strings.Contains(RenderFig4(rows), "papers-sim") {
		t.Fatal("render broken")
	}
}

func TestFig5Shapes(t *testing.T) {
	rows, err := Fig5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows=%d want 12 (3 datasets x 4 K)", len(rows))
	}
	// Scaling: for each dataset, K=16 must beat K=2; memory multiple is
	// 1+α and never exceeds 1.32 (vs full replication's K).
	byDS := map[string]map[int]Fig5Row{}
	for _, r := range rows {
		if byDS[r.Dataset] == nil {
			byDS[r.Dataset] = map[int]Fig5Row{}
		}
		byDS[r.Dataset][r.K] = r
		if r.MemoryMultiple != 1+r.Alpha {
			t.Fatalf("memory multiple %v != 1+α", r.MemoryMultiple)
		}
		if r.MemoryMultiple > 1.32 {
			t.Fatalf("memory multiple %v implausible", r.MemoryMultiple)
		}
	}
	for name, ks := range byDS {
		if !(ks[16].EpochSeconds < ks[2].EpochSeconds) {
			t.Fatalf("%s: no speedup 2->16 (%.4f vs %.4f)", name, ks[2].EpochSeconds, ks[16].EpochSeconds)
		}
	}
	if !strings.Contains(RenderFig5(rows), "memory") {
		t.Fatal("render broken")
	}
}

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	var noReorder, vipReorder []Fig6Row
	for _, r := range rows {
		if r.VIPReorder {
			vipReorder = append(vipReorder, r)
		} else {
			noReorder = append(noReorder, r)
		}
	}
	// β=100% must not be slower than β=0 for either ordering, and the VIP
	// ordering at low β must not be worse than no-reorder at the same β.
	if noReorder[len(noReorder)-1].EpochSeconds > noReorder[0].EpochSeconds+1e-9 {
		t.Fatalf("no-reorder: more GPU residency slowed things down")
	}
	if vipReorder[1].EpochSeconds > noReorder[1].EpochSeconds+1e-9 {
		t.Fatalf("VIP reorder worse than no reorder at low β: %.5f vs %.5f",
			vipReorder[1].EpochSeconds, noReorder[1].EpochSeconds)
	}
	if !strings.Contains(RenderFig6(rows), "VIP reorder") {
		t.Fatal("render broken")
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Epoch time is non-increasing in α for every (dataset, K) series.
	type key struct {
		ds string
		k  int
	}
	last := map[key]float64{}
	for _, r := range rows {
		kk := key{r.Dataset, r.K}
		if prev, ok := last[kk]; ok && r.EpochSeconds > prev*1.05 {
			t.Fatalf("%s K=%d: epoch grew with α (%.5f -> %.5f)", r.Dataset, r.K, prev, r.EpochSeconds)
		}
		last[kk] = r.EpochSeconds
	}
	if !strings.Contains(RenderFig7(rows), "replication") {
		t.Fatal("render broken")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows, err := Fig9(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// 4 Gbps is never faster than 8 Gbps for the same configuration, and
	// within a series epoch time falls with α.
	type key struct {
		ds     string
		policy string
		alpha  float64
	}
	at := map[key]map[float64]float64{}
	for _, r := range rows {
		kk := key{r.Dataset, r.Policy, r.Alpha}
		if at[kk] == nil {
			at[kk] = map[float64]float64{}
		}
		at[kk][r.NetGbps] = r.EpochSeconds
	}
	for kk, nets := range at {
		if nets[4] < nets[8]-1e-9 {
			t.Fatalf("%v: 4 Gbps faster than 8 Gbps (%.5f vs %.5f)", kk, nets[4], nets[8])
		}
	}
	if !strings.Contains(RenderFig9(rows), "Gbps") {
		t.Fatal("render broken")
	}
}

func TestAblationVIPPartitionRuns(t *testing.T) {
	scale := SmallScale()
	ds, err := scale.makeDataset("papers-sim")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AblationVIPPartition(ds, 4, scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineRemote <= 0 || res.VIPWeightedRemote <= 0 {
		t.Fatalf("degenerate ablation volumes: %+v", res)
	}
}
