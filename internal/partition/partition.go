// Package partition implements a from-scratch multilevel K-way edge-cut
// graph partitioner in the style of METIS (Karypis & Kumar 1997), which the
// paper uses to distribute vertex features across machines.
//
// Like the paper's METIS configuration, the partitioner supports
// multi-constraint balancing: each vertex carries a vector of weights (for
// SALIENT++: unit, is-train, is-val, is-test, degree) and every partition
// must stay within (1+ε) of the per-constraint average. The objective is
// minimum edge cut subject to those constraints.
//
// The classic three phases are implemented:
//
//  1. Coarsening by heavy-edge matching until the graph is small.
//  2. Greedy region-growing initial partitioning on the coarsest graph.
//  3. Uncoarsening with FM-style boundary refinement at every level.
package partition

import (
	"fmt"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

// Config controls partitioning.
type Config struct {
	// K is the number of partitions (machines).
	K int
	// ImbalanceTolerance ε allows each partition's weight, per constraint,
	// to reach (1+ε)·(total/K). Defaults to 0.10 when zero.
	ImbalanceTolerance float64
	// Weights holds per-constraint vertex weights: Weights[c][v]. When nil
	// a single unit constraint (vertex-count balance) is used. Constraints
	// with zero total weight are ignored.
	Weights [][]float32
	// Seed drives matching and tie-breaking randomness.
	Seed uint64
	// CoarsestVerticesPerPart stops coarsening when the graph has at most
	// K·CoarsestVerticesPerPart vertices. Defaults to 64 when zero.
	CoarsestVerticesPerPart int
	// MaxRefinePasses bounds FM passes per level. Defaults to 8 when zero.
	MaxRefinePasses int
}

func (c Config) withDefaults() Config {
	if c.ImbalanceTolerance == 0 {
		c.ImbalanceTolerance = 0.10
	}
	if c.CoarsestVerticesPerPart == 0 {
		c.CoarsestVerticesPerPart = 64
	}
	if c.MaxRefinePasses == 0 {
		c.MaxRefinePasses = 8
	}
	return c
}

// Result is a K-way partition of the input graph.
type Result struct {
	// Parts[v] in [0, K) is the partition of vertex v.
	Parts []int32
	// K is the number of partitions.
	K int
	// EdgeCut is the number of stored directed edges whose endpoints lie in
	// different partitions, divided by two (i.e., undirected cut edges) —
	// the quantity METIS reports.
	EdgeCut int64
	// Imbalance[c] is max over partitions of (partition weight / ideal
	// weight) for constraint c; 1.0 is perfect balance.
	Imbalance []float64
}

// Partition computes a K-way partition of g under cfg.
func Partition(g *graph.CSR, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("partition: K must be positive, got %d", cfg.K)
	}
	if cfg.K > n && n > 0 {
		return nil, fmt.Errorf("partition: K=%d exceeds vertex count %d", cfg.K, n)
	}
	for c, w := range cfg.Weights {
		if len(w) != n {
			return nil, fmt.Errorf("partition: constraint %d has %d weights for %d vertices", c, len(w), n)
		}
	}

	if cfg.K == 1 {
		parts := make([]int32, n)
		return summarize(g, parts, 1, cfg.Weights), nil
	}

	w := fromCSR(g, cfg.Weights)
	r := rng.New(cfg.Seed)

	// Phase 1: coarsen.
	levels := []*wgraph{w}
	target := cfg.K * cfg.CoarsestVerticesPerPart
	for levels[len(levels)-1].n() > target {
		cur := levels[len(levels)-1]
		next := coarsen(cur, r)
		// Stop if matching stalls (e.g., star graphs where everything is
		// already matched to the hub).
		if next.n() >= cur.n()*95/100 {
			break
		}
		levels = append(levels, next)
	}

	// Phase 2: initial partition on the coarsest level.
	coarsest := levels[len(levels)-1]
	parts := initialPartition(coarsest, cfg.K, cfg.ImbalanceTolerance, r)
	refine(coarsest, parts, cfg.K, cfg.ImbalanceTolerance, cfg.MaxRefinePasses, r)

	// Phase 3: project back and refine at each level.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		fineParts := make([]int32, fine.n())
		for v := range fineParts {
			fineParts[v] = parts[fine.coarseMap[v]]
		}
		parts = fineParts
		refine(fine, parts, cfg.K, cfg.ImbalanceTolerance, cfg.MaxRefinePasses, r)
	}

	return summarize(g, parts, cfg.K, cfg.Weights), nil
}

// Random assigns vertices to K partitions uniformly at random — the
// baseline against which multilevel partitioning is compared in tests and
// ablation benchmarks.
func Random(g *graph.CSR, k int, seed uint64) *Result {
	n := g.NumVertices()
	r := rng.New(seed)
	parts := make([]int32, n)
	for v := range parts {
		parts[v] = int32(r.Intn(k))
	}
	return summarize(g, parts, k, nil)
}

// summarize computes cut and imbalance metrics for a finished assignment.
func summarize(g *graph.CSR, parts []int32, k int, weights [][]float32) *Result {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		pv := parts[v]
		for _, u := range g.Neighbors(int32(v)) {
			if parts[u] != pv {
				cut++
			}
		}
	}
	res := &Result{Parts: parts, K: k, EdgeCut: cut / 2}
	cons := weights
	if cons == nil {
		unit := make([]float32, g.NumVertices())
		for i := range unit {
			unit[i] = 1
		}
		cons = [][]float32{unit}
	}
	for _, w := range cons {
		var total float64
		perPart := make([]float64, k)
		for v, wv := range w {
			total += float64(wv)
			perPart[parts[v]] += float64(wv)
		}
		if total == 0 {
			res.Imbalance = append(res.Imbalance, 1)
			continue
		}
		ideal := total / float64(k)
		worst := 0.0
		for _, pw := range perPart {
			if r := pw / ideal; r > worst {
				worst = r
			}
		}
		res.Imbalance = append(res.Imbalance, worst)
	}
	return res
}

// PartSizes returns the number of vertices per partition.
func (r *Result) PartSizes() []int {
	sizes := make([]int, r.K)
	for _, p := range r.Parts {
		sizes[p]++
	}
	return sizes
}

// CutFraction returns EdgeCut divided by the number of undirected edges.
func (r *Result) CutFraction(g *graph.CSR) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(r.EdgeCut) / (float64(g.NumEdges()) / 2)
}

// SalientWeights builds the multi-constraint weight vectors the paper uses
// with METIS: balance the number of training, validation, and overall
// vertices, plus the total number of edges, per partition. (Test-vertex
// balance is implied by overall+train+val at the paper's split fractions;
// we include it explicitly for datasets with sparse splits.)
func SalientWeights(g *graph.CSR, isTrain, isVal, isTest []bool) [][]float32 {
	n := g.NumVertices()
	unit := make([]float32, n)
	train := make([]float32, n)
	val := make([]float32, n)
	test := make([]float32, n)
	deg := make([]float32, n)
	for v := 0; v < n; v++ {
		unit[v] = 1
		if isTrain != nil && isTrain[v] {
			train[v] = 1
		}
		if isVal != nil && isVal[v] {
			val[v] = 1
		}
		if isTest != nil && isTest[v] {
			test[v] = 1
		}
		deg[v] = float32(g.Degree(int32(v)))
	}
	return [][]float32{unit, train, val, test, deg}
}
