package partition

import "salientpp/internal/rng"

// coarsen contracts w by heavy-edge matching: each vertex is matched with
// the unmatched neighbor connected by the heaviest edge, and matched pairs
// merge into one coarse vertex. The coarseMap field of w is populated.
func coarsen(w *wgraph, r *rng.RNG) *wgraph {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}

	// Random visit order decorrelates matchings across levels.
	order := r.Perm(n)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		nbrs, wgts := w.neighbors(v)
		best := int32(-1)
		bestW := float32(-1)
		for i, u := range nbrs {
			if u == v || match[u] >= 0 {
				continue
			}
			if wgts[i] > bestW {
				best, bestW = u, wgts[i]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v // matched with itself
		}
	}

	// Assign coarse ids: the lower-id endpoint of each pair owns the id.
	coarseMap := make([]int32, n)
	nc := int32(0)
	for v := 0; v < n; v++ {
		u := match[v]
		if int32(v) <= u {
			coarseMap[v] = nc
			if int(u) != v {
				coarseMap[u] = nc
			}
			nc++
		}
	}
	w.coarseMap = coarseMap

	// Contract: vertex weights add; parallel edges collapse with summed
	// weights; internal (pair) edges disappear.
	coarse := &wgraph{vwgt: make([][]float32, len(w.vwgt))}
	for c := range w.vwgt {
		cw := make([]float32, nc)
		for v, x := range w.vwgt[c] {
			cw[coarseMap[v]] += x
		}
		coarse.vwgt[c] = cw
	}

	// Two-pass CSR build using a timestamped scratch accumulator.
	members := make([][2]int32, nc) // up to two fine members per coarse vertex
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := 0; v < n; v++ {
		cv := coarseMap[v]
		if members[cv][0] < 0 {
			members[cv][0] = int32(v)
		} else {
			members[cv][1] = int32(v)
		}
	}

	acc := make([]float32, nc)  // accumulated edge weight to coarse neighbor
	stamp := make([]int32, nc)  // last coarse vertex that touched acc
	touched := make([]int32, 0) // coarse neighbors touched this round
	for i := range stamp {
		stamp[i] = -1
	}

	offsets := make([]int64, nc+1)
	var adj []int32
	var ewgt []float32
	for cv := int32(0); cv < nc; cv++ {
		touched = touched[:0]
		for _, fv := range members[cv] {
			if fv < 0 {
				continue
			}
			nbrs, wgts := w.neighbors(fv)
			for i, u := range nbrs {
				cu := coarseMap[u]
				if cu == cv {
					continue
				}
				if stamp[cu] != cv {
					stamp[cu] = cv
					acc[cu] = 0
					touched = append(touched, cu)
				}
				acc[cu] += wgts[i]
			}
		}
		for _, cu := range touched {
			adj = append(adj, cu)
			ewgt = append(ewgt, acc[cu])
		}
		offsets[cv+1] = int64(len(adj))
	}
	coarse.offsets = offsets
	coarse.adj = adj
	coarse.ewgt = ewgt
	return coarse
}
