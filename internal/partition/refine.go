package partition

import "salientpp/internal/rng"

// refine performs FM-style boundary refinement: vertices move to a
// neighboring partition when doing so reduces the edge cut without
// violating balance, or when it strictly reduces constraint overflow
// (restoring feasibility after projection from a coarser level).
//
// Every accepted move strictly decreases the pair (total overflow, cut) in
// lexicographic order, so each pass terminates; passes stop early when no
// move is accepted.
func refine(w *wgraph, parts []int32, k int, eps float64, maxPasses int, r *rng.RNG) {
	n := w.n()
	nc := len(w.vwgt)
	totals := w.totals()

	caps := make([]float64, nc)
	for c := range caps {
		caps[c] = (1 + eps) * totals[c] / float64(k)
	}

	loads := make([][]float64, nc)
	for c := range loads {
		loads[c] = make([]float64, k)
		for v := 0; v < n; v++ {
			loads[c][parts[v]] += float64(w.vwgt[c][v])
		}
	}
	counts := make([]int, k)
	for v := 0; v < n; v++ {
		counts[parts[v]]++
	}

	// overflowDelta returns the change in total overflow if v moves
	// src→dst.
	overflowDelta := func(v int32, src, dst int32) float64 {
		var delta float64
		for c := 0; c < nc; c++ {
			wv := float64(w.vwgt[c][v])
			if wv == 0 {
				continue
			}
			before := over(loads[c][src], caps[c]) + over(loads[c][dst], caps[c])
			after := over(loads[c][src]-wv, caps[c]) + over(loads[c][dst]+wv, caps[c])
			delta += after - before
		}
		return delta
	}

	conn := make([]float32, k)
	stamp := make([]int, k)
	for i := range stamp {
		stamp[i] = -1
	}

	for pass := 0; pass < maxPasses; pass++ {
		moves := 0
		order := r.Perm(n)
		for _, v := range order {
			src := parts[v]
			if counts[src] <= 1 {
				continue // never empty a partition
			}
			nbrs, wgts := w.neighbors(v)
			// Gather connection weight to each adjacent partition.
			round := int(v) + pass*n // unique stamp per (pass, vertex)
			boundary := false
			for i, u := range nbrs {
				p := parts[u]
				if stamp[p] != round {
					stamp[p] = round
					conn[p] = 0
				}
				conn[p] += wgts[i]
				if p != src {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			srcConn := float32(0)
			if stamp[src] == round {
				srcConn = conn[src]
			}
			// Pick the destination with the best (gain, -overflowDelta).
			bestDst := int32(-1)
			bestGain := float32(0)
			bestOD := 0.0
			for i := range nbrs {
				p := parts[nbrs[i]]
				if p == src || stamp[p] != round {
					continue
				}
				gain := conn[p] - srcConn
				od := overflowDelta(v, src, p)
				accept := (gain > 0 && od <= 0) || od < 0
				if !accept {
					continue
				}
				better := bestDst < 0 || gain > bestGain || (gain == bestGain && od < bestOD)
				if better {
					bestDst, bestGain, bestOD = p, gain, od
				}
			}
			if bestDst < 0 {
				continue
			}
			// Commit the move.
			for c := 0; c < nc; c++ {
				wv := float64(w.vwgt[c][v])
				loads[c][src] -= wv
				loads[c][bestDst] += wv
			}
			counts[src]--
			counts[bestDst]++
			parts[v] = bestDst
			moves++
		}
		if moves == 0 {
			break
		}
	}
}

func over(load, cap float64) float64 {
	if load > cap {
		return load - cap
	}
	return 0
}
