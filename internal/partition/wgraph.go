package partition

import "salientpp/internal/graph"

// wgraph is the weighted working graph used by the multilevel hierarchy.
// Edge weights count collapsed fine edges; vertex weights accumulate
// per-constraint fine-vertex weights.
type wgraph struct {
	offsets []int64
	adj     []int32
	ewgt    []float32
	// vwgt[c][v] is the weight of vertex v under constraint c.
	vwgt [][]float32
	// coarseMap maps this (finer) graph's vertices to the next coarser
	// graph's vertices. Nil on the coarsest level.
	coarseMap []int32
}

func (w *wgraph) n() int { return len(w.offsets) - 1 }

func (w *wgraph) degree(v int32) int { return int(w.offsets[v+1] - w.offsets[v]) }

func (w *wgraph) neighbors(v int32) ([]int32, []float32) {
	lo, hi := w.offsets[v], w.offsets[v+1]
	return w.adj[lo:hi], w.ewgt[lo:hi]
}

// fromCSR wraps a CSR graph with unit edge weights and the given (or unit)
// vertex weight constraints.
func fromCSR(g *graph.CSR, weights [][]float32) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		offsets: g.Offsets,
		adj:     g.Adj,
		ewgt:    make([]float32, len(g.Adj)),
	}
	for i := range w.ewgt {
		w.ewgt[i] = 1
	}
	if len(weights) == 0 {
		unit := make([]float32, n)
		for i := range unit {
			unit[i] = 1
		}
		w.vwgt = [][]float32{unit}
		return w
	}
	w.vwgt = make([][]float32, 0, len(weights))
	for _, c := range weights {
		// Skip all-zero constraints: they cannot be balanced and would
		// divide by zero downstream.
		var tot float64
		for _, x := range c {
			tot += float64(x)
		}
		if tot > 0 {
			w.vwgt = append(w.vwgt, c)
		}
	}
	if len(w.vwgt) == 0 {
		unit := make([]float32, n)
		for i := range unit {
			unit[i] = 1
		}
		w.vwgt = [][]float32{unit}
	}
	return w
}

// totals returns the per-constraint total weights.
func (w *wgraph) totals() []float64 {
	t := make([]float64, len(w.vwgt))
	for c, ws := range w.vwgt {
		for _, x := range ws {
			t[c] += float64(x)
		}
	}
	return t
}
