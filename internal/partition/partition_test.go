package partition

import (
	"testing"
	"testing/quick"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

func TestPartitionBasicValidity(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(2000, 12000, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Partition(g, Config{K: k, Seed: 7})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(res.Parts) != g.NumVertices() {
			t.Fatalf("K=%d: wrong parts length", k)
		}
		sizes := res.PartSizes()
		if len(sizes) != k {
			t.Fatalf("K=%d: %d sizes", k, len(sizes))
		}
		for p, s := range sizes {
			if s == 0 {
				t.Fatalf("K=%d: partition %d empty", k, p)
			}
		}
		for _, pv := range res.Parts {
			if pv < 0 || int(pv) >= k {
				t.Fatalf("K=%d: partition id %d out of range", k, pv)
			}
		}
	}
}

func TestPartitionBeatsRandomCut(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(4000, 24000, 3))
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Partition(g, Config{K: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rnd := Random(g, 8, 5)
	if ml.EdgeCut >= rnd.EdgeCut {
		t.Fatalf("multilevel cut %d not better than random cut %d", ml.EdgeCut, rnd.EdgeCut)
	}
	// On a community-structured graph the improvement should be material.
	if float64(ml.EdgeCut) > 0.8*float64(rnd.EdgeCut) {
		t.Fatalf("multilevel cut %d barely better than random %d", ml.EdgeCut, rnd.EdgeCut)
	}
}

func TestPartitionGridIsNearOptimal(t *testing.T) {
	// A 32x32 grid split into 2 parts has an optimal cut of 32; accept a
	// small constant factor over that.
	g, err := graph.Grid2D(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut > 3*32 {
		t.Fatalf("grid cut %d too far above optimal 32", res.EdgeCut)
	}
	if res.Imbalance[0] > 1.11 {
		t.Fatalf("grid imbalance %.3f exceeds tolerance", res.Imbalance[0])
	}
}

func TestPartitionBalance(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(3000, 15000, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Config{K: 4, ImbalanceTolerance: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance[0] > 1.25 {
		t.Fatalf("imbalance %.3f far above tolerance 1.1", res.Imbalance[0])
	}
}

func TestPartitionMultiConstraint(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(3000, 18000, 13))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	// Mark ~10% of vertices as "training" clustered at the low ids (the
	// hub-heavy RMAT region) so unconstrained partitioning would be free to
	// clump them.
	isTrain := make([]bool, n)
	for v := 0; v < n/10; v++ {
		isTrain[v] = true
	}
	weights := SalientWeights(g, isTrain, nil, nil)
	res, err := Partition(g, Config{K: 4, Weights: weights, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Constraint 1 is the training balance.
	trainPerPart := make([]int, 4)
	for v := 0; v < n; v++ {
		if isTrain[v] {
			trainPerPart[res.Parts[v]]++
		}
	}
	ideal := float64(n/10) / 4
	for p, c := range trainPerPart {
		if float64(c) > 1.5*ideal {
			t.Fatalf("partition %d holds %d training vertices (ideal %.0f)", p, c, ideal)
		}
		if c == 0 {
			t.Fatalf("partition %d holds no training vertices", p)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g, _ := graph.Ring(10)
	if _, err := Partition(g, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Partition(g, Config{K: 11}); err == nil {
		t.Fatal("expected error for K>N")
	}
	if _, err := Partition(g, Config{K: 2, Weights: [][]float32{make([]float32, 3)}}); err == nil {
		t.Fatal("expected error for wrong weight length")
	}
}

func TestPartitionK1(t *testing.T) {
	g, _ := graph.Ring(10)
	res, err := Partition(g, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Fatalf("K=1 cut %d", res.EdgeCut)
	}
}

func TestPartitionDeterminism(t *testing.T) {
	g, err := graph.RMAT(graph.DefaultRMAT(1500, 9000, 17))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(g, Config{K: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Config{K: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestPartitionStarGraph(t *testing.T) {
	// Star graphs stall heavy-edge matching (hub matches one leaf);
	// partitioning must still terminate and produce a valid result.
	g, err := graph.Star(500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.PartSizes()
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("partition %d empty on star graph", p)
		}
	}
}

func TestCutFraction(t *testing.T) {
	g, _ := graph.Grid2D(16, 16)
	res, err := Partition(g, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cf := res.CutFraction(g)
	if cf <= 0 || cf > 0.5 {
		t.Fatalf("cut fraction %.3f implausible", cf)
	}
}

func TestRandomPartitionCoversAllParts(t *testing.T) {
	g, _ := graph.Ring(1000)
	res := Random(g, 8, 3)
	for p, s := range res.PartSizes() {
		if s == 0 {
			t.Fatalf("random partition %d empty", p)
		}
	}
}

// Property: the partitioner always produces a complete assignment with all
// partitions nonempty on connected graphs of moderate size.
func TestPartitionAlwaysValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64 + r.Intn(400)
		g, err := graph.RMAT(graph.DefaultRMAT(n, int64(6*n), seed))
		if err != nil {
			return false
		}
		k := 2 + r.Intn(4)
		res, err := Partition(g, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		seen := make([]bool, k)
		for _, p := range res.Parts {
			if p < 0 || int(p) >= k {
				return false
			}
			seen[p] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
