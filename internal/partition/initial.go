package partition

import "salientpp/internal/rng"

// initialPartition produces a K-way assignment on the coarsest graph by
// greedy region growing: each region starts from a seed and repeatedly
// absorbs the frontier vertex with the strongest connection to the region
// until it reaches its share of *any* constraint (multi-constraint-aware
// growth, so that e.g. training vertices do not pile into one region).
// Leftover vertices go to the least-loaded partition by worst-constraint
// load. The coarsest graph is small (≈ K·64 vertices) so the O(n·K + n·d)
// costs here are irrelevant.
func initialPartition(w *wgraph, k int, eps float64, r *rng.RNG) []int32 {
	n := w.n()
	parts := make([]int32, n)
	for i := range parts {
		parts[i] = -1
	}
	totals := w.totals()
	nc := len(w.vwgt)
	targets := make([]float64, nc)
	for c := range targets {
		targets[c] = totals[c] / float64(k)
		if targets[c] == 0 {
			targets[c] = 1 // inert constraint
		}
	}

	// region loads per constraint for the region currently growing.
	region := make([]float64, nc)
	// full reports whether the region reached its share of any constraint.
	full := func() bool {
		for c := 0; c < nc; c++ {
			if region[c] >= targets[c] {
				return true
			}
		}
		return false
	}

	assigned := 0
	for p := int32(0); p < int32(k-1) && assigned < n; p++ {
		seed := int32(-1)
		offset := r.Intn(n)
		for i := 0; i < n; i++ {
			v := int32((i + offset) % n)
			if parts[v] < 0 {
				seed = v
				break
			}
		}
		if seed < 0 {
			break
		}
		for c := range region {
			region[c] = 0
		}
		conn := make(map[int32]float32)
		grow := func(v int32) {
			parts[v] = p
			assigned++
			for c := 0; c < nc; c++ {
				region[c] += float64(w.vwgt[c][v])
			}
			delete(conn, v)
			nbrs, wgts := w.neighbors(v)
			for i, u := range nbrs {
				if parts[u] < 0 {
					conn[u] += wgts[i]
				}
			}
		}
		grow(seed)
		for !full() && assigned < n {
			best := int32(-1)
			bestW := float32(-1)
			for u, cw := range conn {
				if cw > bestW || (cw == bestW && u < best) {
					best, bestW = u, cw
				}
			}
			if best < 0 {
				// Disconnected frontier: jump to any unassigned vertex.
				for i := 0; i < n; i++ {
					v := int32((i + offset) % n)
					if parts[v] < 0 {
						best = v
						break
					}
				}
				if best < 0 {
					break
				}
			}
			grow(best)
		}
	}

	// Remaining vertices join the partition with the lowest worst-case
	// relative load, considering all constraints.
	loads := make([][]float64, nc)
	for c := range loads {
		loads[c] = make([]float64, k)
	}
	for v := 0; v < n; v++ {
		if parts[v] >= 0 {
			for c := 0; c < nc; c++ {
				loads[c][parts[v]] += float64(w.vwgt[c][v])
			}
		}
	}
	worst := func(p int, v int32) float64 {
		m := 0.0
		for c := 0; c < nc; c++ {
			l := (loads[c][p] + float64(w.vwgt[c][v])) / targets[c]
			if l > m {
				m = l
			}
		}
		return m
	}
	for v := 0; v < n; v++ {
		if parts[v] >= 0 {
			continue
		}
		best := 0
		bestLoad := worst(0, int32(v))
		for p := 1; p < k; p++ {
			if l := worst(p, int32(v)); l < bestLoad {
				best, bestLoad = p, l
			}
		}
		parts[v] = int32(best)
		for c := 0; c < nc; c++ {
			loads[c][best] += float64(w.vwgt[c][v])
		}
	}
	return parts
}
