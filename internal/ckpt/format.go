// Package ckpt implements fault-tolerant training for the SALIENT++
// reproduction: a versioned, CRC-checked binary checkpoint format covering
// the *complete* training state — model parameters and Adam moments,
// per-rank dropout RNG streams, the epoch/round cursor with the partially
// accumulated epoch statistics, and the partition topology (vertex
// permutation, layout, partition assignment, and per-rank cache contents,
// i.e. the truncated VIP rankings) so a restore skips partitioning and VIP
// re-analysis entirely.
//
// The headline guarantee, enforced by the pipeline's crash-recovery tests,
// is bitwise-identical resume: kill a rank at an arbitrary batch, restore
// from the latest checkpoint, and the final weights, per-epoch loss
// trajectory, and remote-fetch counts match the uninterrupted same-seed
// run exactly, on both the in-process and loopback-TCP transports.
//
// File layout (little-endian throughout):
//
//	magic "SPCK" u32 | version u32
//	section*        — header, topology, then one rank section per rank
//
// Each section is framed as
//
//	tag u32 | payloadLen u64 | payload | crc32c(payload) u32
//
// so corruption anywhere is detected before any of the payload is
// interpreted. Decode never panics on corrupt input: every array length is
// bounded by the bytes actually present (allocation grows incrementally
// while reading, so a lying length field cannot force a huge allocation),
// and every read is bounds-checked.
package ckpt

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	magic uint32 = 0x4b435053 // "SPCK" little-endian
	// version is the format written. v2 added the wire-codec identity to
	// the header; v3 added the compute-precision identity and the
	// per-stage compute attribution (aggregate/transform/backward) to the
	// partial-epoch statistics; v4 added the gradient-codec identity,
	// per-parameter error-feedback residuals, and gradient
	// synchronization accounting to the partial-epoch statistics; v5
	// added the optional cache-state section recording the online cache
	// layer's installed epochs (policy name, per-rank generation and
	// membership).
	version uint32 = 5
	// minVersion is the oldest format Decode still reads: v1 files lack
	// the header codec string and decode with the "fp32" default — every
	// v1 run trained under the only wire format that existed then. v2
	// files likewise lack the precision string and stage timers; they
	// decode with precision "fp32" and zero stage attribution. v3 files
	// lack the gradient codec and residuals; they decode with gradient
	// codec "fp32" (the only one that existed) and empty residuals. v4
	// files lack the cache-state section; they decode with a nil
	// CacheState — the static-prefix default, which is exactly how every
	// v≤4 run cached.
	minVersion uint32 = 1

	tagHeader     uint32 = 1
	tagTopology   uint32 = 2
	tagRank       uint32 = 3
	tagCacheState uint32 = 4

	// maxSection bounds a single section payload; anything larger is
	// treated as corruption rather than allocated.
	maxSection = 1 << 31
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Step identifies a barrier-consistent checkpoint position: Round rounds of
// Epoch have been fully retired on every rank (Round 0 means the epoch
// boundary — the previous epoch completed, Epoch has not started).
type Step struct {
	Epoch int
	Round int
}

// Less orders steps chronologically.
func (s Step) Less(o Step) bool {
	if s.Epoch != o.Epoch {
		return s.Epoch < o.Epoch
	}
	return s.Round < o.Round
}

// PartialEpoch is the portion of one rank's epoch statistics accumulated up
// to the checkpoint cursor. Restoring it bitwise (the float64 sums are
// stored as raw IEEE-754 bits) is what makes the resumed epoch's reported
// loss identical to the uninterrupted run's.
type PartialEpoch struct {
	Loss     float64
	Accuracy float64
	Batches  int64 // real (non-padding) batches retired so far
	LocalGPU int64
	LocalCPU int64
	CacheHit int64
	Remote   int64
	// BytesSent is the feature-communication byte counter at the cursor.
	// Unlike the counts above it includes collectives of in-flight rounds
	// beyond the cursor, so resumed byte totals are approximate (see the
	// pipeline docs); it is restored for reporting, not for equivalence.
	BytesSent int64
	SampleNS  int64
	GatherNS  int64
	ComputeNS int64
	// Stage attribution of ComputeNS (v3+): neighbor aggregation, dense
	// transform (GEMMs + activations), and the backward pass. Their sum is
	// slightly below ComputeNS — loss and the optimizer step are only in
	// the total. Zero when decoded from v1/v2 files.
	AggregateNS int64
	TransformNS int64
	BackwardNS  int64
	// Gradient-synchronization accounting (v4+): the gradient all-reduce
	// byte counter at the cursor (approximate after a resume, like
	// BytesSent), the cumulative wall time inside gradient reduces, and
	// the part of it the training loop actually blocked on. Zero when
	// decoded from older files.
	GradBytesSent int64
	GradReduceNS  int64
	GradWaitNS    int64
}

// ParamState is one parameter tensor's full optimizer state: value, Adam
// first/second moments, and (v4+, lossy gradient codecs only) the
// error-feedback residual of the compressed all-reduce — all float32,
// flattened row-major. EF is empty for fp32-gradient runs and files older
// than v4.
type ParamState struct {
	Rows, Cols int32
	W, M, V    []float32
	EF         []float32
}

// RankState is everything one rank needs to resume mid-epoch bitwise
// identically: parameters with optimizer state, the Adam step counter, the
// dropout RNG stream, and the partially accumulated epoch statistics.
type RankState struct {
	Params   []ParamState
	AdamStep int64
	ModelRNG [4]uint64
	Partial  PartialEpoch
}

// Topology pins the data layout of a run so restore skips re-analysis:
// the original→reordered vertex permutation, the contiguous partition
// layout, the per-vertex partition assignment, and each rank's cached
// remote vertex ids (the VIP ranking truncated to the cache capacity), in
// cache-slot order.
type Topology struct {
	NumVertices int64
	FeatureDim  int32
	K           int32
	Perm        []int32
	Starts      []int64
	Parts       []int32
	CacheIDs    [][]int32
}

// CacheState records the online cache layer's installed epochs at the
// checkpoint barrier: the policy name and, per rank, the installed epoch
// generation and the cache membership in slot order. A nil CacheState (all
// files older than v5, and every run under the default static policy)
// means the cache is the static setup prefix in Topology.CacheIDs — the
// v≤4 behavior, unchanged.
//
// Only membership is persisted, not the policy's scorer state: a resumed
// online run re-warms its frequency statistics from live traffic, so its
// later installs may differ from the uninterrupted run's. The restored
// epoch itself (membership and generation) is exact.
type CacheState struct {
	Policy string
	Gens   []uint64
	IDs    [][]int32
}

// TrainState is a complete coordinated checkpoint.
type TrainState struct {
	Step   Step
	Rounds int // collective rounds per epoch (validated on resume)
	// Dataset names the generated dataset the run trained on; Seed,
	// BatchSize, and Fanouts pin the run structure the cursor was taken
	// under (they determine the batch permutation and per-batch sampling
	// streams). A resume with any of them drifted would silently train
	// against the wrong data or replay different batches, so restore
	// validates all four; the dataset seed equals Seed in every shipped
	// flow, so (Dataset, NumVertices, Seed) fully determine regeneration.
	Dataset   string
	Seed      uint64
	BatchSize int32
	Fanouts   []int32
	// Codec names the feature-gather wire codec ("fp32", "fp16", "int8")
	// the run trained under. A lossy codec perturbs every gathered remote
	// row, so resuming under a different codec would silently diverge from
	// the checkpointed trajectory; restore validates it like the seed.
	Codec string
	// Precision names the compute backend precision ("fp32", "int8") the
	// run executed under. Reduced-precision kernels round every GEMM, so
	// it is run identity exactly like Codec; restore validates it. v1/v2
	// files decode as "fp32", the only precision that existed then.
	Precision string
	// GradCodec names the gradient all-reduce wire codec ("fp32", "fp16",
	// "int8") the run trained under. A lossy gradient codec perturbs
	// every optimizer step and carries error-feedback residual state, so
	// it is run identity exactly like Codec; restore validates it. Files
	// older than v4 decode as "fp32".
	GradCodec string
	Topo      *Topology
	Ranks     []*RankState
	// Cache, when non-nil, is the online cache layer's installed state
	// (v5+); nil means the static setup cache in Topo.CacheIDs.
	Cache *CacheState
}

// Validate checks the internal consistency a decoder or resume path relies
// on. Decode runs it automatically.
func (t *TrainState) Validate() error {
	if t.Topo == nil {
		return fmt.Errorf("ckpt: missing topology section")
	}
	tp := t.Topo
	k := int(tp.K)
	if k <= 0 {
		return fmt.Errorf("ckpt: non-positive K %d", k)
	}
	if t.Rounds <= 0 {
		return fmt.Errorf("ckpt: non-positive rounds %d", t.Rounds)
	}
	if t.BatchSize <= 0 {
		return fmt.Errorf("ckpt: non-positive batch size %d", t.BatchSize)
	}
	if t.Dataset == "" || len(t.Dataset) > 256 {
		return fmt.Errorf("ckpt: missing or oversized dataset name")
	}
	if t.Codec == "" || len(t.Codec) > 32 {
		return fmt.Errorf("ckpt: missing or oversized wire codec name")
	}
	if t.Precision == "" || len(t.Precision) > 32 {
		return fmt.Errorf("ckpt: missing or oversized compute precision name")
	}
	if t.GradCodec == "" || len(t.GradCodec) > 32 {
		return fmt.Errorf("ckpt: missing or oversized gradient codec name")
	}
	if len(t.Fanouts) == 0 {
		return fmt.Errorf("ckpt: missing fanouts")
	}
	for i, f := range t.Fanouts {
		if f <= 0 {
			return fmt.Errorf("ckpt: fanout[%d] = %d must be positive", i, f)
		}
	}
	if t.Step.Epoch < 0 || t.Step.Round < 0 || t.Step.Round >= t.Rounds {
		return fmt.Errorf("ckpt: cursor (epoch %d, round %d) outside [0,%d)", t.Step.Epoch, t.Step.Round, t.Rounds)
	}
	if len(t.Ranks) != k {
		return fmt.Errorf("ckpt: %d rank sections for K=%d", len(t.Ranks), k)
	}
	n := tp.NumVertices
	if n <= 0 || tp.FeatureDim <= 0 {
		return fmt.Errorf("ckpt: invalid shape n=%d dim=%d", n, tp.FeatureDim)
	}
	if int64(len(tp.Perm)) != n || int64(len(tp.Parts)) != n {
		return fmt.Errorf("ckpt: perm/parts length %d/%d for %d vertices", len(tp.Perm), len(tp.Parts), n)
	}
	if len(tp.Starts) != k+1 {
		return fmt.Errorf("ckpt: %d layout boundaries for K=%d", len(tp.Starts), k)
	}
	if tp.Starts[0] != 0 || tp.Starts[k] != n {
		return fmt.Errorf("ckpt: layout spans [%d,%d) for %d vertices", tp.Starts[0], tp.Starts[k], n)
	}
	for i := 1; i <= k; i++ {
		if tp.Starts[i] < tp.Starts[i-1] {
			return fmt.Errorf("ckpt: layout boundaries decrease at %d", i)
		}
	}
	if len(tp.CacheIDs) != k {
		return fmt.Errorf("ckpt: %d cache lists for K=%d", len(tp.CacheIDs), k)
	}
	for r, ids := range tp.CacheIDs {
		for _, v := range ids {
			if v < 0 || int64(v) >= n {
				return fmt.Errorf("ckpt: rank %d caches vertex %d outside [0,%d)", r, v, n)
			}
		}
	}
	if cs := t.Cache; cs != nil {
		if cs.Policy == "" || len(cs.Policy) > 32 {
			return fmt.Errorf("ckpt: missing or oversized cache policy name")
		}
		if len(cs.Gens) != k || len(cs.IDs) != k {
			return fmt.Errorf("ckpt: cache state covers %d/%d ranks for K=%d", len(cs.Gens), len(cs.IDs), k)
		}
		for r, ids := range cs.IDs {
			for _, v := range ids {
				if v < 0 || int64(v) >= n {
					return fmt.Errorf("ckpt: cache state rank %d holds vertex %d outside [0,%d)", r, v, n)
				}
			}
		}
	}
	for r, rs := range t.Ranks {
		if rs == nil {
			return fmt.Errorf("ckpt: rank %d state missing", r)
		}
		if len(rs.Params) != len(t.Ranks[0].Params) {
			return fmt.Errorf("ckpt: rank %d has %d params, rank 0 has %d", r, len(rs.Params), len(t.Ranks[0].Params))
		}
		for i, p := range rs.Params {
			if p.Rows < 0 || p.Cols < 0 {
				return fmt.Errorf("ckpt: rank %d param %d has negative shape", r, i)
			}
			need := int(p.Rows) * int(p.Cols)
			if len(p.W) != need || len(p.M) != need || len(p.V) != need {
				return fmt.Errorf("ckpt: rank %d param %d: %dx%d shape but %d/%d/%d values",
					r, i, p.Rows, p.Cols, len(p.W), len(p.M), len(p.V))
			}
			if len(p.EF) != 0 && len(p.EF) != need {
				return fmt.Errorf("ckpt: rank %d param %d: residual has %d values for %dx%d shape",
					r, i, len(p.EF), p.Rows, p.Cols)
			}
		}
		if rs.AdamStep < 0 || rs.Partial.Batches < 0 {
			return fmt.Errorf("ckpt: rank %d has negative counters", r)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Encoding

// enc accumulates little-endian primitives into a reusable byte slice.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) i64(v int64) { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) i32s(s []int32) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}
func (e *enc) i64s(s []int64) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u64(uint64(v))
	}
}
func (e *enc) f32s(s []float32) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u32(math.Float32bits(v))
	}
}

// section frames one payload: tag, length, payload, CRC.
func (e *enc) section(dst []byte, tag uint32) []byte {
	var hdr enc
	hdr.b = dst
	hdr.u32(tag)
	hdr.u64(uint64(len(e.b)))
	hdr.b = append(hdr.b, e.b...)
	hdr.u32(crc32.Checksum(e.b, castagnoli))
	return hdr.b
}

// AppendEncode serializes the state, appending to dst (which may be nil or
// a reused buffer), and returns the result.
func AppendEncode(dst []byte, t *TrainState) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return dst, err
	}
	var e enc
	e.b = dst
	e.u32(magic)
	e.u32(version)
	out := e.b

	var p enc
	// Header.
	p.u32(uint32(t.Topo.K))
	p.u32(uint32(t.Step.Epoch))
	p.u32(uint32(t.Step.Round))
	p.u32(uint32(t.Rounds))
	p.u64(uint64(t.Topo.NumVertices))
	p.u32(uint32(t.Topo.FeatureDim))
	p.u64(t.Seed)
	p.u32(uint32(t.BatchSize))
	p.i32s(t.Fanouts)
	p.str(t.Dataset)
	p.str(t.Codec)
	p.str(t.Precision)
	p.str(t.GradCodec)
	out = p.section(out, tagHeader)

	// Topology.
	p.b = p.b[:0]
	p.i32s(t.Topo.Perm)
	p.i64s(t.Topo.Starts)
	p.i32s(t.Topo.Parts)
	for _, ids := range t.Topo.CacheIDs {
		p.i32s(ids)
	}
	out = p.section(out, tagTopology)

	// Cache state (v5+), only when an online policy has installed epochs;
	// static runs omit the section and decode back to a nil CacheState.
	if cs := t.Cache; cs != nil {
		p.b = p.b[:0]
		p.str(cs.Policy)
		for r := range cs.Gens {
			p.u64(cs.Gens[r])
			p.i32s(cs.IDs[r])
		}
		out = p.section(out, tagCacheState)
	}

	// Rank sections, in rank order.
	for _, rs := range t.Ranks {
		p.b = p.b[:0]
		p.u32(uint32(len(rs.Params)))
		for _, pr := range rs.Params {
			p.u32(uint32(pr.Rows))
			p.u32(uint32(pr.Cols))
			p.f32s(pr.W)
			p.f32s(pr.M)
			p.f32s(pr.V)
			p.f32s(pr.EF)
		}
		p.i64(rs.AdamStep)
		for _, s := range rs.ModelRNG {
			p.u64(s)
		}
		pe := rs.Partial
		p.f64(pe.Loss)
		p.f64(pe.Accuracy)
		p.i64(pe.Batches)
		p.i64(pe.LocalGPU)
		p.i64(pe.LocalCPU)
		p.i64(pe.CacheHit)
		p.i64(pe.Remote)
		p.i64(pe.BytesSent)
		p.i64(pe.SampleNS)
		p.i64(pe.GatherNS)
		p.i64(pe.ComputeNS)
		p.i64(pe.AggregateNS)
		p.i64(pe.TransformNS)
		p.i64(pe.BackwardNS)
		p.i64(pe.GradBytesSent)
		p.i64(pe.GradReduceNS)
		p.i64(pe.GradWaitNS)
		out = p.section(out, tagRank)
	}
	return out, nil
}

// Encode writes the state to w in the versioned checkpoint format.
func Encode(w io.Writer, t *TrainState) error {
	b, err := AppendEncode(nil, t)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ---------------------------------------------------------------------------
// Decoding

// cursor is a bounds-checked reader over one section payload.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, fmt.Errorf("ckpt: truncated payload")
	}
	b := c.b[c.off:]
	c.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (c *cursor) u64() (uint64, error) {
	lo, err := c.u32()
	if err != nil {
		return 0, err
	}
	hi, err := c.u32()
	if err != nil {
		return 0, err
	}
	return uint64(lo) | uint64(hi)<<32, nil
}

func (c *cursor) i64() (int64, error) {
	v, err := c.u64()
	return int64(v), err
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// length reads an array length and checks the payload actually holds
// elemSize·n more bytes, so a corrupt length cannot drive a huge
// allocation.
func (c *cursor) length(elemSize int) (int, error) {
	v, err := c.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(c.remaining()/elemSize) {
		return 0, fmt.Errorf("ckpt: array of %d elements exceeds remaining payload %d", v, c.remaining())
	}
	return int(v), nil
}

func (c *cursor) str() (string, error) {
	n, err := c.length(1)
	if err != nil {
		return "", err
	}
	out := string(c.b[c.off : c.off+n])
	c.off += n
	return out, nil
}

func (c *cursor) i32s() ([]int32, error) {
	n, err := c.length(4)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		v, err := c.u32()
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

func (c *cursor) i64s() ([]int64, error) {
	n, err := c.length(8)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		v, err := c.u64()
		if err != nil {
			return nil, err
		}
		out[i] = int64(v)
	}
	return out, nil
}

func (c *cursor) f32s() ([]float32, error) {
	n, err := c.length(4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		v, err := c.u32()
		if err != nil {
			return nil, err
		}
		out[i] = math.Float32frombits(v)
	}
	return out, nil
}

// readSection reads one framed section: tag, payload (verified against its
// CRC), or io.EOF cleanly at end of stream. The payload buffer grows
// incrementally while reading, bounded by the bytes actually present.
func readSection(r io.Reader, scratch []byte) (tag uint32, payload, grown []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, scratch, io.EOF
		}
		return 0, nil, scratch, fmt.Errorf("ckpt: reading section header: %w", err)
	}
	tag = uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	n := uint64(hdr[4]) | uint64(hdr[5])<<8 | uint64(hdr[6])<<16 | uint64(hdr[7])<<24 |
		uint64(hdr[8])<<32 | uint64(hdr[9])<<40 | uint64(hdr[10])<<48 | uint64(hdr[11])<<56
	if n > maxSection {
		return 0, nil, scratch, fmt.Errorf("ckpt: section of %d bytes exceeds limit", n)
	}
	// Fill the current capacity, then grow geometrically (doubling, capped
	// at n), reading straight into the buffer tail: no per-chunk zeroed
	// temporaries, and a lying length on a truncated stream allocates at
	// most ~2x the bytes actually read plus the 64 KiB floor. The scratch
	// buffer amortizes across sections of one Decode call.
	const chunk = 64 << 10
	payload = scratch[:0]
	if cap(payload) == 0 && n > 0 {
		payload = make([]byte, 0, min(int(n), chunk))
	}
	for uint64(len(payload)) < n {
		if len(payload) == cap(payload) {
			grown := make([]byte, len(payload), min(int(n), max(2*cap(payload), chunk)))
			copy(grown, payload)
			payload = grown
		}
		lo := len(payload)
		hi := min(int(n), cap(payload))
		payload = payload[:hi]
		if _, err := io.ReadFull(r, payload[lo:]); err != nil {
			return 0, nil, payload, fmt.Errorf("ckpt: truncated section payload: %w", err)
		}
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return 0, nil, payload, fmt.Errorf("ckpt: truncated section CRC: %w", err)
	}
	want := uint32(crcb[0]) | uint32(crcb[1])<<8 | uint32(crcb[2])<<16 | uint32(crcb[3])<<24
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return 0, nil, payload, fmt.Errorf("ckpt: section CRC mismatch (got %#x want %#x)", got, want)
	}
	return tag, payload, payload, nil
}

// Decode reads a checkpoint written by Encode, verifying magic, version,
// framing, and every section CRC, and validating the decoded state. It
// returns an error (never panics) on corrupt input.
func Decode(r io.Reader) (*TrainState, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading preamble: %w", err)
	}
	if m := uint32(pre[0]) | uint32(pre[1])<<8 | uint32(pre[2])<<16 | uint32(pre[3])<<24; m != magic {
		return nil, fmt.Errorf("ckpt: bad magic %#x", m)
	}
	ver := uint32(pre[4]) | uint32(pre[5])<<8 | uint32(pre[6])<<16 | uint32(pre[7])<<24
	if ver < minVersion || ver > version {
		return nil, fmt.Errorf("ckpt: unsupported version %d", ver)
	}

	t := &TrainState{}
	var scratch []byte
	sawHeader := false
	for {
		tag, payload, grown, err := readSection(r, scratch)
		scratch = grown
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		c := &cursor{b: payload}
		switch tag {
		case tagHeader:
			if sawHeader {
				return nil, fmt.Errorf("ckpt: duplicate header section")
			}
			sawHeader = true
			k, err := c.u32()
			if err != nil {
				return nil, err
			}
			epoch, err := c.u32()
			if err != nil {
				return nil, err
			}
			round, err := c.u32()
			if err != nil {
				return nil, err
			}
			rounds, err := c.u32()
			if err != nil {
				return nil, err
			}
			n, err := c.u64()
			if err != nil {
				return nil, err
			}
			dim, err := c.u32()
			if err != nil {
				return nil, err
			}
			seed, err := c.u64()
			if err != nil {
				return nil, err
			}
			batch, err := c.u32()
			if err != nil {
				return nil, err
			}
			fanouts, err := c.i32s()
			if err != nil {
				return nil, err
			}
			dsName, err := c.str()
			if err != nil {
				return nil, err
			}
			// v1 headers end at the dataset name; the codec string was
			// appended in v2, and every v1 run trained under fp32. The
			// compute-precision string was appended in v3 with the same
			// default for older files.
			codec := "fp32"
			if ver >= 2 {
				if codec, err = c.str(); err != nil {
					return nil, err
				}
			}
			precision := "fp32"
			if ver >= 3 {
				if precision, err = c.str(); err != nil {
					return nil, err
				}
			}
			gradCodec := "fp32"
			if ver >= 4 {
				if gradCodec, err = c.str(); err != nil {
					return nil, err
				}
			}
			if k > 1<<16 || rounds > 1<<30 || epoch > 1<<30 || n > 1<<40 {
				return nil, fmt.Errorf("ckpt: implausible header (k=%d rounds=%d epoch=%d n=%d)", k, rounds, epoch, n)
			}
			t.Step = Step{Epoch: int(epoch), Round: int(round)}
			t.Rounds = int(rounds)
			t.Seed = seed
			t.BatchSize = int32(batch)
			t.Fanouts = fanouts
			t.Dataset = dsName
			t.Codec = codec
			t.Precision = precision
			t.GradCodec = gradCodec
			t.Topo = &Topology{NumVertices: int64(n), FeatureDim: int32(dim), K: int32(k)}
		case tagTopology:
			if !sawHeader {
				return nil, fmt.Errorf("ckpt: topology before header")
			}
			if t.Topo.Perm != nil {
				return nil, fmt.Errorf("ckpt: duplicate topology section")
			}
			if t.Topo.Perm, err = c.i32s(); err != nil {
				return nil, err
			}
			if t.Topo.Starts, err = c.i64s(); err != nil {
				return nil, err
			}
			if t.Topo.Parts, err = c.i32s(); err != nil {
				return nil, err
			}
			t.Topo.CacheIDs = make([][]int32, t.Topo.K)
			for i := range t.Topo.CacheIDs {
				if t.Topo.CacheIDs[i], err = c.i32s(); err != nil {
					return nil, err
				}
			}
		case tagCacheState:
			if !sawHeader {
				return nil, fmt.Errorf("ckpt: cache state before header")
			}
			if t.Cache != nil {
				return nil, fmt.Errorf("ckpt: duplicate cache-state section")
			}
			cs := &CacheState{Gens: make([]uint64, t.Topo.K), IDs: make([][]int32, t.Topo.K)}
			if cs.Policy, err = c.str(); err != nil {
				return nil, err
			}
			for i := range cs.Gens {
				if cs.Gens[i], err = c.u64(); err != nil {
					return nil, err
				}
				if cs.IDs[i], err = c.i32s(); err != nil {
					return nil, err
				}
			}
			t.Cache = cs
		case tagRank:
			if !sawHeader {
				return nil, fmt.Errorf("ckpt: rank section before header")
			}
			if len(t.Ranks) >= int(t.Topo.K) {
				return nil, fmt.Errorf("ckpt: more rank sections than K=%d", t.Topo.K)
			}
			rs := &RankState{}
			np, err := c.u32()
			if err != nil {
				return nil, err
			}
			// Each encoded param costs at least 32 bytes (rows, cols, three
			// length prefixes), so this bound keeps the ParamState slice
			// allocation proportional to the bytes actually present.
			if uint64(np) > uint64(c.remaining()/32) {
				return nil, fmt.Errorf("ckpt: %d params exceed payload", np)
			}
			rs.Params = make([]ParamState, np)
			for i := range rs.Params {
				p := &rs.Params[i]
				rows, err := c.u32()
				if err != nil {
					return nil, err
				}
				cols, err := c.u32()
				if err != nil {
					return nil, err
				}
				p.Rows, p.Cols = int32(rows), int32(cols)
				if p.W, err = c.f32s(); err != nil {
					return nil, err
				}
				if p.M, err = c.f32s(); err != nil {
					return nil, err
				}
				if p.V, err = c.f32s(); err != nil {
					return nil, err
				}
				// Error-feedback residuals were appended in v4; older files
				// carry none (their runs reduced raw fp32 gradients). An
				// empty residual normalizes to nil so fp32-gradient states
				// round-trip exactly.
				if ver >= 4 {
					if p.EF, err = c.f32s(); err != nil {
						return nil, err
					}
					if len(p.EF) == 0 {
						p.EF = nil
					}
				}
			}
			if rs.AdamStep, err = c.i64(); err != nil {
				return nil, err
			}
			for i := range rs.ModelRNG {
				if rs.ModelRNG[i], err = c.u64(); err != nil {
					return nil, err
				}
			}
			pe := &rs.Partial
			for _, dst := range []*float64{&pe.Loss, &pe.Accuracy} {
				if *dst, err = c.f64(); err != nil {
					return nil, err
				}
			}
			for _, dst := range []*int64{&pe.Batches, &pe.LocalGPU, &pe.LocalCPU, &pe.CacheHit,
				&pe.Remote, &pe.BytesSent, &pe.SampleNS, &pe.GatherNS, &pe.ComputeNS} {
				if *dst, err = c.i64(); err != nil {
					return nil, err
				}
			}
			// The per-stage compute attribution was appended in v3; older
			// files carry only the ComputeNS total.
			if ver >= 3 {
				for _, dst := range []*int64{&pe.AggregateNS, &pe.TransformNS, &pe.BackwardNS} {
					if *dst, err = c.i64(); err != nil {
						return nil, err
					}
				}
			}
			// Gradient-synchronization accounting was appended in v4.
			if ver >= 4 {
				for _, dst := range []*int64{&pe.GradBytesSent, &pe.GradReduceNS, &pe.GradWaitNS} {
					if *dst, err = c.i64(); err != nil {
						return nil, err
					}
				}
			}
			t.Ranks = append(t.Ranks, rs)
		default:
			return nil, fmt.Errorf("ckpt: unknown section tag %d", tag)
		}
		if c.remaining() != 0 {
			return nil, fmt.Errorf("ckpt: %d trailing bytes in section %d", c.remaining(), tag)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("ckpt: missing header section")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
