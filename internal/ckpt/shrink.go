package ckpt

import (
	"fmt"
	"os"
	"sort"
)

// Shrink re-layout: restoring a K-rank checkpoint onto the K′ survivors of
// a membership change, without re-partitioning or VIP re-analysis.
//
// Every checkpoint carries the full topology (vertex permutation, layout
// boundaries, per-vertex partition assignment, per-rank cache contents),
// so a dead rank's shard is recoverable as pure metadata surgery: merge
// its layout interval into a survivor's, remap the partition assignment,
// and re-slice the cache lists. Feature rows are always rehydrated from
// the dataset on restore (checkpoints store cache membership, not bytes),
// so no feature data moves here. Weights, Adam moments, and residuals are
// identical across ranks by construction (synchronous data parallelism),
// which is why dropping a rank's model state loses nothing.

// ShrinkLayout merges a K-way contiguous layout onto the given survivors
// (strictly increasing old-rank indices): each dead rank's interval is
// absorbed by the nearest survivor at or below it (the lowest survivor
// additionally absorbs any dead ranks before it), keeping the merged
// intervals contiguous and in order. Returns the K′+1 new boundaries.
func ShrinkLayout(starts []int64, survivors []int) ([]int64, error) {
	k := len(starts) - 1
	if k < 1 {
		return nil, fmt.Errorf("ckpt: shrink of a %d-boundary layout", len(starts))
	}
	if err := validateSurvivors(survivors, k); err != nil {
		return nil, err
	}
	out := make([]int64, len(survivors)+1)
	out[0] = 0
	for i := 1; i < len(survivors); i++ {
		out[i] = starts[survivors[i]]
	}
	out[len(survivors)] = starts[k]
	return out, nil
}

// ShrinkState restores a K-rank checkpoint onto its K′ surviving ranks:
// the topology is re-laid out with ShrinkLayout, partition assignments are
// remapped, each survivor's cache list is filtered of vertices that became
// local under the merged layout, and survivor i's rank state is a deep
// copy of old rank survivors[i]'s. rounds is the new rounds-per-epoch the
// caller derived from the merged layout (the per-rank training sets grew,
// so the old checkpoint's round geometry no longer applies); for the same
// reason the cursor is normalized to the epoch boundary (Step.Round 0,
// empty partial statistics) — the interrupted epoch re-runs entirely under
// the new layout. Both the live-shrink path and a cold K′ restart consume
// the state this returns, which is what makes them bitwise identical.
func ShrinkState(st *TrainState, survivors []int, rounds int) (*TrainState, error) {
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("ckpt: shrinking an invalid state: %w", err)
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("ckpt: shrink needs positive rounds, got %d", rounds)
	}
	k := int(st.Topo.K)
	newStarts, err := ShrinkLayout(st.Topo.Starts, survivors)
	if err != nil {
		return nil, err
	}
	kNew := len(survivors)

	// Old rank → new rank owning its interval (see ShrinkLayout).
	ownerOf := make([]int, k)
	for r := 0; r < k; r++ {
		// The largest survivor index whose old rank is <= r; ranks before
		// the first survivor fold into it.
		i := sort.SearchInts(survivors, r+1) - 1
		if i < 0 {
			i = 0
		}
		ownerOf[r] = i
	}
	parts := make([]int32, len(st.Topo.Parts))
	for v, p := range st.Topo.Parts {
		parts[v] = int32(ownerOf[p])
	}

	// Each survivor keeps its own cache list minus the vertices its merged
	// interval now owns locally (caching a local row would waste the slot;
	// the store would never consult it). Order is preserved — it is the
	// truncated VIP ranking in cache-slot order.
	cacheIDs := make([][]int32, kNew)
	for i, s := range survivors {
		lo, hi := newStarts[i], newStarts[i+1]
		for _, v := range st.Topo.CacheIDs[s] {
			if int64(v) >= lo && int64(v) < hi {
				continue
			}
			cacheIDs[i] = append(cacheIDs[i], v)
		}
	}

	// The online cache layer's installed epochs shrink the same way: each
	// survivor keeps its installed membership (minus newly local vertices)
	// and its generation counter, so the resumed installer continues the
	// same install stream instead of restarting at the setup prefix.
	var cacheState *CacheState
	if st.Cache != nil {
		cacheState = &CacheState{Policy: st.Cache.Policy, Gens: make([]uint64, kNew), IDs: make([][]int32, kNew)}
		for i, s := range survivors {
			cacheState.Gens[i] = st.Cache.Gens[s]
			lo, hi := newStarts[i], newStarts[i+1]
			for _, v := range st.Cache.IDs[s] {
				if int64(v) >= lo && int64(v) < hi {
					continue
				}
				cacheState.IDs[i] = append(cacheState.IDs[i], v)
			}
		}
	}

	ranks := make([]*RankState, kNew)
	for i, s := range survivors {
		ranks[i] = cloneRankState(st.Ranks[s])
		// The epoch re-runs from its boundary under the new geometry; the
		// partial statistics accumulated under the old one no longer apply.
		ranks[i].Partial = PartialEpoch{}
	}

	out := &TrainState{
		Step:      Step{Epoch: st.Step.Epoch, Round: 0},
		Rounds:    rounds,
		Dataset:   st.Dataset,
		Seed:      st.Seed,
		BatchSize: st.BatchSize,
		Fanouts:   append([]int32(nil), st.Fanouts...),
		Codec:     st.Codec,
		Precision: st.Precision,
		GradCodec: st.GradCodec,
		Topo: &Topology{
			NumVertices: st.Topo.NumVertices,
			FeatureDim:  st.Topo.FeatureDim,
			K:           int32(kNew),
			Perm:        append([]int32(nil), st.Topo.Perm...),
			Starts:      newStarts,
			Parts:       parts,
			CacheIDs:    cacheIDs,
		},
		Ranks: ranks,
		Cache: cacheState,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("ckpt: shrunk state invalid: %w", err)
	}
	return out, nil
}

func validateSurvivors(survivors []int, k int) error {
	if len(survivors) == 0 || len(survivors) > k {
		return fmt.Errorf("ckpt: %d survivors of %d ranks", len(survivors), k)
	}
	for i, s := range survivors {
		if s < 0 || s >= k {
			return fmt.Errorf("ckpt: survivor %d outside [0,%d)", s, k)
		}
		if i > 0 && s <= survivors[i-1] {
			return fmt.Errorf("ckpt: survivors %v not strictly increasing", survivors)
		}
	}
	return nil
}

func cloneRankState(rs *RankState) *RankState {
	out := &RankState{
		AdamStep: rs.AdamStep,
		ModelRNG: rs.ModelRNG,
		Partial:  rs.Partial,
		Params:   make([]ParamState, len(rs.Params)),
	}
	for i, p := range rs.Params {
		out.Params[i] = ParamState{
			Rows: p.Rows, Cols: p.Cols,
			W:  append([]float32(nil), p.W...),
			M:  append([]float32(nil), p.M...),
			V:  append([]float32(nil), p.V...),
			EF: append([]float32(nil), p.EF...),
		}
	}
	return out
}

// Steps lists the barrier-consistent checkpoint steps present in dir,
// newest first — the local half of a membership agreement round (each
// survivor advertises its list; the consensus resume point is the newest
// step in every list). Returns an empty slice for a directory with no
// checkpoints; the error is reserved for an unreadable directory.
func Steps(dir string) ([]Step, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var steps []Step
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := parseFileName(e.Name()); ok {
			steps = append(steps, step)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[j].Less(steps[i]) })
	return steps, nil
}
