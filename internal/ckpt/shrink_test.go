package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// tinyState builds a minimal-but-valid 3-rank TrainState for shrink tests:
// 12 vertices in intervals [0,4) [4,8) [8,12), identity permutation, one
// 1x2 parameter per rank, distinct cache lists.
func tinyState() *TrainState {
	n := int64(12)
	perm := make([]int32, n)
	parts := make([]int32, n)
	for v := int64(0); v < n; v++ {
		perm[v] = int32(v)
		parts[v] = int32(v / 4)
	}
	mkRank := func(seed float32) *RankState {
		return &RankState{
			Params: []ParamState{{
				Rows: 1, Cols: 2,
				W: []float32{seed, seed + 1},
				M: []float32{0.1, 0.2},
				V: []float32{0.3, 0.4},
			}},
			AdamStep: 7,
			ModelRNG: [4]uint64{1, 2, 3, 4},
			Partial:  PartialEpoch{Loss: 1.5, Batches: 3},
		}
	}
	return &TrainState{
		Step: Step{Epoch: 2, Round: 5}, Rounds: 10,
		Dataset: "products-sim", Seed: 3, BatchSize: 4, Fanouts: []int32{4, 4},
		Codec: "fp32", Precision: "fp32", GradCodec: "fp32",
		Topo: &Topology{
			NumVertices: n, FeatureDim: 8, K: 3,
			Perm: perm, Starts: []int64{0, 4, 8, 12}, Parts: parts,
			CacheIDs: [][]int32{
				{5, 9}, // rank 0 caches remote vertices from ranks 1 and 2
				{1, 8}, // rank 1
				{2, 6}, // rank 2
			},
		},
		Ranks: []*RankState{mkRank(10), mkRank(10), mkRank(10)},
	}
}

func TestShrinkLayout(t *testing.T) {
	starts := []int64{0, 4, 8, 12}
	cases := []struct {
		survivors []int
		want      []int64
	}{
		{[]int{0, 1}, []int64{0, 4, 12}},       // rank 2 dies: rank 1 absorbs [8,12)
		{[]int{0, 2}, []int64{0, 8, 12}},       // rank 1 dies: rank 0 absorbs [4,8)
		{[]int{1, 2}, []int64{0, 8, 12}},       // rank 0 dies: rank 1 absorbs [0,4)
		{[]int{2}, []int64{0, 12}},             // only rank 2 left
		{[]int{0, 1, 2}, []int64{0, 4, 8, 12}}, // full regroup, identity
	}
	for _, c := range cases {
		got, err := ShrinkLayout(starts, c.survivors)
		if err != nil {
			t.Fatalf("survivors %v: %v", c.survivors, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("survivors %v: got %v want %v", c.survivors, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("survivors %v: got %v want %v", c.survivors, got, c.want)
			}
		}
	}
	for _, bad := range [][]int{nil, {0, 0}, {1, 0}, {-1}, {3}, {0, 1, 2, 2}} {
		if _, err := ShrinkLayout(starts, bad); err == nil {
			t.Fatalf("survivors %v accepted", bad)
		}
	}
}

func TestShrinkState(t *testing.T) {
	st := tinyState()
	out, err := ShrinkState(st, []int{0, 2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if out.Topo.K != 2 || out.Rounds != 6 {
		t.Fatalf("K=%d rounds=%d", out.Topo.K, out.Rounds)
	}
	// Cursor normalized to the epoch boundary with cleared partials.
	if out.Step != (Step{Epoch: 2, Round: 0}) {
		t.Fatalf("cursor %+v", out.Step)
	}
	for i, r := range out.Ranks {
		if r.Partial != (PartialEpoch{}) {
			t.Fatalf("rank %d partial not cleared: %+v", i, r.Partial)
		}
	}
	// Rank 1's interval [4,8) merged into rank 0's.
	if out.Topo.Starts[0] != 0 || out.Topo.Starts[1] != 8 || out.Topo.Starts[2] != 12 {
		t.Fatalf("starts %v", out.Topo.Starts)
	}
	for v := 0; v < 8; v++ {
		if out.Topo.Parts[v] != 0 {
			t.Fatalf("vertex %d assigned to %d, want 0", v, out.Topo.Parts[v])
		}
	}
	for v := 8; v < 12; v++ {
		if out.Topo.Parts[v] != 1 {
			t.Fatalf("vertex %d assigned to %d, want 1", v, out.Topo.Parts[v])
		}
	}
	// New rank 0 (old 0) cached {5,9}: 5 became local ([0,8)), 9 stays.
	if len(out.Topo.CacheIDs[0]) != 1 || out.Topo.CacheIDs[0][0] != 9 {
		t.Fatalf("rank 0 cache %v, want [9]", out.Topo.CacheIDs[0])
	}
	// New rank 1 (old 2) cached {2,6}: both now in rank 0's interval, both kept.
	if len(out.Topo.CacheIDs[1]) != 2 {
		t.Fatalf("rank 1 cache %v, want [2 6]", out.Topo.CacheIDs[1])
	}
	// Deep copy: mutating the shrunk weights must not touch the source.
	out.Ranks[0].Params[0].W[0] = -1
	if st.Ranks[0].Params[0].W[0] == -1 {
		t.Fatal("shrunk state aliases the source parameters")
	}
	// Identity fields survive.
	if out.Dataset != st.Dataset || out.Seed != st.Seed || out.Codec != st.Codec ||
		out.Precision != st.Precision || out.GradCodec != st.GradCodec {
		t.Fatal("run identity not preserved across shrink")
	}
}

func TestShrinkStateRejects(t *testing.T) {
	st := tinyState()
	if _, err := ShrinkState(st, []int{0, 2}, 0); err == nil {
		t.Fatal("non-positive rounds accepted")
	}
	if _, err := ShrinkState(st, nil, 5); err == nil {
		t.Fatal("empty survivors accepted")
	}
	if _, err := ShrinkState(st, []int{2, 0}, 5); err == nil {
		t.Fatal("unordered survivors accepted")
	}
	broken := tinyState()
	broken.Topo = nil
	if _, err := ShrinkState(broken, []int{0, 1}, 5); err == nil {
		t.Fatal("invalid source state accepted")
	}
}

func TestSteps(t *testing.T) {
	dir := t.TempDir()
	if steps, err := Steps(dir); err != nil || len(steps) != 0 {
		t.Fatalf("empty dir: %v %v", steps, err)
	}
	if steps, err := Steps(filepath.Join(dir, "missing")); err != nil || steps != nil {
		t.Fatalf("missing dir must list as empty, got %v %v", steps, err)
	}
	for _, s := range []Step{{1, 0}, {0, 4}, {1, 8}} {
		if err := os.WriteFile(filepath.Join(dir, FileName(s)), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644)
	steps, err := Steps(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{{1, 8}, {1, 0}, {0, 4}}
	if len(steps) != len(want) {
		t.Fatalf("steps %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps %v, want %v", steps, want)
		}
	}
}
