package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testState builds a small but fully populated state: 2 ranks, 2 params
// each, non-trivial topology and partial statistics.
func testState() *TrainState {
	mkRank := func(seed float32) *RankState {
		return &RankState{
			Params: []ParamState{
				// The first param carries an error-feedback residual (lossy
				// gradient codec); the second has none — both shapes must
				// round-trip, with an absent residual staying nil.
				{Rows: 2, Cols: 3, W: []float32{seed, 1, 2, 3, 4, 5}, M: []float32{6, 7, 8, 9, 10, 11}, V: []float32{0, 0, 1, 1, 2, 2},
					EF: []float32{1e-4, -2e-4, 0, 3e-4, -4e-4, 5e-4}},
				{Rows: 1, Cols: 2, W: []float32{seed + 0.5, -1}, M: []float32{0.25, 0.125}, V: []float32{1e-9, 2e-9}},
			},
			AdamStep: 17,
			ModelRNG: [4]uint64{1, 2, 3, ^uint64(0)},
			Partial: PartialEpoch{
				Loss: 1.25, Accuracy: 0.5, Batches: 3,
				LocalGPU: 10, LocalCPU: 4, CacheHit: 7, Remote: 2,
				BytesSent: 4096, SampleNS: 11, GatherNS: 22, ComputeNS: 33,
				AggregateNS: 5, TransformNS: 9, BackwardNS: 13,
				GradBytesSent: 512, GradReduceNS: 21, GradWaitNS: 8,
			},
		}
	}
	return &TrainState{
		Step:      Step{Epoch: 1, Round: 3},
		Rounds:    5,
		Dataset:   "toy-sim",
		Seed:      77,
		BatchSize: 2,
		Fanouts:   []int32{3, 2},
		Codec:     "fp16",
		Precision: "int8",
		GradCodec: "int8",
		Topo: &Topology{
			NumVertices: 6, FeatureDim: 4, K: 2,
			Perm:     []int32{0, 2, 4, 1, 3, 5},
			Starts:   []int64{0, 3, 6},
			Parts:    []int32{0, 0, 0, 1, 1, 1},
			CacheIDs: [][]int32{{4, 5}, {0}},
		},
		Ranks: []*RankState{mkRank(0.5), mkRank(-0.5)},
	}
}

// encodeOld serializes st in a historical layout — v1 (no codec string in
// the header), v2 (codec but no precision or stage attribution), or v3
// (precision and stage attribution but no gradient codec, residuals, or
// gradient accounting) — byte-for-byte what the older code wrote, so the
// backward-compatibility tests decode genuine old files.
func encodeOld(st *TrainState, ver uint32) []byte {
	var e enc
	e.u32(magic)
	e.u32(ver)
	out := e.b
	var p enc
	p.u32(uint32(st.Topo.K))
	p.u32(uint32(st.Step.Epoch))
	p.u32(uint32(st.Step.Round))
	p.u32(uint32(st.Rounds))
	p.u64(uint64(st.Topo.NumVertices))
	p.u32(uint32(st.Topo.FeatureDim))
	p.u64(st.Seed)
	p.u32(uint32(st.BatchSize))
	p.i32s(st.Fanouts)
	p.str(st.Dataset)
	if ver >= 2 {
		p.str(st.Codec)
	}
	if ver >= 3 {
		p.str(st.Precision)
	}
	out = p.section(out, tagHeader)
	p.b = p.b[:0]
	p.i32s(st.Topo.Perm)
	p.i64s(st.Topo.Starts)
	p.i32s(st.Topo.Parts)
	for _, ids := range st.Topo.CacheIDs {
		p.i32s(ids)
	}
	out = p.section(out, tagTopology)
	for _, rs := range st.Ranks {
		p.b = p.b[:0]
		p.u32(uint32(len(rs.Params)))
		for _, pr := range rs.Params {
			p.u32(uint32(pr.Rows))
			p.u32(uint32(pr.Cols))
			p.f32s(pr.W)
			p.f32s(pr.M)
			p.f32s(pr.V)
		}
		p.i64(rs.AdamStep)
		for _, s := range rs.ModelRNG {
			p.u64(s)
		}
		pe := rs.Partial
		p.f64(pe.Loss)
		p.f64(pe.Accuracy)
		p.i64(pe.Batches)
		p.i64(pe.LocalGPU)
		p.i64(pe.LocalCPU)
		p.i64(pe.CacheHit)
		p.i64(pe.Remote)
		p.i64(pe.BytesSent)
		p.i64(pe.SampleNS)
		p.i64(pe.GatherNS)
		p.i64(pe.ComputeNS)
		if ver >= 3 {
			p.i64(pe.AggregateNS)
			p.i64(pe.TransformNS)
			p.i64(pe.BackwardNS)
		}
		out = p.section(out, tagRank)
	}
	return out
}

// TestDecodeAcceptsOldVersions guards restore compatibility: checkpoints
// written before the wire-codec field (v1), before the precision field and
// per-stage compute attribution (v2), or before the gradient codec,
// error-feedback residuals, and gradient accounting (v3) must still
// decode. Missing codec, precision, and gradient-codec strings default to
// "fp32" — the only formats those runs could have used — missing timers
// and counters decode as zero, and missing residuals as nil.
func TestDecodeAcceptsOldVersions(t *testing.T) {
	for _, ver := range []uint32{1, 2, 3} {
		st := testState()
		got, err := Decode(bytes.NewReader(encodeOld(st, ver)))
		if err != nil {
			t.Fatalf("v%d checkpoint no longer decodes: %v", ver, err)
		}
		if ver == 1 {
			if got.Codec != "fp32" {
				t.Fatalf("v1 decode codec %q, want the fp32 default", got.Codec)
			}
			got.Codec = st.Codec
		}
		if ver < 3 {
			if got.Precision != "fp32" {
				t.Fatalf("v%d decode precision %q, want the fp32 default", ver, got.Precision)
			}
			got.Precision = st.Precision
		}
		if got.GradCodec != "fp32" {
			t.Fatalf("v%d decode gradient codec %q, want the fp32 default", ver, got.GradCodec)
		}
		got.GradCodec = st.GradCodec
		for i, rs := range got.Ranks {
			pe := &rs.Partial
			want := st.Ranks[i].Partial
			if ver < 3 {
				if pe.AggregateNS != 0 || pe.TransformNS != 0 || pe.BackwardNS != 0 {
					t.Fatalf("v%d decode rank %d has non-zero stage timers %+v", ver, i, pe)
				}
				pe.AggregateNS, pe.TransformNS, pe.BackwardNS = want.AggregateNS, want.TransformNS, want.BackwardNS
			}
			if pe.GradBytesSent != 0 || pe.GradReduceNS != 0 || pe.GradWaitNS != 0 {
				t.Fatalf("v%d decode rank %d has non-zero gradient accounting %+v", ver, i, pe)
			}
			pe.GradBytesSent, pe.GradReduceNS, pe.GradWaitNS = want.GradBytesSent, want.GradReduceNS, want.GradWaitNS
			for j := range rs.Params {
				if rs.Params[j].EF != nil {
					t.Fatalf("v%d decode rank %d param %d has a residual", ver, i, j)
				}
				rs.Params[j].EF = st.Ranks[i].Params[j].EF
			}
		}
		if !reflect.DeepEqual(st, got) {
			t.Fatalf("v%d decode mismatch:\nwant %+v\ngot  %+v", ver, st, got)
		}
	}
	// An out-of-range version is still rejected.
	bad := encodeOld(testState(), 1)
	bad[4] = 5
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	bad[4] = 0
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("version 0 accepted")
	}
}

// TestDecodeAcceptsVersion4 pins the upgrade seam the online cache layer
// introduced: a v4 file is byte-for-byte a v5 file without the cache-state
// section, so patching the version field of a cacheless v5 encoding yields
// a genuine v4 file. It must decode with a nil CacheState — the static
// setup prefix in Topology.CacheIDs, exactly the pre-refactor behavior —
// and match the source state in every other field.
func TestDecodeAcceptsVersion4(t *testing.T) {
	st := testState()
	if st.Cache != nil {
		t.Fatal("testState unexpectedly carries cache state")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	v4 := append([]byte(nil), buf.Bytes()...)
	v4[4] = 4 // version u32, little-endian, after the 4-byte magic
	got, err := Decode(bytes.NewReader(v4))
	if err != nil {
		t.Fatalf("v4 checkpoint no longer decodes: %v", err)
	}
	if got.Cache != nil {
		t.Fatalf("v4 decode invented cache state: %+v", got.Cache)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("v4 decode mismatch:\nwant %+v\ngot  %+v", st, got)
	}
}

// TestCacheStateRoundTrip covers the v5 cache-state section: an online
// run's installed epochs (policy name, per-rank generation and membership)
// must round-trip exactly, and a static run (nil CacheState) must encode
// without the section at all so its bytes stay v4-shaped.
func TestCacheStateRoundTrip(t *testing.T) {
	st := testState()
	st.Cache = &CacheState{
		Policy: "online",
		Gens:   []uint64{3, 0},
		IDs:    [][]int32{{5, 1, 3}, {}},
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("cache-state round trip mismatch:\nwant %+v\ngot  %+v", st.Cache, got.Cache)
	}

	// A cache member outside the vertex space must fail validation.
	st.Cache.IDs[0][0] = int32(st.Topo.NumVertices)
	if err := st.Validate(); err == nil {
		t.Fatal("out-of-range cache member validated")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", st, got)
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid checkpoint, one
// at a time, and demands that Decode either errors or returns a state that
// still validates — it must never panic. Most flips are caught by the
// per-section CRC; preamble flips by the magic/version checks.
func TestDecodeRejectsCorruption(t *testing.T) {
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	corrupt := make([]byte, len(orig))
	errors := 0
	for i := range orig {
		copy(corrupt, orig)
		corrupt[i] ^= 0xff
		if _, err := Decode(bytes.NewReader(corrupt)); err != nil {
			errors++
		}
	}
	// Every single-byte flip lands in the preamble, a section frame, or a
	// CRC-covered payload, so every one must be detected.
	if errors != len(orig) {
		t.Fatalf("only %d of %d single-byte corruptions were rejected", errors, len(orig))
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for cut := 0; cut < len(orig); cut += 7 {
		if _, err := Decode(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(orig))
		}
	}
}

func TestValidateCatchesInconsistency(t *testing.T) {
	mutations := map[string]func(*TrainState){
		"nil topo":        func(s *TrainState) { s.Topo = nil },
		"bad K":           func(s *TrainState) { s.Topo.K = 0 },
		"bad batch":       func(s *TrainState) { s.BatchSize = 0 },
		"no dataset":      func(s *TrainState) { s.Dataset = "" },
		"no codec":        func(s *TrainState) { s.Codec = "" },
		"no precision":    func(s *TrainState) { s.Precision = "" },
		"no grad codec":   func(s *TrainState) { s.GradCodec = "" },
		"short residual":  func(s *TrainState) { s.Ranks[0].Params[0].EF = s.Ranks[0].Params[0].EF[:3] },
		"no fanouts":      func(s *TrainState) { s.Fanouts = nil },
		"bad fanout":      func(s *TrainState) { s.Fanouts[1] = -1 },
		"cursor past end": func(s *TrainState) { s.Step.Round = s.Rounds },
		"short perm":      func(s *TrainState) { s.Topo.Perm = s.Topo.Perm[:3] },
		"layout gap":      func(s *TrainState) { s.Topo.Starts[1] = 99 },
		"cache range":     func(s *TrainState) { s.Topo.CacheIDs[0][0] = 100 },
		"param shape":     func(s *TrainState) { s.Ranks[1].Params[0].W = s.Ranks[1].Params[0].W[:2] },
		"missing rank":    func(s *TrainState) { s.Ranks = s.Ranks[:1] },
	}
	for name, mut := range mutations {
		st := testState()
		mut(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: mutation passed validation", name)
		}
	}
}

func TestSaverBarrierWriteAndRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSaver(Config{Dir: dir, EveryRounds: 1, Retain: 2}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := testState()
	s.SetTopology(base.Topo)
	s.SetRunConfig(base.Dataset, base.Seed, int(base.BatchSize), []int{3, 2}, base.Codec, base.Precision, base.GradCodec)
	fill := func(src *RankState) func(*RankState) {
		return func(dst *RankState) { *dst = *src }
	}
	steps := []Step{{0, 2}, {0, 4}, {1, 0}, {1, 2}}
	for _, step := range steps {
		// Offers may arrive in any rank order; the write happens on the
		// second (last) arrival.
		if err := s.Offer(1, step, fill(base.Ranks[1])); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, FileName(step))); err == nil {
			t.Fatalf("step %+v written before the barrier completed", step)
		}
		if err := s.Offer(0, step, fill(base.Ranks[0])); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, FileName(step))); err != nil {
			t.Fatalf("step %+v not written after the barrier: %v", step, err)
		}
	}

	// Retain 2: only the two newest files survive, and no temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale temp file %s after rotation", e.Name())
		}
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("rotation kept %d files %v, want 2", len(names), names)
	}

	// Latest picks the newest by step; the loaded state round-trips.
	latest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != FileName(Step{1, 2}) {
		t.Fatalf("latest = %s, want %s", latest, FileName(Step{1, 2}))
	}
	got, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != latest {
		t.Fatalf("LoadLatest chose %s, Latest says %s", path, latest)
	}
	if got.Step != (Step{1, 2}) || len(got.Ranks) != 2 {
		t.Fatalf("loaded wrong state: %+v", got.Step)
	}

	// A duplicate offer for an already-saved step is silently ignored
	// (round and epoch triggers may coincide).
	if err := s.Offer(0, Step{1, 2}, fill(base.Ranks[0])); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLatestSkipsTornFile plants a corrupt newest checkpoint and
// checks restore falls back to the previous valid one.
func TestLoadLatestSkipsTornFile(t *testing.T) {
	dir := t.TempDir()
	older := testState()
	older.Step = Step{Epoch: 0, Round: 2}
	var buf bytes.Buffer
	if err := Encode(&buf, older); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileName(older.Step)), buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	// Newest file: valid prefix, torn tail.
	if err := os.WriteFile(filepath.Join(dir, FileName(Step{1, 0})), buf.Bytes()[:buf.Len()/2], 0o666); err != nil {
		t.Fatal(err)
	}
	got, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(older.Step) {
		t.Fatalf("LoadLatest used %s instead of falling back", path)
	}
	if got.Step != older.Step {
		t.Fatalf("fell back to wrong state %+v", got.Step)
	}
}

func TestSaverRejectsBarrierViolations(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSaver(Config{Dir: dir, EveryRounds: 1}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTopology(testState().Topo)
	s.SetRunConfig("toy-sim", 77, 2, []int{3, 2}, "", "", "")
	fill := func(dst *RankState) { *dst = *testState().Ranks[0] }
	if err := s.Offer(0, Step{0, 1}, fill); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(0, Step{0, 1}, fill); err == nil {
		t.Fatal("duplicate offer from the same rank was accepted")
	}
	s2, err := NewSaver(Config{Dir: dir, EveryRounds: 1}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetTopology(testState().Topo)
	s2.SetRunConfig("toy-sim", 77, 2, []int{3, 2}, "", "", "")
	if err := s2.Offer(0, Step{0, 1}, fill); err != nil {
		t.Fatal(err)
	}
	if err := s2.Offer(1, Step{0, 2}, fill); err == nil {
		t.Fatal("mismatched step across ranks was accepted")
	}
}

func TestDueTriggers(t *testing.T) {
	s, err := NewSaver(Config{Dir: t.TempDir(), EveryRounds: 3, EveryEpochs: 2}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for rounds, want := range map[int]bool{1: false, 3: true, 6: true, 10: false} {
		if got := s.DueRound(rounds); got != want {
			t.Errorf("DueRound(%d) = %v, want %v", rounds, got, want)
		}
	}
	for epochs, want := range map[int]bool{1: false, 2: true, 3: false, 4: true} {
		if got := s.DueEpoch(epochs); got != want {
			t.Errorf("DueEpoch(%d) = %v, want %v", epochs, got, want)
		}
	}
}
