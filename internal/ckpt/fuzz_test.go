package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode drives Decode with arbitrary bytes: it must return
// an error on anything that is not a valid checkpoint — never panic, never
// attempt an allocation larger than the input justifies — and anything it
// does accept must survive validation and re-encode cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: a valid checkpoint, a truncation, a CRC flip, and the
	// bare preamble.
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Add(valid[:8])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Decode accepted a state that fails validation: %v", verr)
		}
		if _, err := AppendEncode(nil, got); err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
	})
}

// FuzzCacheStateDecode targets the v5 cache-state section specifically:
// the seed corpus carries cache-bearing checkpoints (plus truncated and
// bit-flipped variants, and a version-patched v4 file without the
// section), so the fuzzer mutates around the newest decode path. The
// contract is the same as FuzzCheckpointDecode's — error, never panic, and
// anything accepted must validate and re-encode.
func FuzzCacheStateDecode(f *testing.F) {
	st := testState()
	st.Cache = &CacheState{
		Policy: "online",
		Gens:   []uint64{4, 2},
		IDs:    [][]int32{{0, 5, 2}, {1}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	v4 := append([]byte(nil), valid...)
	v4[4] = 4
	f.Add(v4)
	empty := testState()
	empty.Cache = &CacheState{Policy: "online", Gens: []uint64{0, 0}, IDs: [][]int32{{}, {}}}
	buf.Reset()
	if err := Encode(&buf, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Decode accepted a state that fails validation: %v", verr)
		}
		if _, err := AppendEncode(nil, got); err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
	})
}
