package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode drives Decode with arbitrary bytes: it must return
// an error on anything that is not a valid checkpoint — never panic, never
// attempt an allocation larger than the input justifies — and anything it
// does accept must survive validation and re-encode cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: a valid checkpoint, a truncation, a CRC flip, and the
	// bare preamble.
	st := testState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Add(valid[:8])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Decode accepted a state that fails validation: %v", verr)
		}
		if _, err := AppendEncode(nil, got); err != nil {
			t.Fatalf("accepted state does not re-encode: %v", err)
		}
	})
}
