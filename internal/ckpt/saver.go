package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Config controls coordinated checkpointing.
type Config struct {
	// Dir is the checkpoint directory (created if missing). Empty disables
	// checkpointing entirely.
	Dir string
	// EveryRounds checkpoints after every N fully retired pipeline rounds
	// within an epoch (barrier-consistent across ranks). 0 disables
	// mid-epoch checkpoints.
	EveryRounds int
	// EveryEpochs checkpoints at every Nth epoch boundary. 0 disables
	// epoch-boundary checkpoints.
	EveryEpochs int
	// Retain keeps the newest Retain checkpoint files, deleting older ones
	// after each successful save. <= 0 means 3.
	Retain int
}

// Enabled reports whether the configuration checkpoints at all.
func (c Config) Enabled() bool {
	return c.Dir != "" && (c.EveryRounds > 0 || c.EveryEpochs > 0)
}

func (c Config) withDefaults() Config {
	if c.Retain <= 0 {
		c.Retain = 3
	}
	return c
}

// Saver coordinates barrier-consistent checkpoints across the K ranks of
// one training run. Every rank calls Offer at the same Step (the pipeline
// guarantees this: the trigger is a pure function of the shared round
// cursor); the K-th arrival encodes the assembled TrainState and writes it
// atomically (temp file + rename) into the directory, then rotates old
// files down to Retain.
//
// Per-rank state slots and the encode buffer are reused across saves, so
// steady-state checkpointing allocates only at the file-write boundary —
// and rounds that do not checkpoint cost one integer check in the training
// loop (guarded by the pipeline's AllocsPerRun test).
type Saver struct {
	cfg    Config
	k      int
	rounds int

	mu        sync.Mutex
	topo      *Topology
	dataset   string
	seed      uint64
	batchSize int32
	fanouts   []int32
	codec     string
	precision string
	gradCodec string
	slots     []*RankState
	filled    []bool
	arrived   int
	pending   Step
	lastSaved Step
	hasSaved  bool
	encBuf    []byte
	cache     func() *CacheState
	err       error // sticky: a failed write poisons later Offers loudly
}

// NewSaver validates the configuration, creates the directory, and returns
// a coordinator for a K-rank run with the given rounds-per-epoch.
func NewSaver(cfg Config, k, rounds int) (*Saver, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ckpt: saver needs a directory")
	}
	if k <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("ckpt: saver needs positive k (%d) and rounds (%d)", k, rounds)
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("ckpt: creating %s: %w", cfg.Dir, err)
	}
	s := &Saver{cfg: cfg, k: k, rounds: rounds, slots: make([]*RankState, k), filled: make([]bool, k)}
	for i := range s.slots {
		s.slots[i] = &RankState{}
	}
	return s, nil
}

// SetTopology installs the run's immutable topology, included in every
// checkpoint file so restores are self-contained. Must be called before
// the first Offer.
func (s *Saver) SetTopology(t *Topology) { s.topo = t }

// SetRunConfig pins the run identity (dataset name, sampling seed, batch
// size, fanouts, the feature-gather wire codec, the compute-backend
// precision, and the gradient all-reduce codec) in every checkpoint so
// restore can reject drift that would silently train the wrong data,
// replay different batches, dequantize different feature bytes, round
// GEMMs differently, or quantize gradients against a stale residual. Must
// be called before the first Offer. An empty codec, precision, or
// gradCodec records the "fp32" default.
func (s *Saver) SetRunConfig(dataset string, seed uint64, batchSize int, fanouts []int, codec, precision, gradCodec string) {
	s.dataset = dataset
	s.seed = seed
	s.batchSize = int32(batchSize)
	s.fanouts = make([]int32, len(fanouts))
	for i, f := range fanouts {
		s.fanouts[i] = int32(f)
	}
	if codec == "" {
		codec = "fp32"
	}
	s.codec = codec
	if precision == "" {
		precision = "fp32"
	}
	s.precision = precision
	if gradCodec == "" {
		gradCodec = "fp32"
	}
	s.gradCodec = gradCodec
}

// SetCacheState installs a snapshot callback for the online cache layer's
// state, invoked under the barrier lock when the last rank's offer
// completes a checkpoint. The callback must be safe to call from any
// rank's goroutine — reading per-store installed-epoch pointers (atomic
// loads of immutable epochs) qualifies. nil (the default, and the static
// policy) omits the cache-state section entirely.
func (s *Saver) SetCacheState(fn func() *CacheState) { s.cache = fn }

// DueRound reports whether a checkpoint fires after roundsDone fully
// retired rounds of the current epoch (roundsDone in [1, rounds]).
func (s *Saver) DueRound(roundsDone int) bool {
	return s.cfg.EveryRounds > 0 && roundsDone%s.cfg.EveryRounds == 0
}

// DueEpoch reports whether a checkpoint fires at the boundary after
// epochsDone completed epochs.
func (s *Saver) DueEpoch(epochsDone int) bool {
	return s.cfg.EveryEpochs > 0 && epochsDone%s.cfg.EveryEpochs == 0
}

// Offer contributes rank's state at step. fill writes into a reusable
// RankState slot (append into the existing slices). When the last rank of
// the barrier arrives, the checkpoint is encoded and written atomically;
// that rank pays the I/O. Offers for steps at or before the last saved
// step are ignored, which makes coinciding round/epoch triggers idempotent.
func (s *Saver) Offer(rank int, step Step, fill func(*RankState)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if rank < 0 || rank >= s.k {
		return fmt.Errorf("ckpt: offer from rank %d of %d", rank, s.k)
	}
	if s.hasSaved && !s.lastSaved.Less(step) {
		return nil // already captured (e.g. round trigger coinciding with epoch trigger)
	}
	if s.arrived == 0 {
		s.pending = step
	} else if s.pending != step {
		s.err = fmt.Errorf("ckpt: rank %d offered step %+v while assembling %+v (lost barrier consistency)", rank, step, s.pending)
		return s.err
	}
	if s.filled[rank] {
		s.err = fmt.Errorf("ckpt: duplicate offer from rank %d at step %+v", rank, step)
		return s.err
	}
	fill(s.slots[rank])
	s.filled[rank] = true
	s.arrived++
	if s.arrived < s.k {
		return nil
	}
	// Barrier complete: this rank writes the file.
	s.arrived = 0
	for i := range s.filled {
		s.filled[i] = false
	}
	state := &TrainState{
		Step: step, Rounds: s.rounds,
		Dataset: s.dataset, Seed: s.seed, BatchSize: s.batchSize, Fanouts: s.fanouts,
		Codec: s.codec, Precision: s.precision, GradCodec: s.gradCodec, Topo: s.topo, Ranks: s.slots,
	}
	if s.cache != nil {
		state.Cache = s.cache()
	}
	if err := s.write(state); err != nil {
		s.err = err
		return err
	}
	s.lastSaved, s.hasSaved = step, true
	return nil
}

// FileName returns the canonical checkpoint file name for a step.
func FileName(step Step) string {
	return fmt.Sprintf("ckpt-e%05d-r%06d.sppc", step.Epoch, step.Round)
}

// parseFileName inverts FileName; ok is false for foreign files.
func parseFileName(name string) (Step, bool) {
	var e, r int
	if n, err := fmt.Sscanf(name, "ckpt-e%05d-r%06d.sppc", &e, &r); n != 2 || err != nil {
		return Step{}, false
	}
	if !strings.HasSuffix(name, ".sppc") || e < 0 || r < 0 {
		return Step{}, false
	}
	return Step{Epoch: e, Round: r}, true
}

// write encodes into the reused buffer and renames a temp file into place,
// then rotates old checkpoints.
func (s *Saver) write(state *TrainState) error {
	b, err := AppendEncode(s.encBuf[:0], state)
	s.encBuf = b
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.cfg.Dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: closing %s: %w", tmpName, err)
	}
	final := filepath.Join(s.cfg.Dir, FileName(state.Step))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: publishing %s: %w", final, err)
	}
	s.rotate()
	return nil
}

// rotate deletes all but the newest Retain checkpoint files (and any stale
// temp files). Best-effort: rotation failures never fail a save.
func (s *Saver) rotate() {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	type f struct {
		step Step
		name string
	}
	var files []f
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".ckpt-") && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(s.cfg.Dir, e.Name()))
			continue
		}
		if step, ok := parseFileName(e.Name()); ok {
			files = append(files, f{step, e.Name()})
		}
	}
	if len(files) <= s.cfg.Retain {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[j].step.Less(files[i].step) })
	for _, old := range files[s.cfg.Retain:] {
		os.Remove(filepath.Join(s.cfg.Dir, old.name))
	}
}

// Load decodes and validates the checkpoint at path.
func Load(path string) (*TrainState, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Decode(fh)
}

// Latest returns the path of the newest checkpoint file in dir (by step,
// not mtime). os.ErrNotExist when the directory holds no checkpoints.
func Latest(dir string) (string, error) {
	paths, err := listByStepDescending(dir)
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("ckpt: no checkpoints in %s: %w", dir, os.ErrNotExist)
	}
	return paths[0], nil
}

// LoadLatest loads the newest *valid* checkpoint in dir, skipping files
// that fail CRC or structural validation (e.g. a file torn by a crash that
// somehow bypassed the atomic rename). Returns the state and the path it
// came from.
func LoadLatest(dir string) (*TrainState, string, error) {
	paths, err := listByStepDescending(dir)
	if err != nil {
		return nil, "", err
	}
	var firstErr error
	for _, p := range paths {
		st, err := Load(p)
		if err == nil {
			return st, p, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ckpt: %s: %w", p, err)
		}
	}
	if firstErr != nil {
		return nil, "", firstErr
	}
	return nil, "", fmt.Errorf("ckpt: no checkpoints in %s: %w", dir, os.ErrNotExist)
}

func listByStepDescending(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type f struct {
		step Step
		path string
	}
	var files []f
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := parseFileName(e.Name()); ok {
			files = append(files, f{step, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[j].step.Less(files[i].step) })
	out := make([]string, len(files))
	for i, x := range files {
		out[i] = x.path
	}
	return out, nil
}
