package tensor

import (
	"fmt"
	"math"
)

// Precision selects the numeric format a compute path keeps its operands
// in. The training pipeline always runs PrecisionFP32 (backward passes need
// full-precision gradients); serving snapshots may freeze weights and
// gathered features into a reduced precision:
//
//   - PrecisionFP32: plain float32 matrices through the fp32 Backend. The
//     default.
//   - PrecisionFP16: weights and gathered features held as IEEE-754
//     binary16 (half the memory); GEMMs dequantize into pooled fp32 panels
//     and run the fp32 kernels, so fp16 trades a small conversion cost for
//     footprint, not speed.
//   - PrecisionInt8: weights and gathered features held as per-row-scaled
//     int8 — the same symmetric quantization the int8 wire codec uses, so
//     int8-encoded gather payloads feed the compute path without a
//     dequantize/requantize round trip. GEMMs run an integer dot kernel
//     (int8×int8 → int32) and apply the two row scales once per output,
//     cutting serve-side compute as well as memory.
type Precision uint8

const (
	// PrecisionFP32 is the full-precision default.
	PrecisionFP32 Precision = iota
	// PrecisionFP16 stores operands as IEEE-754 binary16.
	PrecisionFP16
	// PrecisionInt8 stores operands as per-row-scaled int8.
	PrecisionInt8
)

// ParsePrecision maps a configuration string to a Precision. The empty
// string is the fp32 default so zero-valued configs keep full precision.
func ParsePrecision(name string) (Precision, error) {
	switch name {
	case "", "fp32":
		return PrecisionFP32, nil
	case "fp16":
		return PrecisionFP16, nil
	case "int8":
		return PrecisionInt8, nil
	}
	return PrecisionFP32, fmt.Errorf("tensor: unknown precision %q (want fp32, fp16, or int8)", name)
}

func (p Precision) String() string {
	switch p {
	case PrecisionFP32:
		return "fp32"
	case PrecisionFP16:
		return "fp16"
	case PrecisionInt8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", uint8(p))
}

// ---------------------------------------------------------------------------
// Scalar quantizers. These are the single source of truth for the reduced
// formats: the dist wire codec and the QuantMatrix compute path both call
// them, so a row quantized for the wire is bit-identical to the same row
// quantized for compute — the property that lets an int8 gather payload
// pass straight into an int8 GEMM.

// Int8RowScale returns the symmetric per-row quantization scale
// maxAbs(row)/127, computed over the finite magnitudes (±Inf and NaN cannot
// influence the scale). A zero row (or one holding only non-finite values)
// scales to 0, and every value quantizes to 0 under a zero scale.
func Int8RowScale(row []float32) float32 {
	var maxAbs float64
	for _, v := range row {
		a := math.Abs(float64(v))
		if a > maxAbs && !math.IsInf(a, 0) { // NaN fails a > maxAbs
			maxAbs = a
		}
	}
	return float32(maxAbs / 127)
}

// QuantizeInt8 maps one value to its int8 image under scale: round to
// nearest (half away from zero) of v/scale, clamped to [-127, 127], with
// NaN → 0. The clamping happens in float64 before the int conversion, so no
// platform-dependent float→int overflow is ever evaluated.
func QuantizeInt8(v, scale float32) int8 {
	if scale <= 0 {
		return 0
	}
	r := math.Round(float64(v) / float64(scale))
	switch {
	case r > 127:
		r = 127
	case r < -127:
		r = -127
	case r != r: // NaN
		r = 0
	}
	return int8(r)
}

// QuantizeRowInt8 quantizes one row in place into dst (len(dst) ==
// len(src)) and returns the row scale.
func QuantizeRowInt8(dst []int8, src []float32) float32 {
	scale := Int8RowScale(src)
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	for i, v := range src {
		dst[i] = QuantizeInt8(v, scale)
	}
	return scale
}

// F16FromF32 converts a float32 to binary16 bits with round-to-nearest-even.
// Overflow goes to ±Inf, underflow below the smallest subnormal to ±0, and
// NaN to a quiet NaN. Pure bit manipulation, deterministic on every
// platform.
func F16FromF32(f float32) uint16 {
	x := math.Float32bits(f)
	sign := uint16(x>>16) & 0x8000
	exp := int32(x>>23) & 0xff
	frac := x & 0x007fffff
	if exp == 0xff { // Inf or NaN
		if frac != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	}
	e := exp - 127 + 15
	if e >= 0x1f {
		return sign | 0x7c00 // overflow → Inf
	}
	if e <= 0 {
		if e < -10 {
			return sign // underflow → zero
		}
		// Subnormal half: shift the significand (with its implicit leading
		// one) right and round to nearest even.
		frac |= 0x00800000
		shift := uint32(14 - e)
		v := frac >> shift
		rem := frac & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++ // may carry into the smallest normal, which encodes correctly
		}
		return sign | uint16(v)
	}
	// Normal half: drop 13 significand bits with round-to-nearest-even. A
	// rounding carry propagates into the exponent field, correctly rounding
	// up to the next binade (or to Inf at the top).
	v := uint16(e)<<10 | uint16(frac>>13)
	rem := frac & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++
	}
	return sign | v
}

// F32FromF16 converts binary16 bits to float32 (exact: every half value is
// representable as a float32).
func F32FromF16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal half: normalize into a float32 normal.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (frac&0x3ff)<<13)
	case exp == 0x1f:
		if frac != 0 {
			return math.Float32frombits(sign | 0x7fc00000) // NaN
		}
		return math.Float32frombits(sign | 0x7f800000) // ±Inf
	}
	return math.Float32frombits(sign | (exp+112)<<23 | frac<<13)
}

// ---------------------------------------------------------------------------
// QuantMatrix

// QuantMatrix is a dense row-major matrix in a reduced precision: per-row
// symmetrically scaled int8 (I8 + Scale, the wire codec's int8 format) or
// IEEE-754 binary16 (H). Exactly the fields of the active precision are
// populated. The zero value quantizes in place via Quantize, growing its
// buffers to a high-water mark so steady-state requantization allocates
// nothing.
type QuantMatrix struct {
	Prec       Precision
	Rows, Cols int
	I8         []int8    // int8: Rows×Cols values
	Scale      []float32 // int8: one scale per row
	H          []uint16  // fp16: Rows×Cols values
}

// Resize sets the shape and precision and grows the active buffers,
// reusing capacity. Contents are unspecified afterwards.
func (q *QuantMatrix) Resize(prec Precision, rows, cols int) {
	q.Prec, q.Rows, q.Cols = prec, rows, cols
	n := rows * cols
	switch prec {
	case PrecisionInt8:
		q.I8 = grow(q.I8, n)
		q.Scale = grow(q.Scale, rows)
	case PrecisionFP16:
		q.H = grow(q.H, n)
	default:
		panic("tensor: QuantMatrix requires a reduced precision")
	}
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Quantize replaces q's contents with the quantized image of src.
func (q *QuantMatrix) Quantize(prec Precision, src *Matrix) {
	q.Resize(prec, src.Rows, src.Cols)
	for i := 0; i < src.Rows; i++ {
		q.SetRow(i, src.Row(i))
	}
}

// SetRow quantizes one row of values into row i.
func (q *QuantMatrix) SetRow(i int, src []float32) {
	switch q.Prec {
	case PrecisionInt8:
		q.Scale[i] = QuantizeRowInt8(q.I8[i*q.Cols:(i+1)*q.Cols], src)
	case PrecisionFP16:
		dst := q.H[i*q.Cols : (i+1)*q.Cols]
		for j, v := range src {
			dst[j] = F16FromF32(v)
		}
	}
}

// CopyRow copies row j of src (same precision and width) into row i — the
// pre-quantized fast path: a gather serving from a quantized shadow of the
// local shard or cache moves bytes instead of requantizing.
func (q *QuantMatrix) CopyRow(i int, src *QuantMatrix, j int) {
	switch q.Prec {
	case PrecisionInt8:
		copy(q.I8[i*q.Cols:(i+1)*q.Cols], src.I8[j*src.Cols:(j+1)*src.Cols])
		q.Scale[i] = src.Scale[j]
	case PrecisionFP16:
		copy(q.H[i*q.Cols:(i+1)*q.Cols], src.H[j*src.Cols:(j+1)*src.Cols])
	}
}

// DequantizeRow writes row i's float32 image into dst (len(dst) == Cols).
func (q *QuantMatrix) DequantizeRow(dst []float32, i int) {
	switch q.Prec {
	case PrecisionInt8:
		s := q.Scale[i]
		for j, v := range q.I8[i*q.Cols : (i+1)*q.Cols] {
			dst[j] = float32(v) * s
		}
	case PrecisionFP16:
		for j, v := range q.H[i*q.Cols : (i+1)*q.Cols] {
			dst[j] = F32FromF16(v)
		}
	}
}

// AccumulateRow adds row i's float32 image into dst — the quantized
// aggregation primitive (neighbor-mean sums dequantize on the fly instead
// of materializing a float32 copy of the features).
func (q *QuantMatrix) AccumulateRow(dst []float32, i int) {
	switch q.Prec {
	case PrecisionInt8:
		accumInt8Row(dst[:q.Cols], q.I8[i*q.Cols:(i+1)*q.Cols], q.Scale[i])
	case PrecisionFP16:
		for j, v := range q.H[i*q.Cols : (i+1)*q.Cols] {
			dst[j] += F32FromF16(v)
		}
	}
}

// RowSlice returns a view of rows [0, rows) sharing q's storage.
func (q *QuantMatrix) RowSlice(rows int) QuantMatrix {
	v := QuantMatrix{Prec: q.Prec, Rows: rows, Cols: q.Cols}
	switch q.Prec {
	case PrecisionInt8:
		v.I8 = q.I8[:rows*q.Cols]
		v.Scale = q.Scale[:rows]
	case PrecisionFP16:
		v.H = q.H[:rows*q.Cols]
	}
	return v
}

// ---------------------------------------------------------------------------
// Quantized GEMM

// MatMulQuant computes (or accumulates into, when acc) C += A · Bᵀ over two
// quantized operands of the same precision: A is rows×k, bt is the
// transposed right operand (cols×k — weights are packed transposed at
// freeze time so both operands are k-contiguous). Output is float32.
//
//   - int8 runs the integer dot kernel (int8×int8 → int32 accumulation,
//     which is exact, so the result is independent of loop order and tile
//     shape) and applies scaleA[i]·scaleB[j] once per output element with a
//     single float64→float32 rounding.
//   - fp16 dequantizes both operands into pooled fp32 buffers and runs the
//     fp32 tiled kernel — binary16 storage, float32 arithmetic.
//
// Serving forwards are single-goroutine per engine, so MatMulQuant is
// serial; it never spawns workers.
func MatMulQuant(c *Matrix, a, bt *QuantMatrix, acc bool) {
	if a.Prec != bt.Prec {
		panic(fmt.Sprintf("tensor: MatMulQuant precision mismatch %v vs %v", a.Prec, bt.Prec))
	}
	if a.Cols != bt.Cols || c.Rows != a.Rows || c.Cols != bt.Rows {
		panic(fmt.Sprintf("tensor: MatMulQuant shape mismatch: C %dx%d = A %dx%d · Bᵀ %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, bt.Rows, bt.Cols))
	}
	switch a.Prec {
	case PrecisionInt8:
		matMulInt8(c, a, bt, acc)
	case PrecisionFP16:
		matMulHalf(c, a, bt, acc)
	default:
		panic("tensor: MatMulQuant requires a reduced precision")
	}
}

// matMulInt8 is the int8 GEMM: a 2×4 register block over the SIMD integer
// dot kernel, with plain scalar remainders (integer accumulation is exact,
// so the split cannot change results).
func matMulInt8(c *Matrix, a, bt *QuantMatrix, acc bool) {
	k := a.Cols
	var sums [8]int32
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		a0 := a.I8[i*k : (i+1)*k]
		a1 := a.I8[(i+1)*k : (i+2)*k]
		j := 0
		for ; j+4 <= bt.Rows; j += 4 {
			dotInt8Block2x4(a0, a1,
				bt.I8[j*k:(j+1)*k], bt.I8[(j+1)*k:(j+2)*k],
				bt.I8[(j+2)*k:(j+3)*k], bt.I8[(j+3)*k:(j+4)*k], &sums)
			for t := 0; t < 4; t++ {
				storeQuantDot(c, i, j+t, sums[t], a.Scale[i], bt.Scale[j+t], acc)
				storeQuantDot(c, i+1, j+t, sums[4+t], a.Scale[i+1], bt.Scale[j+t], acc)
			}
		}
		for ; j < bt.Rows; j++ {
			b := bt.I8[j*k : (j+1)*k]
			storeQuantDot(c, i, j, dotInt8(a0, b), a.Scale[i], bt.Scale[j], acc)
			storeQuantDot(c, i+1, j, dotInt8(a1, b), a.Scale[i+1], bt.Scale[j], acc)
		}
	}
	for ; i < a.Rows; i++ {
		a0 := a.I8[i*k : (i+1)*k]
		for j := 0; j < bt.Rows; j++ {
			storeQuantDot(c, i, j, dotInt8(a0, bt.I8[j*k:(j+1)*k]), a.Scale[i], bt.Scale[j], acc)
		}
	}
}

// storeQuantDot applies the two row scales to an exact integer dot product
// with a single rounding (the float64 product is exact for every reachable
// sum·scale pair) and writes or accumulates the output element.
func storeQuantDot(c *Matrix, i, j int, sum int32, sa, sb float32, acc bool) {
	v := float32(float64(sum) * float64(sa) * float64(sb))
	if acc {
		c.Data[i*c.Cols+j] += v
	} else {
		c.Data[i*c.Cols+j] = v
	}
}

// dotInt8 is the scalar reference integer dot product, used for remainder
// rows/columns and as the differential-test oracle for the SIMD kernel.
func dotInt8(a, b []int8) int32 {
	var s int32
	for i, v := range a {
		s += int32(v) * int32(b[i])
	}
	return s
}

// matMulHalf dequantizes both fp16 operands into pooled fp32 buffers and
// runs the serial fp32 tiled kernel.
func matMulHalf(c *Matrix, a, bt *QuantMatrix, acc bool) {
	fa := Matrix{Rows: a.Rows, Cols: a.Cols, Data: getPackBuf(a.Rows * a.Cols)}
	for i, v := range a.H[:a.Rows*a.Cols] {
		fa.Data[i] = F32FromF16(v)
	}
	fb := Matrix{Rows: bt.Rows, Cols: bt.Cols, Data: getPackBuf(bt.Rows * bt.Cols)}
	for i, v := range bt.H[:bt.Rows*bt.Cols] {
		fb.Data[i] = F32FromF16(v)
	}
	matMulTransposedTiledRange(c, &fa, &fb, 0, c.Rows, acc)
	putPackBuf(fb.Data)
	putPackBuf(fa.Data)
}
