//go:build amd64

#include "textflag.h"

// func dotBlock2x4(a0, a1, b0, b1, b2, b3 *float32, depth int, out *[8]float32)
//
// Eight dot products (2 A rows × 4 B rows) over a shared depth, 4 floats per
// step with SSE2 (the amd64 baseline — no CPUID dispatch). Accumulator
// registers: X0..X3 = a0·{b0..b3}, X4..X7 = a1·{b0..b3}. Each vector lane
// accumulates every fourth k term in order; the reduction and the scalar
// tail are described in dot_amd64.go.
TEXT ·dotBlock2x4(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ depth+48(FP), CX
	MOVQ out+56(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	MOVQ CX, BX
	SHRQ $2, BX
	JZ   reduce

vecloop:
	MOVUPS (SI), X8
	MOVUPS (DI), X9
	MOVUPS (R8), X10
	MOVUPS (R9), X11
	MOVUPS (R10), X12
	MOVUPS (R11), X13

	MOVAPS X10, X14
	MULPS  X8, X14
	ADDPS  X14, X0
	MOVAPS X11, X14
	MULPS  X8, X14
	ADDPS  X14, X1
	MOVAPS X12, X14
	MULPS  X8, X14
	ADDPS  X14, X2
	MOVAPS X13, X14
	MULPS  X8, X14
	ADDPS  X14, X3

	MULPS X9, X10
	ADDPS X10, X4
	MULPS X9, X11
	ADDPS X11, X5
	MULPS X9, X12
	ADDPS X12, X6
	MULPS X9, X13
	ADDPS X13, X7

	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	DECQ BX
	JNZ  vecloop

reduce:
	// Horizontal reduction of each accumulator to its low lane:
	// low2 += high2 (giving l0+l2, l1+l3), then lane0 += lane1.
	MOVAPS  X0, X14
	MOVHLPS X0, X14
	ADDPS   X14, X0
	MOVAPS  X0, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X0

	MOVAPS  X1, X14
	MOVHLPS X1, X14
	ADDPS   X14, X1
	MOVAPS  X1, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X1

	MOVAPS  X2, X14
	MOVHLPS X2, X14
	ADDPS   X14, X2
	MOVAPS  X2, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X2

	MOVAPS  X3, X14
	MOVHLPS X3, X14
	ADDPS   X14, X3
	MOVAPS  X3, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X3

	MOVAPS  X4, X14
	MOVHLPS X4, X14
	ADDPS   X14, X4
	MOVAPS  X4, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X4

	MOVAPS  X5, X14
	MOVHLPS X5, X14
	ADDPS   X14, X5
	MOVAPS  X5, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X5

	MOVAPS  X6, X14
	MOVHLPS X6, X14
	ADDPS   X14, X6
	MOVAPS  X6, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X6

	MOVAPS  X7, X14
	MOVHLPS X7, X14
	ADDPS   X14, X7
	MOVAPS  X7, X14
	SHUFPS  $0x1, X14, X14
	ADDSS   X14, X7

	// Scalar tail: depth % 4 trailing terms accumulate onto the reduced
	// sums in ascending k order.
	ANDQ $3, CX
	JZ   store

tailloop:
	MOVSS (SI), X8
	MOVSS (DI), X9

	MOVSS (R8), X10
	MOVSS X10, X11
	MULSS X8, X10
	ADDSS X10, X0
	MULSS X9, X11
	ADDSS X11, X4

	MOVSS (R9), X10
	MOVSS X10, X11
	MULSS X8, X10
	ADDSS X10, X1
	MULSS X9, X11
	ADDSS X11, X5

	MOVSS (R10), X10
	MOVSS X10, X11
	MULSS X8, X10
	ADDSS X10, X2
	MULSS X9, X11
	ADDSS X11, X6

	MOVSS (R11), X10
	MOVSS X10, X11
	MULSS X8, X10
	ADDSS X10, X3
	MULSS X9, X11
	ADDSS X11, X7

	ADDQ $4, SI
	ADDQ $4, DI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  tailloop

store:
	MOVSS X0, (DX)
	MOVSS X1, 4(DX)
	MOVSS X2, 8(DX)
	MOVSS X3, 12(DX)
	MOVSS X4, 16(DX)
	MOVSS X5, 20(DX)
	MOVSS X6, 24(DX)
	MOVSS X7, 28(DX)
	RET
