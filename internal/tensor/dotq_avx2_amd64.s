//go:build amd64

#include "textflag.h"

// func dotInt8Kernel2x4AVX2(a0, a1, b0, b1, b2, b3 *int8, depth16 int, out *[8]int32)
//
// AVX2 variant of the integer dot block over depth16 int8 values (depth16 >
// 0, a multiple of 16): VPMOVSXBW sign-extends 16 bytes straight from
// memory, VPMADDWD retires 16 int16 multiplies per instruction, and the
// three-operand VEX forms need no copies — roughly 4× the per-instruction
// MAC rate of the SSE2 path. Accumulators: Y0..Y3 = a0·{b0..b3}, Y4..Y7 =
// a1·{b0..b3}. Integer accumulation is exact, so this kernel is bitwise
// identical to the SSE2 and scalar paths.
TEXT ·dotInt8Kernel2x4AVX2(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ depth16+48(FP), CX
	MOVQ out+56(FP), DX

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	SHRQ $4, CX

vecloop:
	VPMOVSXBW (SI), Y8
	VPMOVSXBW (DI), Y9
	VPMOVSXBW (R8), Y10
	VPMOVSXBW (R9), Y11
	VPMOVSXBW (R10), Y12
	VPMOVSXBW (R11), Y13

	VPMADDWD Y8, Y10, Y14
	VPADDD   Y14, Y0, Y0
	VPMADDWD Y8, Y11, Y14
	VPADDD   Y14, Y1, Y1
	VPMADDWD Y8, Y12, Y14
	VPADDD   Y14, Y2, Y2
	VPMADDWD Y8, Y13, Y14
	VPADDD   Y14, Y3, Y3

	VPMADDWD Y9, Y10, Y10
	VPADDD   Y10, Y4, Y4
	VPMADDWD Y9, Y11, Y11
	VPADDD   Y11, Y5, Y5
	VPMADDWD Y9, Y12, Y12
	VPADDD   Y12, Y6, Y6
	VPMADDWD Y9, Y13, Y13
	VPADDD   Y13, Y7, Y7

	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	DECQ CX
	JNZ  vecloop

	// Reduce all eight accumulators with three horizontal-add levels per
	// group of four: VPHADDD interleaves pair sums of two registers, so
	// two levels leave [r0 r1 r2 r3] per 128-bit lane and one cross-lane
	// fold finishes four results at once — 6 instructions per group where
	// a per-register shuffle cascade needs 28.
	VPHADDD      Y1, Y0, Y14
	VPHADDD      Y3, Y2, Y15
	VPHADDD      Y15, Y14, Y14
	VEXTRACTI128 $1, Y14, X15
	VPADDD       X15, X14, X14
	VMOVDQU      X14, (DX)

	VPHADDD      Y5, Y4, Y14
	VPHADDD      Y7, Y6, Y15
	VPHADDD      Y15, Y14, Y14
	VEXTRACTI128 $1, Y14, X15
	VPADDD       X15, X14, X14
	VMOVDQU      X14, 16(DX)

	VZEROUPPER
	RET

// func accumInt8KernelAVX2(dst *float32, src *int8, scale float32, n8 int)
//
// dst[j] += float32(src[j]) * scale over n8 elements (n8 > 0, a multiple
// of 8) — the dequantize-accumulate inner loop of quantized neighbor
// aggregation. Strictly elementwise (sign-extend, convert, one multiply
// rounding, one add rounding per lane), so it is bitwise identical to the
// scalar loop; no FMA, which would skip the product rounding.
TEXT ·accumInt8KernelAVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSS scale+16(FP), Y0
	MOVQ         n8+24(FP), CX
	SHRQ         $3, CX

accloop:
	VPMOVSXBD (SI), Y1
	VCVTDQ2PS Y1, Y1
	VMULPS    Y0, Y1, Y1
	VADDPS    (DI), Y1, Y1
	VMOVUPS   Y1, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       accloop

	VZEROUPPER
	RET
