package tensor

import (
	"runtime"
	"sync"
	"testing"

	"salientpp/internal/rng"
)

// backendShapes exercises every remainder lane of the tiled dispatch: odd
// rows/cols/depth (incl. the micro-kernel's 2-row and 4-column remainders
// and the k%4 SIMD tail), sub-threshold serial paths, the exact
// MinParallelRows boundary, panel-boundary column counts (panelRows(k)
// multiples ±1), and i-chunk boundaries (tileIChunk=128 multiples ±1).
var backendShapes = [][3]int{
	{1, 1, 1}, {2, 3, 4}, {5, 9, 6}, {7, 13, 11},
	{63, 17, 10}, {64, 16, 9}, {65, 19, 33},
	{96, 128, 31}, {96, 128, 32}, {96, 128, 33},
	{127, 64, 65}, {128, 64, 64}, {129, 96, 40},
	{130, 21, 12}, {160, 100, 129}, {257, 128, 256},
	{64, 256, 16}, {64, 256, 17},
}

// TestTiledMatchesNaiveReference is the differential sweep for the tiled
// SIMD backend: every product, every shape in backendShapes (odd shapes,
// tail rows, tile- and panel-boundary sizes), checked against the committed
// float64-accumulating naive reference within fp32 tolerance. The SIMD
// kernel's strided-lane association differs from the scalar Blocked chain
// by rounding noise, so the reference — not bitwise equality with Blocked —
// is the correctness anchor.
func TestTiledMatchesNaiveReference(t *testing.T) {
	r := rng.New(55)
	var tiled Tiled
	for _, s := range backendShapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(m, k, r)
		b := randMat(k, n, r)
		want := New(m, n)
		refMatMul(want, a, b)

		got := New(m, n)
		tiled.MatMul(got, a, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("tiled MatMul %v: max diff vs naive reference %v", s, d)
		}

		at := New(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		tiled.MatMulATB(got, at, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("tiled MatMulATB %v: max diff vs naive reference %v", s, d)
		}

		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		tiled.MatMulABT(got, a, bt)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("tiled MatMulABT %v: max diff vs naive reference %v", s, d)
		}
	}
}

// TestTiledMatchesBlockedTolerance cross-checks the two backends against
// each other: the SIMD and scalar associations may differ only by fp32
// rounding noise, never by a placement error (a wrong tile boundary or
// remainder lane shows up as a large element-wise diff long before it
// shows up against the float64 reference sweep above).
func TestTiledMatchesBlockedTolerance(t *testing.T) {
	r := rng.New(101)
	var tiled Tiled
	var blocked Blocked
	for _, s := range backendShapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(m, k, r)
		b := randMat(k, n, r)
		at := randMat(k, m, r)
		bt := randMat(n, k, r)

		want, got := New(m, n), New(m, n)
		blocked.MatMul(want, a, b)
		tiled.MatMul(got, a, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("MatMul %v: tiled vs blocked diff %v", s, d)
		}

		blocked.MatMulATB(want, at, b)
		tiled.MatMulATB(got, at, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("MatMulATB %v: tiled vs blocked diff %v", s, d)
		}

		blocked.MatMulABT(want, a, bt)
		tiled.MatMulABT(got, a, bt)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("MatMulABT %v: tiled vs blocked diff %v", s, d)
		}
	}
}

// TestMatMulAddMatchesMatMulPlusAdd pins the fused-pass contract: C += A·B
// must be bitwise identical to MatMul into scratch followed by Add, for both
// backends, so streaming the neighbor transform into the output matrix
// cannot change training numerics.
func TestMatMulAddMatchesMatMulPlusAdd(t *testing.T) {
	r := rng.New(77)
	for _, be := range []Backend{Tiled{}, Blocked{}} {
		for _, s := range backendShapes {
			m, k, n := s[0], s[1], s[2]
			a := randMat(m, k, r)
			b := randMat(k, n, r)
			base := randMat(m, n, r)

			want := base.Clone()
			tmp := New(m, n)
			be.MatMul(tmp, a, b)
			want.Add(tmp)

			got := base.Clone()
			be.MatMulAdd(got, a, b)
			if MaxAbsDiff(want, got) != 0 {
				t.Fatalf("%s MatMulAdd %v: differs from MatMul+Add", be.Name(), s)
			}
		}
	}
}

// TestTiledDeterministicAcrossWorkers extends the bitwise-reproducibility
// pin to the tiled dispatch at shapes large enough to spawn workers and
// cross chunk/panel boundaries.
func TestTiledDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(19)
	const m, k, n = 300, 128, 250
	a := randMat(m, k, r)
	b := randMat(k, n, r)
	at := randMat(k, m, r)
	bt := randMat(n, k, r)
	base := randMat(m, n, r)

	run := func() []*Matrix {
		c1, c2, c3 := New(m, n), New(m, n), New(m, n)
		c4 := base.Clone()
		MatMul(c1, a, b)
		MatMulATB(c2, at, b)
		MatMulABT(c3, a, bt)
		MatMulAdd(c4, a, b)
		return []*Matrix{c1, c2, c3, c4}
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(8)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	for i := range serial {
		if MaxAbsDiff(serial[i], parallel[i]) != 0 {
			t.Fatalf("tiled kernel %d output depends on GOMAXPROCS", i)
		}
	}
}

// TestMinParallelRowsThreshold pins the exact dispatch behavior at the
// threshold: MinParallelRows-1 rows run inline (one call, on the calling
// goroutine), exactly MinParallelRows rows take the spawning path and split
// into one contiguous chunk per worker. With GOMAXPROCS=1 the spawning path
// also degenerates to one inline call.
func TestMinParallelRowsThreshold(t *testing.T) {
	type span struct{ lo, hi int }
	collect := func(n int) []span {
		var mu sync.Mutex
		var got []span
		ParallelRows(n, func(lo, hi int) {
			mu.Lock()
			got = append(got, span{lo, hi})
			mu.Unlock()
		})
		return got
	}

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	if got := collect(MinParallelRows - 1); len(got) != 1 || got[0] != (span{0, MinParallelRows - 1}) {
		t.Fatalf("n=%d: want one inline span [0,%d), got %v", MinParallelRows-1, MinParallelRows-1, got)
	}
	got := collect(MinParallelRows)
	if len(got) != 4 {
		t.Fatalf("n=%d at GOMAXPROCS=4: want 4 worker spans, got %v", MinParallelRows, got)
	}
	covered := make([]bool, MinParallelRows)
	for _, s := range got {
		for i := s.lo; i < s.hi; i++ {
			if covered[i] {
				t.Fatalf("n=%d: row %d covered twice (%v)", MinParallelRows, i, got)
			}
			covered[i] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("n=%d: row %d uncovered (%v)", MinParallelRows, i, got)
		}
	}

	runtime.GOMAXPROCS(1)
	if got := collect(MinParallelRows); len(got) != 1 || got[0] != (span{0, MinParallelRows}) {
		t.Fatalf("n=%d at GOMAXPROCS=1: want one inline span, got %v", MinParallelRows, got)
	}
}

// TestTiledWarmPathAllocationFree pins the pack-scratch reuse: once the
// shared free list is warm, the tiled kernels (including the packing
// MatMul/MatMulAdd) perform zero heap allocations on the serial path.
func TestTiledWarmPathAllocationFree(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	r := rng.New(31)
	const m, k, n = 96, 64, 48
	a := randMat(m, k, r)
	b := randMat(k, n, r)
	bt := randMat(n, k, r)
	at := randMat(k, m, r)
	c := New(m, n)
	step := func() {
		MatMul(c, a, b)
		MatMulAdd(c, a, b)
		MatMulABT(c, a, bt)
		MatMulATB(c, at, b)
	}
	step() // warm the pack free list
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("warm tiled kernels allocated %.1f times per run, want 0", allocs)
	}
}

// benchGEMM are the layer-0/layer-1 shapes of the CI-scale epoch benchmark
// (FeatureDim 128 → Hidden 256), at a realistic MFG destination count.
func benchGEMM(b *testing.B, f func(c, a, bm *Matrix), m, k, n int) {
	b.Helper()
	r := rng.New(12)
	a := randMat(m, k, r)
	bm := randMat(k, n, r)
	c := New(m, n)
	f(c, a, bm) // warm scratch so allocs/op reflects steady state
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(c, a, bm)
	}
}

// BenchmarkMatMulTiled vs BenchmarkMatMulBlocked is the kernel
// microbenchmark sweep CI runs with -benchmem: the tiled path must show
// zero steady-state allocations and a clear bytes/s win at epoch-bench
// shapes.
func BenchmarkMatMulTiled(b *testing.B) {
	benchGEMM(b, func(c, a, bm *Matrix) { Tiled{}.MatMul(c, a, bm) }, 4096, 128, 256)
}

func BenchmarkMatMulBlocked(b *testing.B) {
	benchGEMM(b, func(c, a, bm *Matrix) { Blocked{}.MatMul(c, a, bm) }, 4096, 128, 256)
}

func BenchmarkMatMulATBTiled(b *testing.B) {
	r := rng.New(13)
	a := randMat(4096, 128, r)
	bm := randMat(4096, 256, r)
	c := New(128, 256)
	Tiled{}.MatMulATB(c, a, bm)
	b.SetBytes(int64(2 * 4096 * 128 * 256 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tiled{}.MatMulATB(c, a, bm)
	}
}

func BenchmarkMatMulATBBlocked(b *testing.B) {
	r := rng.New(13)
	a := randMat(4096, 128, r)
	bm := randMat(4096, 256, r)
	c := New(128, 256)
	Blocked{}.MatMulATB(c, a, bm)
	b.SetBytes(int64(2 * 4096 * 128 * 256 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blocked{}.MatMulATB(c, a, bm)
	}
}

func benchABT(b *testing.B, be Backend) {
	b.Helper()
	r := rng.New(14)
	a := randMat(4096, 256, r)
	bt := randMat(128, 256, r)
	c := New(4096, 128)
	be.MatMulABT(c, a, bt)
	b.SetBytes(int64(2 * 4096 * 256 * 128 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.MatMulABT(c, a, bt)
	}
}

func BenchmarkMatMulABTTiled(b *testing.B)   { benchABT(b, Tiled{}) }
func BenchmarkMatMulABTBlocked(b *testing.B) { benchABT(b, Blocked{}) }
