//go:build amd64

#include "textflag.h"

// func x86HasAVX2() bool
//
// Standard AVX2 availability probe: CPUID.1:ECX must report OSXSAVE and
// AVX, XGETBV(0) must show the OS saves XMM and YMM state, and
// CPUID.(7,0):EBX bit 5 must report AVX2.
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX // OSXSAVE | AVX
	CMPL CX, $0x18000000
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX          // XMM | YMM state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $0x20, BX      // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
