package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"salientpp/internal/rng"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatal("bad shape")
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	if m.Row(1)[2] != 5 {
		t.Fatal("Row aliasing broken")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestAddScaleBias(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatal("Add broken")
	}
	a.Scale(0.5)
	if a.At(0, 0) != 5.5 {
		t.Fatal("Scale broken")
	}
	a.AddBias([]float32{1, -1})
	if a.At(0, 0) != 6.5 || a.At(0, 1) != 10 {
		t.Fatal("AddBias broken")
	}
}

func TestReLUAndBackward(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	m.ReLU()
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("ReLU: %v", m.Data)
		}
	}
	grad := FromSlice(1, 4, []float32{5, 5, 5, 5})
	ReLUBackward(grad, m)
	if grad.Data[0] != 0 || grad.Data[2] != 5 || grad.Data[3] != 0 {
		t.Fatalf("ReLUBackward: %v", grad.Data)
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	r := rng.New(1)
	const m, k, n = 17, 13, 9
	a := New(m, k)
	b := New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(r.NormFloat64())
	}
	c := New(m, n)
	MatMul(c, a, b)

	// ATB: build Aᵀ explicitly and verify Aᵀᵀ·B = A·B path.
	at := New(k, m)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	c2 := New(m, n)
	MatMulATB(c2, at, b)
	if d := MaxAbsDiff(c, c2); d > 1e-4 {
		t.Fatalf("ATB disagrees with MatMul by %v", d)
	}

	// ABT: build Bᵀ explicitly.
	bt := New(n, k)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	c3 := New(m, n)
	MatMulABT(c3, a, bt)
	if d := MaxAbsDiff(c, c3); d > 1e-4 {
		t.Fatalf("ABT disagrees with MatMul by %v", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestGatherScatter(t *testing.T) {
	src := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	dst := New(2, 2)
	Gather(dst, src, []int32{2, 0})
	if dst.At(0, 0) != 5 || dst.At(1, 1) != 2 {
		t.Fatalf("Gather: %v", dst.Data)
	}
	acc := New(3, 2)
	ScatterAdd(acc, dst, []int32{1, 1})
	if acc.At(1, 0) != 6 || acc.At(1, 1) != 8 {
		t.Fatalf("ScatterAdd: %v", acc.Data)
	}
	if acc.At(0, 0) != 0 {
		t.Fatal("ScatterAdd touched wrong row")
	}
}

func TestDropoutMaskConsistency(t *testing.T) {
	r := rng.New(3)
	m := New(8, 8)
	for i := range m.Data {
		m.Data[i] = 1
	}
	mask := New(8, 8)
	m.Dropout(0.5, mask, r)
	zeros := 0
	for i := range m.Data {
		if mask.Data[i] == 0 {
			if m.Data[i] != 0 {
				t.Fatal("mask and value disagree")
			}
			zeros++
		} else if math.Abs(float64(m.Data[i]-2)) > 1e-6 {
			t.Fatalf("survivor not scaled: %v", m.Data[i])
		}
	}
	if zeros < 10 || zeros > 54 {
		t.Fatalf("dropout rate implausible: %d/64 zeros", zeros)
	}
	// p=0 keeps everything with unit mask.
	m2 := New(2, 2)
	mask2 := New(2, 2)
	m2.Dropout(0, mask2, r)
	for i := range mask2.Data {
		if mask2.Data[i] != 1 {
			t.Fatal("p=0 mask must be all ones")
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over C classes: loss = ln(C).
	logits := New(2, 4)
	labels := []int32{1, 3}
	grad := New(2, 4)
	loss := SoftmaxCrossEntropy(logits, labels, grad)
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss=%v want ln4", loss)
	}
	// Gradient rows sum to 0 and the label entry is negative.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
		if grad.At(i, int(labels[i])) >= 0 {
			t.Fatal("label gradient must be negative")
		}
	}
}

func TestSoftmaxCrossEntropyMasked(t *testing.T) {
	logits := FromSlice(2, 2, []float32{10, 0, 0, 10})
	grad := New(2, 2)
	loss := SoftmaxCrossEntropy(logits, []int32{0, -1}, grad)
	if loss > 1e-3 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	if grad.At(1, 0) != 0 || grad.At(1, 1) != 0 {
		t.Fatal("masked row must have zero gradient")
	}
	if v := SoftmaxCrossEntropy(logits, []int32{-1, -1}, grad); v != 0 {
		t.Fatalf("all-masked loss = %v", v)
	}
}

// Numerical gradient check for the fused softmax/CE kernel.
func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	r := rng.New(7)
	logits := New(3, 5)
	for i := range logits.Data {
		logits.Data[i] = float32(r.NormFloat64())
	}
	labels := []int32{2, 0, 4}
	grad := New(3, 5)
	SoftmaxCrossEntropy(logits, labels, grad)
	const eps = 1e-3
	for i := 0; i < logits.Rows; i++ {
		for j := 0; j < logits.Cols; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+eps)
			lp := SoftmaxCrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig-eps)
			lm := SoftmaxCrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig)
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-float64(grad.At(i, j))) > 1e-3 {
				t.Fatalf("grad(%d,%d): analytic %v numeric %v", i, j, grad.At(i, j), numeric)
			}
		}
	}
}

func TestAccuracyAndArgmax(t *testing.T) {
	logits := FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	am := Argmax(logits)
	if am[0] != 0 || am[1] != 1 || am[2] != 0 {
		t.Fatalf("Argmax=%v", am)
	}
	acc := Accuracy(logits, []int32{0, 1, 1})
	if math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy=%v", acc)
	}
	if Accuracy(logits, []int32{-1, -1, -1}) != 0 {
		t.Fatal("all-masked accuracy must be 0")
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestMatMulLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 2+r.Intn(8), 2+r.Intn(8), 2+r.Intn(8)
		a, b, c := New(m, k), New(k, n), New(k, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(r.NormFloat64())
			c.Data[i] = float32(r.NormFloat64())
		}
		bc := b.Clone()
		bc.Add(c)
		left := New(m, n)
		MatMul(left, a, bc)
		ab, ac := New(m, n), New(m, n)
		MatMul(ab, a, b)
		MatMul(ac, a, c)
		ab.Add(ac)
		return MaxAbsDiff(left, ab) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(1)
	a := New(256, 256)
	bb := New(256, 256)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
		bb.Data[i] = float32(r.NormFloat64())
	}
	c := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb)
	}
}
