//go:build !amd64

package tensor

// dotInt8Block2x4 is the portable integer dot block. Integer accumulation
// is exact, so this plain loop produces bitwise-identical results to the
// SIMD amd64 kernel at every depth.
func dotInt8Block2x4(a0, a1, b0, b1, b2, b3 []int8, out *[8]int32) {
	*out = [8]int32{}
	for k := range a0 {
		va0, va1 := int32(a0[k]), int32(a1[k])
		out[0] += va0 * int32(b0[k])
		out[1] += va0 * int32(b1[k])
		out[2] += va0 * int32(b2[k])
		out[3] += va0 * int32(b3[k])
		out[4] += va1 * int32(b0[k])
		out[5] += va1 * int32(b1[k])
		out[6] += va1 * int32(b2[k])
		out[7] += va1 * int32(b3[k])
	}
}

// accumInt8Row adds float32(src[j])*scale into dst[j] — bitwise identical
// to the elementwise amd64 kernel.
func accumInt8Row(dst []float32, src []int8, scale float32) {
	for j, v := range src {
		dst[j] += float32(v) * scale
	}
}

// dotQKernelName identifies the integer micro-kernel in benchmarks and the
// README.
const dotQKernelName = "go"
