//go:build !amd64

package tensor

import "unsafe"

// dotBlock2x4 is the portable fallback for the SSE2 micro-kernel in
// dot_amd64.s. It reproduces the exact same association: four strided
// accumulator lanes (lane L takes the k ≡ L (mod 4) terms in ascending
// order) reduced as (l0+l2)+(l1+l3), with the k%4 tail accumulating scalar
// onto the reduced sum — so outputs are bitwise identical across
// architectures.
func dotBlock2x4(a0p, a1p, b0p, b1p, b2p, b3p *float32, depth int, out *[8]float32) {
	a0 := unsafe.Slice(a0p, depth)
	a1 := unsafe.Slice(a1p, depth)
	b0 := unsafe.Slice(b0p, depth)
	b1 := unsafe.Slice(b1p, depth)
	b2 := unsafe.Slice(b2p, depth)
	b3 := unsafe.Slice(b3p, depth)

	var l00, l01, l02, l03 [4]float32
	var l10, l11, l12, l13 [4]float32
	k := 0
	for ; k+4 <= depth; k += 4 {
		for l := 0; l < 4; l++ {
			av0, av1 := a0[k+l], a1[k+l]
			bv0, bv1, bv2, bv3 := b0[k+l], b1[k+l], b2[k+l], b3[k+l]
			l00[l] += av0 * bv0
			l01[l] += av0 * bv1
			l02[l] += av0 * bv2
			l03[l] += av0 * bv3
			l10[l] += av1 * bv0
			l11[l] += av1 * bv1
			l12[l] += av1 * bv2
			l13[l] += av1 * bv3
		}
	}
	reduce := func(l [4]float32) float32 { return (l[0] + l[2]) + (l[1] + l[3]) }
	s00, s01, s02, s03 := reduce(l00), reduce(l01), reduce(l02), reduce(l03)
	s10, s11, s12, s13 := reduce(l10), reduce(l11), reduce(l12), reduce(l13)
	for ; k < depth; k++ {
		av0, av1 := a0[k], a1[k]
		bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
		s00 += av0 * bv0
		s01 += av0 * bv1
		s02 += av0 * bv2
		s03 += av0 * bv3
		s10 += av1 * bv0
		s11 += av1 * bv1
		s12 += av1 * bv2
		s13 += av1 * bv3
	}
	out[0], out[1], out[2], out[3] = s00, s01, s02, s03
	out[4], out[5], out[6], out[7] = s10, s11, s12, s13
}

// dotKernelName identifies the micro-kernel implementation in benchmarks
// and the README.
const dotKernelName = "go"
