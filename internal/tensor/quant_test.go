package tensor

import (
	"math"
	"testing"

	"salientpp/internal/rng"
)

// TestDotInt8KernelMatchesScalar differential-tests the SIMD integer dot
// block against the plain scalar loop across depths straddling the 8-wide
// SIMD boundary. Integer accumulation is exact, so the comparison is for
// equality, not tolerance.
func TestDotInt8KernelMatchesScalar(t *testing.T) {
	r := rng.New(11)
	fill := func(n int) []int8 {
		s := make([]int8, n)
		for i := range s {
			s[i] = int8(int(r.Uint64()%255) - 127)
		}
		return s
	}
	for _, depth := range []int{1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 64, 100, 127, 128, 129} {
		a0, a1 := fill(depth), fill(depth)
		bs := [4][]int8{fill(depth), fill(depth), fill(depth), fill(depth)}
		var out [8]int32
		dotInt8Block2x4(a0, a1, bs[0], bs[1], bs[2], bs[3], &out)
		for t2 := 0; t2 < 4; t2++ {
			if want := dotInt8(a0, bs[t2]); out[t2] != want {
				t.Fatalf("depth %d: out[%d] = %d, scalar = %d", depth, t2, out[t2], want)
			}
			if want := dotInt8(a1, bs[t2]); out[4+t2] != want {
				t.Fatalf("depth %d: out[%d] = %d, scalar = %d", depth, 4+t2, out[4+t2], want)
			}
		}
	}
}

// refQuantMatMul computes C = A·Bᵀ in float64 over the dequantized images
// of the two operands — the exact value MatMulQuant approximates with one
// float32 rounding per output element.
func refQuantMatMul(a, bt *QuantMatrix) *Matrix {
	c := New(a.Rows, bt.Rows)
	ar := make([]float32, a.Cols)
	br := make([]float32, bt.Cols)
	for i := 0; i < a.Rows; i++ {
		a.DequantizeRow(ar, i)
		for j := 0; j < bt.Rows; j++ {
			bt.DequantizeRow(br, j)
			var s float64
			for k := range ar {
				s += float64(ar[k]) * float64(br[k])
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func randMatrix(rows, cols int, seed uint64) *Matrix {
	m := New(rows, cols)
	r := rng.New(seed)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

// TestMatMulQuantMatchesReference sweeps odd shapes (tail rows, remainder
// columns, sub-8 depths) for both reduced precisions against the float64
// reference over dequantized operands.
func TestMatMulQuantMatchesReference(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 8, 4}, {2, 16, 4}, {3, 7, 5}, {5, 9, 3},
		{8, 64, 16}, {17, 33, 13}, {64, 100, 48}, {33, 128, 7},
	}
	for _, prec := range []Precision{PrecisionInt8, PrecisionFP16} {
		for _, sh := range shapes {
			a, b := randMatrix(sh.m, sh.k, 5), randMatrix(sh.n, sh.k, 7)
			var qa, qb QuantMatrix
			qa.Quantize(prec, a)
			qb.Quantize(prec, b)
			want := refQuantMatMul(&qa, &qb)

			got := New(sh.m, sh.n)
			MatMulQuant(got, &qa, &qb, false)
			for i := range got.Data {
				if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-4 {
					t.Fatalf("%v %dx%dx%d: element %d differs by %g (%g vs %g)",
						prec, sh.m, sh.k, sh.n, i, d, got.Data[i], want.Data[i])
				}
			}

			// Accumulate mode adds exactly one product of the same values.
			acc := New(sh.m, sh.n)
			for i := range acc.Data {
				acc.Data[i] = 1
			}
			MatMulQuant(acc, &qa, &qb, true)
			for i := range acc.Data {
				if d := math.Abs(float64(acc.Data[i] - (1 + got.Data[i]))); d > 1e-5 {
					t.Fatalf("%v %dx%dx%d: acc element %d differs by %g", prec, sh.m, sh.k, sh.n, i, d)
				}
			}
		}
	}
}

// TestQuantizeRoundTripMatchesWire pins the compute-path quantizers to the
// wire codec's semantics: scale = maxAbs/127 with round-half-away-from-zero
// clamped to ±127, and fp16 round-to-nearest-even — including the
// non-finite handling the codec documents (±Inf saturates, NaN → 0).
func TestQuantizeRoundTripMatchesWire(t *testing.T) {
	row := []float32{0, 1, -1, 0.5, -127, 254, float32(math.Inf(1)), float32(math.NaN()), 1e-8}
	scale := Int8RowScale(row)
	if want := float32(254.0 / 127); scale != want {
		t.Fatalf("scale = %g, want %g", scale, want)
	}
	q := make([]int8, len(row))
	QuantizeRowInt8(q, row)
	wantQ := []int8{0, 1, -1, 0, -64, 127, 127, 0, 0}
	for i := range q {
		if q[i] != wantQ[i] {
			t.Fatalf("q[%d] = %d, want %d", i, q[i], wantQ[i])
		}
	}

	// A zero (or all-non-finite) row quantizes to zeros under scale 0.
	if s := Int8RowScale([]float32{0, 0}); s != 0 {
		t.Fatalf("zero-row scale = %g", s)
	}
	if v := QuantizeInt8(5, 0); v != 0 {
		t.Fatalf("zero-scale quantize = %d", v)
	}

	// fp16 round trip is exact for values representable in binary16.
	for _, v := range []float32{0, 1, -1, 0.5, 65504, -65504, 6.1035156e-05} {
		if got := F32FromF16(F16FromF32(v)); got != v {
			t.Fatalf("fp16 round trip of %g = %g", v, got)
		}
	}
	if !math.IsInf(float64(F32FromF16(F16FromF32(1e9))), 1) {
		t.Fatal("fp16 overflow must saturate to +Inf")
	}
}

// TestQuantMatrixRowOps covers SetRow/DequantizeRow/AccumulateRow/RowSlice
// in both precisions.
func TestQuantMatrixRowOps(t *testing.T) {
	src := randMatrix(6, 10, 3)
	for _, prec := range []Precision{PrecisionInt8, PrecisionFP16} {
		var q QuantMatrix
		q.Quantize(prec, src)
		deq := make([]float32, 10)
		acc := make([]float32, 10)
		for i := 0; i < src.Rows; i++ {
			q.DequantizeRow(deq, i)
			for j, v := range deq {
				if d := math.Abs(float64(v - src.At(i, j))); d > 0.05 {
					t.Fatalf("%v: row %d col %d off by %g", prec, i, j, d)
				}
				acc[j] = 1
			}
			q.AccumulateRow(acc, i)
			for j := range acc {
				if d := math.Abs(float64(acc[j] - (1 + deq[j]))); d > 1e-6 {
					t.Fatalf("%v: accumulate row %d col %d off by %g", prec, i, j, d)
				}
			}
		}
		view := q.RowSlice(3)
		if view.Rows != 3 || view.Cols != 10 || view.Prec != prec {
			t.Fatalf("%v: bad row slice %+v", prec, view)
		}
		view.DequantizeRow(deq, 2)
		q.DequantizeRow(acc, 2)
		for j := range deq {
			if deq[j] != acc[j] {
				t.Fatalf("%v: row slice does not alias storage", prec)
			}
		}
	}
}

// TestParsePrecision covers the config surface.
func TestParsePrecision(t *testing.T) {
	for name, want := range map[string]Precision{"": PrecisionFP32, "fp32": PrecisionFP32, "fp16": PrecisionFP16, "int8": PrecisionInt8} {
		got, err := ParsePrecision(name)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", name, got, err)
		}
		if name != "" && got.String() != name {
			t.Fatalf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Fatal("expected error for unknown precision")
	}
}

// BenchmarkMatMulQuantInt8 measures the integer GEMM at the serve-forward
// shape class; compare against BenchmarkMatMulTiled at the same shape for
// the int8 speedup the serving backend banks on.
func BenchmarkMatMulQuantInt8(b *testing.B) {
	a, w := randMatrix(4096, 128, 1), randMatrix(256, 128, 2)
	var qa, qw QuantMatrix
	qa.Quantize(PrecisionInt8, a)
	qw.Quantize(PrecisionInt8, w)
	c := New(4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulQuant(c, &qa, &qw, false)
	}
}
