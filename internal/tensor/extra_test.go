package tensor

import (
	"math"
	"testing"

	"salientpp/internal/rng"
)

func TestXavierInitRange(t *testing.T) {
	m := New(64, 64)
	m.XavierInit(64, 64, rng.New(1))
	limit := math.Sqrt(6.0 / 128.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(float64(v)) > limit+1e-6 {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("Xavier init mostly zero")
	}
}

func TestHeInitStd(t *testing.T) {
	m := New(200, 200)
	const fanIn = 50
	m.HeInit(fanIn, rng.New(2))
	var sumsq float64
	for _, v := range m.Data {
		sumsq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumsq / float64(len(m.Data)))
	want := math.Sqrt(2.0 / fanIn)
	if math.Abs(std-want) > 0.01 {
		t.Fatalf("He std %v want %v", std, want)
	}
}

func TestMulAndNorm(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{2, 0, -1})
	a.Mul(b)
	if a.Data[0] != 2 || a.Data[1] != 0 || a.Data[2] != -3 {
		t.Fatalf("Mul: %v", a.Data)
	}
	c := FromSlice(1, 2, []float32{3, 4})
	if math.Abs(c.Norm()-5) > 1e-9 {
		t.Fatalf("Norm=%v", c.Norm())
	}
}

func TestZeroAndSameShape(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	if a.SameShape(New(2, 3)) {
		t.Fatal("SameShape false positive")
	}
	if !a.SameShape(New(2, 2)) {
		t.Fatal("SameShape false negative")
	}
}

func TestShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"New negative":       func() { New(-1, 2) },
		"Add mismatch":       func() { New(1, 2).Add(New(2, 1)) },
		"Mul mismatch":       func() { New(1, 2).Mul(New(2, 1)) },
		"AddBias mismatch":   func() { New(1, 2).AddBias([]float32{1}) },
		"Gather mismatch":    func() { Gather(New(2, 2), New(3, 3), []int32{0, 1}) },
		"Scatter mismatch":   func() { ScatterAdd(New(3, 3), New(2, 2), []int32{0}) },
		"MaxAbsDiff shape":   func() { MaxAbsDiff(New(1, 1), New(2, 2)) },
		"ReLUBack mismatch":  func() { ReLUBackward(New(1, 2), New(2, 1)) },
		"MatMulATB mismatch": func() { MatMulATB(New(2, 2), New(3, 2), New(2, 2)) },
		"MatMulABT mismatch": func() { MatMulABT(New(2, 2), New(2, 3), New(2, 2)) },
		"CE label mismatch":  func() { SoftmaxCrossEntropy(New(2, 2), []int32{0}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestParallelRowsLargeMatrix(t *testing.T) {
	// Exercise the multi-goroutine matmul path (>=64 rows) against the
	// single-threaded reference on a small-but-wide product.
	r := rng.New(5)
	a := New(128, 32)
	b := New(32, 16)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(r.NormFloat64())
	}
	c := New(128, 16)
	MatMul(c, a, b)
	// Reference: naive triple loop.
	ref := New(128, 16)
	for i := 0; i < 128; i++ {
		for j := 0; j < 16; j++ {
			var s float32
			for k := 0; k < 32; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			ref.Set(i, j, s)
		}
	}
	if d := MaxAbsDiff(c, ref); d > 1e-4 {
		t.Fatalf("parallel matmul differs from reference by %v", d)
	}
}
