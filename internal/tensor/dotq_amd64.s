//go:build amd64

#include "textflag.h"

// func dotInt8Kernel2x4(a0, a1, b0, b1, b2, b3 *int8, depth8 int, out *[8]int32)
//
// Eight integer dot products (2 A rows × 4 B rows) over depth8 int8 values
// (depth8 > 0, a multiple of 8), SSE2 only. Each step sign-extends 8 bytes
// of every operand to int16 (PUNPCKLBW with itself then PSRAW $8) and feeds
// PMADDWL, which multiplies int16 pairs and sums adjacent products into
// 4×int32 — 8 multiply-adds per instruction pair, double the fp32 kernel's
// rate. Accumulators: X0..X3 = a0·{b0..b3}, X4..X7 = a1·{b0..b3}. Integer
// accumulation is exact, so the lane association is irrelevant to the
// result; the caller handles the depth%8 tail in Go.
//
// int32 lanes cannot overflow at any realistic depth: each PMADDWL lane is
// at most 2·127² and a lane accumulates depth8/8 of them, so depths beyond
// 66 million rows of 127·127 products would be needed to wrap.
TEXT ·dotInt8Kernel2x4(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b0+16(FP), R8
	MOVQ b1+24(FP), R9
	MOVQ b2+32(FP), R10
	MOVQ b3+40(FP), R11
	MOVQ depth8+48(FP), CX
	MOVQ out+56(FP), DX

	PXOR X0, X0
	PXOR X1, X1
	PXOR X2, X2
	PXOR X3, X3
	PXOR X4, X4
	PXOR X5, X5
	PXOR X6, X6
	PXOR X7, X7

	SHRQ $3, CX

vecloop:
	// Load 8 int8 from each operand and sign-extend to 8 int16.
	MOVQ      (SI), X8
	PUNPCKLBW X8, X8
	PSRAW     $8, X8
	MOVQ      (DI), X9
	PUNPCKLBW X9, X9
	PSRAW     $8, X9
	MOVQ      (R8), X10
	PUNPCKLBW X10, X10
	PSRAW     $8, X10
	MOVQ      (R9), X11
	PUNPCKLBW X11, X11
	PSRAW     $8, X11
	MOVQ      (R10), X12
	PUNPCKLBW X12, X12
	PSRAW     $8, X12
	MOVQ      (R11), X13
	PUNPCKLBW X13, X13
	PSRAW     $8, X13

	// a0 row: multiply-add against copies, preserving the b registers.
	MOVOA   X10, X14
	PMADDWL X8, X14
	PADDD   X14, X0
	MOVOA   X11, X14
	PMADDWL X8, X14
	PADDD   X14, X1
	MOVOA   X12, X14
	PMADDWL X8, X14
	PADDD   X14, X2
	MOVOA   X13, X14
	PMADDWL X8, X14
	PADDD   X14, X3

	// a1 row: the b copies are dead after this, destroy them in place.
	PMADDWL X9, X10
	PADDD   X10, X4
	PMADDWL X9, X11
	PADDD   X11, X5
	PMADDWL X9, X12
	PADDD   X12, X6
	PMADDWL X9, X13
	PADDD   X13, X7

	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  vecloop

	// Horizontal reduction of each accumulator's 4 int32 lanes to lane 0:
	// low2 += high2, then lane0 += lane1 (MOVHLPS/SHUFPS move raw bits).
	MOVOA   X0, X14
	MOVHLPS X0, X14
	PADDD   X14, X0
	MOVOA   X0, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X0

	MOVOA   X1, X14
	MOVHLPS X1, X14
	PADDD   X14, X1
	MOVOA   X1, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X1

	MOVOA   X2, X14
	MOVHLPS X2, X14
	PADDD   X14, X2
	MOVOA   X2, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X2

	MOVOA   X3, X14
	MOVHLPS X3, X14
	PADDD   X14, X3
	MOVOA   X3, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X3

	MOVOA   X4, X14
	MOVHLPS X4, X14
	PADDD   X14, X4
	MOVOA   X4, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X4

	MOVOA   X5, X14
	MOVHLPS X5, X14
	PADDD   X14, X5
	MOVOA   X5, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X5

	MOVOA   X6, X14
	MOVHLPS X6, X14
	PADDD   X14, X6
	MOVOA   X6, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X6

	MOVOA   X7, X14
	MOVHLPS X7, X14
	PADDD   X14, X7
	MOVOA   X7, X14
	SHUFPS  $0x1, X14, X14
	PADDD   X14, X7

	MOVSS X0, (DX)
	MOVSS X1, 4(DX)
	MOVSS X2, 8(DX)
	MOVSS X3, 12(DX)
	MOVSS X4, 16(DX)
	MOVSS X5, 20(DX)
	MOVSS X6, 24(DX)
	MOVSS X7, 28(DX)
	RET
