package tensor

import "sync"

// Backend owns the dense matrix-multiplication kernels the GraphSAGE
// forward/backward passes are built on. It is the seam for swapping compute
// implementations: the cache-tiled fp32 backend (Tiled, the default), the
// plain register-blocked backend it grew out of (Blocked), or an external
// implementation (an accelerator binding would satisfy this interface).
//
// Contract, shared by all methods and implementations:
//
//   - C must not alias A or B.
//   - MatMul/MatMulATB/MatMulABT ignore C's prior contents (pooled matrices
//     arrive dirty); MatMulAdd accumulates into C.
//   - Every output element is produced by exactly one worker with a fixed,
//     input-shape-determined floating-point association, so results are
//     bitwise identical at every GOMAXPROCS.
//   - Operands below MinParallelRows take a serial inline path: no
//     goroutines, no escaping closures, zero heap allocations when the
//     backend's pack scratch is warm.
//
// Blocked accumulates every element in a single scalar chain (ascending k,
// one rounding per multiply-add). Tiled routes large operands through the
// 4-lane SIMD dot micro-kernel (dotBlock2x4), whose strided-lane association
// differs from the scalar chain by ordinary fp32 rounding noise — so the two
// backends agree within tolerance of the float64 naive reference, not
// bitwise. Within each backend the association depends only on operand
// shapes, never on worker count or tile position.
type Backend interface {
	// Name identifies the backend ("tiled", "blocked") in logs and benches.
	Name() string
	// MatMul computes C = A·B. Shapes: A is m×k, B is k×n, C is m×n.
	MatMul(c, a, b *Matrix)
	// MatMulAdd computes C += A·B. Each element's A·B dot product is
	// accumulated to full length in a register and added to C once, so the
	// result is bitwise identical to MatMul into scratch followed by Add.
	MatMulAdd(c, a, b *Matrix)
	// MatMulATB computes C = Aᵀ·B. Shapes: A is k×m, B is k×n, C is m×n.
	MatMulATB(c, a, b *Matrix)
	// MatMulABT computes C = A·Bᵀ. Shapes: A is m×k, B is n×k, C is m×n.
	MatMulABT(c, a, b *Matrix)
}

// Blocked is the register-blocked backend: the 4-row MatMul, 4×4 MatMulATB
// and 2×4 MatMulABT micro-kernels with row-parallel dispatch and no cache
// tiling. It is kept as the reference implementation for differential tests
// and remains the serial path of the tiled backend below MinParallelRows.
type Blocked struct{}

// Tiled is the cache-tiled SIMD backend and the package default. All three
// products funnel through one 2×4 dot micro-kernel (4-lane SSE2 on amd64)
// over operands in k-contiguous layout: MatMul packs Bᵀ once per call
// (reused scratch, zero steady-state allocations), MatMulATB packs both Aᵀ
// and Bᵀ, and MatMulABT's B argument already is the transpose. The kernel
// sweeps L1-resident column panels across an L2-resident slab of A rows.
// Operands below MinParallelRows keep the register-blocked scalar kernels.
type Tiled struct{}

// DefaultBackend returns the backend the package-level kernel functions use
// (the tiled fp32 backend).
func DefaultBackend() Backend { return Tiled{} }

func (Blocked) Name() string { return "blocked" }

func (Blocked) MatMul(c, a, b *Matrix) {
	checkMatMul(c, a, b)
	if a.Rows < MinParallelRows {
		matMulRange(c, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRange(c, a, b, lo, hi) })
}

func (Blocked) MatMulAdd(c, a, b *Matrix) {
	checkMatMul(c, a, b)
	bt := packTranspose(b)
	if a.Rows < MinParallelRows {
		matMulAddScalarSerial(c, a, bt)
	} else {
		matMulAddScalarParallel(c, a, bt)
	}
	putPackBuf(bt.Data)
}

// matMulAddScalarSerial / matMulAddScalarParallel run the scalar-chain
// accumulate kernel over a packed Bᵀ. The packed operand is passed by value
// so the serial wrapper keeps it off the heap (the parallel wrapper's
// closure forces an escape, but only when that branch runs).
func matMulAddScalarSerial(c, a *Matrix, bt Matrix) {
	matMulABTScalarBlock(c, a, &bt, 0, a.Rows, 0, bt.Rows, true)
}

func matMulAddScalarParallel(c, a *Matrix, bt Matrix) {
	parallelRows(a.Rows, func(lo, hi int) { matMulABTScalarBlock(c, a, &bt, lo, hi, 0, bt.Rows, true) })
}

func (Blocked) MatMulATB(c, a, b *Matrix) {
	checkMatMulATB(c, a, b)
	if a.Cols < MinParallelRows {
		matMulATBRange(c, a, b, 0, a.Cols)
		return
	}
	parallelRows(a.Cols, func(lo, hi int) { matMulATBRange(c, a, b, lo, hi) })
}

func (Blocked) MatMulABT(c, a, b *Matrix) {
	checkMatMulABT(c, a, b)
	if a.Rows < MinParallelRows {
		matMulABTRange(c, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulABTRange(c, a, b, lo, hi) })
}

func (Tiled) Name() string { return "tiled" }

func (Tiled) MatMul(c, a, b *Matrix)    { MatMul(c, a, b) }
func (Tiled) MatMulAdd(c, a, b *Matrix) { MatMulAdd(c, a, b) }
func (Tiled) MatMulATB(c, a, b *Matrix) { MatMulATB(c, a, b) }
func (Tiled) MatMulABT(c, a, b *Matrix) { MatMulABT(c, a, b) }

func checkMatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
}

func checkMatMulATB(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: MatMulATB shape mismatch")
	}
}

func checkMatMulABT(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: MatMulABT shape mismatch")
	}
}

// Tiling parameters. The panel is the unit kept L1-resident: panelRows rows
// of a (packed) k-wide operand, sized to panelTargetBytes. The i-chunk is
// the slab of A rows the panel sweep reuses out of L2 before moving on.
const (
	// panelTargetBytes bounds the L1 working set of one B/Bᵀ panel
	// (16 KiB leaves room for the micro-kernel's A rows and C slices in a
	// 32 KiB L1d).
	panelTargetBytes = 16 << 10
	// tileIChunk is the number of A/C rows per L2-resident slab.
	tileIChunk = 128
)

// panelRows returns the rows-per-panel for a packed operand with depth
// columns: a multiple of 4 (the micro-kernel's j-width) of at least 8.
func panelRows(depth int) int {
	if depth <= 0 {
		return 8
	}
	p := panelTargetBytes / (4 * depth)
	p &^= 3
	if p < 8 {
		p = 8
	}
	return p
}

// packScratch recycles pack buffers across kernel calls so the steady-state
// tiled path performs zero heap allocations. A plain mutex-guarded free list
// (not sync.Pool) keeps buffers across GC cycles, which the allocation-
// regression tests rely on. Shared by every goroutine in the process; a
// buffer is held only for the duration of one kernel call.
var packScratch struct {
	mu   sync.Mutex
	free [][]float32
}

const packScratchMax = 16

func getPackBuf(n int) []float32 {
	packScratch.mu.Lock()
	for i, b := range packScratch.free {
		if cap(b) >= n {
			last := len(packScratch.free) - 1
			packScratch.free[i] = packScratch.free[last]
			packScratch.free = packScratch.free[:last]
			packScratch.mu.Unlock()
			return b[:n]
		}
	}
	packScratch.mu.Unlock()
	c := 1
	for c < n {
		c <<= 1
	}
	return make([]float32, n, c)
}

func putPackBuf(b []float32) {
	packScratch.mu.Lock()
	if len(packScratch.free) < packScratchMax {
		packScratch.free = append(packScratch.free, b)
	}
	packScratch.mu.Unlock()
}

// packTranspose writes Bᵀ (n×k for a k×n B) into a scratch matrix. The
// scratch is returned to the shared free list by the caller via putPackBuf.
func packTranspose(b *Matrix) Matrix {
	k, n := b.Rows, b.Cols
	buf := getPackBuf(n * k)
	// Blocked transpose: walk 32×32 tiles so both the read and the write
	// side touch each cache line a handful of times instead of n times.
	const tb = 32
	for i0 := 0; i0 < k; i0 += tb {
		i1 := i0 + tb
		if i1 > k {
			i1 = k
		}
		for j0 := 0; j0 < n; j0 += tb {
			j1 := j0 + tb
			if j1 > n {
				j1 = n
			}
			for i := i0; i < i1; i++ {
				row := b.Row(i)
				for j := j0; j < j1; j++ {
					buf[j*k+i] = row[j]
				}
			}
		}
	}
	return Matrix{Rows: n, Cols: k, Data: buf}
}

// matMulABTBlock is the shared SIMD micro-kernel driver over the output
// block rows [lo,hi) × columns [jlo,jhi), where b holds the right operand in
// transposed (n×k) layout. Every element — including row and column
// remainders — goes through dotBlock2x4 with the identical 4-lane strided
// association (remainders duplicate a row/column pointer and discard the
// extra outputs), so an element's value depends only on the operand shapes,
// never on which tile or worker range computed it. Each element touches C
// exactly once: a store, or a single += when acc is set, which keeps
// MatMulAdd bitwise identical to MatMul into scratch followed by Add.
func matMulABTBlock(c, a, b *Matrix, lo, hi, jlo, jhi int, acc bool) {
	depth := a.Cols
	if depth == 0 {
		if !acc {
			for i := lo; i < hi; i++ {
				ci := c.Row(i)
				for j := jlo; j < jhi; j++ {
					ci[j] = 0
				}
			}
		}
		return
	}
	var out [8]float32
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := &a.Row(i)[0]
		a1 := &a.Row(i + 1)[0]
		c0 := c.Row(i)
		c1 := c.Row(i + 1)
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			dotBlock2x4(a0, a1, &b.Row(j)[0], &b.Row(j + 1)[0], &b.Row(j + 2)[0], &b.Row(j + 3)[0], depth, &out)
			if acc {
				c0[j] += out[0]
				c0[j+1] += out[1]
				c0[j+2] += out[2]
				c0[j+3] += out[3]
				c1[j] += out[4]
				c1[j+1] += out[5]
				c1[j+2] += out[6]
				c1[j+3] += out[7]
			} else {
				c0[j], c0[j+1], c0[j+2], c0[j+3] = out[0], out[1], out[2], out[3]
				c1[j], c1[j+1], c1[j+2], c1[j+3] = out[4], out[5], out[6], out[7]
			}
		}
		if j < jhi {
			b0 := &b.Row(j)[0]
			b1, b2, b3 := b0, b0, b0
			if j+1 < jhi {
				b1 = &b.Row(j + 1)[0]
			}
			if j+2 < jhi {
				b2 = &b.Row(j + 2)[0]
			}
			dotBlock2x4(a0, a1, b0, b1, b2, b3, depth, &out)
			for t := 0; j+t < jhi; t++ {
				if acc {
					c0[j+t] += out[t]
					c1[j+t] += out[4+t]
				} else {
					c0[j+t] = out[t]
					c1[j+t] = out[4+t]
				}
			}
		}
	}
	if i < hi {
		a0 := &a.Row(i)[0]
		ci := c.Row(i)
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			dotBlock2x4(a0, a0, &b.Row(j)[0], &b.Row(j + 1)[0], &b.Row(j + 2)[0], &b.Row(j + 3)[0], depth, &out)
			if acc {
				ci[j] += out[0]
				ci[j+1] += out[1]
				ci[j+2] += out[2]
				ci[j+3] += out[3]
			} else {
				ci[j], ci[j+1], ci[j+2], ci[j+3] = out[0], out[1], out[2], out[3]
			}
		}
		if j < jhi {
			b0 := &b.Row(j)[0]
			b1, b2, b3 := b0, b0, b0
			if j+1 < jhi {
				b1 = &b.Row(j + 1)[0]
			}
			if j+2 < jhi {
				b2 = &b.Row(j + 2)[0]
			}
			dotBlock2x4(a0, a0, b0, b1, b2, b3, depth, &out)
			for t := 0; j+t < jhi; t++ {
				if acc {
					ci[j+t] += out[t]
				} else {
					ci[j+t] = out[t]
				}
			}
		}
	}
}

// matMulABTScalarBlock is the scalar-chain 2×4 register-dot kernel over the
// same block layout (b transposed, n×k). Each element accumulates its dot
// product in a single register chain in ascending k order — the exact
// per-element rounding sequence of the memory-accumulating 4-row MatMul
// kernel — and touches C once (store, or one += when acc is set). It backs
// the Blocked backend's MatMulAdd and the tiled MatMulAdd's
// sub-MinParallelRows path, both of which must stay bitwise consistent with
// the scalar MatMul.
func matMulABTScalarBlock(c, a, b *Matrix, lo, hi, jlo, jhi int, acc bool) {
	depth := a.Cols
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Row(i)[:depth]
		a1 := a.Row(i + 1)[:depth]
		c0 := c.Row(i)
		c1 := c.Row(i + 1)
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			b0 := b.Row(j)[:depth]
			b1 := b.Row(j + 1)[:depth]
			b2 := b.Row(j + 2)[:depth]
			b3 := b.Row(j + 3)[:depth]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for k, av := range a0 {
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				s00 += av * bv0
				s01 += av * bv1
				s02 += av * bv2
				s03 += av * bv3
				aw := a1[k]
				s10 += aw * bv0
				s11 += aw * bv1
				s12 += aw * bv2
				s13 += aw * bv3
			}
			if acc {
				c0[j] += s00
				c0[j+1] += s01
				c0[j+2] += s02
				c0[j+3] += s03
				c1[j] += s10
				c1[j+1] += s11
				c1[j+2] += s12
				c1[j+3] += s13
			} else {
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
			}
		}
		for ; j < jhi; j++ {
			bj := b.Row(j)[:depth]
			var s0, s1 float32
			for k, av := range a0 {
				s0 += av * bj[k]
				s1 += a1[k] * bj[k]
			}
			if acc {
				c0[j] += s0
				c1[j] += s1
			} else {
				c0[j], c1[j] = s0, s1
			}
		}
	}
	for ; i < hi; i++ {
		ai := a.Row(i)[:depth]
		ci := c.Row(i)
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			b0 := b.Row(j)[:depth]
			b1 := b.Row(j + 1)[:depth]
			b2 := b.Row(j + 2)[:depth]
			b3 := b.Row(j + 3)[:depth]
			var s0, s1, s2, s3 float32
			for k, av := range ai {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			if acc {
				ci[j] += s0
				ci[j+1] += s1
				ci[j+2] += s2
				ci[j+3] += s3
			} else {
				ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < jhi; j++ {
			bj := b.Row(j)[:depth]
			var s float32
			for k, av := range ai {
				s += av * bj[k]
			}
			if acc {
				ci[j] += s
			} else {
				ci[j] = s
			}
		}
	}
}

// matMulTransposedTiledRange computes C rows [lo,hi) against a right operand
// already in transposed (n×k) layout, with two-level tiling: an L2-resident
// slab of tileIChunk A rows swept by L1-resident panels of b rows. Used both
// by the tiled MatMul (after packing Bᵀ) and by the tiled MatMulABT (whose B
// argument is already n×k).
func matMulTransposedTiledRange(c, a, b *Matrix, lo, hi int, acc bool) {
	nb := b.Rows
	pr := panelRows(a.Cols)
	for ilo := lo; ilo < hi; ilo += tileIChunk {
		ihi := ilo + tileIChunk
		if ihi > hi {
			ihi = hi
		}
		for jlo := 0; jlo < nb; jlo += pr {
			jhi := jlo + pr
			if jhi > nb {
				jhi = nb
			}
			matMulABTBlock(c, a, b, ilo, ihi, jlo, jhi, acc)
		}
	}
}

// matMulPackedSerial / matMulPackedParallel run the tiled SIMD kernel over a
// packed Bᵀ for the full output. The packed operand is passed by value: the
// serial wrapper's &bt stays on its own stack (zero allocations on the warm
// GOMAXPROCS=1 path), while the parallel wrapper's closure escapes its copy
// only when workers actually spawn.
func matMulPackedSerial(c, a *Matrix, bt Matrix, acc bool) {
	matMulTransposedTiledRange(c, a, &bt, 0, a.Rows, acc)
}

func matMulPackedParallel(c, a *Matrix, bt Matrix, acc bool) {
	parallelRows(a.Rows, func(lo, hi int) { matMulTransposedTiledRange(c, a, &bt, lo, hi, acc) })
}

// matMulATBPackedSerial / matMulATBPackedParallel run the tiled SIMD kernel
// for C = Aᵀ·B over both operands pre-packed into k-contiguous layout
// (at is m×k, bt is n×k), so C[i][j] = at.Row(i)·bt.Row(j).
func matMulATBPackedSerial(c *Matrix, at, bt Matrix) {
	matMulTransposedTiledRange(c, &at, &bt, 0, at.Rows, false)
}

func matMulATBPackedParallel(c *Matrix, at, bt Matrix) {
	parallelRows(at.Rows, func(lo, hi int) { matMulTransposedTiledRange(c, &at, &bt, lo, hi, false) })
}
