package tensor

import (
	"runtime"
	"testing"

	"salientpp/internal/rng"
)

// naive reference kernels, deliberately unblocked.
func refMatMul(c, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			c.Set(i, j, float32(s))
		}
	}
}

func randMat(rows, cols int, r *rng.RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

// TestBlockedKernelsMatchReference sweeps shapes that exercise every
// remainder lane of the register-blocked micro-kernels (i%4, i%2, j%4,
// k%4) and both the inline and parallel dispatch paths.
func TestBlockedKernelsMatchReference(t *testing.T) {
	r := rng.New(42)
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {4, 4, 4}, {5, 9, 6},
		{7, 13, 11}, {63, 17, 10}, {64, 16, 9}, {65, 19, 33},
		{130, 21, 12}, {67, 64, 65},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(m, k, r)
		b := randMat(k, n, r)
		want := New(m, n)
		refMatMul(want, a, b)

		got := New(m, n)
		MatMul(got, a, b)
		if d := MaxAbsDiff(want, got); d > 1e-3 {
			t.Fatalf("MatMul %v: max diff %v", s, d)
		}

		at := New(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		got2 := New(m, n)
		MatMulATB(got2, at, b)
		if d := MaxAbsDiff(want, got2); d > 1e-3 {
			t.Fatalf("MatMulATB %v: max diff %v", s, d)
		}

		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		got3 := New(m, n)
		MatMulABT(got3, a, bt)
		if d := MaxAbsDiff(want, got3); d > 1e-3 {
			t.Fatalf("MatMulABT %v: max diff %v", s, d)
		}
	}
}

// TestKernelsDeterministicAcrossWorkers pins the bitwise-reproducibility
// contract: every output element is computed by one worker in a fixed
// k-order, so GOMAXPROCS must not change a single bit.
func TestKernelsDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(7)
	const m, k, n = 160, 96, 70
	a := randMat(m, k, r)
	b := randMat(k, n, r)
	at := randMat(k, m, r)
	bt := randMat(n, k, r)

	run := func() (*Matrix, *Matrix, *Matrix) {
		c1, c2, c3 := New(m, n), New(m, n), New(m, n)
		MatMul(c1, a, b)
		MatMulATB(c2, at, b)
		MatMulABT(c3, a, bt)
		return c1, c2, c3
	}
	prev := runtime.GOMAXPROCS(1)
	s1, s2, s3 := run()
	runtime.GOMAXPROCS(8)
	p1, p2, p3 := run()
	runtime.GOMAXPROCS(prev)
	if MaxAbsDiff(s1, p1) != 0 || MaxAbsDiff(s2, p2) != 0 || MaxAbsDiff(s3, p3) != 0 {
		t.Fatal("kernel output depends on GOMAXPROCS")
	}
}

// TestMatMulOverwritesDirtyOutput verifies the kernels ignore prior
// contents of C (pooled matrices arrive dirty).
func TestMatMulOverwritesDirtyOutput(t *testing.T) {
	r := rng.New(3)
	a := randMat(6, 5, r)
	b := randMat(5, 4, r)
	want := New(6, 4)
	MatMul(want, a, b)
	dirty := New(6, 4)
	for i := range dirty.Data {
		dirty.Data[i] = 1e9
	}
	MatMul(dirty, a, b)
	if MaxAbsDiff(want, dirty) != 0 {
		t.Fatal("MatMul result depends on prior C contents")
	}
	bt := randMat(4, 5, r)
	want2 := New(6, 4)
	MatMulABT(want2, a, bt)
	for i := range dirty.Data {
		dirty.Data[i] = -1e9
	}
	MatMulABT(dirty, a, bt)
	if MaxAbsDiff(want2, dirty) != 0 {
		t.Fatal("MatMulABT result depends on prior C contents")
	}
}
