package tensor

import "math"

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and writes the gradient d(loss)/d(logits) into
// grad (same shape as logits, may be nil to skip). Rows with label < 0 are
// ignored (masked), matching the sparse-label datasets where only a small
// fraction of vertices is supervised.
//
// The implementation is the numerically stable fused kernel: shift by the
// row max before exponentiation; gradient is (softmax − onehot)/batch.
func SoftmaxCrossEntropy(logits *Matrix, labels []int32, grad *Matrix) float64 {
	if len(labels) != logits.Rows {
		panic("tensor: label count mismatch")
	}
	if grad != nil && !grad.SameShape(logits) {
		panic("tensor: grad shape mismatch")
	}
	counted := 0
	for _, l := range labels {
		if l >= 0 {
			counted++
		}
	}
	if counted == 0 {
		if grad != nil {
			grad.Zero()
		}
		return 0
	}
	inv := 1.0 / float64(counted)
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		label := labels[i]
		var grow []float32
		if grad != nil {
			grow = grad.Row(i)
		}
		if label < 0 {
			if grow != nil {
				for j := range grow {
					grow[j] = 0
				}
			}
			continue
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		loss += inv * (logSum - float64(row[label]-maxv))
		if grow != nil {
			for j, v := range row {
				p := math.Exp(float64(v-maxv)) / sum
				g := p
				if int32(j) == label {
					g -= 1
				}
				grow[j] = float32(g * inv)
			}
		}
	}
	return loss
}

// ArgmaxRow returns the index of the largest value in row (first winner on
// ties). Allocation-free; shared by every accuracy path.
func ArgmaxRow(row []float32) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}

// Argmax returns the index of the largest value in each row.
func Argmax(m *Matrix) []int32 {
	out := make([]int32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = int32(ArgmaxRow(m.Row(i)))
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label,
// ignoring rows with label < 0. Returns 0 when nothing is labeled. The
// argmax is computed inline (no intermediate slice) because this runs once
// per minibatch on the steady-state training path.
func Accuracy(logits *Matrix, labels []int32) float64 {
	correct, counted := 0, 0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		counted++
		if int32(ArgmaxRow(logits.Row(i))) == l {
			correct++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(correct) / float64(counted)
}
