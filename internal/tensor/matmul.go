package tensor

import (
	"runtime"
	"sync"
)

// MatMul computes C = A·B. Shapes: A is m×k, B is k×n, C is m×n.
// C must not alias A or B. The kernel is the cache-friendly ikj ordering
// with row-block parallelism across GOMAXPROCS goroutines.
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
	c.Zero()
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for kk, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Row(kk)
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MatMulATB computes C = Aᵀ·B. Shapes: A is k×m, B is k×n, C is m×n.
// Used for weight gradients (W.grad = Xᵀ·dY).
func MatMulATB(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: MatMulATB shape mismatch")
	}
	c.Zero()
	// Parallelize over output rows (columns of A) to avoid write conflicts.
	parallelRows(a.Cols, func(lo, hi int) {
		for kk := 0; kk < a.Rows; kk++ {
			ak := a.Row(kk)
			bk := b.Row(kk)
			for i := lo; i < hi; i++ {
				av := ak[i]
				if av == 0 {
					continue
				}
				ci := c.Row(i)
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}

// MatMulABT computes C = A·Bᵀ. Shapes: A is m×k, B is n×k, C is m×n.
// Used for input gradients (X.grad = dY·Wᵀ).
func MatMulABT(c, a, b *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: MatMulABT shape mismatch")
	}
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			ci := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				bj := b.Row(j)
				var s float32
				for kk, av := range ai {
					s += av * bj[kk]
				}
				ci[j] = s
			}
		}
	})
}

// parallelRows splits [0, n) into contiguous chunks across worker
// goroutines. Small inputs run inline to avoid goroutine overhead.
func parallelRows(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
