package tensor

import (
	"runtime"
	"sync"
)

// MinParallelRows is the row count below which the matrix kernels (and the
// nn aggregation kernels built on ParallelRows) run inline on the calling
// goroutine. The serial paths are plain function calls — no goroutines, no
// escaping closures — so warm calls on small operands perform zero heap
// allocations, which the allocation-regression tests rely on.
//
// The threshold is exclusive on the inline side: exactly MinParallelRows
// rows take the spawning path (which may still run inline when GOMAXPROCS
// is 1), MinParallelRows-1 rows are guaranteed inline. Pinned by
// TestMinParallelRowsThreshold. Below the threshold the register-blocked
// kernels run untiled; at and above it the tiled dispatch engages.
const MinParallelRows = 64

// MatMul computes C = A·B. Shapes: A is m×k, B is k×n, C is m×n.
// C must not alias A or B; C's prior contents are ignored.
//
// This is the tiled backend's dispatch (see Backend): operands below
// MinParallelRows run the serial 4-row register-blocked kernel; larger
// operands pack Bᵀ once into reused scratch and run the 2×4 SIMD dot
// micro-kernel over L1-resident column panels and L2-resident row slabs.
// Row ranges are distributed across GOMAXPROCS goroutines (with a direct
// closure-free call when GOMAXPROCS is 1); each output element is computed
// by exactly one worker with a shape-determined association, so results are
// bitwise identical at every worker count.
func MatMul(c, a, b *Matrix) {
	checkMatMul(c, a, b)
	if a.Rows < MinParallelRows {
		matMulRange(c, a, b, 0, a.Rows)
		return
	}
	bt := packTranspose(b)
	if runtime.GOMAXPROCS(0) == 1 {
		matMulPackedSerial(c, a, bt, false)
	} else {
		matMulPackedParallel(c, a, bt, false)
	}
	putPackBuf(bt.Data)
}

// MatMulAdd computes C += A·B with the same shapes and dispatch thresholds
// as MatMul. Each element's dot product accumulates to full depth in
// registers through the same kernel MatMul uses at that operand size, and
// is added to C exactly once — so the result is bitwise identical to MatMul
// into a scratch matrix followed by Add, which lets the fused
// aggregate+transform pass stream partial results into C without changing
// training numerics.
func MatMulAdd(c, a, b *Matrix) {
	checkMatMul(c, a, b)
	bt := packTranspose(b)
	switch {
	case a.Rows < MinParallelRows:
		matMulAddScalarSerial(c, a, bt)
	case runtime.GOMAXPROCS(0) == 1:
		matMulPackedSerial(c, a, bt, true)
	default:
		matMulPackedParallel(c, a, bt, true)
	}
	putPackBuf(bt.Data)
}

func matMulRange(c, a, b *Matrix, lo, hi int) {
	n := b.Cols
	depth := a.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		c0 := c.Row(i)[:n]
		c1 := c.Row(i + 1)[:n]
		c2 := c.Row(i + 2)[:n]
		c3 := c.Row(i + 3)[:n]
		for j := range c0 {
			c0[j], c1[j], c2[j], c3[j] = 0, 0, 0, 0
		}
		a0 := a.Row(i)
		a1 := a.Row(i + 1)
		a2 := a.Row(i + 2)
		a3 := a.Row(i + 3)
		for k := 0; k < depth; k++ {
			bk := b.Row(k)[:n]
			v0, v1, v2, v3 := a0[k], a1[k], a2[k], a3[k]
			for j, bv := range bk {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ci := c.Row(i)[:n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Row(i)
		for k := 0; k < depth; k++ {
			v := ai[k]
			bk := b.Row(k)[:n]
			for j, bv := range bk {
				ci[j] += v * bv
			}
		}
	}
}

// MatMulATB computes C = Aᵀ·B. Shapes: A is k×m, B is k×n, C is m×n.
// Used for weight gradients (W.grad = Xᵀ·dY). C's prior contents are
// ignored. Below MinParallelRows output rows it runs the serial 4×4
// k-grouped register kernel; above, both operands are packed transposed
// (two streaming passes, reused scratch) so every dot product runs
// k-contiguous through the SIMD micro-kernel — the layout change more than
// pays for itself because the shared depth (the MFG destination count) is
// the large dimension. Workers own disjoint C rows; per-element association
// is shape-determined, so results are identical at every worker count.
func MatMulATB(c, a, b *Matrix) {
	checkMatMulATB(c, a, b)
	if a.Cols < MinParallelRows {
		matMulATBRange(c, a, b, 0, a.Cols)
		return
	}
	at := packTranspose(a)
	bt := packTranspose(b)
	if runtime.GOMAXPROCS(0) == 1 {
		matMulATBPackedSerial(c, at, bt)
	} else {
		matMulATBPackedParallel(c, at, bt)
	}
	putPackBuf(bt.Data)
	putPackBuf(at.Data)
}

func matMulATBRange(c, a, b *Matrix, lo, hi int) {
	n := b.Cols
	depth := a.Rows
	i := lo
	for ; i+4 <= hi; i += 4 {
		c0 := c.Row(i)[:n]
		c1 := c.Row(i + 1)[:n]
		c2 := c.Row(i + 2)[:n]
		c3 := c.Row(i + 3)[:n]
		for j := range c0 {
			c0[j], c1[j], c2[j], c3[j] = 0, 0, 0, 0
		}
		k := 0
		for ; k+4 <= depth; k += 4 {
			ak0, ak1, ak2, ak3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
			b0 := b.Row(k)[:n]
			b1 := b.Row(k + 1)[:n]
			b2 := b.Row(k + 2)[:n]
			b3 := b.Row(k + 3)[:n]
			a00, a01, a02, a03 := ak0[i], ak1[i], ak2[i], ak3[i]
			a10, a11, a12, a13 := ak0[i+1], ak1[i+1], ak2[i+1], ak3[i+1]
			a20, a21, a22, a23 := ak0[i+2], ak1[i+2], ak2[i+2], ak3[i+2]
			a30, a31, a32, a33 := ak0[i+3], ak1[i+3], ak2[i+3], ak3[i+3]
			for j := range b0 {
				bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
				c0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				c1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
				c2[j] += a20*bv0 + a21*bv1 + a22*bv2 + a23*bv3
				c3[j] += a30*bv0 + a31*bv1 + a32*bv2 + a33*bv3
			}
		}
		for ; k < depth; k++ {
			ak := a.Row(k)
			bk := b.Row(k)[:n]
			v0, v1, v2, v3 := ak[i], ak[i+1], ak[i+2], ak[i+3]
			for j, bv := range bk {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ci := c.Row(i)[:n]
		for j := range ci {
			ci[j] = 0
		}
		k := 0
		for ; k+4 <= depth; k += 4 {
			v0, v1, v2, v3 := a.Row(k)[i], a.Row(k + 1)[i], a.Row(k + 2)[i], a.Row(k + 3)[i]
			b0 := b.Row(k)[:n]
			b1 := b.Row(k + 1)[:n]
			b2 := b.Row(k + 2)[:n]
			b3 := b.Row(k + 3)[:n]
			for j := range b0 {
				ci[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
		for ; k < depth; k++ {
			v := a.Row(k)[i]
			bk := b.Row(k)[:n]
			for j, bv := range bk {
				ci[j] += v * bv
			}
		}
	}
}

// MatMulABT computes C = A·Bᵀ. Shapes: A is m×k, B is n×k, C is m×n.
// Used for input gradients (X.grad = dY·Wᵀ). B already is the transposed
// layout the SIMD micro-kernel wants, so no packing is needed. Below
// MinParallelRows it runs the serial scalar kernel; above, B is walked in
// L1-resident panels swept across an L2-resident slab of A rows, each 2×4
// block of dot products going through dotBlock2x4. Workers own disjoint C
// rows; per-element association is shape-determined.
func MatMulABT(c, a, b *Matrix) {
	checkMatMulABT(c, a, b)
	if a.Rows < MinParallelRows {
		matMulABTRange(c, a, b, 0, a.Rows)
		return
	}
	if runtime.GOMAXPROCS(0) == 1 {
		matMulTransposedTiledRange(c, a, b, 0, a.Rows, false)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulTransposedTiledRange(c, a, b, lo, hi, false) })
}

func matMulABTRange(c, a, b *Matrix, lo, hi int) {
	depth := a.Cols
	nb := b.Rows
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Row(i)[:depth]
		a1 := a.Row(i + 1)[:depth]
		c0 := c.Row(i)
		c1 := c.Row(i + 1)
		j := 0
		for ; j+4 <= nb; j += 4 {
			b0 := b.Row(j)[:depth]
			b1 := b.Row(j + 1)[:depth]
			b2 := b.Row(j + 2)[:depth]
			b3 := b.Row(j + 3)[:depth]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for k, av := range a0 {
				bv0, bv1, bv2, bv3 := b0[k], b1[k], b2[k], b3[k]
				s00 += av * bv0
				s01 += av * bv1
				s02 += av * bv2
				s03 += av * bv3
				aw := a1[k]
				s10 += aw * bv0
				s11 += aw * bv1
				s12 += aw * bv2
				s13 += aw * bv3
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < nb; j++ {
			bj := b.Row(j)[:depth]
			var s0, s1 float32
			for k, av := range a0 {
				s0 += av * bj[k]
				s1 += a1[k] * bj[k]
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < hi; i++ {
		ai := a.Row(i)[:depth]
		ci := c.Row(i)
		j := 0
		for ; j+4 <= nb; j += 4 {
			b0 := b.Row(j)[:depth]
			b1 := b.Row(j + 1)[:depth]
			b2 := b.Row(j + 2)[:depth]
			b3 := b.Row(j + 3)[:depth]
			var s0, s1, s2, s3 float32
			for k, av := range ai {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
		}
		for ; j < nb; j++ {
			bj := b.Row(j)[:depth]
			var s float32
			for k, av := range ai {
				s += av * bj[k]
			}
			ci[j] = s
		}
	}
}

// ParallelRows splits [0, n) into contiguous chunks across worker
// goroutines. Small inputs (below MinParallelRows) run inline to avoid
// goroutine overhead and per-call allocation; callers must ensure f is safe
// for concurrent disjoint ranges.
func ParallelRows(n int, f func(lo, hi int)) {
	if n < MinParallelRows {
		f(0, n)
		return
	}
	parallelRows(n, f)
}

// parallelRows is the spawning path of ParallelRows.
func parallelRows(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
