//go:build amd64

package tensor

// dotInt8Kernel2x4 computes the eight integer dot products of two A rows
// against four B rows over the first depth8 values (depth8 > 0, a multiple
// of 8) using the SSE2 PMADDWD path. Integer accumulation is exact, so any
// split between the SIMD body and the Go tail yields identical sums.
//
//go:noescape
func dotInt8Kernel2x4(a0, a1, b0, b1, b2, b3 *int8, depth8 int, out *[8]int32)

// dotInt8Kernel2x4AVX2 is the AVX2 variant over depth16 values (a positive
// multiple of 16) — ~2× the SSE2 kernel's throughput via 16-wide VPMADDWD.
//
//go:noescape
func dotInt8Kernel2x4AVX2(a0, a1, b0, b1, b2, b3 *int8, depth16 int, out *[8]int32)

// accumInt8KernelAVX2 adds float32(src[j])*scale into dst[j] over n8
// elements (a positive multiple of 8). Elementwise — one product rounding
// and one sum rounding per lane, exactly like the scalar loop.
//
//go:noescape
func accumInt8KernelAVX2(dst *float32, src *int8, scale float32, n8 int)

// x86HasAVX2 probes CPUID/XGETBV for usable AVX2 (see cpu_amd64.s).
func x86HasAVX2() bool

// hasAVX2 selects the integer kernel once at startup. The fp32 kernels stay
// SSE2-only (reassociating them would shift the pinned training losses);
// the integer kernels are exact at any width, so dispatching costs nothing
// in reproducibility.
var hasAVX2 = x86HasAVX2()

// dotInt8Block2x4 fills out with the eight full-depth integer dot products
//
//	out = [a0·b0, a0·b1, a0·b2, a0·b3, a1·b0, a1·b1, a1·b2, a1·b3]
//
// running the bulk of the depth through the widest available SIMD kernel
// and the remainder as scalar adds — exact either way, so the result is
// independent of the split, the tiling, and the architecture.
func dotInt8Block2x4(a0, a1, b0, b1, b2, b3 []int8, out *[8]int32) {
	depth := len(a0)
	dv := 0
	if hasAVX2 {
		if dv = depth &^ 15; dv > 0 {
			dotInt8Kernel2x4AVX2(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], dv, out)
		}
	} else {
		if dv = depth &^ 7; dv > 0 {
			dotInt8Kernel2x4(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], dv, out)
		}
	}
	if dv == 0 {
		*out = [8]int32{}
	}
	for k := dv; k < depth; k++ {
		va0, va1 := int32(a0[k]), int32(a1[k])
		out[0] += va0 * int32(b0[k])
		out[1] += va0 * int32(b1[k])
		out[2] += va0 * int32(b2[k])
		out[3] += va0 * int32(b3[k])
		out[4] += va1 * int32(b0[k])
		out[5] += va1 * int32(b1[k])
		out[6] += va1 * int32(b2[k])
		out[7] += va1 * int32(b3[k])
	}
}

// accumInt8Row adds float32(src[j])*scale into dst[j] — the
// dequantize-accumulate primitive behind int8 neighbor aggregation. The
// AVX2 body is elementwise (no FMA, no reassociation), so SIMD and scalar
// produce bitwise-identical sums.
func accumInt8Row(dst []float32, src []int8, scale float32) {
	n := len(src)
	v := 0
	if hasAVX2 {
		if v = n &^ 7; v > 0 {
			accumInt8KernelAVX2(&dst[0], &src[0], scale, v)
		}
	}
	for ; v < n; v++ {
		dst[v] += float32(src[v]) * scale
	}
}

// dotQKernelName identifies the integer micro-kernel in benchmarks and the
// README.
var dotQKernelName = map[bool]string{true: "avx2", false: "sse2"}[hasAVX2]
