package tensor

import "testing"

func TestPoolReusesBuffers(t *testing.T) {
	p := NewPool()
	m := p.Get(10, 10)
	if m.Rows != 10 || m.Cols != 10 || len(m.Data) != 100 {
		t.Fatalf("shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	first := &m.Data[:1][0]
	p.Put(m)
	// Same capacity class (128): must hand back the same buffer.
	n := p.Get(11, 11)
	if len(n.Data) != 121 || &n.Data[:1][0] != first {
		t.Fatal("pool did not reuse the buffer for the same capacity class")
	}
	p.Put(n)
	// A larger class allocates fresh storage.
	big := p.Get(64, 64)
	if &big.Data[:1][0] == first {
		t.Fatal("pool returned an undersized buffer")
	}
}

func TestPoolZeroSized(t *testing.T) {
	p := NewPool()
	m := p.Get(0, 5)
	if m.Rows != 0 || len(m.Data) != 0 {
		t.Fatalf("zero-row matrix: %+v", m)
	}
	p.Put(m)
	z := p.GetZeroed(3, 2)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty data")
		}
	}
}

func TestBucketFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Fatalf("bucketFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestArenaReleasesEverything(t *testing.T) {
	p := NewPool()
	a := NewArena(p)
	m1 := a.Get(4, 4)
	m2 := a.GetZeroed(8, 8)
	if a.Held() != 2 {
		t.Fatalf("held %d", a.Held())
	}
	ptr1, ptr2 := &m1.Data[:1][0], &m2.Data[:1][0]
	a.Release()
	if a.Held() != 0 {
		t.Fatal("arena retained matrices after Release")
	}
	// Both buffers are back in the pool.
	r1, r2 := p.Get(4, 4), p.Get(8, 8)
	if &r1.Data[:1][0] != ptr1 || &r2.Data[:1][0] != ptr2 {
		t.Fatal("released buffers were not pooled")
	}
}

// TestPoolAllocationFree is the allocation-regression guard for the arena
// itself: warm Get/Put cycles must not touch the heap.
func TestPoolAllocationFree(t *testing.T) {
	p := NewPool()
	a := NewArena(p)
	// Warm the capacity classes and the arena's held list.
	for i := 0; i < 3; i++ {
		a.Get(32, 32)
		a.Get(7, 5)
		a.Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Get(32, 32)
		a.Get(7, 5)
		a.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm arena cycle allocated %.1f times per run, want 0", allocs)
	}
}

// TestMatMulSerialAllocationFree guards the inline kernel paths used by
// small operands (below MinParallelRows): no escaping closures, no
// goroutines, no heap traffic.
func TestMatMulSerialAllocationFree(t *testing.T) {
	a := New(32, 16)
	b := New(16, 24)
	bt := New(24, 16)
	c := New(32, 24)
	g := New(16, 24)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float32(i%5) - 2
	}
	copy(bt.Data, b.Data[:len(bt.Data)])
	allocs := testing.AllocsPerRun(50, func() {
		MatMul(c, a, b)
		MatMulATB(g, a, c)
		MatMulABT(c, a, bt)
	})
	if allocs != 0 {
		t.Fatalf("serial matmul kernels allocated %.1f times per run, want 0", allocs)
	}
}
