package tensor

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool recycles Matrix backing storage across minibatches. Buffers are
// bucketed by capacity class (powers of two), so batches whose shapes vary
// within a class reuse the same storage: after a warm-up epoch the
// steady-state training path performs zero heap allocations per batch.
//
// A Pool never frees memory on its own; it holds the high-water working
// set of whatever pipeline feeds it. That is the intended ownership model
// — one Pool per long-lived component (feature store, model, training
// rank), released wholesale when the component is dropped.
//
// Get/Put are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	buckets [poolBuckets][]*Matrix
	live    atomic.Int64 // Gets minus Puts: matrices currently checked out
}

// poolBuckets covers capacity classes up to 2^33 floats (32 GiB), far
// beyond any reproduction-scale matrix.
const poolBuckets = 34

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// bucketFor returns the smallest class b with 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a rows×cols matrix whose contents are unspecified (callers
// overwrite or Zero it). The matrix comes from the free list when a buffer
// of the right capacity class is available and is freshly allocated
// otherwise.
func (p *Pool) Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	need := rows * cols
	b := bucketFor(need)
	p.live.Add(1)
	p.mu.Lock()
	if l := p.buckets[b]; len(l) > 0 {
		m := l[len(l)-1]
		l[len(l)-1] = nil
		p.buckets[b] = l[:len(l)-1]
		p.mu.Unlock()
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:need]
		return m
	}
	p.mu.Unlock()
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, need, 1<<b)}
}

// GetZeroed is Get followed by Zero.
func (p *Pool) GetZeroed(rows, cols int) *Matrix {
	m := p.Get(rows, cols)
	m.Zero()
	return m
}

// Live returns Gets minus Puts: the number of pooled matrices currently
// checked out. Leak-regression tests assert it returns to zero after
// shutdown/abort paths; the count is only meaningful when every matrix put
// back came from this pool's Get.
func (p *Pool) Live() int64 { return p.live.Load() }

// Put returns m's storage to the pool. The caller must not use m (or any
// slice obtained from it) afterwards; putting the same matrix twice
// corrupts the free list. nil is ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	p.live.Add(-1)
	// Class from capacity: Get allocates exact power-of-two capacities, and
	// foreign matrices land in the class their capacity fully covers.
	b := bits.Len(uint(cap(m.Data))) - 1
	p.mu.Lock()
	p.buckets[b] = append(p.buckets[b], m)
	p.mu.Unlock()
}

// Arena hands out pooled matrices and remembers them so one Release call
// returns the whole working set — the per-batch counterpart of
// sample.MFG.Release. An Arena is single-goroutine (per batch / per model);
// the underlying Pool may be shared.
type Arena struct {
	pool *Pool
	held []*Matrix
}

// NewArena returns an arena drawing from p.
func NewArena(p *Pool) *Arena { return &Arena{pool: p} }

// Get returns a rows×cols matrix (contents unspecified) owned by the arena
// until Release.
func (a *Arena) Get(rows, cols int) *Matrix {
	m := a.pool.Get(rows, cols)
	a.held = append(a.held, m)
	return m
}

// GetZeroed is Get followed by Zero.
func (a *Arena) GetZeroed(rows, cols int) *Matrix {
	m := a.Get(rows, cols)
	m.Zero()
	return m
}

// Release returns every matrix obtained since the previous Release to the
// pool. All of them are invalid afterwards.
func (a *Arena) Release() {
	for i, m := range a.held {
		a.pool.Put(m)
		a.held[i] = nil
	}
	a.held = a.held[:0]
}

// Held reports how many matrices the arena currently owns (for tests).
func (a *Arena) Held() int { return len(a.held) }
