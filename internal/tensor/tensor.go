// Package tensor provides the dense float32 matrix substrate for the
// GraphSAGE implementation: storage, elementwise kernels, parallel matrix
// multiplication, row gather/scatter for message-flow graphs, and the
// numerically stable softmax/cross-entropy fused kernel.
//
// This replaces the PyTorch/CUDA stack of the original SALIENT++ — the
// paper's systems claims concern data movement, so a straightforward
// cache-blocked CPU implementation is sufficient for end-to-end training
// at reproduction scale.
package tensor

import (
	"fmt"
	"math"

	"salientpp/internal/rng"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows×Cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values for %dx%d matrix", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i, aliasing storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.Rows == o.Rows && m.Cols == o.Cols
}

// HeInit fills the matrix with Kaiming-He normal initialization
// (std = sqrt(2/fanIn)), the standard choice ahead of ReLU layers.
func (m *Matrix) HeInit(fanIn int, r *rng.RNG) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range m.Data {
		m.Data[i] = std * float32(r.NormFloat64())
	}
}

// XavierInit fills the matrix with Glorot-uniform initialization.
func (m *Matrix) XavierInit(fanIn, fanOut int, r *rng.RNG) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = limit * (2*float32(r.Float64()) - 1)
	}
}

// Add accumulates o into m elementwise.
func (m *Matrix) Add(o *Matrix) {
	if !m.SameShape(o) {
		panic("tensor: Add shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddBias adds bias (length Cols) to every row.
func (m *Matrix) AddBias(bias []float32) {
	if len(bias) != m.Cols {
		panic("tensor: bias length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, b := range bias {
			row[j] += b
		}
	}
}

// ReLU applies max(0, x) in place and returns a mask-free reference to m.
func (m *Matrix) ReLU() {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ReLUBackward zeroes gradient entries where the forward activation was
// non-positive: grad ⊙ 1[act > 0].
func ReLUBackward(grad, act *Matrix) {
	if !grad.SameShape(act) {
		panic("tensor: ReLUBackward shape mismatch")
	}
	for i, a := range act.Data {
		if a <= 0 {
			grad.Data[i] = 0
		}
	}
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout); it records the mask into mask (same shape,
// values 0 or 1/(1-p)) for the backward pass.
func (m *Matrix) Dropout(p float64, mask *Matrix, r *rng.RNG) {
	if p <= 0 {
		for i := range mask.Data {
			mask.Data[i] = 1
		}
		return
	}
	scale := float32(1 / (1 - p))
	for i := range m.Data {
		if r.Float64() < p {
			m.Data[i] = 0
			mask.Data[i] = 0
		} else {
			m.Data[i] *= scale
			mask.Data[i] = scale
		}
	}
}

// Mul multiplies elementwise by o (used with dropout masks).
func (m *Matrix) Mul(o *Matrix) {
	if !m.SameShape(o) {
		panic("tensor: Mul shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// Gather copies rows of src selected by idx into dst (dst row i = src row
// idx[i]). dst must be len(idx)×src.Cols.
func Gather(dst, src *Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: Gather shape mismatch")
	}
	for i, r := range idx {
		copy(dst.Row(i), src.Row(int(r)))
	}
}

// ScatterAdd accumulates rows of src into dst at positions idx
// (dst row idx[i] += src row i).
func ScatterAdd(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAdd shape mismatch")
	}
	for i, r := range idx {
		d := dst.Row(int(r))
		s := src.Row(i)
		for j, v := range s {
			d[j] += v
		}
	}
}

// MaxAbsDiff returns max |m−o| over elements; used in gradient-check tests.
func MaxAbsDiff(m, o *Matrix) float64 {
	if !m.SameShape(o) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i := range m.Data {
		d := math.Abs(float64(m.Data[i] - o.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Norm returns the Frobenius norm.
func (m *Matrix) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
