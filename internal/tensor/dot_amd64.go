//go:build amd64

package tensor

// dotBlock2x4 computes the eight full-depth dot products of two A rows
// against four B rows (both operands k-contiguous) into out:
//
//	out = [a0·b0, a0·b1, a0·b2, a0·b3, a1·b0, a1·b1, a1·b2, a1·b3]
//
// The amd64 implementation is 4-lane SSE2 (the architecture baseline, so no
// feature detection is needed): lane L accumulates the k ≡ L (mod 4) terms
// in ascending order, the four lanes reduce as (l0+l2)+(l1+l3), and the
// k%4 tail accumulates scalar onto that sum. The association is fixed and
// input-independent, so results remain bitwise identical at every
// GOMAXPROCS and across every tiling boundary; they differ from the scalar
// kernels' single-chain association by ordinary fp32 rounding noise
// (~1 ulp per accumulation step), which the differential tests bound
// against the float64 naive reference.
//
// depth must be ≥ 1; callers special-case depth == 0.
//
//go:noescape
func dotBlock2x4(a0, a1, b0, b1, b2, b3 *float32, depth int, out *[8]float32)

// dotKernelName identifies the micro-kernel implementation in benchmarks
// and the README.
const dotKernelName = "sse2"
