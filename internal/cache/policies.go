package cache

import (
	"salientpp/internal/rng"
	"salientpp/internal/sample"
	"salientpp/internal/vip"
)

// Degree is the "deg." policy (Lin et al. 2020, PaGraph-style): remote
// vertices reachable from the partition's training set within L hops,
// ranked by degree. High degree is a proxy for access likelihood that
// ignores the sampling process entirely.
type Degree struct{}

// Name implements Ranker.
func (Degree) Name() string { return "deg." }

// Rank implements Ranker.
func (Degree) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	reach := reachable(ctx, len(ctx.Fanouts))
	var ids []int32
	for _, v := range reach {
		if ctx.Parts[v] != ctx.Part {
			ids = append(ids, v)
		}
	}
	g := ctx.G
	return rankByScore(ids, func(v int32) float64 { return float64(g.Degree(v)) }), nil
}

// Halo is the "1-hop" policy: replicate the entire 1-hop halo of the
// partition (remote neighbors of local vertices). Its natural replication
// factor is whatever the halo size dictates; under a capacity limit the
// halo is ranked by degree.
type Halo struct{}

// Name implements Ranker.
func (Halo) Name() string { return "1-hop" }

// Rank implements Ranker.
func (Halo) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	g := ctx.G
	n := g.NumVertices()
	inHalo := make([]bool, n)
	var ids []int32
	for v := 0; v < n; v++ {
		if ctx.Parts[v] != ctx.Part {
			continue
		}
		for _, u := range g.Neighbors(int32(v)) {
			if ctx.Parts[u] != ctx.Part && !inHalo[u] {
				inHalo[u] = true
				ids = append(ids, u)
			}
		}
	}
	return rankByScore(ids, func(v int32) float64 { return float64(g.Degree(v)) }), nil
}

// HaloSize returns the natural (uncapped) halo size for a partition,
// reported alongside Figure 2 since "1-hop" has an implied α.
func HaloSize(ctx *Context) (int, error) {
	ids, err := Halo{}.Rank(ctx)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// WeightedPageRank is the "wPR" policy (Min et al. 2021): a few iterations
// of reverse PageRank seeded at the partition's training vertices, with
// transition weights 1/d(v). It models multi-hop expansion but is agnostic
// to fanouts and the layer count.
type WeightedPageRank struct {
	Iterations int
	Damping    float64
}

// Name implements Ranker.
func (WeightedPageRank) Name() string { return "wPR" }

// Rank implements Ranker.
func (p WeightedPageRank) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	iters, damp := p.Iterations, p.Damping
	if iters <= 0 {
		iters = 5
	}
	if damp <= 0 || damp >= 1 {
		damp = 0.85
	}
	g := ctx.G
	n := g.NumVertices()
	local := ctx.LocalTrain()
	seedMass := make([]float64, n)
	if len(local) > 0 {
		w := 1.0 / float64(len(local))
		for _, v := range local {
			seedMass[v] = w
		}
	}
	rank := make([]float64, n)
	copy(rank, seedMass)
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range g.Neighbors(int32(u)) {
				if d := g.Degree(v); d > 0 {
					acc += rank[v] / float64(d)
				}
			}
			next[u] = (1-damp)*seedMass[u] + damp*acc
		}
		rank, next = next, rank
	}
	ids := ctx.remoteIDs()
	return rankByScore(ids, func(v int32) float64 { return rank[v] }), nil
}

// NumPaths is the "#paths" policy: rank remote vertices by the number of
// paths of length at most L that reach them from any local training
// vertex. It models the expansion topology but not the sampling
// probabilities.
type NumPaths struct{}

// Name implements Ranker.
func (NumPaths) Name() string { return "#paths" }

// Rank implements Ranker.
func (NumPaths) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	g := ctx.G
	n := g.NumVertices()
	cur := make([]float64, n)
	for _, v := range ctx.LocalTrain() {
		cur[v] = 1
	}
	score := make([]float64, n)
	next := make([]float64, n)
	for h := 0; h < len(ctx.Fanouts); h++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range g.Neighbors(int32(u)) {
				acc += cur[v]
			}
			next[u] = acc
			score[u] += acc
		}
		cur, next = next, cur
	}
	ids := ctx.remoteIDs()
	return rankByScore(ids, func(v int32) float64 { return score[v] }), nil
}

// Simulated is the "sim." policy (GNNLab, Yang et al. 2022): run a small
// number of simulated training epochs and rank remote vertices by their
// empirical access counts. Cheap to generalize to any sampling scheme, but
// noisy for infrequently accessed vertices — exactly the regime where the
// analytic VIP model keeps its edge (Figure 2d, Figure 9).
type Simulated struct {
	// Epochs is the number of simulated epochs (the paper uses 2).
	Epochs int
}

// Name implements Ranker.
func (Simulated) Name() string { return "sim." }

// Rank implements Ranker.
func (p Simulated) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 2
	}
	counts, err := simulateCounts(ctx, epochs, ctx.Seed)
	if err != nil {
		return nil, err
	}
	ids := ctx.remoteIDs()
	return rankByScore(ids, func(v int32) float64 { return float64(counts[v]) }), nil
}

// VIP is the paper's analytic policy: rank remote vertices by the vertex
// inclusion probabilities of Proposition 1 computed for this partition's
// minibatch distribution.
type VIP struct{}

// Name implements Ranker.
func (VIP) Name() string { return "VIP" }

// Rank implements Ranker.
func (VIP) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	p0 := vip.UniformSeeds(ctx.G.NumVertices(), ctx.LocalTrain(), ctx.BatchSize)
	res, err := vip.Probabilities(ctx.G, p0, vip.Config{Fanouts: ctx.Fanouts, BatchSize: ctx.BatchSize}, false)
	if err != nil {
		return nil, err
	}
	ids := ctx.remoteIDs()
	return rankByScore(ids, func(v int32) float64 { return res.P[v] }), nil
}

// Oracle ranks remote vertices by their actual access frequencies over the
// very epochs used for evaluation, providing the communication lower bound
// for any static cache. EvalSeed and Epochs must match the evaluation
// workload exactly.
type Oracle struct {
	Epochs   int
	EvalSeed uint64
}

// Name implements Ranker.
func (Oracle) Name() string { return "oracle" }

// Rank implements Ranker.
func (p Oracle) Rank(ctx *Context) ([]int32, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	counts, err := simulateCounts(ctx, epochs, p.EvalSeed)
	if err != nil {
		return nil, err
	}
	ids := ctx.remoteIDs()
	return rankByScore(ids, func(v int32) float64 { return float64(counts[v]) }), nil
}

// None is the no-caching baseline; it ranks nothing.
type None struct{}

// Name implements Ranker.
func (None) Name() string { return "none" }

// Rank implements Ranker.
func (None) Rank(ctx *Context) ([]int32, error) { return nil, nil }

// simulateCounts runs the partition's sampled epochs and returns per-vertex
// access counts.
func simulateCounts(ctx *Context, epochs int, seed uint64) ([]int64, error) {
	s, err := sample.NewSampler(ctx.G, ctx.Fanouts)
	if err != nil {
		return nil, err
	}
	local := ctx.LocalTrain()
	return sample.AccessCounts(s, local, ctx.BatchSize, epochs, rng.New(seed), ctx.Workers), nil
}

// reachable returns all vertices within maxHops of the partition's local
// training set (including the training vertices themselves). Distances are
// int32: an int16 array overflowed once a distance passed 32767, and the
// wrapped-negative values made visited vertices look unvisited again, so
// the BFS re-enqueued them forever — deep-fanout configs pass len(Fanouts)
// straight through here as maxHops.
func reachable(ctx *Context, maxHops int) []int32 {
	g := ctx.G
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	for _, v := range ctx.LocalTrain() {
		dist[v] = 0
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if int(dist[v]) >= maxHops {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return queue
}
