package cache

import (
	"testing"

	"salientpp/internal/graph"
	"salientpp/internal/partition"
	"salientpp/internal/rng"
)

func TestCacheBuildAndLookup(t *testing.T) {
	c, err := Build([]int32{5, 9, 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len=%d", c.Len())
	}
	for i, v := range []int32{5, 9, 2} {
		if !c.Has(v) {
			t.Fatalf("missing %d", v)
		}
		slot, ok := c.Slot(v)
		if !ok || slot != int32(i) {
			t.Fatalf("slot of %d = %d,%v", v, slot, ok)
		}
	}
	if c.Has(3) {
		t.Fatal("false positive")
	}
	if _, ok := c.Slot(3); ok {
		t.Fatal("slot for uncached vertex")
	}
}

func TestCacheBuildErrors(t *testing.T) {
	if _, err := Build([]int32{1, 1}, 4); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := Build([]int32{4}, 4); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Build([]int32{-1}, 4); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCapacityForAlpha(t *testing.T) {
	if c := CapacityForAlpha(0.32, 1000, 8); c != 40 {
		t.Fatalf("capacity=%d want 40", c)
	}
	if c := CapacityForAlpha(0, 1000, 8); c != 0 {
		t.Fatalf("capacity=%d want 0", c)
	}
	if c := CapacityForAlpha(-1, 1000, 8); c != 0 {
		t.Fatalf("negative alpha capacity=%d", c)
	}
}

func TestFromRankingTruncation(t *testing.T) {
	c, err := FromRanking([]int32{3, 1, 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || !c.Has(3) || !c.Has(1) || c.Has(2) {
		t.Fatal("truncation wrong")
	}
	// Capacity beyond ranking length is fine.
	c2, err := FromRanking([]int32{3}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 {
		t.Fatal("over-capacity wrong")
	}
}

// policyContext builds a realistic partitioned workload shared by the
// policy tests.
func policyContext(t *testing.T) *Context {
	t.Helper()
	g, err := graph.RMAT(graph.DefaultRMAT(2000, 16000, 51))
	if err != nil {
		t.Fatal(err)
	}
	res, err := partition.Partition(g, partition.Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	train := rng.New(17).SampleK(nil, 400, g.NumVertices())
	return &Context{
		G: g, Parts: res.Parts, K: 4, Part: 1,
		TrainIDs: train, Fanouts: []int{5, 3}, BatchSize: 32,
		Seed: 7, Workers: 2,
	}
}

func TestPoliciesRankOnlyRemoteDistinct(t *testing.T) {
	ctx := policyContext(t)
	for _, p := range Registry(2, 8, 99) {
		ids, err := p.Rank(ctx)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		seen := map[int32]bool{}
		for _, v := range ids {
			if ctx.Parts[v] == ctx.Part {
				t.Fatalf("%s ranked local vertex %d", p.Name(), v)
			}
			if seen[v] {
				t.Fatalf("%s ranked %d twice", p.Name(), v)
			}
			seen[v] = true
		}
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	ctx := policyContext(t)
	for _, p := range Registry(2, 8, 99) {
		a, err := p.Rank(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Rank(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s nondeterministic length", p.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s nondeterministic at %d", p.Name(), i)
			}
		}
	}
}

func TestNonePolicy(t *testing.T) {
	ids, err := None{}.Rank(policyContext(t))
	if err != nil || len(ids) != 0 {
		t.Fatalf("None policy: ids=%v err=%v", ids, err)
	}
}

func TestWorkloadBoundsAndOrdering(t *testing.T) {
	ctx := policyContext(t)
	const evalEpochs = 8
	const evalSeed = 99
	w, err := NewWorkload(ctx, evalEpochs, evalSeed)
	if err != nil {
		t.Fatal(err)
	}
	upper := w.RemoteTotal()
	if upper <= 0 {
		t.Fatal("no remote traffic — test workload degenerate")
	}
	if got := w.RemoteVolume(Empty(ctx.G.NumVertices())); got != upper {
		t.Fatalf("empty cache volume %d != upper bound %d", got, upper)
	}

	capacity := CapacityForAlpha(0.2, ctx.G.NumVertices(), ctx.K)
	lower := w.OracleVolume(capacity)
	if lower >= upper {
		t.Fatalf("oracle %d not below upper %d", lower, upper)
	}

	vols := map[string]int64{}
	for _, p := range Registry(2, evalEpochs, evalSeed) {
		ids, err := p.Rank(ctx)
		if err != nil {
			t.Fatal(err)
		}
		c, err := FromRanking(ids, capacity, ctx.G.NumVertices())
		if err != nil {
			t.Fatal(err)
		}
		v := w.RemoteVolume(c)
		if v < lower || v > upper {
			t.Fatalf("%s volume %d outside [oracle %d, none %d]", p.Name(), v, lower, upper)
		}
		vols[p.Name()] = v
	}

	// The oracle policy evaluated on its own epochs achieves the bound.
	if vols["oracle"] != lower {
		t.Fatalf("oracle policy volume %d != optimal %d", vols["oracle"], lower)
	}
	// Paper orderings (Figure 2): VIP beats the structure-only heuristics.
	if vols["VIP"] > vols["deg."] {
		t.Fatalf("VIP %d worse than degree %d", vols["VIP"], vols["deg."])
	}
	if vols["VIP"] > vols["1-hop"] {
		t.Fatalf("VIP %d worse than 1-hop %d", vols["VIP"], vols["1-hop"])
	}
	if vols["VIP"] > vols["wPR"] {
		t.Fatalf("VIP %d worse than wPR %d", vols["VIP"], vols["wPR"])
	}
	// And sits near the oracle (paper: within ~5% at paper scale; allow
	// generous slack at this tiny scale).
	if float64(vols["VIP"]) > 1.6*float64(lower) {
		t.Fatalf("VIP %d too far above oracle %d", vols["VIP"], lower)
	}
}

func TestVolumeMonotoneInCapacity(t *testing.T) {
	ctx := policyContext(t)
	w, err := NewWorkload(ctx, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := VIP{}.Rank(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prev := w.RemoteTotal()
	for _, capacity := range []int{0, 10, 50, 100, 250, 500} {
		c, err := FromRanking(ids, capacity, ctx.G.NumVertices())
		if err != nil {
			t.Fatal(err)
		}
		v := w.RemoteVolume(c)
		if v > prev {
			t.Fatalf("volume increased with capacity %d: %d > %d", capacity, v, prev)
		}
		prev = v
	}
}

func TestOracleVolumeFullCapacityIsZero(t *testing.T) {
	ctx := policyContext(t)
	w, err := NewWorkload(ctx, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := w.OracleVolume(ctx.G.NumVertices()); v != 0 {
		t.Fatalf("oracle at full capacity = %d, want 0", v)
	}
}

func TestHaloSize(t *testing.T) {
	ctx := policyContext(t)
	hs, err := HaloSize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hs <= 0 {
		t.Fatal("halo empty on a connected partitioned graph")
	}
}

func TestContextValidate(t *testing.T) {
	ctx := policyContext(t)
	bad := *ctx
	bad.Part = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("expected partition range error")
	}
	bad2 := *ctx
	bad2.BatchSize = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected batch size error")
	}
	bad3 := *ctx
	bad3.Fanouts = nil
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected fanout error")
	}
}

func TestPerEpoch(t *testing.T) {
	w := &Workload{Epochs: 4}
	if got := w.PerEpoch(8); got != 2 {
		t.Fatalf("PerEpoch=%v", got)
	}
	w0 := &Workload{}
	if got := w0.PerEpoch(8); got != 0 {
		t.Fatalf("PerEpoch with 0 epochs = %v", got)
	}
}
