package cache

import (
	"sort"
)

// Workload captures, for one partition, the per-vertex access counts of a
// fixed set of evaluation epochs. Because SALIENT++ caches are static, the
// remote communication volume of any cache is a simple functional of these
// counts:
//
//	volume = Σ_{v remote, v ∉ cache} count(v)
//
// so one sampling pass evaluates every policy and capacity exactly — and
// ranking by count itself ("oracle") is provably the volume-minimizing
// static cache for the measured epochs.
type Workload struct {
	// Part is the partition measured.
	Part int32
	// Parts is the global assignment (aliases the caller's slice).
	Parts []int32
	// Counts[v] is the number of minibatches whose input set contained v.
	Counts []int64
	// Epochs is the number of evaluation epochs sampled.
	Epochs int
}

// NewWorkload samples epochs evaluation epochs of the partition's training
// minibatches and records access counts. The RNG stream is derived from
// seed, so distinct policies can be compared on identical epochs.
func NewWorkload(ctx *Context, epochs int, seed uint64) (*Workload, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	counts, err := simulateCounts(ctx, epochs, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{Part: ctx.Part, Parts: ctx.Parts, Counts: counts, Epochs: epochs}, nil
}

// RemoteTotal returns the no-cache communication volume (total remote
// vertex fetches over all evaluation epochs) — Figure 2's upper bound.
func (w *Workload) RemoteTotal() int64 {
	var total int64
	for v, c := range w.Counts {
		if w.Parts[v] != w.Part {
			total += c
		}
	}
	return total
}

// RemoteVolume returns the communication volume with the given cache.
func (w *Workload) RemoteVolume(c *Cache) int64 {
	var total int64
	for v, cnt := range w.Counts {
		if cnt != 0 && w.Parts[v] != w.Part && !c.Has(int32(v)) {
			total += cnt
		}
	}
	return total
}

// OracleVolume returns the minimum possible volume for any static cache of
// the given capacity: withhold the `capacity` highest-count remote
// vertices — Figure 2's lower bound.
func (w *Workload) OracleVolume(capacity int) int64 {
	remote := make([]int64, 0, len(w.Counts))
	var total int64
	for v, c := range w.Counts {
		if w.Parts[v] != w.Part && c > 0 {
			remote = append(remote, c)
			total += c
		}
	}
	if capacity >= len(remote) {
		return 0
	}
	sort.Slice(remote, func(i, j int) bool { return remote[i] > remote[j] })
	for i := 0; i < capacity; i++ {
		total -= remote[i]
	}
	return total
}

// PerEpoch converts a total volume to a per-epoch average.
func (w *Workload) PerEpoch(total int64) float64 {
	if w.Epochs == 0 {
		return 0
	}
	return float64(total) / float64(w.Epochs)
}
