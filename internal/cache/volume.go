package cache

import (
	"sort"
)

// Workload captures, for one partition, the per-vertex access counts of a
// fixed set of evaluation epochs. Because SALIENT++ caches are static, the
// remote communication volume of any cache is a simple functional of these
// counts:
//
//	volume = Σ_{v remote, v ∉ cache} count(v)
//
// so one sampling pass evaluates every policy and capacity exactly — and
// ranking by count itself ("oracle") is provably the volume-minimizing
// static cache for the measured epochs.
type Workload struct {
	// Part is the partition measured.
	Part int32
	// Parts is the global assignment (aliases the caller's slice).
	Parts []int32
	// Counts[v] is the number of minibatches whose input set contained v.
	Counts []int64
	// Epochs is the number of evaluation epochs sampled.
	Epochs int

	// oraclePrefix[i] is the summed count of the i highest-count remote
	// vertices (oraclePrefix[0] = 0), built lazily by OracleVolume: the
	// remote counts are sorted once, so an α-sweep costs one O(n log n)
	// sort total instead of one per capacity. Not safe for concurrent
	// first use; the experiment harnesses sweep sequentially.
	oraclePrefix []int64
}

// NewWorkload samples epochs evaluation epochs of the partition's training
// minibatches and records access counts. The RNG stream is derived from
// seed, so distinct policies can be compared on identical epochs.
func NewWorkload(ctx *Context, epochs int, seed uint64) (*Workload, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	counts, err := simulateCounts(ctx, epochs, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{Part: ctx.Part, Parts: ctx.Parts, Counts: counts, Epochs: epochs}, nil
}

// RemoteTotal returns the no-cache communication volume (total remote
// vertex fetches over all evaluation epochs) — Figure 2's upper bound.
func (w *Workload) RemoteTotal() int64 {
	var total int64
	for v, c := range w.Counts {
		if w.Parts[v] != w.Part {
			total += c
		}
	}
	return total
}

// RemoteVolume returns the communication volume with the given cache.
func (w *Workload) RemoteVolume(c *Cache) int64 {
	var total int64
	for v, cnt := range w.Counts {
		if cnt != 0 && w.Parts[v] != w.Part && !c.Has(int32(v)) {
			total += cnt
		}
	}
	return total
}

// OracleVolume returns the minimum possible volume for any static cache of
// the given capacity: withhold the `capacity` highest-count remote
// vertices — Figure 2's lower bound. The first call sorts the remote
// counts into a descending prefix sum; every call (including the first
// capacity of a sweep) then answers in O(1), so sweeping A alphas costs
// O(n log n + A) rather than O(A · n log n).
func (w *Workload) OracleVolume(capacity int) int64 {
	if w.oraclePrefix == nil {
		remote := make([]int64, 0, len(w.Counts))
		for v, c := range w.Counts {
			if w.Parts[v] != w.Part && c > 0 {
				remote = append(remote, c)
			}
		}
		sort.Slice(remote, func(i, j int) bool { return remote[i] > remote[j] })
		prefix := make([]int64, len(remote)+1)
		for i, c := range remote {
			prefix[i+1] = prefix[i] + c
		}
		w.oraclePrefix = prefix
	}
	if capacity < 0 {
		capacity = 0
	}
	top := len(w.oraclePrefix) - 1 // number of distinct remote vertices
	if capacity >= top {
		return 0
	}
	total := w.oraclePrefix[top]
	return total - w.oraclePrefix[capacity]
}

// PerEpoch converts a total volume to a per-epoch average.
func (w *Workload) PerEpoch(total int64) float64 {
	if w.Epochs == 0 {
		return 0
	}
	return float64(total) / float64(w.Epochs)
}
