package cache

import (
	"sort"
	"testing"

	"salientpp/internal/graph"
)

// TestOracleVolumePrefixMatchesBruteForce differentially checks the
// prefix-sum OracleVolume against the straightforward per-call re-sort it
// replaced, across the capacity range an α-sweep hits (including 0,
// negative, every intermediate value, and beyond the remote-vertex count).
func TestOracleVolumePrefixMatchesBruteForce(t *testing.T) {
	parts := []int32{0, 1, 1, 0, 1, 1, 1, 0, 1, 1}
	counts := []int64{9, 4, 0, 3, 7, 7, 1, 0, 12, 2}
	brute := func(capacity int) int64 {
		var remote []int64
		var total int64
		for v, c := range counts {
			if parts[v] != 0 && c > 0 {
				remote = append(remote, c)
				total += c
			}
		}
		if capacity >= len(remote) {
			return 0
		}
		sort.Slice(remote, func(i, j int) bool { return remote[i] > remote[j] })
		for i := 0; i < capacity && i >= 0; i++ {
			total -= remote[i]
		}
		return total
	}
	w := &Workload{Part: 0, Parts: parts, Counts: counts, Epochs: 1}
	for capacity := -1; capacity <= len(counts)+2; capacity++ {
		want := brute(capacity)
		if capacity < 0 {
			want = brute(0)
		}
		if got := w.OracleVolume(capacity); got != want {
			t.Errorf("OracleVolume(%d) = %d, brute force says %d", capacity, got, want)
		}
	}
	// Capacity 0 equals the no-cache volume.
	if w.OracleVolume(0) != w.RemoteTotal() {
		t.Errorf("OracleVolume(0) = %d, RemoteTotal = %d", w.OracleVolume(0), w.RemoteTotal())
	}
	// Sweeping again (warm prefix) must agree with itself.
	for capacity := 0; capacity <= len(counts); capacity++ {
		if w.OracleVolume(capacity) != brute(capacity) {
			t.Errorf("warm OracleVolume(%d) diverged", capacity)
		}
	}
}

// TestReachableDeepFanoutNoOverflow is the int16-overflow regression test:
// on a 40000-vertex path with the training set at one end, a 33000-hop
// reachability must stop at 33001 vertices. The pre-fix int16 distance
// array wrapped negative at hop 32768; the negative distances made visited
// vertices look unvisited, so the BFS re-enqueued them endlessly and this
// test hangs (fails by timeout) on that code.
func TestReachableDeepFanoutNoOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("40k-vertex BFS")
	}
	const n = 40000
	edges := make([]graph.Edge, 0, n-1)
	for v := int32(0); v < n-1; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1})
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{Undirected: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{
		G: g, Parts: make([]int32, n), K: 1, Part: 0,
		TrainIDs: []int32{0}, Fanouts: []int{2}, BatchSize: 1,
	}
	const maxHops = 33000
	got := reachable(ctx, maxHops)
	if len(got) != maxHops+1 {
		t.Fatalf("reachable(%d hops) returned %d vertices, want %d", maxHops, len(got), maxHops+1)
	}
	// The shallow case is unchanged.
	if got := reachable(ctx, 2); len(got) != 3 {
		t.Fatalf("reachable(2 hops) returned %d vertices, want 3", len(got))
	}
}
