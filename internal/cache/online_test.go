package cache

import (
	"testing"

	"salientpp/internal/tensor"
)

// testRowSource returns a row function over n synthetic dim-wide rows
// (vertex v's row is [v*10, v*10+1, ...]), for builder tests.
func testRowSource(dim int) func(v int32) []float32 {
	buf := make([]float32, dim)
	return func(v int32) []float32 {
		for j := range buf {
			buf[j] = float32(int(v)*10 + j)
		}
		return buf
	}
}

// TestStaticPolicyBitwiseUnchanged pins the default policy to the frozen
// pre-refactor behavior: whatever the Static policy observes, Propose
// returns the pinned setup prefix, the installer's Next never builds an
// epoch, and the store-side swap therefore never happens — the cache stays
// bitwise the setup-time truncated ranking for the life of the run.
func TestStaticPolicyBitwiseUnchanged(t *testing.T) {
	prefix := []int32{7, 2, 9, 4}
	pol := NewStatic(prefix)
	if pol.Name() != "static" {
		t.Fatalf("policy name %q", pol.Name())
	}

	builder, err := NewEpochBuilder(16, 3, testRowSource(3))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := builder.Build(prefix)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstaller(pol, builder, len(prefix))
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the policy with drifting traffic that would flip an online
	// scorer; the static policy must not move.
	for round := 0; round < 100; round++ {
		hot := int32(round % 16)
		inst.Observe(RoundAccess{Hits: []int32{hot}, Misses: [][]int32{{hot, (hot + 1) % 16}}})
		next, churn, err := inst.Next(setup)
		if err != nil {
			t.Fatal(err)
		}
		if next != nil || churn != 0 {
			t.Fatalf("round %d: static policy produced an epoch (churn %d)", round, churn)
		}
	}
	if inst.Installs() != 0 || inst.ChurnRows() != 0 {
		t.Fatalf("static installer counted installs=%d churn=%d", inst.Installs(), inst.ChurnRows())
	}
	for _, capacity := range []int{0, 2, 4, 10} {
		got := pol.Propose(capacity)
		want := capacity
		if want > len(prefix) {
			want = len(prefix)
		}
		if len(got) != want {
			t.Fatalf("Propose(%d) returned %d ids", capacity, len(got))
		}
		for i := range got {
			if got[i] != prefix[i] {
				t.Fatalf("Propose(%d)[%d] = %d, want pinned %d", capacity, i, got[i], prefix[i])
			}
		}
	}
	builder.Release(setup)
	if live := inst.Live(); live != 0 {
		t.Fatalf("%d epochs live after release", live)
	}
}

// TestOnlinePolicyDeterminism feeds two independently constructed scorers
// the identical observation stream and requires identical proposals after
// every round — the Policy determinism contract the training installer's
// cross-transport reproducibility rests on.
func TestOnlinePolicyDeterminism(t *testing.T) {
	const n = 64
	seed := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	degrees := make([]int32, n)
	for v := range degrees {
		degrees[v] = int32(v%7 + 1)
	}
	mk := func() *Online {
		o, err := NewOnline(n, seed, degrees, OnlineConfig{HalfLife: 8})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := mk(), mk()
	for round := 0; round < 200; round++ {
		acc := RoundAccess{
			Hits:   []int32{int32(round % n), int32((round * 7) % n)},
			Misses: [][]int32{{int32((round * 3) % n)}, {int32((round*5 + 1) % n)}},
		}
		a.Observe(acc)
		b.Observe(acc)
		pa := a.Propose(10)
		pb := b.Propose(10)
		if len(pa) != len(pb) {
			t.Fatalf("round %d: proposal lengths differ: %d vs %d", round, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("round %d: proposals diverge at %d: %v vs %v", round, i, pa, pb)
			}
		}
	}
}

// TestOnlineAdmissionAndEviction checks the scorer's drift response: a
// newly hot vertex must out-score the seeded prefix once its decayed
// frequency clears the prior, and must decay back out when the traffic
// moves on.
func TestOnlineAdmissionAndEviction(t *testing.T) {
	const n = 32
	o, err := NewOnline(n, []int32{0, 1, 2, 3}, nil, OnlineConfig{HalfLife: 4})
	if err != nil {
		t.Fatal(err)
	}
	has := func(ids []int32, v int32) bool {
		for _, x := range ids {
			if x == v {
				return true
			}
		}
		return false
	}
	// Vertex 20 gets hot: after a handful of rounds its frequency (~1 per
	// round) beats every prior (<= PriorWeight*(1+DegreeWeight)).
	for round := 0; round < 12; round++ {
		o.Observe(RoundAccess{Hits: []int32{20}})
	}
	if got := o.Propose(2); !has(got, 20) {
		t.Fatalf("hot vertex not admitted: proposal %v", got)
	}
	// Traffic moves to vertex 21; vertex 20's heat halves every 4 rounds
	// and the prior-backed seeds plus the new hot vertex crowd it out.
	for round := 0; round < 64; round++ {
		o.Observe(RoundAccess{Misses: [][]int32{{21}}})
	}
	got := o.Propose(2)
	if has(got, 20) {
		t.Fatalf("cold vertex still proposed after 64 idle rounds: %v", got)
	}
	if !has(got, 21) {
		t.Fatalf("new hot vertex not admitted: %v", got)
	}
}

// TestOnlineTieBreakAscendingID pins the full ordering: equal scores must
// order by ascending vertex id, never map/iteration order.
func TestOnlineTieBreakAscendingID(t *testing.T) {
	o, err := NewOnline(16, nil, nil, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// One access each, same round: identical decayed frequency, zero prior.
	o.Observe(RoundAccess{Hits: []int32{9, 3, 12, 5}})
	got := o.Propose(4)
	want := []int32{3, 5, 9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied proposal order %v, want %v", got, want)
		}
	}
}

// TestInstallerChurnAndRelease exercises the build/install/release cycle:
// churn counts only newly admitted ids, an unchanged membership builds
// nothing, and releasing every retired epoch drains the builder's pool.
func TestInstallerChurnAndRelease(t *testing.T) {
	const n, dim = 16, 3
	builder, err := NewEpochBuilder(n, dim, testRowSource(dim))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewOnline(n, []int32{1, 2}, nil, OnlineConfig{HalfLife: 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstaller(pol, builder, 2)
	if err != nil {
		t.Fatal(err)
	}

	cur, err := builder.Build([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cur.Gen != 1 {
		t.Fatalf("first build gen %d", cur.Gen)
	}
	// Rows must be hydrated from the row source in slot order.
	for i, v := range cur.IDs() {
		if cur.Rows.At(i, 0) != float32(v*10) {
			t.Fatalf("row %d not hydrated for vertex %d", i, v)
		}
	}

	// Same membership proposed -> no build, no install counted.
	if next, churn, err := inst.BuildFor([]int32{1, 2}, cur); err != nil || next != nil || churn != 0 {
		t.Fatalf("unchanged membership built an epoch: %v %d %v", next, churn, err)
	}

	// Heat vertex 9 until it displaces a seed: churn 1 (only 9 is new).
	for round := 0; round < 16; round++ {
		inst.Observe(RoundAccess{Hits: []int32{9, 1}})
	}
	next, churn, err := inst.Next(cur)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || churn != 1 {
		t.Fatalf("expected a 1-churn install, got %v churn %d", next, churn)
	}
	if next.Gen != cur.Gen+1 {
		t.Fatalf("generation did not advance: %d after %d", next.Gen, cur.Gen)
	}
	inst.Release(cur)
	if inst.Installs() != 1 || inst.ChurnRows() != 1 {
		t.Fatalf("accounting: installs=%d churn=%d", inst.Installs(), inst.ChurnRows())
	}
	inst.Release(next)
	if live := inst.Live(); live != 0 {
		t.Fatalf("%d epochs live after releasing everything", live)
	}
	// Double release and foreign/nil release are no-ops.
	inst.Release(next)
	inst.Release(nil)
	setup, err := NewEpoch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Release(setup)
	if live := inst.Live(); live != 0 {
		t.Fatalf("release no-ops disturbed the gauge: %d", live)
	}
}

// TestEpochEnsureQuant covers the quantized-shadow lifecycle: built on
// demand, idempotent for a matching precision, rebuilt on change, cleared
// by fp32.
func TestEpochEnsureQuant(t *testing.T) {
	builder, err := NewEpochBuilder(8, 4, testRowSource(4))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := builder.Build([]int32{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Release(ep)

	ep.EnsureQuant(tensor.PrecisionInt8)
	if ep.Quant == nil || ep.Quant.Prec != tensor.PrecisionInt8 {
		t.Fatalf("int8 shadow not built: %+v", ep.Quant)
	}
	first := ep.Quant
	ep.EnsureQuant(tensor.PrecisionInt8)
	if ep.Quant != first {
		t.Fatal("matching-precision EnsureQuant rebuilt the shadow")
	}
	ep.EnsureQuant(tensor.PrecisionFP16)
	if ep.Quant == nil || ep.Quant.Prec != tensor.PrecisionFP16 {
		t.Fatalf("fp16 shadow not rebuilt: %+v", ep.Quant)
	}
	ep.EnsureQuant(tensor.PrecisionFP32)
	if ep.Quant != nil {
		t.Fatal("fp32 did not clear the shadow")
	}
	var nilEp *Epoch
	nilEp.EnsureQuant(tensor.PrecisionInt8) // must not panic
}
