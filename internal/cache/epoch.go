package cache

import (
	"fmt"

	"salientpp/internal/tensor"
)

// Epoch is one immutable version of a rank's remote-feature cache: the
// membership index, the fp32 feature rows (Rows.Row(i) holds the features
// of Index.IDs()[i]), and — when a reduced compute precision is active — a
// quantized shadow of those rows. Epochs are hydrated off the gather path
// (EpochBuilder), finished with EnsureQuant, and installed into a store by
// swapping a single atomic pointer; once installed an epoch is never
// written again, so any number of concurrent gathers may read it while the
// next version is being built in the background.
type Epoch struct {
	// Gen is the install generation: 0 for the setup-time epoch (the
	// truncated static ranking), incremented by the builder for every
	// epoch built after it.
	Gen uint64
	// Index is the membership index; Slot(v) gives the row of a cached id.
	Index *Cache
	// Rows holds the fp32 feature rows in slot order.
	Rows *tensor.Matrix
	// Quant is the reduced-precision shadow of Rows, built by EnsureQuant
	// before installation and nil in fp32 deployments.
	Quant *tensor.QuantMatrix

	owner *EpochBuilder // pool owner; nil for setup epochs (never released)
}

// NewEpoch assembles the setup-time epoch (generation 0) from a built
// index and its hydrated rows. index and rows may both be nil to disable
// caching; otherwise rows must be parallel to index.IDs().
func NewEpoch(index *Cache, rows *tensor.Matrix) (*Epoch, error) {
	if (index == nil) != (rows == nil) {
		return nil, fmt.Errorf("cache: epoch index and rows must be supplied together")
	}
	if index != nil && rows.Rows != index.Len() {
		return nil, fmt.Errorf("cache: epoch has %d rows for %d cached ids", rows.Rows, index.Len())
	}
	return &Epoch{Index: index, Rows: rows}, nil
}

// Len returns the number of cached ids (0 for a nil epoch or empty index).
func (e *Epoch) Len() int {
	if e == nil || e.Index == nil {
		return 0
	}
	return e.Index.Len()
}

// IDs returns the cached ids in slot order (nil for a cacheless epoch; do
// not modify).
func (e *Epoch) IDs() []int32 {
	if e == nil || e.Index == nil {
		return nil
	}
	return e.Index.IDs()
}

// EnsureQuant builds the epoch's reduced-precision shadow for p, so that
// quantized gathers read cache rows as byte copies coherent with this
// epoch's fp32 rows. Idempotent for a matching precision; PrecisionFP32
// clears the shadow. Call before the epoch is installed — an installed
// epoch is shared read-only with concurrent gathers.
func (e *Epoch) EnsureQuant(p tensor.Precision) {
	if e == nil {
		return
	}
	if p == tensor.PrecisionFP32 {
		e.Quant = nil
		return
	}
	if e.Quant != nil && e.Quant.Prec == p {
		return
	}
	if e.Rows == nil {
		e.Quant = nil
		return
	}
	q := new(tensor.QuantMatrix)
	q.Quantize(p, e.Rows)
	e.Quant = q
}

// EpochBuilder hydrates successive cache epochs for one rank: membership
// ids in, a fully materialized Epoch out (index, feature rows pulled from
// the row source, quantized shadow on demand). Row matrices come from a
// builder-internal tensor.Pool so retired epochs can be handed back with
// Release and the pool's Live gauge proves that shutdown — even mid-install
// — leaks nothing.
//
// A builder serves one install stream (one store); Build/Release are not
// safe for concurrent use with each other.
type EpochBuilder struct {
	n    int
	dim  int
	row  func(v int32) []float32
	pool *tensor.Pool
	gen  uint64
}

// NewEpochBuilder returns a builder over a graph with n vertices and
// dim-wide features; row must return the fp32 feature row of any vertex
// (it is read, never retained).
func NewEpochBuilder(n, dim int, row func(v int32) []float32) (*EpochBuilder, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("cache: epoch builder needs positive n (%d) and dim (%d)", n, dim)
	}
	if row == nil {
		return nil, fmt.Errorf("cache: epoch builder needs a feature row source")
	}
	return &EpochBuilder{n: n, dim: dim, row: row, pool: tensor.NewPool()}, nil
}

// SetGen pins the generation counter so the next Build returns gen+1 —
// used by resume to continue a checkpointed install stream.
func (b *EpochBuilder) SetGen(gen uint64) { b.gen = gen }

// Build materializes the next epoch holding exactly ids (slot order
// preserved). The rows matrix is pooled; hand retired epochs back with
// Release.
func (b *EpochBuilder) Build(ids []int32) (*Epoch, error) {
	index, err := Build(ids, b.n)
	if err != nil {
		return nil, err
	}
	rows := b.pool.Get(index.Len(), b.dim)
	for i, v := range index.IDs() {
		copy(rows.Row(i), b.row(v))
	}
	b.gen++
	return &Epoch{Gen: b.gen, Index: index, Rows: rows, owner: b}, nil
}

// Release returns a retired epoch's row storage to the builder's pool.
// Only epochs this builder built are released (the setup epoch and foreign
// epochs are ignored), so callers can unconditionally release whatever an
// install displaced. The caller must guarantee no gather still reads the
// epoch — installs at round barriers do.
func (b *EpochBuilder) Release(e *Epoch) {
	if e == nil || e.owner != b {
		return
	}
	e.owner = nil
	b.pool.Put(e.Rows)
	e.Index, e.Rows, e.Quant = nil, nil, nil
}

// Live returns the number of built-and-unreleased epochs — the leak gauge
// the shutdown regression tests assert returns to zero.
func (b *EpochBuilder) Live() int64 { return b.pool.Live() }
