package cache

// The online cache layer: where the Rankers of policy.go decide the cache
// once at setup, the Policy here watches the live gather stream and keeps
// proposing new cache epochs, closing the gap between a frozen prefix and
// a drifting request mix (the ROADMAP's "adaptive caching" item; PaGraph's
// degree/priority hybrid is the prior it blends in).

import (
	"fmt"
	"math"
	"sync/atomic"
)

// RoundAccess is one retired round's cache-relevant gather outcome, as
// classified by dist.GatherStats: the remote ids served from the cache and
// the remote ids that missed and were fetched (or, degraded, zero-filled),
// grouped per owning rank. Both alias the store's per-gather scratch —
// observers must fold them into their own state, never retain them.
type RoundAccess struct {
	// Hits are the cache-hit ids in access order.
	Hits []int32
	// Misses are the remote-fetch ids, one ascending list per owning rank.
	Misses [][]int32
}

// Policy is the online cache layer's decision interface. One Policy
// instance serves one install stream (one rank's store); calls are made
// from a single goroutine in round order.
//
// Determinism contract: Propose must be a pure function of the observation
// history (and construction parameters). The training installer relies on
// this for bitwise cross-transport reproducibility — two runs that observe
// the same rounds install the same epochs.
type Policy interface {
	// Name is the short label recorded in checkpoints and benchmarks.
	Name() string
	// Observe folds one retired round's access outcome into the policy
	// state. Called once per round, including empty rounds (it advances
	// the policy's clock).
	Observe(a RoundAccess)
	// Propose returns the membership of the next cache epoch: at most
	// capacity ids in descending priority, each previously observed or
	// seeded at construction. The result may alias policy-internal
	// storage, valid until the next Observe or Propose.
	Propose(capacity int) []int32
}

// Static is the default online policy: it pins the setup-time ranking
// prefix forever. Observe is a no-op and Propose always returns the same
// prefix, so the installer never swaps an epoch and the store behaves
// bitwise identically to the historical frozen cache.
type Static struct {
	ids []int32
}

// NewStatic pins ids (the truncated setup ranking, slot order).
func NewStatic(ids []int32) *Static {
	return &Static{ids: append([]int32(nil), ids...)}
}

// Name implements Policy.
func (s *Static) Name() string { return "static" }

// Observe implements Policy (no-op).
func (s *Static) Observe(RoundAccess) {}

// Propose implements Policy: the pinned prefix, truncated to capacity.
func (s *Static) Propose(capacity int) []int32 {
	if capacity > len(s.ids) {
		capacity = len(s.ids)
	}
	if capacity < 0 {
		capacity = 0
	}
	return s.ids[:capacity]
}

// OnlineConfig tunes the drift-tracking scorer. The zero value gives the
// defaults noted per field.
type OnlineConfig struct {
	// HalfLife is the number of observed rounds over which an unrefreshed
	// vertex's empirical access frequency decays to half. Longer half-lives
	// smooth noise but track drift more slowly. <= 0 means 64.
	HalfLife int
	// PriorWeight scales the static prior against one fresh access: at 1.0
	// (the default when 0; set negative for 0) the top-ranked setup vertex
	// scores like a vertex accessed once this round, so the VIP head stays
	// resident until the live mix actually outvotes it.
	PriorWeight float64
	// DegreeWeight scales the degree component inside the prior relative
	// to the setup-ranking component (PaGraph's hybrid). <= 0 means 0.25.
	DegreeWeight float64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.HalfLife <= 0 {
		c.HalfLife = 64
	}
	switch {
	case c.PriorWeight < 0:
		c.PriorWeight = 0
	case c.PriorWeight == 0:
		c.PriorWeight = 1
	}
	if c.DegreeWeight <= 0 {
		c.DegreeWeight = 0.25
	}
	return c
}

// Online scores remote vertices by exponentially decayed access frequency
// (hits and misses both count — a cached vertex must keep earning its
// slot) blended with a static prior built from the setup ranking and
// vertex degree. Scores decay lazily (a per-vertex timestamp, not an O(N)
// sweep per round), so Observe costs O(accesses) and Propose
// O(candidates·log candidates) over the vertices ever observed or seeded.
//
// All state updates are single-goroutine and the candidate ordering is
// fully tie-broken (descending score, ascending id), so two runs observing
// the same access streams propose identical memberships — the determinism
// the training installer requires.
type Online struct {
	cfg   OnlineConfig
	decay float64 // per-round multiplicative decay, 0.5^(1/HalfLife)
	round uint64

	freq  []float64 // decayed access frequency, valid as of last[v]
	last  []uint64  // round of v's most recent access
	seen  []bool    // v appears in cand
	prior []float64 // PriorWeight·(rankPrior + DegreeWeight·degPrior)
	cand  []int32   // every vertex ever seeded or observed (append order)
}

// NewOnline builds the scorer for a graph with n vertices. seedRanking is
// the setup-time ranking (descending priority; typically the full static
// ranking, at least the cached prefix) — it seeds the candidate set and
// the rank prior, so a cold scorer proposes roughly the static prefix.
// degrees, when non-nil, supplies per-vertex degrees for the hybrid prior.
func NewOnline(n int, seedRanking []int32, degrees []int32, cfg OnlineConfig) (*Online, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cache: online policy needs positive n, got %d", n)
	}
	cfg = cfg.withDefaults()
	o := &Online{
		cfg:   cfg,
		decay: math.Pow(0.5, 1/float64(cfg.HalfLife)),
		freq:  make([]float64, n),
		last:  make([]uint64, n),
		seen:  make([]bool, n),
		prior: make([]float64, n),
	}
	maxDeg := int32(1)
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	for i, v := range seedRanking {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("cache: seed ranking vertex %d out of range [0,%d)", v, n)
		}
		if o.seen[v] {
			continue
		}
		o.seen[v] = true
		o.cand = append(o.cand, v)
		rankPrior := float64(len(seedRanking)-i) / float64(len(seedRanking))
		degPrior := 0.0
		if degrees != nil {
			degPrior = float64(degrees[v]) / float64(maxDeg)
		}
		o.prior[v] = cfg.PriorWeight * (rankPrior + cfg.DegreeWeight*degPrior)
	}
	return o, nil
}

// Name implements Policy.
func (o *Online) Name() string { return "online" }

// Observe implements Policy: every access (hit or miss) refreshes its
// vertex's decayed frequency by one.
func (o *Online) Observe(a RoundAccess) {
	o.round++
	for _, v := range a.Hits {
		o.bump(v)
	}
	for _, peer := range a.Misses {
		for _, v := range peer {
			o.bump(v)
		}
	}
}

func (o *Online) bump(v int32) {
	o.freq[v] = o.score(v) + 1
	o.last[v] = o.round
	if !o.seen[v] {
		o.seen[v] = true
		o.cand = append(o.cand, v)
	}
}

// score returns v's decayed frequency as of the current round, without the
// prior.
func (o *Online) score(v int32) float64 {
	f := o.freq[v]
	if f == 0 {
		return 0
	}
	if age := o.round - o.last[v]; age > 0 {
		f *= math.Pow(o.decay, float64(age))
	}
	return f
}

// Propose implements Policy: the top-capacity candidates by decayed
// frequency plus prior, ties broken by ascending id.
func (o *Online) Propose(capacity int) []int32 {
	rankByScore(o.cand, func(v int32) float64 { return o.score(v) + o.prior[v] })
	if capacity > len(o.cand) {
		capacity = len(o.cand)
	}
	if capacity < 0 {
		capacity = 0
	}
	return o.cand[:capacity]
}

// Installer drives one store's cache epochs: it owns the policy, the
// epoch builder, and the capacity, counts installs and membership churn,
// and is the single producer of new epochs for its store. The caller
// decides when to call Next (the round-barrier or between-rounds cadence)
// and performs the actual pointer swap on its store.
//
// Two usage shapes are supported. Training calls Next synchronously from
// the observing goroutine at epoch boundaries. Serving splits the steps:
// Propose on the observing goroutine (the policy is single-goroutine),
// the ids copied to a background goroutine that calls BuildFor off the
// gather path, and the observing goroutine installs the delivered epoch
// between rounds. Build and Release may run on different goroutines (the
// builder's pool is thread-safe); only one goroutine may build.
type Installer struct {
	policy   Policy
	builder  *EpochBuilder
	capacity int

	installs  atomic.Int64
	churnRows atomic.Int64
}

// NewInstaller wires a policy and builder for a cache of the given
// capacity (rows).
func NewInstaller(policy Policy, builder *EpochBuilder, capacity int) (*Installer, error) {
	if policy == nil || builder == nil {
		return nil, fmt.Errorf("cache: installer needs a policy and a builder")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative cache capacity %d", capacity)
	}
	return &Installer{policy: policy, builder: builder, capacity: capacity}, nil
}

// Policy returns the installer's policy (for Observe calls on the gather
// path).
func (in *Installer) Policy() Policy { return in.policy }

// Observe forwards one round's access outcome to the policy.
func (in *Installer) Observe(a RoundAccess) { in.policy.Observe(a) }

// Propose returns the policy's next membership, at most capacity ids.
// Must be called from the observing goroutine; the result may alias
// policy-internal storage — copy it before handing it to a builder
// goroutine.
func (in *Installer) Propose() []int32 { return in.policy.Propose(in.capacity) }

// BuildFor materializes an epoch holding exactly ids, counting churn (the
// newly admitted ids) against cur. Returns (nil, 0, nil) when the
// membership is unchanged from cur's. Callable from a background builder
// goroutine; cur must stay the store's current epoch until the result is
// installed (one outstanding build per installer guarantees this).
func (in *Installer) BuildFor(ids []int32, cur *Epoch) (next *Epoch, churn int, err error) {
	for _, v := range ids {
		if cur == nil || cur.Index == nil || !cur.Index.Has(v) {
			churn++
		}
	}
	if churn == 0 && len(ids) == cur.Len() {
		return nil, 0, nil
	}
	next, err = in.builder.Build(ids)
	if err != nil {
		return nil, 0, err
	}
	in.installs.Add(1)
	in.churnRows.Add(int64(churn))
	return next, churn, nil
}

// Next proposes the next membership and, when it differs from cur's,
// builds the next epoch. Returns (nil, 0, nil) when the membership is
// unchanged — the Static policy lands here every time, so the default
// configuration never swaps an epoch.
func (in *Installer) Next(cur *Epoch) (next *Epoch, churn int, err error) {
	return in.BuildFor(in.policy.Propose(in.capacity), cur)
}

// Release hands a retired epoch back to the installer's builder.
func (in *Installer) Release(e *Epoch) { in.builder.Release(e) }

// Installs returns the number of epochs built so far.
func (in *Installer) Installs() int64 { return in.installs.Load() }

// ChurnRows returns the cumulative count of newly admitted cache rows
// across all installs.
func (in *Installer) ChurnRows() int64 { return in.churnRows.Load() }

// Live returns the builder's outstanding-epoch gauge.
func (in *Installer) Live() int64 { return in.builder.Live() }
