package cache

import (
	"fmt"

	"salientpp/internal/graph"
)

// Context carries everything a ranking policy may need. Policies rank the
// remote vertices of partition Part (vertices v with Parts[v] != Part).
type Context struct {
	// G is the full (undirected) graph.
	G *graph.CSR
	// Parts assigns each vertex to a partition in [0, K).
	Parts []int32
	// K is the partition count.
	K int
	// Part is the partition whose cache is being ranked.
	Part int32
	// TrainIDs are the global training vertices (all partitions); policies
	// seed from the subset local to Part.
	TrainIDs []int32
	// Fanouts and BatchSize describe the sampling process being optimized.
	Fanouts   []int
	BatchSize int
	// Seed drives any policy-internal simulation.
	Seed uint64
	// Workers bounds policy-internal parallelism (0 = GOMAXPROCS).
	Workers int
}

// Validate performs basic sanity checks shared by policies.
func (c *Context) Validate() error {
	if c.G == nil {
		return fmt.Errorf("cache: nil graph")
	}
	if len(c.Parts) != c.G.NumVertices() {
		return fmt.Errorf("cache: parts length %d != N %d", len(c.Parts), c.G.NumVertices())
	}
	if c.Part < 0 || int(c.Part) >= c.K {
		return fmt.Errorf("cache: partition %d out of [0,%d)", c.Part, c.K)
	}
	if len(c.Fanouts) == 0 {
		return fmt.Errorf("cache: empty fanouts")
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("cache: batch size %d", c.BatchSize)
	}
	return nil
}

// LocalTrain returns the training vertices belonging to Part.
func (c *Context) LocalTrain() []int32 {
	var out []int32
	for _, v := range c.TrainIDs {
		if c.Parts[v] == c.Part {
			out = append(out, v)
		}
	}
	return out
}

// remoteIDs returns all vertices not in Part.
func (c *Context) remoteIDs() []int32 {
	out := make([]int32, 0, len(c.Parts))
	for v, p := range c.Parts {
		if p != c.Part {
			out = append(out, int32(v))
		}
	}
	return out
}

// Ranker produces the setup-time ranking of remote vertices for one
// partition, best candidates first. The seven Figure 2 policies implement
// it; the truncated ranking becomes the first cache epoch (and, under the
// default Static online policy, every epoch after it). The online
// admission/eviction interface that evolves the cache after setup is
// Policy (online.go).
type Ranker interface {
	// Name is the short label used in tables (matching Figure 2's legend).
	Name() string
	// Rank returns remote vertex ids in descending cache priority. The
	// ranking may omit vertices that the policy would never cache (e.g.
	// unreachable ones); FromRanking treats missing vertices as
	// lowest-priority.
	Rank(ctx *Context) ([]int32, error)
}

// Registry returns the full set of Figure 2 policies in presentation
// order. simEpochs and oracleEpochs control the two empirical policies
// (the paper uses 2 simulated epochs for "sim." and the evaluation epochs
// themselves for "oracle").
func Registry(simEpochs, oracleEpochs int, oracleSeed uint64) []Ranker {
	return []Ranker{
		Degree{},
		Halo{},
		WeightedPageRank{Iterations: 5, Damping: 0.85},
		NumPaths{},
		Simulated{Epochs: simEpochs},
		VIP{},
		Oracle{Epochs: oracleEpochs, EvalSeed: oracleSeed},
	}
}
