// Package cache implements the static remote-feature caches of SALIENT++
// and the seven ranking policies compared in the paper's Figure 2:
// "deg." (degree with reachability filter), "1-hop" (halo replication),
// "wPR" (weighted reverse PageRank), "#paths" (bounded path counting),
// "sim." (empirical access frequencies over simulated epochs), "VIP"
// (the analytic model of Proposition 1), and "oracle" (retroactive actual
// frequencies — the communication lower bound).
//
// All policies produce a per-partition ranking of remote vertices; the
// cache stores the top α·N/K of them (replication factor α, §3.2).
package cache

import (
	"fmt"
	"sort"
)

// Cache is a static set of remote vertices whose features a machine
// replicates locally. Membership tests are O(1) via a bitset; Slot returns
// the storage row of a cached vertex for feature lookup.
type Cache struct {
	bits  []uint64
	slots map[int32]int32
	ids   []int32
}

// Build creates a cache over a graph with n vertices holding exactly the
// given ids (rank order preserved; the slot of ids[i] is i).
func Build(ids []int32, n int) (*Cache, error) {
	c := &Cache{
		bits:  make([]uint64, (n+63)/64),
		slots: make(map[int32]int32, len(ids)),
		ids:   append([]int32(nil), ids...),
	}
	for i, v := range ids {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("cache: vertex %d out of range [0,%d)", v, n)
		}
		w, b := v/64, uint(v%64)
		if c.bits[w]&(1<<b) != 0 {
			return nil, fmt.Errorf("cache: duplicate vertex %d", v)
		}
		c.bits[w] |= 1 << b
		c.slots[v] = int32(i)
	}
	return c, nil
}

// Empty returns a cache holding nothing.
func Empty(n int) *Cache {
	c, _ := Build(nil, n)
	return c
}

// Has reports whether v is cached.
func (c *Cache) Has(v int32) bool {
	return c.bits[v/64]&(1<<uint(v%64)) != 0
}

// Slot returns the storage row of v and whether it is cached.
func (c *Cache) Slot(v int32) (int32, bool) {
	s, ok := c.slots[v]
	return s, ok
}

// Len returns the number of cached vertices.
func (c *Cache) Len() int { return len(c.ids) }

// IDs returns the cached ids in rank order (do not modify).
func (c *Cache) IDs() []int32 { return c.ids }

// CapacityForAlpha returns the cache size implied by replication factor α:
// each of the K machines replicates α·N/K remote feature vectors, so that
// on average every feature vector is stored 1+α times (§3.2).
func CapacityForAlpha(alpha float64, n, k int) int {
	if alpha <= 0 {
		return 0
	}
	cap := int(alpha * float64(n) / float64(k))
	if cap < 0 {
		cap = 0
	}
	return cap
}

// FromRanking builds a cache from a descending-priority ranking, truncated
// to capacity.
func FromRanking(ranking []int32, capacity, n int) (*Cache, error) {
	if capacity > len(ranking) {
		capacity = len(ranking)
	}
	if capacity < 0 {
		capacity = 0
	}
	return Build(ranking[:capacity], n)
}

// rankByScore sorts candidate ids by descending score with ascending-id
// tie-breaks, giving deterministic rankings.
func rankByScore(ids []int32, score func(int32) float64) []int32 {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		sa, sb := score(a), score(b)
		if sa != sb {
			return sa > sb
		}
		return a < b
	})
	return ids
}
