package dataset

import (
	"fmt"
	"math"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

// SyntheticConfig describes a synthetic node-classification dataset.
type SyntheticConfig struct {
	Name string
	// NumVertices is the graph size N.
	NumVertices int
	// AvgDegree is the target average *stored* (directed) degree; the RMAT
	// edge-insertion count is derived from it accounting for symmetrization.
	AvgDegree float64
	// FeatureDim is D.
	FeatureDim int
	// NumClasses is C.
	NumClasses int
	// TrainFrac, ValFrac, TestFrac are the split fractions; the remainder
	// is SplitNone. They must sum to at most 1.
	TrainFrac, ValFrac, TestFrac float64
	// FeatureNoise is the per-dimension Gaussian noise added to class
	// centroids; larger values make the task harder. 0.5 is moderate.
	FeatureNoise float64
	// Materialize controls whether Features are generated. Performance
	// experiments that only need sizes should leave it false.
	Materialize bool
	// Seed drives all randomness.
	Seed uint64
}

// Generate builds the dataset described by cfg.
func Generate(cfg SyntheticConfig) (*Dataset, error) {
	if cfg.NumVertices <= 0 {
		return nil, fmt.Errorf("dataset: NumVertices must be positive, got %d", cfg.NumVertices)
	}
	if cfg.NumClasses <= 1 {
		return nil, fmt.Errorf("dataset: NumClasses must be >= 2, got %d", cfg.NumClasses)
	}
	if f := cfg.TrainFrac + cfg.ValFrac + cfg.TestFrac; f > 1.0001 || cfg.TrainFrac < 0 || cfg.ValFrac < 0 || cfg.TestFrac < 0 {
		return nil, fmt.Errorf("dataset: split fractions invalid (sum %.3f)", f)
	}

	// Each RMAT insertion becomes ~2 stored directed edges before dedup;
	// bump by ~6%% to compensate for duplicate removal on skewed graphs.
	insertions := int64(float64(cfg.NumVertices) * cfg.AvgDegree / 2 * 1.06)
	g, err := graph.RMAT(graph.DefaultRMAT(cfg.NumVertices, insertions, cfg.Seed))
	if err != nil {
		return nil, err
	}

	r := rng.New(cfg.Seed ^ 0xd1ce)
	labels := voronoiLabels(g, cfg.NumClasses, r.Split(1))
	splits := assignSplits(cfg.NumVertices, cfg.TrainFrac, cfg.ValFrac, cfg.TestFrac, r.Split(2))

	d := &Dataset{
		Name:       cfg.Name,
		Graph:      g,
		FeatureDim: cfg.FeatureDim,
		Labels:     labels,
		NumClasses: cfg.NumClasses,
		Splits:     splits,
	}
	if cfg.Materialize {
		d.Features = centroidFeatures(labels, cfg.NumClasses, cfg.FeatureDim, cfg.FeatureNoise, r.Split(3))
	}
	return d, nil
}

// voronoiLabels plants C homophilous label regions by multi-source BFS from
// C random seeds: every vertex takes the label of its nearest seed.
// Vertices unreachable from any seed get uniform random labels.
func voronoiLabels(g *graph.CSR, classes int, r *rng.RNG) []int32 {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	// Distinct random seeds (graph may be smaller than class count in
	// pathological tests; guard with min).
	numSeeds := classes
	if numSeeds > n {
		numSeeds = n
	}
	for _, s := range r.SampleK(nil, numSeeds, n) {
		labels[s] = int32(len(queue) % classes)
		queue = append(queue, s)
	}
	// Re-assign seed labels to be 0..numSeeds-1 in draw order.
	for i, s := range queue {
		labels[s] = int32(i % classes)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if labels[w] < 0 {
				labels[w] = labels[v]
				queue = append(queue, w)
			}
		}
	}
	for v := range labels {
		if labels[v] < 0 {
			labels[v] = int32(r.Intn(classes))
		}
	}
	return labels
}

// assignSplits draws a random permutation and cuts it into train/val/test
// prefixes of the requested fractions.
func assignSplits(n int, train, val, test float64, r *rng.RNG) []Split {
	splits := make([]Split, n)
	perm := r.Perm(n)
	nTrain := int(math.Round(train * float64(n)))
	nVal := int(math.Round(val * float64(n)))
	nTest := int(math.Round(test * float64(n)))
	if nTrain+nVal+nTest > n {
		nTest = n - nTrain - nVal
	}
	idx := 0
	for i := 0; i < nTrain; i++ {
		splits[perm[idx]] = SplitTrain
		idx++
	}
	for i := 0; i < nVal; i++ {
		splits[perm[idx]] = SplitVal
		idx++
	}
	for i := 0; i < nTest; i++ {
		splits[perm[idx]] = SplitTest
		idx++
	}
	return splits
}

// centroidFeatures draws a random centroid per class and emits
// x_v = centroid[label(v)] + noise.
func centroidFeatures(labels []int32, classes, dim int, noise float64, r *rng.RNG) []float32 {
	centroids := make([]float32, classes*dim)
	for i := range centroids {
		centroids[i] = float32(r.NormFloat64())
	}
	out := make([]float32, len(labels)*dim)
	for v, l := range labels {
		c := centroids[int(l)*dim : (int(l)+1)*dim]
		row := out[v*dim : (v+1)*dim]
		for j := range row {
			row[j] = c[j] + float32(noise*r.NormFloat64())
		}
	}
	return out
}

// The three paper benchmarks (Table 2), scaled. The scale parameter is the
// vertex count; relative statistics follow the paper:
//
//	dataset   N (paper)  M stored  avg deg  D    train%  val%   test%
//	products  2.4M       123M      51.2     100  8.2%    1.6%   91.7%
//	papers    111M       3.2B      28.8     128  1.08%   0.11%  0.19%
//	mag240c   121M       2.6B      21.5     768  0.91%   0.11%  0.07%

// ProductsSim returns the ogbn-products analog at n vertices.
func ProductsSim(n int, materialize bool, seed uint64) (*Dataset, error) {
	return Generate(SyntheticConfig{
		Name: "products-sim", NumVertices: n, AvgDegree: 51.2,
		FeatureDim: 100, NumClasses: 16,
		TrainFrac: 0.082, ValFrac: 0.016, TestFrac: 0.902,
		FeatureNoise: 0.6, Materialize: materialize, Seed: seed,
	})
}

// PapersSim returns the ogbn-papers100M analog at n vertices.
func PapersSim(n int, materialize bool, seed uint64) (*Dataset, error) {
	return Generate(SyntheticConfig{
		Name: "papers-sim", NumVertices: n, AvgDegree: 28.8,
		FeatureDim: 128, NumClasses: 32,
		TrainFrac: 0.0108, ValFrac: 0.0011, TestFrac: 0.0019,
		FeatureNoise: 0.6, Materialize: materialize, Seed: seed,
	})
}

// Mag240Sim returns the mag240c (papers-to-papers citation component)
// analog at n vertices. Its distinguishing property in the paper is the 6×
// larger feature dimension, which makes remote-feature communication
// throughput-bound.
func Mag240Sim(n int, materialize bool, seed uint64) (*Dataset, error) {
	return Generate(SyntheticConfig{
		Name: "mag240-sim", NumVertices: n, AvgDegree: 21.5,
		FeatureDim: 768, NumClasses: 32,
		TrainFrac: 0.0091, ValFrac: 0.0011, TestFrac: 0.0007,
		FeatureNoise: 0.6, Materialize: materialize, Seed: seed,
	})
}
