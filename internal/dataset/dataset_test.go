package dataset

import (
	"math"
	"testing"

	"salientpp/internal/graph"
	"salientpp/internal/rng"
)

func genSmall(t *testing.T, materialize bool) *Dataset {
	t.Helper()
	d, err := Generate(SyntheticConfig{
		Name: "small", NumVertices: 2000, AvgDegree: 10,
		FeatureDim: 16, NumClasses: 4,
		TrainFrac: 0.1, ValFrac: 0.05, TestFrac: 0.2,
		FeatureNoise: 0.5, Materialize: materialize, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateBasic(t *testing.T) {
	d := genSmall(t, true)
	if d.NumVertices() != 2000 {
		t.Fatalf("N=%d", d.NumVertices())
	}
	if !d.HasFeatures() {
		t.Fatal("features should be materialized")
	}
	if len(d.Features) != 2000*16 {
		t.Fatalf("feature buffer %d", len(d.Features))
	}
	if d.FeatureBytes() != 64 {
		t.Fatalf("FeatureBytes=%d", d.FeatureBytes())
	}
}

func TestGenerateSplitFractions(t *testing.T) {
	d := genSmall(t, false)
	nTrain := d.CountSplit(SplitTrain)
	nVal := d.CountSplit(SplitVal)
	nTest := d.CountSplit(SplitTest)
	if math.Abs(float64(nTrain)-200) > 2 {
		t.Fatalf("train count %d want ~200", nTrain)
	}
	if math.Abs(float64(nVal)-100) > 2 {
		t.Fatalf("val count %d want ~100", nVal)
	}
	if math.Abs(float64(nTest)-400) > 2 {
		t.Fatalf("test count %d want ~400", nTest)
	}
	if nTrain+nVal+nTest+d.CountSplit(SplitNone) != 2000 {
		t.Fatal("split counts do not partition vertices")
	}
}

func TestSplitsDisjointAndConsistent(t *testing.T) {
	d := genSmall(t, false)
	train := d.TrainIDs()
	if len(train) != d.CountSplit(SplitTrain) {
		t.Fatal("TrainIDs inconsistent with CountSplit")
	}
	for i := 1; i < len(train); i++ {
		if train[i-1] >= train[i] {
			t.Fatal("TrainIDs not ascending")
		}
	}
	for _, v := range train {
		if d.Splits[v] != SplitTrain {
			t.Fatal("TrainIDs returned non-train vertex")
		}
	}
}

func TestLabelsHomophilous(t *testing.T) {
	d := genSmall(t, false)
	// Count the fraction of edges whose endpoints share a label; Voronoi
	// labeling should make this far above the 1/C random baseline.
	var same, total int64
	g := d.Graph
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			total++
			if d.Labels[v] == d.Labels[w] {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	baseline := 1.0 / float64(d.NumClasses)
	// RMAT hubs sit near every region so interleaving is expected; require
	// a clear (>=1.6x) lift over random rather than perfect separation.
	if frac < 1.6*baseline {
		t.Fatalf("homophily %.3f too close to random baseline %.3f", frac, baseline)
	}
}

func TestFeaturesClusterByClass(t *testing.T) {
	d := genSmall(t, true)
	// Mean distance to own-class centroid must be below distance to a
	// different class centroid (i.e., features carry label signal).
	dim := d.FeatureDim
	centroids := make([][]float64, d.NumClasses)
	counts := make([]int, d.NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for v := 0; v < d.NumVertices(); v++ {
		c := d.Labels[v]
		counts[c]++
		row := d.FeatureRow(int32(v))
		for j := 0; j < dim; j++ {
			centroids[c][j] += float64(row[j])
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	dist := func(row []float32, c int) float64 {
		var s float64
		for j := 0; j < dim; j++ {
			dlt := float64(row[j]) - centroids[c][j]
			s += dlt * dlt
		}
		return s
	}
	correct := 0
	sample := 0
	for v := 0; v < d.NumVertices(); v += 7 {
		row := d.FeatureRow(int32(v))
		best, bestD := -1, math.Inf(1)
		for c := 0; c < d.NumClasses; c++ {
			if counts[c] == 0 {
				continue
			}
			if dd := dist(row, c); dd < bestD {
				best, bestD = c, dd
			}
		}
		if best == int(d.Labels[v]) {
			correct++
		}
		sample++
	}
	if acc := float64(correct) / float64(sample); acc < 0.7 {
		t.Fatalf("nearest-centroid accuracy %.2f; features carry too little signal", acc)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(SyntheticConfig{NumVertices: 0, NumClasses: 2}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := Generate(SyntheticConfig{NumVertices: 10, NumClasses: 1}); err == nil {
		t.Fatal("expected class error")
	}
	if _, err := Generate(SyntheticConfig{NumVertices: 10, NumClasses: 2, TrainFrac: 0.9, ValFrac: 0.9}); err == nil {
		t.Fatal("expected split fraction error")
	}
}

func TestFeatureRowPanicsWithoutMaterialization(t *testing.T) {
	d := genSmall(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.FeatureRow(0)
}

func TestPaperAnalogStatistics(t *testing.T) {
	// Verify the relative statistics of the three analogs at small scale.
	cases := []struct {
		name     string
		gen      func(int, bool, uint64) (*Dataset, error)
		dim      int
		avgDeg   float64
		trainPct float64
	}{
		{"products", ProductsSim, 100, 51.2, 0.082},
		{"papers", PapersSim, 128, 28.8, 0.0108},
		{"mag240", Mag240Sim, 768, 21.5, 0.0091},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.gen(4000, false, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			if d.FeatureDim != tc.dim {
				t.Fatalf("dim=%d want %d", d.FeatureDim, tc.dim)
			}
			got := d.Graph.AvgDegree()
			if got < tc.avgDeg*0.6 || got > tc.avgDeg*1.3 {
				t.Fatalf("avg degree %.1f too far from %.1f", got, tc.avgDeg)
			}
			train := float64(d.CountSplit(SplitTrain)) / float64(d.NumVertices())
			if math.Abs(train-tc.trainPct) > 0.004 {
				t.Fatalf("train fraction %.4f want %.4f", train, tc.trainPct)
			}
		})
	}
}

func TestRelabelMovesEverything(t *testing.T) {
	d := genSmall(t, true)
	perm := graph.Permutation(rng.New(3).Perm(d.NumVertices()))
	rd, err := d.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Validate(); err != nil {
		t.Fatal(err)
	}
	for old := 0; old < d.NumVertices(); old++ {
		nw := perm[old]
		if rd.Labels[nw] != d.Labels[old] {
			t.Fatalf("label did not move with vertex %d", old)
		}
		if rd.Splits[nw] != d.Splits[old] {
			t.Fatalf("split did not move with vertex %d", old)
		}
		a, b := d.FeatureRow(int32(old)), rd.FeatureRow(nw)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("features did not move with vertex %d", old)
			}
		}
	}
	if rd.CountSplit(SplitTrain) != d.CountSplit(SplitTrain) {
		t.Fatal("train count changed under relabeling")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := genSmall(t, true)
	b := genSmall(t, true)
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] || a.Splits[v] != b.Splits[v] {
			t.Fatal("generation not deterministic")
		}
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatal("features not deterministic")
		}
	}
}

func TestSplitString(t *testing.T) {
	if SplitTrain.String() != "train" || SplitNone.String() != "none" {
		t.Fatal("Split.String broken")
	}
}
