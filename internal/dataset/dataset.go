// Package dataset bundles a graph with vertex features, labels, and
// train/validation/test splits, and provides synthetic analogs of the three
// Open Graph Benchmark data sets used in the SALIENT++ paper (Table 2).
//
// The OGB data cannot be downloaded in this offline reproduction and the
// full-scale graphs (111M–121M vertices) would not fit regardless, so the
// analogs are RMAT graphs whose *relative* statistics — average degree,
// feature dimensionality, and train/val/test fractions — match the paper.
// Labels are planted by graph-Voronoi regions (multi-source BFS), giving
// the label homophily that makes GraphSAGE training meaningful, and
// features are noisy class centroids so the task is learnable.
package dataset

import (
	"fmt"

	"salientpp/internal/graph"
)

// Split labels a vertex's role in training.
type Split uint8

// Split values. SplitNone marks vertices that participate in the graph but
// not in any supervised split (the common case for papers/mag240c where
// only ~1% of vertices are labeled).
const (
	SplitNone Split = iota
	SplitTrain
	SplitVal
	SplitTest
)

func (s Split) String() string {
	switch s {
	case SplitTrain:
		return "train"
	case SplitVal:
		return "val"
	case SplitTest:
		return "test"
	default:
		return "none"
	}
}

// Dataset is a node-classification dataset.
type Dataset struct {
	Name string
	// Graph is undirected with sorted adjacency.
	Graph *graph.CSR
	// FeatureDim is the per-vertex feature dimensionality D.
	FeatureDim int
	// Features holds row-major vertex features (length N*FeatureDim) or is
	// nil when the dataset was generated without feature materialization
	// (performance-model experiments only need sizes).
	Features []float32
	// Labels[v] in [0, NumClasses).
	Labels []int32
	// NumClasses is the label count C.
	NumClasses int
	// Splits[v] is the split membership of v.
	Splits []Split
}

// NumVertices returns N.
func (d *Dataset) NumVertices() int { return d.Graph.NumVertices() }

// FeatureRow returns the feature vector of v, aliasing internal storage.
// It panics if features were not materialized.
func (d *Dataset) FeatureRow(v int32) []float32 {
	if d.Features == nil {
		panic("dataset: features not materialized")
	}
	off := int(v) * d.FeatureDim
	return d.Features[off : off+d.FeatureDim]
}

// HasFeatures reports whether feature rows were materialized.
func (d *Dataset) HasFeatures() bool { return d.Features != nil }

// FeatureBytes returns the wire size of one feature vector (float32 rows).
func (d *Dataset) FeatureBytes() int64 { return int64(d.FeatureDim) * 4 }

// IDsInSplit returns the vertex ids with the given split membership, in
// ascending order.
func (d *Dataset) IDsInSplit(s Split) []int32 {
	var out []int32
	for v, sv := range d.Splits {
		if sv == s {
			out = append(out, int32(v))
		}
	}
	return out
}

// TrainIDs returns the training vertices in ascending order.
func (d *Dataset) TrainIDs() []int32 { return d.IDsInSplit(SplitTrain) }

// ValIDs returns the validation vertices in ascending order.
func (d *Dataset) ValIDs() []int32 { return d.IDsInSplit(SplitVal) }

// TestIDs returns the test vertices in ascending order.
func (d *Dataset) TestIDs() []int32 { return d.IDsInSplit(SplitTest) }

// CountSplit returns the number of vertices in split s.
func (d *Dataset) CountSplit(s Split) int {
	c := 0
	for _, sv := range d.Splits {
		if sv == s {
			c++
		}
	}
	return c
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	n := d.NumVertices()
	if err := d.Graph.Validate(); err != nil {
		return fmt.Errorf("dataset %q: %w", d.Name, err)
	}
	if len(d.Labels) != n {
		return fmt.Errorf("dataset %q: %d labels for %d vertices", d.Name, len(d.Labels), n)
	}
	if len(d.Splits) != n {
		return fmt.Errorf("dataset %q: %d split entries for %d vertices", d.Name, len(d.Splits), n)
	}
	for v, l := range d.Labels {
		if l < 0 || int(l) >= d.NumClasses {
			return fmt.Errorf("dataset %q: vertex %d has label %d outside [0,%d)", d.Name, v, l, d.NumClasses)
		}
	}
	if d.Features != nil && len(d.Features) != n*d.FeatureDim {
		return fmt.Errorf("dataset %q: feature buffer has %d values, want %d", d.Name, len(d.Features), n*d.FeatureDim)
	}
	return nil
}

// Relabel returns a copy of the dataset with vertices renamed through perm
// (newID = perm[oldID]); features, labels, and splits move with their
// vertices. Used after partitioning to make partitions contiguous (§4.1).
func (d *Dataset) Relabel(perm graph.Permutation) (*Dataset, error) {
	g, err := graph.Relabel(d.Graph, perm)
	if err != nil {
		return nil, err
	}
	n := d.NumVertices()
	out := &Dataset{
		Name:       d.Name,
		Graph:      g,
		FeatureDim: d.FeatureDim,
		Labels:     make([]int32, n),
		NumClasses: d.NumClasses,
		Splits:     make([]Split, n),
	}
	if d.Features != nil {
		out.Features = make([]float32, len(d.Features))
	}
	for old := 0; old < n; old++ {
		nw := perm[old]
		out.Labels[nw] = d.Labels[old]
		out.Splits[nw] = d.Splits[old]
		if d.Features != nil {
			copy(out.Features[int(nw)*d.FeatureDim:(int(nw)+1)*d.FeatureDim], d.Features[old*d.FeatureDim:(old+1)*d.FeatureDim])
		}
	}
	return out, nil
}
