package pipeline

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/nn"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
)

// flakyComm injects a failure after a fixed number of collectives,
// exercising the training loop's error path (the paper's system relies on
// NCCL aborting; here the group is closed on failure, which wakes blocked
// peers with errors instead of deadlocking them).
type flakyComm struct {
	dist.Comm
	calls  *atomic.Int64
	failAt int64
}

func (f *flakyComm) AllToAll(send [][]byte) ([][]byte, error) {
	if f.calls.Add(1) >= f.failAt {
		f.Comm.Close() // abort the whole group, like an NCCL abort
		return nil, fmt.Errorf("injected network failure")
	}
	return f.Comm.AllToAll(send)
}

func TestTrainEpochSurfacesTransportFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "flaky", NumVertices: 400, AvgDegree: 8, FeatureDim: 8,
		NumClasses: 2, TrainFrac: 0.4, FeatureNoise: 0.3,
		Materialize: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	feat, err := dist.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := dist.NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer feat[0].Close()
	defer grad[0].Close()

	layout, err := dist.NewLayout([]int64{0, 200, 400})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	ranks := make([]*Rank, 2)
	stores := make([]*dist.Store, 2)
	for r := 0; r < 2; r++ {
		local := tensor.New(200, d.FeatureDim)
		for v := 0; v < 200; v++ {
			copy(local.Row(v), d.FeatureRow(int32(layout.Starts[r])+int32(v)))
		}
		// Rank 0's feature comm fails partway through the epoch; both
		// ranks share the counter so the failure lands mid-collective.
		var fc dist.Comm = feat[r]
		fc = &flakyComm{Comm: fc, calls: &calls, failAt: 8}
		store, err := dist.NewStore(fc, layout, d.FeatureDim, local, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = store
		smp, err := sample.NewSampler(d.Graph, []int{3, 3})
		if err != nil {
			t.Fatal(err)
		}
		model, err := nn.NewModel(d.FeatureDim, 8, d.NumClasses, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		var train []int32
		for _, v := range d.TrainIDs() {
			if layout.Owner(v) == r {
				train = append(train, v)
			}
		}
		rk, err := NewRank(Config{Fanouts: []int{3, 3}, BatchSize: 16, PipelineDepth: 2, SamplerWorkers: 1, LR: 0.01, Seed: 2},
			fc, grad[r], store, smp, model, train, d.Labels, 8)
		if err != nil {
			t.Fatal(err)
		}
		ranks[r] = rk
	}

	errs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			_, err := ranks[r].TrainEpoch(0)
			errs <- err
		}(r)
	}
	sawFailure := false
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("injected transport failure was swallowed")
	}

	// Pooled-tensor regression: the abort path must hand every gathered
	// feature matrix back to its store pool — the failing batch's, those
	// queued between the gather and compute stages, and those stranded by
	// the stage-B abort select.
	for r, st := range stores {
		if live := st.Live(); live != 0 {
			t.Errorf("rank %d leaked %d pooled feature matrices on the abort path", r, live)
		}
	}

	// Leak regression: before the abort channel, a mid-epoch Gather failure
	// left sampling workers blocked on the inflight semaphore and the slot
	// forwarder blocked on its per-batch channel, permanently. Every
	// pipeline goroutine must unwind once TrainEpoch returns the error.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("pipeline goroutines leaked after failed epoch: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEvaluateDisjointFanouts(t *testing.T) {
	// Evaluation may use different (larger) fanouts than training, as the
	// paper does with (20,20,20); verify it works on a live cluster.
	d, err := dataset.Generate(dataset.SyntheticConfig{
		Name: "evalf", NumVertices: 800, AvgDegree: 10, FeatureDim: 8,
		NumClasses: 3, TrainFrac: 0.3, ValFrac: 0.2, FeatureNoise: 0.3,
		Materialize: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(d, ClusterConfig{
		K: 2, Alpha: 0.1, GPUFraction: 1, VIPReorder: true,
		Hidden: 8, Layers: 2,
		Train: Config{Fanouts: []int{4, 4}, BatchSize: 32, PipelineDepth: 2, SamplerWorkers: 1, LR: 0.01, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.TrainEpochAll(0); err != nil {
		t.Fatal(err)
	}
	acc, err := cl.EvaluateAll(dataset.SplitVal, []int{10, 10}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}
