package pipeline

import (
	"fmt"
	"time"

	"salientpp/internal/cache"
	"salientpp/internal/ckpt"
	"salientpp/internal/dataset"
	"salientpp/internal/dist"
	"salientpp/internal/graph"
	"salientpp/internal/nn"
	"salientpp/internal/partition"
	"salientpp/internal/sample"
	"salientpp/internal/tensor"
	"salientpp/internal/vip"
)

// ClusterConfig assembles a full SALIENT++ deployment inside one process:
// partitioning, VIP analysis, vertex reordering, cache construction,
// feature sharding, and per-rank models with identical initial weights.
type ClusterConfig struct {
	K int
	// Alpha is the replication factor (0 disables remote caching).
	Alpha float64
	// GPUFraction is the share of each local partition kept "on device"
	// (Figure 6's β). 1.0 matches the paper's main experiments.
	GPUFraction float64
	// VIPReorder ranks local vertices by VIP value before the CPU/GPU
	// split; false keeps the arbitrary post-partition order ("no reorder").
	VIPReorder bool
	// CachePolicy ranks each rank's remote vertices for the setup-time
	// cache; nil means cache.VIP{}.
	CachePolicy cache.Ranker
	// OnlineCache enables the versioned online cache layer: each rank
	// observes its live gather stream through a frequency-decayed scorer
	// (cache.Online, seeded with the setup ranking and vertex degrees) and
	// installs a new cache epoch at every epoch boundary whose membership
	// drifted. Off (the default), the setup cache is pinned forever and
	// the store behaves bitwise identically to the historical frozen
	// cache. Installs are deterministic: the scorer is a pure function of
	// the observed round stream, so two runs (on either transport)
	// observing the same rounds install identical epochs.
	OnlineCache bool
	// OnlineCacheConfig tunes the online scorer; the zero value uses the
	// cache.OnlineConfig defaults. Ignored unless OnlineCache is set.
	OnlineCacheConfig cache.OnlineConfig
	// Hidden, Layers, Dropout, and Train configure the model and loop.
	Hidden  int
	Layers  int
	Dropout float64
	Train   Config
	// ModelSeed fixes initial weights across ranks.
	ModelSeed uint64
	// UseTCP selects the loopback TCP transport instead of in-process
	// channels.
	UseTCP bool
	// Codec selects the feature-gather wire codec for the cluster's comm
	// group: "" or "fp32" (raw, byte-identical to the historical wire
	// format), "fp16" (half-precision rows + varint delta id lists), or
	// "int8" (per-row-scaled int8 rows + varint delta id lists). All ranks
	// share the setting — it is the comm group's negotiated codec. Lossy
	// codecs change gathered remote feature values (never which rows move),
	// so the codec is part of the run identity checkpoints pin.
	Codec string
	// Precision selects the compute precision serving snapshots of this
	// cluster default to: "" or "fp32" (full precision), "fp16", or "int8"
	// (see tensor.Precision). Training compute always runs fp32 — backward
	// passes need full-precision gradients — so Precision never changes the
	// training trajectory; it is recorded as run identity in checkpoints
	// (like Codec) and inherited by serve snapshots that do not override it.
	Precision string
	// Checkpoint enables coordinated fault-tolerance checkpoints (see
	// internal/ckpt): barrier-consistent saves every EveryRounds retired
	// rounds and/or every EveryEpochs epoch boundaries, written atomically
	// (temp file + rename) with retain-K rotation. Every checkpoint is
	// self-contained: it carries the partition topology and cache contents
	// alongside per-rank weights, Adam moments, and RNG streams.
	Checkpoint ckpt.Config
	// Resume restores a checkpointed run. The saved topology (vertex
	// permutation, partition layout, per-rank cache contents) replaces
	// partitioning, VIP analysis, and cache ranking — restore skips
	// re-analysis entirely — and per-rank weights/optimizer/RNG state are
	// loaded so training continues bitwise identically from the saved
	// epoch/round cursor. The dataset and the training configuration
	// (fanouts, batch size, seeds, K) must match the checkpointed run;
	// VIPReorder and CachePolicy are ignored because the topology is
	// pinned. Drive epochs starting at FirstEpoch().
	Resume *ckpt.TrainState
	// WrapComm, when non-nil, wraps each rank's communicators before the
	// store and training loop are built. This is the crash-recovery
	// harness's fault-injection point: wrap with Comms that fail at a
	// chosen collective to kill a rank at an arbitrary batch (a realistic
	// kill closes both groups, as a dying machine would, so peers unwind
	// instead of deadlocking in the gradient all-reduce). Production
	// deployments leave it nil.
	WrapComm func(rank int, feat, grad dist.Comm) (dist.Comm, dist.Comm)
	// StallTimeout, when > 0, arms a deadline on every training collective
	// (feature gathers and gradient all-reduces alike): a collective that
	// makes no progress for this long fails with dist.ErrTimeout and poisons
	// its group instead of hanging the epoch. This is the detection half of
	// elastic training — TrainElastic classifies the failure, probes the
	// survivors, and regroups. Zero leaves collectives unbounded (the
	// historical behavior; a dead peer hangs the loop).
	StallTimeout time.Duration
}

// Cluster is a ready-to-train in-process deployment.
type Cluster struct {
	Ranks []*Rank
	// Data is the reordered dataset shared by all ranks (read-only).
	Data *dataset.Dataset
	// Layout is the contiguous partition layout.
	Layout *dist.Layout
	// Parts is the partition assignment in reordered vertex ids.
	Parts []int32
	// Perm maps original ids to reordered ids.
	Perm graph.Permutation
	// Precision is the parsed ClusterConfig.Precision — the default compute
	// precision for serving snapshots of this cluster.
	Precision tensor.Precision

	commFeat []dist.Comm
	commGrad []dist.Comm
	resume   *ckpt.TrainState // pending resume cursor; consumed by TrainEpochAll
}

// FirstEpoch returns the epoch TrainEpochAll should be driven from: the
// checkpoint's epoch when the cluster was built with Resume, 0 otherwise.
func (c *Cluster) FirstEpoch() int {
	if c.resume != nil {
		return c.resume.Step.Epoch
	}
	return 0
}

// Close releases communicators.
func (c *Cluster) Close() {
	for _, cm := range c.commFeat {
		cm.Close()
	}
	for _, cm := range c.commGrad {
		cm.Close()
	}
}

// NewCluster builds the deployment from a materialized dataset.
func NewCluster(ds *dataset.Dataset, cfg ClusterConfig) (*Cluster, error) {
	if !ds.HasFeatures() {
		return nil, fmt.Errorf("pipeline: dataset must be materialized for training")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("pipeline: K = %d", cfg.K)
	}
	if cfg.GPUFraction == 0 {
		cfg.GPUFraction = 1
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 64
	}
	if cfg.Layers == 0 {
		cfg.Layers = len(cfg.Train.Fanouts)
	}
	if cfg.CachePolicy == nil {
		cfg.CachePolicy = cache.VIP{}
	}
	codec, err := dist.ParseCodec(cfg.Codec)
	if err != nil {
		return nil, err
	}
	precision, err := tensor.ParsePrecision(cfg.Precision)
	if err != nil {
		return nil, err
	}
	gradCodec, err := dist.ParseCodec(cfg.Train.GradCodec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: gradient codec: %w", err)
	}

	// Steps 1–3 (partitioning, VIP analysis, reordering) run only for
	// fresh clusters; a Resume restores their results from the checkpoint
	// topology instead, skipping the re-analysis entirely.
	var (
		perm   graph.Permutation
		starts []int64
		parts  []int32
	)
	if cfg.Resume != nil {
		topo := cfg.Resume.Topo
		if err := validateResume(ds, cfg, cfg.Resume); err != nil {
			return nil, err
		}
		perm = graph.Permutation(append([]int32(nil), topo.Perm...))
		starts = append([]int64(nil), topo.Starts...)
		parts = append([]int32(nil), topo.Parts...)
	} else {
		// 1. Partition with the paper's balance constraints.
		isTrain := make([]bool, ds.NumVertices())
		isVal := make([]bool, ds.NumVertices())
		isTest := make([]bool, ds.NumVertices())
		for v, s := range ds.Splits {
			switch s {
			case dataset.SplitTrain:
				isTrain[v] = true
			case dataset.SplitVal:
				isVal[v] = true
			case dataset.SplitTest:
				isTest[v] = true
			}
		}
		pres, err := partition.Partition(ds.Graph, partition.Config{
			K:       cfg.K,
			Weights: partition.SalientWeights(ds.Graph, isTrain, isVal, isTest),
			Seed:    cfg.Train.Seed,
		})
		if err != nil {
			return nil, err
		}

		// 2. Partition-wise VIP analysis on the original ids.
		vcfg := vip.Config{Fanouts: cfg.Train.Fanouts, BatchSize: cfg.Train.BatchSize, IncludeSeeds: true, Workers: cfg.Train.Parallelism}
		vips, err := vip.ForPartitions(ds.Graph, pres.Parts, cfg.K, ds.TrainIDs(), vcfg)
		if err != nil {
			return nil, err
		}

		// 3. Reorder: partitions contiguous; within each partition by VIP
		// rank (or original order for the "no reorder" ablation).
		var score []float64
		if cfg.VIPReorder {
			score = make([]float64, ds.NumVertices())
			for v := range score {
				score[v] = vips[pres.Parts[v]][v]
			}
		}
		perm, starts, err = graph.PartitionOrder(pres.Parts, cfg.K, score)
		if err != nil {
			return nil, err
		}
		parts = make([]int32, ds.NumVertices())
		for old, p := range pres.Parts {
			parts[perm[old]] = p
		}
	}
	rds, err := ds.Relabel(perm)
	if err != nil {
		return nil, err
	}
	layout, err := dist.NewLayout(starts)
	if err != nil {
		return nil, err
	}

	// 4. Communicator groups (features and gradients are separate, like
	// NCCL streams).
	var commFeat, commGrad []dist.Comm
	if cfg.UseTCP {
		commFeat, err = dist.NewTCPGroup(cfg.K)
		if err != nil {
			return nil, err
		}
		commGrad, err = dist.NewTCPGroup(cfg.K)
	} else {
		commFeat, err = dist.NewLocalGroup(cfg.K)
		if err != nil {
			return nil, err
		}
		commGrad, err = dist.NewLocalGroup(cfg.K)
	}
	if err != nil {
		return nil, err
	}

	// 5. Per-rank stores, models, ranks.
	trainReordered := rds.TrainIDs()
	trainPer := make([][]int32, cfg.K)
	for _, v := range trainReordered {
		p := layout.Owner(v)
		trainPer[p] = append(trainPer[p], v)
	}
	maxBatches := 0
	for p := 0; p < cfg.K; p++ {
		nb := (len(trainPer[p]) + cfg.Train.BatchSize - 1) / cfg.Train.BatchSize
		if nb > maxBatches {
			maxBatches = nb
		}
	}
	if maxBatches == 0 {
		return nil, fmt.Errorf("pipeline: no training vertices")
	}
	if cfg.Resume != nil && cfg.Resume.Rounds != maxBatches {
		return nil, fmt.Errorf("pipeline: checkpoint has %d rounds per epoch, this configuration derives %d (batch size or dataset drifted)",
			cfg.Resume.Rounds, maxBatches)
	}

	capacity := cache.CapacityForAlpha(cfg.Alpha, ds.NumVertices(), cfg.K)
	refModel, err := nn.NewModel(rds.FeatureDim, cfg.Hidden, rds.NumClasses, cfg.Layers, cfg.Dropout, cfg.ModelSeed)
	if err != nil {
		return nil, err
	}

	cl := &Cluster{Data: rds, Layout: layout, Parts: parts, Perm: perm, Precision: precision, commFeat: commFeat, commGrad: commGrad, resume: cfg.Resume}
	cacheIDs := make([][]int32, cfg.K)
	// The online scorer's degree prior is shared read-only by all ranks.
	var degrees []int32
	if cfg.OnlineCache && capacity > 0 {
		degrees = rds.Graph.Degrees()
	}
	for rank := 0; rank < cfg.K; rank++ {
		// Local shard in layout order.
		lo, hi := starts[rank], starts[rank+1]
		local := tensor.New(int(hi-lo), rds.FeatureDim)
		for v := lo; v < hi; v++ {
			copy(local.Row(int(v-lo)), rds.FeatureRow(int32(v)))
		}

		// Remote cache: restored verbatim from the checkpoint (the online
		// layer's installed membership when present, the setup topology
		// otherwise), or built by the configured ranker (reordered id
		// space) on a fresh cluster. Feature rows are always rehydrated
		// from the dataset — checkpoints store cache membership, not
		// feature bytes.
		var cc *cache.Cache
		var cdata *tensor.Matrix
		var epochGen uint64 // installed generation restored from the checkpoint
		var ranking []int32 // full setup ranking (fresh clusters only)
		if cfg.Resume != nil {
			ids := cfg.Resume.Topo.CacheIDs[rank]
			if cs := cfg.Resume.Cache; cs != nil {
				ids = cs.IDs[rank]
				epochGen = cs.Gens[rank]
			}
			if len(ids) > 0 {
				cc, err = cache.Build(ids, ds.NumVertices())
				if err != nil {
					return nil, err
				}
			}
		} else if capacity > 0 {
			// cache.Context shares the vip.Config convention: Workers 0
			// means GOMAXPROCS, so Parallelism passes through untouched.
			ctx := &cache.Context{
				G: rds.Graph, Parts: parts, K: cfg.K, Part: int32(rank),
				TrainIDs: trainReordered, Fanouts: cfg.Train.Fanouts,
				BatchSize: cfg.Train.BatchSize, Seed: cfg.Train.Seed + uint64(rank),
				Workers: cfg.Train.Parallelism,
			}
			ranking, err = cfg.CachePolicy.Rank(ctx)
			if err != nil {
				return nil, err
			}
			cc, err = cache.FromRanking(ranking, capacity, ds.NumVertices())
			if err != nil {
				return nil, err
			}
		}
		if cc != nil {
			cacheIDs[rank] = cc.IDs()
			cdata = tensor.New(cc.Len(), rds.FeatureDim)
			for i, v := range cc.IDs() {
				copy(cdata.Row(i), rds.FeatureRow(v))
			}
		}
		ep, err := cache.NewEpoch(cc, cdata)
		if err != nil {
			return nil, err
		}
		ep.Gen = epochGen

		fc, gc := commFeat[rank], commGrad[rank]
		if cfg.WrapComm != nil {
			fc, gc = cfg.WrapComm(rank, fc, gc)
		}
		if cfg.StallTimeout > 0 {
			fc.SetTimeout(cfg.StallTimeout)
			gc.SetTimeout(cfg.StallTimeout)
		}
		store, err := dist.NewStore(fc, layout, rds.FeatureDim, local, ep, cfg.GPUFraction)
		if err != nil {
			return nil, err
		}
		store.SetCodec(codec)
		smp, err := sample.NewSampler(rds.Graph, cfg.Train.Fanouts)
		if err != nil {
			return nil, err
		}
		model, err := nn.NewModel(rds.FeatureDim, cfg.Hidden, rds.NumClasses, cfg.Layers, cfg.Dropout, cfg.ModelSeed+uint64(rank)+1)
		if err != nil {
			return nil, err
		}
		if err := model.CopyWeightsFrom(refModel); err != nil {
			return nil, err
		}
		labels := make([]int32, len(rds.Labels))
		copy(labels, rds.Labels)
		rk, err := NewRank(cfg.Train, fc, gc, store, smp, model, trainPer[rank], labels, maxBatches)
		if err != nil {
			return nil, err
		}
		if cfg.Resume != nil {
			if err := rk.RestoreState(cfg.Resume.Ranks[rank]); err != nil {
				return nil, err
			}
		}
		// Online cache layer: one scorer + epoch builder + installer per
		// rank. Fresh clusters seed the scorer with the full setup ranking;
		// resumed ones with the restored membership (re-analysis is skipped,
		// so the installed prefix is the best prior available). The builder
		// continues the checkpointed generation stream.
		if cfg.OnlineCache && capacity > 0 {
			seed := ranking
			if seed == nil && cc != nil {
				seed = cc.IDs()
			}
			builder, err := cache.NewEpochBuilder(ds.NumVertices(), rds.FeatureDim, rds.FeatureRow)
			if err != nil {
				return nil, err
			}
			builder.SetGen(epochGen)
			policy, err := cache.NewOnline(ds.NumVertices(), seed, degrees, cfg.OnlineCacheConfig)
			if err != nil {
				return nil, err
			}
			installer, err := cache.NewInstaller(policy, builder, capacity)
			if err != nil {
				return nil, err
			}
			rk.SetCacheInstaller(installer)
		}
		cl.Ranks = append(cl.Ranks, rk)
	}

	// Coordinated checkpointing: one saver shared by all ranks, primed with
	// the run's topology so every checkpoint file is self-contained.
	if cfg.Checkpoint.Enabled() {
		saver, err := ckpt.NewSaver(cfg.Checkpoint, cfg.K, maxBatches)
		if err != nil {
			return nil, err
		}
		saver.SetRunConfig(ds.Name, cfg.Train.Seed, cfg.Train.BatchSize, cfg.Train.Fanouts, codec.String(), precision.String(), gradCodec.String())
		saver.SetTopology(&ckpt.Topology{
			NumVertices: int64(ds.NumVertices()),
			FeatureDim:  int32(rds.FeatureDim),
			K:           int32(cfg.K),
			Perm:        perm,
			Starts:      starts,
			Parts:       parts,
			CacheIDs:    cacheIDs,
		})
		// Online runs snapshot their installed cache epochs into every
		// checkpoint. The callback runs under the saver's barrier lock and
		// reads only atomic pointers to immutable epochs, so it is safe
		// from whichever rank's offer completes the barrier. Static runs
		// leave the callback unset and write no cache-state section —
		// their files decode exactly like v4's.
		if cfg.OnlineCache && capacity > 0 {
			ranks := cl.Ranks
			saver.SetCacheState(func() *ckpt.CacheState {
				cs := &ckpt.CacheState{Policy: "online", Gens: make([]uint64, len(ranks)), IDs: make([][]int32, len(ranks))}
				for i, rk := range ranks {
					st := rk.Store()
					cs.Gens[i] = st.CacheGen()
					cs.IDs[i] = append([]int32(nil), st.Epoch().IDs()...)
				}
				return cs
			})
		}
		for _, rk := range cl.Ranks {
			rk.SetCheckpointer(saver)
		}
	}
	return cl, nil
}

// validateResume checks a checkpoint against the dataset and configuration
// it is being restored into.
func validateResume(ds *dataset.Dataset, cfg ClusterConfig, st *ckpt.TrainState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	topo := st.Topo
	if int(topo.K) != cfg.K {
		return fmt.Errorf("pipeline: checkpoint was taken with K=%d, configuration says K=%d", topo.K, cfg.K)
	}
	// The dataset name guards against resuming one run's topology and
	// weights on another generated dataset that happens to share its shape
	// (papers-sim and mag240-sim do at equal N); seed, batch size, and
	// fanouts determine the batch permutation and per-batch sampling
	// streams, so drift in any of them would silently replay different
	// batches against the restored mid-epoch statistics.
	if st.Dataset != ds.Name {
		return fmt.Errorf("pipeline: checkpoint was taken on dataset %q, configuration supplies %q", st.Dataset, ds.Name)
	}
	if st.Seed != cfg.Train.Seed {
		return fmt.Errorf("pipeline: checkpoint was taken with seed %d, configuration says %d", st.Seed, cfg.Train.Seed)
	}
	// The wire codec is run identity too: a lossy codec perturbs every
	// gathered remote feature row, so resuming an fp16 run under fp32 (or
	// vice versa) would silently diverge from the checkpointed trajectory.
	if codec, err := dist.ParseCodec(cfg.Codec); err != nil {
		return err
	} else if st.Codec != codec.String() {
		return fmt.Errorf("pipeline: checkpoint was taken with wire codec %q, configuration says %q", st.Codec, codec.String())
	}
	// The serving precision never perturbs training, but it is still pinned:
	// a resumed run should produce the same serving artifacts as the
	// uninterrupted one, and silently flipping int8 ↔ fp32 across a resume
	// is exactly the kind of drift the identity header exists to catch.
	if precision, err := tensor.ParsePrecision(cfg.Precision); err != nil {
		return err
	} else if st.Precision != precision.String() {
		return fmt.Errorf("pipeline: checkpoint was taken with precision %q, configuration says %q", st.Precision, precision.String())
	}
	// The gradient codec is run identity exactly like the gather codec: a
	// lossy gradient reduce perturbs every optimizer step and carries
	// error-feedback residual state that only means anything under the
	// codec that produced it.
	if gradCodec, err := dist.ParseCodec(cfg.Train.GradCodec); err != nil {
		return err
	} else if st.GradCodec != gradCodec.String() {
		return fmt.Errorf("pipeline: checkpoint was taken with gradient codec %q, configuration says %q", st.GradCodec, gradCodec.String())
	}
	// The cache policy is run identity for the online layer: an installed
	// membership only means anything under the policy that produced it,
	// and silently pinning an online run's cache (or unpinning a static
	// one) across a resume is exactly the drift the identity checks catch.
	wantPolicy := "static"
	if st.Cache != nil {
		wantPolicy = st.Cache.Policy
	}
	gotPolicy := "static"
	if cfg.OnlineCache {
		gotPolicy = "online"
	}
	if wantPolicy != gotPolicy {
		return fmt.Errorf("pipeline: checkpoint was taken with cache policy %q, configuration says %q", wantPolicy, gotPolicy)
	}
	if int(st.BatchSize) != cfg.Train.BatchSize {
		return fmt.Errorf("pipeline: checkpoint was taken with batch size %d, configuration says %d", st.BatchSize, cfg.Train.BatchSize)
	}
	if len(st.Fanouts) != len(cfg.Train.Fanouts) {
		return fmt.Errorf("pipeline: checkpoint has %d fanouts, configuration has %d", len(st.Fanouts), len(cfg.Train.Fanouts))
	}
	for i, f := range st.Fanouts {
		if int(f) != cfg.Train.Fanouts[i] {
			return fmt.Errorf("pipeline: checkpoint fanouts %v differ from configured %v", st.Fanouts, cfg.Train.Fanouts)
		}
	}
	if topo.NumVertices != int64(ds.NumVertices()) {
		return fmt.Errorf("pipeline: checkpoint covers %d vertices, dataset has %d", topo.NumVertices, ds.NumVertices())
	}
	if int(topo.FeatureDim) != ds.FeatureDim {
		return fmt.Errorf("pipeline: checkpoint feature dim %d, dataset has %d", topo.FeatureDim, ds.FeatureDim)
	}
	if err := graph.Permutation(topo.Perm).Validate(); err != nil {
		return fmt.Errorf("pipeline: checkpoint permutation invalid: %w", err)
	}
	return nil
}

// TrainEpochAll runs one synchronized epoch across every rank concurrently
// and returns per-rank stats. On a cluster built with Resume, the first
// call must pass FirstEpoch(): that epoch starts at the checkpoint's round
// cursor with its partially accumulated statistics, and subsequent epochs
// run normally.
func (c *Cluster) TrainEpochAll(epoch int) ([]EpochStats, error) {
	startRound := 0
	var partials []*ckpt.PartialEpoch
	if rs := c.resume; rs != nil {
		if epoch < rs.Step.Epoch {
			return nil, fmt.Errorf("pipeline: epoch %d precedes the resume point (epoch %d); drive training from FirstEpoch()", epoch, rs.Step.Epoch)
		}
		if epoch == rs.Step.Epoch && rs.Step.Round > 0 {
			startRound = rs.Step.Round
			partials = make([]*ckpt.PartialEpoch, len(c.Ranks))
			for i, rk := range rs.Ranks {
				p := rk.Partial
				partials[i] = &p
			}
		}
		c.resume = nil // the cursor applies to exactly one epoch
	}
	stats := make([]EpochStats, len(c.Ranks))
	errs := make(chan error, len(c.Ranks))
	done := make(chan struct{})
	for i, r := range c.Ranks {
		go func(i int, r *Rank) {
			var p *ckpt.PartialEpoch
			if partials != nil {
				p = partials[i]
			}
			s, err := r.trainEpochFrom(epoch, startRound, p)
			stats[i] = s
			if err != nil {
				errs <- err
			}
			done <- struct{}{}
		}(i, r)
	}
	for range c.Ranks {
		<-done
	}
	select {
	case err := <-errs:
		return stats, err
	default:
	}
	return stats, nil
}

// EvaluateAll runs sampled inference over the given split on every rank
// (each rank evaluates its local vertices) and returns global accuracy.
func (c *Cluster) EvaluateAll(split dataset.Split, fanouts []int, batch, epoch int) (float64, error) {
	ids := c.Data.IDsInSplit(split)
	per := make([][]int32, len(c.Ranks))
	for _, v := range ids {
		p := c.Layout.Owner(v)
		per[p] = append(per[p], v)
	}
	rounds := 0
	for _, l := range per {
		nb := (len(l) + batch - 1) / batch
		if nb > rounds {
			rounds = nb
		}
	}
	if rounds == 0 {
		return 0, fmt.Errorf("pipeline: split %v empty", split)
	}
	type res struct {
		correct, total int
		err            error
	}
	out := make(chan res, len(c.Ranks))
	for i, r := range c.Ranks {
		go func(i int, r *Rank) {
			cor, tot, err := r.Evaluate(per[i], fanouts, batch, rounds, epoch)
			out <- res{cor, tot, err}
		}(i, r)
	}
	correct, total := 0, 0
	var firstErr error
	for range c.Ranks {
		r := <-out
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		correct += r.correct
		total += r.total
	}
	if firstErr != nil {
		return 0, firstErr
	}
	if total == 0 {
		return 0, nil
	}
	return float64(correct) / float64(total), nil
}
