//go:build race

package pipeline

// raceEnabled gates exact allocation assertions: the race runtime
// allocates shadow state on goroutine handoffs, which the pipeline's
// stage channels cross by design, making AllocsPerRun nondeterministic.
// The non-race CI leg still enforces the exact bound.
const raceEnabled = true
